(* Reproduction harness: one section per table/figure of the paper's
   evaluation (§7). Absolute numbers come from our calibrated cost model and
   simulated substrate (DESIGN.md §1); the claims under reproduction are the
   *shapes* — who wins, by what factor, where crossovers fall — recorded in
   EXPERIMENTS.md. *)

module Q = Arb_queries.Registry
module P = Arb_planner
module Cm = P.Cost_model
module U = Arb_util.Units
module T = Arb_util.Table

let smoke = ref false
(* --smoke (wired to the [bench-smoke] dune alias) shrinks every experiment
   to seconds so `dune runtest` executes the bench code end to end; the
   full-size tables are unchanged without the flag. *)

let paper_n () = if !smoke then 1_000_000 else 1_000_000_000

let section title =
  Printf.printf "\n==================== %s ====================\n" title

(* Plan every paper-scale query once and share across figures. *)
let plans : (string, P.Plan.t * Cm.metrics * P.Search.stats) Hashtbl.t =
  Hashtbl.create 16

let plan_of name =
  match Hashtbl.find_opt plans name with
  | Some p -> p
  | None ->
      let q = Q.paper_instance name in
      let r = P.Search.plan ~query:q ~n:(paper_n ()) () in
      let v =
        match (r.P.Search.plan, r.P.Search.metrics) with
        | Some p, Some m -> (p, m, r.P.Search.stats)
        | _ -> failwith ("no plan for " ^ name)
      in
      Hashtbl.replace plans name v;
      v

let contributions_of (plan : P.Plan.t) =
  let q = Q.paper_instance plan.P.Plan.query in
  List.map
    (fun v ->
      Cm.price Cm.default ~n_devices:(paper_n ()) ~m:plan.P.Plan.committee_size
        ~cols:q.Q.categories v)
    plan.P.Plan.vignettes

(* Split a plan's expected participant cost into the paper's Fig. 6 series:
   local encryption+verification work vs expected committee (MPC) work. *)
let participant_split contributions =
  List.fold_left
    (fun (bt, bb, mt, mb) (c : Cm.contribution) ->
      let seats = float_of_int (c.Cm.c_instances * c.Cm.c_members) in
      let nf = float_of_int (paper_n ()) in
      ( bt +. c.Cm.c_all_time,
        bb +. c.Cm.c_all_bytes,
        mt +. (seats /. nf *. c.Cm.c_member_time),
        mb +. (seats /. nf *. c.Cm.c_member_bytes) ))
    (0.0, 0.0, 0.0, 0.0) contributions

(* ------------------------------------------------------------------ *)
(* Table 1: strawman comparison on the zip-code query (§3.2).          *)

let table1 () =
  section "Table 1: approaches at 10^8 participants (zip-code query)";
  let n = if !smoke then 1_000_000 else 100_000_000
  and cols = if !smoke then 4_096 else 41_683 in
  let fhe = Arb_baselines.Baselines.fhe_only ~n ~cols in
  let mpc = Arb_baselines.Baselines.all_to_all_mpc ~n in
  let boehler =
    Arb_baselines.Baselines.boehler_median ~n:1_300_000_000 ~m:40
  in
  let orch = Arb_baselines.Baselines.orchard_metrics ~n ~cols:64 ~noise_count:64 ~cm:Cm.default in
  let q = Q.make ~name:"top1" ~c:cols () in
  let arb =
    match (P.Search.plan ~query:q ~n ()).P.Search.plan with
    | Some p ->
        Cm.combine ~n_devices:n
          (List.map
             (fun v -> Cm.price Cm.default ~n_devices:n ~m:p.P.Plan.committee_size ~cols v)
             p.P.Plan.vignettes)
    | None -> failwith "no arboretum plan for table 1"
  in
  T.print
    ~header:
      [ ""; "FHE"; "All-to-all MPC"; "Boehler [14]"; "Orchard [54]"; "Arboretum" ]
    [
      [ "Aggregator computation";
        Printf.sprintf "O(N) -> %s" (U.seconds_to_string fhe.Arb_baselines.Baselines.agg_compute_seconds);
        "N/A"; "N/A";
        U.seconds_to_string orch.Cm.agg_time;
        U.seconds_to_string arb.Cm.agg_time ];
      [ "Participant bandwidth (typical)";
        U.bytes_to_string fhe.Arb_baselines.Baselines.participant_bytes_typical;
        Printf.sprintf "O(N) -> %s" (U.bytes_to_string mpc.Arb_baselines.Baselines.participant_bytes_typical);
        "KBs";
        U.bytes_to_string orch.Cm.part_exp_bytes;
        U.bytes_to_string arb.Cm.part_exp_bytes ];
      [ "Participant bandwidth (worst-case)";
        U.bytes_to_string fhe.Arb_baselines.Baselines.participant_bytes_worst;
        Printf.sprintf "O(N) -> %s" (U.bytes_to_string mpc.Arb_baselines.Baselines.participant_bytes_worst);
        Printf.sprintf "O(N) -> %s" (U.bytes_to_string boehler.Arb_baselines.Baselines.committee_bytes);
        U.bytes_to_string orch.Cm.part_max_bytes;
        U.bytes_to_string arb.Cm.part_max_bytes ];
      [ "Numerical queries"; "Yes"; "Yes"; "Yes"; "Yes"; "Yes" ];
      [ "Categorical queries"; "Yes"; "Yes"; "Yes"; "Limited"; "Yes" ];
      [ "Participants can contribute"; "No"; "Yes"; "1 committee"; "1 committee"; "Yes" ];
      [ "Optimization"; "No"; "No"; "No"; "No"; "Automatic" ];
    ]

(* ------------------------------------------------------------------ *)
(* Table 2: supported queries.                                         *)

let table2 () =
  section "Table 2: supported queries";
  T.print
    ~header:[ "Query"; "Action"; "From"; "Lines" ]
    (List.map
       (fun name ->
         let q = Q.paper_instance name in
         [ name; q.Q.action; q.Q.source;
           string_of_int (Arb_lang.Ast.count_lines q.Q.program) ])
       Q.names)

(* ------------------------------------------------------------------ *)
(* Fig. 6: expected per-participant bandwidth and computation.         *)

let fig6 () =
  section "Fig 6: expected per-participant cost (N = 10^9)";
  let rows =
    List.concat_map
      (fun name ->
        let plan, _, _ = plan_of name in
        let bt, bb, mt, mb = participant_split (contributions_of plan) in
        let row label bb bt mb mt =
          [ label;
            U.bytes_to_string bb; U.bytes_to_string mb; U.bytes_to_string (bb +. mb);
            U.seconds_to_string bt; U.seconds_to_string mt;
            U.seconds_to_string (bt +. mt) ]
        in
        let base = [ row name bb bt mb mt ] in
        let baseline =
          match name with
          | "cms" ->
              let q = Q.paper_instance "cms" in
              let p =
                Arb_baselines.Baselines.orchard_plan ~crypto:P.Plan.Ahe ~n:(paper_n ())
                  ~cols:q.Q.categories ~noise_count:q.Q.categories ~cm:Cm.default
              in
              let cs =
                List.map
                  (fun v ->
                    Cm.price Cm.default ~n_devices:(paper_n ())
                      ~m:p.P.Plan.committee_size ~cols:q.Q.categories v)
                  p.P.Plan.vignettes
              in
              let bt, bb, mt, mb = participant_split cs in
              [ row "cms (Honeycrisp)" bb bt mb mt ]
          | "bayes" | "kmedians" ->
              let q = Q.paper_instance name in
              let p =
                Arb_baselines.Baselines.orchard_plan ~crypto:P.Plan.Ahe ~n:(paper_n ())
                  ~cols:q.Q.categories ~noise_count:q.Q.categories ~cm:Cm.default
              in
              let cs =
                List.map
                  (fun v ->
                    Cm.price Cm.default ~n_devices:(paper_n ())
                      ~m:p.P.Plan.committee_size ~cols:q.Q.categories v)
                  p.P.Plan.vignettes
              in
              let bt, bb, mt, mb = participant_split cs in
              [ row (name ^ " (Orchard)") bb bt mb mt ]
          | _ -> []
        in
        base @ baseline)
      Q.names
  in
  T.print
    ~header:
      [ "Query"; "enc+verif B"; "MPC B"; "total B"; "enc+verif t"; "MPC t"; "total t" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 7: committee-member costs by committee type.                   *)

let fig7 () =
  section "Fig 7: committee-member cost by committee type (N = 10^9)";
  let kind_name = function
    | `Keygen -> "KeyGen"
    | `Decryption -> "Decryption"
    | `Operations -> "Operations"
    | `Base -> "Replicated"
  in
  let rows =
    List.concat_map
      (fun name ->
        let plan, _, _ = plan_of name in
        let q = Q.paper_instance name in
        let by_kind =
          Cm.member_cost_by_kind Cm.default ~n_devices:(paper_n ())
            ~m:plan.P.Plan.committee_size ~cols:q.Q.categories plan.P.Plan.vignettes
        in
        (* max per kind *)
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun (k, t, b) ->
            let t0, b0 =
              Option.value (Hashtbl.find_opt tbl k) ~default:(0.0, 0.0)
            in
            Hashtbl.replace tbl k (Float.max t t0, Float.max b b0))
          by_kind;
        let frac =
          float_of_int (plan.P.Plan.committee_count * plan.P.Plan.committee_size)
          /. float_of_int (paper_n ()) *. 100.0
        in
        Hashtbl.fold
          (fun k (t, b) acc ->
            [ name; kind_name k; U.bytes_to_string b; U.seconds_to_string t;
              Printf.sprintf "%.5f%%" frac ]
            :: acc)
          tbl []
        |> List.sort compare)
      Q.names
  in
  T.print ~header:[ "Query"; "Committee"; "Max bytes"; "Max time"; "% on committees" ] rows

(* ------------------------------------------------------------------ *)
(* Fig. 8: aggregator cost.                                            *)

let fig8 () =
  section "Fig 8: aggregator cost (N = 10^9, 1000 cores for time)";
  let rows =
    List.map
      (fun name ->
        let plan, m, _ = plan_of name in
        let cs = contributions_of plan in
        let verify_time =
          List.fold_left2
            (fun acc (v : P.Plan.vignette) (c : Cm.contribution) ->
              match v.P.Plan.work with
              | P.Plan.W_verify_inputs _ -> acc +. c.Cm.c_agg_time
              | _ -> acc)
            0.0 plan.P.Plan.vignettes cs
        in
        let ops_time = m.Cm.agg_time -. verify_time in
        [ name;
          Printf.sprintf "%.0f TB" (m.Cm.agg_bytes /. 1.0e12);
          Printf.sprintf "%.1f h" (m.Cm.agg_time /. 3600.0 /. 1000.0);
          Printf.sprintf "%.1f h" (verify_time /. 3600.0 /. 1000.0);
          Printf.sprintf "%.1f h" (ops_time /. 3600.0 /. 1000.0) ])
      Q.names
  in
  T.print
    ~header:[ "Query"; "Traffic sent"; "Compute@1000c"; "(verification)"; "(operations)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 9 + §7.3: planner runtime and branch-and-bound ablation.       *)

let fig9 () =
  section "Fig 9: query-planner runtime";
  let rows =
    List.map
      (fun name ->
        let _, _, stats = plan_of name in
        [ name;
          Printf.sprintf "%.3f s" stats.P.Search.elapsed;
          string_of_int stats.P.Search.prefixes;
          string_of_int stats.P.Search.full_plans ])
      Q.names
  in
  T.print ~header:[ "Query"; "Planner time"; "Plan prefixes"; "Full candidates" ] rows;
  print_endline "\n  §7.3 ablation: branch-and-bound heuristics disabled";
  let rows =
    List.map
      (fun name ->
        let q = Q.paper_instance name in
        let t0 = Unix.gettimeofday () in
        let r =
          P.Search.plan ~heuristics:false
            ~max_prefixes:(if !smoke then 20_000 else 400_000)
            ~query:q ~n:(paper_n ()) ()
        in
        let dt = Unix.gettimeofday () -. t0 in
        [ name;
          Printf.sprintf "%.3f s" dt;
          string_of_int r.P.Search.stats.P.Search.prefixes;
          (if r.P.Search.stats.P.Search.aborted then "exhausted (cap hit)" else "finished") ])
      (if !smoke then [ "top1" ] else [ "top1"; "hypotest"; "cms"; "median" ])
  in
  T.print ~header:[ "Query"; "Time"; "Prefixes"; "Outcome" ] rows

(* ------------------------------------------------------------------ *)
(* Fig. 10: scalability of top1 under aggregator limits.               *)

let fig10 () =
  section "Fig 10: top1 scalability, N = 2^17 .. 2^30";
  let q = Q.paper_instance "top1" in
  let limits_of = function
    | Some h -> P.Constraints.with_agg_core_hours P.Constraints.evaluation_limits h
    | None -> { P.Constraints.evaluation_limits with P.Constraints.max_agg_time = None }
  in
  let settings = [ ("A=1000", Some 1000.0); ("A=5000", Some 5000.0); ("no limit", None) ] in
  let rows =
    List.map
      (fun e ->
        let n = 1 lsl e in
        Printf.sprintf "2^%d" e
        :: List.concat_map
             (fun (_, h) ->
               match (P.Search.plan ~limits:(limits_of h) ~query:q ~n ()).P.Search.plan with
               | None -> [ "-"; "-"; "-" ]
               | Some p ->
                   let m =
                     Cm.combine ~n_devices:n
                       (List.map
                          (fun v ->
                            Cm.price Cm.default ~n_devices:n
                              ~m:p.P.Plan.committee_size ~cols:q.Q.categories v)
                          p.P.Plan.vignettes)
                   in
                   [ Printf.sprintf "%.0f" (m.Cm.agg_time /. 3600.0);
                     Printf.sprintf "%.2f" m.Cm.part_exp_time;
                     Printf.sprintf "%.1f" (m.Cm.part_max_time /. 60.0) ])
             settings)
      (if !smoke then [ 17; 20 ]
       else [ 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 28; 29; 30 ])
  in
  T.print
    ~header:
      [ "N"; "agg core-h (1k)"; "exp s (1k)"; "max min (1k)";
        "agg core-h (5k)"; "exp s (5k)"; "max min (5k)";
        "agg core-h (inf)"; "exp s (inf)"; "max min (inf)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 11: power consumption on a Pi-4-class device.                  *)

let fig11 () =
  section "Fig 11: power use of the worst-case committee MPC (mAh, Pi-4 class)";
  (* Effective extra draw of the MPC above idle: ~0.9 W at 3.85 V nominal
     battery voltage — committee MPCs are communication-bound, so the CPU
     sits well below full load (the paper measures overall draw minus the
     idle baseline, §7.4). *)
  let mah_of_seconds s = s /. 3600.0 *. (0.9 /. 3.85) *. 1000.0 in
  let iphone_5pct = 0.05 *. 1624.0 in
  let base_mah = 6.0 (* encryption + ZK proof (§7.4) *) in
  let rows =
    List.map
      (fun name ->
        let plan, _, _ = plan_of name in
        let q = Q.paper_instance name in
        let by_kind =
          Cm.member_cost_by_kind Cm.default ~n_devices:(paper_n ())
            ~m:plan.P.Plan.committee_size ~cols:q.Q.categories plan.P.Plan.vignettes
        in
        let worst =
          List.fold_left (fun acc (_, t, _) -> Float.max acc t) 0.0 by_kind
        in
        let mah = mah_of_seconds worst in
        [ name;
          Printf.sprintf "%.1f" mah;
          Printf.sprintf "%.1f" base_mah;
          (if mah <= iphone_5pct then "<= 5% battery" else "EXCEEDS 5%") ])
      Q.names
  in
  Printf.printf "  (5%% of a 2022 iPhone SE battery = %.1f mAh)\n" iphone_5pct;
  T.print ~header:[ "Query"; "Worst MPC mAh"; "Base mAh"; "vs 5% line" ] rows

(* ------------------------------------------------------------------ *)
(* §7.5: heterogeneity — geo-distribution and slow devices.            *)

let fig12 () =
  let parties = if !smoke then 7 else 42 in
  section
    (Printf.sprintf
       "§7.5: heterogeneity effects on the Gumbel-noise MPC (%d parties)"
       parties);
  (* Run the real Gumbel MPC to count its communication rounds, then apply
     the network profiles. The 73.8 s LAN compute anchor is the paper's
     measured 42-party run. *)
  let rng = Arb_util.Rng.create 5L in
  let iters = if !smoke then 4 else 40 in
  let eng = Arb_mpc.Engine.create ~parties rng () in
  let scale = Arb_util.Fixed.of_float 20.0 in
  for _ = 1 to iters do
    ignore (Arb_mpc.Fixpoint_mpc.gumbel eng ~scale)
  done;
  let rounds = (Arb_mpc.Engine.cost eng).Arb_mpc.Cost.rounds in
  let lan_compute = 73.8 in
  let lan = Arb_runtime.Net.mpc_wall_clock Arb_runtime.Net.lan ~rounds ~compute:lan_compute in
  let geo = Arb_runtime.Net.mpc_wall_clock Arb_runtime.Net.geo_distributed ~rounds ~compute:lan_compute in
  let slow =
    Arb_runtime.Net.mpc_wall_clock (Arb_runtime.Net.with_slow_devices Arb_runtime.Net.lan ~factor:1.51) ~rounds
      ~compute:lan_compute
  in
  T.print
    ~header:[ "Setting"; "Wall clock"; "vs LAN" ]
    [
      [ "LAN cluster"; Printf.sprintf "%.1f s" lan; "--" ];
      [ "Mumbai/NY/Paris/Sydney"; Printf.sprintf "%.1f s" geo;
        Printf.sprintf "+%.0f%%" ((geo /. lan -. 1.0) *. 100.0) ];
      [ "38 servers + 4 Pi-class"; Printf.sprintf "%.1f s" slow;
        Printf.sprintf "+%.0f%%" ((slow /. lan -. 1.0) *. 100.0) ];
    ];
  Printf.printf "  (%d MPC rounds measured in the real share-level execution)\n" rounds

(* ------------------------------------------------------------------ *)
(* End-to-end validation runs at simulation scale.                     *)

let e2e () =
  let devices = if !smoke then 48 else 96 in
  section
    (Printf.sprintf "End-to-end simulated runs (%d devices, real cryptography)"
       devices);
  let rng = Arb_util.Rng.create 17L in
  let names = if !smoke then [ "top1"; "median"; "cms" ] else Q.names in
  let rows =
    List.map
      (fun name ->
        let q = Q.test_instance ~epsilon:2.0 name in
        let db = Q.random_database rng q ~n:devices () in
        let config =
          {
            Arb_runtime.Exec.default_config with
            Arb_runtime.Exec.budget = Arb_dp.Budget.create ~epsilon:100.0 ~delta:1e-3;
          }
        in
        match Arb_runtime.Exec.plan_and_execute config ~query:q ~db with
        | rep ->
            [ name;
              String.concat "; "
                (List.map Arb_lang.Interp.value_to_string rep.Arb_runtime.Exec.outputs)
              |> (fun s -> if String.length s > 44 then String.sub s 0 41 ^ "..." else s);
              string_of_bool rep.Arb_runtime.Exec.certificate_ok;
              string_of_bool rep.Arb_runtime.Exec.audit_ok ]
        | exception e -> [ name; "FAILED: " ^ Printexc.to_string e; "-"; "-" ])
      names
  in
  T.print ~header:[ "Query"; "Outputs"; "Cert ok"; "Audit ok" ] rows

let chaos () =
  section "Chaos runs: fault plan vs outcome (64 devices, top1)";
  let q = Q.test_instance ~epsilon:1000.0 "top1" in
  let db = Q.random_database (Arb_util.Rng.create 99L) q ~n:64 ~skew:2.0 () in
  let plan =
    let r =
      P.Search.plan ~limits:P.Constraints.no_limits ~query:q
        ~n:(Array.length db) ()
    in
    match r.P.Search.plan with
    | Some p -> p
    | None -> failwith "no plan for top1"
  in
  let module F = Arb_runtime.Fault in
  let specs =
    [ ("clean", F.no_faults);
      ("dropout p=.5", { F.no_faults with F.dropout_p = 0.5 });
      ("corrupt 1 party", { F.no_faults with F.share_corrupt_p = 0.15 });
      ("corrupt 2 parties",
       { F.no_faults with F.share_corrupt_p = 1.0; corrupt_parties = 2 });
      ("drop p=.2", { F.no_faults with F.message_drop_p = 0.2 });
      ("tamper", { F.no_faults with F.tamper_p = 1.0 });
      ("auditors down", { F.no_faults with F.audit_fail_p = 1.0 });
      ("chaos", F.chaos) ]
  in
  let rows =
    List.concat_map
      (fun (name, spec) ->
        List.map
          (fun seed ->
            let config =
              {
                Arb_runtime.Exec.default_config with
                Arb_runtime.Exec.seed;
                budget = Arb_dp.Budget.create ~epsilon:1.0e7 ~delta:0.5;
                faults = spec;
              }
            in
            match Arb_runtime.Exec.run config ~query:q ~plan ~db with
            | Ok rep ->
                let tr = rep.Arb_runtime.Exec.trace in
                [ name; Printf.sprintf "%Ld" seed; "ok";
                  string_of_int (Arb_runtime.Trace.faults_total tr);
                  string_of_int tr.Arb_runtime.Trace.fault_retries;
                  string_of_int tr.Arb_runtime.Trace.committees_reassigned ]
            | Error f ->
                [ name; Printf.sprintf "%Ld" seed;
                  "fail-closed: " ^ f.Arb_runtime.Exec.stage; "-"; "-"; "-" ])
          (if !smoke then [ 1L ] else [ 1L; 2L ]))
      specs
  in
  T.print
    ~header:[ "Fault plan"; "Seed"; "Outcome"; "Injected"; "Retries"; "Reassigned" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations of the design decisions DESIGN.md §4 calls out.           *)

let ablations () =
  section "Ablation: sum-tree fanout (expected vs max participant cost)";
  (* §4.3: larger fanouts amortize committee startup (lower expected cost);
     smaller fanouts cap each node's work (lower max cost). *)
  let n = (paper_n ()) and cols = 32768 in
  let ring = Cm.ring_for Cm.default P.Plan.Ahe ~cols in
  ignore ring;
  let m = P.Search.committee_size_for 1024 in
  let rows =
    List.map
      (fun fanout ->
        (* Build the tree's vignettes by hand, price them. *)
        let rec levels nodes acc =
          if nodes <= 1 then List.rev acc
          else
            let next = (nodes + fanout - 1) / fanout in
            levels next (next :: acc)
        in
        let vs =
          List.map
            (fun nodes ->
              { P.Plan.location = P.Plan.Committees nodes;
                work = P.Plan.W_he_sum { crypto = P.Plan.Ahe; cts = 1; inputs = fanout } })
            (levels n [])
        in
        let metrics =
          Cm.combine ~n_devices:n
            (List.map (fun v -> Cm.price Cm.default ~n_devices:n ~m ~cols v) vs)
        in
        [ string_of_int fanout;
          U.seconds_to_string metrics.Cm.part_exp_time;
          U.seconds_to_string metrics.Cm.part_max_time;
          U.bytes_to_string metrics.Cm.part_max_bytes ])
      [ 16; 64; 256; 1024; 4096 ]
  in
  T.print ~header:[ "Fanout"; "Exp participant t"; "Max participant t"; "Max bytes" ] rows;

  section "Ablation: em instantiation crossover vs category count";
  (* §4.3: the Gumbel and exponentiation variants trade differently with C;
     force each variant by filtering the search's choices via the variant
     the winner reports. *)
  let rows =
    List.map
      (fun c ->
        let q = Q.make ~name:"top1" ~c () in
        let r = P.Search.plan ~query:q ~n:(paper_n ()) () in
        match (r.P.Search.plan, r.P.Search.metrics) with
        | Some p, Some mt ->
            [ string_of_int c;
              (match p.P.Plan.em_variant with
              | `Gumbel -> "gumbel"
              | `Exponentiate -> "exponentiate"
              | `Sketch -> "sketch"
              | `None -> "-");
              U.seconds_to_string mt.Cm.part_exp_time;
              string_of_int p.P.Plan.committee_count ]
        | _ -> [ string_of_int c; "no plan"; "-"; "-" ])
      [ 4; 64; 1024; 32768 ]
  in
  T.print ~header:[ "C"; "Chosen variant"; "Exp participant t"; "Committees" ] rows;

  section "Ablation: committee chunk size (noising 2^15 categories)";
  (* §4.4: fine chunks parallelize (low max) but multiply committees
     (higher expected + sizing pressure); coarse chunks concentrate work. *)
  let rows =
    List.filter_map
      (fun chunk ->
        let committees = (cols + chunk - 1) / chunk in
        let m = P.Search.committee_size_for committees in
        let v =
          { P.Plan.location = P.Plan.Committees committees;
            work = P.Plan.W_mpc_noise { kind = `Gumbel; count = chunk } }
        in
        let c = Cm.price Cm.default ~n_devices:(paper_n ()) ~m ~cols v in
        let metrics = Cm.combine ~n_devices:(paper_n ()) [ c ] in
        Some
          [ string_of_int chunk; string_of_int committees; string_of_int m;
            U.seconds_to_string metrics.Cm.part_exp_time;
            U.seconds_to_string metrics.Cm.part_max_time ])
      [ 1; 16; 256; 1024; 4096 ]
  in
  T.print
    ~header:[ "Chunk"; "Committees"; "m"; "Exp participant t"; "Max participant t" ]
    rows;

  section "Ablation: AHE vs FHE profile (ciphertext and upload cost)";
  let rows =
    List.map
      (fun cols ->
        let a = Cm.ring_for Cm.default P.Plan.Ahe ~cols in
        let f = Cm.ring_for Cm.default P.Plan.Fhe ~cols in
        [ string_of_int cols; string_of_int a.Cm.ring_n;
          U.bytes_to_string a.Cm.ct_bytes; U.bytes_to_string f.Cm.ct_bytes;
          Printf.sprintf "%.1fx" (f.Cm.ct_bytes /. a.Cm.ct_bytes) ])
      [ 1; 1024; 32768; 100000 ]
  in
  T.print ~header:[ "C"; "Ring n"; "AHE ct"; "FHE ct"; "FHE/AHE" ] rows

(* ------------------------------------------------------------------ *)
(* Extension: utility vs privacy. Not a paper figure — the accuracy side
   of the Accuracy goal (§3): how often does the DP answer match the
   cleartext one as epsilon varies? Uses the reference interpreter so the
   sweep stays fast. *)

let accuracy () =
  let n = if !smoke then 400 else 2000 and trials = if !smoke then 10 else 60 in
  section
    (Printf.sprintf
       "Extension: utility vs epsilon (reference semantics, N = %d, C = 64)" n);
  let top1 = Q.make ~name:"top1" ~c:64 () in
  let median = Q.make ~name:"median" ~c:64 () in
  let db = Q.random_database (Arb_util.Rng.create 123L) top1 ~n ~skew:1.2 () in
  let counts = Array.make 64 0 in
  Array.iter (fun row -> Array.iteri (fun j v -> counts.(j) <- counts.(j) + v) row) db;
  let true_mode =
    let best = ref 0 in
    Array.iteri (fun j c -> if c > counts.(!best) then best := j) counts;
    !best
  in
  let true_median =
    let acc = ref 0 and res = ref 0 and found = ref false in
    Array.iteri
      (fun i c ->
        acc := !acc + c;
        if (not !found) && 2 * !acc >= n then begin res := i; found := true end)
      counts;
    !res
  in
  let rows =
    List.map
      (fun eps ->
        let q_top = { top1 with Q.program = { top1.Q.program with Arb_lang.Ast.epsilon = eps } } in
        let q_med = { median with Q.program = { median.Q.program with Arb_lang.Ast.epsilon = eps } } in
        let hits = ref 0 and med_err = ref 0.0 in
        for t = 1 to trials do
          let rng = Arb_util.Rng.create (Int64.of_int (1000 + t)) in
          (match Arb_lang.Interp.run q_top.Q.program ~db rng with
          | [ Arb_lang.Interp.V_int w ] -> if w = true_mode then incr hits
          | _ -> ());
          match Arb_lang.Interp.run q_med.Q.program ~db rng with
          | [ Arb_lang.Interp.V_int b ] ->
              med_err := !med_err +. float_of_int (abs (b - true_median))
          | _ -> ()
        done;
        [ Printf.sprintf "%.2f" eps;
          Printf.sprintf "%.0f%%" (100.0 *. float_of_int !hits /. float_of_int trials);
          Printf.sprintf "%.1f buckets" (!med_err /. float_of_int trials) ])
      [ 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 ]
  in
  T.print ~header:[ "epsilon"; "top1 = true mode"; "median |error|" ] rows

(* ------------------------------------------------------------------ *)
(* Cost-model validation (the paper's [44 §C]): does the model's ordering
   agree with what the executed runtime actually does? Compared as ratios
   between queries, since the model is calibrated at deployment scale and
   the runtime at simulation scale. *)

let validation () =
  section "Cost-model validation: predicted vs executed committee work";
  (* Model and runtime compared at the same (test) scale so category counts
     match; the model still prices with its deployment constants — only the
     relative ordering is under test. *)
  let model_ops name =
    let q = Q.test_instance name in
    match (P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n:96 ()).P.Search.plan with
    | None -> 0.0
    | Some plan ->
        Cm.member_cost_by_kind Cm.default ~n_devices:96
          ~m:plan.P.Plan.committee_size ~cols:q.Q.categories plan.P.Plan.vignettes
        |> List.fold_left
             (fun acc (k, _, b) -> if k = `Operations then acc +. b else acc)
             0.0
  in
  let trace_ops name =
    let q = Q.test_instance ~epsilon:2.0 name in
    let db = Q.random_database (Arb_util.Rng.create 55L) q ~n:96 () in
    let cfg =
      {
        Arb_runtime.Exec.default_config with
        Arb_runtime.Exec.budget = Arb_dp.Budget.create ~epsilon:1000.0 ~delta:0.5;
      }
    in
    let report = Arb_runtime.Exec.plan_and_execute cfg ~query:q ~db in
    float_of_int
      (Arb_runtime.Trace.mpc_bytes report.Arb_runtime.Exec.trace
         Arb_runtime.Trace.Operations)
  in
  let base_model = model_ops "bayes" and base_trace = trace_ops "bayes" in
  let rows =
    List.map
      (fun name ->
        let m_ratio = model_ops name /. base_model in
        let t_ratio = trace_ops name /. base_trace in
        [ name;
          Printf.sprintf "%.1fx" m_ratio;
          Printf.sprintf "%.1fx" t_ratio;
          (if (m_ratio > 1.0) = (t_ratio > 1.0) then "agree" else "DISAGREE") ])
      (if !smoke then [ "top1"; "bayes" ]
       else [ "top1"; "median"; "hypotest"; "cms"; "bayes" ])
  in
  Printf.printf
    "  (operations-committee bytes relative to bayes; the model orders plans,\n   so agreement in direction is the requirement, §4.6)\n";
  T.print ~header:[ "Query"; "Model (vs bayes)"; "Executed (vs bayes)"; "Direction" ] rows

(* ------------------------------------------------------------------ *)
(* Planner scaling: the seed's full-repricing sequential search vs the
   incremental-pricing search vs the multicore fan-out. All three must
   return the same winning plan (the incremental bound and the shared
   incumbent are exact and admissible); the interesting output is the
   wall-clock ratio and the per-variant explored/pruned counters. *)

let planner_scaling () =
  section "Planner scaling: naive vs incremental vs parallel";
  let ns =
    if !smoke then [ 1_000_000 ]
    else [ 1_000_000; 100_000_000; 1_000_000_000 ]
  in
  let queries = if !smoke then [ "top1"; "median" ] else Q.names in
  let workers = max 2 (Domain.recommended_domain_count ()) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let winner (r : P.Search.result) =
    match r.P.Search.plan with
    | Some p -> P.Plan_io.plan_to_string p
    | None -> "none"
  in
  let counters (r : P.Search.result) =
    Printf.sprintf "%d/%d" r.P.Search.stats.P.Search.prefixes
      r.P.Search.stats.P.Search.pruned
  in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun name ->
            let q = Q.paper_instance name in
            let naive, t_naive =
              time (fun () -> P.Search.plan ~incremental:false ~query:q ~n ())
            in
            let inc, t_inc = time (fun () -> P.Search.plan ~query:q ~n ()) in
            let par, t_par =
              time (fun () -> P.Search.plan ~domains:workers ~query:q ~n ())
            in
            if winner naive <> winner inc || winner inc <> winner par then
              failwith
                (Printf.sprintf
                   "planner_scaling: search variants disagree on the winner \
                    for %s at N=%d"
                   name n);
            [ name;
              Printf.sprintf "%.0e" (float_of_int n);
              Printf.sprintf "%.4f s" t_naive;
              Printf.sprintf "%.4f s" t_inc;
              Printf.sprintf "%.4f s" t_par;
              Printf.sprintf "%.1fx" (t_naive /. Float.max 1e-9 t_inc);
              Printf.sprintf "%.1fx" (t_naive /. Float.max 1e-9 t_par);
              counters naive; counters inc; counters par ])
          queries)
      ns
  in
  Printf.printf "  (parallel = %d domains; prefixes/pruned per variant)\n" workers;
  T.print
    ~header:
      [ "Query"; "N"; "naive"; "incremental"; "parallel"; "inc speedup";
        "par speedup"; "naive p/p"; "inc p/p"; "par p/p" ]
    rows

(* ------------------------------------------------------------------ *)
(* service_throughput: the multi-tenant service layer — plan-cache      *)
(* speedup and worker-pool determinism (beyond the paper: the PAPAYA-   *)
(* style deployment model, a stream of queries against one budget).     *)

let service_throughput () =
  let module S = Arb_service in
  section "service_throughput: plan cache + multicore planning service";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Part A: per-submission planning latency, cold search vs cache hit,
     at paper scale (what a long-lived service skips on a repeat
     submission). *)
  let n = paper_n () in
  let cache_queries = if !smoke then [ "top1"; "hypotest" ] else
      [ "top1"; "gap"; "hypotest"; "median"; "auction" ]
  in
  let goal = P.Constraints.Min_part_exp_time in
  let cache = S.Cache.create () in
  let best_speedup = ref 0.0 in
  let rows =
    List.map
      (fun name ->
        let q = Q.paper_instance name in
        let r, t_cold = time (fun () -> P.Search.plan ~query:q ~n ()) in
        (match (r.P.Search.plan, r.P.Search.metrics) with
        | Some plan, Some metrics ->
            S.Cache.add cache
              (S.Cache.key ~goal ~query:q ~n ())
              ~query_name:name
              { S.Cache.plan; metrics; cols = q.Q.categories }
        | _ -> failwith ("service_throughput: no plan for " ^ name));
        (* A hit submission still canonicalizes its key; average the
           key+lookup over many repetitions for a stable figure. *)
        let reps = 100 in
        let (), t_hits =
          time (fun () ->
              for _ = 1 to reps do
                if S.Cache.find cache (S.Cache.key ~goal ~query:q ~n ()) = None
                then failwith "service_throughput: cache lost an entry"
              done)
        in
        let t_hit = t_hits /. float_of_int reps in
        let speedup = t_cold /. Float.max 1e-9 t_hit in
        best_speedup := Float.max !best_speedup speedup;
        [ name; U.seconds_to_string t_cold; U.seconds_to_string t_hit;
          Printf.sprintf "%.0fx" speedup ])
      cache_queries
  in
  if !best_speedup < 10.0 then
    failwith
      (Printf.sprintf
         "service_throughput: cache hits are only %.1fx faster than cold plans"
         !best_speedup);
  Printf.printf "  (cold = full search at N=%s; hit = key + cache lookup)\n"
    (U.si (float_of_int n));
  T.print ~header:[ "Query"; "cold plan"; "cache hit"; "speedup" ] rows;
  (* Part B: the service end to end — one workload, increasing worker
     counts. The canonical lifecycle records must be byte-identical to the
     single-worker run; only the planning stage parallelizes (execution is
     serialized on the certificate chain). *)
  let devices = if !smoke then 24 else 64 in
  let exec_queries =
    if !smoke then [ "top1"; "hypotest" ]
    else [ "top1"; "gap"; "hypotest"; "median"; "auction" ]
  in
  let workload =
    List.concat_map
      (fun name ->
        [
          {
            S.Workload.query = name;
            epsilon = 0.5;
            categories = None;
            goal;
            repeat = 2;
            every = None;
            window = None;
            tolerance = None;
          };
        ])
      exec_queries
  in
  let run_at workers =
    let t =
      S.Service.create
        ~budget:(Arb_dp.Budget.create ~epsilon:1.0e6 ~delta:0.5)
        ~devices ~seed:11 ()
    in
    List.iter (fun s -> ignore (S.Service.submit t s)) workload;
    let records, wall = time (fun () -> S.Service.drain ~workers t) in
    let c = S.Service.counters t in
    if not (S.Service.chain_verifies t) then
      failwith "service_throughput: certificate chain broke";
    (S.Lifecycle.records_to_string records, wall, c)
  in
  let base_records, _, _ = run_at 1 in
  let worker_counts =
    [ 1; 2; max 2 (Domain.recommended_domain_count ()) ]
    |> List.sort_uniq compare
  in
  let rows =
    List.map
      (fun workers ->
        let records, wall, c = run_at workers in
        if not (String.equal records base_records) then
          failwith
            (Printf.sprintf
               "service_throughput: %d-worker lifecycle records differ from \
                the single-worker run"
               workers);
        [
          string_of_int workers;
          string_of_int c.S.Lifecycle.submitted;
          string_of_int c.S.Lifecycle.planned;
          string_of_int c.S.Lifecycle.cache_hits;
          U.seconds_to_string c.S.Lifecycle.plan_seconds;
          U.seconds_to_string c.S.Lifecycle.exec_seconds;
          U.seconds_to_string wall;
          "identical";
        ])
      worker_counts
  in
  Printf.printf
    "  (%d submissions over %d devices; execution serialized on the chain)\n"
    (List.length workload * 2) devices;
  T.print
    ~header:
      [ "workers"; "submitted"; "planned"; "hits"; "plan s"; "exec s";
        "drain wall"; "records vs 1 worker" ]
    rows

(* ------------------------------------------------------------------ *)
(* Profiling: the observability layer (lib/obs) end to end — spans,    *)
(* metrics, trace validity, deterministic byte-identity, top-k table.  *)

(* Structural validator for Chrome trace_event JSON: every event carries
   the required fields, and per (pid, tid) the complete events form a
   well-nested span tree. Returns the event count. *)
let validate_trace_json s =
  let module J = Arb_util.Json in
  let events =
    match J.of_string s with
    | J.List evs -> evs
    | _ -> failwith "profiling: trace is not a JSON array"
    | exception J.Parse_error m -> failwith ("profiling: trace JSON: " ^ m)
  in
  let field name ev =
    match ev with
    | J.Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> v
        | None -> failwith ("profiling: event missing \"" ^ name ^ "\""))
    | _ -> failwith "profiling: trace event is not an object"
  in
  let spans = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      (match field "name" ev with
      | J.String "" -> failwith "profiling: empty event name"
      | J.String _ -> ()
      | _ -> failwith "profiling: event name is not a string");
      ignore (J.to_str (field "cat" ev));
      let ts = J.to_int (field "ts" ev) in
      let pid = J.to_int (field "pid" ev) in
      let tid = J.to_int (field "tid" ev) in
      match J.to_str (field "ph" ev) with
      | "X" ->
          let dur = J.to_int (field "dur" ev) in
          if ts < 0 || dur < 0 then failwith "profiling: negative ts/dur";
          let key = (pid, tid) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt spans key) in
          Hashtbl.replace spans key ((ts, ts + dur) :: prev)
      | "i" -> ignore (J.to_str (field "s" ev))
      | ph -> failwith ("profiling: unexpected phase " ^ ph))
    events;
  Hashtbl.iter
    (fun (_pid, tid) sps ->
      (* Sorted by (start asc, end desc) — i.e. parents before children —
         any two spans must be disjoint or contained. *)
      let sps =
        List.sort
          (fun (s1, e1) (s2, e2) -> compare (s1, -e1) (s2, -e2))
          sps
      in
      let stack = ref [] in
      List.iter
        (fun (s, e) ->
          let rec pop () =
            match !stack with
            | (_, pe) :: rest when pe <= s ->
                stack := rest;
                pop ()
            | _ -> ()
          in
          pop ();
          (match !stack with
          | (ps, pe) :: _ when not (ps <= s && e <= pe) ->
              failwith
                (Printf.sprintf
                   "profiling: spans overlap without nesting on tid %d \
                    ([%d,%d] vs [%d,%d])"
                   tid ps pe s e)
          | _ -> ());
          stack := (s, e) :: !stack)
        sps)
    spans;
  List.length events

let profiling () =
  section "Profiling: span tracer + metrics registry (lib/obs)";
  let module Obs = Arb_obs in
  let n = if !smoke then 1_000_000 else 1_000_000_000 in
  let devices = if !smoke then 32 else 64 in
  (* A: profiled planner search (wall clock) — validate the trace and
     print the top-k hottest phases. *)
  let tracer = Obs.Tracer.create () in
  let reg = Obs.Metrics.create () in
  let q = Q.paper_instance "top1" in
  ignore (P.Search.plan ~tracer ~metrics:reg ~query:q ~n ());
  let events = validate_trace_json (Obs.Tracer.to_string tracer) in
  Printf.printf "  planner trace: %d events, well-nested; top phases:\n"
    events;
  let top =
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    take 5 (Obs.Tracer.totals tracer)
  in
  T.print
    ~header:[ "span"; "count"; "total" ]
    (List.map
       (fun (name, count, secs) ->
         [ name; string_of_int count; U.seconds_to_string secs ])
       top);
  (* B: profiled runtime execution on the simulated protocol clock. *)
  let sim = Obs.Clock.sim () in
  let rt_tracer = Obs.Tracer.create ~clock:(Obs.Clock.Simulated sim) () in
  let qx = Q.test_instance ~epsilon:2.0 "top1" in
  let db = Q.random_database (Arb_util.Rng.create 17L) qx ~n:devices () in
  let config =
    { Arb_runtime.Exec.default_config with
      Arb_runtime.Exec.budget = Arb_dp.Budget.create ~epsilon:100.0 ~delta:1e-3;
      tracer = Some rt_tracer }
  in
  let rep = Arb_runtime.Exec.plan_and_execute config ~query:qx ~db in
  ignore (validate_trace_json (Obs.Tracer.to_string rt_tracer));
  Printf.printf
    "  runtime trace: %d events on the simulated clock (%.3f protocol s); \
     cert ok: %b\n"
    (Obs.Tracer.event_count rt_tracer)
    sim.Obs.Clock.sim_now rep.Arb_runtime.Exec.certificate_ok;
  (* C: deterministic mode — trace and metrics bytes must be identical
     across runs and across worker counts. *)
  let module S = Arb_service in
  let goal = P.Constraints.Min_part_exp_time in
  let workload =
    List.map
      (fun name ->
        { S.Workload.query = name; epsilon = 0.4; categories = None;
          goal; repeat = 2; every = None; window = None; tolerance = None })
      [ "top1"; "hypotest" ]
  in
  let det_run workers =
    let tr = Obs.Tracer.create ~clock:Obs.Clock.Deterministic () in
    let reg = Obs.Metrics.create () in
    let t =
      S.Service.create
        ~budget:(Arb_dp.Budget.create ~epsilon:1.0e6 ~delta:0.5)
        ~metrics:reg ~devices:(if !smoke then 24 else 48) ~seed:11 ()
    in
    List.iter (fun s -> ignore (S.Service.submit t s)) workload;
    ignore (S.Service.drain ~tracer:tr ~workers t);
    (Obs.Tracer.to_string tr, Obs.Metrics.to_prometheus reg)
  in
  let t1, m1 = det_run 1 in
  let t1', m1' = det_run 1 in
  let t2, m2 = det_run 2 in
  ignore (validate_trace_json t1);
  if not (String.equal t1 t1' && String.equal m1 m1') then
    failwith "profiling: deterministic trace/metrics differ across runs";
  (* arb_service_pool_workers reports the configured pool size, so it is
     the one series allowed to differ between worker counts. *)
  let drop_pool_gauge m =
    String.split_on_char '\n' m
    |> List.filter (fun l ->
           not (String.starts_with ~prefix:"arb_service_pool_workers" l))
    |> String.concat "\n"
  in
  if
    not
      (String.equal t1 t2
      && String.equal (drop_pool_gauge m1) (drop_pool_gauge m2))
  then
    failwith
      "profiling: deterministic trace/metrics differ across worker counts";
  Printf.printf
    "  deterministic service trace: %d bytes, identical across runs and \
     workers 1/2; metrics: %d bytes, identical\n"
    (String.length t1) (String.length m1)

(* ------------------------------------------------------------------ *)
(* crypto_kernels: the Barrett/lazy-reduction NTT + evaluation-form     *)
(* BGV overhaul, measured against the seed kernels (kept verbatim in    *)
(* Ntt as the *_reference oracles). The "old" columns re-enact the      *)
(* seed's exact transform sequences (4 negacyclic products per prime    *)
(* for mul, 2 more per digit per prime for relin, 2 per prime for       *)
(* encrypt, all with allocating coefficient-form ops); the "new"        *)
(* columns run the real Bgv entry points. Writes BENCH_crypto.json      *)
(* (schema in EXPERIMENTS.md).                                          *)

let crypto_kernels () =
  let module C = Arb_crypto in
  section "crypto_kernels: Barrett/lazy NTT + evaluation-form BGV";
  let time_iters iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  (* --- raw transforms: lazy kernels vs seed reference --- *)
  let n_ntt = if !smoke then 1024 else 4096 in
  let ntt_iters = if !smoke then 200 else 1000 in
  let plan = C.Ntt.plan ~n:n_ntt ~p:998244353 in
  let fld = C.Field.create 998244353 in
  let rng = Arb_util.Rng.create 42L in
  let buf = C.Poly.random_uniform fld rng n_ntt in
  let t_fwd_ref = time_iters ntt_iters (fun () -> C.Ntt.forward_reference plan buf) in
  let t_fwd_new = time_iters ntt_iters (fun () -> C.Ntt.forward plan buf) in
  let t_inv_ref = time_iters ntt_iters (fun () -> C.Ntt.inverse_reference plan buf) in
  let t_inv_new = time_iters ntt_iters (fun () -> C.Ntt.inverse plan buf) in
  (* --- mul + relinearize: seed sequence on reference kernels vs real Bgv --- *)
  let n_bgv = if !smoke then 256 else 1024 in
  let mr_iters = if !smoke then 10 else 50 in
  let params = C.Bgv.fhe_params ~n:n_bgv () in
  let q_primes = params.C.Bgv.q_primes in
  let flds = List.map C.Field.create q_primes in
  let plans = List.map (fun p -> C.Ntt.plan ~n:n_bgv ~p) q_primes in
  let nprimes = List.length q_primes in
  let rand_rq () = List.map (fun f -> C.Poly.random_uniform f rng n_bgv) flds in
  let old_rq_mul a b =
    List.map2
      (fun pl (x, y) -> C.Ntt.multiply_reference pl x y)
      plans (List.combine a b)
  in
  let old_rq_add a b =
    List.map2 (fun f (x, y) -> C.Poly.add f x y) flds (List.combine a b)
  in
  let ac0 = rand_rq () and ac1 = rand_rq () in
  let bc0 = rand_rq () and bc1 = rand_rq () in
  let rk_old = List.init nprimes (fun _ -> (rand_rq (), rand_rq ())) in
  let old_mul_relin () =
    (* Seed Bgv.mul: 4 negacyclic products per prime + the cross-term add. *)
    let c0 = old_rq_mul ac0 bc0 in
    let c1 = old_rq_add (old_rq_mul ac0 bc1) (old_rq_mul ac1 bc0) in
    let c2 = old_rq_mul ac1 bc1 in
    (* Seed Bgv.relinearize: per digit j, promote c2's residue at prime j
       into every prime and take two more products against the key pair. *)
    let c0 = ref c0 and c1 = ref c1 in
    List.iteri
      (fun j (b, a) ->
        let dig_j = List.nth c2 j in
        let digit = List.map (fun f -> Array.map (C.Field.of_int f) dig_j) flds in
        c0 := old_rq_add !c0 (old_rq_mul digit b);
        c1 := old_rq_add !c1 (old_rq_mul digit a))
      rk_old;
    ignore !c0
  in
  let bgv_rng = Arb_util.Rng.create 43L in
  let sk, pk = C.Bgv.keygen params bgv_rng in
  let rk = C.Bgv.relin_keygen params bgv_rng sk in
  let slots_a = Array.init 64 (fun i -> i + 1) in
  let slots_b = Array.init 64 (fun i -> (2 * i) + 1) in
  let ct_a = C.Bgv.encrypt pk bgv_rng slots_a in
  let ct_b = C.Bgv.encrypt pk bgv_rng slots_b in
  let new_mul_relin () = ignore (C.Bgv.relinearize rk (C.Bgv.mul ct_a ct_b)) in
  (* Sanity: the overhauled path still decrypts to the product. *)
  let dec = C.Bgv.decrypt sk (C.Bgv.relinearize rk (C.Bgv.mul ct_a ct_b)) in
  Array.iteri
    (fun i a ->
      if dec.(i) <> a * slots_b.(i) mod params.C.Bgv.t then
        failwith "crypto_kernels: mul+relin decrypts wrong")
    slots_a;
  let t_mr_old = time_iters mr_iters old_mul_relin in
  let t_mr_new = time_iters mr_iters new_mul_relin in
  let mr_speedup = t_mr_old /. Float.max 1e-12 t_mr_new in
  (* --- batched encryption: seed sequence vs real Bgv.encrypt --- *)
  let enc_params = C.Bgv.ahe_params ~n:n_bgv () in
  let e_primes = enc_params.C.Bgv.q_primes in
  let e_flds = List.map C.Field.create e_primes in
  let e_plans = List.map (fun p -> C.Ntt.plan ~n:n_bgv ~p) e_primes in
  let pt_plan = C.Ntt.plan ~n:n_bgv ~p:enc_params.C.Bgv.t in
  let enc_batch = if !smoke then 16 else 64 in
  let _esk, epk = C.Bgv.keygen enc_params bgv_rng in
  let epk_a = List.map (fun f -> C.Poly.random_uniform f rng n_bgv) e_flds in
  let epk_b = List.map (fun f -> C.Poly.random_uniform f rng n_bgv) e_flds in
  let e_rq_mul a b =
    List.map2
      (fun pl (x, y) -> C.Ntt.multiply_reference pl x y)
      e_plans (List.combine a b)
  in
  let e_rq_add a b =
    List.map2 (fun f (x, y) -> C.Poly.add f x y) e_flds (List.combine a b)
  in
  let e_reduce_small small =
    List.map (fun f -> Array.map (C.Field.of_int f) small) e_flds
  in
  let t = enc_params.C.Bgv.t in
  let old_encrypt slots =
    (* Seed Bgv.encrypt: encode (one plaintext-plan inverse), ternary u and
       two error polys, two negacyclic products per prime, scaled adds. *)
    let enc =
      Array.init n_bgv (fun i ->
          if i < Array.length slots then slots.(i) mod t else 0)
    in
    C.Ntt.inverse_reference pt_plan enc;
    let m = e_reduce_small enc in
    let u =
      e_reduce_small (Array.init n_bgv (fun _ -> Arb_util.Rng.int rng 3 - 1))
    in
    let err () =
      e_reduce_small
        (Array.init n_bgv (fun _ ->
             int_of_float
               (Float.round
                  (Arb_util.Rng.gaussian rng ~sigma:enc_params.C.Bgv.sigma))))
    in
    let scale k a = List.map2 (fun f x -> C.Poly.scale f k x) e_flds a in
    let c0 = e_rq_add (e_rq_add (e_rq_mul epk_b u) (scale t (err ()))) m in
    let c1 = e_rq_add (e_rq_mul epk_a u) (scale t (err ())) in
    ignore c0;
    ignore c1
  in
  let row = Array.init 64 (fun i -> i mod 2) in
  let t_enc_old =
    time_iters 1 (fun () ->
        for _ = 1 to enc_batch do
          old_encrypt row
        done)
  in
  let t_enc_new =
    time_iters 1 (fun () ->
        for _ = 1 to enc_batch do
          ignore (C.Bgv.encrypt epk bgv_rng row)
        done)
  in
  let enc_speedup = t_enc_old /. Float.max 1e-12 t_enc_new in
  (* --- end-to-end runtime: worker fan-out, byte-identity enforced --- *)
  let q = Q.test_instance ~epsilon:1000.0 "top1" in
  let devices = if !smoke then 48 else 96 in
  let db = Q.random_database (Arb_util.Rng.create 7L) q ~n:devices () in
  let workers = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let exec_with w =
    let config =
      {
        Arb_runtime.Exec.default_config with
        Arb_runtime.Exec.budget = Arb_dp.Budget.create ~epsilon:1.0e7 ~delta:0.5;
        workers = w;
      }
    in
    let t0 = Unix.gettimeofday () in
    let rep = Arb_runtime.Exec.plan_and_execute config ~query:q ~db in
    (rep, Unix.gettimeofday () -. t0)
  in
  let rep1, t_exec_1 = exec_with 1 in
  let repk, t_exec_k = exec_with workers in
  if
    rep1.Arb_runtime.Exec.outputs <> repk.Arb_runtime.Exec.outputs
    || not
         (String.equal
            (Format.asprintf "%a" Arb_runtime.Trace.pp rep1.Arb_runtime.Exec.trace)
            (Format.asprintf "%a" Arb_runtime.Trace.pp repk.Arb_runtime.Exec.trace))
  then failwith "crypto_kernels: outputs/trace differ across worker counts";
  let exec_speedup = t_exec_1 /. Float.max 1e-12 t_exec_k in
  (* --- report --- *)
  let ops_per_sec dt = 1.0 /. Float.max 1e-12 dt in
  T.print
    ~header:[ "Kernel"; "old (seed)"; "new"; "speedup" ]
    [
      [ Printf.sprintf "NTT forward n=%d" n_ntt;
        Printf.sprintf "%.0f /s" (ops_per_sec t_fwd_ref);
        Printf.sprintf "%.0f /s" (ops_per_sec t_fwd_new);
        Printf.sprintf "%.2fx" (t_fwd_ref /. Float.max 1e-12 t_fwd_new) ];
      [ Printf.sprintf "NTT inverse n=%d" n_ntt;
        Printf.sprintf "%.0f /s" (ops_per_sec t_inv_ref);
        Printf.sprintf "%.0f /s" (ops_per_sec t_inv_new);
        Printf.sprintf "%.2fx" (t_inv_ref /. Float.max 1e-12 t_inv_new) ];
      [ Printf.sprintf "mul+relin n=%d" n_bgv;
        Printf.sprintf "%.3f ms" (t_mr_old *. 1e3);
        Printf.sprintf "%.3f ms" (t_mr_new *. 1e3);
        Printf.sprintf "%.2fx" mr_speedup ];
      [ Printf.sprintf "encrypt x%d n=%d" enc_batch n_bgv;
        Printf.sprintf "%.1f /s" (float_of_int enc_batch /. Float.max 1e-12 t_enc_old);
        Printf.sprintf "%.1f /s" (float_of_int enc_batch /. Float.max 1e-12 t_enc_new);
        Printf.sprintf "%.2fx" enc_speedup ];
      [ Printf.sprintf "exec e2e (%d dev, %d wkr)" devices workers;
        Printf.sprintf "%.3f s" t_exec_1;
        Printf.sprintf "%.3f s" t_exec_k;
        Printf.sprintf "%.2fx" exec_speedup ];
    ];
  let transforms, pointwise, saved = C.Ntt.Stats.get () in
  Printf.printf
    "  kernel counters: %d transforms, %d pointwise ops, %d divisions saved\n"
    transforms pointwise saved;
  (* Acceptance floors (ISSUE 5) — enforced only at full size, where the
     timings are stable enough to gate on. *)
  if not !smoke then begin
    if mr_speedup < 3.0 then
      failwith
        (Printf.sprintf "crypto_kernels: mul+relin speedup %.2fx < 3x"
           mr_speedup);
    if enc_speedup < 2.0 then
      failwith
        (Printf.sprintf "crypto_kernels: batched-encrypt speedup %.2fx < 2x"
           enc_speedup)
  end;
  let module J = Arb_util.Json in
  let json =
    J.Obj
      [
        ("schema", J.String "arb-bench-crypto/1");
        ("smoke", J.Bool !smoke);
        ( "ntt",
          J.Obj
            [
              ("n", J.Int n_ntt);
              ("forward_ref_per_sec", J.Float (ops_per_sec t_fwd_ref));
              ("forward_new_per_sec", J.Float (ops_per_sec t_fwd_new));
              ("inverse_ref_per_sec", J.Float (ops_per_sec t_inv_ref));
              ("inverse_new_per_sec", J.Float (ops_per_sec t_inv_new));
            ] );
        ( "mul_relin",
          J.Obj
            [
              ("n", J.Int n_bgv);
              ("old_ms", J.Float (t_mr_old *. 1e3));
              ("new_ms", J.Float (t_mr_new *. 1e3));
              ("speedup", J.Float mr_speedup);
            ] );
        ( "encrypt",
          J.Obj
            [
              ("n", J.Int n_bgv);
              ("batch", J.Int enc_batch);
              ( "old_per_sec",
                J.Float (float_of_int enc_batch /. Float.max 1e-12 t_enc_old) );
              ( "new_per_sec",
                J.Float (float_of_int enc_batch /. Float.max 1e-12 t_enc_new) );
              ("speedup", J.Float enc_speedup);
            ] );
        ( "exec",
          J.Obj
            [
              ("devices", J.Int devices);
              ("workers", J.Int workers);
              ("seconds_workers_1", J.Float t_exec_1);
              ("seconds_workers_k", J.Float t_exec_k);
              ("speedup", J.Float exec_speedup);
              ("byte_identical", J.Bool true);
            ] );
        ( "counters",
          J.Obj
            [
              ("transforms", J.Int transforms);
              ("pointwise_ops", J.Int pointwise);
              ("reductions_saved", J.Int saved);
            ] );
      ]
  in
  let oc = open_out "BENCH_crypto.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_crypto.json\n"

(* ------------------------------------------------------------------ *)
(* Device scaling: cohort-sharded execution at population scale.       *)
(* Gates on the scale-equivalence contract at small N, then streams    *)
(* populations up to 10^8 devices with real ciphertexts in the sampled *)
(* cohorts. Writes BENCH_scale.json.                                   *)

let device_scaling () =
  section "Device scaling: cohort-sharded execution (BENCH_scale.json)";
  let module R = Arb_runtime in
  let module J = Arb_util.Json in
  let q = Q.test_instance ~epsilon:1000.0 "hypotest" in
  let seed = 7L in
  let config sharding =
    {
      R.Exec.default_config with
      R.Exec.seed = 3L;
      budget = Arb_dp.Budget.create ~epsilon:1.0e7 ~delta:0.5;
      sharding;
    }
  in
  let plan_for n =
    let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n () in
    match r.P.Search.plan with
    | Some p -> p
    | None -> failwith "device_scaling: no plan for hypotest"
  in
  let source n = { R.Exec.n_devices = n; row = Q.device_source ~seed q } in
  (* --- gate 1: sharded == full on everything the protocol releases --- *)
  let n_eq = 512 in
  let plan_eq = plan_for n_eq in
  let full =
    R.Exec.execute_source (config R.Exec.Full) ~query:q ~plan:plan_eq
      ~src:(source n_eq)
  in
  let sharded_eq =
    R.Exec.execute_source
      (config (R.Exec.Sharded { cohort_size = 64; sampled_cohorts = 2 }))
      ~query:q ~plan:plan_eq ~src:(source n_eq)
  in
  if
    full.R.Exec.outputs <> sharded_eq.R.Exec.outputs
    || (not (Arb_dp.Budget.equal full.R.Exec.budget_left sharded_eq.R.Exec.budget_left))
    || full.R.Exec.certificate <> sharded_eq.R.Exec.certificate
  then failwith "device_scaling: sharded run diverged from full run";
  Printf.printf
    "  equivalence gate: sharded == full at n=%d (outputs, budget, certificate)\n"
    n_eq;
  (* --- gate 2: worker count changes nothing in sharded mode --- *)
  let sharded_w w =
    R.Exec.execute_source
      {
        (config (R.Exec.Sharded { cohort_size = 64; sampled_cohorts = 2 })) with
        R.Exec.workers = w;
      }
      ~query:q ~plan:plan_eq ~src:(source n_eq)
  in
  let w1 = sharded_w 1 and w3 = sharded_w 3 in
  if
    w1.R.Exec.outputs <> w3.R.Exec.outputs
    || not
         (String.equal
            (J.to_string (R.Trace.to_json w1.R.Exec.trace))
            (J.to_string (R.Trace.to_json w3.R.Exec.trace)))
  then failwith "device_scaling: sharded outputs/trace differ across workers";
  Printf.printf "  worker gate: byte-identical at 1 and 3 workers\n";
  (* --- the scaling sweep: O(cohort) memory, every device accounted --- *)
  let cohort_size = if !smoke then 1_024 else 4_096 in
  let sizes =
    if !smoke then [ 100_000; 1_000_000 ]
    else [ 1_000_000; 10_000_000; 100_000_000 ]
  in
  let workers = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let runs =
    List.map
      (fun n ->
        let plan = plan_for n in
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        let rep =
          R.Exec.execute_source
            {
              (config (R.Exec.Sharded { cohort_size; sampled_cohorts = 2 })) with
              R.Exec.workers;
            }
            ~query:q ~plan ~src:(source n)
        in
        let dt = Unix.gettimeofday () -. t0 in
        if rep.R.Exec.accepted_inputs + rep.R.Exec.rejected_inputs <> n then
          failwith "device_scaling: accounting does not cover the population";
        if not (rep.R.Exec.certificate_ok && rep.R.Exec.audit_ok) then
          failwith "device_scaling: certificate/audit failed at scale";
        (* Peak-memory proxy: the major heap's high-water mark (words) after
           the run — O(cohort), not O(N), is the claim under test. *)
        let heap_mb =
          float_of_int (Gc.quick_stat ()).Gc.top_heap_words *. 8.0 /. 1e6
        in
        (n, rep, dt, heap_mb))
      sizes
  in
  T.print
    ~header:
      [ "Devices"; "Materialized"; "Seconds"; "Devices/sec"; "Heap MB (peak)" ]
    (List.map
       (fun (n, rep, dt, heap_mb) ->
         let t = rep.R.Exec.trace in
         [ U.si (float_of_int n);
           string_of_int t.R.Trace.devices_materialized;
           Printf.sprintf "%.2f" dt;
           Printf.sprintf "%.0f" (float_of_int n /. Float.max 1e-9 dt);
           Printf.sprintf "%.1f" heap_mb ])
       runs);
  let json =
    J.Obj
      [
        ("schema", J.String "arb-bench-scale/1");
        ("smoke", J.Bool !smoke);
        ("query", J.String "hypotest");
        ("cohort_size", J.Int cohort_size);
        ("sampled_cohorts", J.Int 2);
        ("workers", J.Int workers);
        ("equivalence_gate_n", J.Int n_eq);
        ("equivalence_ok", J.Bool true);
        ("workers_byte_identical", J.Bool true);
        ( "runs",
          J.List
            (List.map
               (fun (n, rep, dt, heap_mb) ->
                 let t = rep.R.Exec.trace in
                 J.Obj
                   [
                     ("devices", J.Int n);
                     ("devices_materialized", J.Int t.R.Trace.devices_materialized);
                     ("cohorts_total", J.Int t.R.Trace.cohorts_total);
                     ("cohorts_sampled", J.Int t.R.Trace.cohorts_sampled);
                     ("seconds", J.Float dt);
                     ( "devices_per_sec",
                       J.Float (float_of_int n /. Float.max 1e-9 dt) );
                     ("peak_heap_mb", J.Float heap_mb);
                     ("accepted", J.Int rep.R.Exec.accepted_inputs);
                     ("rejected", J.Int rep.R.Exec.rejected_inputs);
                   ])
               runs) );
      ]
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_scale.json\n"

(* ------------------------------------------------------------------ *)
(* service_load: the HTTP front door under concurrent load — path      *)
(* equivalence (HTTP == in-process, byte-identical records), a         *)
(* >=500-connection fan-in, keep-alive throughput/latency, and         *)
(* backpressure that refuses with the budget intact. Writes            *)
(* BENCH_service.json.                                                 *)

let service_load () =
  let module S = Arb_service in
  let module H = S.Http in
  let module B = Arb_dp.Budget in
  let module J = Arb_util.Json in
  let module O = Arb_obs in
  section "service_load: HTTP front door under concurrent load";
  let host = "127.0.0.1" in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let goal = P.Constraints.Min_part_exp_time in
  let mk_sub ?(repeat = 1) ~epsilon query =
    { S.Workload.query; epsilon; categories = None; goal; repeat;
      every = None; window = None; tolerance = None }
  in
  let fresh_service () =
    S.Service.create
      ~budget:(B.create ~epsilon:100.0 ~delta:0.01)
      ~devices:(if !smoke then 24 else 48)
      ~seed:11 ()
  in
  let with_front_door ?(server_config = S.Server.default_config) svc f =
    let api = S.Api.create ~service:svc () in
    let server =
      S.Server.start ~config:server_config ~handler:(S.Api.handler api) ()
    in
    Fun.protect
      ~finally:(fun () ->
        S.Server.stop server;
        S.Api.join api)
      (fun () -> f api server (S.Server.port server))
  in
  let rec wait_until tries f =
    f ()
    || tries > 0
       && (Unix.sleepf 0.02;
           wait_until (tries - 1) f)
  in

  (* Gate 1: path equivalence. The same submissions, once through the
     socket and once in-process, must produce byte-identical canonical
     lifecycle records and the same remaining budget — the HTTP edge adds
     wall-clock I/O but zero accounting divergence. *)
  let subs =
    if !smoke then
      [ mk_sub ~epsilon:0.5 "top1"; mk_sub ~epsilon:0.4 "hypotest";
        mk_sub ~epsilon:0.5 "top1" ]
    else
      List.concat_map
        (fun q -> [ mk_sub ~epsilon:0.5 ~repeat:2 q ])
        [ "top1"; "gap"; "hypotest"; "median"; "auction" ]
  in
  let reference = fresh_service () in
  let ref_records =
    S.Service.run_workload reference
      { S.Workload.budget = None; devices = None; seed = None;
        epochs = None; submissions = subs }
  in
  let http_svc = fresh_service () in
  with_front_door http_svc (fun _api _server port ->
      List.iter
        (fun s ->
          match
            S.Client.post_json ~host ~port
              ~json:(S.Workload.submission_to_json s) "/v1/queries"
          with
          | Ok r when r.H.status = 202 -> ()
          | Ok r ->
              failwith
                (Printf.sprintf "service_load: submission answered %d"
                   r.H.status)
          | Error m -> failwith ("service_load: submit failed: " ^ m))
        subs;
      let expected = List.length (S.Workload.expand
        { S.Workload.budget = None; devices = None; seed = None;
          epochs = None; submissions = subs }) in
      if
        not
          (wait_until 500 (fun () ->
               S.Service.pending http_svc = 0
               && List.length (S.Service.history http_svc) = expected))
      then failwith "service_load: HTTP submissions never drained");
  let equivalent =
    String.equal
      (S.Lifecycle.records_to_string ref_records)
      (S.Lifecycle.records_to_string (S.Service.history http_svc))
    && B.equal
         (S.Service.budget_left reference)
         (S.Service.budget_left http_svc)
  in
  if not equivalent then
    failwith
      "service_load: HTTP-path records diverge from the in-process run";
  Printf.printf
    "  equivalence: %d submissions over HTTP == in-process (byte-identical \
     records, equal budget)\n"
    (List.length ref_records);

  (* Gate 1b: multi-epoch equivalence. Recurring sessions driven through
     POST /v1/epoch must yield continual and lifecycle records
     byte-identical to an in-process engine run — at any --http-workers
     count. The HTTP edge may reorder socket I/O, never accounting. *)
  let module C = Arb_continual in
  let n_epochs = 4 in
  let rec_subs =
    [ ( "trend", true,
        { (mk_sub ~epsilon:0.5 "top1") with
          S.Workload.every = Some 1;
          window =
            Some
              { S.Workload.w_epochs = 3;
                w_budget = B.create ~epsilon:2.0 ~delta:1e-4;
                w_compose = None } } );
      ( "pulse", false,
        { (mk_sub ~epsilon:0.4 "median") with S.Workload.every = Some 2 } )
    ]
  in
  let continual_run drive =
    let svc = fresh_service () in
    let engine = C.Engine.create ~service:svc () in
    List.iter
      (fun (name, carry, s) ->
        match C.Engine.register engine ~name ~carry_state:carry s with
        | Ok _ -> ()
        | Error m -> failwith ("service_load: register: " ^ m))
      rec_subs;
    drive svc engine;
    let continual =
      String.concat "\n"
        (List.map
           (fun v -> C.Engine.records_string v.C.Engine.v_history)
           (C.Engine.sessions engine))
    in
    ( continual,
      S.Lifecycle.records_to_string ~timings:false (S.Service.history svc),
      S.Service.budget_left svc )
  in
  let ref_cont, ref_life, ref_budget =
    continual_run (fun _svc engine ->
        ignore (C.Engine.run_epochs ~workers:2 engine n_epochs))
  in
  let http_worker_counts = [ 1; 2; 4 ] in
  List.iter
    (fun http_workers ->
      let cont, life, budget =
        continual_run (fun svc engine ->
            let api =
              S.Api.create
                ~extra:(C.Routes.handler ~workers:2 engine)
                ~service:svc ()
            in
            let server =
              S.Server.start
                ~config:
                  { S.Server.default_config with workers = http_workers }
                ~handler:(S.Api.handler api) ()
            in
            Fun.protect
              ~finally:(fun () ->
                S.Server.stop server;
                S.Api.join api)
              (fun () ->
                let port = S.Server.port server in
                for _ = 1 to n_epochs do
                  match S.Client.post ~host ~port ~body:"" "/v1/epoch" with
                  | Ok r when r.H.status = 200 -> ()
                  | Ok r ->
                      failwith
                        (Printf.sprintf
                           "service_load: epoch tick answered %d" r.H.status)
                  | Error m -> failwith ("service_load: epoch tick: " ^ m)
                done))
      in
      if
        not
          (String.equal ref_cont cont
          && String.equal ref_life life
          && B.equal ref_budget budget)
      then
        failwith
          (Printf.sprintf
             "service_load: multi-epoch HTTP run diverges at http-workers=%d"
             http_workers))
    http_worker_counts;
  Printf.printf
    "  multi-epoch equivalence: %d epochs over POST /v1/epoch == in-process \
     engine (byte-identical continual + lifecycle records) at http-workers \
     {1,2,4}\n"
    n_epochs;

  (* Gate 2: fan-in. Hundreds of sockets connect at once, then all send;
     every one of them must get an answer, and the read-only storm must
     leave the budget accounting untouched. *)
  let conns = 520 in
  let fan_svc = fresh_service () in
  let budget_before = S.Service.budget_left fan_svc in
  let acc = ref 0 in
  let fan_in_s, answered =
    with_front_door fan_svc (fun _api _server port ->
        let opened =
          List.init conns (fun _ ->
              match S.Client.connect ~timeout_s:30.0 ~host ~port () with
              | Ok c -> Some c
              | Error _ -> None)
        in
        let live = List.filter_map Fun.id opened in
        if List.length live < conns then
          failwith
            (Printf.sprintf "service_load: only %d/%d connections opened"
               (List.length live) conns);
        let (), dt =
          time (fun () ->
              List.iter
                (fun c ->
                  match
                    S.Client.send_raw c
                      "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n"
                  with
                  | Ok () -> ()
                  | Error m -> failwith ("service_load: send: " ^ m))
                live;
              acc :=
                List.fold_left
                  (fun n c ->
                    let n' =
                      match S.Client.read_response ~deadline_s:60.0 c with
                      | Ok r when r.H.status = 200 -> n + 1
                      | Ok _ | Error _ -> n
                    in
                    S.Client.close c;
                    n')
                  0 live)
        in
        (dt, !acc))
  in
  if answered < conns then
    failwith
      (Printf.sprintf "service_load: only %d/%d connections answered"
         answered conns);
  if not (B.equal budget_before (S.Service.budget_left fan_svc)) then
    failwith "service_load: read-only connection storm moved the budget";
  Printf.printf
    "  fan-in: %d concurrent connections all answered in %s (%.0f conns/s), \
     budget untouched\n"
    conns
    (U.seconds_to_string fan_in_s)
    (float_of_int conns /. Float.max 1e-9 fan_in_s);

  (* Keep-alive throughput/latency: a few client domains hammering
     persistent connections. *)
  let domains_n = 4 in
  let per_domain = if !smoke then 150 else 600 in
  let tp_svc = fresh_service () in
  let latencies, tp_wall =
    with_front_door tp_svc (fun _api _server port ->
        time (fun () ->
            let runner () =
              match S.Client.connect ~host ~port () with
              | Error m -> failwith ("service_load: connect: " ^ m)
              | Ok conn ->
                  let lats =
                    List.init per_domain (fun _ ->
                        let (resp, dt) =
                          time (fun () ->
                              S.Client.request conn ~meth:"GET"
                                ~target:"/healthz" ())
                        in
                        match resp with
                        | Ok r when r.H.status = 200 -> dt
                        | Ok r ->
                            failwith
                              (Printf.sprintf "service_load: status %d"
                                 r.H.status)
                        | Error m -> failwith ("service_load: " ^ m))
                  in
                  S.Client.close conn;
                  lats
            in
            let ds = List.init domains_n (fun _ -> Domain.spawn runner) in
            List.concat_map Domain.join ds))
  in
  (* Summarize latencies through the registry's own histogram machinery
     (the same estimator operators get from /v1/metrics) instead of
     ad-hoc sorted-list math. *)
  let lat_reg = O.Metrics.create () in
  List.iter
    (fun dt ->
      O.Metrics.observe_in lat_reg ~buckets:O.Metrics.latency_buckets
        "bench_http_latency_seconds" dt)
    latencies;
  let pct p =
    match
      O.Metrics.histogram_quantile lat_reg "bench_http_latency_seconds" p
    with
    | Some v -> v
    | None -> 0.0
  in
  let total_reqs = domains_n * per_domain in
  let rps = float_of_int total_reqs /. Float.max 1e-9 tp_wall in
  Printf.printf
    "  keep-alive: %d requests over %d connections: %.0f req/s, p50 %s, p95 \
     %s\n"
    total_reqs domains_n rps
    (U.seconds_to_string (pct 0.50))
    (U.seconds_to_string (pct 0.95));

  (* Gate 3: backpressure. A budget that affords exactly two eps-0.5
     queries, hammered by concurrent submitters. The prescreen is advisory
     (a drain racing the submitters can briefly release reservations, so a
     third 202 is possible); the authoritative invariants are that exactly
     two queries ever *execute*, everything else is refused — by 429 or by
     drain's canonical admission — and the final balance is exactly the
     admitted spend. *)
  let bp_svc =
    S.Service.create
      ~budget:(B.create ~epsilon:1.0 ~delta:0.01)
      ~devices:(if !smoke then 24 else 48)
      ~seed:11 ()
  in
  let accepted, refused =
    with_front_door bp_svc (fun _api _server port ->
        let submitters =
          List.init 8 (fun _ ->
              Domain.spawn (fun () ->
                  match
                    S.Client.post_json ~host ~port
                      ~json:
                        (S.Workload.submission_to_json
                           (mk_sub ~epsilon:0.5 "top1"))
                      "/v1/queries"
                  with
                  | Ok r -> r.H.status
                  | Error m -> failwith ("service_load: submit: " ^ m)))
        in
        let statuses = List.map Domain.join submitters in
        let count st = List.length (List.filter (( = ) st) statuses) in
        if count 202 + count 429 <> 8 then
          failwith "service_load: unexpected backpressure status mix";
        if
          not
            (wait_until 500 (fun () ->
                 S.Service.pending bp_svc = 0
                 && List.length (S.Service.history bp_svc) = count 202))
        then failwith "service_load: admitted submissions never drained";
        (count 202, count 429))
  in
  if accepted < 2 || refused < 1 then
    failwith
      (Printf.sprintf
         "service_load: reservation accounting admitted %d / refused %d \
          (expected 2-3 / >=5)"
         accepted refused);
  let executed, drain_refused =
    List.fold_left
      (fun (e, r) rec_ ->
        match rec_.S.Lifecycle.status with
        | S.Lifecycle.Executed _ -> (e + 1, r)
        | S.Lifecycle.Refused _ -> (e, r + 1)
        | _ -> (e, r))
      (0, 0)
      (S.Service.history bp_svc)
  in
  if executed <> 2 then
    failwith
      (Printf.sprintf "service_load: %d queries executed (budget affords 2)"
         executed);
  if drain_refused <> accepted - 2 then
    failwith "service_load: optimistically-admitted overflow not refused";
  let left = S.Service.budget_left bp_svc in
  if Float.abs left.B.epsilon > 1e-9 then
    failwith "service_load: drain spent a different amount than admitted";
  if not (S.Service.chain_verifies bp_svc) then
    failwith "service_load: chain broke under backpressure";
  Printf.printf
    "  backpressure: %d x 202 (%d executed, %d re-refused at drain), %d x \
     429; every refusal left the budget intact\n"
    accepted executed drain_refused refused;

  T.print
    ~header:[ "gate"; "result" ]
    [
      [ "HTTP == in-process records"; "byte-identical" ];
      [ Printf.sprintf "multi-epoch HTTP == engine (%d epochs)" n_epochs;
        "byte-identical x http-workers {1,2,4}" ];
      [ Printf.sprintf "%d-connection fan-in" conns;
        Printf.sprintf "%d answered" answered ];
      [ "keep-alive throughput"; Printf.sprintf "%.0f req/s" rps ];
      [ "backpressure 429s"; "budget intact" ];
    ];
  let json =
    J.Obj
      [
        ("schema", J.String "arb-bench-service/1");
        ("smoke", J.Bool !smoke);
        ("equivalence_ok", J.Bool true);
        ("equivalence_submissions", J.Int (List.length ref_records));
        ("continual_equivalence_ok", J.Bool true);
        ("continual_equivalence_epochs", J.Int n_epochs);
        ("fan_in_connections", J.Int conns);
        ("fan_in_answered", J.Int answered);
        ("fan_in_seconds", J.Float fan_in_s);
        ("keepalive_requests", J.Int total_reqs);
        ("keepalive_rps", J.Float rps);
        ("latency_p50_s", J.Float (pct 0.50));
        ("latency_p95_s", J.Float (pct 0.95));
        ( "backpressure",
          J.Obj
            [
              ("accepted", J.Int accepted);
              ("refused", J.Int refused);
              ("budget_intact", J.Bool true);
            ] );
      ]
  in
  let oc = open_out "BENCH_service.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_service.json\n"

(* -------------------------------------------------------------------- *)
(* continual_epochs: the continual engine's plan-reuse economics and    *)
(* correctness gates — cold-plan-then-revalidate steady state, exactly  *)
(* one forced re-plan per injected drift, sliding-window refusal with a *)
(* byte-identical budget and refund-driven recovery, and multi-epoch    *)
(* byte-identity across worker counts. Writes BENCH_continual.json.     *)
(* -------------------------------------------------------------------- *)

let continual_epochs () =
  let module S = Arb_service in
  let module E = Arb_continual.Engine in
  let module B = Arb_dp.Budget in
  let module Obs = Arb_obs in
  let module J = Arb_util.Json in
  section "continual_epochs: recurring sessions over sliding-window budgets";
  let goal = P.Constraints.Min_part_exp_time in
  let devices = if !smoke then 24 else 48 in
  let mk_rec ?(every = 1) ?window ~epsilon query =
    { S.Workload.query; epsilon; categories = None; goal; repeat = 1;
      every = Some every; window; tolerance = None }
  in
  let fresh () =
    let reg = Obs.Metrics.create () in
    let svc =
      S.Service.create ~metrics:reg
        ~budget:(B.create ~epsilon:1.0e6 ~delta:0.5)
        ~devices ~seed:11 ()
    in
    (reg, svc, E.create ~service:svc ())
  in
  let register engine ?name sub =
    match E.register engine ?name ~carry_state:true sub with
    | Ok n -> n
    | Error m -> failwith ("continual_epochs: register: " ^ m)
  in
  (* Sum a counter's value over series matching [name] and [labels] in the
     registry's JSON snapshot — the same shape /metrics tooling consumes. *)
  let counter reg name labels =
    let rows = match Obs.Metrics.to_json reg with J.List r -> r | _ -> [] in
    List.fold_left
      (fun acc row ->
        let name_ok =
          try J.to_str (J.member "name" row) = name
          with J.Parse_error _ -> false
        in
        let labels_ok =
          List.for_all
            (fun (k, v) ->
              try J.to_str (J.member k (J.member "labels" row)) = v
              with J.Parse_error _ -> false)
            labels
        in
        if name_ok && labels_ok then
          acc +. (try J.to_float (J.member "value" row) with J.Parse_error _ -> 0.0)
        else acc)
      0.0 rows
  in
  let expect what got want =
    if got <> want then
      failwith
        (Printf.sprintf "continual_epochs: %s: got %d, want %d" what got want)
  in
  let view engine name =
    match E.session engine name with
    | Some v -> v
    | None -> failwith ("continual_epochs: no session view for " ^ name)
  in
  let planned_of r =
    match r.E.er_outcome with
    | E.Ran { planned; _ } -> Some planned
    | _ -> None
  in

  (* Gate 1: steady state — one cold plan at the first epoch, cheap
     re-validations (cache probes, no planner search) ever after. *)
  let steady_epochs = 6 in
  let reg_a, _svc_a, eng_a = fresh () in
  let a = register eng_a (mk_rec ~epsilon:0.5 "top1") in
  ignore (E.run_epochs eng_a steady_epochs);
  let va = view eng_a a in
  expect "steady cold plans" va.E.v_cold 1;
  expect "steady revalidations" va.E.v_revalidations (steady_epochs - 1);
  expect "steady replans" va.E.v_replans 0;
  expect "steady cold counter"
    (int_of_float (counter reg_a "arb_continual_cold_plans_total" []))
    1;
  expect "steady revalidation counter"
    (int_of_float (counter reg_a "arb_continual_revalidations_total" []))
    (steady_epochs - 1);
  expect "steady epoch counter"
    (int_of_float (counter reg_a "arb_continual_epochs_total" []))
    steady_epochs;
  Printf.printf
    "  steady state: %d epochs = 1 cold plan + %d revalidations (0 re-plans)\n"
    steady_epochs (steady_epochs - 1);

  (* Gate 2: drift injection — a population estimate past the 20%% relative
     threshold forces exactly one re-plan, as does a calibration change;
     the refreshed fingerprint makes the following epoch revalidate. *)
  let reg_b, _svc_b, eng_b = fresh () in
  let b = register eng_b (mk_rec ~epsilon:0.5 "top1") in
  ignore (E.run_epochs eng_b 2);
  E.observe_population eng_b (devices * 2);
  let e3 = E.tick eng_b in
  let e4 = E.tick eng_b in
  E.set_calibration eng_b "calib-v1";
  let e5 = E.tick eng_b in
  let e6 = E.tick eng_b in
  let replan_reason records =
    match List.filter_map planned_of records with
    | [ E.Replanned reason ] -> Some reason
    | _ -> None
  in
  (match replan_reason e3 with
  | Some r when String.length r >= 16 && String.sub r 0 16 = "population drift"
    -> ()
  | _ -> failwith "continual_epochs: population drift did not force a re-plan");
  (match replan_reason e5 with
  | Some r when String.length r >= 17 && String.sub r 0 17 = "calibration drift"
    -> ()
  | _ -> failwith "continual_epochs: calibration drift did not force a re-plan");
  (match (List.filter_map planned_of e4, List.filter_map planned_of e6) with
  | [ E.Revalidated ], [ E.Revalidated ] -> ()
  | _ -> failwith "continual_epochs: post-drift epochs should revalidate");
  let vb = view eng_b b in
  expect "drift replans" vb.E.v_replans 2;
  expect "population-drift counter"
    (int_of_float
       (counter reg_b "arb_continual_replans_total"
          [ ("reason", "population drift") ]))
    1;
  expect "calibration-drift counter"
    (int_of_float
       (counter reg_b "arb_continual_replans_total"
          [ ("reason", "calibration drift") ]))
    1;
  Printf.printf
    "  drift: population +100%% -> 1 re-plan; calibration change -> 1 \
     re-plan; interleaved epochs revalidated\n";

  (* Gate 3: window exhaustion and recovery. A window affording two 0.5-eps
     charges over a 3-epoch horizon refuses the third epoch with both the
     window and the service budget byte-identical, then the epoch-1 charge
     expires and epoch 4 runs on the refund. *)
  let reg_c, svc_c, eng_c = fresh () in
  let c =
    register eng_c
      (mk_rec ~epsilon:0.5
         ~window:
           {
             S.Workload.w_epochs = 3;
             w_budget = B.create ~epsilon:1.0 ~delta:1e-5;
             w_compose = Some 3;
           }
         "top1")
  in
  ignore (E.run_epochs eng_c 2);
  let vc2 = view eng_c c in
  let budget_bytes () = J.to_string (B.to_json (S.Service.budget_left svc_c)) in
  let window_spent_bytes v =
    match v.E.v_window with
    | Some w -> J.to_string (B.to_json (B.Window.spent w))
    | None -> failwith "continual_epochs: windowed session lost its window"
  in
  let budget_before = budget_bytes () and spent_before = window_spent_bytes vc2 in
  let e3c = E.tick eng_c in
  (match e3c with
  | [ { E.er_outcome = E.Window_refused _; _ } ] -> ()
  | _ -> failwith "continual_epochs: exhausted window did not refuse epoch 3");
  if budget_bytes () <> budget_before then
    failwith "continual_epochs: window refusal moved the service budget";
  if window_spent_bytes (view eng_c c) <> spent_before then
    failwith "continual_epochs: window refusal moved the window spend";
  let e4c = E.tick eng_c in
  let refund, cost =
    match (e4c, (view eng_c c).E.v_last_cost) with
    | [ { E.er_outcome = E.Ran { status = "executed"; _ }; er_refunded; _ } ],
      Some cost ->
        (er_refunded, cost)
    | _ -> failwith "continual_epochs: expired charge did not revive epoch 4"
  in
  if not (B.equal refund cost) then
    failwith "continual_epochs: expiry refund differs from the charged cost";
  expect "window refusals"
    (int_of_float (counter reg_c "arb_continual_window_refusals_total" []))
    1;
  Printf.printf
    "  window: refusal at epoch 3 (budget byte-identical), recovery at \
     epoch 4 on an exact %.3f-eps refund\n"
    refund.B.epsilon;

  (* Gate 4: determinism — the multi-epoch continual records and the
     underlying lifecycle records are byte-identical at any worker count. *)
  let det_epochs = 4 in
  let det_run workers =
    let _reg, svc, eng = fresh () in
    ignore
      (register eng ~name:"det-top1"
         (mk_rec ~epsilon:0.5
            ~window:
              {
                S.Workload.w_epochs = 4;
                w_budget = B.create ~epsilon:4.0 ~delta:1e-4;
                w_compose = Some 4;
              }
            "top1"));
    ignore (register eng ~name:"det-median" (mk_rec ~every:2 ~epsilon:0.4 "median"));
    let epochs = E.run_epochs ~workers eng det_epochs in
    ( String.concat "\n" (List.map E.records_string epochs),
      S.Lifecycle.records_to_string ~timings:false (S.Service.history svc) )
  in
  let workers_list = [ 1; 2; 3 ] in
  let runs = List.map det_run workers_list in
  (match runs with
  | (cont_ref, life_ref) :: rest ->
      List.iteri
        (fun i (cont, life) ->
          if cont <> cont_ref then
            failwith
              (Printf.sprintf
                 "continual_epochs: continual records diverge at workers=%d"
                 (List.nth workers_list (i + 1)));
          if life <> life_ref then
            failwith
              (Printf.sprintf
                 "continual_epochs: lifecycle records diverge at workers=%d"
                 (List.nth workers_list (i + 1))))
        rest
  | [] -> ());
  Printf.printf
    "  determinism: %d epochs x 2 sessions byte-identical at workers %s\n"
    det_epochs
    (String.concat "/" (List.map string_of_int workers_list));

  (* Gate 5: carried-state trajectory and reuse economics. *)
  let traj_epochs = if !smoke then 6 else 12 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let _reg_e, svc_e, eng_e = fresh () in
  let m = register eng_e (mk_rec ~epsilon:0.4 "median") in
  let estimates = ref [] in
  let (), wall =
    time (fun () ->
        for _ = 1 to traj_epochs do
          ignore (E.tick eng_e);
          estimates :=
            String.concat ";" (view eng_e m).E.v_estimate :: !estimates
        done)
  in
  let trajectory = List.rev !estimates in
  if List.length (List.sort_uniq compare trajectory) < 1 then
    failwith "continual_epochs: carried state produced no estimates";
  let cnt = S.Service.counters svc_e in
  let hit_rate =
    float_of_int cnt.S.Lifecycle.cache_hits
    /. float_of_int (max 1 cnt.S.Lifecycle.executed)
  in
  let epochs_per_s = float_of_int traj_epochs /. Float.max 1e-9 wall in
  Printf.printf
    "  carry: %d epochs in %s (%.1f epochs/s), cache hit rate %.2f, \
     estimate trajectory %s\n"
    traj_epochs (U.seconds_to_string wall) epochs_per_s hit_rate
    (String.concat " -> " trajectory);

  T.print
    ~header:[ "gate"; "result" ]
    [
      [ "steady state";
        Printf.sprintf "1 cold + %d revalidations" (steady_epochs - 1) ];
      [ "population drift"; "exactly 1 re-plan" ];
      [ "calibration drift"; "exactly 1 re-plan" ];
      [ "window exhaustion"; "refused; budget byte-identical" ];
      [ "window recovery"; "ran on exact expiry refund" ];
      [ "worker byte-identity";
        Printf.sprintf "%d epochs, workers 1/2/3" det_epochs ];
      [ "carry throughput"; Printf.sprintf "%.1f epochs/s" epochs_per_s ];
    ];
  let json =
    J.Obj
      [
        ("schema", J.String "arb-bench-continual/1");
        ("smoke", J.Bool !smoke);
        ( "steady",
          J.Obj
            [
              ("epochs", J.Int steady_epochs);
              ("cold_plans", J.Int va.E.v_cold);
              ("revalidations", J.Int va.E.v_revalidations);
              ("replans", J.Int va.E.v_replans);
            ] );
        ( "drift",
          J.Obj
            [
              ("population_replans", J.Int 1);
              ("calibration_replans", J.Int 1);
              ("total_replans", J.Int vb.E.v_replans);
            ] );
        ( "window",
          J.Obj
            [
              ("horizon_epochs", J.Int 3);
              ("refusal_epoch", J.Int 3);
              ("recovery_epoch", J.Int 4);
              ("refund_epsilon", J.Float refund.B.epsilon);
              ("budget_intact", J.Bool true);
            ] );
        ( "determinism",
          J.Obj
            [
              ("epochs", J.Int det_epochs);
              ( "workers",
                J.List (List.map (fun w -> J.Int w) workers_list) );
              ("byte_identical", J.Bool true);
            ] );
        ( "carry",
          J.Obj
            [
              ("epochs", J.Int traj_epochs);
              ("epochs_per_s", J.Float epochs_per_s);
              ("cache_hit_rate", J.Float hit_rate);
              ( "estimate_trajectory",
                J.List (List.map (fun e -> J.String e) trajectory) );
            ] );
      ]
  in
  let oc = open_out "BENCH_continual.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_continual.json\n"

(* --------------------------------------------------------------------- *)
(* calibration_loop: close the observability loop. Observed drains       *)
(* accumulate a snapshot store; fitting it must shrink the cost model's  *)
(* predicted-vs-measured error at least 2x; installing the fit re-prices *)
(* the plan cache and forces exactly one continual re-plan; and a fixed  *)
(* calibration keeps records byte-identical at any worker count. Writes  *)
(* BENCH_calibration.json.                                               *)
(* --------------------------------------------------------------------- *)

let calibration_loop () =
  let module S = Arb_service in
  let module E = Arb_continual.Engine in
  let module B = Arb_dp.Budget in
  let module Obs = Arb_obs in
  let module J = Arb_util.Json in
  let module C = P.Calibration in
  section
    "calibration_loop: self-calibrating cost model (BENCH_calibration.json)";
  let goal = P.Constraints.Min_part_exp_time in
  let devices = if !smoke then 24 else 48 in
  let queries =
    if !smoke then [ "top1"; "median" ]
    else [ "top1"; "median"; "hypotest"; "cms" ]
  in
  let mk_sub ~epsilon query =
    { S.Workload.query; epsilon; categories = None; goal; repeat = 1;
      every = None; window = None; tolerance = None }
  in
  let mk_rec ~epsilon query =
    { (mk_sub ~epsilon query) with S.Workload.every = Some 1 }
  in
  let counter reg name labels =
    let rows = match Obs.Metrics.to_json reg with J.List r -> r | _ -> [] in
    List.fold_left
      (fun acc row ->
        let name_ok =
          try J.to_str (J.member "name" row) = name
          with J.Parse_error _ -> false
        in
        let labels_ok =
          List.for_all
            (fun (k, v) ->
              try J.to_str (J.member k (J.member "labels" row)) = v
              with J.Parse_error _ -> false)
            labels
        in
        if name_ok && labels_ok then
          acc
          +. (try J.to_float (J.member "value" row)
              with J.Parse_error _ -> 0.0)
        else acc)
      0.0 rows
  in
  let snap_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "arb-bench-calibration-%d" (Unix.getpid ()))
  in
  let store = Filename.concat snap_dir "snapshots.jsonl" in
  if Sys.file_exists store then Sys.remove store;

  (* Phase 1: observe. One fresh service per query — each single drain
     appends one tagged snapshot, so the store holds one run per query. *)
  let run_workload ?calibration ?snapshots () =
    let reg = Obs.Metrics.create () in
    List.iter
      (fun name ->
        let svc =
          S.Service.create ~metrics:reg ?calibration
            ?snapshots:(Option.map (fun d -> (d, name)) snapshots)
            ~budget:(B.create ~epsilon:1.0e6 ~delta:0.5)
            ~devices ~seed:11 ()
        in
        ignore (S.Service.submit svc (mk_sub ~epsilon:0.5 name));
        ignore (S.Service.drain svc))
      queries;
    reg
  in
  let mean_err reg =
    let samples = C.samples_of_registry reg in
    if samples = [] then failwith "calibration_loop: no residual samples";
    List.fold_left
      (fun acc (_, p, m) -> acc +. (Float.abs (p -. m) /. Float.max (Float.abs m) 1e-12))
      0.0 samples
    /. float_of_int (List.length samples)
  in
  let reg_before = run_workload ~snapshots:snap_dir () in
  let err_observed = mean_err reg_before in

  (* Phase 2: fit, and gate the provenance — the post-fit mean relative
     error must be at most half the pre-fit error. *)
  let fitted =
    match C.fit_snapshots ~dir:snap_dir () with
    | Ok c -> c
    | Error m -> failwith ("calibration_loop: fit: " ^ m)
  in
  let prov = fitted.C.provenance in
  if prov.C.p_runs < List.length queries then
    failwith
      (Printf.sprintf "calibration_loop: fit used %d run(s), want %d"
         prov.C.p_runs (List.length queries));
  if prov.C.p_err_after > 0.5 *. prov.C.p_err_before then
    failwith
      (Printf.sprintf
         "calibration_loop: fit did not shrink the error 2x (%.4f -> %.4f)"
         prov.C.p_err_before prov.C.p_err_after);
  Printf.printf
    "  fit: %d run(s), mean relative error %.4f -> %.4f (%.0fx)\n"
    prov.C.p_runs prov.C.p_err_before prov.C.p_err_after
    (prov.C.p_err_before /. Float.max 1e-12 prov.C.p_err_after);

  (* Phase 3: verify by re-running the workload under the fitted model.
     The residual histogram's own quantile estimator summarizes both. *)
  let reg_after = run_workload ~calibration:fitted () in
  let err_fitted = mean_err reg_after in
  if err_fitted > 0.5 *. err_observed then
    failwith
      (Printf.sprintf
         "calibration_loop: re-run under the fit stayed at %.4f (was %.4f)"
         err_fitted err_observed);
  (* The residual histogram is labeled per section; summarize with the
     worst section's quantile. *)
  let pct reg q =
    List.fold_left
      (fun acc section ->
        match
          Obs.Metrics.histogram_quantile reg
            ~labels:[ ("section", section) ]
            "arb_cal_residual_rel" q
        with
        | Some v -> Float.max acc v
        | None -> acc)
      0.0
      (Obs.Metrics.label_values reg "arb_cal_residual_rel" ~label:"section")
  in
  Printf.printf
    "  verify: mean relative error %.4f -> %.4f; residual p50 %.3f -> \
     %.3f, p95 %.3f -> %.3f\n"
    err_observed err_fitted (pct reg_before 0.50) (pct reg_after 0.50)
    (pct reg_before 0.95) (pct reg_after 0.95);

  (* Phase 4: live install. A mild recalibration (one field group +20%)
     re-prices every cached plan in place; the aggressive fitted model
     (scales far past the 0.5 drift threshold) evicts them instead. *)
  let reg_svc = Obs.Metrics.create () in
  let svc =
    S.Service.create ~metrics:reg_svc
      ~budget:(B.create ~epsilon:1.0e6 ~delta:0.5)
      ~devices ~seed:11 ()
  in
  List.iter
    (fun name -> ignore (S.Service.submit svc (mk_sub ~epsilon:0.5 name)))
    queries;
  ignore (S.Service.drain svc);
  let cached = S.Cache.size (S.Service.cache svc) in
  if cached < List.length queries then
    failwith "calibration_loop: drains did not populate the plan cache";
  let d = P.Cost_model.default in
  let mild =
    C.make
      { d with P.Cost_model.kg_coeff_time = d.P.Cost_model.kg_coeff_time *. 1.2 }
  in
  let r_mild = S.Service.set_calibration svc mild in
  if (not r_mild.S.Service.changed) || r_mild.S.Service.repriced < 1 then
    failwith "calibration_loop: mild install did not re-price the cache";
  if r_mild.S.Service.invalidated > 0 then
    failwith "calibration_loop: mild install evicted entries below threshold";
  if int_of_float (counter reg_svc "arb_service_cache_repriced_total" []) < 1
  then failwith "calibration_loop: repriced counter did not move";
  let r_fit = S.Service.set_calibration svc fitted in
  if r_fit.S.Service.invalidated < 1 then
    failwith "calibration_loop: fitted install did not evict drifted entries";
  Printf.printf
    "  install: mild re-priced %d/%d in place; fitted evicted %d past the \
     drift threshold\n"
    r_mild.S.Service.repriced cached r_fit.S.Service.invalidated;

  (* Phase 5: continual sessions re-plan exactly once per calibration
     change, tagged "calibration drift". *)
  let reg_eng = Obs.Metrics.create () in
  let svc_eng =
    S.Service.create ~metrics:reg_eng
      ~budget:(B.create ~epsilon:1.0e6 ~delta:0.5)
      ~devices ~seed:11 ()
  in
  let eng = E.create ~service:svc_eng () in
  (match E.register eng ~carry_state:true (mk_rec ~epsilon:0.5 "top1") with
  | Ok _ -> ()
  | Error m -> failwith ("calibration_loop: register: " ^ m));
  ignore (E.run_epochs eng 2);
  E.set_calibration eng fitted.C.fingerprint;
  ignore (E.run_epochs eng 2);
  let replans =
    int_of_float
      (counter reg_eng "arb_continual_replans_total"
         [ ("reason", "calibration drift") ])
  in
  if replans <> 1 then
    failwith
      (Printf.sprintf
         "calibration_loop: calibration change forced %d re-plan(s), want \
          exactly 1"
         replans);
  Printf.printf "  continual: calibration change -> exactly 1 re-plan\n";

  (* Phase 6: determinism — under the one fixed fitted calibration, both
     lifecycle and continual records are byte-identical at any worker
     count. *)
  let det_epochs = 3 in
  let det_run workers =
    let svc =
      S.Service.create ~calibration:fitted
        ~budget:(B.create ~epsilon:1.0e6 ~delta:0.5)
        ~devices ~seed:11 ()
    in
    List.iter
      (fun name -> ignore (S.Service.submit svc (mk_sub ~epsilon:0.5 name)))
      queries;
    ignore (S.Service.drain ~workers svc);
    let eng = E.create ~service:svc () in
    E.set_calibration eng fitted.C.fingerprint;
    (match
       E.register eng ~name:"cal-det" ~carry_state:true
         (mk_rec ~epsilon:0.4 "median")
     with
    | Ok _ -> ()
    | Error m -> failwith ("calibration_loop: det register: " ^ m));
    let epochs = E.run_epochs ~workers eng det_epochs in
    ( S.Lifecycle.records_to_string ~timings:false (S.Service.history svc),
      String.concat "\n" (List.map E.records_string epochs) )
  in
  let workers_list = [ 1; 2; 3 ] in
  (match List.map det_run workers_list with
  | (life_ref, cont_ref) :: rest ->
      List.iteri
        (fun i (life, cont) ->
          if life <> life_ref then
            failwith
              (Printf.sprintf
                 "calibration_loop: lifecycle records diverge at workers=%d"
                 (List.nth workers_list (i + 1)));
          if cont <> cont_ref then
            failwith
              (Printf.sprintf
                 "calibration_loop: continual records diverge at workers=%d"
                 (List.nth workers_list (i + 1))))
        rest
  | [] -> ());
  Printf.printf
    "  determinism: fixed calibration byte-identical at workers %s\n"
    (String.concat "/" (List.map string_of_int workers_list));

  T.print
    ~header:[ "gate"; "result" ]
    [
      [ "fit 2x error shrink";
        Printf.sprintf "%.4f -> %.4f" prov.C.p_err_before prov.C.p_err_after ];
      [ "re-run under fit";
        Printf.sprintf "%.4f -> %.4f" err_observed err_fitted ];
      [ "cache re-price"; Printf.sprintf "%d in place" r_mild.S.Service.repriced ];
      [ "cache invalidate";
        Printf.sprintf "%d past threshold" r_fit.S.Service.invalidated ];
      [ "continual re-plan"; "exactly 1" ];
      [ "worker byte-identity";
        Printf.sprintf "workers %s"
          (String.concat "/" (List.map string_of_int workers_list)) ];
    ];
  let json =
    J.Obj
      [
        ("schema", J.String "arb-bench-calibration/1");
        ("smoke", J.Bool !smoke);
        ("queries", J.List (List.map (fun q -> J.String q) queries));
        ("devices", J.Int devices);
        ( "fit",
          J.Obj
            [
              ("runs", J.Int prov.C.p_runs);
              ("fingerprint", J.String fitted.C.fingerprint);
              ("err_before", J.Float prov.C.p_err_before);
              ("err_after", J.Float prov.C.p_err_after);
              ( "sections",
                J.List
                  (List.map
                     (fun s ->
                       J.Obj
                         [
                           ("section", J.String s.C.s_section);
                           ("samples", J.Int s.C.s_samples);
                           ("scale", J.Float s.C.s_scale);
                           ("err_before", J.Float s.C.s_err_before);
                           ("err_after", J.Float s.C.s_err_after);
                         ])
                     prov.C.p_sections) );
            ] );
        ( "verify",
          J.Obj
            [
              ("err_observed", J.Float err_observed);
              ("err_fitted", J.Float err_fitted);
              ("residual_p50_before", J.Float (pct reg_before 0.50));
              ("residual_p50_after", J.Float (pct reg_after 0.50));
              ("residual_p95_before", J.Float (pct reg_before 0.95));
              ("residual_p95_after", J.Float (pct reg_after 0.95));
            ] );
        ( "install",
          J.Obj
            [
              ("cached", J.Int cached);
              ("mild_repriced", J.Int r_mild.S.Service.repriced);
              ("mild_invalidated", J.Int r_mild.S.Service.invalidated);
              ("fitted_invalidated", J.Int r_fit.S.Service.invalidated);
            ] );
        ( "continual",
          J.Obj [ ("calibration_replans", J.Int replans) ] );
        ( "determinism",
          J.Obj
            [
              ("epochs", J.Int det_epochs);
              ("workers", J.List (List.map (fun w -> J.Int w) workers_list));
              ("byte_identical", J.Bool true);
            ] );
      ]
  in
  let oc = open_out "BENCH_calibration.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_calibration.json\n"

(* --------------------------------------------------------------------- *)
(* approx_crossover: approximate query processing. An analyst error       *)
(* tolerance admits device-sampled and sketched plan variants; the gates  *)
(* are the PR's acceptance criteria: the tolerance winner at paper scale  *)
(* is >=10x cheaper than the exact winner both priced and simulated-      *)
(* executed, spends strictly less budget (privacy amplification),         *)
(* measured error stays within the tolerance, the no-tolerance winner is  *)
(* byte-identical to the exact plan, and sampled execution reports are    *)
(* byte-identical at any worker count. Writes BENCH_approx.json.          *)
(* --------------------------------------------------------------------- *)

let approx_crossover () =
  let module R = Arb_runtime in
  let module J = Arb_util.Json in
  let module B = Arb_dp.Budget in
  section
    "approx_crossover: sampling + sketch plan variants (BENCH_approx.json)";
  let goal = P.Constraints.Min_part_exp_time in
  let plan_text p = Format.asprintf "%a" P.Plan.pp p in
  let plan_with ?tol ~q n =
    let limits =
      P.Constraints.with_error_tolerance P.Constraints.no_limits tol
    in
    let r = P.Search.plan ~limits ~goal ~query:q ~n () in
    match (r.P.Search.plan, r.P.Search.metrics) with
    | Some p, Some m -> (p, m)
    | _ -> failwith "approx_crossover: planner returned no plan"
  in
  let variant_of (p : P.Plan.t) =
    let sketch =
      List.fold_left
        (fun acc v ->
          match v.P.Plan.work with
          | P.Plan.W_he_sketch { width; depth; _ } ->
              Some (Printf.sprintf "cms %dx%d" depth width)
          | P.Plan.W_he_coarsen { groups; _ } ->
              Some (Printf.sprintf "coarsen %d" groups)
          | _ -> acc)
        None p.P.Plan.vignettes
    in
    String.concat "+"
      (List.filter_map Fun.id
         [
           Option.map (Printf.sprintf "sample %g") p.P.Plan.device_sample;
           sketch;
         ])
  in

  (* --- priced crossover: tolerance x N at the paper's category count --- *)
  let q_paper = Q.paper_instance "top1" in
  let tolerances = [ 0.01; 0.05; 0.1 ] in
  let sizes =
    if !smoke then [ 100_000; 1_000_000 ]
    else [ 1_000_000; 10_000_000; 100_000_000 ]
  in
  let n_gate = if !smoke then 1_000_000 else 100_000_000 in
  let cells =
    List.map
      (fun n ->
        let _, m_exact = plan_with ~q:q_paper n in
        if m_exact.Cm.est_error <> 0.0 then
          failwith "approx_crossover: exact winner carries est_error";
        let rows =
          List.map
            (fun tol ->
              let p, m = plan_with ~tol ~q:q_paper n in
              if m.Cm.est_error > tol then
                failwith
                  (Printf.sprintf
                     "approx_crossover: winner over tolerance (%.4f > %.4f)"
                     m.Cm.est_error tol);
              let speedup =
                P.Constraints.goal_value goal m_exact
                /. Float.max 1e-12 (P.Constraints.goal_value goal m)
              in
              (tol, p, m, speedup))
            tolerances
        in
        (n, m_exact, rows))
      sizes
  in
  T.print
    ~header:[ "N"; "tol"; "variant"; "est err"; "exact cost"; "approx"; "x" ]
    (List.concat_map
       (fun (n, m_exact, rows) ->
         List.map
           (fun (tol, p, m, speedup) ->
             [ U.si (float_of_int n); Printf.sprintf "%.2f" tol; variant_of p;
               Printf.sprintf "%.4f" m.Cm.est_error;
               U.seconds_to_string (P.Constraints.goal_value goal m_exact);
               U.seconds_to_string (P.Constraints.goal_value goal m);
               Printf.sprintf "%.0fx" speedup ])
           rows)
       cells);
  let priced_speedup =
    let _, _, rows = List.find (fun (n, _, _) -> n = n_gate) cells in
    let _, _, _, s = List.find (fun (t, _, _, _) -> t = 0.05) rows in
    s
  in
  if priced_speedup < 10.0 then
    failwith
      (Printf.sprintf
         "approx_crossover: priced speedup %.1fx < 10x at N=%d" priced_speedup
         n_gate);
  Printf.printf "  priced gate: tolerance 0.05 winner %.0fx cheaper at N=%s\n"
    priced_speedup
    (U.si (float_of_int n_gate));

  (* --- exactness gate: no tolerance (or one too tight for any variant)
     yields the byte-identical exact winner --- *)
  let p_none, m_none = plan_with ~q:q_paper n_gate in
  let p_tight, _ = plan_with ~tol:1e-12 ~q:q_paper n_gate in
  if plan_text p_none <> plan_text p_tight then
    failwith "approx_crossover: tight tolerance changed the exact winner";
  if p_none.P.Plan.device_sample <> None || m_none.Cm.est_error <> 0.0 then
    failwith "approx_crossover: no-tolerance winner is not exact";
  Printf.printf
    "  exactness gate: no tolerance == 1e-12 tolerance, byte-identical plan\n";

  (* --- simulated execution: the tolerance winner vs the exact winner over
     the same cohort-sharded population --- *)
  let qx = Q.test_instance ~epsilon:0.5 "top1" in
  let n_exec = min (paper_n ()) 100_000_000 in
  let exec_tol = 0.1 in
  let workers = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let cohort_size = if !smoke then 1_024 else 4_096 in
  let config =
    {
      R.Exec.default_config with
      R.Exec.seed = 3L;
      workers;
      budget = B.create ~epsilon:10.0 ~delta:1e-6;
      sharding = R.Exec.Sharded { cohort_size; sampled_cohorts = 1 };
    }
  in
  let src n = { R.Exec.n_devices = n; row = Q.device_source ~seed:7L qx } in
  let p_exact, _ = plan_with ~q:qx n_exec in
  let p_approx, m_approx = plan_with ~tol:exec_tol ~q:qx n_exec in
  if p_approx.P.Plan.device_sample = None then
    failwith "approx_crossover: tolerance winner does not sample devices";
  let rep_exact =
    R.Exec.execute_source config ~query:qx ~plan:p_exact ~src:(src n_exec)
  in
  let rep_approx =
    R.Exec.execute_source config ~query:qx ~plan:p_approx ~src:(src n_exec)
  in
  let upload t = t.R.Trace.device_upload_bytes in
  let exec_speedup =
    upload rep_exact.R.Exec.trace
    /. Float.max 1.0 (upload rep_approx.R.Exec.trace)
  in
  if exec_speedup < 10.0 then
    failwith
      (Printf.sprintf "approx_crossover: executed speedup %.1fx < 10x"
         exec_speedup);
  let spent r =
    10.0 -. r.R.Exec.budget_left.B.epsilon
  in
  if not (spent rep_approx < spent rep_exact) then
    failwith "approx_crossover: sampled plan did not spend strictly less budget";
  Printf.printf
    "  executed gate: %s -> %s upload bytes (%.0fx); budget %.4f vs %.4f eps\n"
    (U.si (upload rep_exact.R.Exec.trace))
    (U.si (upload rep_approx.R.Exec.trace))
    exec_speedup (spent rep_approx) (spent rep_exact);

  (* --- measured error vs the priced bound, at a scale where the true
     aggregate is computable --- *)
  let n_err = if !smoke then 50_000 else 200_000 in
  let err_cfg =
    {
      config with
      R.Exec.sharding =
        R.Exec.Sharded { cohort_size = 1_024; sampled_cohorts = 1 };
    }
  in
  let out_int r =
    let rec first = function
      | Arb_lang.Interp.V_int i :: _ -> i
      | _ :: rest -> first rest
      | [] -> failwith "approx_crossover: no integer output"
    in
    first r.R.Exec.outputs
  in
  let true_sums q n =
    let row = Q.device_source ~seed:7L q in
    let acc = Array.make q.Q.categories 0 in
    for i = 0 to n - 1 do
      Array.iteri (fun j v -> acc.(j) <- acc.(j) + v) (row i)
    done;
    acc
  in
  let measure name =
    let q = Q.test_instance ~epsilon:1.0 name in
    let p, m = plan_with ~tol:exec_tol ~q n_err in
    let rep =
      R.Exec.execute_source err_cfg ~query:q ~plan:p
        ~src:{ R.Exec.n_devices = n_err; row = Q.device_source ~seed:7L q }
    in
    let sums = true_sums q n_err in
    let idx = out_int rep in
    let err =
      match name with
      | "top1" ->
          let best = Array.fold_left max 0 sums in
          float_of_int (best - sums.(idx)) /. float_of_int (max 1 best)
      | _ ->
          (* median: rank (CDF mass) distance to the true median bin *)
          let total = Array.fold_left ( + ) 0 sums in
          let cdf i =
            let upto = ref 0 in
            for j = 0 to i do upto := !upto + sums.(j) done;
            float_of_int !upto /. float_of_int (max 1 total)
          in
          let rec true_median i =
            if i >= Array.length sums - 1 || cdf i >= 0.5 then i
            else true_median (i + 1)
          in
          Float.abs (cdf idx -. cdf (true_median 0))
    in
    if err > exec_tol then
      failwith
        (Printf.sprintf "approx_crossover: %s measured error %.4f > %.2f" name
           err exec_tol);
    (name, variant_of p, m.Cm.est_error, err)
  in
  let errors = List.map measure [ "top1"; "median" ] in
  List.iter
    (fun (name, variant, est, err) ->
      Printf.printf "  error gate: %s (%s) measured %.4f <= tol %.2f (est %.4f)\n"
        name variant err exec_tol est)
    errors;

  (* --- sampled execution byte-identity across worker counts --- *)
  let n_det = 50_000 in
  let p_det, _ = plan_with ~tol:exec_tol ~q:qx n_det in
  if p_det.P.Plan.device_sample = None then
    failwith "approx_crossover: determinism plan does not sample devices";
  let det_run w =
    let rep =
      R.Exec.execute_source
        { err_cfg with R.Exec.workers = w }
        ~query:qx ~plan:p_det ~src:(src n_det)
    in
    (rep.R.Exec.outputs, J.to_string (R.Trace.to_json rep.R.Exec.trace))
  in
  let det_workers = [ 1; 2; 3 ] in
  (match List.map det_run det_workers with
  | ref :: rest ->
      List.iteri
        (fun i r ->
          if r <> ref then
            failwith
              (Printf.sprintf
                 "approx_crossover: sampled run diverges at workers=%d"
                 (List.nth det_workers (i + 1))))
        rest
  | [] -> ());
  Printf.printf "  worker gate: sampled execution byte-identical at workers %s\n"
    (String.concat "/" (List.map string_of_int det_workers));

  let json =
    J.Obj
      [
        ("schema", J.String "arb-bench-approx/1");
        ("smoke", J.Bool !smoke);
        ("goal", J.String "part-exp-time");
        ( "priced",
          J.List
            (List.concat_map
               (fun (n, m_exact, rows) ->
                 List.map
                   (fun (tol, p, m, speedup) ->
                     J.Obj
                       [
                         ("devices", J.Int n);
                         ("tolerance", J.Float tol);
                         ("variant", J.String (variant_of p));
                         ("est_error", J.Float m.Cm.est_error);
                         ( "exact_cost",
                           J.Float (P.Constraints.goal_value goal m_exact) );
                         ( "approx_cost",
                           J.Float (P.Constraints.goal_value goal m) );
                         ("speedup", J.Float speedup);
                       ])
                   rows)
               cells) );
        ( "gates",
          J.Obj
            [
              ("gate_n", J.Int n_gate);
              ("priced_speedup", J.Float priced_speedup);
              ("exact_byte_identical", J.Bool true);
              ( "executed",
                J.Obj
                  [
                    ("devices", J.Int n_exec);
                    ("tolerance", J.Float exec_tol);
                    ("variant", J.String (variant_of p_approx));
                    ("est_error", J.Float m_approx.Cm.est_error);
                    ( "exact_upload_bytes",
                      J.Float (upload rep_exact.R.Exec.trace) );
                    ( "approx_upload_bytes",
                      J.Float (upload rep_approx.R.Exec.trace) );
                    ("speedup", J.Float exec_speedup);
                    ("exact_epsilon_spent", J.Float (spent rep_exact));
                    ("approx_epsilon_spent", J.Float (spent rep_approx));
                  ] );
              ( "measured_error",
                J.List
                  (List.map
                     (fun (name, variant, est, err) ->
                       J.Obj
                         [
                           ("query", J.String name);
                           ("variant", J.String variant);
                           ("devices", J.Int n_err);
                           ("est_error", J.Float est);
                           ("measured_error", J.Float err);
                           ("tolerance", J.Float exec_tol);
                         ])
                     errors) );
              ( "determinism",
                J.Obj
                  [
                    ("devices", J.Int n_det);
                    ( "workers",
                      J.List (List.map (fun w -> J.Int w) det_workers) );
                    ("byte_identical", J.Bool true);
                  ] );
            ] );
      ]
  in
  let oc = open_out "BENCH_approx.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_approx.json\n"

let all =
  [ ("table1", table1); ("table2", table2); ("fig6", fig6); ("fig7", fig7);
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
    ("fig12", fig12); ("ablations", ablations); ("accuracy", accuracy);
    ("validation", validation); ("e2e", e2e); ("chaos", chaos);
    ("planner_scaling", planner_scaling);
    ("service_throughput", service_throughput); ("profiling", profiling);
    ("crypto_kernels", crypto_kernels); ("device_scaling", device_scaling);
    ("service_load", service_load); ("continual_epochs", continual_epochs);
    ("calibration_loop", calibration_loop);
    ("approx_crossover", approx_crossover) ]
