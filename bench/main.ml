(* Benchmark entry point.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --only fig9  -- one experiment
     dune exec bench/main.exe -- --skip-micro -- skip the Bechamel pass
     dune exec bench/main.exe -- --smoke      -- tiny sizes (the bench-smoke
                                                alias, run under dune runtest)

   One Bechamel Test.make is registered per table/figure: it times the
   experiment's core computation at a reduced size, so the micro pass stays
   fast while the row-printing harness regenerates the full tables. *)

open Bechamel
open Toolkit

let micro_tests () =
  let rng = Arb_util.Rng.create 3L in
  let q_small = Arb_queries.Registry.test_instance "top1" in
  let q_med = Arb_queries.Registry.test_instance "median" in
  let p = Arb_crypto.Bgv.ahe_params ~n:256 () in
  let _sk, pk = Arb_crypto.Bgv.keygen p rng in
  let ct = Arb_crypto.Bgv.encrypt pk rng [| 1; 2; 3 |] in
  let strawman_n = 100_000 in
  [
    (* table1: strawman cost models *)
    Test.make ~name:"table1:strawmen"
      (Staged.stage (fun () ->
           ignore (Arb_baselines.Baselines.fhe_only ~n:strawman_n ~cols:1000);
           ignore (Arb_baselines.Baselines.all_to_all_mpc ~n:strawman_n)));
    (* table2: parsing + line counting of all queries *)
    Test.make ~name:"table2:parse-queries"
      (Staged.stage (fun () ->
           List.iter
             (fun n ->
               ignore
                 (Arb_lang.Ast.count_lines
                    (Arb_queries.Registry.test_instance n).Arb_queries.Registry.program))
             Arb_queries.Registry.names));
    (* fig6/7/8 share the pricing machinery: one plan + combine *)
    Test.make ~name:"fig6:price-plan"
      (Staged.stage (fun () ->
           ignore (Arb_planner.Search.plan ~query:q_small ~n:1_000_000 ())));
    Test.make ~name:"fig7:committee-sizing"
      (Staged.stage (fun () ->
           ignore
             (Arb_dp.Committee.min_size ~f:0.03 ~g:0.15 ~committees:1000
                ~p1:1e-11)));
    Test.make ~name:"fig8:he-add"
      (Staged.stage (fun () -> ignore (Arb_crypto.Bgv.add ct ct)));
    (* fig9: the planner itself on a mid-size query *)
    Test.make ~name:"fig9:planner-median"
      (Staged.stage (fun () ->
           ignore (Arb_planner.Search.plan ~query:q_med ~n:1_000_000 ())));
    (* fig10: planning under a binding limit *)
    Test.make ~name:"fig10:plan-limited"
      (Staged.stage (fun () ->
           let limits =
             Arb_planner.Constraints.with_agg_core_hours
               Arb_planner.Constraints.evaluation_limits 1000.0
           in
           ignore (Arb_planner.Search.plan ~limits ~query:q_small ~n:(1 lsl 20) ())));
    (* fig11: the power model's input — a committee MPC cost *)
    Test.make ~name:"fig11:gumbel-sample"
      (Staged.stage (fun () ->
           let eng = Arb_mpc.Engine.create ~parties:5 rng () in
           ignore (Arb_mpc.Fixpoint_mpc.gumbel eng ~scale:(Arb_util.Fixed.of_float 10.0))));
    (* fig12: round counting for the heterogeneity model *)
    Test.make ~name:"fig12:mpc-rounds"
      (Staged.stage (fun () ->
           let eng = Arb_mpc.Engine.create ~parties:7 rng () in
           let a = Arb_mpc.Engine.input eng ~party:0 5 in
           ignore (Arb_mpc.Engine.open_value eng (Arb_mpc.Engine.mul eng a a))));
    (* e2e: a miniature full run *)
    Test.make ~name:"e2e:sha256-merkle"
      (Staged.stage (fun () ->
           let t = Arb_crypto.Merkle.build [| "a"; "b"; "c"; "d" |] in
           ignore (Arb_crypto.Merkle.verify ~root:(Arb_crypto.Merkle.root t) ~leaf:"c"
                     (Arb_crypto.Merkle.prove t 2))));
  ]

let run_micro () =
  print_endline "==================== Bechamel micro-benchmarks ====================";
  let clock = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let grouped = Test.make_grouped ~name:"arboretum" (micro_tests ()) in
  let raw = Benchmark.all cfg [ clock ] grouped in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let rendered =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Arb_util.Units.seconds_to_string (est *. 1e-9) ^ "/run"
        | _ -> "(no estimate)"
      in
      rows := (name, rendered) :: !rows)
    results;
  List.iter
    (fun (name, v) -> Printf.printf "  %-40s %s\n" name v)
    (List.sort compare !rows)

let () =
  let only = ref None and skip_micro = ref false in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--only" :: v :: rest ->
        only := Some v;
        parse rest
    | "--skip-micro" :: rest ->
        skip_micro := true;
        parse rest
    | "--smoke" :: rest ->
        Experiments.smoke := true;
        parse rest
    | _ :: rest -> parse rest
  in
  parse args;
  (match !only with
  | Some name -> (
      match List.assoc_opt name Experiments.all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst Experiments.all));
          exit 1)
  | None ->
      if not !skip_micro then run_micro ();
      List.iter (fun (_, f) -> f ()) Experiments.all)
