(* Heavy hitters: the app-battery-drain question from the paper's
   introduction ("which apps cause a large battery drain?"). Each device
   one-hot encodes the app that drained its battery most; the analyst wants
   the top five offenders — the topK query — plus how dominant the worst
   offender is (the free-gap variant).

   Compares the two exponential-mechanism instantiations (Fig. 4) that the
   planner chooses between, by forcing each and executing both.

   Run with:  dune exec examples/heavy_hitters.exe *)

let apps = 32

let topk_src = {|
  drains = sum(db);
  for round = 1 to 5 do
    worst = em(drains);
    output(worst);
    drains[worst] = 0 - N;
  endfor
|}

let gap_src = {|
  drains = sum(db);
  r = emGap(drains);
  output(r[0]);
  output(r[1]);
|}

let () =
  let n = 256 in
  (* Five em rounds at eps = 2.5 need a larger standing budget than the
     default config provides. *)
  let config =
    {
      Arb_runtime.Exec.default_config with
      budget = Arb_dp.Budget.create ~epsilon:100.0 ~delta:1e-3;
    }
  in
  let mk name source =
    Arboretum.query_of_source ~name ~source ~row:(Arboretum.one_hot apps)
      ~epsilon:2.5 ()
  in
  let topk = mk "battery-top5" topk_src in
  let db = Arboretum.synthesize_database ~seed:21L ~skew:1.6 topk ~n in
  let counts = Array.make apps 0 in
  Array.iter (fun row -> Array.iteri (fun j v -> counts.(j) <- counts.(j) + v) row) db;
  let order = Array.init apps Fun.id in
  Array.sort (fun a b -> compare counts.(b) counts.(a)) order;
  Printf.printf "true top-5 apps: %s\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int (Array.sub order 0 5))));

  let planned = Arboretum.plan ~limits:Arb_planner.Constraints.no_limits ~n topk in
  Printf.printf "planner chose the %s instantiation of em\n"
    (match planned.Arboretum.plan.Arb_planner.Plan.em_variant with
    | `Gumbel -> "Gumbel-noise"
    | `Exponentiate -> "exponentiation"
    | `Sketch -> "count-min sketch"
    | `None -> "?");
  let report = Arboretum.run ~config ~db planned in
  Printf.printf "DP top-5: %s\n" (String.concat ", " (Arboretum.outputs_to_strings report));

  (* Force the other instantiation (Fig. 4 left): same query, same data. *)
  let forced =
    {
      planned with
      Arboretum.plan =
        { planned.Arboretum.plan with Arb_planner.Plan.em_variant = `Exponentiate };
    }
  in
  let report' = Arboretum.run ~config ~db forced in
  Printf.printf "DP top-5 (exponentiation variant): %s\n"
    (String.concat ", " (Arboretum.outputs_to_strings report'));

  (* Free-gap query: winner plus its lead over the runner-up. *)
  let gap = mk "battery-gap" gap_src in
  let gp = Arboretum.plan ~limits:Arb_planner.Constraints.no_limits ~n gap in
  let greport = Arboretum.run ~config ~db:(Arboretum.synthesize_database ~seed:21L ~skew:1.6 gap ~n) gp in
  (match greport.Arb_runtime.Exec.outputs with
  | [ w; g ] ->
      Printf.printf "worst app: %s, noisy lead over runner-up: %s users\n"
        (Arb_lang.Interp.value_to_string w)
        (Arb_lang.Interp.value_to_string g)
  | _ -> print_endline "unexpected gap output shape")
