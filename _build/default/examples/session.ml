(* Query chains: a deployment answers many queries over its lifetime
   (§5.1–5.2). Each query's key-generation committee consumes the previous
   certificate's randomness block (so nobody can grind future committees),
   deducts the query's certified privacy cost from the shared budget, and
   mints the next block inside its signed certificate.

   This example runs an analyst "work session" — a mode query, a top-3
   sweep, and a median — over one device population, then shows the refusal
   when the budget runs dry and verifies the whole certificate chain.

   Run with:  dune exec examples/session.exe *)

let categories = 24

let mk name source epsilon =
  Arboretum.query_of_source ~name ~source ~row:(Arboretum.one_hot categories)
    ~epsilon ()

let () =
  let top1 = mk "mode" "h = sum(db); output(em(h));" 1.0 in
  let top3 =
    mk "top3"
      {|
        h = sum(db);
        for r = 1 to 3 do
          w = em(h);
          output(w);
          h[w] = 0 - N;
        endfor
      |}
      0.5
  in
  let median =
    mk "median"
      {|
        h = sum(db);
        pre = prefixSums(h);
        target = N / 2;
        for i = 0 to C - 1 do
          d = pre[i] - target;
          scores[i] = 0 - abs(d);
        endfor
        output(em(scores));
      |}
      1.0
  in
  let db = Arboretum.synthesize_database ~seed:77L ~skew:1.4 top1 ~n:128 in
  (* Budget for roughly the three queries: 1.0 + 3*0.5 + 1.0 = 3.5. *)
  let session =
    Arb_runtime.Session.create
      ~budget:(Arb_dp.Budget.create ~epsilon:3.6 ~delta:1e-3)
      ~db ()
  in
  let show name q =
    match Arb_runtime.Session.run session q with
    | Ok r ->
        Printf.printf "%-8s (round %d, block %s...) -> %s   [budget left: %s]\n" name
          r.Arb_runtime.Session.query_index
          (String.sub r.Arb_runtime.Session.block_used 0
             (min 8 (String.length r.Arb_runtime.Session.block_used)))
          (String.concat "; "
             (List.map Arb_lang.Interp.value_to_string
                r.Arb_runtime.Session.report.Arb_runtime.Exec.outputs))
          (Format.asprintf "%a" Arb_dp.Budget.pp
             (Arb_runtime.Session.budget_left session))
    | Error m -> Printf.printf "%-8s -> refused: %s\n" name m
  in
  show "mode" top1;
  show "top3" top3;
  show "median" median;
  (* The budget is now at 0.1 — another 1.0-epsilon query must be refused. *)
  show "mode" top1;
  Printf.printf "certificate chain verifies: %b\n"
    (Arb_runtime.Session.chain_verifies session)
