(* Quickstart: write a query, certify + plan it for a billion devices, then
   execute it end to end at simulation scale with real cryptography.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* An analyst writes the query as if the whole database sat on one
     machine: db is N x C; each row one-hot-encodes a category. *)
  let query =
    Arboretum.query_of_source ~name:"favorite-color"
      ~source:
        {|
          counts = sum(db);
          winner = em(counts);
          output(winner);
        |}
      ~row:(Arboretum.one_hot 16) ~epsilon:2.0 ()
  in

  (* Planning phase (Fig. 1): certification, plan-space search, scoring. *)
  let planned = Arboretum.plan ~n:1_000_000_000 query in
  print_endline "=== chosen plan for N = 10^9 devices ===";
  print_string (Arboretum.explain planned);

  (* Execution phase at simulation scale: every ciphertext, share, proof and
     committee below is real. *)
  let db = Arboretum.synthesize_database query ~n:128 in
  let sim = Arboretum.plan ~limits:Arb_planner.Constraints.no_limits ~n:128 query in
  let report = Arboretum.run ~db sim in
  Printf.printf "\n=== simulated run over %d devices ===\n" (Array.length db);
  Printf.printf "outputs: %s\n" (String.concat "; " (Arboretum.outputs_to_strings report));
  Printf.printf "certificate verified: %b; aggregator audit passed: %b\n"
    report.Arb_runtime.Exec.certificate_ok report.Arb_runtime.Exec.audit_ok;

  (* Compare against the single-machine reference semantics. *)
  let reference = Arboretum.reference_outputs ~db query in
  Printf.printf "reference (cleartext) output: %s\n"
    (String.concat "; " (List.map Arb_lang.Interp.value_to_string reference))
