(* Quantiles: the paper notes that the Böhler–Kerschbaum median query "can
   be easily extended to support quantiles" (§7). Arboretum's language makes
   that a one-line change — the rank target moves from N/2 to p*N — so one
   program template yields median, quartiles, or any percentile, each
   planned and executed like any other query.

   Each device one-hot encodes its value into one of C buckets; the query
   scores each bucket by how close its prefix count is to the target rank
   and selects with the exponential mechanism.

   Run with:  dune exec examples/quantiles.exe *)

let buckets = 32

(* rank_divisor = k selects the (1/k)-quantile: 2 = median, 4 = lower
   quartile; for the upper quartile we use 3N/4 via a numerator. *)
let quantile_src ~num ~den =
  Printf.sprintf
    {|
      hist = sum(db);
      pre = prefixSums(hist);
      target = %d * N / %d;
      for i = 0 to C - 1 do
        d = pre[i] - target;
        scores[i] = 0 - abs(d);
      endfor
      choice = em(scores);
      output(choice);
    |}
    num den

let () =
  let n = 256 in
  (* A right-skewed population over the buckets. *)
  let rng = Arb_util.Rng.create 31L in
  let db =
    Array.init n (fun _ ->
        let row = Array.make buckets 0 in
        let v =
          let u = Arb_util.Rng.uniform01 rng in
          min (buckets - 1) (int_of_float (u *. u *. float_of_int buckets))
        in
        row.(v) <- 1;
        row)
  in
  let counts = Array.make buckets 0 in
  Array.iter (fun row -> Array.iteri (fun j v -> counts.(j) <- counts.(j) + v) row) db;
  let true_quantile p =
    let target = int_of_float (p *. float_of_int n) in
    let acc = ref 0 and res = ref 0 and found = ref false in
    Array.iteri
      (fun i c ->
        acc := !acc + c;
        if (not !found) && !acc >= target then begin
          res := i;
          found := true
        end)
      counts;
    !res
  in
  let config =
    {
      Arb_runtime.Exec.default_config with
      Arb_runtime.Exec.budget = Arb_dp.Budget.create ~epsilon:10_000.0 ~delta:0.1;
    }
  in
  List.iter
    (fun (label, num, den, p) ->
      let q =
        Arboretum.query_of_source
          ~name:(Printf.sprintf "quantile-%s" label)
          ~source:(quantile_src ~num ~den) ~row:(Arboretum.one_hot buckets)
          ~epsilon:500.0 ()
      in
      let planned = Arboretum.plan ~limits:Arb_planner.Constraints.no_limits ~n q in
      let report = Arboretum.run ~config ~db planned in
      Printf.printf "%-14s -> bucket %-3s (true: %d)\n" label
        (String.concat ";" (Arboretum.outputs_to_strings report))
        (true_quantile p))
    [ ("lower quartile", 1, 4, 0.25); ("median", 1, 2, 0.5);
      ("upper quartile", 3, 4, 0.75); ("90th percentile", 9, 10, 0.9) ]
