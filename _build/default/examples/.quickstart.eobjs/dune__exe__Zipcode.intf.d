examples/zipcode.mli:
