examples/quantiles.mli:
