examples/quantiles.ml: Arb_dp Arb_planner Arb_runtime Arb_util Arboretum Array List Printf String
