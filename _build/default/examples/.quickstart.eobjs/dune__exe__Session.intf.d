examples/session.mli:
