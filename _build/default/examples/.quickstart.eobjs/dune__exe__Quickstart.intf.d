examples/quickstart.mli:
