examples/zipcode.ml: Arb_baselines Arb_planner Arb_util Arboretum Array Printf String
