examples/session.ml: Arb_dp Arb_lang Arb_runtime Arboretum Format List Printf String
