examples/heavy_hitters.ml: Arb_dp Arb_lang Arb_planner Arb_runtime Arboretum Array Fun Printf String
