examples/medical.mli:
