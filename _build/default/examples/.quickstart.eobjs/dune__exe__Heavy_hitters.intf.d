examples/heavy_hitters.mli:
