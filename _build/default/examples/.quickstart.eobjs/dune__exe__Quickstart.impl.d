examples/quickstart.ml: Arb_lang Arb_planner Arb_runtime Arboretum Array List Printf String
