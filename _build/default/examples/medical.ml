(* A medical-study scenario from the paper's introduction: a researcher
   looks for drug combinations that trigger rare side effects. Each device
   holds one patient's (drug-combination, side-effect) pair, one-hot
   encoded; the analyst asks two questions under one privacy budget:

     1. a DP hypothesis test — "do more than 10% of patients on combination
        X report the side effect?" (Laplace mechanism), and
     2. the most common combination among affected patients (exponential
        mechanism),

   demonstrating budget accounting across queries: the key-generation
   committee refuses the third query when the budget runs out (§5.2).

   Run with:  dune exec examples/medical.exe *)

let combos = 24 (* drug-combination categories *)

let hypotest_src = {|
  counts = sum(db);
  affected = laplace(counts[0]);
  threshold = N / 10;
  if affected > threshold then
    output(1);
  else
    output(0);
  endif
|}

let common_src = {|
  counts = sum(db);
  worst = em(counts);
  output(worst);
|}

let () =
  let n = 384 in
  let rng = Arb_util.Rng.create 13L in
  let mk name source =
    Arboretum.query_of_source ~name ~source ~row:(Arboretum.one_hot combos)
      ~epsilon:1.0 ()
  in
  let q1 = mk "side-effect-test" hypotest_src in
  let q2 = mk "worst-combination" common_src in
  (* Population: combination 3 is overrepresented; ~15% of rows fall in
     category 0 ("reports the side effect"). *)
  let db =
    Array.init n (fun _ ->
        let row = Array.make combos 0 in
        let c =
          if Arb_util.Rng.uniform01 rng < 0.15 then 0
          else if Arb_util.Rng.uniform01 rng < 0.5 then 3
          else Arb_util.Rng.int rng combos
        in
        row.(c) <- 1;
        row)
  in
  (* A standing budget: each query costs epsilon = 1.0; the third request
     must be refused. *)
  let budget = Arb_dp.Budget.create ~epsilon:2.0 ~delta:1e-6 in
  let config = { Arb_runtime.Exec.default_config with budget } in
  let run_query label q budget =
    let planned = Arboretum.plan ~limits:Arb_planner.Constraints.no_limits ~n q in
    let config = { config with budget } in
    let report = Arboretum.run ~config ~db planned in
    Printf.printf "%-18s -> %s   (budget left: %s)\n" label
      (String.concat "; " (Arboretum.outputs_to_strings report))
      (Format.asprintf "%a" Arb_dp.Budget.pp report.Arb_runtime.Exec.budget_left);
    report.Arb_runtime.Exec.budget_left
  in
  let budget = run_query "hypothesis test" q1 budget in
  let budget = run_query "worst combination" q2 budget in
  (match
     run_query "third query" q1 budget
   with
  | _ -> print_endline "BUG: third query should have been refused"
  | exception Arb_runtime.Setup.Budget_exhausted ->
      print_endline "third query        -> refused: privacy budget exhausted (as intended)")
