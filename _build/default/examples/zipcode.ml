(* The paper's motivating query (§3.2): "Which zip code in the United States
   contains the most participants?" — a categorical query over 41,683
   possible zip codes, far beyond what single-committee systems can noise.

   This example shows how the planner handles the real category count for a
   10^8-device deployment (the strawman comparison of Table 1), then runs a
   scaled-down version (64 "zip codes", 192 devices) end to end.

   Run with:  dune exec examples/zipcode.exe *)

let zipcodes_in_us = 41_683

let source = {|
  perZip = sum(db);
  popular = em(perZip);
  output(popular);
|}

let () =
  let n = 100_000_000 in
  let query =
    Arboretum.query_of_source ~name:"zipcode" ~source
      ~row:(Arboretum.one_hot zipcodes_in_us) ~epsilon:0.1 ()
  in
  let planned = Arboretum.plan ~n query in
  Printf.printf "=== plan for %d zip codes, N = 10^8 ===\n" zipcodes_in_us;
  print_string (Arboretum.explain planned);

  (* Contrast with the strawmen of §3.2 / Table 1. *)
  let fhe = Arb_baselines.Baselines.fhe_only ~n ~cols:zipcodes_in_us in
  let mpc = Arb_baselines.Baselines.all_to_all_mpc ~n in
  Printf.printf "\n=== strawmen at the same scale ===\n";
  Printf.printf "FHE-only aggregator compute: %s (%s)\n"
    (Arb_util.Units.seconds_to_string fhe.Arb_baselines.Baselines.agg_compute_seconds)
    fhe.Arb_baselines.Baselines.description;
  Printf.printf "All-to-all MPC per-participant traffic: %s (%s)\n"
    (Arb_util.Units.bytes_to_string mpc.Arb_baselines.Baselines.participant_bytes_typical)
    mpc.Arb_baselines.Baselines.description;
  Printf.printf "Arboretum expected per-participant traffic: %s\n"
    (Arb_util.Units.bytes_to_string
       planned.Arboretum.metrics.Arb_planner.Cost_model.part_exp_bytes);

  (* Scaled-down end-to-end run. *)
  let small =
    Arboretum.query_of_source ~name:"zipcode-sim" ~source
      ~row:(Arboretum.one_hot 64) ~epsilon:2.0 ()
  in
  let db = Arboretum.synthesize_database ~skew:1.4 small ~n:192 in
  let sim = Arboretum.plan ~limits:Arb_planner.Constraints.no_limits ~n:192 small in
  let report = Arboretum.run ~db sim in
  let truth =
    (* Cleartext mode of the synthetic population, for comparison. *)
    let counts = Array.make 64 0 in
    Array.iter
      (fun row -> Array.iteri (fun j v -> counts.(j) <- counts.(j) + v) row)
      db;
    let best = ref 0 in
    Array.iteri (fun j c -> if c > counts.(!best) then best := j) counts;
    !best
  in
  Printf.printf "\n=== simulated run (64 zip codes, 192 devices) ===\n";
  Printf.printf "DP winner: %s   (true mode: %d)\n"
    (String.concat "; " (Arboretum.outputs_to_strings report))
    truth
