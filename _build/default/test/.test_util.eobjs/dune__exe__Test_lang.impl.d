test/test_lang.ml: Alcotest Arb_dp Arb_lang Arb_queries Arb_util Array Float Int64 List QCheck QCheck_alcotest String
