test/test_runtime.ml: Alcotest Arb_dp Arb_lang Arb_planner Arb_queries Arb_runtime Arb_util Array Float Format Fun Int64 List Option Printf String
