test/test_planner.ml: Alcotest Arb_baselines Arb_lang Arb_planner Arb_queries Arb_util Float Format List Printf QCheck QCheck_alcotest String
