test/test_mpc.mli:
