test/test_crypto.ml: Alcotest Arb_crypto Arb_util Array Bytes Char Fun Gen Int64 List Printf QCheck QCheck_alcotest String
