test/test_dp.ml: Alcotest Arb_dp Arb_util Array Float Fun List Printf QCheck QCheck_alcotest
