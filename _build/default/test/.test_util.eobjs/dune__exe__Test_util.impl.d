test/test_util.ml: Alcotest Arb_util Array Float Fun Int64 List Printf QCheck QCheck_alcotest String
