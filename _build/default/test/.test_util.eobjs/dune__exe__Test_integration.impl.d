test/test_integration.ml: Alcotest Arb_dp Arb_lang Arb_planner Arb_queries Arb_runtime Arb_util Arboretum Array Buffer Float List Printf QCheck QCheck_alcotest String
