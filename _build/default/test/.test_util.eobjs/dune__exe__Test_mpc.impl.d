test/test_mpc.ml: Alcotest Arb_mpc Arb_util Array Float Fun Gen Int64 List Printf QCheck QCheck_alcotest
