(* Tests for the query language: lexer, parser, pretty-printer, type/range
   inference, interpreter, and differential-privacy certification. *)

module L = Arb_lang
module Q = Arb_queries.Registry
module I = Arb_util.Interval
module Rng = Arb_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let one_hot k = L.Ast.One_hot k

let program ?(epsilon = 0.5) ?(row = one_hot 4) src =
  { L.Ast.name = "t"; body = L.Parser.parse_stmt src; row; epsilon }

(* ---------------- lexer ---------------- *)

let test_lexer_tokens () =
  let toks = L.Lexer.tokenize "for i = 0 to 9 do x[i] = i * 2; endfor" in
  checki "token count" 18 (List.length toks) (* incl. EOF *)

let test_lexer_operators () =
  let toks = L.Lexer.tokenize "a <= b && c != d || !e" in
  checkb "has LE" true (List.mem L.Lexer.LE toks);
  checkb "has AND" true (List.mem L.Lexer.AND toks);
  checkb "has NE" true (List.mem L.Lexer.NE toks);
  checkb "has OR" true (List.mem L.Lexer.OR toks);
  checkb "has NOT" true (List.mem L.Lexer.NOT toks)

let test_lexer_comments_and_floats () =
  let toks = L.Lexer.tokenize "x = 2.5; // a comment\ny = 3" in
  checkb "float lexed" true (List.mem (L.Lexer.FLOAT 2.5) toks);
  checkb "comment skipped" true
    (not (List.exists (function L.Lexer.IDENT "comment" -> true | _ -> false) toks))

let test_lexer_rejects () =
  checkb "bad character" true
    (try
       ignore (L.Lexer.tokenize "x = #");
       false
     with L.Lexer.Lex_error _ -> true)

(* ---------------- parser ---------------- *)

let test_parser_precedence () =
  let e = L.Parser.parse_expr "1 + 2 * 3" in
  checkb "mul binds tighter" true
    (e = L.Ast.Binop (L.Ast.Add, L.Ast.Int_lit 1,
                       L.Ast.Binop (L.Ast.Mul, L.Ast.Int_lit 2, L.Ast.Int_lit 3)));
  let e2 = L.Parser.parse_expr "(1 + 2) * 3" in
  checkb "parens override" true
    (e2 = L.Ast.Binop (L.Ast.Mul,
                        L.Ast.Binop (L.Ast.Add, L.Ast.Int_lit 1, L.Ast.Int_lit 2),
                        L.Ast.Int_lit 3))

let test_parser_left_assoc () =
  let e = L.Parser.parse_expr "10 - 4 - 3" in
  checkb "subtraction left-assoc" true
    (e = L.Ast.Binop (L.Ast.Sub,
                       L.Ast.Binop (L.Ast.Sub, L.Ast.Int_lit 10, L.Ast.Int_lit 4),
                       L.Ast.Int_lit 3))

let test_parser_statements () =
  let s = L.Parser.parse_stmt "if a > 1 then output(1); else output(0); endif" in
  (match s with
  | L.Ast.If (_, L.Ast.Output _, L.Ast.Output _) -> ()
  | _ -> Alcotest.fail "unexpected if shape");
  let s2 = L.Parser.parse_stmt "for i = 1 to 3 do x[i] = i; endfor" in
  (match s2 with
  | L.Ast.For ("i", L.Ast.Int_lit 1, L.Ast.Int_lit 3, L.Ast.Assign_idx _) -> ()
  | _ -> Alcotest.fail "unexpected for shape")

let test_parser_rejects () =
  List.iter
    (fun src ->
      checkb src true
        (try
           ignore (L.Parser.parse_stmt src);
           false
         with L.Parser.Parse_error _ -> true))
    [ "x = "; "for i = 1 do x = 1; endfor"; "if x then y = 1;";
      "output(1, 2);"; "x = (1 + 2" ]

(* Random AST generator for the parse/pretty roundtrip property. *)
let gen_expr : L.Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ map (fun i -> L.Ast.Int_lit (abs i)) small_int;
                return (L.Ast.Var "x");
                return (L.Ast.Var "y");
                map (fun b -> L.Ast.Bool_lit b) bool ]
          else
            frequency
              [ (3, map2 (fun op (e1, e2) -> L.Ast.Binop (op, e1, e2))
                     (oneofl L.Ast.[ Add; Sub; Mul; Div ])
                     (pair (self (n / 2)) (self (n / 2))));
                (1, map (fun e -> L.Ast.Unop (L.Ast.Neg, e)) (self (n - 1)));
                (1, map (fun e -> L.Ast.Index ("arr", [ e ])) (self (n - 1)));
                (1, map (fun e -> L.Ast.Call ("abs", [ e ])) (self (n - 1)));
                (2, self 0) ])
        (min n 8))

let prop_parse_pretty_roundtrip_expr =
  QCheck.Test.make ~name:"parse (pretty e) = e" ~count:500
    (QCheck.make ~print:L.Pretty.expr gen_expr)
    (fun e -> L.Parser.parse_expr (L.Pretty.expr e) = e)

let gen_stmt : L.Ast.stmt QCheck.Gen.t =
  let open QCheck.Gen in
  let expr = gen_expr in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ map (fun e -> L.Ast.Assign ("v", e)) expr;
                map (fun e -> L.Ast.Output e) expr;
                map2 (fun i e -> L.Ast.Assign_idx ("arr", [ L.Ast.Int_lit (abs i) ], e)) small_int expr ]
          else
            frequency
              [ (2, map2 (fun a b -> L.Ast.Seq [ a; b ]) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun c (s1, s2) -> L.Ast.If (L.Ast.Binop (L.Ast.Lt, c, L.Ast.Int_lit 5), s1, s2))
                       expr (pair (self (n / 2)) (self (n / 2))));
                (1, map (fun s -> L.Ast.For ("i", L.Ast.Int_lit 0, L.Ast.Int_lit 3, s)) (self (n - 1)));
                (3, self 0) ])
        (min n 6))

(* The parser flattens Seq nesting; compare modulo that normalization. *)
let rec normalize (s : L.Ast.stmt) : L.Ast.stmt list =
  match s with
  | L.Ast.Seq ss -> List.concat_map normalize ss
  | L.Ast.For (v, a, b, body) -> [ L.Ast.For (v, a, b, renest body) ]
  | L.Ast.If (c, s1, s2) -> [ L.Ast.If (c, renest s1, renest s2) ]
  | s -> [ s ]

and renest s = match normalize s with [ x ] -> x | xs -> L.Ast.Seq xs

let prop_parse_pretty_roundtrip_stmt =
  QCheck.Test.make ~name:"parse (pretty s) = s (modulo Seq nesting)" ~count:300
    (QCheck.make ~print:L.Pretty.stmt gen_stmt)
    (fun s -> normalize (L.Parser.parse_stmt (L.Pretty.stmt s)) = normalize s)

let test_roundtrip_all_registry_queries () =
  List.iter
    (fun name ->
      let q = Q.test_instance name in
      let body = q.Q.program.L.Ast.body in
      checkb name true (L.Parser.parse_stmt (L.Pretty.stmt body) = body))
    Q.names

(* ---------------- validation ---------------- *)

let test_validate_catches_issues () =
  let issues src =
    L.Validate.check (program src) |> List.map (fun i -> i.L.Validate.message)
  in
  checkb "unknown builtin" true
    (List.exists (fun m -> String.length m > 0) (issues "x = frobnicate(1);"));
  checkb "wrong arity" true (issues "x = clip(1, 2);" <> []);
  checkb "assign to db" true (issues "db = 1;" <> []);
  checkb "assign to N" true (issues "N = 1;" <> []);
  checkb "output as expression" true (issues "x = output(1);" <> []);
  checkb "clean program passes" true (issues "h = sum(db); output(em(h));" = [])

let test_validate_row_and_epsilon () =
  let bad_eps = { (program "output(1);") with L.Ast.epsilon = 0.0 } in
  checkb "epsilon 0 flagged" true (L.Validate.check bad_eps <> []);
  let bad_row =
    { (program "output(1);") with L.Ast.row = L.Ast.Bounded { width = 2; lo = 5; hi = 1 } }
  in
  checkb "inverted bounds flagged" true (L.Validate.check bad_row <> []);
  Alcotest.check_raises "check_exn raises"
    (Invalid_argument "epsilon must be positive (privacy)") (fun () ->
      L.Validate.check_exn bad_eps)

let test_builtins_table () =
  checkb "sum is a builtin" true (L.Builtins.is_builtin "sum");
  checkb "frobnicate is not" false (L.Builtins.is_builtin "frobnicate");
  checkb "mechanisms listed" true
    (List.sort compare L.Builtins.mechanisms = [ "em"; "emGap"; "laplace" ]);
  (match L.Builtins.find "clip" with
  | Some i -> checki "clip arity" 3 i.L.Builtins.arity
  | None -> Alcotest.fail "clip missing")

(* ---------------- types ---------------- *)

let test_types_ranges () =
  let p = program "aggr = sum(db); x = aggr[0] + 5;" in
  let env = L.Types.infer p ~n:100 in
  (match L.Types.lookup env "aggr" with
  | Some ty ->
      checkb "histogram range [0,100]" true (I.equal ty.L.Types.range (I.make 0 100));
      checkb "vector of C" true (ty.L.Types.dims = [ 4 ])
  | None -> Alcotest.fail "aggr untyped");
  match L.Types.lookup env "x" with
  | Some ty -> checkb "x range [5,105]" true (I.equal ty.L.Types.range (I.make 5 105))
  | None -> Alcotest.fail "x untyped"

let test_types_loop_accumulator_converges () =
  let p = program "t = 0; for i = 0 to 9 do t = t + i; endfor output(t);" in
  let env = L.Types.infer p ~n:10 in
  match L.Types.lookup env "t" with
  | Some ty -> checkb "accumulator widened, not diverged" true (ty.L.Types.range.I.hi > 0)
  | None -> Alcotest.fail "t untyped"

let test_types_plaintext_bits () =
  let p = program "aggr = sum(db); output(em(aggr));" in
  let env = L.Types.infer p ~n:1000 in
  checkb "bits cover counts up to 1000" true (L.Types.plaintext_bits_needed env >= 11);
  checki "category count" 4 (L.Types.max_category_count env)

let test_types_rejects () =
  List.iter
    (fun src ->
      checkb src true
        (try
           ignore (L.Types.infer (program src) ~n:10);
           false
         with L.Types.Type_error _ -> true))
    [ "x = y + 1;" (* unbound *);
      "x = 1 && 2;" (* bool op on ints *);
      "if 1 + 1 then output(1); endif" (* non-bool condition *);
      "x = db[0][0][0];" (* over-indexing *) ]

let test_types_static_loop_bounds_required () =
  let src = "h = sum(db); x = laplace(h[0]); for i = 0 to x do output(1); endfor" in
  checkb "dynamic bound rejected" true
    (try
       ignore (L.Types.infer (program src) ~n:10);
       false
     with L.Types.Type_error _ -> true)

(* ---------------- interpreter ---------------- *)

let run_src ?(row = one_hot 4) ?(epsilon = 1000.0) ?(db = [| [| 0; 1; 0; 0 |]; [| 0; 1; 0; 0 |]; [| 1; 0; 0; 0 |] |]) src =
  L.Interp.run (program ~epsilon ~row src) ~db (Rng.create 5L)

let test_interp_sum_and_em () =
  (* epsilon huge -> em is effectively argmax. *)
  match run_src "aggr = sum(db); output(em(aggr));" with
  | [ L.Interp.V_int 1 ] -> ()
  | other ->
      Alcotest.failf "unexpected output: %s"
        (String.concat ";" (List.map L.Interp.value_to_string other))

let test_interp_loops_arrays () =
  match run_src "s = 0; for i = 1 to 10 do s = s + i; endfor output(s);" with
  | [ L.Interp.V_int 55 ] -> ()
  | _ -> Alcotest.fail "bad loop sum"

let test_interp_prefix_suffix () =
  (match run_src "h = sum(db); p = prefixSums(h); output(p[3]);" with
  | [ L.Interp.V_int 3 ] -> ()
  | _ -> Alcotest.fail "prefix total");
  match run_src "h = sum(db); s = suffixSums(h); output(s[0]);" with
  | [ L.Interp.V_int 3 ] -> ()
  | _ -> Alcotest.fail "suffix total"

let test_interp_division_by_zero () =
  checkb "div by zero raises" true
    (try
       ignore (run_src "x = 1 / 0; output(x);");
       false
     with L.Interp.Runtime_error _ -> true)

let test_interp_fix_arithmetic () =
  match run_src "x = 2.5 * 4; output(x);" with
  | [ L.Interp.V_fix f ] ->
      checkb "2.5 * 4 = 10" true (Float.abs (Arb_util.Fixed.to_float f -. 10.0) < 0.001)
  | _ -> Alcotest.fail "expected fix"

let test_interp_clip_abs () =
  (match run_src "output(clip(17, 0, 10));" with
  | [ L.Interp.V_int 10 ] -> ()
  | _ -> Alcotest.fail "clip");
  match run_src "output(abs(0 - 5));" with
  | [ L.Interp.V_int 5 ] -> ()
  | _ -> Alcotest.fail "abs"

let test_interp_all_queries_produce_output () =
  let rng = Rng.create 6L in
  List.iter
    (fun name ->
      let q = Q.test_instance name in
      let db = Q.random_database rng q ~n:50 () in
      let outs = L.Interp.run q.Q.program ~db (Rng.create 7L) in
      checkb (name ^ " produces outputs") true (List.length outs > 0))
    Q.names

let test_interp_em_respects_epsilon () =
  (* Tiny epsilon: very noisy, winner varies; huge epsilon: always mode. *)
  let db = Array.init 60 (fun i -> if i < 50 then [| 1; 0; 0; 0 |] else [| 0; 0; 1; 0 |]) in
  let winners eps =
    List.init 20 (fun s ->
        match
          L.Interp.run (program ~epsilon:eps "output(em(sum(db)));") ~db
            (Rng.create (Int64.of_int s))
        with
        | [ L.Interp.V_int w ] -> w
        | _ -> -1)
  in
  checkb "high epsilon deterministic mode" true
    (List.for_all (fun w -> w = 0) (winners 10000.0));
  checkb "low epsilon varies" true
    (List.sort_uniq compare (winners 0.001) |> List.length > 1)

let test_interp_nested_arrays () =
  match run_src "m[1][2] = 7; output(m[1][2]); output(m[1][0]);" with
  | [ L.Interp.V_int 7; L.Interp.V_int 0 ] -> ()
  | other ->
      Alcotest.failf "nested arrays: %s"
        (String.concat ";" (List.map L.Interp.value_to_string other))

let test_interp_out_of_bounds () =
  checkb "read out of bounds raises" true
    (try
       ignore (run_src "h = sum(db); output(declassify(h[99]));");
       false
     with L.Interp.Runtime_error _ -> true)

let test_interp_empty_loop () =
  match run_src "s = 1; for i = 5 to 4 do s = s + 1; endfor output(s);" with
  | [ L.Interp.V_int 1 ] -> ()
  | _ -> Alcotest.fail "empty loop should not execute"

let test_interp_gap_shape () =
  match run_src "h = sum(db); r = emGap(h); output(r[0]); output(r[1]);" with
  | [ L.Interp.V_int w; L.Interp.V_fix _ ] -> checki "winner is mode" 1 w
  | _ -> Alcotest.fail "emGap must yield [int; fix]"

let test_interp_bool_ops () =
  match run_src "x = 3; if x > 1 && !(x > 5) then output(1); else output(0); endif" with
  | [ L.Interp.V_int 1 ] -> ()
  | _ -> Alcotest.fail "boolean combination"

(* ---------------- certification ---------------- *)

let certified src row =
  (L.Certify.certify (program ~row src) ~n:1000).L.Certify.certified

let test_certify_accepts_registry () =
  List.iter
    (fun name ->
      let q = Q.test_instance name in
      let r = L.Certify.certify q.Q.program ~n:1000 in
      checkb (name ^ " certified") true r.L.Certify.certified)
    Q.names

let test_certify_rejects_leaks () =
  List.iter
    (fun src -> checkb src false (certified src (one_hot 4)))
    [
      "a = sum(db); output(a[0]);" (* raw count *);
      "output(db[0][0]);" (* raw input *);
      "a = sum(db); if a[0] > 5 then output(1); else output(0); endif"
      (* implicit flow *);
      "a = sum(db); b = a[0] * a[1]; output(laplace(b));"
      (* nonlinear sensitivity *);
      "output(declassify(db[0][0]));" (* declassify of raw data *);
      "a = sum(db); b = max(a); output(laplace(b));" (* max has unbounded sens *);
    ]

let test_certify_budget_accounting () =
  let r =
    L.Certify.certify
      (program ~epsilon:0.3 "a = sum(db); for i = 1 to 4 do output(em(a)); endfor")
      ~n:100
  in
  checkb "certified" true r.L.Certify.certified;
  checki "4 calls" 4 r.L.Certify.mechanism_calls;
  checkb "eps = 1.2" true (Float.abs (r.L.Certify.cost.Arb_dp.Budget.epsilon -. 1.2) < 1e-9)

let test_certify_sensitivity_values () =
  let sens src row =
    (L.Certify.certify (program ~row src) ~n:1000).L.Certify.sensitivity
  in
  checkb "histogram sens 1" true (sens "output(em(sum(db)));" (one_hot 4) = 1.0);
  (* prefix sums double the bound *)
  checkb "scan sens 2" true
    (sens "output(em(prefixSums(sum(db))));" (one_hot 4) = 2.0);
  (* bounded rows *)
  let r =
    L.Certify.certify
      (program ~row:(L.Ast.Bounded { width = 2; lo = 0; hi = 50 })
         "h = sum(db); output(laplace(h[0]));")
      ~n:1000
  in
  checkb "bounded row sens 50" true (r.L.Certify.sensitivity = 50.0)

let test_certify_amplification () =
  let r =
    L.Certify.certify
      (program ~epsilon:1.0
         "s = sampleUniform(db, 0.1); h = sum(s); output(laplace(h[0]));")
      ~n:1000
  in
  checkb "certified" true r.L.Certify.certified;
  let expect = Arb_dp.Budget.amplified_epsilon ~epsilon:1.0 ~phi:0.1 in
  checkb "amplified epsilon charged" true
    (Float.abs (r.L.Certify.cost.Arb_dp.Budget.epsilon -. expect) < 1e-9)

let test_certify_never_raises () =
  (* Even type errors come back as reports, not exceptions. *)
  let r = L.Certify.certify (program "x = unknown_fn(1);") ~n:10 in
  checkb "not certified" false r.L.Certify.certified;
  checkb "has reason" true (r.L.Certify.reason <> None)

let () =
  Alcotest.run "arb_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments and floats" `Quick test_lexer_comments_and_floats;
          Alcotest.test_case "rejects" `Quick test_lexer_rejects;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "left associativity" `Quick test_parser_left_assoc;
          Alcotest.test_case "statements" `Quick test_parser_statements;
          Alcotest.test_case "rejects" `Quick test_parser_rejects;
          qtest prop_parse_pretty_roundtrip_expr;
          qtest prop_parse_pretty_roundtrip_stmt;
          Alcotest.test_case "registry roundtrips" `Quick
            test_roundtrip_all_registry_queries;
        ] );
      ( "validate",
        [
          Alcotest.test_case "structural issues" `Quick test_validate_catches_issues;
          Alcotest.test_case "row shape and epsilon" `Quick
            test_validate_row_and_epsilon;
          Alcotest.test_case "builtin table" `Quick test_builtins_table;
        ] );
      ( "types",
        [
          Alcotest.test_case "ranges" `Quick test_types_ranges;
          Alcotest.test_case "loop accumulator" `Quick
            test_types_loop_accumulator_converges;
          Alcotest.test_case "plaintext bits" `Quick test_types_plaintext_bits;
          Alcotest.test_case "rejects" `Quick test_types_rejects;
          Alcotest.test_case "static loop bounds" `Quick
            test_types_static_loop_bounds_required;
        ] );
      ( "interp",
        [
          Alcotest.test_case "sum + em" `Quick test_interp_sum_and_em;
          Alcotest.test_case "loops and accumulators" `Quick test_interp_loops_arrays;
          Alcotest.test_case "prefix/suffix sums" `Quick test_interp_prefix_suffix;
          Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
          Alcotest.test_case "fixpoint arithmetic" `Quick test_interp_fix_arithmetic;
          Alcotest.test_case "clip and abs" `Quick test_interp_clip_abs;
          Alcotest.test_case "all queries run" `Quick
            test_interp_all_queries_produce_output;
          Alcotest.test_case "em epsilon behavior" `Slow test_interp_em_respects_epsilon;
          Alcotest.test_case "nested arrays" `Quick test_interp_nested_arrays;
          Alcotest.test_case "out of bounds" `Quick test_interp_out_of_bounds;
          Alcotest.test_case "empty loop" `Quick test_interp_empty_loop;
          Alcotest.test_case "emGap shape" `Quick test_interp_gap_shape;
          Alcotest.test_case "boolean operators" `Quick test_interp_bool_ops;
        ] );
      ( "certify",
        [
          Alcotest.test_case "accepts the ten queries" `Quick test_certify_accepts_registry;
          Alcotest.test_case "rejects leaky queries" `Quick test_certify_rejects_leaks;
          Alcotest.test_case "budget accounting" `Quick test_certify_budget_accounting;
          Alcotest.test_case "sensitivity values" `Quick test_certify_sensitivity_values;
          Alcotest.test_case "amplification" `Quick test_certify_amplification;
          Alcotest.test_case "never raises" `Quick test_certify_never_raises;
        ] );
    ]
