(* Tests for the honest-majority MPC engine, fixpoint layer and committee
   protocols. *)

module E = Arb_mpc.Engine
module Fm = Arb_mpc.Fixpoint_mpc
module Pr = Arb_mpc.Protocols
module Fx = Arb_util.Fixed
module Rng = Arb_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let fresh ?(parties = 5) seed = E.create ~parties (Rng.create seed) ()

(* ---------------- engine arithmetic ---------------- *)

let prop_engine_affine =
  QCheck.Test.make ~name:"engine add/sub/scale match cleartext" ~count:200
    QCheck.(triple (int_range (-100000) 100000) (int_range (-100000) 100000) (int_range (-50) 50))
    (fun (a, b, k) ->
      let eng = fresh 1L in
      let sa = E.input eng ~party:0 a and sb = E.input eng ~party:1 b in
      E.open_value eng (E.add eng sa sb) = a + b
      && E.open_value eng (E.sub eng sa sb) = a - b
      && E.open_value eng (E.scale eng k sa) = k * a
      && E.open_value eng (E.neg eng sb) = -b
      && E.open_value eng (E.add_const eng sa 17) = a + 17)

let prop_engine_beaver_mul =
  QCheck.Test.make ~name:"Beaver multiplication matches cleartext" ~count:200
    QCheck.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (a, b) ->
      let eng = fresh 2L in
      let sa = E.input eng ~party:0 a and sb = E.input eng ~party:1 b in
      E.open_value eng (E.mul eng sa sb) = a * b)

let test_engine_const_and_select () =
  let eng = fresh 3L in
  let a = E.input eng ~party:0 11 and b = E.input eng ~party:1 22 in
  let one = E.const eng 1 and zero = E.const eng 0 in
  checki "select true" 11 (E.open_value eng (E.select eng one a b));
  checki "select false" 22 (E.open_value eng (E.select eng zero a b))

let test_engine_less_than () =
  let eng = fresh 4L in
  let a = E.input eng ~party:0 5 and b = E.input eng ~party:1 9 in
  checki "5 < 9" 1 (E.open_value eng (E.less_than eng a b));
  checki "9 < 5 is false" 0 (E.open_value eng (E.less_than eng b a));
  checki "5 < 5 is false" 0 (E.open_value eng (E.less_than eng a a))

let test_engine_trunc () =
  let eng = fresh 5L in
  let a = E.input eng ~party:0 (7 * 65536 + 1234) in
  checki "trunc positive" 7 (E.open_value eng (E.trunc eng a ~bits:16));
  let b = E.input eng ~party:0 (-(7 * 65536 + 1234)) in
  checki "trunc negative (toward zero)" (-7) (E.open_value eng (E.trunc eng b ~bits:16))

let test_engine_cheater_corrected () =
  (* 5 parties, threshold 2: decoding radius floor((5-2-1)/2) = 1, so a
     single Byzantine share is corrected, not fatal — the honest-majority
     guarantee. *)
  let eng = fresh 6L in
  let a = E.input eng ~party:0 42 in
  E.corrupt_share eng a ~party:3;
  checki "opened correctly despite the cheater" 42 (E.open_value eng a);
  Alcotest.check Alcotest.(list int) "cheater identified" [ 3 ]
    (E.detected_cheaters eng)

let test_engine_cheating_beyond_radius () =
  let eng = fresh 7L in
  let a = E.input eng ~party:0 42 in
  E.corrupt_share eng a ~party:3;
  E.corrupt_share eng a ~party:4;
  (* Two corruptions exceed the 5-party radius: abort (with this message or
     the mirror-divergence invariant, depending on whether the garbage
     happens to decode). *)
  checkb "abort beyond radius" true
    (try
       ignore (E.open_value eng a);
       false
     with E.Cheating_detected _ -> true)

let test_engine_cheating_in_mul_corrected () =
  let eng = fresh 8L in
  let a = E.input eng ~party:0 5 and b = E.input eng ~party:1 6 in
  E.corrupt_share eng a ~party:4;
  checki "multiplication survives one cheater" 30 (E.open_value eng (E.mul eng a b));
  checkb "cheater recorded" true (List.mem 4 (E.detected_cheaters eng))

let test_engine_threshold () =
  List.iter
    (fun parties ->
      let eng = fresh ~parties 8L in
      checki
        (Printf.sprintf "threshold for %d" parties)
        ((parties - 1) / 2)
        (E.threshold eng))
    [ 2; 3; 5; 42 ]

let test_engine_costs_accrue () =
  let eng = fresh 9L in
  let a = E.input eng ~party:0 1 and b = E.input eng ~party:1 2 in
  let before = (E.cost eng).Arb_mpc.Cost.triples in
  ignore (E.mul eng a b);
  let after = (E.cost eng).Arb_mpc.Cost.triples in
  checkb "multiplication consumed a triple" true (after > before);
  checkb "bytes accrued" true ((E.cost eng).Arb_mpc.Cost.bytes_per_party > 0);
  checkb "rounds accrued" true ((E.cost eng).Arb_mpc.Cost.rounds > 0)

let test_engine_more_parties_more_bytes () =
  let run parties =
    let eng = fresh ~parties 10L in
    let a = E.input eng ~party:0 3 and b = E.input eng ~party:1 4 in
    ignore (E.open_value eng (E.mul eng a b));
    (E.cost eng).Arb_mpc.Cost.bytes_per_party
  in
  checkb "per-party bytes grow with committee size" true (run 11 > run 3)

(* ---------------- fixpoint layer ---------------- *)

let close ?(tol = 0.01) a b = Float.abs (a -. b) <= tol

let prop_fixpoint_mul =
  QCheck.Test.make ~name:"fixpoint mul matches float" ~count:200
    QCheck.(pair (float_range (-300.0) 300.0) (float_range (-300.0) 300.0))
    (fun (a, b) ->
      let eng = fresh 11L in
      let sa = Fm.of_fixed eng ~party:0 (Fx.of_float a) in
      let sb = Fm.of_fixed eng ~party:1 (Fx.of_float b) in
      close ~tol:0.05 (Fx.to_float (Fm.open_fixed eng (Fm.mul eng sa sb))) (a *. b))

let prop_fixpoint_exp2 =
  QCheck.Test.make ~name:"fixpoint exp2 close to reference" ~count:100
    QCheck.(float_range (-8.0) 12.0)
    (fun x ->
      let eng = fresh 12L in
      let s = Fm.of_fixed eng ~party:0 (Fx.of_float x) in
      let got = Fx.to_float (Fm.open_fixed eng (Fm.exp2 eng s)) in
      let want = 2.0 ** x in
      Float.abs (got -. want) /. Float.max 1.0 want < 0.01)

let prop_fixpoint_log2 =
  QCheck.Test.make ~name:"fixpoint log2 equals reference" ~count:100
    QCheck.(float_range 0.001 10000.0)
    (fun x ->
      let eng = fresh 13L in
      let fx = Fx.of_float x in
      QCheck.assume (Fx.compare fx Fx.zero > 0);
      let s = Fm.of_fixed eng ~party:0 fx in
      Fx.equal (Fm.open_fixed eng (Fm.log2 eng s)) (Fx.log2 fx))

let test_fixpoint_max2 () =
  let eng = fresh 14L in
  let a = Fm.of_fixed eng ~party:0 (Fx.of_float 2.5) in
  let b = Fm.of_fixed eng ~party:1 (Fx.of_float (-7.0)) in
  checkb "max2" true
    (Fx.equal (Fm.open_fixed eng (Fm.max2 eng a b)) (Fx.of_float 2.5))

let test_fixpoint_uniform01 () =
  let eng = fresh 15L in
  for _ = 1 to 50 do
    let u = Fx.to_float (Fm.open_fixed eng (Fm.uniform01 eng)) in
    checkb "in (0,1)" true (u > 0.0 && u < 1.0)
  done

let test_fixpoint_gumbel_stats () =
  let eng = fresh 16L in
  let n = 400 in
  let samples =
    Array.init n (fun _ ->
        Fx.to_float (Fm.open_fixed eng (Fm.gumbel eng ~scale:Fx.one)))
  in
  let mean = Arb_util.Stats.mean samples in
  (* Gumbel(0,1) mean = 0.5772; wide tolerance for 400 16-bit samples. *)
  checkb (Printf.sprintf "gumbel mean %.3f" mean) true (Float.abs (mean -. 0.5772) < 0.25)

let test_fixpoint_laplace_stats () =
  let eng = fresh 17L in
  let n = 400 in
  let samples =
    Array.init n (fun _ ->
        Fx.to_float (Fm.open_fixed eng (Fm.laplace eng ~scale:(Fx.of_float 2.0))))
  in
  checkb "laplace mean near 0" true (Float.abs (Arb_util.Stats.mean samples) < 0.5);
  let var = Arb_util.Stats.variance samples in
  checkb (Printf.sprintf "laplace variance %.2f near 8" var) true
    (var > 4.0 && var < 13.0)

let test_engine_joint_uniform_bits () =
  let eng = fresh 30L in
  for _ = 1 to 100 do
    let v = E.open_value eng (E.joint_uniform_bits eng ~bits:10) in
    checkb "within 10 bits" true (v >= 0 && v < 1024)
  done;
  checkb "rejects bad widths" true
    (try
       ignore (E.joint_uniform_bits eng ~bits:0);
       false
     with Invalid_argument _ -> true)

let test_engine_modulus_large_values () =
  (* Values near +-q/4 must survive arithmetic (centered representation). *)
  let eng = fresh 31L in
  let big = E.modulus eng / 4 in
  let a = E.input eng ~party:0 big and b = E.input eng ~party:1 (-big) in
  checki "big + (-big) = 0" 0 (E.open_value eng (E.add eng a b));
  checki "big - big = 0" 0 (E.open_value eng (E.sub eng a a))

let test_fixpoint_clip_behavior () =
  let eng = fresh 32L in
  (* select/less_than composition as used by the runtime's clip *)
  let v = Fm.of_fixed eng ~party:0 (Fx.of_float 42.0) in
  let hi = E.const eng (Fx.to_raw (Fx.of_float 10.0)) in
  let above = Fm.less_than eng hi v in
  let clipped = E.select eng above hi v in
  checkb "clip caps at hi" true
    (Fx.equal (Fm.open_fixed eng clipped) (Fx.of_float 10.0))

let test_protocols_argmax_first_of_ties () =
  let eng = fresh 33L in
  let scores =
    Array.map (fun v -> Fm.of_fixed eng ~party:0 (Fx.of_float v)) [| 5.0; 5.0; 5.0 |]
  in
  checki "ties resolve to the first index" 0 (E.open_value eng (Pr.argmax eng scores))

let test_protocols_rank_select_saturates () =
  let eng = fresh 34L in
  let h = Array.map (fun v -> E.input eng ~party:0 v) [| 2; 3 |] in
  (* rank beyond the total: the last bucket wins (found flag never set
     means chosen stays 0 — verify the documented smallest-exceeding rule
     with an in-range rank instead, and that out-of-range gives 0). *)
  checki "in-range rank" 1 (E.open_value eng (Pr.rank_select eng h ~rank:4));
  checki "rank 0" 0 (E.open_value eng (Pr.rank_select eng h ~rank:0))

let test_fixpoint_noise_survives_lattice_edges () =
  (* Regression: u drawn at the top of the 16-bit lattice used to make
     ln(u) collapse to 0 under truncation, crashing the outer log of the
     Gumbel sampler. Draw enough samples to cross the edge repeatedly. *)
  let eng = fresh 40L in
  for _ = 1 to 300_000 do
    ignore (Fm.gumbel eng ~scale:Fx.one)
  done;
  for _ = 1 to 50_000 do
    ignore (Fm.laplace eng ~scale:Fx.one)
  done;
  checkb "no lattice-edge crashes" true true

let test_fixpoint_mul_rounds_to_nearest () =
  let eng = fresh 41L in
  (* ln2 * (one quantum) must survive as one quantum, not truncate to 0. *)
  let tiny = Fm.of_sec_int eng (E.const eng 0) in
  let tiny = E.add_const eng tiny (-1) (* raw -1 = -1/65536 *) in
  let scaled = Fm.mul_public eng (Fx.of_float 0.6931) tiny in
  checki "rounds to -1 quantum, not 0" (-1) (E.open_value eng scaled)

(* ---------------- protocols ---------------- *)

let test_protocols_sum_prefix () =
  let eng = fresh 18L in
  let vals = [| 3; -1; 4; 1; 5 |] in
  let shared = Array.map (fun v -> E.input eng ~party:0 v) vals in
  checki "sum" 12 (E.open_value eng (Pr.sum eng shared));
  let prefixes = Pr.prefix_sums eng shared in
  Alcotest.check
    Alcotest.(array int)
    "prefix sums" [| 3; 2; 6; 7; 12 |]
    (Array.map (E.open_value eng) prefixes)

let prop_protocols_argmax =
  QCheck.Test.make ~name:"argmax matches cleartext" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 12) (int_range (-1000) 1000))
    (fun vals ->
      let eng = fresh 19L in
      let arr = Array.of_list vals in
      let shared =
        Array.map (fun v -> Fm.of_fixed eng ~party:0 (Fx.of_int v)) arr
      in
      let got = E.open_value eng (Pr.argmax eng shared) in
      (* argmax returns the first maximal index *)
      let best = ref 0 in
      Array.iteri (fun i v -> if v > arr.(!best) then best := i) arr;
      got = !best)

let prop_protocols_rank_select =
  QCheck.Test.make ~name:"rank_select = smallest index with prefix > rank" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 1 10) (int_range 0 20)) (int_range 0 100))
    (fun (hist, rank) ->
      let total = List.fold_left ( + ) 0 hist in
      QCheck.assume (total > 0);
      let rank = rank mod total in
      let eng = fresh 20L in
      let arr = Array.of_list hist in
      let shared = Array.map (fun v -> E.input eng ~party:0 v) arr in
      let got = E.open_value eng (Pr.rank_select eng shared ~rank) in
      (* reference *)
      let want =
        let acc = ref 0 and res = ref (Array.length arr - 1) and found = ref false in
        Array.iteri
          (fun i v ->
            acc := !acc + v;
            if (not !found) && !acc > rank then begin
              res := i;
              found := true
            end)
          arr;
        !res
      in
      got = want)

let test_em_gumbel_prefers_max () =
  (* With a large gap and moderate epsilon, the winner should almost always
     be the true maximum. *)
  let wins = ref 0 in
  for seed = 1 to 30 do
    let eng = fresh (Int64.of_int (100 + seed)) in
    let scores =
      Array.map (fun v -> Fm.of_fixed eng ~party:0 (Fx.of_float v)) [| 5.0; 120.0; 30.0 |]
    in
    if Pr.em_gumbel eng ~epsilon:1.0 ~sensitivity:1.0 scores = 1 then incr wins
  done;
  checkb (Printf.sprintf "em gumbel wins %d/30" !wins) true (!wins >= 27)

let test_em_exponentiate_prefers_max () =
  let wins = ref 0 in
  for seed = 1 to 30 do
    let eng = fresh (Int64.of_int (200 + seed)) in
    let scores =
      Array.map (fun v -> Fm.of_fixed eng ~party:0 (Fx.of_float v)) [| 5.0; 120.0; 30.0 |]
    in
    if Pr.em_exponentiate eng ~epsilon:1.0 ~sensitivity:1.0 scores = 1 then incr wins
  done;
  checkb (Printf.sprintf "em exp wins %d/30" !wins) true (!wins >= 27)

let test_em_gumbel_randomizes () =
  (* With equal scores each index should win sometimes. *)
  let seen = Array.make 3 false in
  for seed = 1 to 40 do
    let eng = fresh (Int64.of_int (300 + seed)) in
    let scores =
      Array.map (fun v -> Fm.of_fixed eng ~party:0 (Fx.of_float v)) [| 10.0; 10.0; 10.0 |]
    in
    seen.(Pr.em_gumbel eng ~epsilon:1.0 ~sensitivity:1.0 scores) <- true
  done;
  checkb "all categories reachable" true (Array.for_all Fun.id seen)

let test_em_gumbel_gap () =
  let eng = fresh 21L in
  let scores =
    Array.map (fun v -> Fm.of_fixed eng ~party:0 (Fx.of_float v)) [| 5.0; 220.0; 30.0 |]
  in
  let w, gap = Pr.em_gumbel_gap eng ~epsilon:2.0 ~sensitivity:1.0 scores in
  checki "winner" 1 w;
  checkb "gap positive" true (Fx.to_float gap > 0.0);
  checkb "gap roughly score difference" true (Float.abs (Fx.to_float gap -. 190.0) < 60.0)

let test_ceremony_charges () =
  let eng = fresh 22L in
  Pr.charge_bgv_keygen eng ~n:1024 ~rns_primes:2;
  Pr.charge_bgv_decrypt eng ~n:1024 ~rns_primes:2 ~ciphertexts:3;
  Pr.charge_zk_setup eng ~constraints:1000;
  let c = E.cost eng in
  checkb "rounds charged" true (c.Arb_mpc.Cost.rounds > 10);
  checkb "bytes charged" true (c.Arb_mpc.Cost.bytes_per_party > 1024 * 4);
  checkb "triples charged" true (c.Arb_mpc.Cost.triples >= 2 * 1024)

let test_reshare_roundtrip () =
  let eng = fresh 23L in
  let v = E.reshare_in eng 777 in
  checki "reshare_in preserves value" 777 (E.open_value eng v);
  let a = E.input eng ~party:0 123 in
  checki "reshare_out exports value" 123 (E.reshare_out eng a)

let () =
  Alcotest.run "arb_mpc"
    [
      ( "engine",
        [
          qtest prop_engine_affine;
          qtest prop_engine_beaver_mul;
          Alcotest.test_case "const/select" `Quick test_engine_const_and_select;
          Alcotest.test_case "less_than" `Quick test_engine_less_than;
          Alcotest.test_case "trunc" `Quick test_engine_trunc;
          Alcotest.test_case "single cheater corrected" `Quick
            test_engine_cheater_corrected;
          Alcotest.test_case "abort beyond decoding radius" `Quick
            test_engine_cheating_beyond_radius;
          Alcotest.test_case "multiplication survives a cheater" `Quick
            test_engine_cheating_in_mul_corrected;
          Alcotest.test_case "threshold" `Quick test_engine_threshold;
          Alcotest.test_case "costs accrue" `Quick test_engine_costs_accrue;
          Alcotest.test_case "bytes grow with parties" `Quick
            test_engine_more_parties_more_bytes;
          Alcotest.test_case "reshare in/out" `Quick test_reshare_roundtrip;
          Alcotest.test_case "joint uniform bits" `Quick test_engine_joint_uniform_bits;
          Alcotest.test_case "large centered values" `Quick
            test_engine_modulus_large_values;
        ] );
      ( "fixpoint",
        [
          qtest prop_fixpoint_mul;
          qtest prop_fixpoint_exp2;
          qtest prop_fixpoint_log2;
          Alcotest.test_case "max2" `Quick test_fixpoint_max2;
          Alcotest.test_case "uniform01 range" `Quick test_fixpoint_uniform01;
          Alcotest.test_case "gumbel stats" `Slow test_fixpoint_gumbel_stats;
          Alcotest.test_case "laplace stats" `Slow test_fixpoint_laplace_stats;
          Alcotest.test_case "lattice-edge noise regression" `Slow
            test_fixpoint_noise_survives_lattice_edges;
          Alcotest.test_case "rescale rounds to nearest" `Quick
            test_fixpoint_mul_rounds_to_nearest;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "sum + prefix sums" `Quick test_protocols_sum_prefix;
          qtest prop_protocols_argmax;
          qtest prop_protocols_rank_select;
          Alcotest.test_case "em gumbel prefers max" `Slow test_em_gumbel_prefers_max;
          Alcotest.test_case "em exponentiate prefers max" `Slow
            test_em_exponentiate_prefers_max;
          Alcotest.test_case "em gumbel randomizes ties" `Slow test_em_gumbel_randomizes;
          Alcotest.test_case "em gumbel with gap" `Quick test_em_gumbel_gap;
          Alcotest.test_case "ceremony cost charging" `Quick test_ceremony_charges;
          Alcotest.test_case "clip composition" `Quick test_fixpoint_clip_behavior;
          Alcotest.test_case "argmax tie-breaking" `Quick
            test_protocols_argmax_first_of_ties;
          Alcotest.test_case "rank_select edges" `Quick
            test_protocols_rank_select_saturates;
        ] );
    ]
