bench/main.mli:
