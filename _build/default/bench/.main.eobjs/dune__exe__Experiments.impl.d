bench/experiments.ml: Arb_baselines Arb_dp Arb_lang Arb_mpc Arb_planner Arb_queries Arb_runtime Arb_util Array Float Hashtbl Int64 List Option Printexc Printf String Unix
