let log_src = Logs.Src.create "arb.planner" ~doc:"Arboretum query planner"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  prefixes : int;
  full_plans : int;
  pruned : int;
  elapsed : float;
  aborted : bool;
}

type result = {
  plan : Plan.t option;
  metrics : Cost_model.metrics option;
  alternatives : (Plan.t * Cost_model.metrics) list;
  stats : stats;
}

let default_f = 0.03
let default_g = 0.15
let default_p1 () = Arb_dp.Committee.p1_of_round ~p:1e-8 ~rounds:1000

let size_cache : (float * float * float * int, int) Hashtbl.t = Hashtbl.create 64

let committee_size_for ?(f = default_f) ?(g = default_g) ?p1 c =
  let p1 = match p1 with Some p -> p | None -> default_p1 () in
  let key = (f, g, p1, c) in
  match Hashtbl.find_opt size_cache key with
  | Some m -> m
  | None ->
      let m = Arb_dp.Committee.min_size ~f ~g ~committees:(max 1 c) ~p1 in
      Hashtbl.replace size_cache key m;
      m

let is_mpc_vignette (v : Plan.vignette) =
  match v.Plan.work with
  | Plan.W_keygen _ | W_zk_setup _ | W_mpc_decrypt _ | W_mpc_decrypt_noise _
  | W_mpc_affine _
  | W_mpc_scan _ | W_mpc_nonlinear _ | W_mpc_noise _ | W_mpc_argmax _
  | W_mpc_exp _ | W_mpc_sample_index _ | W_mpc_output _ ->
      true
  | W_encrypt_input _ | W_verify_inputs _ | W_he_sum _ | W_he_affine _
  | W_he_rotate_sum _ | W_post _ ->
      false

let mpc_committee_count vs =
  List.fold_left
    (fun acc (v : Plan.vignette) ->
      match (v.Plan.location, is_mpc_vignette v) with
      | Plan.Committees k, true -> acc + k
      | _ -> acc)
    0 vs

type searcher = {
  cm : Cost_model.t;
  mutable cur_bins : int option;
  limits : Constraints.limits;
  goal : Constraints.goal;
  heuristics : bool;
  max_prefixes : int;
  f : float;
  g : float;
  p1 : float;
  n : int;
  cols : int;
  m_est : int;
  mutable best_value : float;
  mutable best : (Plan.t * Cost_model.metrics) option;
  mutable top : (float * Plan.t * Cost_model.metrics) list; (* ranked, capped *)
  mutable prefixes : int;
  mutable full_plans : int;
  mutable pruned : int;
  mutable aborted : bool;
}

exception Abort

let price_all s ~m vs =
  List.map (fun v -> Cost_model.price s.cm ~n_devices:s.n ~m ~cols:s.cols v) vs

let score_full s ~em_variant ~crypto vs query_name =
  s.full_plans <- s.full_plans + 1;
  let c = mpc_committee_count vs in
  let m = committee_size_for ~f:s.f ~g:s.g ~p1:s.p1 (max 1 c) in
  let metrics =
    Cost_model.combine ~n_devices:s.n (price_all s ~m vs)
  in
  if Constraints.satisfies s.limits metrics then begin
    let v = Constraints.goal_value s.goal metrics in
    let plan =
      {
        Plan.query = query_name;
        crypto;
        vignettes = vs;
        sample_bins = s.cur_bins;
        committee_count = c;
        committee_size = m;
        em_variant;
      }
    in
    (* Keep a small ranked sample of the feasible design space: the best
       plan plus up to four runners-up with distinct goal values, so
       explain-style tooling can show what the planner weighed. *)
    let rec insert = function
      | [] -> [ (v, plan, metrics) ]
      | (v', _, _) :: _ as rest when v < v' -> (v, plan, metrics) :: rest
      | entry :: rest -> entry :: insert rest
    in
    if not (List.exists (fun (v', _, _) -> v' = v) s.top) then begin
      let inserted = insert s.top in
      s.top <-
        (if List.length inserted > 5 then List.filteri (fun i _ -> i < 5) inserted
         else inserted)
    end;
    if v < s.best_value then begin
      s.best_value <- v;
      s.best <- Some (plan, metrics)
    end
  end

let search_one s ~(ctx : Expand.ctx) ~prefix_vs ~ops ~query_name =
  let crypto = ctx.Expand.crypto in
  (* DFS over operators. [acc] holds vignettes in order. *)
  let rec go domain acc em_variant = function
    | [] -> score_full s ~em_variant ~crypto acc query_name
    | op :: rest ->
        let choices = Expand.choices ctx domain op in
        (* Explore cheap choices first so branch-and-bound gets a good
           incumbent early. *)
        let priced =
          List.map
            (fun (c : Expand.choice) ->
              let vs = acc @ c.Expand.vignettes in
              let metrics =
                Cost_model.combine ~n_devices:s.n (price_all s ~m:s.m_est vs)
              in
              (c, vs, metrics))
            choices
        in
        let priced =
          if s.heuristics then
            List.sort
              (fun (_, _, m1) (_, _, m2) ->
                Float.compare
                  (Constraints.goal_value s.goal m1)
                  (Constraints.goal_value s.goal m2))
              priced
          else priced
        in
        List.iter
          (fun ((c : Expand.choice), vs, metrics) ->
            s.prefixes <- s.prefixes + 1;
            if s.prefixes > s.max_prefixes then begin
              s.aborted <- true;
              raise Abort
            end;
            let fhe_ok = (not c.Expand.needs_fhe) || crypto = Plan.Fhe in
            if not fhe_ok then s.pruned <- s.pruned + 1
            else if
              s.heuristics
              && (not (Constraints.satisfies s.limits metrics)
                 || Constraints.goal_value s.goal metrics >= s.best_value)
            then s.pruned <- s.pruned + 1
            else
              let em_variant' =
                match c.Expand.em_variant with `None -> em_variant | v -> v
              in
              go c.Expand.domain_after vs em_variant' rest)
          priced
  in
  (try go Expand.D_enc prefix_vs `None ops with Abort -> ())

let plan ?(cm = Cost_model.default) ?(limits = Constraints.evaluation_limits)
    ?(goal = Constraints.Min_part_exp_time) ?(heuristics = true)
    ?(max_prefixes = 5_000_000) ?(f = default_f) ?(g = default_g) ?p1
    ~(query : Arb_queries.Registry.query) ~n () =
  let p1 = match p1 with Some p -> p | None -> default_p1 () in
  let t0 = Unix.gettimeofday () in
  let ops = Extract.ops query.Arb_queries.Registry.program ~n in
  let cols = query.Arb_queries.Registry.categories in
  let s =
    {
      cm;
      limits;
      goal;
      heuristics;
      max_prefixes;
      f;
      g;
      p1;
      n;
      cols;
      cur_bins = None;
      m_est = committee_size_for ~f ~g ~p1 1024;
      best_value = infinity;
      best = None;
      top = [];
      prefixes = 0;
      full_plans = 0;
      pruned = 0;
      aborted = false;
    }
  in
  List.iter
    (fun crypto ->
      List.iter
        (fun bins ->
          let ctx =
            {
              Expand.n_devices = n;
              cols;
              crypto;
              bins;
              cm;
              redundant_boundaries = not heuristics;
            }
          in
          let prefix_vs = Expand.prefix ctx ~sampled_bins:bins in
          s.cur_bins <- bins;
          search_one s ~ctx ~prefix_vs ~ops
            ~query_name:query.Arb_queries.Registry.name)
        (Expand.sampled_bins_options ops))
    [ Plan.Ahe; Plan.Fhe ];
  let elapsed = Unix.gettimeofday () -. t0 in
  Log.info (fun m ->
      m "planned %s (N=%d): %d prefixes, %d candidates, %d pruned in %.3fs%s"
        query.Arb_queries.Registry.name n s.prefixes s.full_plans s.pruned elapsed
        (if s.aborted then " [aborted at cap]" else ""));
  (match s.best with
  | Some (p, _) ->
      Log.debug (fun m ->
          m "winner: %s, %d committees of %d, em=%s"
            (Plan.crypto_name p.Plan.crypto)
            p.Plan.committee_count p.Plan.committee_size
            (match p.Plan.em_variant with
            | `Gumbel -> "gumbel"
            | `Exponentiate -> "exponentiate"
            | `None -> "-"))
  | None -> Log.debug (fun m -> m "no feasible plan"));
  {
    plan = Option.map fst s.best;
    metrics = Option.map snd s.best;
    alternatives = List.map (fun (_, p, m) -> (p, m)) s.top;
    stats =
      {
        prefixes = s.prefixes;
        full_plans = s.full_plans;
        pruned = s.pruned;
        elapsed;
        aborted = s.aborted;
      };
  }
