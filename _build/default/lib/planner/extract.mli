(** Lowering a certified query to a sequence of abstract operators.

    The planner explores instantiations of high-level operators (§4.3); this
    module derives the operator sequence from the AST: which aggregations
    run over the database, which per-element transforms happen on confidential
    data (affine vs comparison-bearing), where the differential-privacy
    mechanisms sit, and what is cleartext postprocessing. Loops over
    mechanisms unroll into repeated operators (topK's five em rounds), with
    public re-masking steps between rounds.

    A program the analysis cannot map raises [Unsupported] — mirroring the
    paper's position that certification/lowering may reject queries. *)

type aop =
  | A_sum of { cols : int; sampled_phi : float option }
      (** encrypted column sums over all rows (optionally a secret sample) *)
  | A_scan of { cols : int }  (** prefix/suffix sums on confidential vector *)
  | A_affine of { cols : int }
      (** per-element public-coefficient transform on confidential data *)
  | A_nonlinear of { cols : int }
      (** per-element transform needing comparisons/abs on confidential data *)
  | A_laplace of { count : int }  (** Laplace mechanism on [count] values *)
  | A_em of { cols : int; gap : bool; rounds : int }
      (** exponential mechanism; [rounds] > 1 for folded repeated rounds
          (topK), re-masked publicly between rounds *)
  | A_mask of { cols : int }
      (** public masking of the encrypted vector between mechanism rounds *)
  | A_post of { flops : int; outputs : int }  (** cleartext postprocessing *)

exception Unsupported of string

val ops : Arb_lang.Ast.program -> n:int -> aop list
(** Requires the program to be certified; loop bounds must be static. *)

val describe : aop -> string
