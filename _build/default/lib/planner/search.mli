(** The planner's search (§4.3–§4.6): enumerate candidate plans operator by
    operator with branch-and-bound, score with the cost model, re-solve the
    committee size for each complete candidate, and keep the best plan that
    satisfies the analyst's limits.

    Pruning follows §4.4/§7.3: partial candidates are discarded as soon as
    their accumulated cost exceeds a limit or the best known full plan
    (scored with an optimistic committee-size estimate, since the true m is
    only known once the total committee count is). Disabling [heuristics]
    removes both pruning rules and enumerates redundant re-segmentations,
    reproducing the §7.3 ablation blowup. *)

type stats = {
  prefixes : int;  (** plan prefixes considered (§7.3) *)
  full_plans : int;  (** complete candidates scored *)
  pruned : int;
  elapsed : float;  (** seconds spent planning *)
  aborted : bool;  (** hit the exploration cap before finishing *)
}

type result = {
  plan : Plan.t option;  (** [None] when no candidate satisfies the limits *)
  metrics : Cost_model.metrics option;
  alternatives : (Plan.t * Cost_model.metrics) list;
      (** a ranked sample of the feasible design space: the winner plus up
          to four runners-up with distinct goal values *)
  stats : stats;
}

val plan :
  ?cm:Cost_model.t ->
  ?limits:Constraints.limits ->
  ?goal:Constraints.goal ->
  ?heuristics:bool ->
  ?max_prefixes:int ->
  ?f:float ->
  ?g:float ->
  ?p1:float ->
  query:Arb_queries.Registry.query ->
  n:int ->
  unit ->
  result
(** Defaults: the §7 setting — [limits] = {!Constraints.evaluation_limits},
    [goal] = minimize expected participant time, f = 3%, g = 0.15,
    p1 from 1e-8 over 1000 queries, heuristics on, 5M-prefix cap. *)

val committee_size_for : ?f:float -> ?g:float -> ?p1:float -> int -> int
(** Memoized {!Arb_dp.Committee.min_size} keyed by committee count. *)
