type aop =
  | A_sum of { cols : int; sampled_phi : float option }
  | A_scan of { cols : int }
  | A_affine of { cols : int }
  | A_nonlinear of { cols : int }
  | A_laplace of { count : int }
  | A_em of { cols : int; gap : bool; rounds : int }
  | A_mask of { cols : int }
  | A_post of { flops : int; outputs : int }

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let describe = function
  | A_sum { cols; sampled_phi = None } -> Printf.sprintf "sum[%d]" cols
  | A_sum { cols; sampled_phi = Some phi } ->
      Printf.sprintf "sampledSum[%d, phi=%.2f]" cols phi
  | A_scan { cols } -> Printf.sprintf "scan[%d]" cols
  | A_affine { cols } -> Printf.sprintf "affine[%d]" cols
  | A_nonlinear { cols } -> Printf.sprintf "nonlinear[%d]" cols
  | A_laplace { count } -> Printf.sprintf "laplace[%d]" count
  | A_em { cols; gap; rounds } ->
      Printf.sprintf "em%s[%d]%s" (if gap then "Gap" else "") cols
        (if rounds > 1 then Printf.sprintf " x%d" rounds else "")
  | A_mask { cols } -> Printf.sprintf "mask[%d]" cols
  | A_post { flops; outputs } -> Printf.sprintf "post[%d flops, %d outputs]" flops outputs

(* Confidentiality kind of each variable. *)
type vkind = K_clean | K_enc | K_rows of float option

type ctx = {
  kinds : (string, vkind) Hashtbl.t;
  tenv : Arb_lang.Types.env;
  mutable acc : aop list; (* reversed *)
}

let kind_of ctx v =
  if v = "db" then K_rows None
  else match Hashtbl.find_opt ctx.kinds v with Some k -> k | None -> K_clean

let dims_of ctx v =
  match Arb_lang.Types.lookup ctx.tenv v with
  | Some ty -> ty.Arb_lang.Types.dims
  | None -> []

let cols_of_var ctx v =
  match dims_of ctx v with
  | [ k ] -> k
  | [] -> 1
  | _ -> fail "expected a vector or scalar in %s" v

(* Expression classification: how does evaluating it mix confidential and
   public data? *)
let rec classify ctx (e : Arb_lang.Ast.expr) : [ `Clean | `Affine | `Nonlinear ] =
  match e with
  | Int_lit _ | Fix_lit _ | Bool_lit _ -> `Clean
  | Var v | Index (v, _) -> (
      match kind_of ctx v with
      | K_clean -> `Clean
      | K_enc -> `Affine
      | K_rows _ -> `Affine)
  | Unop (Neg, e) -> classify ctx e
  | Unop (Not, e) -> ( match classify ctx e with `Clean -> `Clean | _ -> `Nonlinear)
  | Binop ((Add | Sub), e1, e2) -> max_kind (classify ctx e1) (classify ctx e2)
  | Binop (Mul, e1, e2) | Binop (Div, e1, e2) -> (
      match (classify ctx e1, classify ctx e2) with
      | `Clean, `Clean -> `Clean
      | `Affine, `Clean | `Clean, `Affine -> `Affine
      | _ -> `Nonlinear)
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), e1, e2) -> (
      match max_kind (classify ctx e1) (classify ctx e2) with
      | `Clean -> `Clean
      | _ -> `Nonlinear)
  | Call ("abs", [ e ]) | Call ("exp", [ e ]) | Call ("log", [ e ])
  | Call (("max" | "min" | "argmax"), [ e ]) -> (
      (* Aggregations over confidential vectors need comparisons. *)
      match classify ctx e with `Clean -> `Clean | _ -> `Nonlinear)
  | Call (("clip" | "declassify"), e :: _) -> classify ctx e
  | Call (("len"), _) -> `Clean
  | Call (f, _) -> fail "builtin %s not allowed inside expressions here" f

and max_kind a b =
  match (a, b) with
  | `Nonlinear, _ | _, `Nonlinear -> `Nonlinear
  | `Affine, _ | _, `Affine -> `Affine
  | `Clean, `Clean -> `Clean

let emit ctx op = ctx.acc <- op :: ctx.acc

(* Merge adjacent compatible operators to keep plans small. *)
let merge ops =
  let rec go = function
    | A_affine { cols = a } :: A_affine { cols = b } :: rest ->
        go (A_affine { cols = a + b } :: rest)
    | A_nonlinear { cols = a } :: A_nonlinear { cols = b } :: rest ->
        go (A_nonlinear { cols = a + b } :: rest)
    | A_affine { cols = a } :: A_nonlinear { cols = b } :: rest
    | A_nonlinear { cols = b } :: A_affine { cols = a } :: rest ->
        (* A mixed transform segment is priced at its dearest kind. *)
        go (A_nonlinear { cols = a + b } :: rest)
    | A_laplace { count = a } :: A_laplace { count = b } :: rest ->
        go (A_laplace { count = a + b } :: rest)
    | A_mask { cols = a } :: A_mask { cols = b } :: rest ->
        go (A_mask { cols = max a b } :: rest)
    (* Public postprocessing commutes with re-masking the encrypted
       vector; normalizing the order lets repeated em rounds fold. *)
    | A_mask m :: A_post p :: rest -> go (A_post p :: A_mask m :: rest)
    | A_post { flops = f1; outputs = o1 } :: A_post { flops = f2; outputs = o2 } :: rest ->
        go (A_post { flops = f1 + f2; outputs = o1 + o2 } :: rest)
    (* Identical em rounds separated by a public re-mask (topK) share one
       instantiation: fold them into a single repeated operator. This is a
       §4.4-style space reduction; the runtime unrolls it again. *)
    | A_em { cols = c1; gap = g1; rounds = r1 }
      :: A_post { flops; outputs }
      :: A_mask { cols = mc }
      :: A_em { cols = c2; gap = g2; rounds = r2 }
      :: rest
      when c1 = c2 && g1 = g2 ->
        go
          (A_em { cols = c1; gap = g1; rounds = r1 + r2 }
          :: A_post { flops = 2 * flops; outputs = 2 * outputs }
          :: A_mask { cols = mc }
          :: rest)
    | x :: rest -> x :: go rest
    | [] -> []
  in
  (* Iterate to a fixpoint; the mixed rule can enable further merges. *)
  let rec fix ops =
    let ops' = go ops in
    if ops' = ops then ops else fix ops'
  in
  fix ops

let trip ctx lo hi =
  match
    (Arb_lang.Types.static_eval_expr ctx.tenv lo, Arb_lang.Types.static_eval_expr ctx.tenv hi)
  with
  | Some l, Some h -> max 0 (h - l + 1)
  | _ -> fail "loop bounds must be static"

let rec stmt_has_mechanism (s : Arb_lang.Ast.stmt) =
  let expr_has e =
    Arb_lang.Ast.fold_exprs
      (fun acc e ->
        acc || match e with Arb_lang.Ast.Call (("laplace" | "em" | "emGap"), _) -> true | _ -> false)
      false e
  in
  match s with
  | Seq ss -> List.exists stmt_has_mechanism ss
  | For (_, _, _, body) -> stmt_has_mechanism body
  | If (_, s1, s2) -> stmt_has_mechanism s1 || stmt_has_mechanism s2
  | Assign (_, e) | Output e -> expr_has e
  | Assign_idx (_, idxs, e) -> List.exists expr_has (idxs @ [ e ])

let rec stmt_has_em (s : Arb_lang.Ast.stmt) =
  let expr_has e =
    Arb_lang.Ast.fold_exprs
      (fun acc e ->
        acc || match e with Arb_lang.Ast.Call (("em" | "emGap"), _) -> true | _ -> false)
      false e
  in
  match s with
  | Seq ss -> List.exists stmt_has_em ss
  | For (_, _, _, body) -> stmt_has_em body
  | If (_, s1, s2) -> stmt_has_em s1 || stmt_has_em s2
  | Assign (_, e) | Output e -> expr_has e
  | Assign_idx (_, idxs, e) -> List.exists expr_has (idxs @ [ e ])

let cols_of_expr ctx (e : Arb_lang.Ast.expr) =
  match e with
  | Var v -> cols_of_var ctx v
  | _ -> 1

let rec walk ctx ~mult (s : Arb_lang.Ast.stmt) =
  match s with
  | Seq ss -> List.iter (walk ctx ~mult) ss
  | Output (Call (("em" | "emGap" | "laplace"), _) as e) ->
      (* output(mechanism(...)) without an intermediate binding: desugar to
         a temporary assignment so the mechanism operator is extracted. *)
      walk_assign ctx ~mult "__mech_out" e;
      emit ctx (A_post { flops = mult; outputs = mult })
  | Output e -> (
      match classify ctx e with
      | `Clean -> emit ctx (A_post { flops = mult; outputs = mult })
      | _ -> fail "output of confidential data (should have been rejected)")
  | If (c, s1, s2) -> (
      match classify ctx c with
      | `Clean ->
          walk ctx ~mult s1;
          walk ctx ~mult s2
      | _ -> fail "branch on confidential data")
  | For (v, lo, hi, body) ->
      let k = trip ctx lo hi in
      Hashtbl.replace ctx.kinds v K_clean;
      if k = 0 then ()
      else if not (stmt_has_mechanism body) then begin
        (* Pure transform loop: one aggregate operator for the whole loop.
           Kinds must be propagated through the body first so temporaries
           like median's [d] are known confidential when classified. *)
        infer_kinds ctx body;
        let kind = classify_body ctx body in
        let writes = count_enc_writes ctx body in
        let outputs = mult * k * count_outputs body in
        match kind with
        | `Clean -> emit ctx (A_post { flops = mult * k * writes; outputs })
        | `Affine ->
            emit ctx (A_affine { cols = mult * k * writes });
            if outputs > 0 then emit ctx (A_post { flops = 0; outputs })
        | `Nonlinear ->
            emit ctx (A_nonlinear { cols = mult * k * writes });
            if outputs > 0 then emit ctx (A_post { flops = 0; outputs })
      end
      else if stmt_has_em body then begin
        if k > 64 then fail "em loop with more than 64 iterations";
        for _ = 1 to k do
          walk ctx ~mult body
        done
      end
      else
        (* Laplace-bearing loop: aggregate rather than unroll. *)
        walk ctx ~mult:(mult * k) body
  | Assign (v, e) -> walk_assign ctx ~mult v e
  | Assign_idx (v, _idxs, e) -> (
      (* Element write: what does it do to the target's kind? *)
      match (kind_of ctx v, classify ctx e) with
      | K_enc, `Clean ->
          (* Public masking of an encrypted vector (topK). *)
          emit ctx (A_mask { cols = cols_of_var ctx v });
          Hashtbl.replace ctx.kinds v K_enc
      | _, `Clean -> Hashtbl.replace ctx.kinds v (kind_of ctx v)
      | _, `Affine ->
          emit ctx (A_affine { cols = mult });
          Hashtbl.replace ctx.kinds v K_enc
      | _, `Nonlinear ->
          emit ctx (A_nonlinear { cols = mult });
          Hashtbl.replace ctx.kinds v K_enc)

and infer_kinds ctx (s : Arb_lang.Ast.stmt) =
  (* Two passes are enough for straight-line bodies with forward flow. *)
  let pass () =
    Arb_lang.Ast.fold_stmts
      (fun () st ->
        match st with
        | Arb_lang.Ast.Assign (v, e) | Arb_lang.Ast.Assign_idx (v, _, e) -> (
            match classify ctx e with
            | `Clean -> ()
            | `Affine | `Nonlinear -> Hashtbl.replace ctx.kinds v K_enc)
        | _ -> ())
      () s
  in
  pass ();
  pass ()

and count_outputs (s : Arb_lang.Ast.stmt) =
  Arb_lang.Ast.fold_stmts
    (fun acc st -> match st with Arb_lang.Ast.Output _ -> acc + 1 | _ -> acc)
    0 s

and classify_body ctx (s : Arb_lang.Ast.stmt) : [ `Clean | `Affine | `Nonlinear ] =
  match s with
  | Seq ss -> List.fold_left (fun acc s -> max_kind acc (classify_body ctx s)) `Clean ss
  | Assign (_, e) | Assign_idx (_, _, e) -> classify ctx e
  | Output _ -> `Clean
  | If (c, s1, s2) ->
      max_kind (classify ctx c) (max_kind (classify_body ctx s1) (classify_body ctx s2))
  | For (_, _, _, body) -> classify_body ctx body

and count_enc_writes ctx (s : Arb_lang.Ast.stmt) =
  match s with
  | Seq ss -> List.fold_left (fun acc s -> acc + count_enc_writes ctx s) 0 ss
  | Assign (_, e) | Assign_idx (_, _, e) -> (
      match classify ctx e with `Clean -> 1 | _ -> 1)
  | Output _ -> 0
  | If (_, s1, s2) -> max (count_enc_writes ctx s1) (count_enc_writes ctx s2)
  | For (_, _, _, body) -> count_enc_writes ctx body

and walk_assign ctx ~mult v (e : Arb_lang.Ast.expr) =
  match e with
  | Call ("sum", [ arg ]) -> (
      match arg with
      | Var src -> (
          match kind_of ctx src with
          | K_rows phi ->
              emit ctx (A_sum { cols = cols_of_var ctx v; sampled_phi = phi });
              Hashtbl.replace ctx.kinds v K_enc
          | K_enc ->
              emit ctx (A_scan { cols = cols_of_var ctx src });
              Hashtbl.replace ctx.kinds v K_enc
          | K_clean -> Hashtbl.replace ctx.kinds v K_clean)
      | _ -> fail "sum over a non-variable")
  | Call (("prefixSums" | "suffixSums"), [ Var src ]) -> (
      match kind_of ctx src with
      | K_enc | K_rows _ ->
          emit ctx (A_scan { cols = cols_of_var ctx src });
          Hashtbl.replace ctx.kinds v K_enc
      | K_clean -> Hashtbl.replace ctx.kinds v K_clean)
  | Call ("sampleUniform", [ Var "db"; Fix_lit phi ]) ->
      Hashtbl.replace ctx.kinds v (K_rows (Some phi))
  | Call ("laplace", [ arg ]) ->
      let count =
        match arg with Var src -> cols_of_var ctx src | _ -> 1
      in
      (match classify ctx arg with
      | `Nonlinear -> fail "laplace over a nonlinear expression"
      | _ -> ());
      emit ctx (A_laplace { count = mult * count });
      Hashtbl.replace ctx.kinds v K_clean
  | Call (("em" | "emGap") as f, [ arg ]) ->
      let cols = cols_of_expr ctx arg in
      emit ctx (A_em { cols = mult * cols / max 1 mult; gap = f = "emGap"; rounds = 1 });
      if mult > 1 then fail "em inside a non-unrolled loop";
      Hashtbl.replace ctx.kinds v K_clean
  | _ -> (
      match classify ctx e with
      | `Clean -> Hashtbl.replace ctx.kinds v K_clean
      | `Affine ->
          emit ctx (A_affine { cols = mult });
          Hashtbl.replace ctx.kinds v K_enc
      | `Nonlinear ->
          emit ctx (A_nonlinear { cols = mult });
          Hashtbl.replace ctx.kinds v K_enc)

let ops (p : Arb_lang.Ast.program) ~n =
  let tenv =
    try Arb_lang.Types.infer p ~n
    with Arb_lang.Types.Type_error m -> fail "type error: %s" m
  in
  let ctx = { kinds = Hashtbl.create 16; tenv; acc = [] } in
  walk ctx ~mult:1 p.body;
  merge (List.rev ctx.acc)
