(** Plan (de)serialization.

    A chosen plan travels inside the query authorization certificate and
    can be archived/replayed by the CLI ([arb plan --json]); round-tripping
    is property-tested. *)

val plan_to_json : Plan.t -> Arb_util.Json.t
val plan_of_json : Arb_util.Json.t -> Plan.t
(** Raises [Arb_util.Json.Parse_error] on malformed input. *)

val metrics_to_json : Cost_model.metrics -> Arb_util.Json.t
val metrics_of_json : Arb_util.Json.t -> Cost_model.metrics

val plan_to_string : ?pretty:bool -> Plan.t -> string
val plan_of_string : string -> Plan.t
