(** Human-readable plan reports: the vignette table with per-vignette cost
    contributions (who pays what), the six-metric summary, and the ranked
    alternatives the search kept — the tooling face of "it is possible to
    build a query planner for federated analytics" (§3.4). *)

val vignette_table :
  cm:Cost_model.t -> n_devices:int -> cols:int -> Plan.t -> string
(** One row per vignette: location, operation, aggregator cost, per-member
    cost, instances. *)

val summary : Plan.t -> Cost_model.metrics -> string
(** The headline: cryptosystem, committees, committee size, em variant and
    the six metrics in human units. *)

val alternatives_table : (Plan.t * Cost_model.metrics) list -> string
(** The ranked design-space sample from {!Search.result.alternatives}. *)

val full :
  cm:Cost_model.t ->
  n_devices:int ->
  cols:int ->
  Plan.t ->
  Cost_model.metrics ->
  (Plan.t * Cost_model.metrics) list ->
  string
(** Summary + vignette table + alternatives. *)
