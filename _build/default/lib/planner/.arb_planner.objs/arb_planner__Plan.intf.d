lib/planner/plan.mli: Format
