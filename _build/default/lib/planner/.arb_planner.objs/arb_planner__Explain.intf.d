lib/planner/explain.mli: Cost_model Plan
