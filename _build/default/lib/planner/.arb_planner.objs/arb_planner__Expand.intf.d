lib/planner/expand.mli: Cost_model Extract Plan
