lib/planner/explain.ml: Arb_util Cost_model Format List Plan Printf
