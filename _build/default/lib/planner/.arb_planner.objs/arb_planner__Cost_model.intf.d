lib/planner/cost_model.mli: Format Plan
