lib/planner/cost_model.ml: Arb_crypto Arb_mpc Arb_util Array Float Format List Plan Unix
