lib/planner/plan_io.ml: Arb_util Cost_model List Plan
