lib/planner/search.mli: Arb_queries Constraints Cost_model Plan
