lib/planner/constraints.mli: Cost_model
