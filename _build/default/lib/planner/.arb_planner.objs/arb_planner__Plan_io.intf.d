lib/planner/plan_io.mli: Arb_util Cost_model Plan
