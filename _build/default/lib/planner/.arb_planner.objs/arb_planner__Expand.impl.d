lib/planner/expand.ml: Cost_model Extract List Option Plan Printf
