lib/planner/extract.ml: Arb_lang Hashtbl List Printf
