lib/planner/extract.mli: Arb_lang
