lib/planner/constraints.ml: Cost_model
