lib/planner/search.ml: Arb_dp Arb_queries Constraints Cost_model Expand Extract Float Hashtbl List Logs Option Plan Unix
