lib/mpc/protocols.mli: Arb_util Engine Fixpoint_mpc
