lib/mpc/fixpoint_mpc.ml: Arb_util Engine List
