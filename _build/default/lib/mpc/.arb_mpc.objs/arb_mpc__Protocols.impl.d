lib/mpc/protocols.ml: Arb_util Array Cost Engine Fixpoint_mpc Float List Stdlib
