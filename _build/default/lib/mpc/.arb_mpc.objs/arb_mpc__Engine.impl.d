lib/mpc/engine.ml: Arb_crypto Arb_util Array Cost Int64 List
