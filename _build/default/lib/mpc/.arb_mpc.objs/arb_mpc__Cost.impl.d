lib/mpc/cost.ml: Format
