lib/mpc/engine.mli: Arb_util Cost
