lib/mpc/fixpoint_mpc.mli: Arb_util Engine
