lib/mpc/cost.mli: Format
