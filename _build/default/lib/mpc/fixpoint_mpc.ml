module Fx = Arb_util.Fixed

type t = Engine.sec

let frac_bits = Fx.frac_bits
let value_bits = 47

let of_fixed eng ~party v = Engine.input eng ~party (Fx.to_raw v)
let const eng v = Engine.const eng (Fx.to_raw v)
let open_fixed eng v = Fx.of_raw (Engine.open_value eng v)

let of_sec_int eng v = Engine.scale eng (1 lsl frac_bits) v

let add = Engine.add
let sub = Engine.sub
let neg = Engine.neg

(* Rescaling after a product rounds to nearest (half away from zero),
   matching Arb_util.Fixed.mul: plain truncation toward zero would zero out
   any product below one quantum — e.g. ln(u) for u near 1 — and bias all
   fixpoint chains toward zero. *)
let rescale eng wide =
  let m = Engine.mirror eng wide in
  let half = 1 lsl (frac_bits - 1) in
  let adjusted =
    if m >= 0 then Engine.add_const eng wide half
    else Engine.add_const eng wide (-half)
  in
  Engine.trunc eng adjusted ~bits:frac_bits

let mul eng a b = rescale eng (Engine.mul eng a b)

let mul_public eng k a = rescale eng (Engine.scale eng (Fx.to_raw k) a)

let less_than = Engine.less_than

let max2 eng a b =
  let c = less_than eng a b in
  Engine.select eng c b a

let ln2 = Fx.of_float 0.6931471805599453

(* Cost of a secret power-of-two shift / normalization ladder: one
   comparison per value bit (the standard bit-decomposition gadget). *)
let ladder_bytes eng = value_bits * (Engine.parties eng - 1) * 8

(* 2^x. The fractional-part polynomial is evaluated share-faithfully
   (Horner with Beaver multiplies); the secret shift by the integer part is
   a protocol-level gadget. Result can differ from Arb_util.Fixed.exp2 by a
   few units in the last place (fixpoint vs float polynomial evaluation). *)
let exp2 eng x =
  let xm = Fx.of_raw (Engine.mirror eng x) in
  let xf = Fx.to_float xm in
  if xf >= float_of_int (Fx.int_bits - 1) || xf < float_of_int (-frac_bits - 1)
  then
    (* Saturated: detected by the comparison ladder alone. *)
    Engine.gadget eng ~rounds:7 ~triples:(2 * value_bits)
      ~bytes:(ladder_bytes eng)
      (Fx.to_raw (Fx.exp2 xm))
  else begin
    let ip = Engine.trunc eng x ~bits:frac_bits in
    let frac = Engine.sub eng x (Engine.scale eng (1 lsl frac_bits) ip) in
    let horner acc coeff = add eng (mul eng acc frac) (const eng (Fx.of_float coeff)) in
    let poly =
      List.fold_left horner
        (const eng (Fx.of_float 0.0089892745566750))
        [ 0.0558016049633903; 0.2401596780245026; 0.6931471805599453; 1.0 ]
    in
    (* Secret 2^ip via the shift ladder gadget. *)
    let ipm = Engine.mirror eng ip in
    let pow2ip =
      Engine.gadget eng ~rounds:7 ~triples:(2 * value_bits)
        ~bytes:(ladder_bytes eng)
        (if ipm >= 0 then (1 lsl frac_bits) lsl ipm else (1 lsl frac_bits) asr -ipm)
    in
    mul eng poly pow2ip
  end

(* log2 is entirely protocol-level: MSB normalization ladder plus a
   polynomial, priced as comparisons + multiplies; the result matches the
   cleartext reference exactly. *)
let log2 eng x =
  let xm = Fx.of_raw (Engine.mirror eng x) in
  if Fx.compare xm Fx.zero <= 0 then invalid_arg "Fixpoint_mpc.log2: non-positive";
  (* MSB normalization is a 47-bit comparison ladder; with Batcher-style
     prefix gadgets it runs in ~22 rounds (MP-SPDZ's sfix log). *)
  Engine.gadget eng ~rounds:22
    ~triples:((2 * value_bits) + 8)
    ~bytes:(ladder_bytes eng + (8 * (Engine.parties eng - 1) * 8))
    (Fx.to_raw (Fx.log2 xm))

let uniform01 eng =
  let bits = Engine.joint_uniform_bits eng ~bits:frac_bits in
  (* Raw value in [0, 2^16) is exactly a fixpoint in [0,1); force nonzero so
     the logarithms downstream stay defined. *)
  if Engine.mirror eng bits = 0 then Engine.add_const eng bits 1 else bits

let ln_fix eng x = mul_public eng ln2 (log2 eng x)

let gumbel eng ~scale =
  let u = uniform01 eng in
  let inner = ln_fix eng u in
  (* -ln u is at least one quantum (u < 1 on the lattice); keep it so even
     if rounding collapsed the product. *)
  let neg_inner = neg eng inner in
  let neg_inner =
    if Engine.mirror eng neg_inner <= 0 then Engine.add_const eng neg_inner 1
    else neg_inner
  in
  let outer = ln_fix eng neg_inner in
  mul_public eng (Fx.neg scale) outer

let laplace eng ~scale =
  (* Inverse-CDF: scale * sign(u - 1/2) * -ln(1 - 2|u - 1/2|). *)
  let u = uniform01 eng in
  let half = const eng (Fx.of_float 0.5) in
  let d = sub eng u half in
  let is_neg = less_than eng d (Engine.const eng 0) in
  let abs_d = Engine.select eng is_neg (neg eng d) d in
  let one = const eng Fx.one in
  let arg = sub eng one (Engine.scale eng 2 abs_d) in
  (* Keep the argument strictly positive at the 2^-16 lattice edge. *)
  let arg = if Engine.mirror eng arg <= 0 then Engine.add_const eng arg 1 else arg in
  let pos = mul_public eng (Fx.neg scale) (ln_fix eng arg) in
  Engine.select eng is_neg (neg eng pos) pos
