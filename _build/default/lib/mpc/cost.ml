type t = {
  mutable rounds : int;
  mutable bytes_per_party : int;
  mutable triples : int;
  mutable mults : int;
  mutable opens : int;
  mutable comparisons : int;
  mutable truncations : int;
  mutable inputs : int;
  mutable field_ops : int;
}

let zero () =
  {
    rounds = 0;
    bytes_per_party = 0;
    triples = 0;
    mults = 0;
    opens = 0;
    comparisons = 0;
    truncations = 0;
    inputs = 0;
    field_ops = 0;
  }

let add a b =
  {
    rounds = a.rounds + b.rounds;
    bytes_per_party = a.bytes_per_party + b.bytes_per_party;
    triples = a.triples + b.triples;
    mults = a.mults + b.mults;
    opens = a.opens + b.opens;
    comparisons = a.comparisons + b.comparisons;
    truncations = a.truncations + b.truncations;
    inputs = a.inputs + b.inputs;
    field_ops = a.field_ops + b.field_ops;
  }

let pp fmt c =
  Format.fprintf fmt
    "rounds=%d bytes/party=%d triples=%d mults=%d opens=%d cmps=%d truncs=%d inputs=%d fops=%d"
    c.rounds c.bytes_per_party c.triples c.mults c.opens c.comparisons
    c.truncations c.inputs c.field_ops
