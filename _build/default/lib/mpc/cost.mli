(** Cost accounting for simulated MPC executions.

    The paper's cost model (§4.6, §6) is built by benchmarking building
    blocks — MPC start-up, triple generation, per-gate and per-round costs —
    and adding them up per query plan. The engine counts the same raw
    quantities during simulated execution; the planner's cost model converts
    counts to seconds/bytes using calibrated constants. *)

type t = {
  mutable rounds : int;  (** communication rounds (latency-bound) *)
  mutable bytes_per_party : int;  (** bytes sent by each party (symmetric protocols) *)
  mutable triples : int;  (** Beaver triples consumed *)
  mutable mults : int;
  mutable opens : int;
  mutable comparisons : int;
  mutable truncations : int;
  mutable inputs : int;
  mutable field_ops : int;  (** local field operations *)
}

val zero : unit -> t
val add : t -> t -> t
(** Component-wise sum (fresh record). *)

val pp : Format.formatter -> t -> unit
