(** Fixed-point arithmetic on secret-shared values (MP-SPDZ's sfix, §6).

    A secret fixpoint value is an {!Engine.sec} holding the 2^16-scaled
    integer of {!Arb_util.Fixed}. Multiplication composes a share-faithful
    Beaver multiply with the truncation protocol; the transcendental
    functions use the same shift-plus-polynomial decomposition as the
    cleartext {!Arb_util.Fixed}: [log2] matches the reference exactly
    (protocol-level gadget), while [exp2] evaluates its fractional
    polynomial share-faithfully in fixpoint and may differ from the float
    reference by a few units in the last place. *)

type t = Engine.sec

val of_fixed : Engine.t -> party:int -> Arb_util.Fixed.t -> t
(** A party inputs a fixpoint value. *)

val const : Engine.t -> Arb_util.Fixed.t -> t
val open_fixed : Engine.t -> t -> Arb_util.Fixed.t
val of_sec_int : Engine.t -> Engine.sec -> t
(** Interpret a shared integer as fixpoint (scales by 2^16; free locally). *)

val add : Engine.t -> t -> t -> t
val sub : Engine.t -> t -> t -> t
val neg : Engine.t -> t -> t
val mul : Engine.t -> t -> t -> t
(** Beaver multiply + truncation by 16 bits. *)

val mul_public : Engine.t -> Arb_util.Fixed.t -> t -> t
val less_than : Engine.t -> t -> t -> Engine.sec
(** Shared 0/1 bit. *)

val max2 : Engine.t -> t -> t -> t
val exp2 : Engine.t -> t -> t
(** 2^x — base-2 exponential, matching [Arb_util.Fixed.exp2]. *)

val log2 : Engine.t -> t -> t
(** Base-2 logarithm of a positive value; protocol-level normalization. *)

val uniform01 : Engine.t -> t
(** Jointly sampled uniform fixpoint in (0, 1\] at 2^-16 granularity. *)

val gumbel : Engine.t -> scale:Arb_util.Fixed.t -> t
(** Gumbel(0, scale) noise sampled inside the MPC: scale · (-ln(-ln U)). *)

val laplace : Engine.t -> scale:Arb_util.Fixed.t -> t
(** Laplace(0, scale) noise sampled inside the MPC. *)
