(** Differential-privacy certification (§4.2).

    Before planning, Arboretum must certify the submitted query as
    differentially private and derive its sensitivity bound. The paper
    adopts Fuzzi's approach; we implement the analysis that approach rests
    on, specialized to this language: conservative taint tracking from [db]
    (explicit and implicit flows), linear sensitivity propagation, and a
    release rule — only mechanism results ([laplace], [em], [emGap]) or
    values explicitly passed through [declassify] inside a mechanism may
    reach [output]. Queries the analysis cannot certify are rejected (the
    paper notes CertiPriv-style analyst-supplied proofs as an alternative;
    out of scope here).

    Sensitivity is tracked per variable as the worst-case change from
    altering a single participant's row (L∞ over array elements, with the
    one-hot L1 rule for histogram sums), propagated linearly; any
    non-linear combination of tainted values lifts it to infinity, which
    certifies only if the value never reaches a mechanism. Implicit flows:
    branching on a tainted condition taints every variable assigned in
    either branch. *)

type report = {
  certified : bool;
  reason : string option;  (** populated when [certified = false] *)
  cost : Arb_dp.Budget.t;  (** total privacy cost across all mechanism calls *)
  sensitivity : float;  (** max sensitivity feeding any mechanism *)
  mechanism_calls : int;  (** loop-expanded count of laplace/em/emGap calls *)
}

val certify : Ast.program -> n:int -> report
(** Analyze the program for a deployment of [n] participants (loop bounds
    must be static, as in {!Types.infer}). Never raises on analysis
    failure — returns [certified = false] with a reason. *)

val check : Ast.program -> n:int -> (report, string) result
(** [Ok report] only when certified. *)
