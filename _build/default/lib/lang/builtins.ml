type role = Aggregate | Mechanism | Scalar | Sampling | Declassify

type info = { name : string; arity : int; role : role; doc : string }

let all =
  [
    { name = "sum"; arity = 1; role = Aggregate;
      doc = "column sums of db (or a secret sample), or the sum of a vector" };
    { name = "max"; arity = 1; role = Aggregate; doc = "largest element of a vector" };
    { name = "min"; arity = 1; role = Aggregate; doc = "smallest element of a vector" };
    { name = "argmax"; arity = 1; role = Aggregate;
      doc = "index of the largest element" };
    { name = "prefixSums"; arity = 1; role = Aggregate;
      doc = "inclusive running sums, left to right" };
    { name = "suffixSums"; arity = 1; role = Aggregate;
      doc = "inclusive running sums, right to left" };
    { name = "len"; arity = 1; role = Scalar; doc = "length of a vector" };
    { name = "abs"; arity = 1; role = Scalar; doc = "absolute value" };
    { name = "clip"; arity = 3; role = Scalar;
      doc = "clip(x, lo, hi): clamp x into [lo, hi]" };
    { name = "exp"; arity = 1; role = Scalar; doc = "e^x (fixpoint)" };
    { name = "log"; arity = 1; role = Scalar; doc = "natural log (positive x)" };
    { name = "laplace"; arity = 1; role = Mechanism;
      doc = "Laplace mechanism on a scalar or element-wise on a vector" };
    { name = "em"; arity = 1; role = Mechanism;
      doc = "exponential mechanism over a vector of quality scores" };
    { name = "emGap"; arity = 1; role = Mechanism;
      doc = "exponential mechanism with free gap: [winner, noisy gap]" };
    { name = "sampleUniform"; arity = 2; role = Sampling;
      doc = "sampleUniform(db, phi): a secret phi-sample of the rows" };
    { name = "declassify"; arity = 1; role = Declassify;
      doc = "mark a mechanism result as releasable" };
  ]

let find name = List.find_opt (fun i -> i.name = name) all
let is_builtin name = find name <> None

let mechanisms =
  List.filter_map (fun i -> if i.role = Mechanism then Some i.name else None) all
