(** Basic type and value-range inference (§4.4).

    Assigns every variable and expression a basic type ([int], [fix] or
    [bool]), an array shape, and a conservative value range; the planner's
    encryption-type inference uses the ranges to pick cryptosystem
    parameters (e.g. a plaintext modulus large enough for the biggest sum).
    Ranges follow {!Arb_util.Interval}: the bounds of [a*b] are corner
    products, loops are joined to a fixpoint with widening. *)

type base = Ty_int | Ty_fix | Ty_bool

type ty = {
  base : base;
  range : Arb_util.Interval.t;  (** element-wise for arrays *)
  dims : int list;  (** \[\] scalar; \[k\] vector; \[n; k\] matrix *)
}

exception Type_error of string

type env
(** Variable typing environment after inference. *)

val infer : Ast.program -> n:int -> env
(** Run inference for a deployment of [n] participants. Loop bounds must be
    statically evaluable (literals, [N], [C], loop variables and arithmetic
    on them). Raises [Type_error] on ill-typed programs. *)

val lookup : env -> string -> ty option

val range_of : env -> Ast.expr -> Arb_util.Interval.t option
(** Range of an expression under the final (post-fixpoint) environment —
    conservative, used by the certifier to bound untainted multipliers.
    [None] if the expression is ill-typed or array-valued. *)

val static_eval_expr : env -> Ast.expr -> int option
(** Evaluate a statically constant integer expression (loop bounds). *)

val plaintext_bits_needed : env -> int
(** Bits needed to represent every integer value occurring in the program —
    the driver for the BGV plaintext-modulus choice. *)

val max_category_count : env -> int
(** Largest vector length flowing through the program (e.g. the histogram
    width) — drives ciphertext packing. *)

val pp_ty : Format.formatter -> ty -> unit
