(** The built-in function table (§4.1) — one source of truth for names,
    arities and roles, consulted by validation, and documentation for
    analysts. The semantic/type/sensitivity treatment lives with each
    analysis ({!Interp}, {!Types}, {!Certify}, planner extraction). *)

type role =
  | Aggregate  (** reduces a (possibly confidential) array: sum, max, ... *)
  | Mechanism  (** releases a differentially private result *)
  | Scalar  (** pure scalar math *)
  | Sampling  (** secrecy of the sample *)
  | Declassify

type info = {
  name : string;
  arity : int;
  role : role;
  doc : string;
}

val all : info list
val find : string -> info option
val is_builtin : string -> bool
val mechanisms : string list
(** Names whose calls consume privacy budget. *)
