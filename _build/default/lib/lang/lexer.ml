type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_FOR | KW_TO | KW_DO | KW_ENDFOR
  | KW_IF | KW_THEN | KW_ELSE | KW_ENDIF
  | KW_TRUE | KW_FALSE
  | LPAREN | RPAREN | LBRACKET | RBRACKET
  | COMMA | SEMI
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH
  | AND | OR | NOT
  | LT | LE | GT | GE | EQ | NE
  | EOF

exception Lex_error of { pos : int; message : string }

let keyword_of = function
  | "for" -> Some KW_FOR
  | "to" -> Some KW_TO
  | "do" -> Some KW_DO
  | "endfor" -> Some KW_ENDFOR
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "endif" -> Some KW_ENDIF
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let rec go pos acc =
    if pos >= n then List.rev (EOF :: acc)
    else
      let c = src.[pos] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (pos + 1) acc
      else if c = '/' && pos + 1 < n && src.[pos + 1] = '/' then
        let rec skip p = if p >= n || src.[p] = '\n' then p else skip (p + 1) in
        go (skip pos) acc
      else if is_digit c then begin
        let stop = ref pos and is_float = ref false in
        while
          !stop < n
          && (is_digit src.[!stop]
             || (src.[!stop] = '.' && !stop + 1 < n && is_digit src.[!stop + 1] && not !is_float))
        do
          if src.[!stop] = '.' then is_float := true;
          incr stop
        done;
        let text = String.sub src pos (!stop - pos) in
        let tok =
          if !is_float then FLOAT (float_of_string text) else INT (int_of_string text)
        in
        go !stop (tok :: acc)
      end
      else if is_ident_start c then begin
        let stop = ref pos in
        while !stop < n && is_ident_char src.[!stop] do incr stop done;
        let text = String.sub src pos (!stop - pos) in
        let tok = match keyword_of text with Some k -> k | None -> IDENT text in
        go !stop (tok :: acc)
      end
      else
        let two = if pos + 1 < n then String.sub src pos 2 else "" in
        match two with
        | "&&" -> go (pos + 2) (AND :: acc)
        | "||" -> go (pos + 2) (OR :: acc)
        | "<=" -> go (pos + 2) (LE :: acc)
        | ">=" -> go (pos + 2) (GE :: acc)
        | "==" -> go (pos + 2) (EQ :: acc)
        | "!=" -> go (pos + 2) (NE :: acc)
        | _ -> (
            match c with
            | '(' -> go (pos + 1) (LPAREN :: acc)
            | ')' -> go (pos + 1) (RPAREN :: acc)
            | '[' -> go (pos + 1) (LBRACKET :: acc)
            | ']' -> go (pos + 1) (RBRACKET :: acc)
            | ',' -> go (pos + 1) (COMMA :: acc)
            | ';' -> go (pos + 1) (SEMI :: acc)
            | '=' -> go (pos + 1) (ASSIGN :: acc)
            | '+' -> go (pos + 1) (PLUS :: acc)
            | '-' -> go (pos + 1) (MINUS :: acc)
            | '*' -> go (pos + 1) (STAR :: acc)
            | '/' -> go (pos + 1) (SLASH :: acc)
            | '<' -> go (pos + 1) (LT :: acc)
            | '>' -> go (pos + 1) (GT :: acc)
            | '!' -> go (pos + 1) (NOT :: acc)
            | _ ->
                raise
                  (Lex_error { pos; message = Printf.sprintf "unexpected character %c" c }))
  in
  go 0 []

let token_to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW_FOR -> "for"
  | KW_TO -> "to"
  | KW_DO -> "do"
  | KW_ENDFOR -> "endfor"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_ENDIF -> "endif"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | AND -> "&&"
  | OR -> "||"
  | NOT -> "!"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | EOF -> "<eof>"
