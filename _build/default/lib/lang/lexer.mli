(** Tokenizer for the query language (Fig. 2). *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_FOR | KW_TO | KW_DO | KW_ENDFOR
  | KW_IF | KW_THEN | KW_ELSE | KW_ENDIF
  | KW_TRUE | KW_FALSE
  | LPAREN | RPAREN | LBRACKET | RBRACKET
  | COMMA | SEMI
  | ASSIGN  (** = *)
  | PLUS | MINUS | STAR | SLASH
  | AND | OR | NOT
  | LT | LE | GT | GE | EQ | NE
  | EOF

exception Lex_error of { pos : int; message : string }

val tokenize : string -> token list
(** Comments run from [//] to end of line. *)

val token_to_string : token -> string
