module Fx = Arb_util.Fixed

type value =
  | V_int of int
  | V_fix of Fx.t
  | V_bool of bool
  | V_arr of value array

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let rec value_to_string = function
  | V_int i -> string_of_int i
  | V_fix f -> Fx.to_string f
  | V_bool b -> string_of_bool b
  | V_arr a ->
      "["
      ^ String.concat "; " (Array.to_list (Array.map value_to_string a))
      ^ "]"

let as_int = function
  | V_int i -> i
  | V_fix f -> Fx.to_int f
  | V_bool b -> if b then 1 else 0
  | V_arr _ -> err "expected a scalar, got an array"

let as_float = function
  | V_int i -> float_of_int i
  | V_fix f -> Fx.to_float f
  | V_bool b -> if b then 1.0 else 0.0
  | V_arr _ -> err "expected a scalar, got an array"

let rec equal_value a b =
  match (a, b) with
  | V_int x, V_int y -> x = y
  | V_fix x, V_fix y -> Fx.equal x y
  | V_bool x, V_bool y -> x = y
  | V_arr x, V_arr y ->
      Array.length x = Array.length y
      && Array.for_all2 equal_value x y
  | (V_int _ | V_fix _), (V_int _ | V_fix _) -> as_float a = as_float b
  | _ -> false

type env = {
  vars : (string, value) Hashtbl.t;
  rng : Arb_util.Rng.t;
  mutable outputs : value list;
  epsilon : float;
  sensitivity : float;
}

let lookup env v =
  match Hashtbl.find_opt env.vars v with
  | Some x -> x
  | None -> err "unbound variable %s" v

let to_bool = function
  | V_bool b -> b
  | V_int i -> i <> 0
  | v -> err "expected a boolean, got %s" (value_to_string v)

(* Arithmetic with int->fix promotion. *)
let arith op_int op_fix a b =
  match (a, b) with
  | V_int x, V_int y -> V_int (op_int x y)
  | _ ->
      let fx v = match v with V_fix f -> f | _ -> Fx.of_float (as_float v) in
      V_fix (op_fix (fx a) (fx b))

let compare_vals a b = Float.compare (as_float a) (as_float b)

let float_array = function
  | V_arr a -> Array.map as_float a
  | v -> err "expected an array, got %s" (value_to_string v)

let rec eval env (e : Ast.expr) : value =
  match e with
  | Int_lit i -> V_int i
  | Fix_lit f -> V_fix (Fx.of_float f)
  | Bool_lit b -> V_bool b
  | Var v -> lookup env v
  | Index (v, idxs) ->
      let rec descend value idxs =
        match (value, idxs) with
        | v, [] -> v
        | V_arr a, i :: rest ->
            let ix = as_int (eval env i) in
            if ix < 0 || ix >= Array.length a then
              err "index %d out of bounds for %s (length %d)" ix v_name
                (Array.length a)
            else descend a.(ix) rest
        | v, _ -> err "indexing a non-array %s" (value_to_string v)
      and v_name = v in
      descend (lookup env v) idxs
  | Unop (Not, e) -> V_bool (not (to_bool (eval env e)))
  | Unop (Neg, e) -> (
      match eval env e with
      | V_int i -> V_int (-i)
      | V_fix f -> V_fix (Fx.neg f)
      | v -> err "negating %s" (value_to_string v))
  | Binop (op, e1, e2) -> (
      match op with
      | And -> V_bool (to_bool (eval env e1) && to_bool (eval env e2))
      | Or -> V_bool (to_bool (eval env e1) || to_bool (eval env e2))
      | Lt -> V_bool (compare_vals (eval env e1) (eval env e2) < 0)
      | Le -> V_bool (compare_vals (eval env e1) (eval env e2) <= 0)
      | Gt -> V_bool (compare_vals (eval env e1) (eval env e2) > 0)
      | Ge -> V_bool (compare_vals (eval env e1) (eval env e2) >= 0)
      | Eq -> V_bool (compare_vals (eval env e1) (eval env e2) = 0)
      | Ne -> V_bool (compare_vals (eval env e1) (eval env e2) <> 0)
      | Add -> arith ( + ) Fx.add (eval env e1) (eval env e2)
      | Sub -> arith ( - ) Fx.sub (eval env e1) (eval env e2)
      | Mul -> arith ( * ) Fx.mul (eval env e1) (eval env e2)
      | Div ->
          let a = eval env e1 and b = eval env e2 in
          if as_float b = 0.0 then err "division by zero";
          arith ( / ) Fx.div a b)
  | Call (f, args) -> eval_call env f (List.map (eval env) args)

and eval_call env f args =
  match (f, args) with
  | "sum", [ V_arr rows ] when Array.length rows > 0 && (match rows.(0) with V_arr _ -> true | _ -> false) ->
      (* Column sums over the participant axis. *)
      let width =
        match rows.(0) with V_arr r -> Array.length r | _ -> assert false
      in
      let sums = Array.make width 0 in
      Array.iter
        (function
          | V_arr r ->
              Array.iteri (fun j v -> sums.(j) <- sums.(j) + as_int v) r
          | v -> err "ragged database row %s" (value_to_string v))
        rows;
      V_arr (Array.map (fun s -> V_int s) sums)
  | "sum", [ V_arr a ] ->
      if Array.exists (function V_fix _ -> true | _ -> false) a then
        V_fix
          (Array.fold_left (fun acc v -> Fx.add acc (Fx.of_float (as_float v))) Fx.zero a)
      else V_int (Array.fold_left (fun acc v -> acc + as_int v) 0 a)
  | "max", [ V_arr a ] when Array.length a > 0 ->
      Array.fold_left (fun acc v -> if compare_vals v acc > 0 then v else acc) a.(0) a
  | "argmax", [ V_arr a ] when Array.length a > 0 ->
      let best = ref 0 in
      Array.iteri (fun i v -> if compare_vals v a.(!best) > 0 then best := i) a;
      V_int !best
  | "len", [ V_arr a ] -> V_int (Array.length a)
  | "prefixSums", [ V_arr a ] ->
      let acc = ref 0 in
      V_arr (Array.map (fun v -> acc := !acc + as_int v; V_int !acc) a)
  | "suffixSums", [ V_arr a ] ->
      let n = Array.length a in
      let out = Array.make n (V_int 0) in
      let acc = ref 0 in
      for i = n - 1 downto 0 do
        acc := !acc + as_int a.(i);
        out.(i) <- V_int !acc
      done;
      V_arr out
  | "abs", [ V_int i ] -> V_int (abs i)
  | "abs", [ V_fix f ] -> V_fix (Fx.abs f)
  | "clip", [ v; lo; hi ] ->
      let x = as_float v and l = as_float lo and h = as_float hi in
      if l > h then err "clip: lo > hi";
      let c = Float.min h (Float.max l x) in
      (match v with V_int _ -> V_int (int_of_float c) | _ -> V_fix (Fx.of_float c))
  | "exp", [ v ] -> V_fix (Fx.of_float (exp (as_float v)))
  | "log", [ v ] ->
      let x = as_float v in
      if x <= 0.0 then err "log of non-positive value";
      V_fix (Fx.of_float (log x))
  | "laplace", [ V_arr a ] ->
      V_arr
        (Array.map
           (fun v ->
             V_fix
               (Fx.of_float
                  (Arb_dp.Mechanisms.laplace env.rng ~epsilon:env.epsilon
                     ~sensitivity:env.sensitivity (as_float v))))
           a)
  | "laplace", [ v ] ->
      V_fix
        (Fx.of_float
           (Arb_dp.Mechanisms.laplace env.rng ~epsilon:env.epsilon
              ~sensitivity:env.sensitivity (as_float v)))
  | "em", [ arr ] ->
      let scores = float_array arr in
      V_int
        (Arb_dp.Mechanisms.exponential_gumbel env.rng ~epsilon:env.epsilon
           ~sensitivity:env.sensitivity scores)
  | "emGap", [ arr ] ->
      let scores = float_array arr in
      let w, gap =
        Arb_dp.Mechanisms.noisy_max_gap env.rng ~epsilon:env.epsilon
          ~sensitivity:env.sensitivity scores
      in
      V_arr [| V_int w; V_fix (Fx.of_float gap) |]
  | "sampleUniform", [ V_arr rows; phi ] ->
      let phi = as_float phi in
      if phi <= 0.0 || phi > 1.0 then err "sampleUniform: phi out of (0,1]";
      let kept =
        Array.to_list rows
        |> List.filter (fun _ -> Arb_util.Rng.uniform01 env.rng < phi)
      in
      (* Keep the shape non-degenerate for downstream sums. *)
      let kept = if kept = [] then [ rows.(0) ] else kept in
      V_arr (Array.of_list kept)
  | "declassify", [ v ] -> v
  | _ ->
      err "unknown builtin %s/%d" f (List.length args)

let grow_array a len fill =
  if Array.length a >= len then a
  else
    Array.init len (fun i -> if i < Array.length a then a.(i) else fill)

let rec assign_index env name idx_values rhs =
  let current =
    match Hashtbl.find_opt env.vars name with
    | Some v -> v
    | None -> V_arr [||]
  in
  let rec go value idxs =
    match idxs with
    | [] -> rhs
    | i :: rest ->
        let a = match value with V_arr a -> a | _ -> [||] in
        let a = grow_array a (i + 1) (V_int 0) in
        let a = Array.copy a in
        a.(i) <- go a.(i) rest;
        V_arr a
  in
  Hashtbl.replace env.vars name (go current idx_values)

and exec env (s : Ast.stmt) =
  match s with
  | Seq ss -> List.iter (exec env) ss
  | Assign (v, e) -> Hashtbl.replace env.vars v (eval env e)
  | Assign_idx (v, idxs, e) ->
      let idx_values = List.map (fun i -> as_int (eval env i)) idxs in
      List.iter
        (fun i -> if i < 0 then err "negative index writing %s" v)
        idx_values;
      assign_index env v idx_values (eval env e)
  | Output e -> env.outputs <- eval env e :: env.outputs
  | For (v, lo, hi, body) ->
      let lo = as_int (eval env lo) and hi = as_int (eval env hi) in
      for i = lo to hi do
        Hashtbl.replace env.vars v (V_int i);
        exec env body
      done
  | If (c, s1, s2) -> if to_bool (eval env c) then exec env s1 else exec env s2

let default_sensitivity (p : Ast.program) =
  match p.row with
  | Ast.One_hot _ -> 1.0
  | Ast.Bounded { lo; hi; _ } -> float_of_int (max (abs lo) (abs hi))

let run (p : Ast.program) ~db ?sensitivity rng =
  let sensitivity =
    match sensitivity with Some s -> s | None -> default_sensitivity p
  in
  let env =
    {
      vars = Hashtbl.create 16;
      rng;
      outputs = [];
      epsilon = p.epsilon;
      sensitivity;
    }
  in
  let n = Array.length db in
  let width = if n = 0 then 0 else Array.length db.(0) in
  Hashtbl.replace env.vars "db"
    (V_arr (Array.map (fun row -> V_arr (Array.map (fun x -> V_int x) row)) db));
  Hashtbl.replace env.vars "N" (V_int n);
  Hashtbl.replace env.vars "C" (V_int width);
  exec env p.body;
  List.rev env.outputs
