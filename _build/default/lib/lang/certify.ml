module I = Arb_util.Interval

type report = {
  certified : bool;
  reason : string option;
  cost : Arb_dp.Budget.t;
  sensitivity : float;
  mechanism_calls : int;
}

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

(* Abstract value: is it derived from db, and if so how much can one
   participant's row move it (per-coordinate, worst case)? [hist] marks
   one-hot histogram vectors, whose partial sums stay low-sensitivity. *)
type absval = {
  tainted : bool;
  sens : float; (* infinity = not usable by a mechanism *)
  hist : bool;
  rows : bool; (* database-shaped: per-participant rows (db or a sample) *)
  sampled : float option; (* phi, if derived from a secret sample *)
}

let clean =
  { tainted = false; sens = 0.0; hist = false; rows = false; sampled = None }

let join_abs a b =
  {
    tainted = a.tainted || b.tainted;
    sens = Float.max a.sens b.sens;
    hist = a.hist && b.hist;
    rows = a.rows || b.rows;
    sampled =
      (match (a.sampled, b.sampled) with
      | None, None -> None
      | Some p, None | None, Some p -> Some p
      | Some p, Some q -> Some (Float.max p q));
  }

let combine_linear a b =
  {
    tainted = a.tainted || b.tainted;
    sens = a.sens +. b.sens;
    hist = false;
    rows = false;
    sampled = (join_abs a b).sampled;
  }

type state = {
  vars : (string, absval) Hashtbl.t;
  tenv : Types.env;
  epsilon : float;
  row_sens : float;
  mutable cost : Arb_dp.Budget.t;
  mutable max_sens : float;
  mutable calls : int;
  (* Multiplier applied to mechanism costs from enclosing loops. *)
  mutable loop_factor : float;
  (* True when inside a branch whose condition is tainted. *)
  mutable tainted_context : bool;
}

let lookup st v =
  match Hashtbl.find_opt st.vars v with Some a -> a | None -> clean

(* Per-mechanism delta from the finite-range / windowed implementations
   (§6: tails of Laplace/Gumbel cut to the representable range; 16-bit
   window in the exponentiation em). *)
let delta_per_mechanism = 1e-9

let magnitude_of st e =
  match Types.range_of st.tenv e with
  | Some r ->
      (* Ranges of fix-typed expressions are in raw 2^16 units; we cannot
         tell which here, so take the larger (raw) interpretation —
         conservative for sensitivity growth. *)
      float_of_int (I.magnitude r)
  | None -> infinity

let rec abs_expr st (e : Ast.expr) : absval =
  match e with
  | Int_lit _ | Fix_lit _ | Bool_lit _ -> clean
  | Var "db" ->
      { tainted = true; sens = infinity; hist = false; rows = true; sampled = None }
  | Var v -> lookup st v
  | Index (v, idxs) ->
      List.iter (fun i -> ignore (abs_expr st i)) idxs;
      let a = lookup st v in
      if v = "db" then
        { tainted = true; sens = infinity; hist = false; rows = false; sampled = None }
      else { a with rows = false }
  | Unop (Not, e) | Unop (Neg, e) -> abs_expr st e
  | Binop ((Add | Sub), e1, e2) -> combine_linear (abs_expr st e1) (abs_expr st e2)
  | Binop (Mul, e1, e2) -> (
      let a1 = abs_expr st e1 and a2 = abs_expr st e2 in
      match (a1.tainted, a2.tainted) with
      | false, false -> clean
      | true, true ->
          { (join_abs a1 a2) with sens = infinity; hist = false }
      | true, false ->
          { a1 with sens = a1.sens *. magnitude_of st e2; hist = false }
      | false, true ->
          { a2 with sens = a2.sens *. magnitude_of st e1; hist = false })
  | Binop (Div, e1, e2) -> (
      let a1 = abs_expr st e1 and a2 = abs_expr st e2 in
      if a2.tainted then { (join_abs a1 a2) with sens = infinity; hist = false }
      else
        match Types.range_of st.tenv e2 with
        | Some r when r.I.lo > 0 ->
            { a1 with sens = a1.sens /. float_of_int r.I.lo; hist = false }
        | Some r when r.I.hi < 0 ->
            { a1 with sens = a1.sens /. float_of_int (-r.I.hi); hist = false }
        | _ -> { a1 with sens = infinity; hist = false })
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), e1, e2) ->
      let a = join_abs (abs_expr st e1) (abs_expr st e2) in
      (* Thresholding is non-linear: a tainted comparison result can flip on
         a single row change. *)
      if a.tainted then { a with sens = infinity; hist = false } else clean
  | Call (f, args) -> abs_call st f args

and abs_call st f args =
  let arg_abs = List.map (abs_expr st) args in
  let charge_mechanism input =
    if input.tainted && input.sens = infinity then
      reject "mechanism applied to a value with unbounded sensitivity";
    let eff_eps =
      match input.sampled with
      | None -> st.epsilon
      | Some phi -> Arb_dp.Budget.amplified_epsilon ~epsilon:st.epsilon ~phi
    in
    st.cost <-
      Arb_dp.Budget.spend_all st.cost
        (Arb_dp.Budget.scale
           (Arb_dp.Budget.create ~epsilon:eff_eps ~delta:delta_per_mechanism)
           st.loop_factor);
    st.calls <- st.calls + int_of_float st.loop_factor;
    if input.tainted then st.max_sens <- Float.max st.max_sens input.sens
  in
  match (f, args, arg_abs) with
  | "sum", [ _ ], [ a ] ->
      if a.rows then
        (* Column sums over participant rows: per-coordinate sensitivity is
           the row element bound; one-hot rows give a histogram. *)
        { tainted = true; sens = st.row_sens; hist = true; rows = false;
          sampled = a.sampled }
      else if not a.tainted then clean
      else if a.hist then
        (* Summing a sub-range of a one-hot histogram: one row moves at
           most one unit in and one out. *)
        { a with sens = 2.0 *. a.sens; hist = false }
      else { a with sens = infinity; hist = false }
  | ("prefixSums" | "suffixSums"), _, [ a ] ->
      if not a.tainted then clean
      else if a.hist then
        (* Running sums of a one-hot histogram: a row change moves one unit
           across a boundary, shifting any partial sum by at most 1; keep
           the conservative factor 2. *)
        { a with sens = 2.0 *. a.sens; hist = false }
      else { a with sens = infinity; hist = false }
  | ("max" | "min" | "argmax"), _, [ a ] ->
      if a.tainted then { a with sens = infinity; hist = false } else clean
  | "len", _, _ -> clean
  | "abs", _, [ a ] -> { a with hist = false }
  | "clip", _, [ a; _; _ ] -> a
  | ("exp" | "log"), _, [ a ] ->
      if a.tainted then { a with sens = infinity; hist = false } else clean
  | "laplace", _, [ a ] ->
      charge_mechanism a;
      clean
  | "em", _, [ a ] ->
      charge_mechanism a;
      clean
  | "emGap", _, [ a ] ->
      (* Free-gap mechanism: winner and gap for one epsilon (Ding et al.). *)
      charge_mechanism a;
      clean
  | "sampleUniform", [ _; phi_expr ], [ a; _ ] -> (
      match phi_expr with
      | Ast.Fix_lit phi when phi > 0.0 && phi <= 1.0 ->
          { a with tainted = true; sens = st.row_sens; rows = true;
            sampled = Some phi }
      | _ -> reject "sampleUniform requires a literal phi in (0, 1]")
  | "declassify", _, [ a ] ->
      (* Analyst-level declassify of raw data is exactly what certification
         must prevent; mechanism results are already clean. *)
      if a.tainted then reject "declassify applied to raw sensitive data";
      a
  | _ -> reject "unknown or mis-applied builtin %s" f

let taint_assigned st stmt =
  (* Implicit flows: everything assigned under a tainted branch becomes
     unusable by mechanisms. *)
  Ast.fold_stmts
    (fun () s ->
      match s with
      | Ast.Assign (v, _) | Ast.Assign_idx (v, _, _) ->
          Hashtbl.replace st.vars v
            { tainted = true; sens = infinity; hist = false; rows = false;
              sampled = None }
      | _ -> ())
    () stmt

let rec abs_stmt st (s : Ast.stmt) =
  match s with
  | Seq ss -> List.iter (abs_stmt st) ss
  | Assign (v, e) ->
      let a = abs_expr st e in
      let a =
        if st.tainted_context then { a with tainted = true; sens = infinity }
        else a
      in
      Hashtbl.replace st.vars v
        (match Hashtbl.find_opt st.vars v with
        | Some old -> join_abs old a
        | None -> a)
  | Assign_idx (v, idxs, e) ->
      List.iter (fun i -> ignore (abs_expr st i)) idxs;
      let a = abs_expr st e in
      let a =
        if st.tainted_context then { a with tainted = true; sens = infinity }
        else a
      in
      Hashtbl.replace st.vars v
        (match Hashtbl.find_opt st.vars v with
        | Some old -> join_abs old a
        | None -> a)
  | Output e ->
      let a = abs_expr st e in
      if a.tainted then reject "output of a value not protected by a mechanism";
      if st.tainted_context then
        reject "output inside a branch on sensitive data (implicit flow)"
  | If (c, s1, s2) ->
      let ca = abs_expr st c in
      if ca.tainted then begin
        let saved = st.tainted_context in
        st.tainted_context <- true;
        taint_assigned st s1;
        taint_assigned st s2;
        abs_stmt st s1;
        abs_stmt st s2;
        st.tainted_context <- saved
      end
      else begin
        abs_stmt st s1;
        abs_stmt st s2
      end
  | For (v, lo, hi, body) ->
      let lo_v = Types.static_eval_expr st.tenv lo
      and hi_v = Types.static_eval_expr st.tenv hi in
      let trip =
        match (lo_v, hi_v) with
        | Some l, Some h -> max 0 (h - l + 1)
        | _ -> reject "loop bounds must be statically evaluable for certification"
      in
      Hashtbl.replace st.vars v clean;
      let saved = st.loop_factor in
      st.loop_factor <- st.loop_factor *. float_of_int trip;
      (* Taint state is monotone under join: iterate to a fixpoint, but the
         mechanism cost of the body is charged [trip] times via
         loop_factor, so run the body abstract semantics once for cost and
         again (cost-free) until taints stabilize. *)
      abs_stmt st body;
      st.loop_factor <- saved;
      let rec stabilize n =
        let snapshot = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.vars [] in
        let cost_before = st.cost and calls_before = st.calls in
        st.loop_factor <- 0.0;
        abs_stmt st body;
        st.loop_factor <- saved;
        st.cost <- cost_before;
        st.calls <- calls_before;
        let stable =
          List.for_all
            (fun (k, v) -> Hashtbl.find_opt st.vars k = Some v)
            snapshot
          && Hashtbl.length st.vars = List.length snapshot
        in
        if not stable && n > 0 then stabilize (n - 1)
        else if not stable then reject "taint analysis did not converge"
      in
      stabilize 16

let certify (p : Ast.program) ~n =
  match Types.infer p ~n with
  | exception Types.Type_error m ->
      {
        certified = false;
        reason = Some ("type error: " ^ m);
        cost = Arb_dp.Budget.zero;
        sensitivity = 0.0;
        mechanism_calls = 0;
      }
  | tenv -> (
      let row_s =
        match p.row with
        | Ast.One_hot _ -> 1.0
        | Ast.Bounded { lo; hi; _ } -> float_of_int (hi - lo)
      in
      let st =
        {
          vars = Hashtbl.create 16;
          tenv;
          epsilon = p.epsilon;
          row_sens = row_s;
          cost = Arb_dp.Budget.zero;
          max_sens = 0.0;
          calls = 0;
          loop_factor = 1.0;
          tainted_context = false;
        }
      in
      match abs_stmt st p.body with
      | () ->
          {
            certified = true;
            reason = None;
            cost = st.cost;
            sensitivity = (if st.max_sens = 0.0 then row_s else st.max_sens);
            mechanism_calls = st.calls;
          }
      | exception Reject m ->
          {
            certified = false;
            reason = Some m;
            cost = Arb_dp.Budget.zero;
            sensitivity = 0.0;
            mechanism_calls = 0;
          })

let check p ~n =
  let r = certify p ~n in
  if r.certified then Ok r
  else Error (Option.value r.reason ~default:"not certified")
