open Lexer

exception Parse_error of string

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected '%s' but found '%s'" (token_to_string tok)
            (token_to_string (peek st))))

let rec parse_or st =
  let lhs = parse_and st in
  if peek st = OR then begin
    advance st;
    Ast.Binop (Ast.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = AND then begin
    advance st;
    Ast.Binop (Ast.And, lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_addsub st in
  let op =
    match peek st with
    | LT -> Some Ast.Lt
    | LE -> Some Ast.Le
    | GT -> Some Ast.Gt
    | GE -> Some Ast.Ge
    | EQ -> Some Ast.Eq
    | NE -> Some Ast.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, parse_addsub st)

and parse_addsub st =
  let rec loop lhs =
    match peek st with
    | PLUS ->
        advance st;
        loop (Ast.Binop (Ast.Add, lhs, parse_muldiv st))
    | MINUS ->
        advance st;
        loop (Ast.Binop (Ast.Sub, lhs, parse_muldiv st))
    | _ -> lhs
  in
  loop (parse_muldiv st)

and parse_muldiv st =
  let rec loop lhs =
    match peek st with
    | STAR ->
        advance st;
        loop (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | SLASH ->
        advance st;
        loop (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | MINUS ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | NOT ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_atom st

and parse_args st =
  expect st LPAREN;
  if peek st = RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_or st in
      match peek st with
      | COMMA ->
          advance st;
          loop (e :: acc)
      | RPAREN ->
          advance st;
          List.rev (e :: acc)
      | t ->
          raise
            (Parse_error
               (Printf.sprintf "expected ',' or ')' in argument list, found '%s'"
                  (token_to_string t)))
    in
    loop []

and parse_indices st =
  let rec loop acc =
    if peek st = LBRACKET then begin
      advance st;
      let e = parse_or st in
      expect st RBRACKET;
      loop (e :: acc)
    end
    else List.rev acc
  in
  loop []

and parse_atom st =
  match peek st with
  | INT i ->
      advance st;
      Ast.Int_lit i
  | FLOAT f ->
      advance st;
      Ast.Fix_lit f
  | KW_TRUE ->
      advance st;
      Ast.Bool_lit true
  | KW_FALSE ->
      advance st;
      Ast.Bool_lit false
  | LPAREN ->
      advance st;
      let e = parse_or st in
      expect st RPAREN;
      e
  | IDENT name -> (
      advance st;
      match peek st with
      | LPAREN -> Ast.Call (name, parse_args st)
      | LBRACKET -> Ast.Index (name, parse_indices st)
      | _ -> Ast.Var name)
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected an expression, found '%s'" (token_to_string t)))

let rec parse_stmt_seq st stop =
  let rec loop acc =
    (match peek st with SEMI -> advance st | _ -> ());
    let t = peek st in
    if t = EOF || List.mem t stop then
      match acc with [ s ] -> s | _ -> Ast.Seq (List.rev acc)
    else
      let s = parse_one st in
      (match peek st with SEMI -> advance st | _ -> ());
      loop (s :: acc)
  in
  loop []

and parse_one st =
  match peek st with
  | KW_FOR ->
      advance st;
      let v =
        match peek st with
        | IDENT v ->
            advance st;
            v
        | t -> raise (Parse_error ("expected loop variable, found " ^ token_to_string t))
      in
      expect st ASSIGN;
      let lo = parse_or st in
      expect st KW_TO;
      let hi = parse_or st in
      expect st KW_DO;
      let body = parse_stmt_seq st [ KW_ENDFOR ] in
      expect st KW_ENDFOR;
      Ast.For (v, lo, hi, body)
  | KW_IF ->
      advance st;
      let cond = parse_or st in
      expect st KW_THEN;
      let s1 = parse_stmt_seq st [ KW_ELSE; KW_ENDIF ] in
      let s2 =
        if peek st = KW_ELSE then begin
          advance st;
          parse_stmt_seq st [ KW_ENDIF ]
        end
        else Ast.Seq []
      in
      expect st KW_ENDIF;
      Ast.If (cond, s1, s2)
  | IDENT "output" ->
      advance st;
      let args = parse_args st in
      (match args with
      | [ e ] -> Ast.Output e
      | _ -> raise (Parse_error "output takes exactly one argument"))
  | IDENT name -> (
      advance st;
      match peek st with
      | ASSIGN ->
          advance st;
          Ast.Assign (name, parse_or st)
      | LBRACKET ->
          let idxs = parse_indices st in
          expect st ASSIGN;
          Ast.Assign_idx (name, idxs, parse_or st)
      | t ->
          raise
            (Parse_error
               (Printf.sprintf "expected '=' or '[' after '%s', found '%s'" name
                  (token_to_string t))))
  | t -> raise (Parse_error ("expected a statement, found " ^ token_to_string t))

let parse_stmt src =
  let st = { toks = tokenize src } in
  let s = parse_stmt_seq st [] in
  expect st EOF;
  s

let parse_expr src =
  let st = { toks = tokenize src } in
  let e = parse_or st in
  expect st EOF;
  e
