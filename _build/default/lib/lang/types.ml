module I = Arb_util.Interval

type base = Ty_int | Ty_fix | Ty_bool

type ty = { base : base; range : I.t; dims : int list }

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type env = {
  vars : (string, ty) Hashtbl.t;
  n : int;
  width : int;
  mutable max_bits : int;
  mutable max_cats : int;
}

let lookup env v = Hashtbl.find_opt env.vars v

let scalar base range = { base; range; dims = [] }

let note env ty =
  if ty.base = Ty_int || ty.base = Ty_fix then
    env.max_bits <- max env.max_bits (I.bits_needed ty.range);
  (match ty.dims with
  | [ k ] | [ _; k ] -> env.max_cats <- max env.max_cats k
  | _ -> ())

let join_ty a b =
  if a.base <> b.base || a.dims <> b.dims then
    (* Joining int with fix promotes; anything else is an error. *)
    match (a.base, b.base) with
    | (Ty_int | Ty_fix), (Ty_int | Ty_fix) when a.dims = b.dims ->
        { base = Ty_fix; range = I.join a.range b.range; dims = a.dims }
    | _ -> err "incompatible types at control-flow join"
  else { a with range = I.join a.range b.range }

(* Static evaluation of loop-bound expressions: literals, N, C, and
   arithmetic over already-constant variables. *)
let rec static_eval env (e : Ast.expr) : int option =
  match e with
  | Int_lit i -> Some i
  | Var "N" -> Some env.n
  | Var "C" -> Some env.width
  | Var v -> (
      match lookup env v with
      | Some { range; dims = []; _ } when range.I.lo = range.I.hi -> Some range.I.lo
      | _ -> None)
  | Binop (Add, a, b) -> Option.bind (static_eval env a) (fun x -> Option.map (( + ) x) (static_eval env b))
  | Binop (Sub, a, b) -> Option.bind (static_eval env a) (fun x -> Option.map (fun y -> x - y) (static_eval env b))
  | Binop (Mul, a, b) -> Option.bind (static_eval env a) (fun x -> Option.map (( * ) x) (static_eval env b))
  | Binop (Div, a, b) -> (
      match (static_eval env a, static_eval env b) with
      | Some x, Some y when y <> 0 -> Some (x / y)
      | _ -> None)
  | Unop (Neg, a) -> Option.map (fun x -> -x) (static_eval env a)
  | _ -> None

let promote a b =
  match (a, b) with
  | Ty_int, Ty_int -> Ty_int
  | (Ty_int | Ty_fix), (Ty_int | Ty_fix) -> Ty_fix
  | _ -> err "arithmetic on booleans"

let fix_range_of_float f =
  let r = Arb_util.Fixed.to_raw (Arb_util.Fixed.of_float f) in
  I.point r

(* Ranges for fix values are tracked in raw 2^16-scaled units so bit-width
   accounting is uniform. *)
let fix_scale = 1 lsl Arb_util.Fixed.frac_bits

(* All ranges saturate at +-2^55: runtime values live in the 30.16 fixpoint
   format (or plaintext moduli below 2^47), so nothing representable exceeds
   this, and saturation makes loop-range inference reach a fixpoint for
   accumulator patterns like [total = total + x]. *)
let range_bound = 1 lsl 55

let clamp_range (r : I.t) =
  if r.I.lo >= -range_bound && r.I.hi <= range_bound then r
  else I.make (max r.I.lo (-range_bound)) (min r.I.hi range_bound)

let rec infer_expr env (e : Ast.expr) : ty =
  let ty = infer_expr' env e in
  let ty = { ty with range = clamp_range ty.range } in
  note env ty;
  ty

and infer_expr' env (e : Ast.expr) : ty =
  match e with
  | Int_lit i -> scalar Ty_int (I.point i)
  | Fix_lit f -> scalar Ty_fix (fix_range_of_float f)
  | Bool_lit _ -> scalar Ty_bool I.bool_range
  | Var v -> (
      match lookup env v with
      | Some ty -> ty
      | None -> err "unbound variable %s" v)
  | Index (v, idxs) -> (
      match lookup env v with
      | None -> err "unbound variable %s" v
      | Some ty ->
          let depth = List.length idxs in
          if depth > List.length ty.dims then err "over-indexing %s" v;
          List.iter
            (fun i ->
              let it = infer_expr env i in
              if it.base <> Ty_int || it.dims <> [] then
                err "non-integer index into %s" v)
            idxs;
          let rec drop k dims = if k = 0 then dims else drop (k - 1) (List.tl dims) in
          { ty with dims = drop depth ty.dims })
  | Unop (Not, e) ->
      let t = infer_expr env e in
      if t.base <> Ty_bool then err "! applied to a non-boolean";
      t
  | Unop (Neg, e) ->
      let t = infer_expr env e in
      if t.base = Ty_bool then err "negating a boolean";
      { t with range = I.neg t.range }
  | Binop (op, e1, e2) -> infer_binop env op e1 e2
  | Call (f, args) -> infer_call env f (List.map (infer_expr env) args)

and infer_binop env op e1 e2 =
  let t1 = infer_expr env e1 and t2 = infer_expr env e2 in
  match op with
  | And | Or ->
      if t1.base <> Ty_bool || t2.base <> Ty_bool then err "&&/|| on non-booleans";
      scalar Ty_bool I.bool_range
  | Lt | Le | Gt | Ge | Eq | Ne ->
      if t1.dims <> [] || t2.dims <> [] then err "comparing arrays";
      scalar Ty_bool I.bool_range
  | Add | Sub | Mul | Div ->
      if t1.dims <> [] || t2.dims <> [] then err "arithmetic on whole arrays";
      let base = promote t1.base t2.base in
      (* Put both ranges on a common scale when promoting to fix. *)
      let r1 = if base = Ty_fix && t1.base = Ty_int then I.scale t1.range fix_scale else t1.range in
      let r2 = if base = Ty_fix && t2.base = Ty_int then I.scale t2.range fix_scale else t2.range in
      let range =
        match (op, base) with
        | Add, _ -> I.add r1 r2
        | Sub, _ -> I.sub r1 r2
        | Mul, Ty_int -> I.mul r1 r2
        | Div, Ty_int -> I.div r1 r2
        | Mul, _ ->
            (* fix multiply rescales by 2^-16. *)
            let wide = I.mul r1 r2 in
            I.make (wide.I.lo / fix_scale) (wide.I.hi / fix_scale)
        | Div, _ ->
            let scaled = I.scale r1 fix_scale in
            I.div scaled r2
        | (And | Or | Lt | Le | Gt | Ge | Eq | Ne), _ -> assert false
      in
      scalar base range

and infer_call _env f (args : ty list) : ty =
  match (f, args) with
  | "sum", [ { dims = [ n; k ]; base; range } ] ->
      { base; range = I.scale range n; dims = [ k ] }
  | "sum", [ { dims = [ k ]; base; range } ] ->
      { base; range = I.scale range k; dims = [] }
  | ("max" | "min"), [ ({ dims = [ _ ]; _ } as t) ] -> { t with dims = [] }
  | ("prefixSums" | "suffixSums"), [ ({ dims = [ k ]; range; _ } as t) ] ->
      { t with range = I.scale range k }
  | "argmax", [ { dims = [ k ]; _ } ] -> scalar Ty_int (I.make 0 (max 0 (k - 1)))
  | "len", [ { dims = d :: _; _ } ] -> scalar Ty_int (I.point d)
  | "abs", [ ({ dims = []; _ } as t) ] ->
      { t with range = I.make 0 (I.magnitude t.range) }
  | "clip", [ t; lo; hi ] ->
      if lo.dims <> [] || hi.dims <> [] then err "clip bounds must be scalars";
      let lo_v = lo.range.I.lo and hi_v = hi.range.I.hi in
      { t with range = I.clip t.range ~lo:lo_v ~hi:hi_v }
  | "exp", [ { dims = []; _ } ] ->
      (* e^x saturates at the fixpoint format bound. *)
      scalar Ty_fix (I.make 0 ((1 lsl 45) - 1))
  | "log", [ { dims = []; _ } ] -> scalar Ty_fix (I.make (-30 * fix_scale) (45 * fix_scale))
  | "laplace", [ ({ dims = [ _ ]; _ } as t) ] ->
      (* Noise is unbounded in theory; the runtime clips to the fixpoint
         range, which is what the range reflects (finite-range delta, §6). *)
      { t with base = Ty_fix; range = I.make (-(1 lsl 45)) (1 lsl 45) }
  | "laplace", [ { dims = []; _ } ] -> scalar Ty_fix (I.make (-(1 lsl 45)) (1 lsl 45))
  | "em", [ { dims = [ k ]; _ } ] -> scalar Ty_int (I.make 0 (max 0 (k - 1)))
  | "emGap", [ { dims = [ k ]; _ } ] ->
      { base = Ty_fix; range = I.make (-(1 lsl 45)) (max (1 lsl 45) k); dims = [ 2 ] }
  | "sampleUniform", [ ({ dims = [ n; _ ]; _ } as t); { dims = []; _ } ] ->
      ignore n;
      t
  | "declassify", [ t ] -> t
  | _ ->
      err "builtin %s applied to invalid arguments (%d)" f (List.length args)

let assign env v ty =
  note env ty;
  match Hashtbl.find_opt env.vars v with
  | None -> Hashtbl.replace env.vars v ty
  | Some old ->
      (* Joining keeps inference monotone so loops reach a fixpoint. *)
      Hashtbl.replace env.vars v (join_ty old ty)

let rec infer_stmt env (s : Ast.stmt) =
  match s with
  | Seq ss -> List.iter (infer_stmt env) ss
  | Assign (v, e) -> assign env v (infer_expr env e)
  | Assign_idx (v, idxs, e) ->
      let elem = infer_expr env e in
      if elem.dims <> [] then err "assigning an array into an element of %s" v;
      List.iter
        (fun i ->
          let it = infer_expr env i in
          if it.base <> Ty_int then err "non-integer index writing %s" v)
        idxs;
      (* The array's length is bounded by the index range's upper bound. *)
      let dim_of i =
        let it = infer_expr env i in
        max 1 (it.range.I.hi + 1)
      in
      let dims = List.map dim_of idxs in
      let ty = { elem with dims } in
      (match Hashtbl.find_opt env.vars v with
      | None -> Hashtbl.replace env.vars v ty
      | Some old when List.length old.dims = List.length dims ->
          let merged_dims = List.map2 max old.dims dims in
          let merged = join_ty { old with dims } { ty with dims } in
          Hashtbl.replace env.vars v { merged with dims = merged_dims }
      | Some _ -> err "array %s written with inconsistent dimensions" v);
      note env ty
  | Output e -> ignore (infer_expr env e)
  | If (c, s1, s2) ->
      let ct = infer_expr env c in
      if ct.base <> Ty_bool then err "if condition must be boolean";
      infer_stmt env s1;
      infer_stmt env s2
  | For (v, lo, hi, body) ->
      let lo_v =
        match static_eval env lo with
        | Some x -> x
        | None -> err "loop lower bound must be statically evaluable"
      in
      let hi_v =
        match static_eval env hi with
        | Some x -> x
        | None -> err "loop upper bound must be statically evaluable"
      in
      if hi_v < lo_v then ()
      else begin
        Hashtbl.replace env.vars v (scalar Ty_int (I.make lo_v hi_v));
        (* Iterate the abstract body to a fixpoint. Accumulator patterns
           (total = total + x) grow by a constant per pass, so after a few
           descents any still-moving bound is widened to the saturation
           bound — the classic widening-to-top step — after which joins are
           stationary. *)
        let snapshot () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.vars [] in
        let widen_moving before =
          List.iter
            (fun (k, (v : ty)) ->
              match Hashtbl.find_opt env.vars k with
              | Some v' when v'.range <> v.range ->
                  let lo =
                    if v'.range.I.lo < v.range.I.lo then -range_bound
                    else v'.range.I.lo
                  and hi =
                    if v'.range.I.hi > v.range.I.hi then range_bound
                    else v'.range.I.hi
                  in
                  Hashtbl.replace env.vars k { v' with range = I.make lo hi }
              | _ -> ())
            before
        in
        let rec iterate n =
          let before = snapshot () in
          infer_stmt env body;
          let after = snapshot () in
          let stable =
            List.length before = List.length after
            && List.for_all
                 (fun (k, v) ->
                   match List.assoc_opt k after with
                   | Some v' -> v = v'
                   | None -> false)
                 before
          in
          if stable then ()
          else begin
            if n <= 60 then widen_moving before;
            if n = 0 then err "loop range inference did not converge"
            else iterate (n - 1)
          end
        in
        iterate 64
      end

let infer (p : Ast.program) ~n =
  let width =
    match p.row with
    | Ast.One_hot k -> k
    | Ast.Bounded { width; _ } -> width
  in
  let env = { vars = Hashtbl.create 16; n; width; max_bits = 1; max_cats = 1 } in
  let row_range =
    match p.row with
    | Ast.One_hot _ -> I.bool_range
    | Ast.Bounded { lo; hi; _ } -> I.make lo hi
  in
  Hashtbl.replace env.vars "db" { base = Ty_int; range = row_range; dims = [ n; width ] };
  Hashtbl.replace env.vars "N" (scalar Ty_int (I.point n));
  Hashtbl.replace env.vars "C" (scalar Ty_int (I.point width));
  infer_stmt env p.body;
  env

let range_of env e =
  match infer_expr env e with
  | { dims = []; range; _ } -> Some range
  | _ -> None
  | exception Type_error _ -> None

let static_eval_expr = static_eval

let plaintext_bits_needed env = env.max_bits
let max_category_count env = env.max_cats

let pp_ty fmt t =
  let base = match t.base with Ty_int -> "int" | Ty_fix -> "fix" | Ty_bool -> "bool" in
  Format.fprintf fmt "%s%s %a" base
    (String.concat "" (List.map (Printf.sprintf "[%d]") t.dims))
    I.pp t.range
