(** Recursive-descent parser for the query language (Fig. 2).

    Grammar (precedence low to high: ||, &&, comparisons, + -, * /, unary):
    {v
    stmt   := stmt ; stmt | var = exp | output(exp) | var[exp]... = exp
            | for var = exp to exp do stmt endfor
            | if exp then stmt [else stmt] endif
    exp    := exp op exp | var | var[exp]... | func(exp, ...) | literal | (exp)
    v} *)

exception Parse_error of string

val parse_stmt : string -> Ast.stmt
(** Parse a statement sequence (a whole query body). *)

val parse_expr : string -> Ast.expr
