open Ast

(* Precedence levels, matching the parser: 1 ||, 2 &&, 3 cmp, 4 +-, 5 */,
   6 unary, 7 atoms. *)
let prec_of = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 3
  | Add | Sub -> 4
  | Mul | Div -> 5

let rec expr_prec e =
  match e with
  | Int_lit _ | Bool_lit _ | Var _ | Index _ | Call _ -> 7
  | Fix_lit f -> if f < 0.0 then 6 else 7
  | Unop _ -> 6
  | Binop (op, _, _) -> prec_of op

and expr_at level e =
  let s = expr_raw e in
  if expr_prec e < level then "(" ^ s ^ ")" else s

and expr_raw = function
  | Int_lit i -> if i < 0 then Printf.sprintf "(%d)" i else string_of_int i
  | Fix_lit f ->
      let s = Printf.sprintf "%g" f in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | Bool_lit b -> string_of_bool b
  | Var v -> v
  | Index (v, idxs) ->
      v ^ String.concat "" (List.map (fun e -> "[" ^ expr_raw e ^ "]") idxs)
  | Call (f, args) -> f ^ "(" ^ String.concat ", " (List.map expr_raw args) ^ ")"
  | Unop (op, e) -> unop_name op ^ expr_at 6 e
  | Binop (op, e1, e2) ->
      let p = prec_of op in
      (* Left-associative: the right operand needs strictly higher
         precedence except for the right-nested || and && chains the parser
         produces. *)
      let right_level = match op with Or | And -> p | _ -> p + 1 in
      expr_at p e1 ^ " " ^ binop_name op ^ " " ^ expr_at right_level e2

let expr = expr_raw

let rec stmt_lines indent s =
  let pad = String.make (2 * indent) ' ' in
  match s with
  | Seq ss -> List.concat_map (stmt_lines indent) ss
  | Assign (v, e) -> [ pad ^ v ^ " = " ^ expr e ^ ";" ]
  | Assign_idx (v, idxs, e) ->
      [
        pad ^ v
        ^ String.concat "" (List.map (fun i -> "[" ^ expr i ^ "]") idxs)
        ^ " = " ^ expr e ^ ";";
      ]
  | Output e -> [ pad ^ "output(" ^ expr e ^ ");" ]
  | For (v, lo, hi, body) ->
      [ pad ^ "for " ^ v ^ " = " ^ expr lo ^ " to " ^ expr hi ^ " do" ]
      @ stmt_lines (indent + 1) body
      @ [ pad ^ "endfor" ]
  | If (c, s1, Seq []) ->
      [ pad ^ "if " ^ expr c ^ " then" ]
      @ stmt_lines (indent + 1) s1
      @ [ pad ^ "endif" ]
  | If (c, s1, s2) ->
      [ pad ^ "if " ^ expr c ^ " then" ]
      @ stmt_lines (indent + 1) s1
      @ [ pad ^ "else" ]
      @ stmt_lines (indent + 1) s2
      @ [ pad ^ "endif" ]

let stmt s = String.concat "\n" (stmt_lines 0 s) ^ "\n"
let pp_stmt fmt s = Format.pp_print_string fmt (stmt s)
