lib/lang/interp.mli: Arb_util Ast
