lib/lang/certify.ml: Arb_dp Arb_util Ast Float Hashtbl List Option Printf Types
