lib/lang/interp.ml: Arb_dp Arb_util Array Ast Float Hashtbl List Printf String
