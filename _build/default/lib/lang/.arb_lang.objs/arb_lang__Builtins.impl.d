lib/lang/builtins.ml: List
