lib/lang/types.ml: Arb_util Ast Format Hashtbl List Option Printf String
