lib/lang/certify.mli: Arb_dp Ast
