lib/lang/builtins.mli:
