lib/lang/types.mli: Arb_util Ast Format
