lib/lang/lexer.mli:
