(** Abstract syntax of Arboretum's query language (Fig. 2).

    Analysts write queries as if the whole database [db] sat on one machine:
    an imperative core (assignment, arrays, for, if) plus high-level
    operators ([sum], [em], [laplace], ...) that the planner later
    instantiates in different ways (§4.3). [db] is a predefined
    two-dimensional array: [db\[i\]\[j\]] is participant i's j-th input. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type unop = Not | Neg

type expr =
  | Int_lit of int
  | Fix_lit of float
  | Bool_lit of bool
  | Var of string
  | Index of string * expr list  (** var\[e\] or var\[e\]\[e\] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (** built-in functions only *)

type stmt =
  | Seq of stmt list
  | Assign of string * expr
  | Assign_idx of string * expr list * expr
  | For of string * expr * expr * stmt  (** for v = e1 to e2 do s endfor (inclusive) *)
  | If of expr * stmt * stmt
  | Output of expr  (** release a (certified) result to the analyst *)

(** A complete query: the program plus the input-domain declaration the
    certifier needs (what one participant's row looks like). *)
type row_shape =
  | One_hot of int  (** row is a one-hot vector of this length *)
  | Bounded of { width : int; lo : int; hi : int }
      (** row is [width] values, each clipped into \[lo, hi\] *)

type program = {
  name : string;
  body : stmt;
  row : row_shape;
  epsilon : float;  (** per-mechanism epsilon the analyst requests *)
}

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | And -> "&&"
  | Or -> "||"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let unop_name = function Not -> "!" | Neg -> "-"

(* Structural fold over statements, used by several analyses. *)
let rec fold_stmts f acc stmt =
  let acc = f acc stmt in
  match stmt with
  | Seq ss -> List.fold_left (fold_stmts f) acc ss
  | For (_, _, _, body) -> fold_stmts f acc body
  | If (_, s1, s2) -> fold_stmts f (fold_stmts f acc s1) s2
  | Assign _ | Assign_idx _ | Output _ -> acc

let rec fold_exprs f acc expr =
  let acc = f acc expr in
  match expr with
  | Int_lit _ | Fix_lit _ | Bool_lit _ | Var _ -> acc
  | Index (_, es) -> List.fold_left (fold_exprs f) acc es
  | Binop (_, e1, e2) -> fold_exprs f (fold_exprs f acc e1) e2
  | Unop (_, e) -> fold_exprs f acc e
  | Call (_, es) -> List.fold_left (fold_exprs f) acc es

(* Every expression appearing in a statement, including loop bounds. *)
let exprs_of_stmt = function
  | Seq _ -> []
  | Assign (_, e) -> [ e ]
  | Assign_idx (_, idxs, e) -> idxs @ [ e ]
  | For (_, e1, e2, _) -> [ e1; e2 ]
  | If (c, _, _) -> [ c ]
  | Output e -> [ e ]

let count_lines program =
  (* Source-line count used for Table 2; counted on the pretty-printed
     canonical form. *)
  let rec stmt_lines = function
    | Seq ss -> List.fold_left (fun a s -> a + stmt_lines s) 0 ss
    | Assign _ | Assign_idx _ | Output _ -> 1
    | For (_, _, _, body) -> 2 + stmt_lines body
    | If (_, s1, Seq []) -> 1 + stmt_lines s1
    | If (_, s1, s2) -> 2 + stmt_lines s1 + stmt_lines s2
  in
  stmt_lines program.body
