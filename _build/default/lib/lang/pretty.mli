(** Canonical pretty-printer; [Parser.parse_stmt (Pretty.stmt s)] round-trips
    to an equal AST (property-tested). *)

val expr : Ast.expr -> string
val stmt : Ast.stmt -> string
val pp_stmt : Format.formatter -> Ast.stmt -> unit
