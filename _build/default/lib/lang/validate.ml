type issue = { message : string; context : string }

let reserved = [ "db"; "N"; "C"; "output" ]

let check (p : Ast.program) =
  let issues = ref [] in
  let add context fmt =
    Printf.ksprintf (fun message -> issues := { message; context } :: !issues) fmt
  in
  let rec check_expr ctx (e : Ast.expr) =
    match e with
    | Int_lit _ | Fix_lit _ | Bool_lit _ | Var _ -> ()
    | Index (_, idxs) -> List.iter (check_expr ctx) idxs
    | Unop (_, e) -> check_expr ctx e
    | Binop (_, e1, e2) ->
        check_expr ctx e1;
        check_expr ctx e2
    | Call ("output", _) ->
        add ctx "output(...) is a statement, not an expression"
    | Call (f, args) ->
        (match Builtins.find f with
        | None -> add ctx "unknown builtin %S" f
        | Some info ->
            if List.length args <> info.Builtins.arity then
              add ctx "%s expects %d argument(s), got %d" f info.Builtins.arity
                (List.length args));
        List.iter (check_expr ctx) args
  in
  let check_assign_target ctx v =
    if List.mem v reserved then add ctx "cannot assign to the reserved name %S" v
  in
  let rec check_stmt (s : Ast.stmt) =
    match s with
    | Seq ss -> List.iter check_stmt ss
    | Assign (v, e) ->
        check_assign_target "assignment" v;
        check_expr ("assignment to " ^ v) e
    | Assign_idx (v, idxs, e) ->
        check_assign_target "indexed assignment" v;
        List.iter (check_expr ("index of " ^ v)) idxs;
        check_expr ("assignment to " ^ v) e
    | Output e -> check_expr "output" e
    | For (v, lo, hi, body) ->
        check_assign_target "loop variable" v;
        check_expr "loop bound" lo;
        check_expr "loop bound" hi;
        check_stmt body
    | If (c, s1, s2) ->
        check_expr "if condition" c;
        check_stmt s1;
        check_stmt s2
  in
  check_stmt p.Ast.body;
  (match p.Ast.row with
  | Ast.One_hot k when k <= 0 -> add "row shape" "one-hot width must be positive"
  | Ast.Bounded { width; lo; hi } ->
      if width <= 0 then add "row shape" "row width must be positive";
      if lo > hi then add "row shape" "row bounds inverted (lo > hi)"
  | Ast.One_hot _ -> ());
  if p.Ast.epsilon <= 0.0 then add "privacy" "epsilon must be positive";
  List.rev !issues

let check_exn p =
  match check p with
  | [] -> ()
  | { message; context } :: _ ->
      invalid_arg (Printf.sprintf "%s (%s)" message context)
