(** Early structural validation, run right after parsing: unknown builtins,
    wrong arities, assignments to the reserved names, and obviously
    malformed uses (indexing a call result, calling [output] as an
    expression). Gives analysts precise messages before the heavier type
    and privacy analyses run. *)

type issue = { message : string; context : string }

val check : Ast.program -> issue list
(** Empty list = structurally valid. *)

val check_exn : Ast.program -> unit
(** Raises [Invalid_argument] with the first issue's message. *)
