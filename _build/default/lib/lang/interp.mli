(** Reference interpreter: the single-machine, cleartext semantics analysts
    write against (§4.1).

    Every distributed plan Arboretum produces must compute the same
    (distributionally, where mechanisms add noise) results as this
    interpreter on the same database — the end-to-end tests rely on that.
    Numbers are ints and 30.16 fixpoints ({!Arb_util.Fixed}); mixing
    promotes to fixpoint, matching the MPC runtime's number format. *)

type value =
  | V_int of int
  | V_fix of Arb_util.Fixed.t
  | V_bool of bool
  | V_arr of value array

exception Runtime_error of string

val run :
  Ast.program ->
  db:int array array ->
  ?sensitivity:float ->
  Arb_util.Rng.t ->
  value list
(** Execute a query against a cleartext database (one row per participant).
    Returns the outputs in order. [sensitivity] defaults to the certified
    sensitivity of the row shape (1.0 for one-hot rows). The predefined
    variables [db], [N] (participants), and [C] (row width) are in scope. *)

val value_to_string : value -> string
val as_int : value -> int
val as_float : value -> float
val equal_value : value -> value -> bool
