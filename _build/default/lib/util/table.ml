type align = Left | Right

let normalize ncols row =
  let len = List.length row in
  if len >= ncols then List.filteri (fun i _ -> i < ncols) row
  else row @ List.init (ncols - len) (fun _ -> "")

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  let rows = List.map (normalize ncols) rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure (header :: rows);
  let align_of i =
    match List.nth_opt align i with Some a -> a | None -> Left
  in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    match align_of i with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.add_string buf (rule ^ "\n");
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)
