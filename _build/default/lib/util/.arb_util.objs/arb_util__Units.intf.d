lib/util/units.mli:
