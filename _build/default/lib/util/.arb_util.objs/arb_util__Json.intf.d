lib/util/json.mli:
