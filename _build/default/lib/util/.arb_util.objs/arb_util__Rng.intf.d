lib/util/rng.mli:
