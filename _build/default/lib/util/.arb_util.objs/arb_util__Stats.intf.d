lib/util/stats.mli:
