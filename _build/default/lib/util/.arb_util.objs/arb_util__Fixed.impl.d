lib/util/fixed.ml: Float Format Int Printf Stdlib
