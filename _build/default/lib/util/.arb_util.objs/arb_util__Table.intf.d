lib/util/table.mli:
