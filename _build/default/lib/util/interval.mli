(** Conservative integer value-range arithmetic.

    The planner's basic type inference (§4.4) assigns every expression a
    value range so that cryptosystem parameters (e.g. the BGV plaintext
    modulus) can be chosen safely. Bounds are conservative: the range of
    [a*b] is computed from the four corner products, and division widens to
    the safest enclosing range. Ranges are over mathematical integers scaled
    by the fixpoint quantum where fractional values are involved; callers
    track the scale. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi]; requires [lo <= hi]. *)

val point : int -> t
(** Singleton range. *)

val bool_range : t
(** \[0, 1\]. *)

val join : t -> t -> t
(** Smallest range containing both (used at control-flow joins). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Conservative: if the divisor range contains 0 the result is widened to
    the full product magnitude range. *)

val clip : t -> lo:int -> hi:int -> t
(** Range after clamping values into \[lo, hi\]. *)

val scale : t -> int -> t
(** Multiply both bounds by a non-negative constant. *)

val width : t -> int
val contains : t -> int -> bool
val subset : t -> t -> bool
val magnitude : t -> int
(** Largest absolute value in the range. *)

val bits_needed : t -> int
(** Bits required for a signed representation of every value in the range. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
