type t = int

let frac_bits = 16
let int_bits = 30
let scale = 1 lsl frac_bits
let scale_f = float_of_int scale

let one = scale
let zero = 0
let of_int n = n * scale

let of_float f =
  let scaled = f *. scale_f in
  int_of_float (Float.round scaled)

let to_float x = float_of_int x /. scale_f
let to_int x = if x >= 0 then x asr frac_bits else -((-x) asr frac_bits)
let of_raw x = x
let to_raw x = x

let add = ( + )
let sub = ( - )
let neg x = -x

(* Product carries 32 fractional bits; shift back with rounding half away
   from zero so that mul is symmetric under negation. *)
let mul a b =
  let p = a * b in
  let half = 1 lsl (frac_bits - 1) in
  if p >= 0 then (p + half) asr frac_bits else -(((-p) + half) asr frac_bits)

let div a b =
  if b = 0 then raise Division_by_zero;
  let num = a lsl frac_bits in
  let q = num / b and r = num mod b in
  (* Round to nearest. *)
  let adj =
    if 2 * abs r >= abs b then if (a >= 0) = (b >= 0) then 1 else -1 else 0
  in
  q + adj

let compare = Int.compare
let equal = Int.equal
let min = Stdlib.min
let max = Stdlib.max
let abs = Stdlib.abs

let max_nominal = (1 lsl (int_bits + frac_bits - 1)) - 1

let in_range x = x >= -max_nominal - 1 && x <= max_nominal

(* 2^f for f in [0,1), degree-4 polynomial fit of 2^x (max abs error ~1e-7,
   well below the 2^-16 quantum). *)
let exp2_frac f =
  let c0 = 1.0
  and c1 = 0.6931471805599453
  and c2 = 0.2401596780245026
  and c3 = 0.0558016049633903
  and c4 = 0.0089892745566750 in
  c0 +. (f *. (c1 +. (f *. (c2 +. (f *. (c3 +. (f *. c4)))))))

let exp2 x =
  let xf = to_float x in
  if xf >= float_of_int (int_bits - 1) then max_nominal
  else if xf < float_of_int (-frac_bits - 1) then 0
  else
    let ip = Float.floor xf in
    let fp = xf -. ip in
    let v = exp2_frac fp *. (2.0 ** ip) in
    of_float v

let log2 x =
  if x <= 0 then invalid_arg "Fixed.log2: non-positive input";
  of_float (Float.log2 (to_float x))

let pp fmt x = Format.fprintf fmt "%.6f" (to_float x)
let to_string x = Printf.sprintf "%.6f" (to_float x)
