type t = { lo : int; hi : int }

(* All bound arithmetic saturates at +-2^60 so that range inference stays
   total on programs whose abstract values blow up (the concrete runtime
   saturates at the fixpoint format long before this). *)
let saturation = 1 lsl 60

let clamp v = if v > saturation then saturation else if v < -saturation then -saturation else v

let sadd a b =
  let f = float_of_int a +. float_of_int b in
  if Float.abs f >= 1.15e18 then if f > 0.0 then saturation else -saturation
  else clamp (a + b)

let smul a b =
  if a = 0 || b = 0 then 0
  else
    let f = float_of_int a *. float_of_int b in
    if Float.abs f >= 1.15e18 then if f > 0.0 then saturation else -saturation
    else clamp (a * b)

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo = clamp lo; hi = clamp hi }

let point v = { lo = v; hi = v }
let bool_range = { lo = 0; hi = 1 }

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let add a b = { lo = sadd a.lo b.lo; hi = sadd a.hi b.hi }
let sub a b = { lo = sadd a.lo (-b.hi); hi = sadd a.hi (-b.lo) }
let neg a = { lo = -a.hi; hi = -a.lo }

let mul a b =
  let p1 = smul a.lo b.lo and p2 = smul a.lo b.hi in
  let p3 = smul a.hi b.lo and p4 = smul a.hi b.hi in
  { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }

let magnitude a = max (abs a.lo) (abs a.hi)

let div a b =
  if b.lo <= 0 && b.hi >= 0 then
    (* Divisor may be 0 or arbitrarily small: widen to the magnitude. *)
    let m = magnitude a in
    { lo = -m; hi = m }
  else
    let q1 = a.lo / b.lo and q2 = a.lo / b.hi in
    let q3 = a.hi / b.lo and q4 = a.hi / b.hi in
    { lo = min (min q1 q2) (min q3 q4); hi = max (max q1 q2) (max q3 q4) }

let clip a ~lo ~hi =
  if lo > hi then invalid_arg "Interval.clip: lo > hi";
  { lo = max a.lo lo |> min hi; hi = min a.hi hi |> max lo }

let scale a k =
  if k < 0 then invalid_arg "Interval.scale: negative factor";
  { lo = smul a.lo k; hi = smul a.hi k }

let width a = a.hi - a.lo
let contains a v = v >= a.lo && v <= a.hi
let subset a b = a.lo >= b.lo && a.hi <= b.hi

let bits_needed a =
  let m = magnitude a in
  let rec go bits v = if v = 0 then bits else go (bits + 1) (v lsr 1) in
  1 + go 0 m (* sign bit + magnitude bits *)

let equal a b = a.lo = b.lo && a.hi = b.hi
let pp fmt a = Format.fprintf fmt "[%d, %d]" a.lo a.hi
