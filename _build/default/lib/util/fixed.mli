(** Fixed-point arithmetic matching the paper's MPC number format.

    Arboretum's MPC programs use a fixpoint type with 30 bits of integer part
    and 16 bits of fractional precision (§6, "Precision"). Values are stored
    as a native [int] scaled by 2^16, giving exact addition and deterministic
    rounding for multiplication/division — the properties differential-privacy
    implementations need to avoid floating-point irregularities (Mironov 2012).

    The representable range is about ±2^46 in raw terms, far wider than the
    30.16 format; [in_range] checks the nominal 30.16 bounds so overflow in a
    simulated MPC can be detected the way a real circuit would wrap. *)

type t = private int
(** Scaled representation: the rational value is [t / 2^16]. *)

val frac_bits : int
(** Number of fractional bits (16). *)

val int_bits : int
(** Number of integer bits in the nominal format (30). *)

val one : t
val zero : t
val of_int : int -> t
val of_float : float -> t
(** Rounds to nearest representable value. *)

val to_float : t -> float
val to_int : t -> int
(** Truncates toward zero. *)

val of_raw : int -> t
val to_raw : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Rounds the 2^32-scaled product back to 2^16 scale (round half away
    from zero). *)

val div : t -> t -> t
(** Raises [Division_by_zero] on zero divisor. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val abs : t -> t

val in_range : t -> bool
(** True when the value fits the nominal 30.16 signed format. *)

val exp2 : t -> t
(** Base-2 exponential 2^x, computed with integer shifts plus a degree-4
    minimax polynomial on the fractional part — mirrors the base-2 design of
    Ilvento's exponential mechanism (§6). Saturates at the 30.16 range. *)

val log2 : t -> t
(** Base-2 logarithm for positive inputs; raises [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
