(** Human-readable cost units used across benches and reports. *)

val bytes_to_string : float -> string
(** "132.0 kB", "3.1 MB", "1.4 TB", ... (SI, powers of 1000 like the paper). *)

val seconds_to_string : float -> string
(** "7.1 s", "14.2 min", "9.8 h", "3.2 d". *)

val si : float -> string
(** Plain SI-scaled number: "1.3 G", "41.7 k". *)

val core_hours : float -> float
(** Seconds of single-core compute -> core-hours. *)

val mib : float
val gib : float
val mb : float
val gb : float
val tb : float
val minute : float
val hour : float
