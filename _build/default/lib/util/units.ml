let mib = 1024.0 *. 1024.0
let gib = mib *. 1024.0
let mb = 1.0e6
let gb = 1.0e9
let tb = 1.0e12
let minute = 60.0
let hour = 3600.0

let scaled value steps =
  let rec go v = function
    | [] -> Printf.sprintf "%.1f ?" v
    | [ (_, suffix) ] -> Printf.sprintf "%.1f %s" v suffix
    | (limit, suffix) :: rest ->
        if Float.abs v < limit then Printf.sprintf "%.1f %s" v suffix
        else go (v /. limit) rest
  in
  go value steps

let bytes_to_string b =
  scaled b
    [ (1000.0, "B"); (1000.0, "kB"); (1000.0, "MB"); (1000.0, "GB");
      (1000.0, "TB"); (0.0, "PB") ]

let seconds_to_string s =
  if Float.abs s < 1.0e-3 then Printf.sprintf "%.1f us" (s *. 1.0e6)
  else if Float.abs s < 1.0 then Printf.sprintf "%.1f ms" (s *. 1.0e3)
  else if Float.abs s < minute then Printf.sprintf "%.1f s" s
  else if Float.abs s < hour then Printf.sprintf "%.1f min" (s /. minute)
  else if Float.abs s < 24.0 *. hour then Printf.sprintf "%.1f h" (s /. hour)
  else Printf.sprintf "%.1f d" (s /. (24.0 *. hour))

let si v =
  scaled v
    [ (1000.0, ""); (1000.0, "k"); (1000.0, "M"); (1000.0, "G"); (0.0, "T") ]

let core_hours s = s /. hour
