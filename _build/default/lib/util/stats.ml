(* Lanczos approximation, g = 7, n = 9 — accurate to ~1e-13 for x > 0. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec lgamma x =
  if x <= 0.0 then invalid_arg "Stats.lgamma: non-positive argument"
  else if x < 0.5 then
    (* Reflection: lgamma(x) = ln(pi / sin(pi x)) - lgamma(1 - x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. lgamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t +. log !acc

let log_comb n k =
  if k < 0 || k > n then neg_infinity
  else if k = 0 || k = n then 0.0
  else
    lgamma (float_of_int (n + 1))
    -. lgamma (float_of_int (k + 1))
    -. lgamma (float_of_int (n - k + 1))

let log_binom_pmf ~n ~k ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.log_binom_pmf: p out of range";
  if k < 0 || k > n then neg_infinity
  else if p = 0.0 then if k = 0 then 0.0 else neg_infinity
  else if p = 1.0 then if k = n then 0.0 else neg_infinity
  else
    log_comb n k
    +. (float_of_int k *. log p)
    +. (float_of_int (n - k) *. log (1.0 -. p))

let log_sum_exp a b =
  if a = neg_infinity then b
  else if b = neg_infinity then a
  else
    let hi = max a b and lo = min a b in
    hi +. Float.log1p (exp (lo -. hi))

let log_binom_cdf ~n ~k ~p =
  if k < 0 then neg_infinity
  else if k >= n then 0.0
  else
    let acc = ref neg_infinity in
    for i = 0 to k do
      acc := log_sum_exp !acc (log_binom_pmf ~n ~k:i ~p)
    done;
    min !acc 0.0

let log_binom_tail ~n ~k ~p =
  if k <= 0 then 0.0
  else if k > n then neg_infinity
  else begin
    let acc = ref neg_infinity in
    for i = k to n do
      acc := log_sum_exp !acc (log_binom_pmf ~n ~k:i ~p)
    done;
    min !acc 0.0
  end

let log1mexp x =
  if x >= 0.0 then invalid_arg "Stats.log1mexp: argument must be negative";
  (* Mächler's recipe: two regimes for stability. *)
  if x > -.Float.log 2.0 then log (-.Float.expm1 x)
  else Float.log1p (-.exp x)

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    ss /. float_of_int (n - 1)

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
