(** Numerical helpers: log-domain probability arithmetic and binomial tails.

    Committee sizing (§5.1) needs the probability that a randomly sortitioned
    committee loses its honest majority, raised to the power of the committee
    count, compared against failure bounds as small as 1e-11. All of this is
    done in the log domain to avoid underflow. *)

val log_comb : int -> int -> float
(** [log_comb n k] = ln C(n, k), via lgamma. *)

val log_binom_pmf : n:int -> k:int -> p:float -> float
(** ln P\[Bin(n, p) = k\]. *)

val log_binom_cdf : n:int -> k:int -> p:float -> float
(** ln P\[Bin(n, p) <= k\]. [k < 0] gives [neg_infinity]. *)

val log_binom_tail : n:int -> k:int -> p:float -> float
(** ln P\[Bin(n, p) >= k\], computed directly in the log domain — accurate
    for tails far below double-precision cancellation limits, unlike
    [1 - cdf]. *)

val log_sum_exp : float -> float -> float
(** ln (e^a + e^b), stable. *)

val log1mexp : float -> float
(** ln (1 - e^x) for x < 0, stable near both ends. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance; 0 for arrays shorter than 2. *)

val percentile : float array -> float -> float
(** [percentile a p] for p in \[0, 100\], linear interpolation; the input
    need not be sorted. Raises on empty input. *)

val lgamma : float -> float
(** Log-gamma (Lanczos approximation) for positive arguments. *)
