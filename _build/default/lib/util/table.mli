(** Minimal ASCII table renderer for benchmark/report output. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out a table with a header rule. Rows shorter
    than the header are padded with empty cells; longer rows are truncated.
    [align] defaults to left for every column. *)

val print :
  ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)
