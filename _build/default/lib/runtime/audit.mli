(** Aggregator auditing via Merkle hash trees (§5.3–§5.4).

    The aggregator commits to the result of every intermediate step
    (excluding the final output) in a Merkle tree; each participant device
    then challenges random leaves and checks the returned contents plus
    inclusion proofs. The per-device challenge count is set so that the
    probability of an incorrect step escaping every auditor is below
    [p_max]. *)

type t
(** The aggregator-side audit log for one query run. *)

val create : unit -> t
val record_step : t -> string -> unit
(** Append one intermediate result (serialized). *)

val seal : t -> Arb_crypto.Sha256.digest
(** Build the tree and publish the root. No more steps may be recorded. *)

val steps : t -> int

val challenges_per_device : steps:int -> devices:int -> p_max:float -> int
(** Challenges each device must issue so that, with [devices] independent
    auditors, a single bad step goes unnoticed with probability < p_max. *)

val respond : t -> int -> string * Arb_crypto.Merkle.proof
(** Aggregator answers a challenge for leaf [i]. *)

val check :
  root:Arb_crypto.Sha256.digest -> leaf:string -> Arb_crypto.Merkle.proof -> bool

val tamper : t -> int -> unit
(** Test hook: corrupt a recorded step after the fact (a Byzantine
    aggregator rewriting history); [respond] will then produce content
    whose proof fails against the sealed root. *)
