type committee_kind = Keygen | Decryption | Operations

type t = {
  mutable device_upload_bytes : float;
  mutable device_encrypt_ops : int;
  mutable device_proof_constraints : int;
  mutable agg_bytes_sent : float;
  mutable agg_he_adds : int;
  mutable agg_he_muls : int;
  mutable agg_proofs_verified : int;
  mutable agg_proofs_rejected : int;
  mutable committee_costs : (committee_kind * Arb_mpc.Cost.t) list;
  mutable audits_performed : int;
  mutable audits_failed : int;
  mutable vignettes_executed : int;
  mutable committees_reassigned : int;
  mutable device_tree_adds : int;
  mutable sortition_checks : int;
}

let create () =
  {
    device_upload_bytes = 0.0;
    device_encrypt_ops = 0;
    device_proof_constraints = 0;
    agg_bytes_sent = 0.0;
    agg_he_adds = 0;
    agg_he_muls = 0;
    agg_proofs_verified = 0;
    agg_proofs_rejected = 0;
    committee_costs = [];
    audits_performed = 0;
    audits_failed = 0;
    vignettes_executed = 0;
    committees_reassigned = 0;
    device_tree_adds = 0;
    sortition_checks = 0;
  }

let record_committee t kind cost =
  t.committee_costs <- (kind, cost) :: t.committee_costs

let by_kind t kind = List.filter (fun (k, _) -> k = kind) t.committee_costs

let mpc_rounds t kind =
  List.fold_left (fun acc (_, c) -> acc + c.Arb_mpc.Cost.rounds) 0 (by_kind t kind)

let mpc_bytes t kind =
  List.fold_left
    (fun acc (_, c) -> acc + c.Arb_mpc.Cost.bytes_per_party)
    0 (by_kind t kind)

let committee_wall_clock t profile kind ~compute_per_round =
  let rounds = mpc_rounds t kind in
  Net.mpc_wall_clock profile ~rounds
    ~compute:(float_of_int rounds *. compute_per_round)

let pp fmt t =
  Format.fprintf fmt
    "device: %.0f B up, %d encs, %d constraints; agg: %.0f B, %d adds, %d muls, %d/%d proofs ok; %d committees traced; %d audits (%d failed); %d vignettes"
    t.device_upload_bytes t.device_encrypt_ops t.device_proof_constraints
    t.agg_bytes_sent t.agg_he_adds t.agg_he_muls
    (t.agg_proofs_verified - t.agg_proofs_rejected)
    t.agg_proofs_verified
    (List.length t.committee_costs)
    t.audits_performed t.audits_failed t.vignettes_executed
