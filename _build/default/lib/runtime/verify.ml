type finding = { check : string; ok : bool; detail : string }

let verify_report ~query ~plan ~budget_before ~n_devices (report : Exec.report) =
  let cert = report.Exec.certificate in
  let findings = ref [] in
  let add check ok detail = findings := { check; ok; detail } :: !findings in

  (* 1. Certificate signatures (Lamport, against the signed payload). *)
  add "certificate signatures"
    (Setup.verify_certificate cert)
    (Printf.sprintf "%d member signature(s)" (List.length cert.Setup.signatures));

  (* 2. The certificate commits to exactly the plan that was executed. *)
  let plan_digest =
    Arb_crypto.Sha256.digest (Format.asprintf "%a" Arb_planner.Plan.pp plan)
  in
  add "plan commitment"
    (String.equal plan_digest cert.Setup.plan_digest)
    "certificate.plan_digest = H(plan)";

  (* 3. Budget arithmetic: before - certified cost = left. *)
  let cert_report = Arb_lang.Certify.certify query.Arb_queries.Registry.program ~n:n_devices in
  (match Arb_dp.Budget.charge budget_before ~cost:cert_report.Arb_lang.Certify.cost with
  | Some expected ->
      let close a b = Float.abs (a -. b) < 1e-9 in
      add "budget arithmetic"
        (close expected.Arb_dp.Budget.epsilon report.Exec.budget_left.Arb_dp.Budget.epsilon
        && close expected.Arb_dp.Budget.delta report.Exec.budget_left.Arb_dp.Budget.delta)
        (Format.asprintf "left %a" Arb_dp.Budget.pp report.Exec.budget_left)
  | None ->
      add "budget arithmetic" false "the run should have been refused: cost exceeds the balance");

  (* 4. The query itself was certified differentially private. *)
  add "differential privacy certification" cert_report.Arb_lang.Certify.certified
    (Option.value cert_report.Arb_lang.Certify.reason ~default:"certified");

  (* 5. The aggregator's Merkle audit held. *)
  add "aggregator audit" report.Exec.audit_ok
    (Printf.sprintf "%d challenge(s), %d failed"
       report.Exec.trace.Trace.audits_performed
       report.Exec.trace.Trace.audits_failed);

  (* 6. Accounting sanity: every device's input was adjudicated. *)
  add "input accounting"
    (report.Exec.accepted_inputs + report.Exec.rejected_inputs = n_devices)
    (Printf.sprintf "%d accepted + %d rejected = %d devices"
       report.Exec.accepted_inputs report.Exec.rejected_inputs n_devices);
  List.rev !findings

let all_ok findings = List.for_all (fun f -> f.ok) findings

let pp_findings fmt findings =
  List.iter
    (fun f ->
      Format.fprintf fmt "[%s] %-36s %s@."
        (if f.ok then "ok" else "FAIL")
        f.check f.detail)
    findings
