type profile = { name : string; rtt : float; device_slowdown : float }

let lan = { name = "LAN"; rtt = 0.0005; device_slowdown = 1.0 }

(* Max pairwise RTT among Mumbai/New York/Paris/Sydney (Mumbai<->Sydney is
   the long pole at ~220 ms); honest-majority rounds wait for everyone. *)
let geo_distributed = { name = "geo"; rtt = 0.220; device_slowdown = 1.0 }

let with_slow_devices p ~factor =
  { p with name = p.name ^ "+slow"; device_slowdown = Float.max p.device_slowdown factor }

let mpc_wall_clock p ~rounds ~compute =
  (float_of_int rounds *. p.rtt) +. (compute *. p.device_slowdown)
