(** Independent post-hoc verification of a run.

    Anyone holding the public artifacts of a query — the chosen plan, the
    standing budget, and the execution report with its signed certificate —
    can re-check what the protocol promised without trusting the
    aggregator: the certificate's signatures, that the certificate commits
    to exactly this plan, that the budget arithmetic matches the query's
    certified privacy cost, and that the aggregator's audit held. *)

type finding = { check : string; ok : bool; detail : string }

val verify_report :
  query:Arb_queries.Registry.query ->
  plan:Arb_planner.Plan.t ->
  budget_before:Arb_dp.Budget.t ->
  n_devices:int ->
  Exec.report ->
  finding list
(** All checks, pass or fail. *)

val all_ok : finding list -> bool

val pp_findings : Format.formatter -> finding list -> unit
