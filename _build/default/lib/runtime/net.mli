(** Network model for the simulated deployment (§7.5).

    MPC vignettes are round-trip bound: their wall-clock time is
    [rounds * rtt + compute]. Profiles capture the settings of the paper's
    heterogeneity experiments: a LAN cluster, and committee members spread
    across Mumbai / New York / Paris / Sydney. *)

type profile = {
  name : string;
  rtt : float;  (** effective per-round latency between committee members, s *)
  device_slowdown : float;  (** compute multiplier for slow members; the MPC
      proceeds at the pace of its slowest device *)
}

val lan : profile
val geo_distributed : profile
(** Mumbai/New York/Paris/Sydney mix: the max pairwise RTT governs rounds. *)

val with_slow_devices : profile -> factor:float -> profile
(** E.g. Raspberry-Pi-class members joining a server committee. *)

val mpc_wall_clock : profile -> rounds:int -> compute:float -> float
