lib/runtime/net.mli:
