lib/runtime/trace.ml: Arb_mpc Format List Net
