lib/runtime/net.ml: Float
