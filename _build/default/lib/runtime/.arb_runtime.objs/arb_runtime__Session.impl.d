lib/runtime/session.ml: Arb_crypto Arb_dp Arb_lang Arb_queries Array Char Exec Format Int64 Option Printf Setup String
