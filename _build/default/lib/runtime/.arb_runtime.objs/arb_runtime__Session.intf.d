lib/runtime/session.mli: Arb_dp Arb_queries Exec
