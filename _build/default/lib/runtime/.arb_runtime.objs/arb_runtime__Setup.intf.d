lib/runtime/setup.mli: Arb_crypto Arb_dp Arb_mpc Arb_util
