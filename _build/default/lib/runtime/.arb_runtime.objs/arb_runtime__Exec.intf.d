lib/runtime/exec.mli: Arb_crypto Arb_dp Arb_lang Arb_planner Arb_queries Net Setup Trace
