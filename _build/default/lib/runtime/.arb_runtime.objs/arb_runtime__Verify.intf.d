lib/runtime/verify.mli: Arb_dp Arb_planner Arb_queries Exec Format
