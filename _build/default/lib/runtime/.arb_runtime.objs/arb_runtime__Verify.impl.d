lib/runtime/verify.ml: Arb_crypto Arb_dp Arb_lang Arb_planner Arb_queries Exec Float Format List Option Printf Setup String Trace
