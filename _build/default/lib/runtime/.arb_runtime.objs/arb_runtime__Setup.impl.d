lib/runtime/setup.ml: Arb_crypto Arb_dp Arb_mpc Arb_util Array Bytes Char Int64 List Marshal Printf String
