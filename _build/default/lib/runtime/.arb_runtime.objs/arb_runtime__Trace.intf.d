lib/runtime/trace.mli: Arb_mpc Format Net
