lib/runtime/audit.mli: Arb_crypto
