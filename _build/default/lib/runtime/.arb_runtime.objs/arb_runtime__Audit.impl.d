lib/runtime/audit.ml: Arb_crypto Array Float List
