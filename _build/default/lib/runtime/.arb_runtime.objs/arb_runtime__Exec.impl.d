lib/runtime/exec.ml: Arb_crypto Arb_dp Arb_lang Arb_mpc Arb_planner Arb_queries Arb_util Array Audit Float Format Hashtbl List Logs Net Option Printf Setup String Trace
