(** Execution setup: device registry, sortition, and the key-generation
    ceremony (§5.1–§5.2).

    The key-generation committee checks the privacy budget, generates the
    BGV keypair, hands the secret key to the decryption committee as Shamir
    shares via VSR, and signs a query authorization certificate containing
    the public key, query/plan digests, the remaining budget, the device
    registry's Merkle root, and the next sortition block. *)

type device = {
  sortition : Arb_crypto.Sortition.device;
  row : int array;  (** this device's database row *)
  byzantine : bool;  (** submits malformed input + forged proof *)
}

type certificate = {
  query_id : int;
  pk_digest : Arb_crypto.Sha256.digest;
  plan_digest : Arb_crypto.Sha256.digest;
  budget_left : Arb_dp.Budget.t;
  registry_root : Arb_crypto.Sha256.digest;
  next_block : string;
  signatures : (Arb_crypto.Sig_scheme.public * string) list;
      (** per keygen-committee member: (one-time public key, signature) *)
}

exception Budget_exhausted

val make_devices :
  Arb_util.Rng.t -> db:int array array -> byzantine_fraction:float -> device array

val run_sortition :
  devices:device array ->
  block:string ->
  query_id:int ->
  committees:int ->
  size:int ->
  Arb_crypto.Sortition.assignment

val certificate_payload : certificate -> string
(** The signed byte string (everything except the signatures). *)

val keygen_ceremony :
  Arb_util.Rng.t ->
  devices:device array ->
  committee:int array ->
  params:Arb_crypto.Bgv.params ->
  query_id:int ->
  plan_digest:Arb_crypto.Sha256.digest ->
  budget:Arb_dp.Budget.t ->
  cost:Arb_dp.Budget.t ->
  registry_root:Arb_crypto.Sha256.digest ->
  engine:Arb_mpc.Engine.t ->
  Arb_crypto.Bgv.secret_key * Arb_crypto.Bgv.public_key * certificate
(** Raises [Budget_exhausted] if [cost] exceeds [budget]. The returned
    secret key is the ceremony's output held only as shares in a real
    deployment; the simulation hands it to the decryption step directly
    (which re-shares it). MPC costs are charged to [engine]. *)

val verify_certificate : certificate -> bool
(** Every member signature checks out against the payload. *)
