type t = {
  mutable entries : string list; (* reversed until sealed *)
  mutable tree : Arb_crypto.Merkle.t option;
  mutable sealed_leaves : string array;
}

let create () = { entries = []; tree = None; sealed_leaves = [||] }

let record_step t s =
  if t.tree <> None then invalid_arg "Audit.record_step: already sealed";
  t.entries <- s :: t.entries

let seal t =
  let leaves = Array.of_list (List.rev t.entries) in
  let leaves = if Array.length leaves = 0 then [| "empty" |] else leaves in
  let tree = Arb_crypto.Merkle.build leaves in
  t.tree <- Some tree;
  t.sealed_leaves <- leaves;
  Arb_crypto.Merkle.root tree

let steps t =
  match t.tree with
  | Some _ -> Array.length t.sealed_leaves
  | None -> List.length t.entries

let challenges_per_device ~steps ~devices ~p_max =
  if steps <= 1 || devices <= 0 then 1
  else if p_max <= 0.0 || p_max >= 1.0 then invalid_arg "Audit.challenges_per_device"
  else
    (* Miss probability for one bad leaf: (1 - 1/steps)^(devices * k). *)
    let per_auditor_miss = 1.0 -. (1.0 /. float_of_int steps) in
    let k =
      Float.log p_max /. (float_of_int devices *. Float.log per_auditor_miss)
    in
    max 1 (int_of_float (Float.ceil k))

let respond t i =
  match t.tree with
  | None -> invalid_arg "Audit.respond: not sealed"
  | Some tree ->
      if i < 0 || i >= Array.length t.sealed_leaves then
        invalid_arg "Audit.respond: bad index";
      (t.sealed_leaves.(i), Arb_crypto.Merkle.prove tree i)

let check ~root ~leaf proof = Arb_crypto.Merkle.verify ~root ~leaf proof

let tamper t i =
  if i < 0 || i >= Array.length t.sealed_leaves then
    invalid_arg "Audit.tamper: bad index";
  t.sealed_leaves.(i) <- t.sealed_leaves.(i) ^ "|tampered"
