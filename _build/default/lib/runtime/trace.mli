(** Execution trace: who did how much work during a simulated run.

    Fed by the runtime; consumed by the benchmark harness (Figs. 6–8, 11)
    and by tests asserting the cost structure (e.g. key generation is the
    most expensive committee). *)

type committee_kind = Keygen | Decryption | Operations

type t = {
  mutable device_upload_bytes : float;  (** per device: ciphertexts + proof *)
  mutable device_encrypt_ops : int;
  mutable device_proof_constraints : int;
  mutable agg_bytes_sent : float;
  mutable agg_he_adds : int;
  mutable agg_he_muls : int;
  mutable agg_proofs_verified : int;
  mutable agg_proofs_rejected : int;
  mutable committee_costs : (committee_kind * Arb_mpc.Cost.t) list;
  mutable audits_performed : int;
  mutable audits_failed : int;
  mutable vignettes_executed : int;
  mutable committees_reassigned : int;
      (** committees that lost their quorum to churn and were replaced (§5.1) *)
  mutable device_tree_adds : int;
      (** homomorphic additions performed by participant devices when the
          plan outsources the sum (sum-tree instantiation, §4.3) *)
  mutable sortition_checks : int;
      (** device-side verifications that committee members were
          legitimately selected *)
}

val create : unit -> t
val record_committee : t -> committee_kind -> Arb_mpc.Cost.t -> unit

val mpc_rounds : t -> committee_kind -> int
val mpc_bytes : t -> committee_kind -> int
(** Per-member bytes summed over that kind's recorded committees. *)

val committee_wall_clock :
  t -> Net.profile -> committee_kind -> compute_per_round:float -> float
(** Wall-clock estimate for all of a kind's MPC work under a network
    profile. *)

val pp : Format.formatter -> t -> unit
