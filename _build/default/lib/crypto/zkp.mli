(** Zero-knowledge proofs of input well-formedness (simulated Groth16).

    Participants must prove that their encrypted upload is well-formed —
    e.g. a one-hot encoding of a single category, or values inside a clipped
    range (§5.3) — without revealing the value. The paper uses ZoKrates with
    the bellman backend and the G16 scheme, plus signatures to prevent
    replay of (malleable) proofs. We simulate the proof system: a proof is a
    binding commitment over (statement, witness commitment, prover identity,
    query nonce) that only an honest prover with a satisfying witness can
    produce, with G16's constant proof size and constant verification time
    charged by the cost model. Soundness in the simulation is perfect:
    [prove] refuses unsatisfying witnesses, and tampered proofs fail
    [verify]. *)

type statement =
  | One_hot of { length : int }
      (** exactly one entry is 1, the rest are 0 *)
  | Range of { lo : int; hi : int; count : int }
      (** [count] entries, each within \[lo, hi\] *)
  | Bits of { count : int }  (** [count] entries in \{0, 1\} *)
  | One_hot_binned of { bins : int; length : int }
      (** secrecy-of-the-sample upload: [bins * length] entries; exactly one
          bin holds a one-hot vector, all other bins are zero *)

type proof

val satisfies : statement -> int array -> bool
(** The relation being proven (cleartext check). *)

val prove :
  statement -> witness:int array -> prover:string -> nonce:string -> proof
(** Raises [Invalid_argument] if the witness does not satisfy the statement
    (an honest prover cannot produce an invalid proof; a malicious one is
    modeled by [forge]). *)

val forge : statement -> prover:string -> nonce:string -> proof
(** A proof produced without a satisfying witness; always fails [verify]
    (perfect soundness in the simulation model). *)

val verify : statement -> proof -> prover:string -> nonce:string -> bool
(** Checks the proof, its binding to the prover (anti-replay signature) and
    to the query nonce. *)

val proof_bytes : int
(** Wire size charged per proof: 192 bytes (3 G16 group elements plus
    framing). *)

val statement_constraints : statement -> int
(** Approximate R1CS constraint count — drives the prover-time cost model. *)
