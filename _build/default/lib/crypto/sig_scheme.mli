(** Deterministic hash-based signatures (Lamport one-time scheme).

    Sortition (§5.1) requires each device to sign the random block [B_i] with
    a {e deterministic} signature scheme so devices cannot grind for low
    hashes. The paper deploys RSA with deterministic padding; this container
    has no bignum library, so we substitute Lamport one-time signatures built
    on our SHA-256 — a real, verifiable scheme, deterministic by
    construction. Signatures are larger than RSA's (8 KiB vs 256 B), so the
    cost model charges [signature_bytes] = 256 to match the deployed scheme
    (documented substitution; DESIGN.md §1). Keys are one-time: the runtime
    derives a fresh per-query key from a device's long-term seed. *)

type secret
type public = string
(** Compact public key: SHA-256 digest of the 512 per-bit commitments. *)

type keypair = { secret : secret; public : public }

val keygen : seed:string -> keypair
(** Deterministic keypair from a seed; the runtime uses
    [seed = device_secret ^ query_tag] to get per-query one-time keys. *)

val sign : secret:secret -> string -> string
(** Deterministic signature (8 KiB + commitment material). *)

val verify : public:public -> msg:string -> signature:string -> bool

val signature_bytes : int
(** Wire size charged by the cost model (256, matching RSA-2048 as deployed
    in the paper's prototype). *)
