type params = {
  n : int;
  q_primes : int list;
  t : int;
  sigma : float;
}

(* NTT-friendly primes: 119*2^23+1 and 45*2^24+1. *)
let prime_a = 998244353
let prime_b = 754974721

let find_plaintext_modulus ~n ~min_t =
  let step = 2 * n in
  let rec go t = if t >= min_t && Field.is_prime t then t else go (t + step) in
  go (step + 1)

let validate p =
  if p.n <= 0 || p.n land (p.n - 1) <> 0 then
    invalid_arg "Bgv: n must be a power of two";
  List.iter
    (fun q ->
      if not (Field.is_prime q) then invalid_arg "Bgv: q prime expected";
      if (q - 1) mod (2 * p.n) <> 0 then invalid_arg "Bgv: q not NTT-friendly")
    p.q_primes;
  if p.q_primes = [] || List.length p.q_primes > 2 then
    invalid_arg "Bgv: 1 or 2 ciphertext primes supported";
  if not (Field.is_prime p.t) then invalid_arg "Bgv: t must be prime";
  if (p.t - 1) mod (2 * p.n) <> 0 then
    invalid_arg "Bgv: t must be 1 mod 2n for slot packing";
  if p.sigma <= 0.0 then invalid_arg "Bgv: sigma must be positive"

let ahe_params ?(n = 2048) ?(min_t = 12289) () =
  let p =
    { n; q_primes = [ prime_a ]; t = find_plaintext_modulus ~n ~min_t; sigma = 3.2 }
  in
  validate p;
  p

let fhe_params ?(n = 2048) ?(min_t = 12289) () =
  let p =
    {
      n;
      q_primes = [ prime_a; prime_b ];
      t = find_plaintext_modulus ~n ~min_t;
      sigma = 3.2;
    }
  in
  validate p;
  p

(* Cached per-params machinery: fields, NTT plans, CRT constants. *)
type ctx = {
  params : params;
  fields : Field.t array;
  plans : Ntt.plan array;
  pt_field : Field.t;
  pt_plan : Ntt.plan;
  q_total : int; (* product of primes; fits: both primes < 2^30.9 *)
  crt_inv : int; (* q1^-1 mod q2 when two primes *)
  log2_q : float;
}

let ctx_cache : (params, ctx) Hashtbl.t = Hashtbl.create 8

let ctx_of params =
  match Hashtbl.find_opt ctx_cache params with
  | Some c -> c
  | None ->
      validate params;
      let primes = Array.of_list params.q_primes in
      let fields = Array.map Field.create_unchecked primes in
      let plans = Array.map (fun q -> Ntt.plan ~n:params.n ~p:q) primes in
      let pt_field = Field.create_unchecked params.t in
      let pt_plan = Ntt.plan ~n:params.n ~p:params.t in
      let q_total = Array.fold_left ( * ) 1 primes in
      let crt_inv =
        if Array.length primes = 2 then Field.inv fields.(1) (primes.(0) mod primes.(1))
        else 0
      in
      let log2_q = Array.fold_left (fun a q -> a +. Float.log2 (float_of_int q)) 0.0 primes in
      let c = { params; fields; plans; pt_field; pt_plan; q_total; crt_inv; log2_q } in
      Hashtbl.replace ctx_cache params c;
      c

(* An element of R_q in RNS form: one coefficient array per prime. *)
type rq = int array array

type secret_key = { sk_ctx : ctx; s : rq }
type public_key = { pk_ctx : ctx; pk_a : rq; pk_b : rq }
type relin_key = { rk_ctx : ctx; rk : (rq * rq) array (* per digit: (b, a) *) }

type ciphertext = {
  ct_ctx : ctx;
  cs : rq array; (* c0, c1 [, c2] *)
  noise_bits : float; (* log2 estimate of |m + t*e - m| = |t*e| *)
}

let params_of_ct ct = ct.ct_ctx.params
let ciphertext_degree ct = Array.length ct.cs - 1
let slot_count p = p.n

let ciphertext_bytes p degree =
  (degree + 1) * List.length p.q_primes * p.n * 4

let public_key_bytes p = 2 * List.length p.q_primes * p.n * 4

let noise_budget_bits ct = ct.ct_ctx.log2_q -. 1.0 -. ct.noise_bits

(* --- small-integer polynomials, reduced consistently into every prime --- *)

let reduce_small ctx (small : int array) : rq =
  Array.map (fun fld -> Array.map (Field.of_int fld) small) ctx.fields

let sample_ternary ctx rng =
  Array.init ctx.params.n (fun _ -> Arb_util.Rng.int rng 3 - 1)

let sample_error ctx rng =
  Array.init ctx.params.n (fun _ ->
      int_of_float (Float.round (Arb_util.Rng.gaussian rng ~sigma:ctx.params.sigma)))

let rq_map2 ctx f (a : rq) (b : rq) : rq =
  Array.init (Array.length ctx.fields) (fun j ->
      let fld = ctx.fields.(j) in
      Array.init ctx.params.n (fun i -> f fld a.(j).(i) b.(j).(i)))

let rq_add ctx = rq_map2 ctx Field.add
let rq_sub ctx = rq_map2 ctx Field.sub
let rq_neg ctx (a : rq) : rq =
  Array.mapi (fun j aj -> Poly.neg ctx.fields.(j) aj) a

let rq_mul ctx (a : rq) (b : rq) : rq =
  Array.init (Array.length ctx.fields) (fun j -> Ntt.multiply ctx.plans.(j) a.(j) b.(j))

let rq_scale_int ctx k (a : rq) : rq =
  Array.mapi (fun j aj -> Poly.scale ctx.fields.(j) k aj) a

let rq_uniform ctx rng : rq =
  Array.map (fun fld -> Poly.random_uniform fld rng ctx.params.n) ctx.fields

let rq_zero ctx : rq =
  Array.map (fun _ -> Array.make ctx.params.n 0) ctx.fields

(* --- plaintext slot encoding: NTT over Z_t --- *)

let encode ctx (slots : int array) : int array =
  if Array.length slots > ctx.params.n then invalid_arg "Bgv.encode: too many slots";
  let v =
    Array.init ctx.params.n (fun i ->
        if i < Array.length slots then Field.of_int ctx.pt_field slots.(i) else 0)
  in
  Ntt.inverse ctx.pt_plan v;
  v

let decode ctx (coeffs : int array) : int array =
  let v = Array.copy coeffs in
  Ntt.forward ctx.pt_plan v;
  v

(* --- noise bookkeeping (log2 of the |t*e| deviation) --- *)

let log2f x = Float.log2 (max x 1.0)

let fresh_noise_bits ctx =
  let n = float_of_int ctx.params.n and t = float_of_int ctx.params.t in
  (* e1 + e2*s - e*u: two small-by-small products, probabilistic bound. *)
  log2f (t *. ctx.params.sigma *. ((2.0 *. sqrt n) +. 3.0)) +. 1.0

(* --- key generation --- *)

let keygen params rng =
  let ctx = ctx_of params in
  let s_small = sample_ternary ctx rng in
  let s = reduce_small ctx s_small in
  let e = reduce_small ctx (sample_error ctx rng) in
  let a = rq_uniform ctx rng in
  (* b = -(a*s) - t*e *)
  let b = rq_sub ctx (rq_neg ctx (rq_mul ctx a s)) (rq_scale_int ctx params.t e) in
  ({ sk_ctx = ctx; s }, { pk_ctx = ctx; pk_a = a; pk_b = b })

let encrypt pk rng slots =
  let ctx = pk.pk_ctx in
  let m = reduce_small ctx (encode ctx slots) in
  let u = reduce_small ctx (sample_ternary ctx rng) in
  let e1 = reduce_small ctx (sample_error ctx rng) in
  let e2 = reduce_small ctx (sample_error ctx rng) in
  let t = ctx.params.t in
  let c0 =
    rq_add ctx (rq_add ctx (rq_mul ctx pk.pk_b u) (rq_scale_int ctx t e1)) m
  in
  let c1 = rq_add ctx (rq_mul ctx pk.pk_a u) (rq_scale_int ctx t e2) in
  { ct_ctx = ctx; cs = [| c0; c1 |]; noise_bits = fresh_noise_bits ctx }

let encrypt_with_sk sk rng slots =
  let ctx = sk.sk_ctx in
  let m = reduce_small ctx (encode ctx slots) in
  let e = reduce_small ctx (sample_error ctx rng) in
  let a = rq_uniform ctx rng in
  let t = ctx.params.t in
  (* c0 = -(a*s) - t*e + m ; c1 = a  -> c0 + c1*s = m - t*e *)
  let c0 =
    rq_add ctx
      (rq_sub ctx (rq_neg ctx (rq_mul ctx a sk.s)) (rq_scale_int ctx t e))
      m
  in
  {
    ct_ctx = ctx;
    cs = [| c0; a |];
    noise_bits = log2f (float_of_int t *. ctx.params.sigma *. 3.0) +. 1.0;
  }

(* --- CRT lift of a full RNS value to a centered integer, then mod t --- *)

let lift_centered_mod_t ctx (residues : int array) : int =
  let q = ctx.q_total in
  let x =
    match Array.length ctx.fields with
    | 1 -> residues.(0)
    | 2 ->
        let q1 = (ctx.fields.(0)).Field.p in
        let f2 = ctx.fields.(1) in
        let d = Field.sub f2 residues.(1) (residues.(0) mod f2.Field.p) in
        residues.(0) + (q1 * Field.mul f2 d ctx.crt_inv)
    | _ -> assert false
  in
  let centered = if x > q / 2 then x - q else x in
  let t = ctx.params.t in
  ((centered mod t) + t) mod t

let decrypt sk ct =
  let ctx = sk.sk_ctx in
  let nprimes = Array.length ctx.fields in
  (* phase = c0 + c1*s + c2*s^2, per prime *)
  let phase =
    Array.init nprimes (fun j ->
        let fld = ctx.fields.(j) and plan = ctx.plans.(j) in
        let acc = ref (Array.copy ct.cs.(0).(j)) in
        let spow = ref (Array.copy sk.s.(j)) in
        for d = 1 to Array.length ct.cs - 1 do
          let term = Ntt.multiply plan ct.cs.(d).(j) !spow in
          acc := Poly.add fld !acc term;
          if d < Array.length ct.cs - 1 then
            spow := Ntt.multiply plan !spow sk.s.(j)
        done;
        !acc)
  in
  let coeffs =
    Array.init ctx.params.n (fun i ->
        lift_centered_mod_t ctx (Array.init nprimes (fun j -> phase.(j).(i))))
  in
  decode ctx coeffs

(* --- homomorphic operations --- *)

let check_same a b =
  if a.ct_ctx != b.ct_ctx then invalid_arg "Bgv: mismatched parameters"

(* Noise of a sum is the sum of noises: combine the log2 estimates with a
   log-sum-exp so that long chains of additions are tracked accurately. *)
let add_noise_bits a b =
  let ln2 = Float.log 2.0 in
  Arb_util.Stats.log_sum_exp (a *. ln2) (b *. ln2) /. ln2

let add a b =
  check_same a b;
  let ctx = a.ct_ctx in
  let deg = max (Array.length a.cs) (Array.length b.cs) in
  let get ct i = if i < Array.length ct.cs then ct.cs.(i) else rq_zero ctx in
  {
    ct_ctx = ctx;
    cs = Array.init deg (fun i -> rq_add ctx (get a i) (get b i));
    noise_bits = add_noise_bits a.noise_bits b.noise_bits;
  }

let sub a b =
  check_same a b;
  let ctx = a.ct_ctx in
  let deg = max (Array.length a.cs) (Array.length b.cs) in
  let get ct i = if i < Array.length ct.cs then ct.cs.(i) else rq_zero ctx in
  {
    ct_ctx = ctx;
    cs = Array.init deg (fun i -> rq_sub ctx (get a i) (get b i));
    noise_bits = add_noise_bits a.noise_bits b.noise_bits;
  }

let add_plain ct slots =
  let ctx = ct.ct_ctx in
  let m = reduce_small ctx (encode ctx slots) in
  let cs = Array.copy ct.cs in
  cs.(0) <- rq_add ctx cs.(0) m;
  { ct with cs }

let mul_plain ct slots =
  let ctx = ct.ct_ctx in
  let m = reduce_small ctx (encode ctx slots) in
  let t = float_of_int ctx.params.t and n = float_of_int ctx.params.n in
  {
    ct_ctx = ctx;
    cs = Array.map (fun c -> rq_mul ctx c m) ct.cs;
    noise_bits = ct.noise_bits +. log2f t +. (0.5 *. log2f n) +. 1.0;
  }

let mul a b =
  check_same a b;
  if ciphertext_degree a <> 1 || ciphertext_degree b <> 1 then
    invalid_arg "Bgv.mul: inputs must be degree-1 ciphertexts";
  let ctx = a.ct_ctx in
  let c0 = rq_mul ctx a.cs.(0) b.cs.(0) in
  let c1 = rq_add ctx (rq_mul ctx a.cs.(0) b.cs.(1)) (rq_mul ctx a.cs.(1) b.cs.(0)) in
  let c2 = rq_mul ctx a.cs.(1) b.cs.(1) in
  let t = log2f (float_of_int ctx.params.t) in
  let half_n = 0.5 *. log2f (float_of_int ctx.params.n) in
  let nb =
    List.fold_left max neg_infinity
      [
        a.noise_bits +. b.noise_bits +. half_n -. t;
        a.noise_bits +. t +. half_n;
        b.noise_bits +. t +. half_n;
      ]
    +. 2.0
  in
  { ct_ctx = ctx; cs = [| c0; c1; c2 |]; noise_bits = nb }

(* --- relinearization: RNS-gadget key switching --- *)

let relin_keygen params rng sk =
  let ctx = ctx_of params in
  let nprimes = Array.length ctx.fields in
  let s2 = rq_mul ctx sk.s sk.s in
  let rk =
    Array.init nprimes (fun j ->
        let a = rq_uniform ctx rng in
        let e = reduce_small ctx (sample_error ctx rng) in
        (* b = -(a*s) - t*e + qtilde_j * s^2, where qtilde_j is the CRT basis
           element: 1 mod q_j, 0 mod the others. In RNS that means adding
           s^2's residue only at prime j. *)
        let base = rq_sub ctx (rq_neg ctx (rq_mul ctx a sk.s)) (rq_scale_int ctx params.t e) in
        let b =
          Array.init nprimes (fun k ->
              if k = j then Poly.add ctx.fields.(k) base.(k) s2.(k)
              else Array.copy base.(k))
        in
        (b, a))
  in
  { rk_ctx = ctx; rk }

let relinearize rk ct =
  if ciphertext_degree ct <> 2 then invalid_arg "Bgv.relinearize: degree-2 expected";
  let ctx = ct.ct_ctx in
  if rk.rk_ctx != ctx then invalid_arg "Bgv.relinearize: mismatched parameters";
  let nprimes = Array.length ctx.fields in
  let c0 = ref ct.cs.(0) and c1 = ref ct.cs.(1) in
  for j = 0 to nprimes - 1 do
    (* digit j: the residue of c2 at prime j, promoted into every prime. *)
    let digit : rq =
      Array.init nprimes (fun k ->
          Array.map (fun c -> Field.of_int ctx.fields.(k) c) ct.cs.(2).(j))
    in
    let b, a = rk.rk.(j) in
    c0 := rq_add ctx !c0 (rq_mul ctx digit b);
    c1 := rq_add ctx !c1 (rq_mul ctx digit a)
  done;
  let relin_noise =
    (* sum over digits of (digit * t * e): digit coeffs < q_j ~ 2^30. *)
    30.0 +. log2f (float_of_int ctx.params.t)
    +. log2f (ctx.params.sigma *. float_of_int ctx.params.n)
    +. log2f (float_of_int nprimes)
  in
  {
    ct_ctx = ctx;
    cs = [| !c0; !c1 |];
    noise_bits = add_noise_bits ct.noise_bits relin_noise;
  }

(* --- threshold decryption --- *)

let share_secret_key params rng sk ~parties =
  let ctx = ctx_of params in
  if parties < 1 then invalid_arg "Bgv.share_secret_key";
  let shares =
    Array.init (parties - 1) (fun _ -> rq_uniform ctx rng)
  in
  let sum =
    Array.fold_left (fun acc sh -> rq_add ctx acc sh) (rq_zero ctx) shares
  in
  let last = rq_sub ctx sk.s sum in
  Array.append shares [| last |]
  |> Array.map (fun s -> { sk_ctx = ctx; s })

let partial_decrypt params rng share ct =
  let ctx = ctx_of params in
  if ciphertext_degree ct <> 1 then
    invalid_arg "Bgv.partial_decrypt: degree-1 ciphertext required";
  (* d_i = c1 * s_i + t * e_smudge, per prime, CRT-consistent noise. *)
  let smudge = reduce_small ctx (sample_error ctx rng) in
  let d = rq_add ctx (rq_mul ctx ct.cs.(1) share.s) (rq_scale_int ctx params.t smudge) in
  Array.to_list d

let combine_partials params ct partials =
  let ctx = ctx_of params in
  let nprimes = Array.length ctx.fields in
  let acc = Array.init nprimes (fun j -> Array.copy ct.cs.(0).(j)) in
  List.iter
    (fun partial ->
      List.iteri
        (fun j dj -> acc.(j) <- Poly.add ctx.fields.(j) acc.(j) dj)
        partial)
    partials;
  let coeffs =
    Array.init ctx.params.n (fun i ->
        lift_centered_mod_t ctx (Array.init nprimes (fun j -> acc.(j).(i))))
  in
  decode ctx coeffs

(* --- Galois automorphisms and slot rotations --- *)

(* a(x) -> a(x^k) in Z_p[x]/(x^n+1): coefficient i lands at i*k mod 2n,
   negated when the exponent wraps past n. *)
let galois_poly fld n k (a : int array) =
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let e = i * k mod (2 * n) in
    if e < n then out.(e) <- Field.add fld out.(e) a.(i)
    else out.(e - n) <- Field.sub fld out.(e - n) a.(i)
  done;
  out

let rq_galois ctx k (a : rq) : rq =
  Array.mapi (fun j aj -> galois_poly ctx.fields.(j) ctx.params.n k aj) a

(* The generator of the slot-rotation subgroup for power-of-two
   cyclotomics. *)
let rotation_generator _params = 3

type galois_key = { gk_ctx : ctx; gk_k : int; gk : (rq * rq) array }

let galois_keygen params rng sk ~k =
  if k land 1 = 0 then invalid_arg "Bgv.galois_keygen: k must be odd";
  let ctx = ctx_of params in
  let sk_gal = rq_galois ctx k sk.s in
  let nprimes = Array.length ctx.fields in
  let gk =
    Array.init nprimes (fun j ->
        let a = rq_uniform ctx rng in
        let e = reduce_small ctx (sample_error ctx rng) in
        (* b = -(a*s) - t*e + qtilde_j * s(x^k) (cf. relin_keygen). *)
        let base =
          rq_sub ctx (rq_neg ctx (rq_mul ctx a sk.s)) (rq_scale_int ctx params.t e)
        in
        let b =
          Array.init nprimes (fun l ->
              if l = j then Poly.add ctx.fields.(l) base.(l) sk_gal.(l)
              else Array.copy base.(l))
        in
        (b, a))
  in
  { gk_ctx = ctx; gk_k = k; gk }

let apply_galois gkey ct =
  let ctx = ct.ct_ctx in
  if gkey.gk_ctx != ctx then invalid_arg "Bgv.apply_galois: mismatched parameters";
  if ciphertext_degree ct <> 1 then
    invalid_arg "Bgv.apply_galois: degree-1 ciphertext required";
  let k = gkey.gk_k in
  let c0g = rq_galois ctx k ct.cs.(0) in
  let c1g = rq_galois ctx k ct.cs.(1) in
  (* Key-switch c1g from s(x^k) back to s with the RNS gadget. *)
  let nprimes = Array.length ctx.fields in
  let c0 = ref c0g and c1 = ref (rq_zero ctx) in
  for j = 0 to nprimes - 1 do
    let digit : rq =
      Array.init nprimes (fun l ->
          Array.map (fun c -> Field.of_int ctx.fields.(l) c) c1g.(j))
    in
    let b, a = gkey.gk.(j) in
    c0 := rq_add ctx !c0 (rq_mul ctx digit b);
    c1 := rq_add ctx !c1 (rq_mul ctx digit a)
  done;
  let switch_noise =
    30.0 +. log2f (float_of_int ctx.params.t)
    +. log2f (ctx.params.sigma *. float_of_int ctx.params.n)
    +. log2f (float_of_int nprimes)
  in
  {
    ct_ctx = ctx;
    cs = [| !c0; !c1 |];
    noise_bits = add_noise_bits ct.noise_bits switch_noise;
  }

(* The slot permutation a Galois map induces, derived empirically from the
   plaintext encoding (cached per (params, k)). slot i of the input appears
   at position perm.(i) of the output. *)
let slot_perm_cache : (params * int, int array) Hashtbl.t = Hashtbl.create 8

let slot_rotation_of_galois params ~k =
  match Hashtbl.find_opt slot_perm_cache (params, k) with
  | Some p -> p
  | None ->
      let ctx = ctx_of params in
      let n = params.n in
      let perm = Array.make n (-1) in
      (* sigma_k on an encoded basis vector moves exactly one slot; track
         all n at once by encoding slot i with value i+1. *)
      let slots = Array.init n (fun i -> (i + 1) mod params.t) in
      let m = encode ctx slots in
      let m' = galois_poly ctx.pt_field n k m in
      let slots' = decode ctx m' in
      Array.iteri
        (fun pos v ->
          let v = ((v mod params.t) + params.t) mod params.t in
          if v >= 1 && v <= n then perm.(v - 1) <- pos)
        slots';
      Hashtbl.replace slot_perm_cache (params, k) perm;
      perm

(* --- serialization --- *)

(* Wire format: [degree:u8][n:u32][primes:u8][t:u32] then, per component
   polynomial and per RNS prime, n little-endian u32 coefficients. The
   size matches [ciphertext_bytes] up to the 14-byte header. *)

let header_bytes = 14

let serialize_ciphertext ct =
  let ctx = ct.ct_ctx in
  let n = ctx.params.n in
  let nprimes = Array.length ctx.fields in
  let degree = ciphertext_degree ct in
  let buf = Buffer.create (header_bytes + ((degree + 1) * nprimes * n * 4)) in
  Buffer.add_uint8 buf degree;
  Buffer.add_int32_le buf (Int32.of_int n);
  Buffer.add_uint8 buf nprimes;
  Buffer.add_int32_le buf (Int32.of_int ctx.params.t);
  (* Noise estimate travels too (it is bookkeeping, not secret). *)
  let noise_q = int_of_float (ct.noise_bits *. 256.0) in
  Buffer.add_int32_le buf (Int32.of_int noise_q);
  Array.iter
    (fun (comp : rq) ->
      Array.iter
        (fun poly -> Array.iter (fun c -> Buffer.add_int32_le buf (Int32.of_int c)) poly)
        comp)
    ct.cs;
  Buffer.contents buf

let deserialize_ciphertext params s =
  let ctx = ctx_of params in
  let pos = ref 0 in
  let u8 () =
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u32 () =
    let v = Int32.to_int (String.get_int32_le s !pos) in
    pos := !pos + 4;
    v
  in
  (try
     let degree = u8 () in
     let n = u32 () in
     let nprimes = u8 () in
     let t = u32 () in
     if n <> params.n || nprimes <> Array.length ctx.fields || t <> params.t then
       invalid_arg "Bgv.deserialize_ciphertext: parameter mismatch";
     let noise_q = u32 () in
     let expected = header_bytes + ((degree + 1) * nprimes * n * 4) in
     if String.length s <> expected then
       invalid_arg "Bgv.deserialize_ciphertext: truncated";
     let cs =
       Array.init (degree + 1) (fun _ ->
           Array.init nprimes (fun _ -> Array.init n (fun _ -> u32 ())))
     in
     (* Canonicality: every coefficient reduced mod its prime. *)
     Array.iter
       (fun comp ->
         Array.iteri
           (fun j poly ->
             Array.iter
               (fun c ->
                 if c < 0 || c >= ctx.fields.(j).Field.p then
                   invalid_arg "Bgv.deserialize_ciphertext: non-canonical coefficient")
               poly)
           comp)
       cs;
     { ct_ctx = ctx; cs; noise_bits = float_of_int noise_q /. 256.0 }
   with Invalid_argument m when m = "index out of bounds" ->
     invalid_arg "Bgv.deserialize_ciphertext: truncated")

let serialized_bytes params degree = header_bytes + ciphertext_bytes params degree
