type subshare = { from_idx : int; to_idx : int; value : int; salt : string }
type commitment = Sha256.digest

let commit sub =
  Sha256.digest
    (Printf.sprintf "vsr|%d|%d|%d|%s" sub.from_idx sub.to_idx sub.value sub.salt)

let redistribute fld rng (sh : Shamir.share) ~new_threshold ~new_parties =
  let salt () =
    let b = Bytes.create 16 in
    Bytes.set_int64_le b 0 (Arb_util.Rng.next_int64 rng);
    Bytes.set_int64_le b 8 (Arb_util.Rng.next_int64 rng);
    Bytes.to_string b
  in
  let subs =
    Shamir.share fld rng ~secret:sh.value ~threshold:new_threshold
      ~parties:new_parties
    |> Array.map (fun (s : Shamir.share) ->
           { from_idx = sh.idx; to_idx = s.idx; value = s.value; salt = salt () })
  in
  (subs, Array.map commit subs)

let verify_subshare sub commitment = String.equal (commit sub) commitment

let combine fld ~sender_idxs pairs ~to_idx =
  let coeffs = Shamir.lagrange_at_zero fld sender_idxs in
  let value =
    List.fold_left
      (fun acc (from_idx, v) ->
        match List.assoc_opt from_idx coeffs with
        | None -> invalid_arg "Vsr.combine: unexpected sender index"
        | Some c -> Field.add fld acc (Field.mul fld c v))
      0 pairs
  in
  { Shamir.idx = to_idx; value }
