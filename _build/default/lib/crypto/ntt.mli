(** Negacyclic number-theoretic transform over Z_p\[X\]/(X^n + 1).

    The workhorse of the BGV substrate: multiplication in the negacyclic
    ring is pointwise multiplication in the NTT domain. We use the
    Longa–Naehrig formulation: forward transform with Cooley–Tukey
    butterflies over bit-reversed powers of psi (a primitive 2n-th root of
    unity), inverse with Gentleman–Sande butterflies — no separate
    bit-reversal pass or power-of-X pre/post scaling needed. *)

type plan
(** Precomputed tables for a fixed (n, p). *)

val plan : n:int -> p:int -> plan
(** [plan ~n ~p] requires [n] a power of two and [p] prime with
    [2n | p - 1]. Raises [Invalid_argument] otherwise. *)

val n : plan -> int
val p : plan -> int

val forward : plan -> int array -> unit
(** In-place forward negacyclic NTT. Array length must equal [n]. *)

val inverse : plan -> int array -> unit
(** In-place inverse, including the 1/n scaling. *)

val multiply : plan -> int array -> int array -> int array
(** Negacyclic product of two coefficient-domain polynomials (fresh array;
    inputs are not modified). *)

val pointwise : plan -> int array -> int array -> int array
(** Slot-wise product of two NTT-domain vectors. *)
