(** SHA-256, implemented from scratch (FIPS 180-4).

    Used for Merkle trees, sortition hashes, deterministic signatures and
    commitment schemes throughout the runtime. The implementation is pure
    OCaml over [Bytes] and [Int32] and is validated against the FIPS test
    vectors in the test suite. *)

type digest = string
(** 32-byte raw digest. *)

val digest_length : int
(** 32. *)

val digest : string -> digest
(** Hash of a full string. *)

val digest_bytes : bytes -> digest

val hmac : key:string -> string -> digest
(** HMAC-SHA256 (RFC 2104); used as a keyed PRF for deterministic
    device signatures in sortition. *)

val to_hex : digest -> string
(** Lowercase hex rendering (64 chars). *)

val compare_le : digest -> digest -> int
(** Lexicographic comparison of raw digests — the sortition order. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val finalize : ctx -> digest
(** [finalize] may be called once; the context must not be reused after. *)
