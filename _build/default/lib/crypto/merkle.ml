type t = {
  levels : Sha256.digest array array;
  (* levels.(0) = leaf hashes; last level has length 1 (the root). *)
  nleaves : int;
}

type proof = { index : int; path : Sha256.digest list }

let leaf_hash payload = Sha256.digest ("\x00" ^ payload)
let node_hash l r = Sha256.digest ("\x01" ^ l ^ r)

let build leaves =
  let n = Array.length leaves in
  if n = 0 then invalid_arg "Merkle.build: no leaves";
  let level0 = Array.map leaf_hash leaves in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else
      let len = Array.length level in
      let next =
        Array.init ((len + 1) / 2) (fun i ->
            let l = level.(2 * i) in
            (* An odd node is paired with itself, as in Certificate
               Transparency-style trees. *)
            let r = if (2 * i) + 1 < len then level.((2 * i) + 1) else l in
            node_hash l r)
      in
      up (level :: acc) next
  in
  { levels = Array.of_list (up [] level0); nleaves = n }

let root t = t.levels.(Array.length t.levels - 1).(0)
let size t = t.nleaves

let prove t i =
  if i < 0 || i >= t.nleaves then invalid_arg "Merkle.prove: index out of range";
  let path = ref [] in
  let idx = ref i in
  for lvl = 0 to Array.length t.levels - 2 do
    let level = t.levels.(lvl) in
    let sibling =
      let j = !idx lxor 1 in
      if j < Array.length level then level.(j) else level.(!idx)
    in
    path := sibling :: !path;
    idx := !idx / 2
  done;
  { index = i; path = List.rev !path }

let verify ~root ~leaf proof =
  let h = ref (leaf_hash leaf) in
  let idx = ref proof.index in
  List.iter
    (fun sibling ->
      h := if !idx land 1 = 0 then node_hash !h sibling else node_hash sibling !h;
      idx := !idx / 2)
    proof.path;
  String.equal !h root
