(** Verifiable Secret Redistribution between committees (§5.2, §5.4).

    Moves a Shamir-shared secret from committee A (threshold tA) to
    committee B (threshold tB) without ever reconstructing it: each member
    of A re-shares its own share to B with a fresh polynomial, publishes a
    commitment to every sub-share, and each member of B combines the
    sub-shares it receives with the Lagrange coefficients of A's indices.
    As long as both committees have an honest majority, B reconstructs the
    original secret, and no coalition of minorities across the two
    committees learns it.

    Commitments are SHA-256 based (salted hashes of sub-shares) rather than
    the discrete-log commitments of Gupta–Gopinath Extended VSR — a
    documented substitution (DESIGN.md §1): binding is what the audit needs,
    and hashes provide it in the simulation. *)

type subshare = {
  from_idx : int;  (** index of the sender in committee A *)
  to_idx : int;  (** index of the receiver in committee B *)
  value : int;
  salt : string;
}

type commitment = Sha256.digest

val redistribute :
  Field.t ->
  Arb_util.Rng.t ->
  Shamir.share ->
  new_threshold:int ->
  new_parties:int ->
  subshare array * commitment array
(** One member of A re-shares its share to the members of B; the returned
    commitments (one per sub-share) are published via the aggregator. *)

val verify_subshare : subshare -> commitment -> bool
(** A receiver checks the sub-share it got against the published
    commitment. *)

val combine :
  Field.t -> sender_idxs:int list -> (int * int) list -> to_idx:int -> Shamir.share
(** [combine f ~sender_idxs pairs ~to_idx]: a member of B combines the
    verified sub-share values it received — [pairs] maps sender index to
    sub-share value — into its share of the original secret. Requires
    sub-shares from at least tA+1 distinct senders. *)
