(** Committee selection by cryptographic sortition (§5.1).

    Generalizes Honeycrisp's mechanism: for query [i] with public random
    block [B_i], every registered device deterministically signs
    [(B_i, i, 0)] and hashes the signature; the [c*m] devices with the
    lowest hashes form the committees, the device with the x-th lowest hash
    joining committee [x / m]. Determinism prevents grinding; the secret
    block prevents precomputation; each device serves on at most one
    committee. The registered-device set is committed in a Merkle tree that
    travels inside the query authorization certificate, blocking the
    "computational grinding" attack described in §5.2. *)

type device = { id : int; seed : string }
(** A registered device; [seed] is its long-term signing secret. *)

type assignment = {
  committees : int array array;  (** committee -> member device ids *)
  registry_root : Sha256.digest;  (** Merkle root over the device set *)
}

val ticket : device -> block:string -> query_id:int -> Sha256.digest
(** The device's sortition hash for this query (hash of its deterministic
    signature on (block, query id, 0)). *)

val select :
  devices:device array -> block:string -> query_id:int -> committees:int ->
  size:int -> assignment
(** Pick [committees] committees of [size] members each. Raises
    [Invalid_argument] if there are fewer than [committees * size]
    devices. *)

val verify_member :
  devices:device array -> block:string -> query_id:int -> committees:int ->
  size:int -> device:device -> int option
(** Recompute (as any third party can) which committee a given device
    belongs to; [None] if it was not selected. Agrees with [select]. *)

val reassign_failed : assignment -> failed:int -> assignment
(** Committee [failed] lost too many members: move its tasks to committee
    [(failed + 1) mod c] by merging membership (§5.1). *)
