type share = { idx : int; value : int }

let eval_poly fld coeffs x =
  (* Horner, coeffs.(0) is the secret. *)
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := Field.add fld (Field.mul fld !acc x) coeffs.(i)
  done;
  !acc

let share fld rng ~secret ~threshold ~parties =
  if threshold < 0 || threshold >= parties then
    invalid_arg "Shamir.share: need 0 <= threshold < parties";
  if parties >= fld.Field.p then invalid_arg "Shamir.share: too many parties";
  let coeffs =
    Array.init (threshold + 1) (fun i ->
        if i = 0 then Field.of_int fld secret else Field.random fld rng)
  in
  Array.init parties (fun i ->
      let x = i + 1 in
      { idx = x; value = eval_poly fld coeffs x })

let lagrange_at_zero fld idxs =
  List.map
    (fun i ->
      let num = ref 1 and den = ref 1 in
      List.iter
        (fun j ->
          if j <> i then begin
            num := Field.mul fld !num (Field.of_int fld (-j));
            den := Field.mul fld !den (Field.of_int fld (i - j))
          end)
        idxs;
      (i, Field.div fld !num !den))
    idxs

let reconstruct fld shares =
  let idxs = List.map (fun s -> s.idx) shares in
  let distinct = List.sort_uniq compare idxs in
  if List.length distinct <> List.length idxs then
    invalid_arg "Shamir.reconstruct: duplicate share indices";
  let coeffs = lagrange_at_zero fld idxs in
  List.fold_left
    (fun acc s ->
      let c = List.assoc s.idx coeffs in
      Field.add fld acc (Field.mul fld c s.value))
    0 shares

let add a b =
  if a.idx <> b.idx then invalid_arg "Shamir.add: index mismatch";
  { a with value = a.value + b.value }

let add_in fld a b =
  if a.idx <> b.idx then invalid_arg "Shamir.add_in: index mismatch";
  { a with value = Field.add fld a.value b.value }

let scale_in fld k s = { s with value = Field.mul fld (Field.of_int fld k) s.value }

(* --- Reed-Solomon decoding (Berlekamp-Welch): robust reconstruction --- *)

(* Gaussian elimination over the field; returns one solution of M x = rhs
   (the system here is always consistent when decoding succeeds). *)
let solve_linear fld (m : int array array) (rhs : int array) : int array option =
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  let a = Array.map Array.copy m in
  let b = Array.copy rhs in
  let pivot_col_of_row = Array.make rows (-1) in
  let r = ref 0 in
  for c = 0 to cols - 1 do
    if !r < rows then begin
      (* find pivot *)
      let p = ref (-1) in
      for i = !r to rows - 1 do
        if !p = -1 && a.(i).(c) <> 0 then p := i
      done;
      if !p >= 0 then begin
        let tmp = a.(!p) in
        a.(!p) <- a.(!r);
        a.(!r) <- tmp;
        let tb = b.(!p) in
        b.(!p) <- b.(!r);
        b.(!r) <- tb;
        let inv = Field.inv fld a.(!r).(c) in
        for j = 0 to cols - 1 do
          a.(!r).(j) <- Field.mul fld a.(!r).(j) inv
        done;
        b.(!r) <- Field.mul fld b.(!r) inv;
        for i = 0 to rows - 1 do
          if i <> !r && a.(i).(c) <> 0 then begin
            let f = a.(i).(c) in
            for j = 0 to cols - 1 do
              a.(i).(j) <- Field.sub fld a.(i).(j) (Field.mul fld f a.(!r).(j))
            done;
            b.(i) <- Field.sub fld b.(i) (Field.mul fld f b.(!r))
          end
        done;
        pivot_col_of_row.(!r) <- c;
        incr r
      end
    end
  done;
  (* consistency: zero rows must have zero rhs *)
  let ok = ref true in
  for i = !r to rows - 1 do
    if b.(i) <> 0 then ok := false
  done;
  if not !ok then None
  else begin
    let x = Array.make cols 0 in
    for i = 0 to !r - 1 do
      if pivot_col_of_row.(i) >= 0 then x.(pivot_col_of_row.(i)) <- b.(i)
    done;
    Some x
  end

(* Long division Q / E over the field; returns the quotient when the
   remainder is zero. Coefficient arrays are little-endian. *)
let poly_divide fld q e =
  let deg p =
    let d = ref (Array.length p - 1) in
    while !d > 0 && p.(!d) = 0 do decr d done;
    !d
  in
  let dq = deg q and de = deg e in
  if de < 0 || (de = 0 && e.(0) = 0) then None
  else if dq < de then if Array.for_all (( = ) 0) q then Some [| 0 |] else None
  else begin
    let rem = Array.copy q in
    let quot = Array.make (dq - de + 1) 0 in
    let lead_inv = Field.inv fld e.(de) in
    for k = dq - de downto 0 do
      let c = Field.mul fld rem.(k + de) lead_inv in
      quot.(k) <- c;
      for j = 0 to de do
        rem.(k + j) <- Field.sub fld rem.(k + j) (Field.mul fld c e.(j))
      done
    done;
    if Array.for_all (( = ) 0) rem then Some quot else None
  end

let reconstruct_robust fld ~threshold shares =
  let n = List.length shares in
  if n <= threshold then Error "not enough shares"
  else begin
    let xs = Array.of_list (List.map (fun s -> Field.of_int fld s.idx) shares) in
    let ys = Array.of_list (List.map (fun s -> Field.of_int fld s.value) shares) in
    let idxs = Array.of_list (List.map (fun s -> s.idx) shares) in
    (* Try the largest correctable error count first is unnecessary: the
       Berlekamp-Welch system with e errors also decodes fewer; iterate
       e from the max capacity down to 0 and take the first success. *)
    let max_e = (n - threshold - 1) / 2 in
    let attempt e =
      (* Unknowns: E = x^e + e_{e-1} x^{e-1} + ... (e coeffs) and
         Q of degree threshold + e (threshold + e + 1 coeffs).
         Constraints: Q(x_i) - y_i E(x_i) = y_i x_i^e for each i. *)
      let q_len = threshold + e + 1 in
      let cols = e + q_len in
      let m =
        Array.map
          (fun i ->
            let xi = xs.(i) and yi = ys.(i) in
            let row = Array.make cols 0 in
            let xp = ref 1 in
            for j = 0 to e - 1 do
              row.(j) <- Field.neg fld (Field.mul fld yi !xp);
              xp := Field.mul fld !xp xi
            done;
            (* !xp is now x_i^e, the rhs multiplier *)
            let rhs_mult = !xp in
            let xq = ref 1 in
            for j = 0 to q_len - 1 do
              row.(e + j) <- !xq;
              xq := Field.mul fld !xq xi
            done;
            (row, Field.mul fld yi rhs_mult))
          (Array.init n Fun.id)
      in
      let rhs = Array.map snd m and mat = Array.map fst m in
      match solve_linear fld mat rhs with
      | None -> None
      | Some sol ->
          let e_poly = Array.append (Array.sub sol 0 e) [| 1 |] in
          let q_poly = Array.sub sol e q_len in
          (match poly_divide fld q_poly e_poly with
          | None -> None
          | Some p ->
              (* verify against the shares and locate cheaters *)
              let eval x =
                let acc = ref 0 in
                for j = Array.length p - 1 downto 0 do
                  acc := Field.add fld (Field.mul fld !acc x) p.(j)
                done;
                !acc
              in
              let cheaters = ref [] in
              Array.iteri
                (fun i xi ->
                  if eval xi <> ys.(i) then cheaters := idxs.(i) :: !cheaters)
                xs;
              if List.length !cheaters > max_e then None
              else Some (eval 0, List.rev !cheaters))
    in
    let rec go e = if e < 0 then None else
      match attempt e with Some r -> Some r | None -> go (e - 1)
    in
    match go max_e with
    | Some (secret, cheaters) -> Ok (secret, cheaters)
    | None -> Error "too many corrupted shares to decode"
  end
