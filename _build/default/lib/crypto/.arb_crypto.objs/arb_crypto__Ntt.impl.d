lib/crypto/ntt.ml: Array Field
