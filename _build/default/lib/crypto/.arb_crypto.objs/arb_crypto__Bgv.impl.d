lib/crypto/bgv.ml: Arb_util Array Buffer Char Field Float Hashtbl Int32 List Ntt Poly String
