lib/crypto/ntt.mli:
