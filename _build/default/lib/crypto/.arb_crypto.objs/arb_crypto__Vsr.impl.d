lib/crypto/vsr.ml: Arb_util Array Bytes Field List Printf Sha256 Shamir String
