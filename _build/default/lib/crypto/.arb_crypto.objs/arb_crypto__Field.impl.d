lib/crypto/field.ml: Arb_util List
