lib/crypto/sortition.ml: Array Merkle Printf Sha256
