lib/crypto/zkp.ml: Array Float Printf Sha256 String
