lib/crypto/sig_scheme.ml: Array Buffer Char Printf Sha256 String
