lib/crypto/poly.mli: Arb_util Field
