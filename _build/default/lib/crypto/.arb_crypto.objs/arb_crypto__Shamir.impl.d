lib/crypto/shamir.ml: Array Field Fun List
