lib/crypto/bgv.mli: Arb_util
