lib/crypto/zkp.mli:
