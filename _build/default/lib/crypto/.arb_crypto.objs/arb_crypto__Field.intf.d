lib/crypto/field.mli: Arb_util
