lib/crypto/vsr.mli: Arb_util Field Sha256 Shamir
