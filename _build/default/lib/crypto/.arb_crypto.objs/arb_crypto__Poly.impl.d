lib/crypto/poly.ml: Arb_util Array Field Float
