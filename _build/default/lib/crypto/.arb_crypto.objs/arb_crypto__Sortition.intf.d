lib/crypto/sortition.mli: Sha256
