lib/crypto/shamir.mli: Arb_util Field
