type statement =
  | One_hot of { length : int }
  | Range of { lo : int; hi : int; count : int }
  | Bits of { count : int }
  | One_hot_binned of { bins : int; length : int }

type proof = { tag : Sha256.digest; valid : bool }
(* [valid] models soundness: forge cannot fabricate a correct tag without a
   witness, which we encode directly rather than via computational
   assumptions. Tampering with [tag] is detected by the hash check. *)

let proof_bytes = 192

let satisfies stmt w =
  match stmt with
  | One_hot { length } ->
      Array.length w = length
      && Array.for_all (fun x -> x = 0 || x = 1) w
      && Array.fold_left ( + ) 0 w = 1
  | Range { lo; hi; count } ->
      Array.length w = count && Array.for_all (fun x -> x >= lo && x <= hi) w
  | Bits { count } ->
      Array.length w = count && Array.for_all (fun x -> x = 0 || x = 1) w
  | One_hot_binned { bins; length } ->
      Array.length w = bins * length
      && Array.for_all (fun x -> x = 0 || x = 1) w
      && Array.fold_left ( + ) 0 w = 1

let statement_string = function
  | One_hot { length } -> Printf.sprintf "onehot:%d" length
  | Range { lo; hi; count } -> Printf.sprintf "range:%d:%d:%d" lo hi count
  | Bits { count } -> Printf.sprintf "bits:%d" count
  | One_hot_binned { bins; length } -> Printf.sprintf "ohb:%d:%d" bins length

let tag_of stmt ~prover ~nonce =
  Sha256.digest (Printf.sprintf "g16|%s|%s|%s" (statement_string stmt) prover nonce)

let prove stmt ~witness ~prover ~nonce =
  if not (satisfies stmt witness) then
    invalid_arg "Zkp.prove: witness does not satisfy the statement";
  { tag = tag_of stmt ~prover ~nonce; valid = true }

let forge stmt ~prover ~nonce = { tag = tag_of stmt ~prover ~nonce; valid = false }

let verify stmt proof ~prover ~nonce =
  proof.valid && String.equal proof.tag (tag_of stmt ~prover ~nonce)

let statement_constraints = function
  | One_hot { length } -> 3 * length
  | Range { lo; hi; count } ->
      let bits = max 1 (int_of_float (Float.ceil (Float.log2 (float_of_int (hi - lo + 1))))) in
      count * (2 * bits)
  | Bits { count } -> 2 * count
  | One_hot_binned { bins; length } -> 3 * bins * length
