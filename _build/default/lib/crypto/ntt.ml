type plan = {
  n : int;
  p : int;
  psi_rev : int array; (* powers of psi in bit-reversed order *)
  ipsi_rev : int array; (* powers of psi^-1 in bit-reversed order *)
  n_inv : int;
}

let bit_reverse bits x =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    if x land (1 lsl i) <> 0 then r := !r lor (1 lsl (bits - 1 - i))
  done;
  !r

let plan ~n ~p =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Ntt.plan: n not a power of two";
  let f = Field.create p in
  if (p - 1) mod (2 * n) <> 0 then invalid_arg "Ntt.plan: 2n does not divide p-1";
  let psi = Field.root_of_unity f ~order:(2 * n) in
  let ipsi = Field.inv f psi in
  let bits =
    let rec go b v = if v = 1 then b else go (b + 1) (v lsr 1) in
    go 0 n
  in
  let powers root =
    let a = Array.make n 1 in
    for i = 1 to n - 1 do
      a.(i) <- Field.mul f a.(i - 1) root
    done;
    Array.init n (fun i -> a.(bit_reverse bits i))
  in
  {
    n;
    p;
    psi_rev = powers psi;
    ipsi_rev = powers ipsi;
    n_inv = Field.inv f n;
  }

let n t = t.n
let p t = t.p

(* Forward: Cooley–Tukey decimation-in-time with merged psi twisting. *)
let forward t a =
  if Array.length a <> t.n then invalid_arg "Ntt.forward: wrong length";
  let p = t.p in
  let m = ref 1 and len = ref (t.n / 2) in
  while !len >= 1 do
    let m' = !m and l = !len in
    for i = 0 to m' - 1 do
      let w = t.psi_rev.(m' + i) in
      let j0 = 2 * i * l in
      for j = j0 to j0 + l - 1 do
        let u = a.(j) in
        let v = a.(j + l) * w mod p in
        let s = u + v in
        a.(j) <- (if s >= p then s - p else s);
        let d = u - v in
        a.(j + l) <- (if d < 0 then d + p else d)
      done
    done;
    m := m' * 2;
    len := l / 2
  done

(* Inverse: Gentleman–Sande decimation-in-frequency. *)
let inverse t a =
  if Array.length a <> t.n then invalid_arg "Ntt.inverse: wrong length";
  let p = t.p in
  let m = ref (t.n / 2) and len = ref 1 in
  while !m >= 1 do
    let m' = !m and l = !len in
    for i = 0 to m' - 1 do
      let w = t.ipsi_rev.(m' + i) in
      let j0 = 2 * i * l in
      for j = j0 to j0 + l - 1 do
        let u = a.(j) in
        let v = a.(j + l) in
        let s = u + v in
        a.(j) <- (if s >= p then s - p else s);
        let d = u - v in
        let d = if d < 0 then d + p else d in
        a.(j + l) <- d * w mod p
      done
    done;
    m := m' / 2;
    len := l * 2
  done;
  for j = 0 to t.n - 1 do
    a.(j) <- a.(j) * t.n_inv mod p
  done

let pointwise t a b =
  if Array.length a <> t.n || Array.length b <> t.n then
    invalid_arg "Ntt.pointwise: wrong length";
  let p = t.p in
  Array.init t.n (fun i -> a.(i) * b.(i) mod p)

let multiply t a b =
  let a' = Array.copy a and b' = Array.copy b in
  forward t a';
  forward t b';
  let c = pointwise t a' b' in
  inverse t c;
  c
