(** Shamir secret sharing over a prime field.

    Committees in Arboretum run honest-majority MPC over Shamir shares
    (SPDZ-wise Shamir in the paper's prototype, §6); shares also carry
    secrets between committees via VSR. Threshold [t] means a degree-t
    polynomial: any [t+1] shares reconstruct, [t] reveal nothing. *)

type share = { idx : int; value : int }
(** A share for party [idx] (1-based evaluation points). *)

val share :
  Field.t -> Arb_util.Rng.t -> secret:int -> threshold:int -> parties:int ->
  share array
(** Split [secret]; requires [0 <= threshold < parties]. *)

val reconstruct : Field.t -> share list -> int
(** Lagrange interpolation at 0. Requires distinct indices; uses all the
    shares given (caller supplies at least threshold+1 honest ones). *)

val lagrange_at_zero : Field.t -> int list -> (int * int) list
(** [lagrange_at_zero f idxs] gives each index its Lagrange coefficient for
    evaluation at 0 — used to convert Shamir to additive shares inside MPC
    protocols. *)

val add : share -> share -> share
(** Local addition of shares of the same index (mod p is applied by
    [reconstruct]; values may be kept unreduced only if the caller reduces —
    this function reduces assuming both are already reduced mod the same p;
    see [add_in]). *)

val add_in : Field.t -> share -> share -> share
val scale_in : Field.t -> int -> share -> share
(** Local scalar multiplication. *)

val reconstruct_robust :
  Field.t -> threshold:int -> share list -> (int * int list, string) result
(** Reed–Solomon decoding (Berlekamp–Welch): reconstruct even when up to
    floor((n - threshold - 1)/2) of the shares are corrupted, returning the
    secret together with the indices of the identified cheaters — how an
    honest-majority committee survives a Byzantine minority instead of
    aborting. [Error] when the corruption exceeds the decoding radius. *)
