type device = { id : int; seed : string }

type assignment = {
  committees : int array array;
  registry_root : Sha256.digest;
}

let message ~block ~query_id = Printf.sprintf "%s|%d|0" block query_id

let ticket device ~block ~query_id =
  (* Deterministic signature, then hash. A keyed MAC stands in for the full
     Lamport signature (same determinism, same unpredictability before the
     block is revealed) so ranking a billion simulated devices stays cheap;
     the runtime still produces and checks real Lamport signatures where
     integrity matters (the query authorization certificate). *)
  Sha256.digest (Sha256.hmac ~key:device.seed (message ~block ~query_id))

let ranked ~devices ~block ~query_id =
  let tickets =
    Array.map (fun d -> (ticket d ~block ~query_id, d.id)) devices
  in
  Array.sort
    (fun (h1, id1) (h2, id2) ->
      let c = Sha256.compare_le h1 h2 in
      if c <> 0 then c else compare id1 id2)
    tickets;
  tickets

let registry_root devices =
  Merkle.root
    (Merkle.build
       (Array.map
          (fun d -> Printf.sprintf "%d|%s" d.id (Sha256.to_hex (Sha256.digest d.seed)))
          devices))

let select ~devices ~block ~query_id ~committees ~size =
  if committees * size > Array.length devices then
    invalid_arg "Sortition.select: not enough devices";
  if committees <= 0 || size <= 0 then invalid_arg "Sortition.select: bad shape";
  let tickets = ranked ~devices ~block ~query_id in
  let cs =
    Array.init committees (fun c ->
        Array.init size (fun j -> snd tickets.((c * size) + j)))
  in
  { committees = cs; registry_root = registry_root devices }

let verify_member ~devices ~block ~query_id ~committees ~size ~device =
  let tickets = ranked ~devices ~block ~query_id in
  let rank = ref None in
  Array.iteri (fun i (_, id) -> if id = device.id then rank := Some i) tickets;
  match !rank with
  | Some r when r < committees * size -> Some (r / size)
  | _ -> None

let reassign_failed asg ~failed =
  let c = Array.length asg.committees in
  if failed < 0 || failed >= c then invalid_arg "Sortition.reassign_failed";
  let target = (failed + 1) mod c in
  let committees =
    Array.mapi
      (fun i members ->
        if i = failed then [||]
        else if i = target then Array.append members asg.committees.(failed)
        else members)
      asg.committees
  in
  { asg with committees }
