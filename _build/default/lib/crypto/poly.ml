let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Poly: length mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add fld = map2 (Field.add fld)
let sub fld = map2 (Field.sub fld)
let neg fld a = Array.map (Field.neg fld) a
let scale fld k a = Array.map (Field.mul fld (Field.of_int fld k)) a

let mul_naive fld a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Poly.mul_naive: length mismatch";
  let c = Array.make n 0 in
  for i = 0 to n - 1 do
    if a.(i) <> 0 then
      for j = 0 to n - 1 do
        let k = i + j in
        let prod = Field.mul fld a.(i) b.(j) in
        if k < n then c.(k) <- Field.add fld c.(k) prod
        else c.(k - n) <- Field.sub fld c.(k - n) prod
      done
  done;
  c

let random_uniform fld rng n = Array.init n (fun _ -> Field.random fld rng)

let random_ternary fld rng n =
  Array.init n (fun _ ->
      match Arb_util.Rng.int rng 3 with
      | 0 -> 0
      | 1 -> 1
      | _ -> Field.neg fld 1)

let random_error fld rng ~sigma n =
  Array.init n (fun _ ->
      let e = int_of_float (Float.round (Arb_util.Rng.gaussian rng ~sigma)) in
      Field.of_int fld e)

let inf_norm fld a =
  Array.fold_left (fun acc x -> max acc (abs (Field.center fld x))) 0 a

let equal a b = a = b
