(** Merkle hash trees with inclusion proofs.

    Two uses in Arboretum: the registered-device tree included in the query
    authorization certificate (§5.2), and the audit tree the aggregator must
    build over its intermediate computation steps so participant devices can
    spot-check them (§5.3). Leaves are domain-separated from internal nodes
    (0x00/0x01 prefixes) to prevent second-preimage splicing. *)

type t
(** An immutable tree over a fixed leaf sequence. *)

type proof = { index : int; path : Sha256.digest list }
(** Sibling path from a leaf to the root, bottom-up. *)

val build : string array -> t
(** Build over raw leaf payloads. Raises [Invalid_argument] on empty input. *)

val root : t -> Sha256.digest
val size : t -> int
(** Number of leaves. *)

val leaf_hash : string -> Sha256.digest
(** Domain-separated hash of a leaf payload. *)

val prove : t -> int -> proof
(** Inclusion proof for leaf [i]. Raises [Invalid_argument] out of range. *)

val verify : root:Sha256.digest -> leaf:string -> proof -> bool
(** Check a payload against a root via a proof. *)
