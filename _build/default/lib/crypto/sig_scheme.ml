(* Lamport one-time signatures over SHA-256.

   secret: 2 x 256 preimages s[b][i] derived from the seed by a PRF.
   commitments: c[b][i] = H(s[b][i]); public = H(c[0][0] || ... || c[1][255]).
   A signature on m reveals, for each bit i of H(m), the preimage
   s[bit_i][i], plus the full commitment list so the verifier can re-derive
   the public digest and check revealed preimages against commitments. *)

type secret = string (* the seed; preimages are re-derived on demand *)
type public = string
type keypair = { secret : secret; public : public }

let signature_bytes = 256

let preimage seed b i =
  Sha256.digest (Printf.sprintf "lamport|%d|%d|" b i ^ seed)

let commitments seed =
  let buf = Buffer.create (512 * 32) in
  for b = 0 to 1 do
    for i = 0 to 255 do
      Buffer.add_string buf (Sha256.digest (preimage seed b i))
    done
  done;
  Buffer.contents buf

let keygen ~seed =
  { secret = seed; public = Sha256.digest (commitments seed) }

let msg_bits msg =
  let h = Sha256.digest msg in
  Array.init 256 (fun i -> (Char.code h.[i / 8] lsr (7 - (i mod 8))) land 1)

let sign ~secret msg =
  let bits = msg_bits msg in
  let buf = Buffer.create ((256 + 512) * 32) in
  Array.iteri (fun i b -> Buffer.add_string buf (preimage secret b i)) bits;
  Buffer.add_string buf (commitments secret);
  Buffer.contents buf

let verify ~public ~msg ~signature =
  if String.length signature <> (256 + 512) * 32 then false
  else
    let commits = String.sub signature (256 * 32) (512 * 32) in
    if not (String.equal (Sha256.digest commits) public) then false
    else
      let bits = msg_bits msg in
      let ok = ref true in
      Array.iteri
        (fun i b ->
          let revealed = String.sub signature (i * 32) 32 in
          let expected = String.sub commits (((b * 256) + i) * 32) 32 in
          if not (String.equal (Sha256.digest revealed) expected) then ok := false)
        bits;
      !ok
