(** Prime-field arithmetic on native ints.

    All moduli in this repository are primes below 2^31 so that products of
    two reduced elements fit exactly in OCaml's 63-bit native ints — the
    trick that lets us do RLWE and Shamir arithmetic without a bignum
    library (see DESIGN.md §1). Elements are plain ints in \[0, p). *)

type t = { p : int }
(** A field description. *)

val create : int -> t
(** [create p] checks [2 <= p < 2^31] and that [p] is prime
    (deterministic Miller–Rabin). *)

val create_unchecked : int -> t
(** Skip the primality check (for hot paths constructing known fields). *)

val add : t -> int -> int -> int
val sub : t -> int -> int -> int
val neg : t -> int -> int
val mul : t -> int -> int -> int
val pow : t -> int -> int -> int
(** [pow f x e] with [e >= 0]. *)

val inv : t -> int -> int
(** Multiplicative inverse; raises [Division_by_zero] on 0. *)

val div : t -> int -> int -> int
val of_int : t -> int -> int
(** Canonical representative of any int (handles negatives). *)

val center : t -> int -> int
(** Centered representative in \[-(p-1)/2, p/2\]. *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin, valid for all inputs below 3.3e24. *)

val root_of_unity : t -> order:int -> int
(** A primitive [order]-th root of unity; requires [order] divides [p-1].
    Raises [Not_found] if none exists. *)

val random : t -> Arb_util.Rng.t -> int
(** Uniform field element. *)
