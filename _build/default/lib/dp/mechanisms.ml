module Rng = Arb_util.Rng

let laplace_sample rng ~scale = Rng.laplace rng ~scale
let gumbel_sample rng ~scale = Rng.gumbel rng ~scale

let laplace rng ~epsilon ~sensitivity v =
  if epsilon <= 0.0 then invalid_arg "Mechanisms.laplace: epsilon <= 0";
  v +. laplace_sample rng ~scale:(sensitivity /. epsilon)

let laplace_vector rng ~epsilon ~sensitivity vs =
  Array.map (laplace rng ~epsilon ~sensitivity) vs

let argmax_float (a : float array) =
  if Array.length a = 0 then invalid_arg "Mechanisms: empty scores";
  let best = ref 0 in
  Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
  !best

let exponential_gumbel rng ~epsilon ~sensitivity scores =
  if epsilon <= 0.0 then invalid_arg "Mechanisms.exponential_gumbel: epsilon <= 0";
  let scale = 2.0 *. sensitivity /. epsilon in
  argmax_float (Array.map (fun s -> s +. gumbel_sample rng ~scale) scores)

let exponential_sample rng ~epsilon ~sensitivity scores =
  if epsilon <= 0.0 then invalid_arg "Mechanisms.exponential_sample: epsilon <= 0";
  let n = Array.length scores in
  if n = 0 then invalid_arg "Mechanisms.exponential_sample: empty scores";
  let k = epsilon /. (2.0 *. sensitivity) in
  let m = Array.fold_left Float.max neg_infinity scores in
  (* 16-bit window below the max, as in Fig. 4 (left): scores further than
     window/k below the max get weight 0 (contributes the small delta). *)
  let window = 16.0 *. Float.log 2.0 /. k in
  let weights =
    Array.map
      (fun s -> if s < m -. window then 0.0 else exp (k *. (s -. m)))
      scores
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let r = Rng.float rng total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if r < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let top_k rng ~epsilon ~sensitivity ~k ?(fresh_noise = true) scores =
  if k <= 0 || k > Array.length scores then invalid_arg "Mechanisms.top_k";
  if fresh_noise then begin
    (* k rounds of noisy argmax, masking previous winners. *)
    let masked = Array.copy scores in
    Array.init k (fun _ ->
        let w = exponential_gumbel rng ~epsilon ~sensitivity masked in
        masked.(w) <- neg_infinity;
        w)
  end
  else begin
    let scale = 2.0 *. sensitivity /. epsilon in
    let noised =
      Array.mapi (fun i s -> (s +. gumbel_sample rng ~scale, i)) scores
    in
    Array.sort (fun (a, _) (b, _) -> Float.compare b a) noised;
    Array.init k (fun i -> snd noised.(i))
  end

let noisy_max_gap rng ~epsilon ~sensitivity scores =
  if Array.length scores < 2 then invalid_arg "Mechanisms.noisy_max_gap";
  let scale = 2.0 *. sensitivity /. epsilon in
  let noised = Array.map (fun s -> s +. gumbel_sample rng ~scale) scores in
  let best = argmax_float noised in
  let second = ref neg_infinity in
  Array.iteri (fun i v -> if i <> best && v > !second then second := v) noised;
  (best, noised.(best) -. !second)

let geometric rng ~epsilon ~sensitivity v =
  (* Discrete Laplace (two-sided geometric): P[k] proportional to
     alpha^|k| with alpha = exp(-eps/sens). Exact on integers, avoiding the
     floating-point pathologies of naive Laplace (Mironov 2012). *)
  if epsilon <= 0.0 then invalid_arg "Mechanisms.geometric: epsilon <= 0";
  let alpha = exp (-.epsilon /. sensitivity) in
  (* Standard construction: draw (sign, magnitude) and reject the duplicate
     (-, 0) outcome so that P[k] = (1-alpha)/(1+alpha) * alpha^|k| exactly —
     the naive "fold zero" shortcut overweights 0 and breaks the eps ratio
     at the origin. *)
  let rec draw () =
    let magnitude = Rng.geometric rng ~p:(1.0 -. alpha) in
    let positive = Rng.bool rng in
    if magnitude = 0 && not positive then draw ()
    else if magnitude = 0 then 0
    else if positive then magnitude
    else -magnitude
  in
  v + draw ()

let exponential_base2 rng ~epsilon ~sensitivity scores =
  (* Ilvento-style base-2 exponential mechanism (§6): all weights are
     computed as exact powers of two on the 30.16 fixpoint lattice —
     2^(k * (s - max)) with k = eps / (2 sens ln 2) — so the sampling
     probabilities are identical on every platform, sidestepping
     floating-point transcendental differences. *)
  if epsilon <= 0.0 then invalid_arg "Mechanisms.exponential_base2: epsilon <= 0";
  let n = Array.length scores in
  if n = 0 then invalid_arg "Mechanisms.exponential_base2: empty scores";
  let module Fx = Arb_util.Fixed in
  let k = epsilon /. (2.0 *. sensitivity *. Float.log 2.0) in
  let m = Array.fold_left Float.max neg_infinity scores in
  (* 16-bit window below the max, as in Fig. 4 left. *)
  let weights =
    Array.map
      (fun s ->
        let e = k *. (s -. m) in
        if e < -16.0 then Fx.zero else Fx.exp2 (Fx.of_float e))
      scores
  in
  let total =
    Array.fold_left (fun acc w -> acc + Fx.to_raw w) 0 weights
  in
  (* r uniform on the integer lattice [0, total). *)
  let r = Rng.int rng (max 1 total) in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc + Fx.to_raw weights.(i) in
      if r < acc then i else scan (i + 1) acc
  in
  scan 0 0
