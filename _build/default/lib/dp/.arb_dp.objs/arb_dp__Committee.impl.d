lib/dp/committee.ml: Arb_util Float
