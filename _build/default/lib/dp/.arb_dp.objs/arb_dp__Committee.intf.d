lib/dp/committee.mli:
