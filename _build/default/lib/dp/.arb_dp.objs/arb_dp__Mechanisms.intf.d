lib/dp/mechanisms.mli: Arb_util
