lib/dp/mechanisms.ml: Arb_util Array Float
