lib/dp/budget.ml: Float Format
