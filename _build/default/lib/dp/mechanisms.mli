(** Cleartext reference implementations of the differential-privacy
    mechanisms Arboretum deploys (§2.1).

    These are the semantic ground truth the distributed/encrypted execution
    must match (up to sampling noise): the Laplace mechanism for numerical
    queries, and the exponential mechanism — in both the textbook
    exponentiation form and the Gumbel-noise form of Fig. 4 — for
    categorical queries, plus the top-k composition rules of Durfee–Rogers. *)

val laplace : Arb_util.Rng.t -> epsilon:float -> sensitivity:float -> float -> float
(** [laplace rng ~epsilon ~sensitivity v] = v + Lap(sensitivity/epsilon). *)

val laplace_vector :
  Arb_util.Rng.t -> epsilon:float -> sensitivity:float -> float array -> float array

val exponential_gumbel :
  Arb_util.Rng.t -> epsilon:float -> sensitivity:float -> float array -> int
(** Exponential mechanism by adding Gumbel(2*sens/eps) noise to each quality
    score and returning the argmax — (eps, 0)-DP. *)

val exponential_sample :
  Arb_util.Rng.t -> epsilon:float -> sensitivity:float -> float array -> int
(** Textbook exponential mechanism: sample index i with probability
    proportional to exp(eps * q_i / (2 * sens)), computed stably in the log
    domain with a 16-bit window below the max (Fig. 4 left) — (eps, delta)-DP
    with the windowing delta. *)

val top_k :
  Arb_util.Rng.t -> epsilon:float -> sensitivity:float -> k:int ->
  ?fresh_noise:bool -> float array -> int array
(** Top-k selection. [fresh_noise = true] (default) draws Gumbel noise per
    round for (k*eps)-DP with eps per release; [false] noises once and
    releases the k best for (sqrt k * eps)-DP (Durfee–Rogers). *)

val noisy_max_gap :
  Arb_util.Rng.t -> epsilon:float -> sensitivity:float -> float array ->
  int * float
(** Exponential mechanism with free gap: the winning index together with the
    noisy gap to the runner-up, which is released for free (Ding et al.). *)

val gumbel_sample : Arb_util.Rng.t -> scale:float -> float
val laplace_sample : Arb_util.Rng.t -> scale:float -> float

val geometric :
  Arb_util.Rng.t -> epsilon:float -> sensitivity:float -> int -> int
(** Discrete Laplace (two-sided geometric) mechanism on integers — exact
    integer noise, free of floating-point tail irregularities. *)

val exponential_base2 :
  Arb_util.Rng.t -> epsilon:float -> sensitivity:float -> float array -> int
(** Base-2 exponential mechanism (Ilvento, as adopted in §6): weights are
    exact powers of two on the 30.16 fixpoint lattice, so the output
    distribution is bit-identical across platforms. Uses the same 16-bit
    window as Fig. 4 (left), contributing the same small delta. *)
