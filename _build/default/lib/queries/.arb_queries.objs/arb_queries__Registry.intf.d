lib/queries/registry.mli: Arb_lang Arb_util
