lib/queries/registry.ml: Arb_lang Arb_util Array Float Fun List
