(** Comparison systems (Table 1, Figs. 6–8).

    Orchard and Honeycrisp are modeled as restricted Arboretum plans —
    exactly one committee that performs key generation, noising and
    decryption, with the aggregator doing all homomorphic sums — priced by
    the same cost model, which is how the paper frames them ("the original
    systems were custom-designed for these queries, whereas Arboretum was
    able to find these query plans independently"). Böhler–Kerschbaum and
    the Table 1 strawmen (FHE-only, all-to-all MPC) are analytic models
    built from the paper's own extrapolations (§3.2, §7.1). *)

val orchard_plan :
  crypto:Arb_planner.Plan.crypto ->
  n:int ->
  cols:int ->
  noise_count:int ->
  cm:Arb_planner.Cost_model.t ->
  Arb_planner.Plan.t
(** A single-committee plan: keygen, aggregator HE sum, committee decrypt +
    Laplace-noise [noise_count] values, output. *)

val orchard_metrics :
  n:int -> cols:int -> noise_count:int -> cm:Arb_planner.Cost_model.t ->
  Arb_planner.Cost_model.metrics

val honeycrisp_metrics :
  n:int -> sketch_cols:int -> cm:Arb_planner.Cost_model.t ->
  Arb_planner.Cost_model.metrics
(** Honeycrisp = Orchard-style single committee specialized to the
    count-mean-sketch query. *)

type boehler = {
  committee_bytes : float;  (** per committee member *)
  committee_time : float;
  participant_bytes : float;  (** non-member upload *)
}

val boehler_median : n:int -> m:int -> boehler
(** Böhler–Kerschbaum single-committee MPC median, extrapolated as the
    paper does (§7.1): 1.41 GB per member at N = 1e6, m = 10, scaling at
    least linearly in N and m. *)

type strawman = {
  agg_compute_seconds : float;
  participant_bytes_typical : float;
  participant_bytes_worst : float;
  description : string;
}

val fhe_only : n:int -> cols:int -> strawman
(** Upload everything under FHE; the aggregator evaluates the query
    homomorphically — a ~40-trillion-gate circuit at N = 1e8 (§3.2). *)

val all_to_all_mpc : n:int -> strawman
(** Every participant joins one giant MPC: per-participant traffic scales
    at least linearly with N (§3.2). *)
