lib/baselines/baselines.ml: Arb_planner List
