lib/baselines/baselines.mli: Arb_planner
