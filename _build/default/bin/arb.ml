(* arb — command-line front end for the Arboretum planner and runtime.

   Subcommands:
     arb plan   --query top1 --n 1000000000        plan and explain
     arb run    --query top1 --devices 256         plan + execute at sim scale
     arb certify --query median                    certification report
     arb list                                      the built-in queries       *)

open Cmdliner

let query_arg =
  let doc = "Built-in query name (see `arb list`)." in
  Arg.(value & opt string "top1" & info [ "query"; "q" ] ~docv:"NAME" ~doc)

let n_arg =
  let doc = "Deployment size (number of participants) for planning." in
  Arg.(value & opt int 1_000_000_000 & info [ "n" ] ~docv:"N" ~doc)

let categories_arg =
  let doc = "Override the category count (default: the paper's setting)." in
  Arg.(value & opt (some int) None & info [ "categories"; "c" ] ~docv:"C" ~doc)

let epsilon_arg =
  let doc = "Per-mechanism epsilon." in
  Arg.(value & opt float 0.1 & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc)

let devices_arg =
  let doc = "Simulated device count for execution." in
  Arg.(value & opt int 128 & info [ "devices"; "d" ] ~docv:"D" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let goal_arg =
  let goals =
    [
      ("part-exp-time", Arb_planner.Constraints.Min_part_exp_time);
      ("part-max-time", Arb_planner.Constraints.Min_part_max_time);
      ("part-exp-bytes", Arb_planner.Constraints.Min_part_exp_bytes);
      ("part-max-bytes", Arb_planner.Constraints.Min_part_max_bytes);
      ("agg-time", Arb_planner.Constraints.Min_agg_time);
      ("agg-bytes", Arb_planner.Constraints.Min_agg_bytes);
    ]
  in
  let doc = "Optimization goal: " ^ String.concat ", " (List.map fst goals) ^ "." in
  Arg.(
    value
    & opt (enum goals) Arb_planner.Constraints.Min_part_exp_time
    & info [ "goal" ] ~docv:"GOAL" ~doc)

let verbose_arg =
  let doc = "Log planner and runtime progress to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let build_query name categories epsilon =
  try Ok (Arboretum.builtin_query ~epsilon ?categories name)
  with Not_found -> Error (`Msg (Printf.sprintf "unknown query %S; try `arb list`" name))

let json_arg =
  let doc = "Emit the chosen plan and its cost metrics as JSON." in
  Arg.(value & flag & info [ "json" ] ~doc)

let plan_cmd =
  let run verbose name n categories epsilon goal json =
    setup_logs verbose;
    match build_query name categories epsilon with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok q -> (
        match Arboretum.plan ~goal ~n q with
        | p ->
            if json then
              print_endline
                (Arb_util.Json.to_string ~pretty:true
                   (Arb_util.Json.Obj
                      [
                        ("plan", Arb_planner.Plan_io.plan_to_json p.Arboretum.plan);
                        ("metrics", Arb_planner.Plan_io.metrics_to_json p.Arboretum.metrics);
                      ]))
            else print_string (Arboretum.explain p);
            0
        | exception Arboretum.Rejected m ->
            Printf.eprintf "rejected: %s\n" m;
            1)
  in
  let term =
    Term.(
      const run $ verbose_arg $ query_arg $ n_arg $ categories_arg $ epsilon_arg
      $ goal_arg $ json_arg)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Certify a query and print the chosen plan with its costs.") term

let certify_cmd =
  let run name n categories epsilon =
    match build_query name categories epsilon with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok q ->
        let r = Arboretum.certify q ~n in
        if r.Arb_lang.Certify.certified then begin
          Format.printf
            "certified: privacy cost %a, sensitivity %.2f, %d mechanism call(s)@."
            Arb_dp.Budget.pp r.Arb_lang.Certify.cost r.Arb_lang.Certify.sensitivity
            r.Arb_lang.Certify.mechanism_calls;
          0
        end
        else begin
          Format.printf "rejected: %s@."
            (Option.value r.Arb_lang.Certify.reason ~default:"?");
          1
        end
  in
  let term = Term.(const run $ query_arg $ n_arg $ categories_arg $ epsilon_arg) in
  Cmd.v (Cmd.info "certify" ~doc:"Run differential-privacy certification only.") term

let run_cmd =
  let run verbose name devices epsilon seed =
    setup_logs verbose;
    (* Execution uses a small category count so the whole protocol fits in
       one process with real ciphertexts. *)
    let q =
      try Arb_queries.Registry.test_instance ~epsilon name
      with Not_found ->
        prerr_endline ("unknown query " ^ name);
        exit 1
    in
    let db = Arboretum.synthesize_database ~seed:(Int64.of_int seed) q ~n:devices in
    match
      let p =
        Arboretum.plan ~limits:Arb_planner.Constraints.no_limits ~n:devices q
      in
      (p, Arboretum.run ~db p)
    with
    | _, report ->
        Printf.printf "outputs: %s\n"
          (String.concat "; " (Arboretum.outputs_to_strings report));
        Printf.printf
          "inputs accepted/rejected: %d/%d; certificate ok: %b; audit ok: %b\n"
          report.Arb_runtime.Exec.accepted_inputs
          report.Arb_runtime.Exec.rejected_inputs
          report.Arb_runtime.Exec.certificate_ok report.Arb_runtime.Exec.audit_ok;
        Format.printf "trace: %a@." Arb_runtime.Trace.pp report.Arb_runtime.Exec.trace;
        0
    | exception Arboretum.Rejected m ->
        Printf.eprintf "rejected: %s\n" m;
        1
  in
  let term =
    Term.(const run $ verbose_arg $ query_arg $ devices_arg $ epsilon_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Plan and execute a query end to end at simulation scale with real cryptography.")
    term

let verify_cmd =
  let run verbose name devices epsilon seed =
    setup_logs verbose;
    let q =
      try Arb_queries.Registry.test_instance ~epsilon name
      with Not_found ->
        prerr_endline ("unknown query " ^ name);
        exit 1
    in
    let db = Arboretum.synthesize_database ~seed:(Int64.of_int seed) q ~n:devices in
    match Arboretum.plan ~limits:Arb_planner.Constraints.no_limits ~n:devices q with
    | exception Arboretum.Rejected m ->
        Printf.eprintf "rejected: %s\n" m;
        1
    | planned ->
        let budget_before = Arb_dp.Budget.create ~epsilon:1000.0 ~delta:0.01 in
        let config = { Arb_runtime.Exec.default_config with budget = budget_before } in
        let report = Arboretum.run ~config ~db planned in
        Printf.printf "outputs: %s\n"
          (String.concat "; " (Arboretum.outputs_to_strings report));
        let findings =
          Arb_runtime.Verify.verify_report ~query:q
            ~plan:planned.Arboretum.plan ~budget_before ~n_devices:devices report
        in
        Format.printf "%a" Arb_runtime.Verify.pp_findings findings;
        if Arb_runtime.Verify.all_ok findings then 0 else 1
  in
  let term =
    Term.(const run $ verbose_arg $ query_arg $ devices_arg $ epsilon_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Plan, execute and independently verify a run: certificate signatures, plan commitment, budget arithmetic, audits.")
    term

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        let q = Arb_queries.Registry.paper_instance name in
        Printf.printf "%-9s %-28s (C=%d, %s, %d lines)\n" name
          q.Arb_queries.Registry.action q.Arb_queries.Registry.categories
          (if q.Arb_queries.Registry.uses_em then "exponential mech."
           else "Laplace mech.")
          (Arb_lang.Ast.count_lines q.Arb_queries.Registry.program))
      Arb_queries.Registry.names;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in evaluation queries (Table 2).")
    Term.(const run $ const ())

let main =
  let info =
    Cmd.info "arb" ~version:"1.0.0"
      ~doc:"Arboretum: a planner for large-scale federated analytics with differential privacy"
  in
  Cmd.group info [ plan_cmd; certify_cmd; run_cmd; verify_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
