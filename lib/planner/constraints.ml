type goal =
  | Min_agg_time
  | Min_agg_bytes
  | Min_part_exp_time
  | Min_part_max_time
  | Min_part_exp_bytes
  | Min_part_max_bytes

type limits = {
  max_agg_time : float option;
  max_agg_bytes : float option;
  max_part_exp_time : float option;
  max_part_max_time : float option;
  max_part_exp_bytes : float option;
  max_part_max_bytes : float option;
  max_est_error : float option;
      (* Unlike the resource caps, [None] here does NOT mean "unconstrained":
         it means the analyst supplied no error tolerance, so only exact
         plans ([est_error = 0]) are admissible. This keeps the planner's
         winners byte-identical to the pre-approximation planner whenever no
         tolerance is given. *)
}

let no_limits =
  {
    max_agg_time = None;
    max_agg_bytes = None;
    max_part_exp_time = None;
    max_part_max_time = None;
    max_part_exp_bytes = None;
    max_part_max_bytes = None;
    max_est_error = None;
  }

(* §7.2 caps participants at 4 GB / 20 min. The aggregator cap follows
   Fig. 8b's observed ~10 h on 1,000 cores (10,000 core-hours); the "1,000
   core hours" sentence in §7.2 is inconsistent with the paper's own Fig. 8b
   numbers, so we take the figure as ground truth (see EXPERIMENTS.md). *)
let evaluation_limits =
  {
    max_agg_time = Some (10_000.0 *. 3600.0);
    max_agg_bytes = None;
    max_part_exp_time = None;
    max_part_max_time = Some (20.0 *. 60.0);
    max_part_exp_bytes = None;
    max_part_max_bytes = Some 4.0e9;
    max_est_error = None;
  }

let with_agg_core_hours limits h = { limits with max_agg_time = Some (h *. 3600.0) }
let with_error_tolerance limits tol = { limits with max_est_error = tol }

let le_opt v = function None -> true | Some limit -> v <= limit

(* [est_error] is capped by the tolerance when one is given; with no
   tolerance only exact plans pass. *)
let error_ok v = function None -> v <= 0.0 | Some limit -> v <= limit

let satisfies l (m : Cost_model.metrics) =
  le_opt m.Cost_model.agg_time l.max_agg_time
  && le_opt m.Cost_model.agg_bytes l.max_agg_bytes
  && le_opt m.Cost_model.part_exp_time l.max_part_exp_time
  && le_opt m.Cost_model.part_max_time l.max_part_max_time
  && le_opt m.Cost_model.part_exp_bytes l.max_part_exp_bytes
  && le_opt m.Cost_model.part_max_bytes l.max_part_max_bytes
  && error_ok m.Cost_model.est_error l.max_est_error

(* Every limit is an upper cap, so a *lower bound* on a candidate's metrics
   that already violates one can never be repaired by completing the plan:
   pruning on this predicate is admissible. *)
let lower_bound_infeasible l m = not (satisfies l m)

let goal_value g (m : Cost_model.metrics) =
  match g with
  | Min_agg_time -> m.Cost_model.agg_time
  | Min_agg_bytes -> m.Cost_model.agg_bytes
  | Min_part_exp_time -> m.Cost_model.part_exp_time
  | Min_part_max_time -> m.Cost_model.part_max_time
  | Min_part_exp_bytes -> m.Cost_model.part_exp_bytes
  | Min_part_max_bytes -> m.Cost_model.part_max_bytes

let goal_name = function
  | Min_agg_time -> "min aggregator time"
  | Min_agg_bytes -> "min aggregator bytes"
  | Min_part_exp_time -> "min expected participant time"
  | Min_part_max_time -> "min max participant time"
  | Min_part_exp_bytes -> "min expected participant bytes"
  | Min_part_max_bytes -> "min max participant bytes"
