module J = Arb_util.Json
module M = Arb_obs.Metrics

type section_fit = {
  s_section : string;
  s_samples : int;
  s_scale : float;
  s_err_before : float;
  s_err_after : float;
}

type provenance = {
  p_runs : int;
  p_skipped : int;
  p_base : string;
  p_err_before : float;
  p_err_after : float;
  p_sections : section_fit list;
}

let empty_provenance =
  {
    p_runs = 0;
    p_skipped = 0;
    p_base = "";
    p_err_before = 0.0;
    p_err_after = 0.0;
    p_sections = [];
  }

type t = {
  version : int;
  constants : Cost_model.t;
  fingerprint : string;
  provenance : provenance;
}

let current_version = 1
let schema = "arb-calibration/1"

type error =
  | Unreadable of { path : string; reason : string }
  | Malformed of { path : string; reason : string }
  | Future_version of { path : string; found : int; supported : int }

let error_message = function
  | Unreadable { path; reason } ->
      Printf.sprintf "calibration %s: unreadable (%s)" path reason
  | Malformed { path; reason } ->
      Printf.sprintf "calibration %s: malformed (%s)" path reason
  | Future_version { path; found; supported } ->
      Printf.sprintf
        "calibration %s: version %d is newer than this binary supports (%d)"
        path found supported

let make ?(provenance = empty_provenance) constants =
  {
    version = current_version;
    constants;
    fingerprint = Cost_model.fingerprint constants;
    provenance;
  }

let default = make Cost_model.default

(* ---------------- JSON ---------------- *)

let section_to_json s =
  J.Obj
    [
      ("section", J.String s.s_section);
      ("samples", J.Int s.s_samples);
      ("scale", J.Float s.s_scale);
      ("errBefore", J.Float s.s_err_before);
      ("errAfter", J.Float s.s_err_after);
    ]

let provenance_to_json p =
  J.Obj
    [
      ("runs", J.Int p.p_runs);
      ("skipped", J.Int p.p_skipped);
      ("base", J.String p.p_base);
      ("errBefore", J.Float p.p_err_before);
      ("errAfter", J.Float p.p_err_after);
      ("sections", J.List (List.map section_to_json p.p_sections));
    ]

let to_json t =
  J.Obj
    [
      ("schema", J.String schema);
      ("version", J.Int t.version);
      ("fingerprint", J.String t.fingerprint);
      ("constants", Cost_model.to_json t.constants);
      ("provenance", provenance_to_json t.provenance);
    ]

let section_of_json json =
  {
    s_section = J.to_str (J.member "section" json);
    s_samples = J.to_int (J.member "samples" json);
    s_scale = J.to_float (J.member "scale" json);
    s_err_before = J.to_float (J.member "errBefore" json);
    s_err_after = J.to_float (J.member "errAfter" json);
  }

let provenance_of_json json =
  {
    p_runs = J.to_int (J.member "runs" json);
    p_skipped = J.to_int (J.member "skipped" json);
    p_base = J.to_str (J.member "base" json);
    p_err_before = J.to_float (J.member "errBefore" json);
    p_err_after = J.to_float (J.member "errAfter" json);
    p_sections =
      List.map section_of_json (J.to_list (J.member "sections" json));
  }

let of_json ?(path = "<json>") json =
  match
    let s = J.to_str (J.member "schema" json) in
    if s <> schema then
      raise (J.Parse_error (Printf.sprintf "schema %S, expected %S" s schema));
    let version = J.to_int (J.member "version" json) in
    if version > current_version then Error (`Future version)
    else
      let fingerprint = J.to_str (J.member "fingerprint" json) in
      match Cost_model.of_json (J.member "constants" json) with
      | Error m -> raise (J.Parse_error ("constants: " ^ m))
      | Ok constants ->
          if Cost_model.fingerprint constants <> fingerprint then
            raise
              (J.Parse_error
                 "fingerprint does not match the constants (corrupt or \
                  hand-edited file)");
          let provenance = provenance_of_json (J.member "provenance" json) in
          Ok { version; constants; fingerprint; provenance }
  with
  | Ok t -> Ok t
  | Error (`Future found) ->
      Error (Future_version { path; found; supported = current_version })
  | exception J.Parse_error m -> Error (Malformed { path; reason = m })

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~pretty:true (to_json t));
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error (Unreadable { path; reason = m })
  | raw -> (
      match J.of_string raw with
      | exception J.Parse_error m -> Error (Malformed { path; reason = m })
      | json -> of_json ~path json)

let load_or_default path =
  match load path with
  | Ok t -> (t, None)
  | Error e -> (default, Some e)

(* ---------------- recording residuals ---------------- *)

let sections =
  [
    "keygen_time";
    "keygen_bytes";
    "decrypt_time";
    "ops_time";
    "ops_bytes";
    "upload_bytes";
  ]

let predicted_name = "arb_cal_predicted_total"
let measured_name = "arb_cal_measured_total"

let residual_buckets =
  [ 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 100.0; 1000.0 ]

let rel_err ~predicted ~measured =
  Float.abs (predicted -. measured) /. Float.max (Float.abs measured) 1e-12

let record reg samples =
  List.iter
    (fun (section, predicted, measured) ->
      let labels = [ ("section", section) ] in
      M.add reg ~labels
        ~help:"Cost-model predicted totals per calibration section"
        predicted_name predicted;
      M.add reg ~labels
        ~help:"Runtime-measured totals per calibration section" measured_name
        measured;
      if measured > 0.0 then
        M.observe_in reg ~labels ~buckets:residual_buckets
          ~help:
            "Relative predicted-vs-measured error per executed plan and \
             section"
          "arb_cal_residual_rel"
          (rel_err ~predicted ~measured))
    samples

let samples_of_registry reg =
  List.filter_map
    (fun section ->
      let labels = [ ("section", section) ] in
      match
        ( M.value_at reg ~labels predicted_name,
          M.value_at reg ~labels measured_name )
      with
      | Some p, Some m when m > 0.0 && p > 0.0 -> Some (section, p, m)
      | _ -> None)
    (M.label_values reg predicted_name ~label:"section")

(* ---------------- fitting ---------------- *)

(* Which constants each section's scale multiplies. Groups are (nearly)
   disjoint and each section's prediction is linear in its group, so
   scaling the group by [sum measured / sum predicted] moves that
   section's predictions exactly onto the fitted line; the one overlap
   (felt_bytes also appears in MPC share traffic) is dominated by the
   per-mechanism byte constants and stays second-order. *)
let apply_scales (base : Cost_model.t) scales =
  let s key = match List.assoc_opt key scales with Some v -> v | None -> 1.0 in
  let kt = s "keygen_time"
  and kb = s "keygen_bytes"
  and dt = s "decrypt_time"
  and ot = s "ops_time"
  and ob = s "ops_bytes"
  and ub = s "upload_bytes" in
  {
    base with
    Cost_model.kg_coeff_time = base.Cost_model.kg_coeff_time *. kt;
    zk_setup_per_constraint = base.Cost_model.zk_setup_per_constraint *. kt;
    kg_coeff_bytes = base.Cost_model.kg_coeff_bytes *. kb;
    dec_coeff_time = base.Cost_model.dec_coeff_time *. dt;
    gumbel_unit_time = base.Cost_model.gumbel_unit_time *. ot;
    laplace_unit_time = base.Cost_model.laplace_unit_time *. ot;
    cmp_time_ref = base.Cost_model.cmp_time_ref *. ot;
    exp_time_ref = base.Cost_model.exp_time_ref *. ot;
    triple_setup_time = base.Cost_model.triple_setup_time *. ot;
    share_op_time = base.Cost_model.share_op_time *. ot;
    round_latency = base.Cost_model.round_latency *. ot;
    gumbel_unit_bytes = base.Cost_model.gumbel_unit_bytes *. ob;
    laplace_unit_bytes = base.Cost_model.laplace_unit_bytes *. ob;
    cmp_bytes_ref = base.Cost_model.cmp_bytes_ref *. ob;
    exp_bytes_ref = base.Cost_model.exp_bytes_ref *. ob;
    triple_setup_bytes = base.Cost_model.triple_setup_bytes *. ob;
    vsr_overhead_bytes = base.Cost_model.vsr_overhead_bytes *. ob;
    felt_bytes = base.Cost_model.felt_bytes *. ub;
    proof_bytes = base.Cost_model.proof_bytes *. ub;
    audit_bytes = base.Cost_model.audit_bytes *. ub;
  }

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let fit ?(base = Cost_model.default) ~runs () =
  let usable (_, p, m) = p > 0.0 && m > 0.0 in
  let runs = List.map (List.filter usable) runs in
  let contributing = List.filter (fun r -> r <> []) runs in
  if contributing = [] then
    Error "no usable predicted-vs-measured samples (nothing was recorded)"
  else begin
    let per_section section =
      let pairs =
        List.concat_map
          (List.filter_map (fun (s, p, m) ->
               if s = section then Some (p, m) else None))
          contributing
      in
      match pairs with
      | [] -> None
      | _ ->
          let sp = List.fold_left (fun a (p, _) -> a +. p) 0.0 pairs
          and sm = List.fold_left (fun a (_, m) -> a +. m) 0.0 pairs in
          let scale = sm /. sp in
          let before =
            List.map (fun (p, m) -> rel_err ~predicted:p ~measured:m) pairs
          and after =
            List.map
              (fun (p, m) -> rel_err ~predicted:(scale *. p) ~measured:m)
              pairs
          in
          Some
            {
              s_section = section;
              s_samples = List.length pairs;
              s_scale = scale;
              s_err_before = mean before;
              s_err_after = mean after;
            }
    in
    let fits = List.filter_map per_section sections in
    let weighted sel =
      mean
        (List.concat_map
           (fun f -> List.init f.s_samples (fun _ -> sel f))
           fits)
    in
    let scales = List.map (fun f -> (f.s_section, f.s_scale)) fits in
    let constants = apply_scales base scales in
    let provenance =
      {
        p_runs = List.length contributing;
        p_skipped = 0;
        p_base = Cost_model.fingerprint base;
        p_err_before = weighted (fun f -> f.s_err_before);
        p_err_after = weighted (fun f -> f.s_err_after);
        p_sections = fits;
      }
    in
    Ok (make ~provenance constants)
  end

let fit_snapshots ?base ~dir () =
  let snapshots, skipped = Arb_obs.Snapshot.load ~dir in
  let runs =
    List.map
      (fun s -> samples_of_registry (Arb_obs.Snapshot.registry s))
      snapshots
  in
  match fit ?base ~runs () with
  | Error _ when snapshots = [] ->
      Error
        (Printf.sprintf "no snapshots in %s (write some with --snapshots)" dir)
  | Error m -> Error m
  | Ok t ->
      Ok { t with provenance = { t.provenance with p_skipped = skipped } }
