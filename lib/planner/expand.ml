type domain = D_enc | D_shares of int

type ctx = {
  n_devices : int;
  cols : int;
  crypto : Plan.crypto;
  bins : int option; (* secrecy-of-the-sample bin count for this candidate *)
  cm : Cost_model.t;
  redundant_boundaries : bool;
  tolerance : float option;
      (* analyst error tolerance; None = exact variants only, so the
         enumeration (not just the winner) is unchanged without one *)
}

type choice = {
  label : string;
  vignettes : Plan.vignette list;
  domain_after : domain;
  needs_fhe : bool;
  em_variant : [ `Gumbel | `Exponentiate | `Sketch | `None ];
}

let slots ctx = (Cost_model.ring_for ctx.cm ctx.crypto ~cols:ctx.cols).Cost_model.ring_n

let cts_for ctx cols = max 1 ((cols + slots ctx - 1) / slots ctx)

let vign loc work = { Plan.location = loc; work }

let simple ?(needs_fhe = false) ?(em = `None) label vignettes domain_after =
  { label; vignettes; domain_after; needs_fhe; em_variant = em }

(* Chunk sizes considered when spreading per-category committee work; the
   paper's plans go as fine as one category per committee (Fig. 5). *)
let chunk_options cols = List.filter (fun k -> k <= max 1 cols) [ 1; 4; 16; 64; 256; 1024; 4096 ]

(* Sum-tree fanouts (§4.3). *)
let fanout_options = [ 16; 64; 256; 1024 ]

(* Argmax tournament fanouts. *)
let argmax_fanouts = [ 2; 4; 8; 16; 64 ]

(* Approximate-variant shape options (only enumerated under a tolerance):
   Count-Min widths for the sketch EM variant, coarse-bucket counts for the
   quantile scan. *)
let sketch_widths = [ 64; 256; 1024 ]
let sketch_depth = 3
let coarsen_groups = [ 64; 256 ]

let ceil_div a b = (a + b - 1) / b

(* Committees for a tournament reduction over [n] values with fanout [f]:
   levels of ceil(n/f), until one value remains. *)
let tree_levels n f =
  let rec go n acc =
    if n <= 1 then List.rev acc
    else
      let nodes = ceil_div n f in
      go nodes (nodes :: acc)
  in
  go n []

let decrypt_vignettes ctx ~count ~chunk =
  let committees = ceil_div count chunk in
  let cts = max 1 (ceil_div chunk (slots ctx)) in
  [ vign (Plan.Committees committees) (Plan.W_mpc_decrypt { crypto = ctx.crypto; cts }) ]

(* Reach the shared domain with a given chunking, from wherever we are. *)
let to_shares ctx domain ~count ~chunk =
  match domain with
  | D_shares k when k = chunk -> []
  | D_shares _ | D_enc -> decrypt_vignettes ctx ~count ~chunk
(* A re-chunk from shares is modeled as a fresh decrypt-free reshare; we
   conservatively charge it like a decrypt round only when coming from
   ciphertexts. From shares with a different chunk we charge nothing extra
   here: the VSR hand-off inside the next MPC vignette covers it. *)

let prefix ctx ~sampled_bins =
  let bins = Option.value sampled_bins ~default:1 in
  let row_cols = ctx.cols * bins in
  let cts = cts_for ctx row_cols in
  let zk_constraints = 3 * row_cols in
  [
    vign (Plan.Committees 1) (Plan.W_zk_setup { constraints = min 100_000 zk_constraints });
    vign (Plan.Committees 1) (Plan.W_keygen ctx.crypto);
    vign Plan.Participants
      (Plan.W_encrypt_input { crypto = ctx.crypto; cts_per_device = cts; zk_constraints });
    vign Plan.Aggregator (Plan.W_verify_inputs { devices = ctx.n_devices });
  ]

let sampled_bins_options ops =
  let sampled =
    List.exists
      (function Extract.A_sum { sampled_phi = Some _; _ } -> true | _ -> false)
      ops
  in
  if sampled then [ Some 4; Some 8; Some 16 ] else [ None ]

(* --- per-operator choices --- *)

let sum_choices ctx ~cols ~sampled =
  let cts = cts_for ctx (cols * match sampled with Some b -> b | None -> 1) in
  let agg =
    simple "sum:aggregator"
      [ vign Plan.Aggregator (Plan.W_he_sum { crypto = ctx.crypto; cts; inputs = ctx.n_devices }) ]
      D_enc
  in
  let trees =
    List.map
      (fun f ->
        let levels = tree_levels ctx.n_devices f in
        let vs =
          List.map
            (fun nodes ->
              vign (Plan.Committees nodes)
                (Plan.W_he_sum { crypto = ctx.crypto; cts; inputs = f }))
            levels
        in
        simple (Printf.sprintf "sum:tree(%d)" f) vs D_enc)
      fanout_options
  in
  let unmask_choices base =
    match sampled with
    | None -> [ base ]
    | Some bins ->
        (* Secrecy of the sample: after summing, only the bins inside the
           committee's secret window may be decrypted. Either the window
           mask is applied homomorphically (ciphertext-by-ciphertext
           multiply -> FHE), or all bins are decrypted into an MPC that
           masks on shares (AHE suffices). *)
        let fhe_mask =
          {
            base with
            label = base.label ^ "+fheMask";
            vignettes =
              base.vignettes
              @ [
                  vign (Plan.Committees 1)
                    (Plan.W_he_affine
                       { crypto = Plan.Fhe; cts = cts_for ctx (ctx.cols * bins);
                         muls = 1; adds = 1 });
                ];
            needs_fhe = true;
            domain_after = D_enc;
          }
        in
        let mpc_mask =
          {
            base with
            label = base.label ^ "+mpcMask";
            vignettes =
              base.vignettes
              @ decrypt_vignettes ctx ~count:(ctx.cols * bins) ~chunk:(ctx.cols * bins)
              @ [
                  vign (Plan.Committees 1)
                    (Plan.W_mpc_affine { elements = ctx.cols * bins });
                ];
            domain_after = D_shares (ctx.cols * bins);
          }
        in
        [ fhe_mask; mpc_mask ]
  in
  List.concat_map unmask_choices (agg :: trees)

let scan_choices ctx domain ~cols =
  let enc_rotate =
    match domain with
    | D_enc ->
        [
          simple "scan:heRotate"
            [
              vign Plan.Aggregator
                (Plan.W_he_rotate_sum
                   { crypto = ctx.crypto; cts = cts_for ctx cols; rotations = min cols (slots ctx) });
            ]
            D_enc;
        ]
    | D_shares _ -> []
  in
  let mpc =
    List.map
      (fun chunk ->
        let committees = ceil_div cols chunk in
        simple
          (Printf.sprintf "scan:mpc(%d)" chunk)
          (to_shares ctx domain ~count:cols ~chunk
          @ [ vign (Plan.Committees committees) (Plan.W_mpc_scan { elements = chunk }) ])
          (D_shares chunk))
      (chunk_options cols)
  in
  (* Under a tolerance: coarsen the encrypted histogram into a few buckets
     first, then scan only those — a rank query loses at most one bucket
     (est_error 1/groups, priced on the W_he_coarsen vignette). *)
  let coarsen =
    match (ctx.tolerance, domain) with
    | Some _, D_enc ->
        List.filter_map
          (fun groups ->
            if groups >= cols then None
            else
              Some
                (simple
                   (Printf.sprintf "scan:coarsen(%d)" groups)
                   ((vign Plan.Aggregator
                       (Plan.W_he_coarsen
                          { crypto = ctx.crypto; cts = cts_for ctx cols; groups })
                    :: decrypt_vignettes ctx ~count:groups ~chunk:groups)
                   @ [ vign (Plan.Committees 1) (Plan.W_mpc_scan { elements = groups }) ])
                   (D_shares groups)))
          coarsen_groups
    | _ -> []
  in
  enc_rotate @ mpc @ coarsen

let affine_choices ctx domain ~cols =
  let enc =
    match domain with
    | D_enc ->
        [
          simple "affine:he"
            [
              vign Plan.Aggregator
                (Plan.W_he_affine
                   { crypto = ctx.crypto; cts = cts_for ctx cols; muls = 1; adds = 1 });
            ]
            D_enc;
        ]
    | D_shares _ -> []
  in
  let mpc =
    List.map
      (fun chunk ->
        let committees = ceil_div cols chunk in
        simple
          (Printf.sprintf "affine:mpc(%d)" chunk)
          (to_shares ctx domain ~count:cols ~chunk
          @ [ vign (Plan.Committees committees) (Plan.W_mpc_affine { elements = chunk }) ])
          (D_shares chunk))
      (chunk_options cols)
  in
  enc @ mpc

let nonlinear_choices ctx domain ~cols =
  let fhe =
    (* Comparisons evaluated homomorphically: possible but very expensive
       (deep circuits), and it forces the FHE profile. Priced as a heavy
       affine batch. *)
    match domain with
    | D_enc ->
        [
          {
            (simple "nonlinear:fhe"
               [
                 vign Plan.Aggregator
                   (Plan.W_he_affine
                      { crypto = Plan.Fhe; cts = cts_for ctx cols;
                        muls = 48; adds = 48 });
               ]
               D_enc)
            with
            needs_fhe = true;
          };
        ]
    | D_shares _ -> []
  in
  let mpc =
    List.map
      (fun chunk ->
        let committees = ceil_div cols chunk in
        simple
          (Printf.sprintf "nonlinear:mpc(%d)" chunk)
          (to_shares ctx domain ~count:cols ~chunk
          @ [ vign (Plan.Committees committees) (Plan.W_mpc_nonlinear { elements = chunk }) ])
          (D_shares chunk))
      (chunk_options cols)
  in
  fhe @ mpc

let laplace_choices ctx domain ~count =
  List.concat_map
    (fun chunk ->
      let committees = ceil_div count chunk in
      let noise k =
        vign (Plan.Committees committees) (Plan.W_mpc_noise { kind = k; count = chunk })
      in
      let release = vign (Plan.Committees 1) (Plan.W_mpc_output { values = count }) in
      let split =
        simple
          (Printf.sprintf "laplace:mpc(%d)" chunk)
          (to_shares ctx domain ~count ~chunk @ [ noise `Laplace; release ])
          (D_shares chunk)
      in
      (* §4.4's exception: let the decryption committee also do the
         noising (fused), saving a hand-off and halving the committee
         count — at the price of a higher per-member maximum. *)
      match domain with
      | D_enc ->
          let cts = max 1 (ceil_div chunk (slots ctx)) in
          let fused =
            simple
              (Printf.sprintf "laplace:fused(%d)" chunk)
              [
                vign (Plan.Committees committees)
                  (Plan.W_mpc_decrypt_noise
                     { crypto = ctx.crypto; cts; kind = `Laplace; count = chunk });
                release;
              ]
              (D_shares chunk)
          in
          [ split; fused ]
      | D_shares _ -> [ split ])
    (chunk_options count)

let rec em_choices ctx domain ~cols ~gap ~rounds =
  let repeat (c : choice) =
    if rounds <= 1 then c
    else
      let mask =
        vign Plan.Aggregator
          (Plan.W_he_affine { crypto = ctx.crypto; cts = cts_for ctx cols; muls = 1; adds = 1 })
      in
      let rec build k acc =
        if k = 0 then acc
        else build (k - 1) (acc @ (mask :: c.vignettes))
      in
      {
        c with
        label = Printf.sprintf "%s x%d" c.label rounds;
        vignettes = build (rounds - 1) c.vignettes;
      }
  in
  List.map repeat (em_choices_once ctx domain ~cols ~gap)

and em_choices_once ctx domain ~cols ~gap =
  let gumbel =
    List.concat_map
      (fun dec_chunk ->
        List.concat_map
          (fun noise_chunk ->
            List.map
              (fun fanout ->
                let noise_committees = ceil_div cols noise_chunk in
                let levels = tree_levels cols fanout in
                let inputs_scale = if gap then 2 else 1 in
                let argmax_vs =
                  List.map
                    (fun nodes ->
                      vign (Plan.Committees nodes)
                        (Plan.W_mpc_argmax { inputs = fanout * inputs_scale }))
                    levels
                in
                {
                  (simple
                     (Printf.sprintf "em:gumbel(dec=%d,noise=%d,tree=%d)" dec_chunk
                        noise_chunk fanout)
                     (to_shares ctx domain ~count:cols ~chunk:dec_chunk
                     @ [
                         vign (Plan.Committees noise_committees)
                           (Plan.W_mpc_noise { kind = `Gumbel; count = noise_chunk });
                       ]
                     @ argmax_vs
                     @ [ vign (Plan.Committees 1) (Plan.W_mpc_output { values = if gap then 2 else 1 }) ])
                     (D_shares noise_chunk))
                  with
                  em_variant = `Gumbel;
                })
              argmax_fanouts)
          (chunk_options cols))
      (chunk_options cols)
  in
  let exponentiate =
    List.concat_map
      (fun dec_chunk ->
        List.concat_map
          (fun exp_chunk ->
            let exp_committees = ceil_div cols exp_chunk in
            let max_tree =
              List.map
                (fun nodes ->
                  vign (Plan.Committees nodes) (Plan.W_mpc_argmax { inputs = 8 }))
                (tree_levels cols 8)
            in
            let sum_tree =
              List.map
                (fun nodes ->
                  vign (Plan.Committees nodes) (Plan.W_mpc_affine { elements = 64 }))
                (tree_levels cols 64)
            in
            let sample_variants =
              [
                ( "scan",
                  [ vign (Plan.Committees 1) (Plan.W_mpc_sample_index { inputs = cols }) ] );
                ( "descend",
                  List.map
                    (fun _ ->
                      vign (Plan.Committees 1) (Plan.W_mpc_sample_index { inputs = 64 }))
                    (tree_levels cols 64) );
              ]
            in
            List.map
              (fun (sname, sample_vs) ->
                {
                  (simple
                     (Printf.sprintf "em:exp(dec=%d,exp=%d,sample=%s)" dec_chunk
                        exp_chunk sname)
                     (to_shares ctx domain ~count:cols ~chunk:dec_chunk
                     @ max_tree
                     @ [
                         vign (Plan.Committees exp_committees)
                           (Plan.W_mpc_exp { count = exp_chunk });
                       ]
                     @ sum_tree @ sample_vs
                     @ [ vign (Plan.Committees 1) (Plan.W_mpc_output { values = if gap then 2 else 1 }) ])
                     (D_shares exp_chunk))
                  with
                  em_variant = `Exponentiate;
                })
              sample_variants)
          (chunk_options cols))
      (chunk_options cols)
  in
  (* Under a tolerance: project the encrypted histogram into a Count-Min
     sketch (public HE work — CMS is linear), then decrypt + Laplace-noise
     only depth x width counters instead of running the full EM machinery
     over every category. The argmax over noisy min-estimates happens in
     cleartext postprocessing (report-noisy-max). *)
  let sketch =
    match (ctx.tolerance, domain) with
    | Some _, D_enc ->
        List.filter_map
          (fun width ->
            if width >= cols then None
            else
              let counters = sketch_depth * width in
              let cts = max 1 (ceil_div counters (slots ctx)) in
              Some
                {
                  (simple
                     (Printf.sprintf "em:sketch(%dx%d)" sketch_depth width)
                     [
                       vign Plan.Aggregator
                         (Plan.W_he_sketch
                            { crypto = ctx.crypto; cts = cts_for ctx cols;
                              width; depth = sketch_depth });
                       vign (Plan.Committees 1)
                         (Plan.W_mpc_decrypt_noise
                            { crypto = ctx.crypto; cts; kind = `Laplace;
                              count = counters });
                       vign (Plan.Committees 1)
                         (Plan.W_mpc_output { values = counters });
                       vign Plan.Aggregator
                         (Plan.W_post { flops = counters + cols });
                     ]
                     (D_shares counters))
                  with
                  em_variant = `Sketch;
                })
          sketch_widths
    | _ -> []
  in
  gumbel @ exponentiate @ sketch

let mask_choices ctx ~cols =
  [
    simple "mask:he"
      [
        vign Plan.Aggregator
          (Plan.W_he_affine { crypto = ctx.crypto; cts = cts_for ctx cols; muls = 1; adds = 1 });
      ]
      D_enc;
  ]

let post_choices ~flops =
  [ simple "post" [ vign Plan.Aggregator (Plan.W_post { flops = max 1 flops }) ] D_enc ]

let choices ctx domain (op : Extract.aop) =
  let cs =
    match op with
    | Extract.A_sum { cols; sampled_phi } ->
        let sampled =
          match sampled_phi with
          | None -> None
          | Some _ -> Some (Option.value ctx.bins ~default:8)
        in
        sum_choices ctx ~cols ~sampled
    | A_scan { cols } -> scan_choices ctx domain ~cols
    | A_affine { cols } -> affine_choices ctx domain ~cols
    | A_nonlinear { cols } -> nonlinear_choices ctx domain ~cols
    | A_laplace { count } -> laplace_choices ctx domain ~count
    | A_em { cols; gap; rounds } -> em_choices ctx domain ~cols ~gap ~rounds
    | A_mask { cols } -> mask_choices ctx ~cols
    | A_post { flops; _ } -> post_choices ~flops
  in
  if not ctx.redundant_boundaries then cs
  else
    (* Heuristics-off ablation (§7.3): also enumerate equivalent
       re-segmentations of every choice — each vignette list split at every
       possible boundary — mimicking a search without the vignette-merging
       rules. The plans are semantically identical, so this only inflates
       the space. *)
    List.concat_map
      (fun c ->
        let n = List.length c.vignettes in
        List.init (max 1 n) (fun i ->
            { c with label = Printf.sprintf "%s/seg%d" c.label i }))
      cs
