(** The planner's search (§4.3–§4.6): enumerate candidate plans operator by
    operator with branch-and-bound, score with the cost model, re-solve the
    committee size for each complete candidate, and keep the best plan that
    satisfies the analyst's limits.

    Pricing is incremental: each DFS node folds only its delta vignettes
    into the running {!Cost_model.partial} for the prefix, so root→leaf
    work is linear in depth rather than quadratic; complete candidates get
    one full re-pricing pass at the true committee size m (only known once
    the plan's total committee count is).

    Pruning follows §4.4/§7.3 and is admissible: prefix bounds are priced
    with the c = 1 committee size — a lower bound on the size any completed
    plan is priced with, since the minimal safe m is monotone in the
    committee count — so a prefix is discarded only when no completion can
    beat the incumbent or satisfy a limit. Disabling [heuristics] removes
    both pruning rules and enumerates redundant re-segmentations,
    reproducing the §7.3 ablation blowup; because the bound is admissible,
    both settings find the same optimum.

    The outer (crypto × sampled-bins) tasks are independent and can be
    fanned out across OCaml domains with [~domains]. Tasks share only a
    monotone atomic incumbent (cross-domain pruning); results are merged in
    canonical task order with strict comparisons, so the winning plan and
    its metrics are byte-identical to the sequential search regardless of
    domain scheduling (DESIGN.md §7). *)

type stats = {
  prefixes : int;  (** plan prefixes considered (§7.3), summed over tasks *)
  full_plans : int;  (** complete candidates scored *)
  pruned : int;
  elapsed : float;  (** seconds spent planning *)
  aborted : bool;  (** some task hit the exploration cap before finishing *)
}

type result = {
  plan : Plan.t option;  (** [None] when no candidate satisfies the limits *)
  metrics : Cost_model.metrics option;
  alternatives : (Plan.t * Cost_model.metrics) list;
      (** a ranked sample of the feasible design space: the winner plus up
          to four runners-up, deduplicated on plan identity. Under pruning
          the runners-up are best-effort — which non-winning candidates get
          fully scored depends on when the shared incumbent arrives, so
          with [domains > 1] they may vary between runs; they are exact and
          deterministic with [heuristics:false] (no pruning) or
          [domains:1]. The winner itself is always deterministic. *)
  stats : stats;
}

val plan :
  ?cm:Cost_model.t ->
  ?limits:Constraints.limits ->
  ?goal:Constraints.goal ->
  ?heuristics:bool ->
  ?max_prefixes:int ->
  ?domains:int ->
  ?incremental:bool ->
  ?f:float ->
  ?g:float ->
  ?p1:float ->
  ?tracer:Arb_obs.Tracer.t ->
  ?metrics:Arb_obs.Metrics.t ->
  query:Arb_queries.Registry.query ->
  n:int ->
  unit ->
  result
(** Defaults: the §7 setting — [limits] = {!Constraints.evaluation_limits},
    [goal] = minimize expected participant time, f = 3%, g = 0.15,
    p1 from 1e-8 over 1000 queries, heuristics on, 5M-prefix cap (per
    task). [domains] (default 1) is the number of OCaml domains searching
    (crypto × sampled-bins) tasks concurrently; the winning plan and
    metrics are identical for every value. [incremental] (default true)
    selects delta pricing; [false] re-prices the whole prefix at every
    node — the pre-optimization behavior, kept for the planner_scaling
    benchmark.

    [tracer] records a plan → search → expand → price span tree: one
    "search" span per (crypto × bins) task carrying its node/prune/memo
    counters as args, one "expand"/"price" span pair per choice-memo miss
    (so span count is bounded by the memo, not the node count). Each task
    writes to a {!Arb_obs.Tracer.child} grafted back in canonical task
    order, so the trace does not depend on worker scheduling. [metrics]
    receives [arb_planner_*] counters (nodes, pruned, plans, memo hit/miss,
    pricing calls, per-depth nodes) plus — unless the tracer is
    deterministic, which suppresses all wall-clock readings — per-depth and
    scoring seconds, per-worker utilization, and a planning-latency
    histogram. Note that with [domains > 1] the node/prune/memo counts
    themselves can vary slightly between runs (the shared incumbent's
    arrival order affects pruning); they are exactly reproducible at
    [domains:1]. *)

val committee_size_for : ?f:float -> ?g:float -> ?p1:float -> int -> int
(** Memoized {!Arb_dp.Committee.min_size} keyed by committee count.
    Domain-safe: the cache is mutex-protected. *)
