module U = Arb_util.Units

let location_string = function
  | Plan.Aggregator -> "aggregator"
  | Plan.Participants -> "participants"
  | Plan.Committees 1 -> "committee"
  | Plan.Committees k -> Printf.sprintf "%d committees" k

let vignette_table ~cm ~n_devices ~cols (p : Plan.t) =
  let rows =
    List.map
      (fun (v : Plan.vignette) ->
        let c =
          Cost_model.price cm ~n_devices ~m:p.Plan.committee_size ~cols v
        in
        let member =
          if c.Cost_model.c_instances = 0 then "-"
          else
            Printf.sprintf "%s / %s"
              (U.seconds_to_string c.Cost_model.c_member_time)
              (U.bytes_to_string c.Cost_model.c_member_bytes)
        in
        let agg =
          if c.Cost_model.c_agg_time = 0.0 && c.Cost_model.c_agg_bytes = 0.0 then "-"
          else
            Printf.sprintf "%s / %s"
              (U.seconds_to_string c.Cost_model.c_agg_time)
              (U.bytes_to_string c.Cost_model.c_agg_bytes)
        in
        let everyone =
          if c.Cost_model.c_all_time = 0.0 then "-"
          else
            Printf.sprintf "%s / %s"
              (U.seconds_to_string c.Cost_model.c_all_time)
              (U.bytes_to_string c.Cost_model.c_all_bytes)
        in
        [ location_string v.Plan.location; Plan.describe_work v.Plan.work;
          agg; everyone; member ])
      p.Plan.vignettes
  in
  Arb_util.Table.render
    ~header:[ "Where"; "Operation"; "Aggregator t/B"; "Every device t/B";
              "Per member t/B" ]
    rows

let em_string = function
  | `Gumbel -> "gumbel"
  | `Exponentiate -> "exponentiate"
  | `Sketch -> "sketch"
  | `None -> "-"

(* Describe the approximate variant chosen, if any; "" for exact plans so
   their explanation is unchanged. *)
let approx_string (p : Plan.t) (m : Cost_model.metrics) =
  let parts =
    (match p.Plan.device_sample with
    | None -> []
    | Some phi -> [ Printf.sprintf "device sample %g" phi ])
    @
    match p.Plan.em_variant with
    | `Sketch -> [ "count-min sketch" ]
    | _ ->
        if
          m.Cost_model.est_error > 0.0
          && List.exists
               (fun (v : Plan.vignette) ->
                 match v.Plan.work with Plan.W_he_coarsen _ -> true | _ -> false)
               p.Plan.vignettes
        then [ "coarsened scan" ]
        else []
  in
  if m.Cost_model.est_error <= 0.0 && parts = [] then ""
  else
    Format.asprintf "  approximate: %s, est. relative error %.3g@."
      (match parts with [] -> "-" | _ -> String.concat " + " parts)
      m.Cost_model.est_error

let summary (p : Plan.t) (m : Cost_model.metrics) =
  Format.asprintf
    "plan for %s: %s, %d committees of %d members, em = %s@.  aggregator: %s compute, %s sent@.  participant (expected): %s compute, %s sent@.  participant (worst case): %s compute, %s sent@."
    p.Plan.query
    (Plan.crypto_name p.Plan.crypto)
    p.Plan.committee_count p.Plan.committee_size
    (em_string p.Plan.em_variant)
    (U.seconds_to_string m.Cost_model.agg_time)
    (U.bytes_to_string m.Cost_model.agg_bytes)
    (U.seconds_to_string m.Cost_model.part_exp_time)
    (U.bytes_to_string m.Cost_model.part_exp_bytes)
    (U.seconds_to_string m.Cost_model.part_max_time)
    (U.bytes_to_string m.Cost_model.part_max_bytes)
  ^ approx_string p m

let alternatives_table alts =
  match alts with
  | [] | [ _ ] -> ""
  | _ ->
      let rows =
        List.mapi
          (fun i ((p : Plan.t), (m : Cost_model.metrics)) ->
            [ (if i = 0 then "winner" else Printf.sprintf "#%d" (i + 1));
              Plan.crypto_name p.Plan.crypto;
              string_of_int p.Plan.committee_count;
              (* exact rows render exactly as before the approx dimension *)
              (em_string p.Plan.em_variant
              ^
              match p.Plan.device_sample with
              | None -> ""
              | Some phi -> Printf.sprintf " @%g" phi);
              U.seconds_to_string m.Cost_model.part_exp_time;
              U.seconds_to_string m.Cost_model.part_max_time;
              U.seconds_to_string m.Cost_model.agg_time ])
          alts
      in
      "ranked design-space sample:\n"
      ^ Arb_util.Table.render
          ~header:[ ""; "Crypto"; "Committees"; "em"; "Exp part t"; "Max part t";
                    "Agg t" ]
          rows

let full ~cm ~n_devices ~cols p m alts =
  summary p m
  ^ vignette_table ~cm ~n_devices ~cols p
  ^ alternatives_table alts
