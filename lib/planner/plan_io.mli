(** Plan (de)serialization.

    A chosen plan travels inside the query authorization certificate and
    can be archived/replayed by the CLI ([arb plan --json]); round-tripping
    is property-tested. *)

val plan_to_json : Plan.t -> Arb_util.Json.t
val plan_of_json : Arb_util.Json.t -> Plan.t
(** Raises [Arb_util.Json.Parse_error] on malformed input. *)

val metrics_to_json : Cost_model.metrics -> Arb_util.Json.t
val metrics_of_json : Arb_util.Json.t -> Cost_model.metrics

val plan_to_string : ?pretty:bool -> Plan.t -> string
val plan_of_string : string -> Plan.t

(** {2 Versioned file persistence}

    Plans written to disk carry a [formatVersion] field so stale or foreign
    files are rejected with a reason instead of a crash — the service's
    on-disk plan cache (and any external tooling) must survive format
    evolution. *)

val format_version : int
(** The version stamped into every file this build writes. *)

val save_versioned : string -> (string * Arb_util.Json.t) list -> unit
(** Write a JSON object with [formatVersion] prepended to the given fields.
    Raises [Sys_error] when the path is not writable. *)

val load_versioned : string -> (Arb_util.Json.t, string) result
(** Read a file written by {!save_versioned}: [Error] (never an exception)
    on an unreadable path, malformed JSON, or a version mismatch. *)

val save_plan : string -> Plan.t -> unit
(** Persist one plan. Raises [Sys_error] when the path is not writable. *)

val load_plan : string -> (Plan.t, string) result
(** Load a plan persisted by {!save_plan}; [Error] on unreadable, malformed
    or version-mismatched files. *)
