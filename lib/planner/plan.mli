(** Query-plan intermediate representation: vignettes (§4.4).

    A plan is a sequence of vignettes — short computation segments, each
    assigned to the aggregator, to (possibly many parallel) committees of
    participant devices, or to the participant devices themselves. A
    vignette that is data-parallel carries the number of parallel instances
    (e.g. one committee per category chunk for Gumbel noising, Fig. 5).

    The [work] payload is abstract enough for the cost model to price and
    concrete enough for the runtime to execute. *)

type crypto = Ahe | Fhe

type location =
  | Aggregator
  | Committees of int  (** this many parallel committee instances *)
  | Participants  (** every device, in parallel (e.g. input encryption) *)

type work =
  | W_keygen of crypto  (** DKG + query authorization certificate (§5.2) *)
  | W_zk_setup of { constraints : int }  (** Groth16 trusted setup (§6) *)
  | W_encrypt_input of {
      crypto : crypto;
      cts_per_device : int;
      zk_constraints : int;
    }  (** each device encrypts its row and attaches a ZKP (§5.3) *)
  | W_verify_inputs of { devices : int }
      (** aggregator checks one proof per device *)
  | W_he_sum of {
      crypto : crypto;
      cts : int;  (** ciphertexts per input *)
      inputs : int;  (** how many encrypted inputs this instance sums *)
    }
  | W_he_affine of { crypto : crypto; cts : int; muls : int; adds : int }
      (** public-coefficient linear map on ciphertexts *)
  | W_he_rotate_sum of { crypto : crypto; cts : int; rotations : int }
      (** slot-wise prefix/suffix sums via rotations *)
  | W_he_sketch of { crypto : crypto; cts : int; width : int; depth : int }
      (** Count-Min projection of the encrypted histogram into depth x width
          counters (public HE work — CMS is linear); point estimates are
          within e/width of the true relative mass *)
  | W_he_coarsen of { crypto : crypto; cts : int; groups : int }
      (** fold the encrypted histogram into [groups] coarse buckets by
          rotate-and-add; rank queries lose at most 1/groups *)
  | W_mpc_decrypt of { crypto : crypto; cts : int }
      (** threshold decryption of [cts] ciphertexts into shares *)
  | W_mpc_decrypt_noise of {
      crypto : crypto;
      cts : int;
      kind : [ `Gumbel | `Laplace ];
      count : int;
    }
      (** the §4.4 exception: consecutive committee vignettes fused — the
          same committee decrypts and noises, saving a VSR hand-off and a
          committee from the count *)
  | W_mpc_affine of { elements : int }
  | W_mpc_scan of { elements : int }
  | W_mpc_nonlinear of { elements : int }
      (** per-element comparison/abs work on shares *)
  | W_mpc_noise of { kind : [ `Gumbel | `Laplace ]; count : int }
  | W_mpc_argmax of { inputs : int }
      (** one round of an argmax tournament over [inputs] shared values *)
  | W_mpc_exp of { count : int }
      (** base-2 exponentiations for the em-exponentiate variant *)
  | W_mpc_sample_index of { inputs : int }
      (** draw r and scan prefix intervals (Fig. 4 left, second half) *)
  | W_mpc_output of { values : int }  (** reconstruct and release (§5.5) *)
  | W_post of { flops : int }  (** cleartext postprocessing on public data *)

type vignette = { location : location; work : work }

type t = {
  query : string;
  crypto : crypto;
  vignettes : vignette list;
  (* Derived when the plan is completed: *)
  sample_bins : int option;  (** secrecy-of-the-sample bin count (§6), when the query samples *)
  device_sample : float option;
      (** Bernoulli device-sampling rate phi in (0,1); [None] = every
          device participates (exact). Sampling amplifies privacy: the
          charged epsilon shrinks (see {!Arb_dp.Budget.amplify}). *)
  committee_count : int;  (** total committees across all vignettes *)
  committee_size : int;  (** minimum m for this plan's committee count *)
  em_variant : [ `Gumbel | `Exponentiate | `Sketch | `None ];
}

val committee_count : vignette list -> int
(** Total parallel committee instances across the vignettes (the [c] that
    drives committee sizing, §5.1). *)

val crypto_name : crypto -> string
val describe_work : work -> string
val pp : Format.formatter -> t -> unit
