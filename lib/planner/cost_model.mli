(** The planner's cost model (§4.6, §6).

    Built the way the paper builds it: benchmark each building block once on
    a reference platform, then score a candidate plan by summing the
    per-operation costs. The calibration constants below are anchored to
    the building-block numbers the paper reports for its reference cluster
    (PowerEdge R430) — e.g. a 42-member Gumbel-noise MPC at 73.8 s, a
    key-generation committee at ~700 MB and ~14 min, G16 verification at a
    few ms — and to our own substrate's relative op costs; [calibrate]
    re-derives the relative constants by microbenchmarking this machine's
    BGV/NTT/MPC substrate (DESIGN.md §1).

    The model does not predict exact costs; it orders candidates (§4.6). *)

type metrics = {
  agg_time : float;  (** aggregator compute, single-core seconds *)
  agg_bytes : float;  (** bytes sent by the aggregator (incl. forwarding) *)
  part_exp_time : float;  (** expected per-participant compute, seconds *)
  part_max_time : float;  (** worst-case per-participant compute *)
  part_exp_bytes : float;  (** expected per-participant bytes sent *)
  part_max_bytes : float;  (** worst-case per-participant bytes sent *)
  est_error : float;
      (** estimated relative error introduced by approximation (device
          sampling, sketch operators); exactly 0.0 for exact plans *)
}

val zero_metrics : metrics
val pp_metrics : Format.formatter -> metrics -> unit

(** How a single vignette loads each actor; combined across a plan by
    {!combine} (committee-member maxima do not add — a device serves on at
    most one committee, §5.1). *)
type contribution = {
  c_agg_time : float;
  c_agg_bytes : float;
  c_all_time : float;  (** paid by every device *)
  c_all_bytes : float;
  c_member_time : float;  (** paid by each member of each instance *)
  c_member_bytes : float;
  c_instances : int;  (** parallel committee instances (0 if none) *)
  c_members : int;  (** members per instance: m for MPC, 2 for replicated HE *)
  c_kind : [ `Keygen | `Decryption | `Operations | `Base ];
      (** committee type for the Fig. 7 breakdown *)
  c_est_error : float;
      (** relative error this vignette introduces (sketch width/coarsening
          bounds); 0.0 for exact operators *)
}

type ring = {
  ring_n : int;  (** polynomial degree at deployment scale *)
  ct_bytes : float;
  pk_bytes : float;
}

(** The calibration constants. The record is exposed so the calibration
    fitter ({!Calibration}) can scale groups of constants from observed
    residuals and tests can plant known values; almost every caller should
    still treat a [t] as opaque and obtain one from {!default},
    {!calibrate}, or a fitted {!Calibration.t}. *)
type t = {
  felt_bytes : float;  (** serialized field element (135-bit modulus) *)
  he_add_ref : float;  (** s per ciphertext addition at n = 2^15 *)
  he_mul_plain_ref : float;
  he_rotate_ref : float;
  he_encrypt_ref : float;
  zk_prove_per_constraint : float;  (** device seconds per R1CS constraint *)
  zk_setup_per_constraint : float;  (** committee-member seconds *)
  zk_verify : float;
  proof_bytes : float;
  sig_time : float;  (** device signature for sortition *)
  kg_coeff_time : float;  (** keygen s per ring coefficient at m = 42 *)
  kg_coeff_bytes : float;
  dec_coeff_time : float;  (** threshold-decrypt s per coefficient at m = 42 *)
  gumbel_unit_time : float;  (** s per member per party per sample *)
  gumbel_unit_bytes : float;
  laplace_unit_time : float;
  laplace_unit_bytes : float;
  cmp_time_ref : float;  (** comparison at m = 42, after triples exist *)
  cmp_bytes_ref : float;
  triple_setup_time : float;  (** first-comparison surcharge (§6) *)
  triple_setup_bytes : float;
  exp_time_ref : float;
  exp_bytes_ref : float;
  share_op_time : float;  (** local linear op on shares *)
  vsr_overhead_bytes : float;  (** per member per MPC vignette hand-off *)
  round_latency : float;
  device_factor : float;  (** participant device vs reference server core *)
  post_flop : float;
  audit_bytes : float;  (** per-device certificate download + MHT challenges *)
  audit_time : float;
}

val default : t

val to_json : t -> Arb_util.Json.t
(** Canonical JSON object over every constant (field names as keys). *)

val of_json : Arb_util.Json.t -> (t, string) result
(** Inverse of {!to_json}; every field is required. *)

val fingerprint : t -> string
(** SHA-256 hex of the canonical constants JSON — the content identity a
    calibration install propagates to plan caches and continual sessions.
    Deterministic: two models with equal constants share a fingerprint. *)

val section_costs :
  t ->
  n_devices:int ->
  m:int ->
  cols:int ->
  Plan.vignette list ->
  (string * float) list
(** Predicted cost per calibration section, attributed the way the runtime
    measures it (one engine per committee kind; fused decrypt+noise
    vignettes split between the decryption and operations sections):
    [keygen_time]/[keygen_bytes], [decrypt_time], [ops_time]/[ops_bytes]
    (per-member seconds and bytes at committee size [m]), and
    [upload_bytes] (per device). Sections are emitted in that fixed order,
    zeros included. *)

val calibrate : unit -> t
(** Microbenchmark this machine's substrate to refresh the relative
    constants (used by the bench harness; takes a few seconds). *)

val ring_for : t -> Plan.crypto -> cols:int -> ring
(** Deployment-scale BGV parameters for a query with [cols] categories:
    ring degree 2^12..2^15 (enough slots, 2^15 cap with multiple
    ciphertexts beyond that), ciphertext sizes matching the paper's
    reported parameters (135-bit modulus at degree 2^15). *)

val mpc_round_latency : t -> float
val device_factor : t -> float
(** How much slower a participant device is than a reference server core. *)

val price :
  t ->
  n_devices:int ->
  m:int ->
  cols:int ->
  Plan.vignette ->
  contribution
(** Price one vignette for a deployment of [n_devices], committee size [m]
    and a query over [cols] categories. *)

val pricing_calls : unit -> int
(** Process-wide count of {!price} invocations (atomic, monotone). The
    observability layer meters planner work as deltas of this odometer. *)

type partial
(** Running aggregate of {!contribution}s — a commutative monoid (sums for
    the additive components, maxima for the per-member worst case). Seat
    weighting is kept unnormalized so a partial is independent of the
    deployment size until {!finalize}. The search prices each DFS node
    incrementally: it folds only the node's delta vignettes into the
    parent's partial instead of re-pricing the whole prefix. Every metric
    component is monotone under {!add_contribution} and in the committee
    size [m] used to price, so a partial priced at a lower-bound [m] over a
    plan prefix finalizes to a componentwise lower bound for every
    completion of that prefix. *)

val empty_partial : partial
val add_contribution : partial -> contribution -> partial
val combine_partial : partial -> partial -> partial
val partial_of_contributions : contribution list -> partial

val finalize : ?sample_phi:float -> n_devices:int -> partial -> metrics
(** Normalize the seat-weighted expected costs by the deployment size and
    add the member maxima to the worst-case components. [n_devices] is
    always the full population (sortition draws committees from everyone).
    [sample_phi], when given, is the device-sampling rate: it scales the
    every-device expected costs (a sampled-out device pays nothing) and
    adds the sampling term [2/sqrt(phi*n)] to [est_error]; the worst-case
    components are untouched — the unluckiest device is sampled in. *)

val combine : ?sample_phi:float -> n_devices:int -> contribution list -> metrics
(** [combine ?sample_phi ~n_devices cs =
     finalize ?sample_phi ~n_devices (partial_of_contributions cs)]. *)

val member_cost_by_kind :
  t ->
  n_devices:int ->
  m:int ->
  cols:int ->
  Plan.vignette list ->
  ([ `Keygen | `Decryption | `Operations | `Base ] * float * float) list
(** Per-committee-type (time, bytes) for a plan's committee vignettes —
    the series of Fig. 7. *)
