(** The planner's cost model (§4.6, §6).

    Built the way the paper builds it: benchmark each building block once on
    a reference platform, then score a candidate plan by summing the
    per-operation costs. The calibration constants below are anchored to
    the building-block numbers the paper reports for its reference cluster
    (PowerEdge R430) — e.g. a 42-member Gumbel-noise MPC at 73.8 s, a
    key-generation committee at ~700 MB and ~14 min, G16 verification at a
    few ms — and to our own substrate's relative op costs; [calibrate]
    re-derives the relative constants by microbenchmarking this machine's
    BGV/NTT/MPC substrate (DESIGN.md §1).

    The model does not predict exact costs; it orders candidates (§4.6). *)

type metrics = {
  agg_time : float;  (** aggregator compute, single-core seconds *)
  agg_bytes : float;  (** bytes sent by the aggregator (incl. forwarding) *)
  part_exp_time : float;  (** expected per-participant compute, seconds *)
  part_max_time : float;  (** worst-case per-participant compute *)
  part_exp_bytes : float;  (** expected per-participant bytes sent *)
  part_max_bytes : float;  (** worst-case per-participant bytes sent *)
}

val zero_metrics : metrics
val pp_metrics : Format.formatter -> metrics -> unit

(** How a single vignette loads each actor; combined across a plan by
    {!combine} (committee-member maxima do not add — a device serves on at
    most one committee, §5.1). *)
type contribution = {
  c_agg_time : float;
  c_agg_bytes : float;
  c_all_time : float;  (** paid by every device *)
  c_all_bytes : float;
  c_member_time : float;  (** paid by each member of each instance *)
  c_member_bytes : float;
  c_instances : int;  (** parallel committee instances (0 if none) *)
  c_members : int;  (** members per instance: m for MPC, 2 for replicated HE *)
  c_kind : [ `Keygen | `Decryption | `Operations | `Base ];
      (** committee type for the Fig. 7 breakdown *)
}

type ring = {
  ring_n : int;  (** polynomial degree at deployment scale *)
  ct_bytes : float;
  pk_bytes : float;
}

type t
(** Calibration. *)

val default : t
val calibrate : unit -> t
(** Microbenchmark this machine's substrate to refresh the relative
    constants (used by the bench harness; takes a few seconds). *)

val ring_for : t -> Plan.crypto -> cols:int -> ring
(** Deployment-scale BGV parameters for a query with [cols] categories:
    ring degree 2^12..2^15 (enough slots, 2^15 cap with multiple
    ciphertexts beyond that), ciphertext sizes matching the paper's
    reported parameters (135-bit modulus at degree 2^15). *)

val mpc_round_latency : t -> float
val device_factor : t -> float
(** How much slower a participant device is than a reference server core. *)

val price :
  t ->
  n_devices:int ->
  m:int ->
  cols:int ->
  Plan.vignette ->
  contribution
(** Price one vignette for a deployment of [n_devices], committee size [m]
    and a query over [cols] categories. *)

val pricing_calls : unit -> int
(** Process-wide count of {!price} invocations (atomic, monotone). The
    observability layer meters planner work as deltas of this odometer. *)

type partial
(** Running aggregate of {!contribution}s — a commutative monoid (sums for
    the additive components, maxima for the per-member worst case). Seat
    weighting is kept unnormalized so a partial is independent of the
    deployment size until {!finalize}. The search prices each DFS node
    incrementally: it folds only the node's delta vignettes into the
    parent's partial instead of re-pricing the whole prefix. Every metric
    component is monotone under {!add_contribution} and in the committee
    size [m] used to price, so a partial priced at a lower-bound [m] over a
    plan prefix finalizes to a componentwise lower bound for every
    completion of that prefix. *)

val empty_partial : partial
val add_contribution : partial -> contribution -> partial
val combine_partial : partial -> partial -> partial
val partial_of_contributions : contribution list -> partial

val finalize : n_devices:int -> partial -> metrics
(** Normalize the seat-weighted expected costs by the deployment size and
    add the member maxima to the worst-case components. *)

val combine : n_devices:int -> contribution list -> metrics
(** [combine ~n_devices cs = finalize ~n_devices (partial_of_contributions cs)]. *)

val member_cost_by_kind :
  t ->
  n_devices:int ->
  m:int ->
  cols:int ->
  Plan.vignette list ->
  ([ `Keygen | `Decryption | `Operations | `Base ] * float * float) list
(** Per-committee-type (time, bytes) for a plan's committee vignettes —
    the series of Fig. 7. *)
