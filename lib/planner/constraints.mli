(** Analyst-supplied optimization goals and limits (§4.2). *)

type goal =
  | Min_agg_time
  | Min_agg_bytes
  | Min_part_exp_time
  | Min_part_max_time
  | Min_part_exp_bytes
  | Min_part_max_bytes

type limits = {
  max_agg_time : float option;  (** single-core seconds *)
  max_agg_bytes : float option;
  max_part_exp_time : float option;
  max_part_max_time : float option;
  max_part_exp_bytes : float option;
  max_part_max_bytes : float option;
  max_est_error : float option;
      (** Error tolerance. [None] means "no tolerance supplied": only exact
          plans ([est_error = 0]) are admissible, keeping winners
          byte-identical to the exact-only planner. *)
}

val no_limits : limits

val evaluation_limits : limits
(** The §7.2 setting: participants send at most 4 GB and compute at most
    20 minutes; the aggregator spends at most 1,000 core-hours. *)

val with_agg_core_hours : limits -> float -> limits

val with_error_tolerance : limits -> float option -> limits
(** [with_error_tolerance l tol] sets the error tolerance: [Some t] admits
    plans whose [est_error] is at most [t]; [None] admits exact plans only. *)

val satisfies : limits -> Cost_model.metrics -> bool

val lower_bound_infeasible : limits -> Cost_model.metrics -> bool
(** [lower_bound_infeasible l bound] is true when [bound] — a componentwise
    lower bound on some candidate's final metrics — already violates a
    limit. Because every limit is an upper cap, no completion of that
    candidate can satisfy [l]: pruning on this predicate is admissible. *)

val goal_value : goal -> Cost_model.metrics -> float
val goal_name : goal -> string
