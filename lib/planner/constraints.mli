(** Analyst-supplied optimization goals and limits (§4.2). *)

type goal =
  | Min_agg_time
  | Min_agg_bytes
  | Min_part_exp_time
  | Min_part_max_time
  | Min_part_exp_bytes
  | Min_part_max_bytes

type limits = {
  max_agg_time : float option;  (** single-core seconds *)
  max_agg_bytes : float option;
  max_part_exp_time : float option;
  max_part_max_time : float option;
  max_part_exp_bytes : float option;
  max_part_max_bytes : float option;
}

val no_limits : limits

val evaluation_limits : limits
(** The §7.2 setting: participants send at most 4 GB and compute at most
    20 minutes; the aggregator spends at most 1,000 core-hours. *)

val with_agg_core_hours : limits -> float -> limits

val satisfies : limits -> Cost_model.metrics -> bool

val lower_bound_infeasible : limits -> Cost_model.metrics -> bool
(** [lower_bound_infeasible l bound] is true when [bound] — a componentwise
    lower bound on some candidate's final metrics — already violates a
    limit. Because every limit is an upper cap, no completion of that
    candidate can satisfy [l]: pruning on this predicate is admissible. *)

val goal_value : goal -> Cost_model.metrics -> float
val goal_name : goal -> string
