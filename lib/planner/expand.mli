(** Operator instantiation: the per-operator choice lists (§4.3–§4.5).

    Each abstract operator can be realized in several ways — a sum by an
    aggregator loop or by a device sum-tree of some fanout; an exponential
    mechanism by its Gumbel or exponentiation form; committee work split
    into chunks of different sizes; prefix scans homomorphically (slot
    rotations) or on shares. A choice also moves the data between the
    {e encrypted} domain (held by the aggregator) and the {e shared} domain
    (spread over committees in chunks), inserting threshold-decryption
    vignettes at the transition — the planner's version of the paper's
    encryption-type inference (§4.5). *)

type domain =
  | D_enc  (** data lives in ciphertexts at the aggregator *)
  | D_shares of int  (** data secret-shared across committees, chunk size *)

type ctx = {
  n_devices : int;
  cols : int;  (** total category count of the query *)
  crypto : Plan.crypto;  (** global cryptosystem under consideration *)
  bins : int option;  (** secrecy-of-the-sample bin count for this candidate *)
  cm : Cost_model.t;
  redundant_boundaries : bool;
      (** ablation: disable the §4.4 merging heuristics, inflating the
          space with equivalent re-segmentations *)
  tolerance : float option;
      (** analyst error tolerance; [None] disables the approximate variants
          entirely, so the enumeration is unchanged without one *)
}

type choice = {
  label : string;
  vignettes : Plan.vignette list;
  domain_after : domain;
  needs_fhe : bool;
  em_variant : [ `Gumbel | `Exponentiate | `Sketch | `None ];
}

val prefix : ctx -> sampled_bins:int option -> Plan.vignette list
(** The fixed plan prelude: ZK trusted setup, key generation, input
    encryption (+ per-device proofs), aggregator proof verification. *)

val choices : ctx -> domain -> Extract.aop -> choice list
(** All instantiations of one operator from a given domain state. The list
    is never empty for supported operators. *)

val sampled_bins_options : Extract.aop list -> int option list
(** Bin-count choices for secrecy-of-the-sample queries ([None] when the
    query does not sample). *)
