type metrics = {
  agg_time : float;
  agg_bytes : float;
  part_exp_time : float;
  part_max_time : float;
  part_exp_bytes : float;
  part_max_bytes : float;
  est_error : float;
      (* estimated relative error introduced by approximation (sampling,
         sketches); 0.0 for exact plans *)
}

let zero_metrics =
  {
    agg_time = 0.0;
    agg_bytes = 0.0;
    part_exp_time = 0.0;
    part_max_time = 0.0;
    part_exp_bytes = 0.0;
    part_max_bytes = 0.0;
    est_error = 0.0;
  }

let pp_metrics fmt m =
  Format.fprintf fmt
    "agg: %s / %s; participant exp: %s / %s, max: %s / %s%s"
    (Arb_util.Units.seconds_to_string m.agg_time)
    (Arb_util.Units.bytes_to_string m.agg_bytes)
    (Arb_util.Units.seconds_to_string m.part_exp_time)
    (Arb_util.Units.bytes_to_string m.part_exp_bytes)
    (Arb_util.Units.seconds_to_string m.part_max_time)
    (Arb_util.Units.bytes_to_string m.part_max_bytes)
    (* exact plans render exactly as before the approximation dimension *)
    (if m.est_error > 0.0 then Printf.sprintf "; est err: %.3g" m.est_error
     else "")

type contribution = {
  c_agg_time : float;
  c_agg_bytes : float;
  c_all_time : float;
  c_all_bytes : float;
  c_member_time : float;
  c_member_bytes : float;
  c_instances : int;
  c_members : int;  (* members per instance: m for MPC, 2 for replicated HE *)
  c_kind : [ `Keygen | `Decryption | `Operations | `Base ];
  c_est_error : float;  (* relative error this vignette introduces *)
}

type ring = { ring_n : int; ct_bytes : float; pk_bytes : float }

(* Calibration constants. Reference anchors from §6/§7 of the paper:
   G16 verification a few ms; a one-ciphertext upload ~1.1 MB at degree
   2^15 with a 135-bit modulus (17 B per coefficient); the key-generation
   committee ~700 MB / ~14 min at m = 42; the Gumbel-noise MPC 73.8 s with
   42 parties. Everything else is scaled from our substrate's relative op
   costs. *)
type t = {
  felt_bytes : float;  (* serialized field element (135-bit modulus) *)
  he_add_ref : float;  (* s per ciphertext addition at n = 2^15 *)
  he_mul_plain_ref : float;
  he_rotate_ref : float;
  he_encrypt_ref : float;
  zk_prove_per_constraint : float;  (* device seconds per R1CS constraint *)
  zk_setup_per_constraint : float;  (* committee-member seconds *)
  zk_verify : float;
  proof_bytes : float;
  sig_time : float;  (* device signature for sortition *)
  kg_coeff_time : float;  (* keygen s per ring coefficient at m = 42 *)
  kg_coeff_bytes : float;
  dec_coeff_time : float;  (* threshold-decrypt s per coefficient at m = 42 *)
  gumbel_unit_time : float;  (* s per member per party per sample *)
  gumbel_unit_bytes : float;
  laplace_unit_time : float;
  laplace_unit_bytes : float;
  cmp_time_ref : float;  (* comparison at m = 42, after triples exist *)
  cmp_bytes_ref : float;
  triple_setup_time : float;  (* first-comparison surcharge (§6) *)
  triple_setup_bytes : float;
  exp_time_ref : float;
  exp_bytes_ref : float;
  share_op_time : float;  (* local linear op on shares *)
  vsr_overhead_bytes : float;  (* per member per MPC vignette hand-off *)
  round_latency : float;
  device_factor : float;  (* participant device vs reference server core *)
  post_flop : float;
  audit_bytes : float;  (* per-device certificate download + MHT challenges *)
  audit_time : float;
}

let default =
  {
    felt_bytes = 17.0;
    he_add_ref = 1.8e-2;  (* per encrypted input: deserialize + add + audit tree *)
    he_mul_plain_ref = 8.0e-3;
    he_rotate_ref = 2.5e-2;
    he_encrypt_ref = 1.5e-2;
    zk_prove_per_constraint = 2.5e-4;
    zk_setup_per_constraint = 1.0e-4;
    zk_verify = 1.2e-2;
    proof_bytes = 192.0;
    sig_time = 6.0e-3;
    kg_coeff_time = 840.0 /. 32768.0;
    kg_coeff_bytes = 700.0e6 /. 32768.0;
    dec_coeff_time = 60.0 /. 32768.0;
    (* One Gumbel sample needs two fixpoint logarithms; the 73.8 s
       42-party benchmark (§7.5) covers a ~40-sample noising vignette
       including its triple preprocessing. *)
    gumbel_unit_time = 1.55;
    gumbel_unit_bytes = 2.0e6;
    laplace_unit_time = 0.8;
    laplace_unit_bytes = 1.0e6;
    cmp_time_ref = 0.35;
    cmp_bytes_ref = 1.4e5;
    triple_setup_time = 12.0;
    triple_setup_bytes = 8.0e7;
    exp_time_ref = 2.2;
    exp_bytes_ref = 2.0e6;
    share_op_time = 2.0e-7;
    vsr_overhead_bytes = 42.0 *. 49.0;
    round_latency = 5.0e-3;
    device_factor = 5.0;
    post_flop = 1.0e-9;
    audit_bytes = 4096.0;
    audit_time = 2.0e-2;
  }

let mpc_round_latency t = t.round_latency
let device_factor t = t.device_factor

let next_pow2 x =
  let rec go p = if p >= x then p else go (2 * p) in
  go 1

let ring_for t crypto ~cols =
  let n = max 4096 (min 32768 (next_pow2 cols)) in
  let primes = match crypto with Plan.Ahe -> 1.0 | Plan.Fhe -> 2.0 in
  let ct = 2.0 *. float_of_int n *. t.felt_bytes *. primes in
  { ring_n = n; ct_bytes = ct; pk_bytes = ct }

(* Per-op HE costs scale with the ring: additions linearly, NTT-bound ops
   as n log n, relative to the n = 2^15 reference. *)
let lin_scale n = float_of_int n /. 32768.0
let nlogn_scale n =
  float_of_int n *. Float.log2 (float_of_int n) /. (32768.0 *. 15.0)

let he_add t crypto n =
  let primes = match crypto with Plan.Ahe -> 1.0 | Plan.Fhe -> 2.0 in
  t.he_add_ref *. lin_scale n *. primes

let he_mul_plain t crypto n =
  let primes = match crypto with Plan.Ahe -> 1.0 | Plan.Fhe -> 2.0 in
  t.he_mul_plain_ref *. nlogn_scale n *. primes

let he_rotate t crypto n =
  let primes = match crypto with Plan.Ahe -> 1.0 | Plan.Fhe -> 2.0 in
  t.he_rotate_ref *. nlogn_scale n *. primes

let he_encrypt t crypto n =
  let primes = match crypto with Plan.Ahe -> 1.0 | Plan.Fhe -> 2.0 in
  t.he_encrypt_ref *. nlogn_scale n *. primes

let base_contribution =
  {
    c_agg_time = 0.0;
    c_agg_bytes = 0.0;
    c_all_time = 0.0;
    c_all_bytes = 0.0;
    c_member_time = 0.0;
    c_member_bytes = 0.0;
    c_instances = 0;
    c_members = 0;
    c_kind = `Base;
    c_est_error = 0.0;
  }

let m_scale ~m = float_of_int m /. 42.0

(* Process-wide pricing-call odometer. Monotone and racy-read-safe (atomic),
   so observability snapshots can meter planner work without threading a
   registry through the pure pricing path. *)
let pricing_odometer = Atomic.make 0
let pricing_calls () = Atomic.get pricing_odometer

let price t ~n_devices ~m ~cols (v : Plan.vignette) : contribution =
  Atomic.incr pricing_odometer;
  let crypto_of = function
    | Plan.W_keygen c | W_encrypt_input { crypto = c; _ }
    | W_he_sum { crypto = c; _ } | W_he_affine { crypto = c; _ }
    | W_he_rotate_sum { crypto = c; _ } | W_he_sketch { crypto = c; _ }
    | W_he_coarsen { crypto = c; _ } | W_mpc_decrypt { crypto = c; _ }
    | W_mpc_decrypt_noise { crypto = c; _ } -> c
    | _ -> Plan.Fhe
  in
  let ring = ring_for t (crypto_of v.Plan.work) ~cols in
  let n = ring.ring_n in
  let mf = m_scale ~m in
  let instances = match v.Plan.location with Plan.Committees k -> k | _ -> 0 in
  (* Committee traffic is relayed through the aggregator "mailbox" (§5.4):
     every byte a member sends is a byte the aggregator forwards. *)
  let with_forwarding c =
    (* Fill in members-per-instance and charge the aggregator mailbox. *)
    let members =
      if c.c_instances = 0 then 0 else if c.c_kind = `Base then 2 else m
    in
    {
      c with
      c_members = members;
      c_agg_bytes =
        c.c_agg_bytes
        +. (float_of_int c.c_instances *. float_of_int members *. c.c_member_bytes);
    }
  in
  let c =
    match (v.Plan.work, v.Plan.location) with
    | Plan.W_keygen _, _ ->
        {
          base_contribution with
          c_member_time = t.kg_coeff_time *. float_of_int n *. mf;
          c_member_bytes = t.kg_coeff_bytes *. float_of_int n *. mf;
          c_instances = max 1 instances;
          c_kind = `Keygen;
        }
    | W_zk_setup { constraints }, _ ->
        {
          base_contribution with
          c_member_time = t.zk_setup_per_constraint *. float_of_int constraints;
          c_member_bytes = 64.0 *. float_of_int constraints;
          c_instances = max 1 instances;
          c_kind = `Keygen;
        }
    | W_encrypt_input { crypto; cts_per_device; zk_constraints }, _ ->
        {
          base_contribution with
          c_all_time =
            (float_of_int cts_per_device *. he_encrypt t crypto n *. t.device_factor)
            +. (t.zk_prove_per_constraint *. float_of_int zk_constraints)
            +. t.sig_time +. t.audit_time;
          c_all_bytes =
            (float_of_int cts_per_device *. ring.ct_bytes)
            +. t.proof_bytes +. t.audit_bytes;
          (* The aggregator distributes the authorization certificate and
             public key to every device. *)
          c_agg_bytes = float_of_int n_devices *. (ring.pk_bytes +. 2048.0);
        }
    | W_verify_inputs { devices }, _ ->
        { base_contribution with c_agg_time = float_of_int devices *. t.zk_verify }
    | W_he_sum { crypto; cts; inputs }, Plan.Aggregator ->
        {
          base_contribution with
          c_agg_time = float_of_int (cts * inputs) *. he_add t crypto n;
        }
    | W_he_sum { crypto; cts; inputs }, _ ->
        (* A sum-tree vertex executed by a replicated pair of devices:
           ciphertext additions are public work, so no MPC is needed;
           integrity comes from 2x replication plus the Merkle audit. *)
        {
          base_contribution with
          c_member_time =
            float_of_int (cts * inputs) *. he_add t crypto n *. t.device_factor;
          c_member_bytes = float_of_int cts *. ring.ct_bytes;
          c_all_bytes = 0.0;
          c_instances = max 1 instances;
          c_kind = `Base (* replicated-device work, not an MPC committee *);
        }
    | W_he_affine { crypto; cts; muls; adds }, Plan.Aggregator ->
        {
          base_contribution with
          c_agg_time =
            (float_of_int (cts * muls) *. he_mul_plain t crypto n)
            +. (float_of_int (cts * adds) *. he_add t crypto n);
        }
    | W_he_affine { crypto; cts; muls; adds }, _ ->
        {
          base_contribution with
          c_member_time =
            ((float_of_int (cts * muls) *. he_mul_plain t crypto n)
            +. (float_of_int (cts * adds) *. he_add t crypto n))
            *. t.device_factor;
          c_member_bytes = float_of_int cts *. ring.ct_bytes;
          c_instances = max 1 instances;
          c_kind = `Base;
        }
    | W_he_rotate_sum { crypto; cts; rotations }, Plan.Aggregator ->
        {
          base_contribution with
          c_agg_time =
            float_of_int (cts * rotations)
            *. (he_rotate t crypto n +. he_add t crypto n);
        }
    | W_he_rotate_sum { crypto; cts; rotations }, _ ->
        {
          base_contribution with
          c_member_time =
            float_of_int (cts * rotations)
            *. (he_rotate t crypto n +. he_add t crypto n)
            *. t.device_factor;
          c_member_bytes = float_of_int cts *. ring.ct_bytes;
          c_instances = max 1 instances;
          c_kind = `Base;
        }
    | W_he_sketch { crypto; cts; width; depth }, _ ->
        (* Count-Min projection of the C-bin encrypted histogram into
           depth x width counters. By CMS linearity this is public HE work
           (one masked mul + rotate-accumulate pass per row), so it runs on
           the aggregator. The standard CMS guarantee gives point estimates
           within e/width of the true mass (relative to total count) with
           probability 1 - e^-depth. *)
        {
          base_contribution with
          c_agg_time =
            float_of_int (depth * cts)
            *. (he_mul_plain t crypto n +. he_rotate t crypto n +. he_add t crypto n);
          c_est_error = Float.exp 1.0 /. float_of_int width;
        }
    | W_he_coarsen { crypto; cts; groups }, _ ->
        (* Coarsen the C-bin encrypted histogram into [groups] buckets by
           rotate-and-add folding: log2(C/groups) passes over the
           ciphertexts. A rank query answered on the coarse histogram is off
           by at most one bucket, i.e. relative rank error 1/groups. *)
        let folds =
          let ratio = max 1 (cols / max 1 groups) in
          max 1 (int_of_float (ceil (Float.log2 (float_of_int ratio))))
        in
        {
          base_contribution with
          c_agg_time =
            float_of_int (folds * cts) *. (he_rotate t crypto n +. he_add t crypto n);
          c_est_error = 1.0 /. float_of_int groups;
        }
    | W_mpc_decrypt { cts; _ }, _ ->
        {
          base_contribution with
          c_member_time =
            float_of_int cts *. t.dec_coeff_time *. float_of_int n *. mf;
          c_member_bytes =
            (float_of_int cts *. float_of_int (m - 1) *. float_of_int n
            *. t.felt_bytes)
            +. t.vsr_overhead_bytes *. mf;
          c_instances = max 1 instances;
          c_kind = `Decryption;
        }
    | W_mpc_affine { elements }, _ | W_mpc_scan { elements }, _ ->
        {
          base_contribution with
          c_member_time =
            (float_of_int elements *. t.share_op_time) +. t.round_latency;
          c_member_bytes =
            (float_of_int m *. t.felt_bytes) +. (t.vsr_overhead_bytes *. mf);
          c_instances = max 1 instances;
          c_kind = `Operations;
        }
    | W_mpc_nonlinear { elements }, _ ->
        {
          base_contribution with
          c_member_time =
            t.triple_setup_time *. mf
            +. (float_of_int elements *. t.cmp_time_ref *. mf);
          c_member_bytes =
            ((t.triple_setup_bytes +. (float_of_int elements *. t.cmp_bytes_ref)) *. mf)
            +. (t.vsr_overhead_bytes *. mf);
          c_instances = max 1 instances;
          c_kind = `Operations;
        }
    | W_mpc_decrypt_noise { cts; kind; count; _ }, _ ->
        (* Fused committee: decryption plus noising in one sitting — one
           VSR hand-off instead of two, one committee in the count. *)
        let ut, ub =
          match kind with
          | `Gumbel -> (t.gumbel_unit_time, t.gumbel_unit_bytes)
          | `Laplace -> (t.laplace_unit_time, t.laplace_unit_bytes)
        in
        {
          base_contribution with
          c_member_time =
            (float_of_int cts *. t.dec_coeff_time *. float_of_int n *. mf)
            +. ((t.triple_setup_time +. (float_of_int count *. ut)) *. mf);
          c_member_bytes =
            (float_of_int cts *. float_of_int (m - 1) *. float_of_int n
            *. t.felt_bytes)
            +. ((t.triple_setup_bytes +. (float_of_int count *. ub)) *. mf)
            +. (t.vsr_overhead_bytes *. mf);
          c_instances = max 1 instances;
          c_kind = `Operations;
        }
    | W_mpc_noise { kind; count }, _ ->
        let ut, ub =
          match kind with
          | `Gumbel -> (t.gumbel_unit_time, t.gumbel_unit_bytes)
          | `Laplace -> (t.laplace_unit_time, t.laplace_unit_bytes)
        in
        {
          base_contribution with
          c_member_time =
            (t.triple_setup_time +. (float_of_int count *. ut)) *. mf;
          c_member_bytes =
            (t.triple_setup_bytes +. (float_of_int count *. ub)) *. mf
            +. (t.vsr_overhead_bytes *. mf);
          c_instances = max 1 instances;
          c_kind = `Operations;
        }
    | W_mpc_argmax { inputs }, _ ->
        let cmps = max 0 (inputs - 1) in
        {
          base_contribution with
          c_member_time =
            (t.triple_setup_time *. mf) +. (float_of_int cmps *. t.cmp_time_ref *. mf);
          c_member_bytes =
            ((t.triple_setup_bytes +. (float_of_int cmps *. t.cmp_bytes_ref)) *. mf)
            +. (t.vsr_overhead_bytes *. mf);
          c_instances = max 1 instances;
          c_kind = `Operations;
        }
    | W_mpc_exp { count }, _ ->
        {
          base_contribution with
          c_member_time =
            (t.triple_setup_time *. mf) +. (float_of_int count *. t.exp_time_ref *. mf);
          c_member_bytes =
            ((t.triple_setup_bytes +. (float_of_int count *. t.exp_bytes_ref)) *. mf)
            +. (t.vsr_overhead_bytes *. mf);
          c_instances = max 1 instances;
          c_kind = `Operations;
        }
    | W_mpc_sample_index { inputs }, _ ->
        {
          base_contribution with
          c_member_time =
            (t.triple_setup_time *. mf)
            +. (float_of_int inputs *. t.cmp_time_ref *. mf)
            +. (16.0 *. t.round_latency);
          c_member_bytes =
            ((t.triple_setup_bytes +. (float_of_int inputs *. t.cmp_bytes_ref)) *. mf)
            +. (t.vsr_overhead_bytes *. mf);
          c_instances = max 1 instances;
          c_kind = `Operations;
        }
    | W_mpc_output { values }, _ ->
        {
          base_contribution with
          c_member_time = float_of_int values *. t.share_op_time +. t.round_latency;
          c_member_bytes = float_of_int (values * (m - 1)) *. t.felt_bytes;
          c_instances = max 1 instances;
          c_kind = `Operations;
        }
    | W_post { flops }, _ ->
        { base_contribution with c_agg_time = float_of_int flops *. t.post_flop }
  in
  with_forwarding c

(* A device serves on at most one committee (§5.1), so worst-case costs
   take the maximum over committee vignettes, while expected costs weight
   each vignette by the probability of serving in it. The running state is
   a monoid: sums for the additive components, maxima for the per-member
   worst case, with seat-weighted member costs kept unnormalized so the
   value is independent of [n_devices] until {!finalize}. *)
type partial = {
  p_agg_time : float;
  p_agg_bytes : float;
  p_all_time : float;
  p_all_bytes : float;
  p_seat_time : float;  (* sum of instances * members * member_time *)
  p_seat_bytes : float;
  p_max_member_time : float;
  p_max_member_bytes : float;
  p_est_error : float;  (* additive over vignettes, so monotone under
                           completion: pruning on it is admissible *)
}

let empty_partial =
  {
    p_agg_time = 0.0;
    p_agg_bytes = 0.0;
    p_all_time = 0.0;
    p_all_bytes = 0.0;
    p_seat_time = 0.0;
    p_seat_bytes = 0.0;
    p_max_member_time = 0.0;
    p_max_member_bytes = 0.0;
    p_est_error = 0.0;
  }

let add_contribution p c =
  let seats = float_of_int (c.c_instances * c.c_members) in
  {
    p_agg_time = p.p_agg_time +. c.c_agg_time;
    p_agg_bytes = p.p_agg_bytes +. c.c_agg_bytes;
    p_all_time = p.p_all_time +. c.c_all_time;
    p_all_bytes = p.p_all_bytes +. c.c_all_bytes;
    p_seat_time = p.p_seat_time +. (seats *. c.c_member_time);
    p_seat_bytes = p.p_seat_bytes +. (seats *. c.c_member_bytes);
    p_max_member_time = Float.max p.p_max_member_time c.c_member_time;
    p_max_member_bytes = Float.max p.p_max_member_bytes c.c_member_bytes;
    p_est_error = p.p_est_error +. c.c_est_error;
  }

let combine_partial a b =
  {
    p_agg_time = a.p_agg_time +. b.p_agg_time;
    p_agg_bytes = a.p_agg_bytes +. b.p_agg_bytes;
    p_all_time = a.p_all_time +. b.p_all_time;
    p_all_bytes = a.p_all_bytes +. b.p_all_bytes;
    p_seat_time = a.p_seat_time +. b.p_seat_time;
    p_seat_bytes = a.p_seat_bytes +. b.p_seat_bytes;
    p_max_member_time = Float.max a.p_max_member_time b.p_max_member_time;
    p_max_member_bytes = Float.max a.p_max_member_bytes b.p_max_member_bytes;
    p_est_error = a.p_est_error +. b.p_est_error;
  }

let partial_of_contributions cs = List.fold_left add_contribution empty_partial cs

(* Relative standard error of a count estimated from a Bernoulli(phi) device
   sample: ~2 standard deviations, 2 * sqrt((1-phi)/(phi*n)) <= 2/sqrt(phi*n). *)
let sampling_error ~n_devices phi =
  match phi with
  | None -> 0.0
  | Some phi -> 2.0 /. sqrt (phi *. float_of_int n_devices)

(* [n_devices] is always the FULL population (committees are drawn from the
   full population by sortition, so seat probabilities do not change);
   [sample_phi] scales only the every-device costs, which a sampled-out
   device never pays. *)
let finalize ?sample_phi ~n_devices p =
  let nf = float_of_int n_devices in
  let phi = match sample_phi with None -> 1.0 | Some phi -> phi in
  {
    agg_time = p.p_agg_time;
    agg_bytes = p.p_agg_bytes;
    part_exp_time = (phi *. p.p_all_time) +. (p.p_seat_time /. nf);
    part_max_time = p.p_all_time +. p.p_max_member_time;
    part_exp_bytes = (phi *. p.p_all_bytes) +. (p.p_seat_bytes /. nf);
    part_max_bytes = p.p_all_bytes +. p.p_max_member_bytes;
    est_error = p.p_est_error +. sampling_error ~n_devices sample_phi;
  }

let combine ?sample_phi ~n_devices cs =
  finalize ?sample_phi ~n_devices (partial_of_contributions cs)

let member_cost_by_kind t ~n_devices ~m ~cols vignettes =
  List.filter_map
    (fun v ->
      let c = price t ~n_devices ~m ~cols v in
      if c.c_instances = 0 then None
      else Some (c.c_kind, c.c_member_time, c.c_member_bytes))
    vignettes

(* ---------------- JSON round-trip and content identity ---------------- *)

module J = Arb_util.Json

(* Full-record destructuring with no wildcard: a constant added to [t] but
   missing here fails to compile, so the serialized form cannot silently
   drop fields. *)
let to_json t =
  let {
    felt_bytes;
    he_add_ref;
    he_mul_plain_ref;
    he_rotate_ref;
    he_encrypt_ref;
    zk_prove_per_constraint;
    zk_setup_per_constraint;
    zk_verify;
    proof_bytes;
    sig_time;
    kg_coeff_time;
    kg_coeff_bytes;
    dec_coeff_time;
    gumbel_unit_time;
    gumbel_unit_bytes;
    laplace_unit_time;
    laplace_unit_bytes;
    cmp_time_ref;
    cmp_bytes_ref;
    triple_setup_time;
    triple_setup_bytes;
    exp_time_ref;
    exp_bytes_ref;
    share_op_time;
    vsr_overhead_bytes;
    round_latency;
    device_factor;
    post_flop;
    audit_bytes;
    audit_time;
  } =
    t
  in
  J.Obj
    [
      ("felt_bytes", J.Float felt_bytes);
      ("he_add_ref", J.Float he_add_ref);
      ("he_mul_plain_ref", J.Float he_mul_plain_ref);
      ("he_rotate_ref", J.Float he_rotate_ref);
      ("he_encrypt_ref", J.Float he_encrypt_ref);
      ("zk_prove_per_constraint", J.Float zk_prove_per_constraint);
      ("zk_setup_per_constraint", J.Float zk_setup_per_constraint);
      ("zk_verify", J.Float zk_verify);
      ("proof_bytes", J.Float proof_bytes);
      ("sig_time", J.Float sig_time);
      ("kg_coeff_time", J.Float kg_coeff_time);
      ("kg_coeff_bytes", J.Float kg_coeff_bytes);
      ("dec_coeff_time", J.Float dec_coeff_time);
      ("gumbel_unit_time", J.Float gumbel_unit_time);
      ("gumbel_unit_bytes", J.Float gumbel_unit_bytes);
      ("laplace_unit_time", J.Float laplace_unit_time);
      ("laplace_unit_bytes", J.Float laplace_unit_bytes);
      ("cmp_time_ref", J.Float cmp_time_ref);
      ("cmp_bytes_ref", J.Float cmp_bytes_ref);
      ("triple_setup_time", J.Float triple_setup_time);
      ("triple_setup_bytes", J.Float triple_setup_bytes);
      ("exp_time_ref", J.Float exp_time_ref);
      ("exp_bytes_ref", J.Float exp_bytes_ref);
      ("share_op_time", J.Float share_op_time);
      ("vsr_overhead_bytes", J.Float vsr_overhead_bytes);
      ("round_latency", J.Float round_latency);
      ("device_factor", J.Float device_factor);
      ("post_flop", J.Float post_flop);
      ("audit_bytes", J.Float audit_bytes);
      ("audit_time", J.Float audit_time);
    ]

let of_json json =
  match
    let f name =
      let v = J.to_float (J.member name json) in
      if not (Float.is_finite v) then
        raise (J.Parse_error (name ^ ": constants must be finite"));
      v
    in
    {
      felt_bytes = f "felt_bytes";
      he_add_ref = f "he_add_ref";
      he_mul_plain_ref = f "he_mul_plain_ref";
      he_rotate_ref = f "he_rotate_ref";
      he_encrypt_ref = f "he_encrypt_ref";
      zk_prove_per_constraint = f "zk_prove_per_constraint";
      zk_setup_per_constraint = f "zk_setup_per_constraint";
      zk_verify = f "zk_verify";
      proof_bytes = f "proof_bytes";
      sig_time = f "sig_time";
      kg_coeff_time = f "kg_coeff_time";
      kg_coeff_bytes = f "kg_coeff_bytes";
      dec_coeff_time = f "dec_coeff_time";
      gumbel_unit_time = f "gumbel_unit_time";
      gumbel_unit_bytes = f "gumbel_unit_bytes";
      laplace_unit_time = f "laplace_unit_time";
      laplace_unit_bytes = f "laplace_unit_bytes";
      cmp_time_ref = f "cmp_time_ref";
      cmp_bytes_ref = f "cmp_bytes_ref";
      triple_setup_time = f "triple_setup_time";
      triple_setup_bytes = f "triple_setup_bytes";
      exp_time_ref = f "exp_time_ref";
      exp_bytes_ref = f "exp_bytes_ref";
      share_op_time = f "share_op_time";
      vsr_overhead_bytes = f "vsr_overhead_bytes";
      round_latency = f "round_latency";
      device_factor = f "device_factor";
      post_flop = f "post_flop";
      audit_bytes = f "audit_bytes";
      audit_time = f "audit_time";
    }
  with
  | t -> Ok t
  | exception J.Parse_error m -> Error m

let fingerprint t =
  Arb_crypto.Sha256.to_hex
    (Arb_crypto.Sha256.digest ("arb-cost-model/1\n" ^ J.to_string (to_json t)))

(* ---------------- per-section predictions ---------------- *)

(* Predicted costs grouped the way the runtime actually measures them
   (Trace: one MPC engine per committee kind, upload bytes summed over
   devices). {!price}'s [c_kind] attributes a fused decrypt+noise vignette
   wholly to [`Operations]; here its decryption share is split back out so
   the pairs line up with [report.committee_wall_clock]. *)
let section_costs t ~n_devices ~m ~cols vignettes =
  let mf = m_scale ~m in
  let kt = ref 0.0
  and kb = ref 0.0
  and dt = ref 0.0
  and ot = ref 0.0
  and ob = ref 0.0
  and ub = ref 0.0 in
  List.iter
    (fun (v : Plan.vignette) ->
      let c = price t ~n_devices ~m ~cols v in
      let ring = ring_for t (match v.Plan.work with
        | Plan.W_keygen cr | W_encrypt_input { crypto = cr; _ }
        | W_he_sum { crypto = cr; _ } | W_he_affine { crypto = cr; _ }
        | W_he_rotate_sum { crypto = cr; _ } | W_he_sketch { crypto = cr; _ }
        | W_he_coarsen { crypto = cr; _ } | W_mpc_decrypt { crypto = cr; _ }
        | W_mpc_decrypt_noise { crypto = cr; _ } -> cr
        | _ -> Plan.Fhe)
        ~cols
      in
      let n = float_of_int ring.ring_n in
      match v.Plan.work with
      | Plan.W_encrypt_input _ -> ub := !ub +. c.c_all_bytes
      | W_mpc_decrypt_noise { cts; _ } ->
          let dec_time = float_of_int cts *. t.dec_coeff_time *. n *. mf in
          let dec_bytes =
            float_of_int cts *. float_of_int (m - 1) *. n *. t.felt_bytes
          in
          dt := !dt +. dec_time;
          ot := !ot +. Float.max 0.0 (c.c_member_time -. dec_time);
          ob := !ob +. Float.max 0.0 (c.c_member_bytes -. dec_bytes)
      | _ -> (
          match c.c_kind with
          | `Keygen ->
              kt := !kt +. c.c_member_time;
              kb := !kb +. c.c_member_bytes
          | `Decryption -> dt := !dt +. c.c_member_time
          | `Operations ->
              ot := !ot +. c.c_member_time;
              ob := !ob +. c.c_member_bytes
          | `Base -> ()))
    vignettes;
  [
    ("keygen_time", !kt);
    ("keygen_bytes", !kb);
    ("decrypt_time", !dt);
    ("ops_time", !ot);
    ("ops_bytes", !ob);
    ("upload_bytes", !ub);
  ]

(* Re-derive the relative HE/MPC constants by microbenchmarking this
   machine's substrate at simulation scale (n = 2048), then scaling to the
   n = 2^15 reference ring. Paper-anchored committee constants (keygen,
   Gumbel) are kept: they calibrate the *deployment* platform, which this
   machine does not represent. *)
let calibrate () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.05 do
      f ();
      incr iters
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int (max 1 !iters)
  in
  let rng = Arb_util.Rng.create 7L in
  let p = Arb_crypto.Bgv.fhe_params ~n:2048 () in
  let _sk, pk = Arb_crypto.Bgv.keygen p rng in
  let slots = Array.init 2048 (fun i -> i mod 97) in
  let ct = Arb_crypto.Bgv.encrypt pk rng slots in
  let t_add = time (fun () -> ignore (Arb_crypto.Bgv.add ct ct)) in
  let t_mulp = time (fun () -> ignore (Arb_crypto.Bgv.mul_plain ct slots)) in
  let t_enc = time (fun () -> ignore (Arb_crypto.Bgv.encrypt pk rng slots)) in
  (* MPC: time our engine's comparison and Gumbel sampling at a small
     committee size and scale the per-operation constants by the measured
     ratio (CostCO-style automated re-calibration, §4.6). *)
  let eng = Arb_mpc.Engine.create ~parties:5 rng () in
  let a = Arb_mpc.Engine.input eng ~party:0 5 in
  let b = Arb_mpc.Engine.input eng ~party:1 9 in
  let t_cmp = time (fun () -> ignore (Arb_mpc.Engine.less_than eng a b)) in
  let t_gumbel =
    time (fun () ->
        ignore (Arb_mpc.Fixpoint_mpc.gumbel eng ~scale:Arb_util.Fixed.one))
  in
  (* A Gumbel sample is ~2 log-gadgets of work; keep the reference platform's
     absolute anchors but preserve this machine's measured cmp:gumbel ratio,
     which is what ordering plans actually consumes. *)
  let ratio = t_cmp /. Float.max 1e-9 t_gumbel in
  (* Scale: additions linearly in n, NTT-bound ops as n log n; our container
     core stands in for the reference server core. *)
  let lin = 32768.0 /. 2048.0 in
  let nlogn = 32768.0 *. 15.0 /. (2048.0 *. 11.0) in
  {
    default with
    he_add_ref = t_add *. lin;
    he_mul_plain_ref = t_mulp *. nlogn;
    he_encrypt_ref = t_enc *. nlogn;
    he_rotate_ref = t_mulp *. nlogn *. 3.0 (* rotate ~ key-switch ~ 3 NTT muls *);
    cmp_time_ref = default.gumbel_unit_time *. ratio;
  }
