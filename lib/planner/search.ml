let log_src = Logs.Src.create "arb.planner" ~doc:"Arboretum query planner"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  prefixes : int;
  full_plans : int;
  pruned : int;
  elapsed : float;
  aborted : bool;
}

type result = {
  plan : Plan.t option;
  metrics : Cost_model.metrics option;
  alternatives : (Plan.t * Cost_model.metrics) list;
  stats : stats;
}

let default_f = 0.03
let default_g = 0.15
let default_p1 () = Arb_dp.Committee.p1_of_round ~p:1e-8 ~rounds:1000

(* Memoized committee sizing, shared by every searcher. The table is
   consulted from worker domains, so all access goes through a mutex (the
   solve itself runs outside the lock; racing duplicates are idempotent). *)
let size_cache : (float * float * float * int, int) Hashtbl.t = Hashtbl.create 64
let size_cache_lock = Mutex.create ()

let rec committee_size_for ?(f = default_f) ?(g = default_g) ?p1 c =
  let p1 = match p1 with Some p -> p | None -> default_p1 () in
  let key = (f, g, p1, c) in
  match
    Mutex.protect size_cache_lock (fun () -> Hashtbl.find_opt size_cache key)
  with
  | Some m -> m
  | None ->
      (* Safety at fixed m is antitone in the committee count, so the c = 1
         solution is a sound scan start for every larger c. *)
      let start = if c <= 1 then 1 else committee_size_for ~f ~g ~p1 1 in
      let m =
        Arb_dp.Committee.min_size_from ~start ~f ~g ~committees:(max 1 c) ~p1
      in
      Mutex.protect size_cache_lock (fun () -> Hashtbl.replace size_cache key m);
      m

let is_mpc_vignette (v : Plan.vignette) =
  match v.Plan.work with
  | Plan.W_keygen _ | W_zk_setup _ | W_mpc_decrypt _ | W_mpc_decrypt_noise _
  | W_mpc_affine _
  | W_mpc_scan _ | W_mpc_nonlinear _ | W_mpc_noise _ | W_mpc_argmax _
  | W_mpc_exp _ | W_mpc_sample_index _ | W_mpc_output _ ->
      true
  | W_encrypt_input _ | W_verify_inputs _ | W_he_sum _ | W_he_affine _
  | W_he_rotate_sum _ | W_he_sketch _ | W_he_coarsen _ | W_post _ ->
      false

let mpc_committee_count vs =
  List.fold_left
    (fun acc (v : Plan.vignette) ->
      match (v.Plan.location, is_mpc_vignette v) with
      | Plan.Committees k, true -> acc + k
      | _ -> acc)
    0 vs

(* One searcher per (crypto, sampled-bins) task; only [shared_best] is
   shared across tasks (and domains). *)
type searcher = {
  cm : Cost_model.t;
  crypto : Plan.crypto;
  bins : int option;
  phi : float option;  (* device-sampling rate for this task; None = exact *)
  limits : Constraints.limits;
  goal : Constraints.goal;
  heuristics : bool;
  incremental : bool;
  max_prefixes : int;
  f : float;
  g : float;
  p1 : float;
  n : int;
  cols : int;
  m_lb : int;
      (* committee size at c = 1: a lower bound on the size any completed
         plan will be priced with, making prefix bounds admissible *)
  shared_best : float Atomic.t;  (* cross-task/-domain incumbent *)
  mutable best_value : float;
  mutable best : (Plan.t * Cost_model.metrics) option;
  mutable top : (float * Plan.t * Cost_model.metrics) list; (* ranked, capped *)
  mutable prefixes : int;
  mutable full_plans : int;
  mutable pruned : int;
  mutable aborted : bool;
  (* --- observability (all per-task, merged in canonical order) --- *)
  tr : Arb_obs.Tracer.t option;  (* per-task child tracer *)
  obs_on : bool;  (* any tracer or registry attached: count depth/memo work *)
  timed : bool;  (* wall-clock readings allowed (false in deterministic mode) *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable price_calls : int;
  mutable score_seconds : float;
  mutable depth_nodes : int array;  (* grown on demand *)
  mutable depth_seconds : float array;
}

exception Abort

let grow_to a len zero =
  if Array.length a >= len then a
  else begin
    let b = Array.make (max len ((2 * Array.length a) + 1)) zero in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let bump_depth_nodes s depth =
  s.depth_nodes <- grow_to s.depth_nodes (depth + 1) 0;
  s.depth_nodes.(depth) <- s.depth_nodes.(depth) + 1

let add_depth_seconds s depth dt =
  s.depth_seconds <- grow_to s.depth_seconds (depth + 1) 0.0;
  s.depth_seconds.(depth) <- s.depth_seconds.(depth) +. dt

let domain_label = function
  | Expand.D_enc -> "enc"
  | Expand.D_shares k -> "shares:" ^ string_of_int k

let price_all s ~m vs =
  s.price_calls <- s.price_calls + List.length vs;
  List.map (fun v -> Cost_model.price s.cm ~n_devices:s.n ~m ~cols:s.cols v) vs

(* Monotone-min publication of the incumbent for cross-domain pruning. *)
let rec publish_best shared v =
  let cur = Atomic.get shared in
  if v < cur && not (Atomic.compare_and_set shared cur v) then
    publish_best shared v

let top_cap = 5

(* Bounded ranked insert; equal goal values keep their insertion order, so
   the list depends only on the deterministic exploration order. *)
let rec insert_top cap ((v, _, _) as entry) tops =
  if cap = 0 then []
  else
    match tops with
    | [] -> [ entry ]
    | ((v', _, _) as e) :: rest ->
        if v < v' then entry :: insert_top (cap - 1) e rest
        else e :: insert_top (cap - 1) entry rest

let score_full s ~em_variant acc query_name =
  s.full_plans <- s.full_plans + 1;
  let t_start = if s.timed then Unix.gettimeofday () else 0.0 in
  let c = mpc_committee_count acc in
  let m = committee_size_for ~f:s.f ~g:s.g ~p1:s.p1 (max 1 c) in
  (* The one full re-pricing pass: the true committee size m is only known
     now that the plan's total committee count is. *)
  let metrics =
    Cost_model.combine ?sample_phi:s.phi ~n_devices:s.n (price_all s ~m acc)
  in
  if s.timed then
    s.score_seconds <- s.score_seconds +. (Unix.gettimeofday () -. t_start);
  if Constraints.satisfies s.limits metrics then begin
    let v = Constraints.goal_value s.goal metrics in
    let plan =
      {
        Plan.query = query_name;
        crypto = s.crypto;
        vignettes = acc;
        sample_bins = s.bins;
        device_sample = s.phi;
        committee_count = c;
        committee_size = m;
        em_variant;
      }
    in
    (* Keep a small ranked sample of the feasible design space: the best
       plan plus runners-up, deduplicated on plan identity so a distinct
       plan that ties an existing goal value is still reported. *)
    if not (List.exists (fun (_, p', _) -> p' = plan) s.top) then
      s.top <- insert_top top_cap (v, plan, metrics) s.top;
    if v < s.best_value then begin
      s.best_value <- v;
      s.best <- Some (plan, metrics);
      publish_best s.shared_best v
    end
  end

let search_one s ~(ctx : Expand.ctx) ~prefix_vs ~ops ~query_name =
  let price_lb v =
    Cost_model.price s.cm ~n_devices:s.n ~m:s.m_lb ~cols:s.cols v
  in
  let partial_lb vs =
    s.price_calls <- s.price_calls + List.length vs;
    Cost_model.partial_of_contributions (List.map price_lb vs)
  in
  (* The choices at a DFS node — and their delta partials at m_lb — depend
     only on (abstract domain, operator position), not on the prefix that
     led there, so the DFS revisits the same few expansions thousands of
     times. Memoize them per task; this, not the per-node delta fold, is
     where incremental pricing earns its keep. *)
  let choice_memo : (Expand.domain * int, (Expand.choice * Cost_model.partial) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let priced_choices domain depth op =
    match Hashtbl.find_opt choice_memo (domain, depth) with
    | Some cs ->
        s.memo_hits <- s.memo_hits + 1;
        cs
    | None ->
        s.memo_misses <- s.memo_misses + 1;
        let t_start = if s.timed then Unix.gettimeofday () else 0.0 in
        let compute () =
          let choices = Expand.choices ctx domain op in
          let price () =
            List.map
              (fun (c : Expand.choice) -> (c, partial_lb c.Expand.vignettes))
              choices
          in
          match s.tr with
          | None -> price ()
          | Some tr -> Arb_obs.Tracer.with_span tr ~cat:"planner" "price" price
        in
        let cs =
          match s.tr with
          | None -> compute ()
          | Some tr ->
              Arb_obs.Tracer.with_span tr ~cat:"planner"
                ~args:
                  [
                    ("domain", Arb_util.Json.String (domain_label domain));
                    ("depth", Arb_util.Json.Int depth);
                  ]
                "expand" compute
        in
        if s.timed then add_depth_seconds s depth (Unix.gettimeofday () -. t_start);
        Hashtbl.replace choice_memo (domain, depth) cs;
        cs
  in
  (* DFS over operators. [acc] holds vignettes in order; [acc_partial] is
     its running lower-bound partial, priced at m_lb. *)
  let rec go domain depth acc acc_partial em_variant = function
    | [] -> score_full s ~em_variant acc query_name
    | op :: rest ->
        (* [vs] caches the extended prefix when the pricing mode had to
           build it anyway, so neither mode pays the append twice. *)
        let priced =
          if s.incremental then
            List.map
              (fun ((c : Expand.choice), delta) ->
                (* Fold only the delta vignettes into the running prefix
                   partial; the delta itself comes priced from the memo. *)
                let partial = Cost_model.combine_partial acc_partial delta in
                ( c,
                  None,
                  partial,
                  Cost_model.finalize ?sample_phi:s.phi ~n_devices:s.n partial ))
              (priced_choices domain depth op)
          else
            (* The pre-optimization behavior: re-expand and re-price the
               whole prefix at every node. *)
            List.map
              (fun (c : Expand.choice) ->
                let vs = acc @ c.Expand.vignettes in
                let partial = partial_lb vs in
                ( c,
                  Some vs,
                  partial,
                  Cost_model.finalize ?sample_phi:s.phi ~n_devices:s.n partial ))
              (Expand.choices ctx domain op)
        in
        (* Explore cheap choices first so branch-and-bound gets a good
           incumbent early. *)
        let priced =
          if s.heuristics then
            List.sort
              (fun (_, _, _, m1) (_, _, _, m2) ->
                Float.compare
                  (Constraints.goal_value s.goal m1)
                  (Constraints.goal_value s.goal m2))
              priced
          else priced
        in
        List.iter
          (fun ((c : Expand.choice), vs_cached, partial, bound) ->
            s.prefixes <- s.prefixes + 1;
            if s.obs_on then bump_depth_nodes s depth;
            if s.prefixes > s.max_prefixes then begin
              s.aborted <- true;
              raise Abort
            end;
            let fhe_ok = (not c.Expand.needs_fhe) || s.crypto = Plan.Fhe in
            if not fhe_ok then s.pruned <- s.pruned + 1
            else if
              (* [bound] is a true lower bound for every completion (m_lb
                 pricing), so both prunes are admissible. The incumbent
                 comparison is strict: a branch whose bound ties the
                 incumbent may still hold a plan tying the optimum, and
                 exploring it keeps the winner independent of domain
                 scheduling. *)
              s.heuristics
              && (Constraints.lower_bound_infeasible s.limits bound
                 || Constraints.goal_value s.goal bound
                    > Float.min s.best_value (Atomic.get s.shared_best))
            then s.pruned <- s.pruned + 1
            else
              let em_variant' =
                match c.Expand.em_variant with `None -> em_variant | v -> v
              in
              let vs =
                match vs_cached with
                | Some vs -> vs
                | None -> acc @ c.Expand.vignettes
              in
              go c.Expand.domain_after (depth + 1) vs partial em_variant' rest)
          priced
  in
  (try go Expand.D_enc 0 prefix_vs (partial_lb prefix_vs) `None ops
   with Abort -> ())

type task_result = {
  t_best : (Plan.t * Cost_model.metrics) option;
  t_best_value : float;
  t_top : (float * Plan.t * Cost_model.metrics) list;
  t_prefixes : int;
  t_full_plans : int;
  t_pruned : int;
  t_aborted : bool;
  t_tracer : Arb_obs.Tracer.t option;  (* grafted in canonical task order *)
  t_memo_hits : int;
  t_memo_misses : int;
  t_price_calls : int;
  t_score_seconds : float;
  t_depth_nodes : int array;
  t_depth_seconds : float array;
}

(* Run [work.(i)] for every i across [workers] domains (the calling domain
   included), dealing indices through a shared counter. [on_worker], when
   given, receives each worker's (index, tasks run, busy seconds) after it
   drains — per-domain utilization for the metrics registry. *)
let parallel_map ~workers ?on_worker work =
  let n_tasks = Array.length work in
  let out = Array.make n_tasks None in
  let next = Atomic.make 0 in
  let worker w () =
    let busy = ref 0.0 and ran = ref 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n_tasks then begin
        (match on_worker with
        | None -> out.(i) <- Some (work.(i) ())
        | Some _ ->
            let t0 = Unix.gettimeofday () in
            out.(i) <- Some (work.(i) ());
            busy := !busy +. (Unix.gettimeofday () -. t0);
            incr ran);
        loop ()
      end
    in
    loop ();
    match on_worker with Some f -> f w !ran !busy | None -> ()
  in
  let spawned = List.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  Array.map (function Some r -> r | None -> assert false) out

let plan ?(cm = Cost_model.default) ?(limits = Constraints.evaluation_limits)
    ?(goal = Constraints.Min_part_exp_time) ?(heuristics = true)
    ?(max_prefixes = 5_000_000) ?(domains = 1) ?(incremental = true)
    ?(f = default_f) ?(g = default_g) ?p1 ?tracer ?metrics
    ~(query : Arb_queries.Registry.query) ~n () =
  let p1 = match p1 with Some p -> p | None -> default_p1 () in
  let deterministic =
    match tracer with Some tr -> Arb_obs.Tracer.deterministic tr | None -> false
  in
  (* Wall-clock readings are skipped in deterministic mode so trace AND
     metrics bytes are pure functions of the search structure. *)
  let timed = not deterministic in
  let obs_on = Option.is_some tracer || Option.is_some metrics in
  let t0 = Unix.gettimeofday () in
  let ops = Extract.ops query.Arb_queries.Registry.program ~n in
  let cols = query.Arb_queries.Registry.categories in
  let m_lb = committee_size_for ~f ~g ~p1 1 in
  let shared_best = Atomic.make infinity in
  (* Canonical task order: crypto profile major, sampled-bins middle,
     device-sampling rate minor (exact first). The merge below folds
     results in this order, so ties resolve identically however the tasks
     were scheduled. Without a tolerance only the exact rate is enumerated,
     so the task list — and therefore the winner — is byte-identical to the
     exact-only planner. *)
  let phis =
    match limits.Constraints.max_est_error with
    | None -> [ None ]
    | Some _ -> [ None; Some 0.25; Some 0.1; Some 0.01; Some 0.001 ]
  in
  let tasks =
    List.concat_map
      (fun crypto ->
        List.concat_map
          (fun bins -> List.map (fun phi -> (crypto, bins, phi)) phis)
          (Expand.sampled_bins_options ops))
      [ Plan.Ahe; Plan.Fhe ]
  in
  let run_task idx (crypto, bins, phi) () =
    (* Each task writes to its own child tracer (its own tid); the parent
       grafts them back in canonical task order below, so the merged trace
       does not depend on worker scheduling. *)
    let tr =
      Option.map
        (fun t ->
          Arb_obs.Tracer.child t ~tid:((Arb_obs.Tracer.tid t * 100) + idx + 1))
        tracer
    in
    let s =
      {
        cm;
        crypto;
        bins;
        phi;
        limits;
        goal;
        heuristics;
        incremental;
        max_prefixes;
        f;
        g;
        p1;
        n;
        cols;
        m_lb;
        shared_best;
        best_value = infinity;
        best = None;
        top = [];
        prefixes = 0;
        full_plans = 0;
        pruned = 0;
        aborted = false;
        tr;
        obs_on;
        timed;
        memo_hits = 0;
        memo_misses = 0;
        price_calls = 0;
        score_seconds = 0.0;
        depth_nodes = [||];
        depth_seconds = [||];
      }
    in
    (* Sampled tasks size every-device vignettes (verification, sum trees)
       for the expected sampled population; pricing still normalizes by the
       full population, which is also where committees are drawn from. *)
    let n_eff =
      match phi with
      | None -> n
      | Some phi -> max 1 (int_of_float (Float.round (phi *. float_of_int n)))
    in
    let ctx =
      {
        Expand.n_devices = n_eff;
        cols;
        crypto;
        bins;
        cm;
        redundant_boundaries = not heuristics;
        tolerance = limits.Constraints.max_est_error;
      }
    in
    let prefix_vs = Expand.prefix ctx ~sampled_bins:bins in
    let search () =
      search_one s ~ctx ~prefix_vs ~ops
        ~query_name:query.Arb_queries.Registry.name
    in
    (match tr with
    | None -> search ()
    | Some tr ->
        Arb_obs.Tracer.with_span tr ~cat:"planner"
          ~args:
            [
              ("crypto", Arb_util.Json.String (Plan.crypto_name crypto));
              ( "bins",
                match bins with
                | Some b -> Arb_util.Json.Int b
                | None -> Arb_util.Json.Null );
              ( "sample",
                match phi with
                | Some p -> Arb_util.Json.Float p
                | None -> Arb_util.Json.Null );
            ]
          "search"
          (fun () ->
            search ();
            Arb_obs.Tracer.add_args tr
              [
                ("prefixes", Arb_util.Json.Int s.prefixes);
                ("full_plans", Arb_util.Json.Int s.full_plans);
                ("pruned", Arb_util.Json.Int s.pruned);
                ("memo_hits", Arb_util.Json.Int s.memo_hits);
                ("memo_misses", Arb_util.Json.Int s.memo_misses);
                ("price_calls", Arb_util.Json.Int s.price_calls);
                ("aborted", Arb_util.Json.Bool s.aborted);
              ]));
    {
      t_best = s.best;
      t_best_value = s.best_value;
      t_top = s.top;
      t_prefixes = s.prefixes;
      t_full_plans = s.full_plans;
      t_pruned = s.pruned;
      t_aborted = s.aborted;
      t_tracer = tr;
      t_memo_hits = s.memo_hits;
      t_memo_misses = s.memo_misses;
      t_price_calls = s.price_calls;
      t_score_seconds = s.score_seconds;
      t_depth_nodes = s.depth_nodes;
      t_depth_seconds = s.depth_seconds;
    }
  in
  let run_all () =
    let work = Array.of_list (List.mapi run_task tasks) in
    let workers = max 1 (min domains (Array.length work)) in
    let results =
      if workers <= 1 then Array.map (fun f -> f ()) work
      else
        let on_worker =
          match metrics with
          | Some reg when timed ->
              Some
                (fun w ran busy ->
                  let labels = [ ("worker", string_of_int w) ] in
                  Arb_obs.Metrics.add reg ~labels
                    ~help:"Search tasks run per worker domain"
                    "arb_planner_domain_tasks_total" (float_of_int ran);
                  Arb_obs.Metrics.add reg ~labels
                    ~help:"Seconds each worker domain spent searching"
                    "arb_planner_domain_busy_seconds_total" busy)
          | _ -> None
        in
        parallel_map ~workers ?on_worker work
    in
    (match tracer with
    | Some tr ->
        Array.iter
          (fun r ->
            match r.t_tracer with
            | Some c -> Arb_obs.Tracer.graft tr c
            | None -> ())
          results
    | None -> ());
    results
  in
  let results =
    match tracer with
    | None -> run_all ()
    | Some tr ->
        Arb_obs.Tracer.with_span tr ~cat:"planner"
          ~args:
            [
              ("query", Arb_util.Json.String query.Arb_queries.Registry.name);
              ("n", Arb_util.Json.Int n);
              ("tasks", Arb_util.Json.Int (List.length tasks));
              ("domains", Arb_util.Json.Int domains);
            ]
          "plan" run_all
  in
  (* Deterministic merge: fold per-task results in canonical order with a
     strict comparison, so an earlier task keeps ties — byte-identical to
     threading one searcher through the tasks sequentially. *)
  let _best_value, best, top, prefixes, full_plans, pruned, aborted =
    Array.fold_left
      (fun (bv, best, top, pf, fl, pr, ab) r ->
        let bv, best =
          if r.t_best_value < bv then (r.t_best_value, r.t_best) else (bv, best)
        in
        let top =
          List.fold_left
            (fun top ((_, p, _) as entry) ->
              if List.exists (fun (_, p', _) -> p' = p) top then top
              else insert_top top_cap entry top)
            top r.t_top
        in
        ( bv,
          best,
          top,
          pf + r.t_prefixes,
          fl + r.t_full_plans,
          pr + r.t_pruned,
          ab || r.t_aborted ))
      (infinity, None, [], 0, 0, 0, false)
      results
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match metrics with
  | None -> ()
  | Some reg ->
      let sum_i f = Array.fold_left (fun acc r -> acc + f r) 0 results in
      let sum_f f = Array.fold_left (fun acc r -> acc +. f r) 0.0 results in
      let merge_depth zero add proj =
        Array.fold_left
          (fun acc r ->
            let a = proj r in
            let acc = grow_to acc (Array.length a) zero in
            Array.iteri (fun i v -> acc.(i) <- add acc.(i) v) a;
            acc)
          [||] results
      in
      let c name help v = Arb_obs.Metrics.add reg ~help name (float_of_int v) in
      c "arb_planner_nodes_total" "Search nodes (prefixes) expanded" prefixes;
      c "arb_planner_pruned_total" "Branch-and-bound prunes" pruned;
      c "arb_planner_plans_total" "Complete plans scored" full_plans;
      c "arb_planner_memo_hits_total" "Choice-memo hits"
        (sum_i (fun r -> r.t_memo_hits));
      c "arb_planner_memo_misses_total" "Choice-memo misses"
        (sum_i (fun r -> r.t_memo_misses));
      c "arb_planner_price_calls_total" "Cost-model pricing calls"
        (sum_i (fun r -> r.t_price_calls));
      c "arb_planner_searches_total" "Planner invocations" 1;
      c "arb_planner_aborted_total" "Searches aborted at the prefix cap"
        (if aborted then 1 else 0);
      Array.iteri
        (fun d v ->
          if v > 0 then
            Arb_obs.Metrics.add reg
              ~labels:[ ("depth", string_of_int d) ]
              ~help:"Nodes expanded per search depth"
              "arb_planner_depth_nodes_total" (float_of_int v))
        (merge_depth 0 ( + ) (fun r -> r.t_depth_nodes));
      if timed then begin
        Array.iteri
          (fun d sec ->
            if sec > 0.0 then
              Arb_obs.Metrics.add reg
                ~labels:[ ("depth", string_of_int d) ]
                ~help:"Expand+price seconds per depth (choice-memo misses)"
                "arb_planner_depth_seconds_total" sec)
          (merge_depth 0.0 ( +. ) (fun r -> r.t_depth_seconds));
        Arb_obs.Metrics.add reg ~help:"Full-plan scoring seconds"
          "arb_planner_score_seconds_total"
          (sum_f (fun r -> r.t_score_seconds));
        Arb_obs.Metrics.observe_in reg
          ~help:"End-to-end planning latency (seconds)"
          ~buckets:Arb_obs.Metrics.latency_buckets "arb_planner_plan_seconds"
          elapsed
      end);
  Log.info (fun m ->
      m "planned %s (N=%d): %d prefixes, %d candidates, %d pruned in %.3fs%s"
        query.Arb_queries.Registry.name n prefixes full_plans pruned elapsed
        (if aborted then " [aborted at cap]" else ""));
  (match best with
  | Some (p, _) ->
      Log.debug (fun m ->
          m "winner: %s, %d committees of %d, em=%s"
            (Plan.crypto_name p.Plan.crypto)
            p.Plan.committee_count p.Plan.committee_size
            (match p.Plan.em_variant with
            | `Gumbel -> "gumbel"
            | `Exponentiate -> "exponentiate"
            | `Sketch -> "sketch"
            | `None -> "-"))
  | None -> Log.debug (fun m -> m "no feasible plan"));
  {
    plan = Option.map fst best;
    metrics = Option.map snd best;
    alternatives = List.map (fun (_, p, m) -> (p, m)) top;
    stats = { prefixes; full_plans; pruned; elapsed; aborted };
  }
