(** Self-calibrating cost model: fit {!Cost_model} constants from observed
    predicted-vs-measured residuals (DESIGN.md §14).

    Every executed plan yields ground truth — simulated committee
    wall-clock per kind, per-member MPC bytes, device upload bytes — that
    {!Arb_runtime.Exec.cost_samples} pairs with the cost model's
    per-section predictions. The service records those pairs into its
    metrics registry ({!record}); the snapshot store persists them across
    runs; {!fit_snapshots} folds a store back into a per-section
    multiplicative correction and applies it to a base model, producing a
    {e versioned} calibration: constants, a content fingerprint, and
    provenance (runs used, residual error before/after, per-section
    scales).

    The model orders candidate plans rather than predicting wall-clock
    (§4.6), so a per-section ratio fit is exactly the right strength: it
    aligns the model's relative weights with what execution actually
    charges without inventing precision the simulation cannot support. *)

type section_fit = {
  s_section : string;
  s_samples : int;  (** (run, section) pairs that informed the scale *)
  s_scale : float;  (** measured / predicted *)
  s_err_before : float;  (** mean relative error of the base model *)
  s_err_after : float;  (** same, after applying [s_scale] *)
}

type provenance = {
  p_runs : int;  (** snapshots contributing at least one sample *)
  p_skipped : int;  (** malformed snapshot lines skipped during load *)
  p_base : string;  (** fingerprint of the base model the fit scaled *)
  p_err_before : float;  (** mean relative error across all samples *)
  p_err_after : float;
  p_sections : section_fit list;
}

val empty_provenance : provenance

type t = {
  version : int;
  constants : Cost_model.t;
  fingerprint : string;  (** {!Cost_model.fingerprint} of [constants] *)
  provenance : provenance;
}

val current_version : int

(** Why a calibration file was rejected. Loaders fall back to
    {!Cost_model.default} via {!load_or_default}; the error stays typed so
    surfaces can report exactly what happened. *)
type error =
  | Unreadable of { path : string; reason : string }
  | Malformed of { path : string; reason : string }
  | Future_version of { path : string; found : int; supported : int }

val error_message : error -> string

val default : t
(** {!Cost_model.default} under its own fingerprint, empty provenance. *)

val make : ?provenance:provenance -> Cost_model.t -> t
(** Wrap constants as a current-version calibration (fingerprint derived). *)

val to_json : t -> Arb_util.Json.t
val of_json : ?path:string -> Arb_util.Json.t -> (t, error) result
(** Rejects versions newer than {!current_version} ([Future_version]) and
    payloads whose stored fingerprint does not match the constants
    ([Malformed]). *)

val save : string -> t -> unit
val load : string -> (t, error) result

val load_or_default : string -> t * error option
(** {!load}, demoting every failure to {!default} with the typed error. *)

(** {2 Recording and fitting residuals} *)

val sections : string list
(** The fixed section keys ({!Cost_model.section_costs} order). *)

val record : Arb_obs.Metrics.t -> (string * float * float) list -> unit
(** Accumulate (section, predicted, measured) pairs from one executed plan
    into a registry: [arb_cal_predicted_total]/[arb_cal_measured_total]
    counters per section plus an [arb_cal_residual_rel] histogram of
    relative errors. Deterministic given the same executions. *)

val samples_of_registry :
  Arb_obs.Metrics.t -> (string * float * float) list
(** The accumulated (section, predicted, measured) totals recorded by
    {!record}, skipping sections with no measured signal. *)

val fit :
  ?base:Cost_model.t ->
  runs:(string * float * float) list list ->
  unit ->
  (t, string) result
(** Fit per-section scales [sum measured / sum predicted] over one sample
    list per run, apply them to [base] (default {!Cost_model.default}),
    and wrap the result with provenance. [Error] when no run carries a
    usable sample. *)

val fit_snapshots :
  ?base:Cost_model.t -> dir:string -> unit -> (t, string) result
(** {!fit} over every snapshot in [dir]'s store ({!Arb_obs.Snapshot}). *)
