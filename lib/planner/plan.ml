type crypto = Ahe | Fhe

type location =
  | Aggregator
  | Committees of int
  | Participants

type work =
  | W_keygen of crypto
  | W_zk_setup of { constraints : int }
  | W_encrypt_input of {
      crypto : crypto;
      cts_per_device : int;
      zk_constraints : int;
    }
  | W_verify_inputs of { devices : int }
  | W_he_sum of { crypto : crypto; cts : int; inputs : int }
  | W_he_affine of { crypto : crypto; cts : int; muls : int; adds : int }
  | W_he_rotate_sum of { crypto : crypto; cts : int; rotations : int }
  | W_he_sketch of { crypto : crypto; cts : int; width : int; depth : int }
  | W_he_coarsen of { crypto : crypto; cts : int; groups : int }
  | W_mpc_decrypt of { crypto : crypto; cts : int }
  | W_mpc_decrypt_noise of {
      crypto : crypto;
      cts : int;
      kind : [ `Gumbel | `Laplace ];
      count : int;
    }
  | W_mpc_affine of { elements : int }
  | W_mpc_scan of { elements : int }
  | W_mpc_nonlinear of { elements : int }
  | W_mpc_noise of { kind : [ `Gumbel | `Laplace ]; count : int }
  | W_mpc_argmax of { inputs : int }
  | W_mpc_exp of { count : int }
  | W_mpc_sample_index of { inputs : int }
  | W_mpc_output of { values : int }
  | W_post of { flops : int }

type vignette = { location : location; work : work }

type t = {
  query : string;
  crypto : crypto;
  vignettes : vignette list;
  sample_bins : int option;
  device_sample : float option;
      (* Bernoulli device-sampling rate phi in (0,1); None = every device
         participates (exact) *)
  committee_count : int;
  committee_size : int;
  em_variant : [ `Gumbel | `Exponentiate | `Sketch | `None ];
}

let committee_count vs =
  List.fold_left
    (fun acc v ->
      match v.location with Committees k -> acc + k | _ -> acc)
    0 vs

let crypto_name = function Ahe -> "AHE" | Fhe -> "FHE"

let describe_work = function
  | W_keygen c -> Printf.sprintf "keygen(%s)" (crypto_name c)
  | W_zk_setup { constraints } -> Printf.sprintf "zkSetup(%d constraints)" constraints
  | W_encrypt_input { crypto; cts_per_device; zk_constraints } ->
      Printf.sprintf "encryptInput(%s, %d cts, %d-constraint proof)"
        (crypto_name crypto) cts_per_device zk_constraints
  | W_verify_inputs { devices } -> Printf.sprintf "verifyInputs(%d)" devices
  | W_he_sum { crypto; cts; inputs } ->
      Printf.sprintf "heSum(%s, %d cts x %d inputs)" (crypto_name crypto) cts inputs
  | W_he_affine { crypto; cts; muls; adds } ->
      Printf.sprintf "heAffine(%s, %d cts, %d muls, %d adds)" (crypto_name crypto)
        cts muls adds
  | W_he_rotate_sum { crypto; cts; rotations } ->
      Printf.sprintf "heRotateSum(%s, %d cts, %d rots)" (crypto_name crypto) cts
        rotations
  | W_he_sketch { crypto; cts; width; depth } ->
      Printf.sprintf "heSketch(%s, %d cts -> %dx%d)" (crypto_name crypto) cts
        depth width
  | W_he_coarsen { crypto; cts; groups } ->
      Printf.sprintf "heCoarsen(%s, %d cts -> %d groups)" (crypto_name crypto)
        cts groups
  | W_mpc_decrypt { crypto; cts } ->
      Printf.sprintf "mpcDecrypt(%s, %d cts)" (crypto_name crypto) cts
  | W_mpc_decrypt_noise { crypto; cts; kind; count } ->
      Printf.sprintf "mpcDecrypt+Noise(%s, %d cts, %s x%d)" (crypto_name crypto)
        cts
        (match kind with `Gumbel -> "gumbel" | `Laplace -> "laplace")
        count
  | W_mpc_affine { elements } -> Printf.sprintf "mpcAffine(%d)" elements
  | W_mpc_scan { elements } -> Printf.sprintf "mpcScan(%d)" elements
  | W_mpc_nonlinear { elements } -> Printf.sprintf "mpcNonlinear(%d)" elements
  | W_mpc_noise { kind; count } ->
      Printf.sprintf "mpcNoise(%s, %d)"
        (match kind with `Gumbel -> "gumbel" | `Laplace -> "laplace")
        count
  | W_mpc_argmax { inputs } -> Printf.sprintf "mpcArgmax(%d)" inputs
  | W_mpc_exp { count } -> Printf.sprintf "mpcExp(%d)" count
  | W_mpc_sample_index { inputs } -> Printf.sprintf "mpcSampleIndex(%d)" inputs
  | W_mpc_output { values } -> Printf.sprintf "mpcOutput(%d)" values
  | W_post { flops } -> Printf.sprintf "post(%d flops)" flops

let describe_location = function
  | Aggregator -> "aggregator"
  | Committees 1 -> "committee"
  | Committees k -> Printf.sprintf "%d committees" k
  | Participants -> "participants"

let pp fmt t =
  (* exact plans print exactly as before the approximation dimension *)
  Format.fprintf fmt "plan for %s [%s, %d committees of %d, em=%s%s]@."
    t.query (crypto_name t.crypto) t.committee_count t.committee_size
    (match t.em_variant with
    | `Gumbel -> "gumbel"
    | `Exponentiate -> "exponentiate"
    | `Sketch -> "sketch"
    | `None -> "n/a")
    (match t.device_sample with
    | None -> ""
    | Some phi -> Printf.sprintf ", sample=%g" phi);
  List.iter
    (fun v ->
      Format.fprintf fmt "  %-16s %s@." (describe_location v.location)
        (describe_work v.work))
    t.vignettes
