module J = Arb_util.Json

let crypto_to_json = function Plan.Ahe -> J.String "ahe" | Plan.Fhe -> J.String "fhe"

let crypto_of_json j =
  match J.to_str j with
  | "ahe" -> Plan.Ahe
  | "fhe" -> Plan.Fhe
  | other -> raise (J.Parse_error ("unknown cryptosystem " ^ other))

let location_to_json = function
  | Plan.Aggregator -> J.Obj [ ("kind", J.String "aggregator") ]
  | Plan.Participants -> J.Obj [ ("kind", J.String "participants") ]
  | Plan.Committees k ->
      J.Obj [ ("kind", J.String "committees"); ("count", J.Int k) ]

let location_of_json j =
  match J.to_str (J.member "kind" j) with
  | "aggregator" -> Plan.Aggregator
  | "participants" -> Plan.Participants
  | "committees" -> Plan.Committees (J.to_int (J.member "count" j))
  | other -> raise (J.Parse_error ("unknown location " ^ other))

let noise_kind_to_json = function
  | `Gumbel -> J.String "gumbel"
  | `Laplace -> J.String "laplace"

let noise_kind_of_json j =
  match J.to_str j with
  | "gumbel" -> `Gumbel
  | "laplace" -> `Laplace
  | other -> raise (J.Parse_error ("unknown noise kind " ^ other))

let work_to_json (w : Plan.work) =
  let tag name fields = J.Obj (("op", J.String name) :: fields) in
  match w with
  | Plan.W_keygen c -> tag "keygen" [ ("crypto", crypto_to_json c) ]
  | W_zk_setup { constraints } -> tag "zkSetup" [ ("constraints", J.Int constraints) ]
  | W_encrypt_input { crypto; cts_per_device; zk_constraints } ->
      tag "encryptInput"
        [ ("crypto", crypto_to_json crypto); ("cts", J.Int cts_per_device);
          ("zkConstraints", J.Int zk_constraints) ]
  | W_verify_inputs { devices } -> tag "verifyInputs" [ ("devices", J.Int devices) ]
  | W_he_sum { crypto; cts; inputs } ->
      tag "heSum"
        [ ("crypto", crypto_to_json crypto); ("cts", J.Int cts);
          ("inputs", J.Int inputs) ]
  | W_he_affine { crypto; cts; muls; adds } ->
      tag "heAffine"
        [ ("crypto", crypto_to_json crypto); ("cts", J.Int cts);
          ("muls", J.Int muls); ("adds", J.Int adds) ]
  | W_he_rotate_sum { crypto; cts; rotations } ->
      tag "heRotateSum"
        [ ("crypto", crypto_to_json crypto); ("cts", J.Int cts);
          ("rotations", J.Int rotations) ]
  | W_he_sketch { crypto; cts; width; depth } ->
      tag "heSketch"
        [ ("crypto", crypto_to_json crypto); ("cts", J.Int cts);
          ("width", J.Int width); ("depth", J.Int depth) ]
  | W_he_coarsen { crypto; cts; groups } ->
      tag "heCoarsen"
        [ ("crypto", crypto_to_json crypto); ("cts", J.Int cts);
          ("groups", J.Int groups) ]
  | W_mpc_decrypt { crypto; cts } ->
      tag "mpcDecrypt" [ ("crypto", crypto_to_json crypto); ("cts", J.Int cts) ]
  | W_mpc_decrypt_noise { crypto; cts; kind; count } ->
      tag "mpcDecryptNoise"
        [ ("crypto", crypto_to_json crypto); ("cts", J.Int cts);
          ("kind", noise_kind_to_json kind); ("count", J.Int count) ]
  | W_mpc_affine { elements } -> tag "mpcAffine" [ ("elements", J.Int elements) ]
  | W_mpc_scan { elements } -> tag "mpcScan" [ ("elements", J.Int elements) ]
  | W_mpc_nonlinear { elements } -> tag "mpcNonlinear" [ ("elements", J.Int elements) ]
  | W_mpc_noise { kind; count } ->
      tag "mpcNoise" [ ("kind", noise_kind_to_json kind); ("count", J.Int count) ]
  | W_mpc_argmax { inputs } -> tag "mpcArgmax" [ ("inputs", J.Int inputs) ]
  | W_mpc_exp { count } -> tag "mpcExp" [ ("count", J.Int count) ]
  | W_mpc_sample_index { inputs } -> tag "mpcSampleIndex" [ ("inputs", J.Int inputs) ]
  | W_mpc_output { values } -> tag "mpcOutput" [ ("values", J.Int values) ]
  | W_post { flops } -> tag "post" [ ("flops", J.Int flops) ]

let work_of_json j : Plan.work =
  let int k = J.to_int (J.member k j) in
  match J.to_str (J.member "op" j) with
  | "keygen" -> Plan.W_keygen (crypto_of_json (J.member "crypto" j))
  | "zkSetup" -> W_zk_setup { constraints = int "constraints" }
  | "encryptInput" ->
      W_encrypt_input
        { crypto = crypto_of_json (J.member "crypto" j);
          cts_per_device = int "cts"; zk_constraints = int "zkConstraints" }
  | "verifyInputs" -> W_verify_inputs { devices = int "devices" }
  | "heSum" ->
      W_he_sum
        { crypto = crypto_of_json (J.member "crypto" j); cts = int "cts";
          inputs = int "inputs" }
  | "heAffine" ->
      W_he_affine
        { crypto = crypto_of_json (J.member "crypto" j); cts = int "cts";
          muls = int "muls"; adds = int "adds" }
  | "heRotateSum" ->
      W_he_rotate_sum
        { crypto = crypto_of_json (J.member "crypto" j); cts = int "cts";
          rotations = int "rotations" }
  | "heSketch" ->
      W_he_sketch
        { crypto = crypto_of_json (J.member "crypto" j); cts = int "cts";
          width = int "width"; depth = int "depth" }
  | "heCoarsen" ->
      W_he_coarsen
        { crypto = crypto_of_json (J.member "crypto" j); cts = int "cts";
          groups = int "groups" }
  | "mpcDecrypt" ->
      W_mpc_decrypt
        { crypto = crypto_of_json (J.member "crypto" j); cts = int "cts" }
  | "mpcDecryptNoise" ->
      W_mpc_decrypt_noise
        { crypto = crypto_of_json (J.member "crypto" j); cts = int "cts";
          kind = noise_kind_of_json (J.member "kind" j); count = int "count" }
  | "mpcAffine" -> W_mpc_affine { elements = int "elements" }
  | "mpcScan" -> W_mpc_scan { elements = int "elements" }
  | "mpcNonlinear" -> W_mpc_nonlinear { elements = int "elements" }
  | "mpcNoise" ->
      W_mpc_noise
        { kind = noise_kind_of_json (J.member "kind" j); count = int "count" }
  | "mpcArgmax" -> W_mpc_argmax { inputs = int "inputs" }
  | "mpcExp" -> W_mpc_exp { count = int "count" }
  | "mpcSampleIndex" -> W_mpc_sample_index { inputs = int "inputs" }
  | "mpcOutput" -> W_mpc_output { values = int "values" }
  | "post" -> W_post { flops = int "flops" }
  | other -> raise (J.Parse_error ("unknown work item " ^ other))

let em_to_json = function
  | `Gumbel -> J.String "gumbel"
  | `Exponentiate -> J.String "exponentiate"
  | `Sketch -> J.String "sketch"
  | `None -> J.Null

let em_of_json = function
  | J.Null -> `None
  | j -> (
      match J.to_str j with
      | "gumbel" -> `Gumbel
      | "exponentiate" -> `Exponentiate
      | "sketch" -> `Sketch
      | other -> raise (J.Parse_error ("unknown em variant " ^ other)))

let plan_to_json (p : Plan.t) =
  J.Obj
    [
      ("query", J.String p.Plan.query);
      ("crypto", crypto_to_json p.Plan.crypto);
      ( "vignettes",
        J.List
          (List.map
             (fun (v : Plan.vignette) ->
               J.Obj
                 [ ("location", location_to_json v.Plan.location);
                   ("work", work_to_json v.Plan.work) ])
             p.Plan.vignettes) );
      ( "sampleBins",
        match p.Plan.sample_bins with None -> J.Null | Some b -> J.Int b );
      ( "deviceSample",
        match p.Plan.device_sample with None -> J.Null | Some phi -> J.Float phi );
      ("committeeCount", J.Int p.Plan.committee_count);
      ("committeeSize", J.Int p.Plan.committee_size);
      ("emVariant", em_to_json p.Plan.em_variant);
    ]

let plan_of_json j : Plan.t =
  {
    Plan.query = J.to_str (J.member "query" j);
    crypto = crypto_of_json (J.member "crypto" j);
    vignettes =
      List.map
        (fun vj ->
          {
            Plan.location = location_of_json (J.member "location" vj);
            work = work_of_json (J.member "work" vj);
          })
        (J.to_list (J.member "vignettes" j));
    sample_bins =
      (match J.member "sampleBins" j with J.Null -> None | v -> Some (J.to_int v));
    device_sample =
      (match J.member "deviceSample" j with
      | J.Null -> None
      | v -> Some (J.to_float v));
    committee_count = J.to_int (J.member "committeeCount" j);
    committee_size = J.to_int (J.member "committeeSize" j);
    em_variant = em_of_json (J.member "emVariant" j);
  }

let metrics_to_json (m : Cost_model.metrics) =
  J.Obj
    [
      ("aggTime", J.Float m.Cost_model.agg_time);
      ("aggBytes", J.Float m.Cost_model.agg_bytes);
      ("partExpTime", J.Float m.Cost_model.part_exp_time);
      ("partMaxTime", J.Float m.Cost_model.part_max_time);
      ("partExpBytes", J.Float m.Cost_model.part_exp_bytes);
      ("partMaxBytes", J.Float m.Cost_model.part_max_bytes);
      ("estError", J.Float m.Cost_model.est_error);
    ]

let metrics_of_json j =
  {
    Cost_model.agg_time = J.to_float (J.member "aggTime" j);
    agg_bytes = J.to_float (J.member "aggBytes" j);
    part_exp_time = J.to_float (J.member "partExpTime" j);
    part_max_time = J.to_float (J.member "partMaxTime" j);
    part_exp_bytes = J.to_float (J.member "partExpBytes" j);
    part_max_bytes = J.to_float (J.member "partMaxBytes" j);
    est_error = J.to_float (J.member "estError" j);
  }

let plan_to_string ?pretty p = J.to_string ?pretty (plan_to_json p)
let plan_of_string s = plan_of_json (J.of_string s)

(* ---------------- versioned file persistence ---------------- *)

(* v2: plans carry deviceSample, metrics carry estError, work items gained
   heSketch/heCoarsen, and submissions may carry an errorTolerance. v1
   files are rejected on load — cache entries written before the
   approximation dimension demote to misses rather than colliding with
   approximate plans. *)
let format_version = 2

let save_versioned path fields =
  let doc = J.Obj (("formatVersion", J.Int format_version) :: fields) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~pretty:true doc);
      output_char oc '\n')

let load_versioned path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | text -> (
      match J.of_string text with
      | exception J.Parse_error m ->
          Error (Printf.sprintf "%s: malformed JSON: %s" path m)
      | json -> (
          match J.member "formatVersion" json with
          | exception J.Parse_error _ ->
              Error (path ^ ": missing formatVersion field")
          | J.Int v when v = format_version -> Ok json
          | J.Int v ->
              Error
                (Printf.sprintf "%s: format version %d, expected %d" path v
                   format_version)
          | _ -> Error (path ^ ": formatVersion must be an integer")))

let save_plan path plan = save_versioned path [ ("plan", plan_to_json plan) ]

let load_plan path =
  Result.bind (load_versioned path) (fun json ->
      match plan_of_json (J.member "plan" json) with
      | plan -> Ok plan
      | exception J.Parse_error m ->
          Error (Printf.sprintf "%s: bad plan: %s" path m))
