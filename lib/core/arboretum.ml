type query = Arb_queries.Registry.query

type planned = {
  query : query;
  plan : Arb_planner.Plan.t;
  metrics : Arb_planner.Cost_model.metrics;
  alternatives : (Arb_planner.Plan.t * Arb_planner.Cost_model.metrics) list;
  stats : Arb_planner.Search.stats;
  certification : Arb_lang.Certify.report;
  planned_n : int;
}

exception Rejected of string

let one_hot k = Arb_lang.Ast.One_hot k
let bounded ~width ~lo ~hi = Arb_lang.Ast.Bounded { width; lo; hi }

let width_of = function
  | Arb_lang.Ast.One_hot k -> k
  | Arb_lang.Ast.Bounded { width; _ } -> width

let query_of_source ?error_tolerance ~name ~source ~row ~epsilon () =
  match Arb_lang.Parser.parse_stmt source with
  | body ->
      let program = { Arb_lang.Ast.name; body; row; epsilon } in
      (match Arb_lang.Validate.check program with
      | [] -> ()
      | { Arb_lang.Validate.message; context } :: _ ->
          raise (Rejected (Printf.sprintf "%s (%s)" message context)));
      {
        Arb_queries.Registry.name;
        action = "custom query";
        source = "analyst";
        program = { Arb_lang.Ast.name; body; row; epsilon };
        categories = width_of row;
        uses_em =
          (let has_em_expr e =
             Arb_lang.Ast.fold_exprs
               (fun acc e ->
                 acc
                 ||
                 match e with
                 | Arb_lang.Ast.Call (("em" | "emGap"), _) -> true
                 | _ -> false)
               false e
           in
           Arb_lang.Ast.fold_stmts
             (fun acc s -> acc || List.exists has_em_expr (Arb_lang.Ast.exprs_of_stmt s))
             false body);
        error_tolerance;
      }
  | exception Arb_lang.Parser.Parse_error m -> raise (Rejected ("parse error: " ^ m))
  | exception Arb_lang.Lexer.Lex_error { pos; message } ->
      raise (Rejected (Printf.sprintf "lex error at %d: %s" pos message))

let builtin_query ?epsilon ?error_tolerance ?categories name =
  let q =
    match categories with
    | Some c -> Arb_queries.Registry.make ?epsilon ~name ~c ()
    | None -> Arb_queries.Registry.paper_instance ?epsilon name
  in
  match error_tolerance with
  | None -> q
  | Some _ -> { q with Arb_queries.Registry.error_tolerance }

let certify (q : query) ~n = Arb_lang.Certify.certify q.Arb_queries.Registry.program ~n

let plan ?cm ?goal ?limits ?tracer ?metrics:registry ~n (q : query) =
  let certification = certify q ~n in
  if not certification.Arb_lang.Certify.certified then
    raise
      (Rejected
         ("certification failed: "
         ^ Option.value certification.Arb_lang.Certify.reason ~default:"?"));
  (* The query's declared tolerance becomes a planner constraint: without
     one, only zero-error (exact) plans qualify and the search is byte-for-
     byte what it was before the approximate variants existed. *)
  let limits =
    let base = Option.value limits ~default:Arb_planner.Constraints.no_limits in
    match q.Arb_queries.Registry.error_tolerance with
    | None -> base
    | Some _ as tol -> Arb_planner.Constraints.with_error_tolerance base tol
  in
  let r =
    Arb_planner.Search.plan ?cm ?goal ?tracer ?metrics:registry ~limits
      ~query:q ~n ()
  in
  match (r.Arb_planner.Search.plan, r.Arb_planner.Search.metrics) with
  | Some plan, Some metrics ->
      { query = q; plan; metrics;
        alternatives = r.Arb_planner.Search.alternatives;
        stats = r.Arb_planner.Search.stats; certification; planned_n = n }
  | _ ->
      raise
        (Rejected
           (Printf.sprintf
              "no plan satisfies the limits (%d prefixes, %d complete candidates explored)"
              r.Arb_planner.Search.stats.Arb_planner.Search.prefixes
              r.Arb_planner.Search.stats.Arb_planner.Search.full_plans))

let explain p =
  Arb_planner.Explain.full ~cm:Arb_planner.Cost_model.default
    ~n_devices:p.planned_n ~cols:p.query.Arb_queries.Registry.categories p.plan
    p.metrics p.alternatives
  ^ Format.asprintf "privacy: %a over %d mechanism call(s)@.planner: %d prefixes, %d complete candidates, %.3f s@."
      Arb_dp.Budget.pp p.certification.Arb_lang.Certify.cost
      p.certification.Arb_lang.Certify.mechanism_calls
      p.stats.Arb_planner.Search.prefixes p.stats.Arb_planner.Search.full_plans
      p.stats.Arb_planner.Search.elapsed

let synthesize_database ?(seed = 7L) ?skew (q : query) ~n =
  let rng = Arb_util.Rng.create seed in
  Arb_queries.Registry.random_database rng q ~n ?skew ()

let run ?(config = Arb_runtime.Exec.default_config) ~db p =
  Arb_runtime.Exec.execute config ~query:p.query ~plan:p.plan ~db

let run_source ?(config = Arb_runtime.Exec.default_config) ~src p =
  Arb_runtime.Exec.execute_source config ~query:p.query ~plan:p.plan ~src

let reference_outputs ?(seed = 7L) ~db (q : query) =
  Arb_lang.Interp.run q.Arb_queries.Registry.program ~db (Arb_util.Rng.create seed)

let outputs_to_strings (r : Arb_runtime.Exec.report) =
  List.map Arb_lang.Interp.value_to_string r.Arb_runtime.Exec.outputs
