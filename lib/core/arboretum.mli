(** Arboretum: a planner for large-scale federated analytics with
    differential privacy (SOSP 2023) — public facade.

    The typical flow mirrors Fig. 1 of the paper:

    {[
      let query = Arboretum.query_of_source ~name:"top1"
          ~source:"aggr = sum(db); result = em(aggr); output(result);"
          ~row:(Arboretum.one_hot 1024) ~epsilon:0.5 ()
      in
      (* Planning phase: certify, explore the plan space, pick the best. *)
      let planned = Arboretum.plan ~n:1_000_000_000 query in
      print_string (Arboretum.explain planned);
      (* Execution phase, at simulation scale with real cryptography. *)
      let db = Arboretum.synthesize_database query ~n:512 in
      let report = Arboretum.run ~db planned in
      List.iter print_endline (Arboretum.outputs_to_strings report)
    ]}

    Submodules of the underlying libraries remain available for advanced
    use: [Arb_lang] (language), [Arb_planner] (planner internals),
    [Arb_crypto] / [Arb_mpc] (substrates), [Arb_runtime] (execution),
    [Arb_dp] (mechanisms and accounting), [Arb_baselines] (comparison
    systems). *)

type query = Arb_queries.Registry.query
type planned = {
  query : query;
  plan : Arb_planner.Plan.t;
  metrics : Arb_planner.Cost_model.metrics;
  alternatives : (Arb_planner.Plan.t * Arb_planner.Cost_model.metrics) list;
      (** ranked design-space sample the search kept (winner first) *)
  stats : Arb_planner.Search.stats;
  certification : Arb_lang.Certify.report;
  planned_n : int;  (** the deployment size this plan was chosen for *)
}

exception Rejected of string
(** Certification or planning failure, with the reason. *)

val one_hot : int -> Arb_lang.Ast.row_shape
val bounded : width:int -> lo:int -> hi:int -> Arb_lang.Ast.row_shape

val query_of_source :
  ?error_tolerance:float ->
  name:string ->
  source:string ->
  row:Arb_lang.Ast.row_shape ->
  epsilon:float ->
  unit ->
  query
(** Parse an analyst query. Raises {!Rejected} on syntax errors.
    [error_tolerance] opts the query into approximate plans: the planner
    may then answer with sampled/sketched variants whose estimated relative
    error stays within the tolerance. *)

val builtin_query :
  ?epsilon:float -> ?error_tolerance:float -> ?categories:int -> string -> query
(** One of the ten evaluation queries (Table 2) by name; default categories
    follow §7.1. *)

val certify : query -> n:int -> Arb_lang.Certify.report
(** Differential-privacy certification (§4.2); never raises. *)

val plan :
  ?cm:Arb_planner.Cost_model.t ->
  ?goal:Arb_planner.Constraints.goal ->
  ?limits:Arb_planner.Constraints.limits ->
  ?tracer:Arb_obs.Tracer.t ->
  ?metrics:Arb_obs.Metrics.t ->
  n:int ->
  query ->
  planned
(** Certify then search for the best plan (§4). Raises {!Rejected} when
    certification fails or no plan satisfies the limits. [cm] selects the
    cost model pricing candidates (default {!Arb_planner.Cost_model.default};
    pass a fitted [Calibration.t]'s constants — [arb plan --calibration]).
    [tracer] and [metrics] are handed to {!Arb_planner.Search.plan} for
    span-level profiling and [arb_planner_*] counters. *)

val explain : planned -> string
(** Human-readable plan: vignettes, placements, costs, committee sizing. *)

val synthesize_database :
  ?seed:int64 -> ?skew:float -> query -> n:int -> int array array
(** A synthetic Zipf-skewed database matching the query's row shape. *)

val run :
  ?config:Arb_runtime.Exec.config ->
  db:int array array ->
  planned ->
  Arb_runtime.Exec.report
(** Execute the plan end to end over a concrete database (§5), with real
    BGV/Shamir/ZKP machinery at simulation scale. *)

val run_source :
  ?config:Arb_runtime.Exec.config ->
  src:Arb_runtime.Exec.source ->
  planned ->
  Arb_runtime.Exec.report
(** {!run} over an indexed row source instead of a materialized database —
    combined with a [Sharded] {!Arb_runtime.Exec.config} this executes
    populations far larger than memory (see
    {!Arb_queries.Registry.device_source} for a ready-made source). *)

val reference_outputs :
  ?seed:int64 -> db:int array array -> query -> Arb_lang.Interp.value list
(** The single-machine cleartext semantics (what the distributed run must
    match in distribution). *)

val outputs_to_strings : Arb_runtime.Exec.report -> string list
