type committee_kind = Keygen | Decryption | Operations

let committee_kind_name = function
  | Keygen -> "keygen"
  | Decryption -> "decryption"
  | Operations -> "operations"

type t = {
  mutable device_upload_bytes : float;
  mutable device_encrypt_ops : int;
  mutable device_proof_constraints : int;
  mutable agg_bytes_sent : float;
  mutable agg_he_adds : int;
  mutable agg_he_muls : int;
  mutable agg_proofs_verified : int;
  mutable agg_proofs_rejected : int;
  mutable committee_costs : (committee_kind * Arb_mpc.Cost.t) list;
  mutable audits_performed : int;
  mutable audits_failed : int;
  mutable vignettes_executed : int;
  mutable committees_reassigned : int;
  mutable device_tree_adds : int;
  mutable sortition_checks : int;
  mutable faults_injected : (string * int) list;
  mutable fault_recoveries : (string * int) list;
  mutable fault_retries : int;
  mutable fault_backoff_s : float;
  mutable upload_retries : int;
  mutable lost_uploads : int;
  mutable upload_latency_s : float;
  mutable audit_devices_failed : int;
  mutable shares_corrected : int;
  mutable devices_total : int;
  mutable devices_materialized : int;
  mutable cohorts_total : int;
  mutable cohorts_sampled : int;
  crypto_baseline : int * int * int * int;
      (* Snapshot of Ntt.Stats plus Bgv scratch words at creation: the
         process-lifetime kernel counters minus this baseline give the ops
         attributable to this run, which is what export emits (and what
         stays byte-identical across deterministic re-runs). *)
}

let crypto_snapshot () =
  let transforms, pointwise, saved = Arb_crypto.Ntt.Stats.get () in
  (transforms, pointwise, saved, Arb_crypto.Bgv.scratch_words_allocated ())

let create () =
  {
    crypto_baseline = crypto_snapshot ();
    device_upload_bytes = 0.0;
    device_encrypt_ops = 0;
    device_proof_constraints = 0;
    agg_bytes_sent = 0.0;
    agg_he_adds = 0;
    agg_he_muls = 0;
    agg_proofs_verified = 0;
    agg_proofs_rejected = 0;
    committee_costs = [];
    audits_performed = 0;
    audits_failed = 0;
    vignettes_executed = 0;
    committees_reassigned = 0;
    device_tree_adds = 0;
    sortition_checks = 0;
    faults_injected = [];
    fault_recoveries = [];
    fault_retries = 0;
    fault_backoff_s = 0.0;
    upload_retries = 0;
    lost_uploads = 0;
    upload_latency_s = 0.0;
    audit_devices_failed = 0;
    shares_corrected = 0;
    devices_total = 0;
    devices_materialized = 0;
    cohorts_total = 0;
    cohorts_sampled = 0;
  }

let record_committee t kind cost =
  t.committee_costs <- (kind, cost) :: t.committee_costs

let by_kind t kind = List.filter (fun (k, _) -> k = kind) t.committee_costs

let mpc_rounds t kind =
  List.fold_left (fun acc (_, c) -> acc + c.Arb_mpc.Cost.rounds) 0 (by_kind t kind)

let mpc_bytes t kind =
  List.fold_left
    (fun acc (_, c) -> acc + c.Arb_mpc.Cost.bytes_per_party)
    0 (by_kind t kind)

let committee_wall_clock t profile kind ~compute_per_round =
  let rounds = mpc_rounds t kind in
  Net.mpc_wall_clock profile ~rounds
    ~compute:(float_of_int rounds *. compute_per_round)

let faults_total t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.faults_injected

(* The single field list every rendering derives from. The record pattern
   binds each field by name with no wildcard, so adding a counter to [t]
   without listing it here is a compile error (warning 9 is fatal) — the
   pp/to_json drift this replaces cannot reappear. *)
type field_value =
  | F_int of int
  | F_float of float
  | F_counts of (string * int) list
  | F_costs of (committee_kind * Arb_mpc.Cost.t) list

let fields t =
  let {
    device_upload_bytes;
    device_encrypt_ops;
    device_proof_constraints;
    agg_bytes_sent;
    agg_he_adds;
    agg_he_muls;
    agg_proofs_verified;
    agg_proofs_rejected;
    committee_costs;
    audits_performed;
    audits_failed;
    vignettes_executed;
    committees_reassigned;
    device_tree_adds;
    sortition_checks;
    faults_injected;
    fault_recoveries;
    fault_retries;
    fault_backoff_s;
    upload_retries;
    lost_uploads;
    upload_latency_s;
    audit_devices_failed;
    shares_corrected;
    devices_total;
    devices_materialized;
    cohorts_total;
    cohorts_sampled;
    crypto_baseline = _;
  } =
    t
  in
  [
    ("device_upload_bytes", F_float device_upload_bytes);
    ("device_encrypt_ops", F_int device_encrypt_ops);
    ("device_proof_constraints", F_int device_proof_constraints);
    ("agg_bytes_sent", F_float agg_bytes_sent);
    ("agg_he_adds", F_int agg_he_adds);
    ("agg_he_muls", F_int agg_he_muls);
    ("agg_proofs_verified", F_int agg_proofs_verified);
    ("agg_proofs_rejected", F_int agg_proofs_rejected);
    ("committee_costs", F_costs committee_costs);
    ("audits_performed", F_int audits_performed);
    ("audits_failed", F_int audits_failed);
    ("vignettes_executed", F_int vignettes_executed);
    ("committees_reassigned", F_int committees_reassigned);
    ("device_tree_adds", F_int device_tree_adds);
    ("sortition_checks", F_int sortition_checks);
    ("faults_injected", F_counts faults_injected);
    ("fault_recoveries", F_counts fault_recoveries);
    ("fault_retries", F_int fault_retries);
    ("fault_backoff_s", F_float fault_backoff_s);
    ("upload_retries", F_int upload_retries);
    ("lost_uploads", F_int lost_uploads);
    ("upload_latency_s", F_float upload_latency_s);
    ("audit_devices_failed", F_int audit_devices_failed);
    ("shares_corrected", F_int shares_corrected);
    ("devices_total", F_int devices_total);
    ("devices_materialized", F_int devices_materialized);
    ("cohorts_total", F_int cohorts_total);
    ("cohorts_sampled", F_int cohorts_sampled);
  ]

let field_names t = List.map fst (fields t)

let pp fmt t =
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf fmt " ";
      match v with
      | F_int n -> Format.fprintf fmt "%s=%d" name n
      | F_float x ->
          if Float.is_integer x && Float.abs x < 1e15 then
            Format.fprintf fmt "%s=%.0f" name x
          else Format.fprintf fmt "%s=%.3f" name x
      | F_costs cs -> Format.fprintf fmt "%s=%d" name (List.length cs)
      | F_counts kvs ->
          let total = List.fold_left (fun acc (_, n) -> acc + n) 0 kvs in
          Format.fprintf fmt "%s=%d" name total;
          if total > 0 then begin
            Format.fprintf fmt "[";
            let first = ref true in
            List.iter
              (fun (k, n) ->
                if n > 0 then begin
                  if not !first then Format.fprintf fmt ",";
                  first := false;
                  Format.fprintf fmt "%s:%d" k n
                end)
              kvs;
            Format.fprintf fmt "]"
          end)
    (fields t)

let cost_json (c : Arb_mpc.Cost.t) =
  let module J = Arb_util.Json in
  J.Obj
    [
      ("rounds", J.Int c.Arb_mpc.Cost.rounds);
      ("bytes_per_party", J.Int c.Arb_mpc.Cost.bytes_per_party);
      ("triples", J.Int c.Arb_mpc.Cost.triples);
      ("mults", J.Int c.Arb_mpc.Cost.mults);
      ("opens", J.Int c.Arb_mpc.Cost.opens);
      ("comparisons", J.Int c.Arb_mpc.Cost.comparisons);
      ("truncations", J.Int c.Arb_mpc.Cost.truncations);
      ("inputs", J.Int c.Arb_mpc.Cost.inputs);
      ("field_ops", J.Int c.Arb_mpc.Cost.field_ops);
    ]

let to_json t =
  let module J = Arb_util.Json in
  J.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | F_int n -> J.Int n
           | F_float x -> J.Float x
           | F_counts pairs -> J.Obj (List.map (fun (k, n) -> (k, J.Int n)) pairs)
           | F_costs cs ->
               (* Stored newest-first; emit oldest-first so the JSON reads in
                  execution order and is stable for byte-identity checks. *)
               J.List
                 (List.rev_map
                    (fun (k, c) ->
                      J.Obj
                        [
                          ("kind", J.String (committee_kind_name k));
                          ("cost", cost_json c);
                        ])
                    cs) ))
       (fields t))

(* Population-shape fields describe the run's configuration rather than
   accumulating work, so they export as gauges: re-exporting (or exporting
   several runs into one registry) must not sum device counts. *)
let gauge_fields =
  [ "devices_total"; "devices_materialized"; "cohorts_total"; "cohorts_sampled" ]

let export t metrics =
  let module M = Arb_obs.Metrics in
  List.iter
    (fun (name, v) ->
      let cname = "arb_runtime_" ^ name in
      match v with
      | F_int n when List.mem name gauge_fields ->
          M.set_gauge metrics cname (float_of_int n)
      | F_int n -> M.add metrics cname (float_of_int n)
      | F_float x -> M.add metrics cname x
      | F_counts kvs ->
          List.iter
            (fun (k, n) ->
              M.add metrics cname ~labels:[ ("kind", k) ] (float_of_int n))
            kvs
      | F_costs cs ->
          List.iter
            (fun (k, (c : Arb_mpc.Cost.t)) ->
              let labels = [ ("committee", committee_kind_name k) ] in
              M.add metrics "arb_runtime_mpc_rounds" ~labels
                (float_of_int c.Arb_mpc.Cost.rounds);
              M.add metrics "arb_runtime_mpc_bytes_per_party" ~labels
                (float_of_int c.Arb_mpc.Cost.bytes_per_party);
              M.add metrics "arb_runtime_committees" ~labels 1.0)
            cs)
    (fields t);
  (* Crypto kernel counters for this run: current process-lifetime totals
     minus the snapshot taken at [create]. Gauges rather than counter adds
     so exporting twice does not double-count, and the values are
     byte-identical across deterministic re-runs. *)
  let transforms, pointwise, saved, scratch = crypto_snapshot () in
  let t0, pw0, sv0, sc0 = t.crypto_baseline in
  M.set_gauge metrics "arb_crypto_ntt_total" (float_of_int (transforms - t0));
  M.set_gauge metrics "arb_crypto_pointwise_total"
    (float_of_int (pointwise - pw0));
  M.set_gauge metrics "arb_crypto_reductions_saved_total"
    (float_of_int (saved - sv0));
  M.set_gauge metrics "arb_crypto_scratch_words" (float_of_int (scratch - sc0))
