type committee_kind = Keygen | Decryption | Operations

let committee_kind_name = function
  | Keygen -> "keygen"
  | Decryption -> "decryption"
  | Operations -> "operations"

type t = {
  mutable device_upload_bytes : float;
  mutable device_encrypt_ops : int;
  mutable device_proof_constraints : int;
  mutable agg_bytes_sent : float;
  mutable agg_he_adds : int;
  mutable agg_he_muls : int;
  mutable agg_proofs_verified : int;
  mutable agg_proofs_rejected : int;
  mutable committee_costs : (committee_kind * Arb_mpc.Cost.t) list;
  mutable audits_performed : int;
  mutable audits_failed : int;
  mutable vignettes_executed : int;
  mutable committees_reassigned : int;
  mutable device_tree_adds : int;
  mutable sortition_checks : int;
  mutable faults_injected : (string * int) list;
  mutable fault_recoveries : (string * int) list;
  mutable fault_retries : int;
  mutable fault_backoff_s : float;
  mutable upload_retries : int;
  mutable lost_uploads : int;
  mutable upload_latency_s : float;
  mutable audit_devices_failed : int;
  mutable shares_corrected : int;
}

let create () =
  {
    device_upload_bytes = 0.0;
    device_encrypt_ops = 0;
    device_proof_constraints = 0;
    agg_bytes_sent = 0.0;
    agg_he_adds = 0;
    agg_he_muls = 0;
    agg_proofs_verified = 0;
    agg_proofs_rejected = 0;
    committee_costs = [];
    audits_performed = 0;
    audits_failed = 0;
    vignettes_executed = 0;
    committees_reassigned = 0;
    device_tree_adds = 0;
    sortition_checks = 0;
    faults_injected = [];
    fault_recoveries = [];
    fault_retries = 0;
    fault_backoff_s = 0.0;
    upload_retries = 0;
    lost_uploads = 0;
    upload_latency_s = 0.0;
    audit_devices_failed = 0;
    shares_corrected = 0;
  }

let record_committee t kind cost =
  t.committee_costs <- (kind, cost) :: t.committee_costs

let by_kind t kind = List.filter (fun (k, _) -> k = kind) t.committee_costs

let mpc_rounds t kind =
  List.fold_left (fun acc (_, c) -> acc + c.Arb_mpc.Cost.rounds) 0 (by_kind t kind)

let mpc_bytes t kind =
  List.fold_left
    (fun acc (_, c) -> acc + c.Arb_mpc.Cost.bytes_per_party)
    0 (by_kind t kind)

let committee_wall_clock t profile kind ~compute_per_round =
  let rounds = mpc_rounds t kind in
  Net.mpc_wall_clock profile ~rounds
    ~compute:(float_of_int rounds *. compute_per_round)

let faults_total t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.faults_injected

let pp fmt t =
  Format.fprintf fmt
    "device: %.0f B up, %d encs, %d constraints; agg: %.0f B, %d adds, %d muls, %d/%d proofs ok; %d committees traced; %d audits (%d failed); %d vignettes; %d reassigned; %d tree adds; %d sortition checks"
    t.device_upload_bytes t.device_encrypt_ops t.device_proof_constraints
    t.agg_bytes_sent t.agg_he_adds t.agg_he_muls
    (t.agg_proofs_verified - t.agg_proofs_rejected)
    t.agg_proofs_verified
    (List.length t.committee_costs)
    t.audits_performed t.audits_failed t.vignettes_executed
    t.committees_reassigned t.device_tree_adds t.sortition_checks;
  if faults_total t > 0 || t.fault_retries > 0 then begin
    Format.fprintf fmt "; faults:";
    List.iter
      (fun (k, n) -> if n > 0 then Format.fprintf fmt " %s=%d" k n)
      t.faults_injected;
    Format.fprintf fmt
      " (retries=%d backoff=%.2fs lost=%d corrected=%d auditors_down=%d)"
      t.fault_retries t.fault_backoff_s t.lost_uploads t.shares_corrected
      t.audit_devices_failed
  end

let to_json t =
  let module J = Arb_util.Json in
  let cost_json (c : Arb_mpc.Cost.t) =
    J.Obj
      [
        ("rounds", J.Int c.Arb_mpc.Cost.rounds);
        ("bytes_per_party", J.Int c.Arb_mpc.Cost.bytes_per_party);
        ("triples", J.Int c.Arb_mpc.Cost.triples);
        ("mults", J.Int c.Arb_mpc.Cost.mults);
        ("opens", J.Int c.Arb_mpc.Cost.opens);
        ("comparisons", J.Int c.Arb_mpc.Cost.comparisons);
        ("truncations", J.Int c.Arb_mpc.Cost.truncations);
        ("inputs", J.Int c.Arb_mpc.Cost.inputs);
        ("field_ops", J.Int c.Arb_mpc.Cost.field_ops);
      ]
  in
  let counts pairs = J.Obj (List.map (fun (k, n) -> (k, J.Int n)) pairs) in
  J.Obj
    [
      ("device_upload_bytes", J.Float t.device_upload_bytes);
      ("device_encrypt_ops", J.Int t.device_encrypt_ops);
      ("device_proof_constraints", J.Int t.device_proof_constraints);
      ("agg_bytes_sent", J.Float t.agg_bytes_sent);
      ("agg_he_adds", J.Int t.agg_he_adds);
      ("agg_he_muls", J.Int t.agg_he_muls);
      ("agg_proofs_verified", J.Int t.agg_proofs_verified);
      ("agg_proofs_rejected", J.Int t.agg_proofs_rejected);
      ( "committee_costs",
        (* Stored newest-first; emit oldest-first so the JSON reads in
           execution order and is stable for byte-identity checks. *)
        J.List
          (List.rev_map
             (fun (k, c) ->
               J.Obj
                 [
                   ("kind", J.String (committee_kind_name k));
                   ("cost", cost_json c);
                 ])
             t.committee_costs) );
      ("audits_performed", J.Int t.audits_performed);
      ("audits_failed", J.Int t.audits_failed);
      ("vignettes_executed", J.Int t.vignettes_executed);
      ("committees_reassigned", J.Int t.committees_reassigned);
      ("device_tree_adds", J.Int t.device_tree_adds);
      ("sortition_checks", J.Int t.sortition_checks);
      ("faults_injected", counts t.faults_injected);
      ("fault_recoveries", counts t.fault_recoveries);
      ("fault_retries", J.Int t.fault_retries);
      ("fault_backoff_s", J.Float t.fault_backoff_s);
      ("upload_retries", J.Int t.upload_retries);
      ("lost_uploads", J.Int t.lost_uploads);
      ("upload_latency_s", J.Float t.upload_latency_s);
      ("audit_devices_failed", J.Int t.audit_devices_failed);
      ("shares_corrected", J.Int t.shares_corrected);
    ]
