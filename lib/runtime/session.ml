type query_result = {
  report : Exec.report;
  query_index : int;
  block_used : string;
}

type t = {
  config : Exec.config;
  max_rounds : int;
  db : int array array;
  mutable budget : Arb_dp.Budget.t;
  mutable block : string;
  mutable index : int;
  mutable chain : query_result list; (* newest first *)
}

let create ?(config = Exec.default_config) ?(max_rounds = 1000) ~budget ~db () =
  {
    config;
    max_rounds;
    db;
    budget;
    block = "genesis";
    index = 0;
    chain = [];
  }

let budget_left t = t.budget
let queries_run t = t.index

let run_with_plan t ?db ~plan query =
  let db = Option.value db ~default:t.db in
  if t.index >= t.max_rounds then
    Error
      (Printf.sprintf
         "round limit R = %d reached; the per-round failure bound p1 no longer covers further queries"
         t.max_rounds)
  else if Array.length db <> Array.length t.db then
    Error
      (Printf.sprintf
         "database override has %d rows but the session's device population is %d"
         (Array.length db) (Array.length t.db))
  else
    let n = Array.length t.db in
    let cert = Arb_lang.Certify.certify query.Arb_queries.Registry.program ~n in
    if not cert.Arb_lang.Certify.certified then
      Error
        ("certification failed: "
        ^ Option.value cert.Arb_lang.Certify.reason ~default:"?")
    else if not (Arb_dp.Budget.can_afford t.budget ~cost:cert.Arb_lang.Certify.cost)
    then
      Error
        (Format.asprintf "privacy budget exhausted: need %a, have %a"
           Arb_dp.Budget.pp cert.Arb_lang.Certify.cost Arb_dp.Budget.pp t.budget)
    else begin
      let block_used = t.block in
      (* Each query gets a fresh seed derived from the chained block so the
         whole session is reproducible yet unpredictable before B_i. *)
      let seed =
        let h = Arb_crypto.Sha256.digest (block_used ^ string_of_int (t.index + 1)) in
        String.fold_left (fun acc c -> Int64.add (Int64.mul acc 131L) (Int64.of_int (Char.code c)))
          7L (String.sub h 0 8)
      in
      let config =
        { t.config with Exec.seed; budget = t.budget; block = block_used;
          query_id = t.index + 1 }
      in
      (* Exec.run fails closed: any fault the runtime could not absorb
         (and any certificate/audit failure) comes back as a typed
         error. The session commits the budget and advances the chain
         only on Ok, so a failed query leaves everything intact. *)
      match Exec.run config ~query ~plan ~db with
      | Ok report ->
          t.budget <- report.Exec.budget_left;
          t.block <- report.Exec.certificate.Setup.next_block;
          t.index <- t.index + 1;
          let qr = { report; query_index = t.index; block_used } in
          t.chain <- qr :: t.chain;
          Ok qr
      | Error f ->
          Error
            (Format.asprintf "%a (session unchanged, budget intact)"
               Exec.pp_failure f)
    end

let run t query =
  let n = Array.length t.db in
  (* Certification is re-checked by [run_with_plan]; planning is skipped
     entirely when the caller (e.g. the service's plan cache) already holds
     a plan for this query at this deployment size. *)
  let planned =
    Arb_planner.Search.plan ~limits:Arb_planner.Constraints.no_limits ~query ~n
      ()
  in
  match planned.Arb_planner.Search.plan with
  | None -> Error "planner found no plan for this query"
  | Some plan -> run_with_plan t ~plan query

let chain_verifies t =
  let rec check prev_next = function
    | [] -> true
    | qr :: older ->
        Setup.verify_certificate qr.report.Exec.certificate
        && (match prev_next with
           | None -> true
           | Some block -> String.equal qr.report.Exec.certificate.Setup.next_block block)
        && check (Some qr.block_used) older
  in
  (* chain is newest-first: each entry's block_used must equal the next
     certificate's minted block (walking toward the genesis). *)
  check None t.chain
