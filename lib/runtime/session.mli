(** Multi-query sessions: the chain the paper's certificates form (§5.1–5.2).

    A deployment answers a sequence of queries. Each query's key-generation
    committee consumes the previous certificate's randomness block [B_i]
    (so sortition cannot be predicted ahead of time), checks and updates the
    shared privacy-budget balance, and emits the next block [B_{i+1}] inside
    its signed certificate. This module drives that chain: committees for
    query i+1 are selected with the block minted by query i, and a query is
    refused — with the budget intact — once the balance runs out.

    The per-round failure probability p1 used for committee sizing assumes
    a bounded number of rounds R (§5.1); the session enforces R. *)

type t

type query_result = {
  report : Exec.report;
  query_index : int;  (** 1-based position in the chain *)
  block_used : string;  (** the randomness block that drove sortition *)
}

val create :
  ?config:Exec.config ->
  ?max_rounds:int ->
  budget:Arb_dp.Budget.t ->
  db:int array array ->
  unit ->
  t
(** A session over a fixed device population. [max_rounds] defaults to 1000
    (the paper's R). The genesis block comes from the trusted setup
    (§3.1: the aggregator is honest at the start). *)

val budget_left : t -> Arb_dp.Budget.t
val queries_run : t -> int

val run : t -> Arb_queries.Registry.query -> (query_result, string) result
(** Execute the next query in the chain. [Error] (leaving the session
    unchanged — budget, block and index intact) when the budget cannot
    cover the query's certified cost, when certification fails, when the
    round limit R is exhausted, or when execution fails closed
    ({!Exec.run}: unabsorbed faults, detected cheating, failed audit or
    certificate). *)

val run_with_plan :
  t ->
  ?db:int array array ->
  plan:Arb_planner.Plan.t ->
  Arb_queries.Registry.query ->
  (query_result, string) result
(** {!run} with the planning step skipped: execute a plan the caller
    already holds (e.g. from the service's plan cache). Certification, the
    budget check, the round limit and the fail-closed semantics are
    identical to {!run}. [db] substitutes this query's device inputs — the
    same population answering a different question — and must have exactly
    the session's row count; the plan must have been chosen for this query
    at the session's deployment size. *)

val chain_verifies : t -> bool
(** Every certificate in the chain verifies, and each query's sortition
    block equals the previous certificate's [next_block]. *)
