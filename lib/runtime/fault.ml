type kind =
  | Committee_dropout
  | Share_corruption
  | Message_drop
  | Message_delay
  | Ciphertext_tamper
  | Audit_failure
  | Accept_drop
  | Response_truncate

let all_kinds =
  [
    Committee_dropout;
    Share_corruption;
    Message_drop;
    Message_delay;
    Ciphertext_tamper;
    Audit_failure;
    Accept_drop;
    Response_truncate;
  ]

let kind_name = function
  | Committee_dropout -> "committee_dropout"
  | Share_corruption -> "share_corruption"
  | Message_drop -> "message_drop"
  | Message_delay -> "message_delay"
  | Ciphertext_tamper -> "ciphertext_tamper"
  | Audit_failure -> "audit_failure"
  | Accept_drop -> "accept_drop"
  | Response_truncate -> "response_truncate"

let kind_index = function
  | Committee_dropout -> 0
  | Share_corruption -> 1
  | Message_drop -> 2
  | Message_delay -> 3
  | Ciphertext_tamper -> 4
  | Audit_failure -> 5
  | Accept_drop -> 6
  | Response_truncate -> 7

type spec = {
  dropout_p : float;
  dropout_at : int option;
  share_corrupt_p : float;
  corrupt_parties : int;
  message_drop_p : float;
  message_delay_p : float;
  delay_s : float;
  tamper_p : float;
  audit_fail_p : float;
  max_retries : int;
  backoff_base_s : float;
  backoff_budget_s : float;
  accept_drop_p : float;
  response_truncate_p : float;
}

let no_faults =
  {
    dropout_p = 0.0;
    dropout_at = None;
    share_corrupt_p = 0.0;
    corrupt_parties = 1;
    message_drop_p = 0.0;
    message_delay_p = 0.0;
    delay_s = 0.25;
    tamper_p = 0.0;
    audit_fail_p = 0.0;
    max_retries = 4;
    backoff_base_s = 0.05;
    backoff_budget_s = 60.0;
    accept_drop_p = 0.0;
    response_truncate_p = 0.0;
  }

let chaos =
  {
    no_faults with
    dropout_p = 0.25;
    share_corrupt_p = 0.05;
    message_drop_p = 0.1;
    message_delay_p = 0.1;
    tamper_p = 0.1;
    audit_fail_p = 0.2;
  }

type t = {
  spec : spec;
  streams : Arb_util.Rng.t array; (* one decision stream per kind *)
  sites : int array; (* opportunities seen per kind *)
  injected : int array;
  recovered : int array;
  mutable retries : int;
  mutable backoff_spent : float;
  seed : int64;
}

let n_kinds = List.length all_kinds

let create ~seed spec =
  (* Independent splitmix streams per kind: injection decisions for one
     kind never perturb another's, so a schedule is reproducible even if
     the runtime changes how sites interleave. *)
  let streams =
    Array.init n_kinds (fun k ->
        Arb_util.Rng.create
          (Int64.add
             (Int64.mul seed 0x9E3779B97F4A7C15L)
             (Int64.of_int ((k + 1) * 0x2545F49))))
  in
  {
    spec;
    streams;
    sites = Array.make n_kinds 0;
    injected = Array.make n_kinds 0;
    recovered = Array.make n_kinds 0;
    retries = 0;
    backoff_spent = 0.0;
    seed;
  }

let inactive () = create ~seed:0L no_faults

let spec t = t.spec

let probability t = function
  | Committee_dropout -> t.spec.dropout_p
  | Share_corruption -> t.spec.share_corrupt_p
  | Message_drop -> t.spec.message_drop_p
  | Message_delay -> t.spec.message_delay_p
  | Ciphertext_tamper -> t.spec.tamper_p
  | Audit_failure -> t.spec.audit_fail_p
  | Accept_drop -> t.spec.accept_drop_p
  | Response_truncate -> t.spec.response_truncate_p

let fires t kind =
  let k = kind_index kind in
  let site = t.sites.(k) in
  t.sites.(k) <- site + 1;
  (* The stream advances on every opportunity, fired or not, so the
     schedule depends only on (seed, spec, site), never on outcomes. *)
  let draw = Arb_util.Rng.uniform01 t.streams.(k) in
  let forced =
    match (kind, t.spec.dropout_at) with
    | Committee_dropout, Some at -> site = at
    | _ -> false
  in
  let hit = forced || draw < probability t kind in
  if hit then t.injected.(k) <- t.injected.(k) + 1;
  hit

let record_recovery t kind =
  let k = kind_index kind in
  t.recovered.(k) <- t.recovered.(k) + 1

let backoff t ~attempt =
  let d = t.spec.backoff_base_s *. (2.0 ** float_of_int attempt) in
  if t.backoff_spent +. d > t.spec.backoff_budget_s then None
  else begin
    t.backoff_spent <- t.backoff_spent +. d;
    t.retries <- t.retries + 1;
    Some d
  end

let sub_seed t kind =
  Int64.add
    (Int64.mul t.seed 0xBF58476D1CE4E5B9L)
    (Int64.of_int (kind_index kind + 17))

let injected t = List.map (fun k -> (k, t.injected.(kind_index k))) all_kinds
let recovered t = List.map (fun k -> (k, t.recovered.(kind_index k))) all_kinds
let retries t = t.retries
let backoff_spent t = t.backoff_spent
let total_injected t = Array.fold_left ( + ) 0 t.injected

let injected_named t = List.map (fun (k, n) -> (kind_name k, n)) (injected t)
let recovered_named t = List.map (fun (k, n) -> (kind_name k, n)) (recovered t)

let pp fmt t =
  Format.fprintf fmt "faults[seed=%Ld]:" t.seed;
  List.iter
    (fun (k, n) -> if n > 0 then Format.fprintf fmt " %s=%d" (kind_name k) n)
    (injected t);
  Format.fprintf fmt " retries=%d backoff=%.2fs" t.retries t.backoff_spent
