module C = Arb_crypto
module L = Arb_lang
module E = Arb_mpc.Engine
module Fm = Arb_mpc.Fixpoint_mpc
module Pr = Arb_mpc.Protocols
module Fx = Arb_util.Fixed
module Plan = Arb_planner.Plan

let log_src = Logs.Src.create "arb.runtime" ~doc:"Arboretum execution runtime"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* How much of the device population runs the real crypto path. [Full]
   materializes every device. [Sharded] splits the population into
   cohorts of [cohort_size] consecutive device ids, runs [sampled_cohorts]
   of them for real (encrypt, prove, verify, audit), and extrapolates the
   rest analytically from exact per-device cost formulas — while their
   exact honest plaintext contribution is carried into the aggregate as a
   single "residual" ciphertext, so decrypted outputs (and hence DP noise,
   budget deductions and certificates) are bit-identical to a Full run at
   the same seed. Peak memory is O(cohort), not O(population). *)
type sharding = Full | Sharded of { cohort_size : int; sampled_cohorts : int }

type config = {
  committee_size : int;
  byzantine_fraction : float;
  churn : float;  (* probability a committee member goes offline (§5.1) *)
  bgv_n : int;
  latency : Net.profile;
  seed : int64;
  audit_p_max : float;
  auditing_devices : int;
  tamper_aggregator : bool;
  budget : Arb_dp.Budget.t;
  block : string; (* sortition randomness block B_i (§5.1) *)
  query_id : int;
  faults : Fault.spec; (* deterministic fault plan (Fault.no_faults = clean) *)
  tracer : Arb_obs.Tracer.t option;
      (* span tracer for the execution pipeline; drive it with a Simulated
         clock and the spans advance along the protocol's simulated time *)
  workers : int;
      (* OCaml domains for the embarrassingly-parallel stages (per-device
         encryption, sum-tree groups). Reports and traces are byte-
         identical at any worker count: RNG draws happen in a sequential
         canonical-order pass, only deterministic arithmetic fans out. *)
  sharding : sharding;
}

let default_config =
  {
    committee_size = 5;
    byzantine_fraction = 0.0;
    churn = 0.0;
    bgv_n = 256;
    latency = Net.lan;
    seed = 1L;
    audit_p_max = 1e-6;
    auditing_devices = 16;
    tamper_aggregator = false;
    budget = Arb_dp.Budget.create ~epsilon:10.0 ~delta:1e-4;
    block = "B0";
    query_id = 1;
    faults = Fault.no_faults;
    tracer = None;
    workers = 1;
    sharding = Full;
  }

(* Deal indices to [workers] domains via a shared atomic counter; results
   land at their own index, so the output order is canonical regardless of
   scheduling (the same pattern as the planner's search fan-out). [f] must
   be safe to run concurrently (no shared mutable state, no RNG). *)
let parallel_map ~workers n f =
  if workers <= 1 || n <= 1 then Array.init n f
  else begin
    let out = Array.make n None in
    let idx = Atomic.make 0 in
    let work () =
      let rec go () =
        let i = Atomic.fetch_and_add idx 1 in
        if i < n then begin
          out.(i) <- Some (f i);
          go ()
        end
      in
      go ()
    in
    let spawned = min workers n - 1 in
    let doms = Array.init spawned (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join doms;
    Array.map (function Some v -> v | None -> assert false) out
  end

(* A device database that is addressed, not materialized: [row i] is
   device [i]'s input, computed on demand. A sharded run over 10^8 devices
   only ever calls [row] streaming through one cohort at a time, so the
   database never has to exist as an array. [row] must be pure (safe to
   call from any domain, no shared mutable state). *)
type source = { n_devices : int; row : int -> int array }

let source_of_db db = { n_devices = Array.length db; row = (fun i -> db.(i)) }

type report = {
  outputs : L.Interp.value list;
  trace : Trace.t;
  certificate : Setup.certificate;
  certificate_ok : bool;
  audit_root : C.Sha256.digest;
  audit_ok : bool;
  accepted_inputs : int;
  rejected_inputs : int;
  budget_left : Arb_dp.Budget.t;
  committee_wall_clock : (Trace.committee_kind * float) list;
}

exception Execution_error of string
exception Execution_degraded of string

let err fmt = Printf.ksprintf (fun s -> raise (Execution_error s)) fmt
let degraded fmt = Printf.ksprintf (fun s -> raise (Execution_degraded s)) fmt

(* Values flowing through the distributed interpreter. *)
type rvalue =
  | R_clean of L.Interp.value
  | R_svec of E.sec array (* shared fixpoint vector (raw 2^16-scaled ints) *)
  | R_sscalar of E.sec

type state = {
  cfg : config;
  query : Arb_queries.Registry.query;
  plan : Plan.t;
  rng : Arb_util.Rng.t;
  trace : Trace.t;
  inj : Fault.t;
  epsilon : float;
  sensitivity : float;
  eng_ops : E.t;
  vars : (string, rvalue) Hashtbl.t;
  mutable outputs : L.Interp.value list;
  shared_db_sums : E.sec array; (* result of sum(db), prepared by the pipeline *)
  sampled_var : string option; (* variable bound by sampleUniform, if any *)
}

(* --- observability helpers: no-ops when no tracer is configured --- *)

let spn cfg ?args name f =
  match cfg.tracer with
  | None -> f ()
  | Some t -> Arb_obs.Tracer.with_span t ~cat:"runtime" ?args name f

(* Advance the tracer's simulated clock (no-op for other clocks), so span
   boundaries line up with the protocol's estimated wall time. *)
let adv cfg dt = match cfg.tracer with None -> () | Some t -> Arb_obs.Tracer.advance t dt

(* --- helpers over the engine: values are fixpoint-raw integers --- *)

let fx_scale = 1 lsl Fx.frac_bits

let lookup st v =
  match Hashtbl.find_opt st.vars v with
  | Some x -> x
  | None -> err "unbound variable %s" v

let as_clean = function
  | R_clean v -> v
  | _ -> err "expected a public value, found a secret one"

let clean_int v = L.Interp.as_int (as_clean v)
let clean_float v = L.Interp.as_float (as_clean v)

let to_sscalar st = function
  | R_sscalar s -> s
  | R_clean v -> E.const st.eng_ops (Fx.to_raw (Fx.of_float (L.Interp.as_float v)))
  | R_svec _ -> err "expected a scalar, found a vector"

let is_secret = function R_clean _ -> false | _ -> true

(* --- clean-value arithmetic (mirrors the reference interpreter) --- *)

let clean_binop op a b : L.Interp.value =
  let fa = L.Interp.as_float a and fb = L.Interp.as_float b in
  let arith f =
    match (a, b) with
    | L.Interp.V_int x, L.Interp.V_int y -> (
        match op with
        | L.Ast.Add -> L.Interp.V_int (x + y)
        | Sub -> V_int (x - y)
        | Mul -> V_int (x * y)
        | Div -> if y = 0 then err "division by zero" else V_int (x / y)
        | _ -> assert false)
    | _ -> L.Interp.V_fix (Fx.of_float (f fa fb))
  in
  match op with
  | L.Ast.Add -> arith ( +. )
  | Sub -> arith ( -. )
  | Mul -> arith ( *. )
  | Div -> if fb = 0.0 then err "division by zero" else arith ( /. )
  | Lt -> V_bool (fa < fb)
  | Le -> V_bool (fa <= fb)
  | Gt -> V_bool (fa > fb)
  | Ge -> V_bool (fa >= fb)
  | Eq -> V_bool (fa = fb)
  | Ne -> V_bool (fa <> fb)
  | And | Or -> (
      match (a, b) with
      | V_bool x, V_bool y -> V_bool (if op = L.Ast.And then x && y else x || y)
      | _ -> err "boolean operator on non-booleans")

(* Secret binop: at least one side secret. *)
let secret_binop st op a b : rvalue =
  let eng = st.eng_ops in
  match op with
  | L.Ast.Add -> R_sscalar (E.add eng (to_sscalar st a) (to_sscalar st b))
  | Sub -> R_sscalar (E.sub eng (to_sscalar st a) (to_sscalar st b))
  | Mul -> (
      match (a, b) with
      | R_clean v, s | s, R_clean v -> (
          match v with
          | L.Interp.V_int k -> R_sscalar (E.scale eng k (to_sscalar st s))
          | _ ->
              R_sscalar
                (Fm.mul_public eng (Fx.of_float (L.Interp.as_float v)) (to_sscalar st s)))
      | _ -> R_sscalar (Fm.mul eng (to_sscalar st a) (to_sscalar st b)))
  | Div -> (
      match b with
      | R_clean v ->
          let inv = 1.0 /. L.Interp.as_float v in
          R_sscalar (Fm.mul_public eng (Fx.of_float inv) (to_sscalar st a))
      | _ -> err "division by a secret value is not supported")
  | Lt -> R_sscalar (Fm.less_than eng (to_sscalar st a) (to_sscalar st b))
  | Gt -> R_sscalar (Fm.less_than eng (to_sscalar st b) (to_sscalar st a))
  | Le ->
      let gt = Fm.less_than eng (to_sscalar st b) (to_sscalar st a) in
      R_sscalar (E.sub eng (E.const eng 1) gt)
  | Ge ->
      let lt = Fm.less_than eng (to_sscalar st a) (to_sscalar st b) in
      R_sscalar (E.sub eng (E.const eng 1) lt)
  | Eq | Ne | And | Or -> err "operator not supported on secret values"

let secret_abs st s =
  let eng = st.eng_ops in
  let neg = Fm.less_than eng s (E.const eng 0) in
  E.select eng neg (E.neg eng s) s

(* --- expression evaluation --- *)

let rec eval st (e : L.Ast.expr) : rvalue =
  match e with
  | Int_lit i -> R_clean (V_int i)
  | Fix_lit f -> R_clean (V_fix (Fx.of_float f))
  | Bool_lit b -> R_clean (V_bool b)
  | Var v -> lookup st v
  | Index (v, idxs) -> (
      let idx_vals = List.map (fun i -> clean_int (eval st i)) idxs in
      match (lookup st v, idx_vals) with
      | R_svec a, [ i ] ->
          if i < 0 || i >= Array.length a then err "index %d out of bounds" i
          else R_sscalar a.(i)
      | R_clean (V_arr a), is ->
          let rec descend v = function
            | [] -> v
            | i :: rest -> (
                match v with
                | L.Interp.V_arr a when i >= 0 && i < Array.length a ->
                    descend a.(i) rest
                | _ -> err "bad index into %s" "array")
          in
          R_clean (descend (V_arr a) is)
      | _ -> err "cannot index %s" v)
  | Unop (Neg, e) -> (
      match eval st e with
      | R_clean (V_int i) -> R_clean (V_int (-i))
      | R_clean (V_fix f) -> R_clean (V_fix (Fx.neg f))
      | R_sscalar s -> R_sscalar (E.neg st.eng_ops s)
      | _ -> err "cannot negate this value")
  | Unop (Not, e) -> (
      match eval st e with
      | R_clean (V_bool b) -> R_clean (V_bool (not b))
      | _ -> err "! on a non-boolean")
  | Binop (op, e1, e2) ->
      let a = eval st e1 and b = eval st e2 in
      if is_secret a || is_secret b then secret_binop st op a b
      else R_clean (clean_binop op (as_clean a) (as_clean b))
  | Call (f, args) -> eval_call st f args

and eval_call st f (args : L.Ast.expr list) : rvalue =
  let eng = st.eng_ops in
  match (f, args) with
  | "sum", [ Var src ]
    when src = "db" || Some src = st.sampled_var ->
      R_svec st.shared_db_sums
  | "sum", [ e ] -> (
      match eval st e with
      | R_svec a -> R_sscalar (Pr.sum eng a)
      | R_clean (V_arr a) ->
          R_clean
            (V_fix
               (Array.fold_left
                  (fun acc v -> Fx.add acc (Fx.of_float (L.Interp.as_float v)))
                  Fx.zero a))
      | _ -> err "sum over a non-array")
  | ("prefixSums" | "suffixSums"), [ e ] -> (
      match eval st e with
      | R_svec a ->
          if f = "prefixSums" then R_svec (Pr.prefix_sums eng a)
          else begin
            let rev = Array.of_list (List.rev (Array.to_list a)) in
            let sums = Pr.prefix_sums eng rev in
            R_svec (Array.of_list (List.rev (Array.to_list sums)))
          end
      | _ -> err "%s over a non-secret-vector" f)
  | "max", [ e ] -> (
      match eval st e with
      | R_svec a -> R_sscalar (Pr.max eng a)
      | _ -> err "max over a non-secret-vector")
  | "argmax", [ e ] -> (
      match eval st e with
      | R_svec a -> R_sscalar (Pr.argmax eng a)
      | _ -> err "argmax over a non-secret-vector")
  | "len", [ e ] -> (
      match eval st e with
      | R_svec a -> R_clean (V_int (Array.length a))
      | R_clean (V_arr a) -> R_clean (V_int (Array.length a))
      | _ -> err "len of a non-array")
  | "abs", [ e ] -> (
      match eval st e with
      | R_sscalar s -> R_sscalar (secret_abs st s)
      | R_clean (V_int i) -> R_clean (V_int (abs i))
      | R_clean (V_fix f) -> R_clean (V_fix (Fx.abs f))
      | _ -> err "abs of a non-scalar")
  | "clip", [ e; lo; hi ] -> (
      let lo = clean_float (eval st lo) and hi = clean_float (eval st hi) in
      match eval st e with
      | R_clean v ->
          let x = Float.min hi (Float.max lo (L.Interp.as_float v)) in
          R_clean (V_fix (Fx.of_float x))
      | R_sscalar s ->
          let lo_s = E.const eng (Fx.to_raw (Fx.of_float lo)) in
          let hi_s = E.const eng (Fx.to_raw (Fx.of_float hi)) in
          let below = Fm.less_than eng s lo_s in
          let s = E.select eng below lo_s s in
          let above = Fm.less_than eng hi_s s in
          R_sscalar (E.select eng above hi_s s)
      | _ -> err "clip of a vector")
  | "declassify", [ e ] -> (
      match eval st e with
      | R_sscalar s -> R_clean (V_fix (Fm.open_fixed eng s))
      | v -> v)
  | "laplace", [ e ] -> laplace_mechanism st (eval st e)
  | ("em" | "emGap"), [ e ] -> em_mechanism st ~gap:(f = "emGap") (eval st e)
  | "exp", [ e ] -> (
      match eval st e with
      | R_clean v -> R_clean (V_fix (Fx.of_float (exp (L.Interp.as_float v))))
      | _ -> err "exp on secret values must go through a mechanism")
  | "log", [ e ] -> (
      match eval st e with
      | R_clean v -> R_clean (V_fix (Fx.of_float (log (L.Interp.as_float v))))
      | _ -> err "log on secret values must go through a mechanism")
  | "sampleUniform", _ ->
      (* Sampling is folded into the input pipeline; the variable is bound
         in [prepare]; reaching here means the query used it oddly. *)
      err "sampleUniform may only be bound to a variable and summed"
  | _ -> err "unsupported builtin %s/%d" f (List.length args)

and laplace_mechanism st v : rvalue =
  spn st.cfg "laplace" @@ fun () ->
  let eng = st.eng_ops in
  let scale = Fx.of_float (st.sensitivity /. st.epsilon) in
  let noise_one s =
    let noised = Fm.add eng s (Fm.laplace eng ~scale) in
    L.Interp.V_fix (Fm.open_fixed eng noised)
  in
  let cost_before = copy_cost (E.cost eng) in
  let result =
    match v with
    | R_sscalar s -> R_clean (noise_one s)
    | R_svec a -> R_clean (V_arr (Array.map noise_one a))
    | R_clean _ -> err "laplace over an already-public value"
  in
  record_ops_cost st cost_before;
  result

and em_mechanism st ~gap v : rvalue =
  spn st.cfg ~args:[ ("gap", Arb_util.Json.Bool gap) ] "em" @@ fun () ->
  let eng = st.eng_ops in
  let scores =
    match v with
    | R_svec a -> a
    | _ -> err "em over a non-secret-vector"
  in
  let cost_before = copy_cost (E.cost eng) in
  let result =
    if gap then begin
      let w, g =
        Pr.em_gumbel_gap eng ~epsilon:st.epsilon ~sensitivity:st.sensitivity scores
      in
      R_clean (V_arr [| V_int w; V_fix g |])
    end
    else
      let winner =
        match st.plan.Plan.em_variant with
        | `Exponentiate ->
            Pr.em_exponentiate eng ~epsilon:st.epsilon ~sensitivity:st.sensitivity
              scores
        | `Sketch ->
            (* Count-min variant: fold the C scores into depth x width
               counters on shares, noise and open only the counters, and
               pick the winner from the cleartext point estimates — the
               approximate plan's whole point is that width << C. Hash
               placement is pure in (row, category), so the counters are
               identical at any worker count. *)
            let width, depth = sketch_shape_of_plan st.plan in
            let n = Array.length scores in
            let counters = Array.init (depth * width) (fun _ -> E.const eng 0) in
            for c = 0 to n - 1 do
              for row = 0 to depth - 1 do
                let b = (row * width) + Arb_util.Sketch.cms_bucket ~row ~width c in
                counters.(b) <- Fm.add eng counters.(b) scores.(c)
              done
            done;
            let scale =
              Arb_util.Fixed.of_float (2.0 *. st.sensitivity /. st.epsilon)
            in
            let noisy =
              spn st.cfg
                ~args:
                  [ ("width", Arb_util.Json.Int width);
                    ("depth", Arb_util.Json.Int depth) ]
                "sketch-noise"
                (fun () ->
                  Array.map
                    (fun s ->
                      Fx.to_float
                        (Fm.open_fixed eng (Fm.add eng s (Fm.laplace eng ~scale))))
                    counters)
            in
            let best = ref 0 and best_v = ref neg_infinity in
            for c = 0 to n - 1 do
              let est = Arb_util.Sketch.cms_estimate ~depth ~width noisy c in
              if est > !best_v then begin
                best := c;
                best_v := est
              end
            done;
            !best
        | `Gumbel | `None ->
            (* Honor the plan's committee parallelism (Fig. 5): the noise
               chunk size chosen by the planner determines how many
               parallel committees noise the scores; each runs its own
               engine whose costs are traced separately, and the noised
               values are handed (VSR-charged) to the argmax committee. *)
            let chunk = noise_chunk_of_plan st.plan in
            if chunk >= Array.length scores then
              Pr.em_gumbel eng ~epsilon:st.epsilon ~sensitivity:st.sensitivity scores
            else begin
              let scale =
                Arb_util.Fixed.of_float (2.0 *. st.sensitivity /. st.epsilon)
              in
              let n = Array.length scores in
              let noised = Array.make n scores.(0) in
              let pos = ref 0 in
              while !pos < n do
                let len = min chunk (n - !pos) in
                spn st.cfg
                  ~args:[ ("chunk", Arb_util.Json.Int len) ]
                  "noise-committee"
                  (fun () ->
                    (* A noising committee may lose its quorum before
                       starting; reassignment picks a replacement, charged
                       against the backoff budget like any other retry. *)
                    let rec fresh_committee attempt =
                      let committee = E.create ~parties:(E.parties eng) st.rng () in
                      if Fault.fires st.inj Fault.Committee_dropout then begin
                        st.trace.Trace.committees_reassigned <-
                          st.trace.Trace.committees_reassigned + 1;
                        match Fault.backoff st.inj ~attempt with
                        | None ->
                            err "noise-committee reassignment budget exhausted"
                        | Some _ ->
                            Fault.record_recovery st.inj Fault.Committee_dropout;
                            fresh_committee (attempt + 1)
                      end
                      else committee
                    in
                    let committee = fresh_committee 0 in
                    for k = !pos to !pos + len - 1 do
                      (* The committee holds the score via a VSR hand-off,
                         adds its Gumbel draw, and hands the noised value
                         onward. *)
                      let local =
                        E.reshare_in committee (E.mirror eng scores.(k))
                      in
                      let noisy =
                        Fm.add committee local (Fm.gumbel committee ~scale)
                      in
                      noised.(k) <- E.reshare_in eng (E.mirror committee noisy)
                    done;
                    Trace.record_committee st.trace Trace.Operations
                      (E.cost committee));
                pos := !pos + len
              done;
              E.open_value eng (Pr.argmax eng noised)
            end
      in
      R_clean (V_int winner)
  in
  record_ops_cost st cost_before;
  result

and sketch_shape_of_plan (plan : Plan.t) =
  List.fold_left
    (fun acc (v : Plan.vignette) ->
      match v.Plan.work with
      | Plan.W_he_sketch { width; depth; _ } -> (width, depth)
      | _ -> acc)
    (256, 3) plan.Plan.vignettes

and noise_chunk_of_plan (plan : Plan.t) =
  List.fold_left
    (fun acc (v : Plan.vignette) ->
      match v.Plan.work with
      | Plan.W_mpc_noise { count; _ } | Plan.W_mpc_decrypt_noise { count; _ } ->
          min acc count
      | _ -> acc)
    max_int plan.Plan.vignettes

and copy_cost (c : Arb_mpc.Cost.t) = Arb_mpc.Cost.add c (Arb_mpc.Cost.zero ())

and record_ops_cost st before =
  let now = E.cost st.eng_ops in
  let delta =
    {
      Arb_mpc.Cost.rounds = now.Arb_mpc.Cost.rounds - before.Arb_mpc.Cost.rounds;
      bytes_per_party =
        now.Arb_mpc.Cost.bytes_per_party - before.Arb_mpc.Cost.bytes_per_party;
      triples = now.Arb_mpc.Cost.triples - before.Arb_mpc.Cost.triples;
      mults = now.Arb_mpc.Cost.mults - before.Arb_mpc.Cost.mults;
      opens = now.Arb_mpc.Cost.opens - before.Arb_mpc.Cost.opens;
      comparisons = now.Arb_mpc.Cost.comparisons - before.Arb_mpc.Cost.comparisons;
      truncations = now.Arb_mpc.Cost.truncations - before.Arb_mpc.Cost.truncations;
      inputs = now.Arb_mpc.Cost.inputs - before.Arb_mpc.Cost.inputs;
      field_ops = now.Arb_mpc.Cost.field_ops - before.Arb_mpc.Cost.field_ops;
    }
  in
  Trace.record_committee st.trace Trace.Operations delta;
  st.trace.Trace.vignettes_executed <- st.trace.Trace.vignettes_executed + 1;
  adv st.cfg
    (Net.mpc_wall_clock st.cfg.latency ~rounds:delta.Arb_mpc.Cost.rounds
       ~compute:(0.002 *. float_of_int delta.Arb_mpc.Cost.rounds))

(* --- statements --- *)

let rec exec st (s : L.Ast.stmt) =
  match s with
  | Seq ss -> List.iter (exec st) ss
  | Assign (v, L.Ast.Call ("sampleUniform", _)) when Some v = st.sampled_var ->
      (* The secret sample lives in the input pipeline (binned uploads plus
         the committee's hidden window); the variable is just a tag that
         sum() recognizes. *)
      Hashtbl.replace st.vars v (R_clean (V_int 0))
  | Assign (v, e) -> Hashtbl.replace st.vars v (eval st e)
  | Assign_idx (v, idxs, e) -> (
      let idx_vals = List.map (fun i -> clean_int (eval st i)) idxs in
      let rhs = eval st e in
      let grow a i =
        if Array.length a > i then a
        else
          Array.init (i + 1) (fun j ->
              if j < Array.length a then a.(j) else E.const st.eng_ops 0)
      in
      match (Hashtbl.find_opt st.vars v, idx_vals, rhs) with
      | Some (R_svec a), [ i ], R_clean cv ->
          (* Public masking of a secret vector (topK). *)
          if i < 0 then err "mask index out of bounds";
          let a = grow a i in
          let raw = Fx.to_raw (Fx.of_float (L.Interp.as_float cv)) in
          a.(i) <- E.const st.eng_ops raw;
          Hashtbl.replace st.vars v (R_svec a)
      | Some (R_svec a), [ i ], R_sscalar s ->
          if i < 0 then err "index out of bounds";
          let a = grow a i in
          a.(i) <- s;
          Hashtbl.replace st.vars v (R_svec a)
      | (Some (R_clean _) | None), is, R_clean cv ->
          let current =
            match Hashtbl.find_opt st.vars v with
            | Some (R_clean (V_arr a)) -> L.Interp.V_arr a
            | _ -> V_arr [||]
          in
          let rec write value = function
            | [] -> cv
            | i :: rest ->
                let a =
                  match value with L.Interp.V_arr a -> Array.copy a | _ -> [||]
                in
                let a =
                  if Array.length a > i then a
                  else
                    Array.init (i + 1) (fun j ->
                        if j < Array.length a then a.(j) else L.Interp.V_int 0)
                in
                a.(i) <- write a.(i) rest;
                V_arr a
          in
          Hashtbl.replace st.vars v (R_clean (write current is))
      | (Some (R_clean _) | None), [ i ], R_sscalar s ->
          (* First secret write into a fresh vector: materialize it. *)
          let a = grow [||] i in
          a.(i) <- s;
          Hashtbl.replace st.vars v (R_svec a)
      | _ -> err "unsupported indexed assignment into %s" v)
  | Output e -> (
      match eval st e with
      | R_clean v -> st.outputs <- v :: st.outputs
      | _ -> err "output of a secret value")
  | For (v, lo, hi, body) ->
      let lo = clean_int (eval st lo) and hi = clean_int (eval st hi) in
      for i = lo to hi do
        Hashtbl.replace st.vars v (R_clean (V_int i));
        exec st body
      done
  | If (c, s1, s2) -> (
      match eval st c with
      | R_clean (V_bool b) -> exec st (if b then s1 else s2)
      | R_clean (V_int i) -> exec st (if i <> 0 then s1 else s2)
      | _ -> err "branch on a secret value")

(* --- the crypto pipeline up to shared sums --- *)

let next_pow2 x =
  let rec go p = if p >= x then p else go (2 * p) in
  go 1

let find_sampled_binding (p : L.Ast.program) =
  L.Ast.fold_stmts
    (fun acc s ->
      match s with
      | L.Ast.Assign (v, L.Ast.Call ("sampleUniform", [ _; L.Ast.Fix_lit phi ])) ->
          Some (v, phi)
      | _ -> acc)
    None p.L.Ast.body

let execute_inner cfg ~(query : Arb_queries.Registry.query) ~(plan : Plan.t) ~src =
  let rng = Arb_util.Rng.create cfg.seed in
  let trace = Trace.create () in
  (* The fault plan draws from its own per-kind streams (same seed), so a
     clean run and a faulted run make identical session-RNG draws up to the
     first recovery action. *)
  let inj = Fault.create ~seed:cfg.seed cfg.faults in
  let n_devices = src.n_devices in
  if n_devices < 4 * cfg.committee_size then
    err "need at least %d devices for %d-member committees" (4 * cfg.committee_size)
      cfg.committee_size;
  (* Cohort structure. Full is the degenerate single materialized cohort,
     so both modes run the same input loop below. Sampled cohorts are
     spread evenly across the id space (deterministic, distinct). *)
  let cohort_size, n_cohorts, sampled_idx =
    match cfg.sharding with
    | Full -> (n_devices, 1, [| 0 |])
    | Sharded { cohort_size; sampled_cohorts } ->
        if cohort_size < 1 then err "sharding: cohort_size must be >= 1";
        if sampled_cohorts < 1 then err "sharding: sampled_cohorts must be >= 1";
        let nc = (n_devices + cohort_size - 1) / cohort_size in
        let k = min sampled_cohorts nc in
        (cohort_size, nc, Array.init k (fun j -> j * nc / k))
  in
  let is_sampled c = Array.exists (fun s -> s = c) sampled_idx in
  let cohort_population c = min cohort_size (n_devices - (c * cohort_size)) in
  trace.Trace.devices_total <- n_devices;
  trace.Trace.cohorts_total <- n_cohorts;
  trace.Trace.cohorts_sampled <- Array.length sampled_idx;
  trace.Trace.devices_materialized <-
    Array.fold_left (fun acc c -> acc + cohort_population c) 0 sampled_idx;
  let program = query.Arb_queries.Registry.program in
  let cert_report = L.Certify.certify program ~n:n_devices in
  if not cert_report.L.Certify.certified then
    err "query failed certification: %s"
      (Option.value cert_report.L.Certify.reason ~default:"?");
  let cols = query.Arb_queries.Registry.categories in
  let sampled = find_sampled_binding program in
  let bins =
    match sampled with
    | None -> 1
    | Some _ -> Option.value plan.Plan.sample_bins ~default:8
  in
  let slots_needed = cols * bins in
  (* The configured ring degree is the packing unit; wider slot layouts
     split across multiple ciphertexts per device, as the paper's large-C
     queries do. *)
  let ring_n = max 16 (next_pow2 cfg.bgv_n) in
  let ct_count = (slots_needed + ring_n - 1) / ring_n in
  let min_t = max 12289 (next_pow2 (4 * n_devices)) in
  (* The plaintext modulus grows with the population (sums up to N must
     stay exact), which shrinks the noise margin q/(2t). Past t = 16384
     the single-prime AHE modulus no longer leaves room to accumulate
     millions of fresh ciphertexts, so large populations take the wider
     two-prime basis even for addition-only plans. *)
  let params =
    match plan.Plan.crypto with
    | Plan.Ahe when min_t <= 16384 -> C.Bgv.ahe_params ~n:ring_n ~min_t ()
    | Plan.Ahe | Plan.Fhe -> C.Bgv.fhe_params ~n:ring_n ~min_t ()
  in
  (* 1. Registry + sortition: one committee per logical role. The
     population is derived, not materialized — sortition ranks registry
     blocks, and committee members may live in cohorts the input stage
     never executes (their seeds derive on demand). *)
  let pop =
    Setup.population ~seed:cfg.seed ~n:n_devices
      ~byzantine_fraction:cfg.byzantine_fraction
  in
  (* Device sampling (approximate plans): inclusion is a pure PRF of
     (population seed, id) from its own derived stream, so the sampled
     device set — and every downstream byte — is identical at any worker
     count and cohort geometry. *)
  let dphi = plan.Plan.device_sample in
  let dev_included gi = Setup.device_sampled pop ~phi:dphi gi in
  let n_committees = 4 in
  let assignment =
    spn cfg "sortition" (fun () ->
        Setup.run_sortition pop ~block:cfg.block ~query_id:cfg.query_id
          ~committees:n_committees ~size:cfg.committee_size)
  in
  (* Churn (§5.1): members may be offline when their committee's vignette
     starts. A committee that loses its honest-majority quorum hands its
     tasks to the next one (reassign_failed); the run only aborts if every
     committee is below quorum. *)
  let quorum = (cfg.committee_size / 2) + 1 in
  let assignment = ref assignment in
  let dropout_seen = ref false in
  let kg_committee =
    let rec pick attempts idx =
      if attempts >= n_committees then
        err "catastrophic churn: no committee retained a quorum"
      else
        let members = !assignment.C.Sortition.committees.(idx) in
        let survivors =
          Array.of_list
            (List.filter
               (fun _ -> Arb_util.Rng.uniform01 rng >= cfg.churn)
               (Array.to_list members))
        in
        (* Injected dropout: the whole pick loses its quorum regardless of
           churn, and the retry is charged against the backoff budget. *)
        let dropped = Fault.fires inj Fault.Committee_dropout in
        if dropped then dropout_seen := true;
        if (not dropped) && Array.length survivors >= quorum then begin
          if !dropout_seen then Fault.record_recovery inj Fault.Committee_dropout;
          survivors
        end
        else begin
          trace.Trace.committees_reassigned <-
            trace.Trace.committees_reassigned + 1;
          (if dropped then
             match Fault.backoff inj ~attempt:attempts with
             | None -> err "committee reassignment backoff budget exhausted"
             | Some _ -> ());
          assignment := C.Sortition.reassign_failed !assignment ~failed:idx;
          pick (attempts + 1) ((idx + 1) mod n_committees)
        end
    in
    spn cfg "committee-select" (fun () -> pick 0 0)
  in
  let assignment = !assignment in
  ignore assignment;
  (* 2. Key generation ceremony. *)
  let eng_keygen = E.create ~parties:cfg.committee_size rng () in
  let plan_digest = C.Sha256.digest (Format.asprintf "%a" Plan.pp plan) in
  let sk, pk, certificate =
    spn cfg "keygen" (fun () ->
        let r =
          Setup.keygen_ceremony rng ~device_seed:(Setup.device_seed pop)
            ~committee:kg_committee ~params
            ~query_id:cfg.query_id ~plan_digest ~budget:cfg.budget
            ~cost:
              (* Privacy amplification by subsampling: a sampled plan is
                 charged the strictly smaller amplified cost (§2.1). *)
              (match dphi with
              | None -> cert_report.L.Certify.cost
              | Some phi ->
                  Arb_dp.Budget.amplify cert_report.L.Certify.cost ~phi)
            ~registry_root:assignment.C.Sortition.registry_root
            ~engine:eng_keygen
        in
        Arb_mpc.Protocols.charge_zk_setup eng_keygen
          ~constraints:(3 * slots_needed);
        Trace.record_committee trace Trace.Keygen (E.cost eng_keygen);
        adv cfg
          (Trace.committee_wall_clock trace cfg.latency Trace.Keygen
             ~compute_per_round:0.002);
        r)
  in
  let certificate_ok = Setup.verify_certificate certificate in
  Log.info (fun m ->
      m "query %d: keygen done (ring %d, t=%d, %d ct/device), certificate %s"
        cfg.query_id params.C.Bgv.n params.C.Bgv.t ct_count
        (if certificate_ok then "verified" else "INVALID"));
  (* Only participating devices fetch the public key. *)
  let key_recipients =
    match dphi with
    | None -> float_of_int n_devices
    | Some phi -> Float.round (phi *. float_of_int n_devices)
  in
  trace.Trace.agg_bytes_sent <-
    trace.Trace.agg_bytes_sent
    +. (key_recipients *. float_of_int (C.Bgv.public_key_bytes params));
  (* 3. Input: encrypt + prove; aggregator verifies and aggregates. *)
  let audit = Audit.create () in
  let statement : C.Zkp.statement =
    match (program.L.Ast.row, sampled) with
    | L.Ast.One_hot len, None -> C.Zkp.One_hot { length = len }
    | L.Ast.One_hot len, Some _ -> C.Zkp.One_hot_binned { bins; length = len }
    | L.Ast.Bounded { width; lo; hi }, _ -> C.Zkp.Range { lo; hi; count = width }
  in
  let nonce = Setup.certificate_payload certificate in
  (* Did the planner outsource the aggregation to a device sum-tree
     (§4.3)? If so, devices perform the homomorphic additions in groups
     and pass partial sums up; the aggregator only combines the roots. *)
  let sum_outsourced =
    List.exists
      (fun (v : Plan.vignette) ->
        match (v.Plan.work, v.Plan.location) with
        | Plan.W_he_sum _, Plan.Committees _ -> true
        | _ -> false)
      plan.Plan.vignettes
  in
  let pending_roots = ref [] in
  let acc_ct = ref None in
  let accepted = ref 0 and rejected = ref 0 in
  (* Devices the sampling PRF actually included (= n_devices for exact
     plans); the interpreted program's N so sampled sums pair with the
     matching population count. *)
  let included_devices = ref 0 in
  (* Uploads travel over a link whose drops and delays come from the fault
     plan; a delay is absorbed as latency, a drop costs a retry. The
     per-kind fault streams are only consulted for materialized devices —
     the sharding fidelity contract pins injected faults inside sampled
     cohorts (DESIGN.md §11). *)
  let fspec = Fault.spec inj in
  let link =
    Net.lossy cfg.latency
      ~drop:(fun () -> Fault.fires inj Fault.Message_drop)
      ~delay:(fun () ->
        if Fault.fires inj Fault.Message_delay then begin
          Fault.record_recovery inj Fault.Message_delay;
          fspec.Fault.delay_s
        end
        else 0.0)
  in
  let lost = ref 0 in
  let clean_latency = cfg.latency.Net.rtt /. 2.0 in
  let constraints = C.Zkp.statement_constraints statement in
  (* Byte accounting uses the real wire format's length — computed, not
     materialized: fresh ciphertexts are degree 1. *)
  let upload_bytes =
    C.Zkp.proof_bytes + (ct_count * C.Bgv.serialized_bytes params 1)
  in
  (* Exact honest plaintext contribution of the extrapolated cohorts,
     accumulated slot-wise and injected as one ciphertext after the input
     loop. *)
  let residual = Array.make slots_needed 0 in
  let residual_devices = ref 0 in
  (* Device sum-tree (§4.3): fold ciphertext uploads level by level in
     fanout-sized groups, each group summed by a participant device
     (attributed to device_tree_adds); the aggregator audits every vertex.
     Runs once per materialized cohort (bounding peak memory at O(cohort))
     and once more over the cohort roots. *)
  let fanout = 8 in
  let rec tree_reduce ~label level cts =
    match cts with
    | [] -> err "no valid inputs"
    | [ only ] -> only
    | _ ->
        let rec groups acc cur k = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | ct :: rest ->
              if k = fanout then groups (List.rev cur :: acc) [ ct ] 1 rest
              else groups acc (ct :: cur) (k + 1) rest
        in
        let gs = Array.of_list (groups [] [] 0 cts) in
        (* Groups are disjoint, so their folds fan out over domains; the
           within-group fold stays sequential (the noise bookkeeping's
           log-sum-exp is float, hence order-sensitive) and the merge
           keeps canonical group order. Counters move out of the fold so
           the parallel path stays race-free — same totals. *)
        let folded =
          parallel_map ~workers:cfg.workers (Array.length gs) (fun gi ->
              match gs.(gi) with
              | [] -> assert false
              | first :: rest ->
                  List.fold_left
                    (fun acc cts -> Array.map2 C.Bgv.accumulate acc cts)
                    first rest)
        in
        Array.iter
          (fun g ->
            trace.Trace.device_tree_adds <-
              trace.Trace.device_tree_adds + ((List.length g - 1) * ct_count))
          gs;
        let nodes = Array.to_list folded in
        Audit.record_step audit
          (Printf.sprintf "%s|%d|%d" label level (List.length nodes));
        tree_reduce ~label (level + 1) nodes
  in
  (* A device's private draws come from its own per-index stream, in the
     protocol order Byzantine-flag, bin, encryption randomness — a pure
     function of (seed, id), identical whether its cohort is materialized
     or streamed, untouched by worker count or by any other device. *)
  let device_byz drng = Arb_util.Rng.uniform01 drng < cfg.byzantine_fraction in
  let device_bin drng = if bins > 1 then Arb_util.Rng.int drng bins else 0 in
  spn cfg "inputs" (fun () ->
  for c = 0 to n_cohorts - 1 do
    let lo = c * cohort_size in
    let size = cohort_population c in
    if is_sampled c then begin
      (* Materialized cohort: the real crypto path.
         Pass 1 (sequential, canonical order): per-device stream draws and
         row materialization. *)
      let prepared =
        Array.init size (fun k ->
            let gi = lo + k in
            (* A device outside the sample does no work at all: no stream
               draw, no row, no upload. *)
            if not (dev_included gi) then None
            else
              let drng = Setup.device_input_rng pop gi in
              let byz = device_byz drng in
              let bin = device_bin drng in
              let row = src.row gi in
              let row = if byz then Array.map (fun _ -> 1) row else row in
              let slots = Array.make slots_needed 0 in
              Array.iteri
                (fun j v -> if j < cols then slots.((bin * cols) + j) <- v)
                row;
              let rand =
                Array.init ct_count (fun _ ->
                    C.Bgv.sample_encrypt_randomness pk drng)
              in
              Some (byz, slots, row, rand))
      in
      (* Pass 2 (parallel fan-out): the deterministic per-device compute —
         proof construction and the encryption arithmetic (no RNG access in
         Bgv.encrypt_with_randomness). *)
      let computed =
        parallel_map ~workers:cfg.workers size (fun k ->
            match prepared.(k) with
            | None -> None
            | Some (byz, slots, row, rand) ->
            (* The proof statement covers the full slot layout for one-hot
               rows (so a device cannot claim several bins); range
               statements cover the raw row. *)
            let witness =
              match statement with
              | C.Zkp.One_hot _ | C.Zkp.One_hot_binned _ | C.Zkp.Bits _ ->
                  slots
              | C.Zkp.Range _ -> row
            in
            let prover = string_of_int (lo + k) in
            let proof =
              if byz then C.Zkp.forge statement ~prover ~nonce
              else C.Zkp.prove statement ~witness ~prover ~nonce
            in
            let cts =
              Array.init ct_count (fun kk ->
                  let slo = kk * ring_n in
                  let len = min ring_n (slots_needed - slo) in
                  C.Bgv.encrypt_with_randomness pk rand.(kk)
                    (Array.sub slots slo len))
            in
            Some (proof, cts))
      in
      (* Pass 3 (sequential, canonical order): trace accounting, the lossy
         uplink (per-kind fault streams fire in device order), verification
         and aggregation. *)
      let cohort_cts = ref [] in
      Array.iteri
        (fun k result ->
          match result with
          | None -> ()
          | Some (proof, cts) ->
          incr included_devices;
          let gi = lo + k in
          let prover = string_of_int gi in
          trace.Trace.device_encrypt_ops <-
            trace.Trace.device_encrypt_ops + ct_count;
          trace.Trace.device_proof_constraints <-
            trace.Trace.device_proof_constraints + constraints;
          trace.Trace.device_upload_bytes <-
            trace.Trace.device_upload_bytes +. float_of_int upload_bytes;
          (* The device did its work either way; the transmit decides
             whether the aggregator ever sees it. *)
          match
            Net.transmit link
              ~max_attempts:(fspec.Fault.max_retries + 1)
              ~backoff:(fun a -> Fault.backoff inj ~attempt:a)
          with
          | None ->
              incr lost;
              trace.Trace.lost_uploads <- trace.Trace.lost_uploads + 1
          | Some del ->
              if del.Net.attempts > 1 then begin
                trace.Trace.upload_retries <-
                  trace.Trace.upload_retries + (del.Net.attempts - 1);
                Fault.record_recovery inj Fault.Message_drop
              end;
              trace.Trace.upload_latency_s <-
                trace.Trace.upload_latency_s +. del.Net.latency;
              adv cfg del.Net.latency;
              (* Aggregator verifies and aggregates. *)
              trace.Trace.agg_proofs_verified <-
                trace.Trace.agg_proofs_verified + 1;
              if C.Zkp.verify statement proof ~prover ~nonce then begin
                incr accepted;
                if sum_outsourced then cohort_cts := cts :: !cohort_cts
                else
                  (acc_ct :=
                     match !acc_ct with
                     | None -> Some cts
                     | Some acc ->
                         trace.Trace.agg_he_adds <-
                           trace.Trace.agg_he_adds + ct_count;
                         (* In-place accumulation: the fold owns [acc]. *)
                         Some (Array.map2 C.Bgv.accumulate acc cts));
                if gi mod 64 = 0 then
                  Audit.record_step audit
                    (Printf.sprintf "sum-step|%d|%d" gi ct_count)
              end
              else begin
                incr rejected;
                trace.Trace.agg_proofs_rejected <-
                  trace.Trace.agg_proofs_rejected + 1
              end)
        computed;
      if sum_outsourced then
        match List.rev !cohort_cts with
        | [] -> ()
        | cts ->
            pending_roots :=
              tree_reduce ~label:(Printf.sprintf "cohort-tree|%d" c) 0 cts
              :: !pending_roots
    end
    else begin
      (* Extrapolated cohort: stream the devices without crypto. Honest
         rows fold into the exact residual slot sums (same bin layout and
         the same mod-t wrap as homomorphic accumulation); Byzantine
         devices contribute nothing, exactly as their forged proofs would
         be rejected in a materialized pass. Cost counters extrapolate
         from the same closed-form per-device costs the materialized path
         charges, so report accounting stays Full-comparable. *)
      let byz_count = ref 0 in
      let inc_count = ref 0 in
      for k = 0 to size - 1 do
        let gi = lo + k in
        if dev_included gi then begin
          incr inc_count;
          let drng = Setup.device_input_rng pop gi in
          if device_byz drng then incr byz_count
          else begin
            let bin = device_bin drng in
            let row = src.row gi in
            Array.iteri
              (fun j v ->
                if j < cols then
                  residual.((bin * cols) + j) <- residual.((bin * cols) + j) + v)
              row
          end
        end
      done;
      let streamed = !inc_count in
      included_devices := !included_devices + streamed;
      let honest = streamed - !byz_count in
      residual_devices := !residual_devices + honest;
      accepted := !accepted + honest;
      rejected := !rejected + !byz_count;
      trace.Trace.device_encrypt_ops <-
        trace.Trace.device_encrypt_ops + (streamed * ct_count);
      trace.Trace.device_proof_constraints <-
        trace.Trace.device_proof_constraints + (streamed * constraints);
      trace.Trace.device_upload_bytes <-
        trace.Trace.device_upload_bytes +. float_of_int (streamed * upload_bytes);
      trace.Trace.agg_proofs_verified <-
        trace.Trace.agg_proofs_verified + streamed;
      trace.Trace.agg_proofs_rejected <-
        trace.Trace.agg_proofs_rejected + !byz_count;
      trace.Trace.upload_latency_s <-
        trace.Trace.upload_latency_s +. (float_of_int streamed *. clean_latency);
      adv cfg (float_of_int streamed *. clean_latency);
      if sum_outsourced then
        trace.Trace.device_tree_adds <-
          trace.Trace.device_tree_adds + (max 0 (honest - 1) * ct_count)
      else
        trace.Trace.agg_he_adds <- trace.Trace.agg_he_adds + (honest * ct_count);
      Audit.record_step audit
        (Printf.sprintf "cohort-extrapolate|%d|%d|%d" c streamed !byz_count)
    end
  done;
  match cfg.tracer with
  | Some t ->
      Arb_obs.Tracer.add_args t
        [
          ("accepted", Arb_util.Json.Int !accepted);
          ("rejected", Arb_util.Json.Int !rejected);
          ("lost", Arb_util.Json.Int !lost);
        ]
  | None -> ());
  (* Fail closed rather than silently answer over a partial database: a
     lost input would change the query's true answer. *)
  if !lost > 0 then
    degraded "%d device upload%s lost despite %d retries" !lost
      (if !lost = 1 then "" else "s")
      fspec.Fault.max_retries;
  (* Residual injection: the extrapolated cohorts' exact honest sums,
     reduced mod t (matching the wrap semantics of mod-t homomorphic
     accumulation, which matters when per-slot sums exceed t) and
     encrypted once under a dedicated derived stream. After the
     homomorphic add, the aggregate decrypts to exactly what a Full run
     at the same seed produces. *)
  (if n_cohorts > Array.length sampled_idx then
     spn cfg "residual-inject" (fun () ->
         let t_plain = params.C.Bgv.t in
         let reduced =
           Array.map (fun v -> ((v mod t_plain) + t_plain) mod t_plain) residual
         in
         let rrng = Setup.residual_rng pop in
         let cts =
           Array.init ct_count (fun k ->
               let slo = k * ring_n in
               let len = min ring_n (slots_needed - slo) in
               C.Bgv.encrypt pk rrng (Array.sub reduced slo len))
         in
         trace.Trace.agg_he_adds <- trace.Trace.agg_he_adds + ct_count;
         Audit.record_step audit
           (Printf.sprintf "residual-inject|%d" !residual_devices);
         if sum_outsourced then pending_roots := cts :: !pending_roots
         else
           acc_ct :=
             (match !acc_ct with
             | None -> Some cts
             | Some acc -> Some (Array.map2 C.Bgv.accumulate acc cts))));
  (* Final combine of the per-cohort partial-sum roots (outsourced plans);
     in Full mode this is the single cohort's root passing straight
     through. *)
  if sum_outsourced then
    spn cfg "sum-tree" (fun () ->
        acc_ct :=
          Some (tree_reduce ~label:"tree-level" 0 (List.rev !pending_roots)));
  let sum_cts =
    match !acc_ct with Some cts -> cts | None -> err "no valid inputs"
  in
  Log.info (fun m ->
      m "aggregation done: %d accepted, %d rejected%s" !accepted !rejected
        (if sum_outsourced then " (device sum-tree)" else ""));
  (* One per-run tamper opportunity: the aggregator rewrites an aggregated
     ciphertext. Its audit commitment no longer matches, so the device
     spot-checks below catch it and the run fails closed. *)
  let ct_tampered = Fault.fires inj Fault.Ciphertext_tamper in
  (* Devices spot-check the sortition: recompute a few members' committee
     assignments from the public block and registry (§5.1). *)
  let checks = min 8 (Array.length kg_committee) in
  spn cfg "sortition-check" (fun () ->
  for c = 0 to checks - 1 do
    let member = kg_committee.(c) in
    (match
       Setup.verify_member pop ~block:cfg.block ~query_id:cfg.query_id
         ~committees:n_committees ~size:cfg.committee_size ~id:member
     with
    | Some _ -> trace.Trace.sortition_checks <- trace.Trace.sortition_checks + 1
    | None -> err "sortition verification failed for committee member %d" member)
  done);
  (* 4. Optional secrecy-of-the-sample masking. *)
  let eng_decrypt = E.create ~parties:cfg.committee_size rng () in
  let eng_ops = E.create ~parties:cfg.committee_size rng () in
  let phi = match sampled with Some (_, phi) -> phi | None -> 1.0 in
  let window = max 1 (int_of_float (Float.round (phi *. float_of_int bins))) in
  let window_start = if bins > 1 then Arb_util.Rng.int rng bins else 0 in
  let in_window b =
    let rel = (b - window_start + bins) mod bins in
    rel < window
  in
  let sum_cts =
    match (sampled, plan.Plan.crypto) with
    | Some _, Plan.Fhe ->
        spn cfg "mask" @@ fun () ->
        (* The committee's secret window mask is applied under encryption:
           a real ciphertext-by-ciphertext multiply plus relinearization,
           per ciphertext chunk. *)
        let rk = C.Bgv.relin_keygen params rng sk in
        let mask =
          Array.init slots_needed (fun slot -> if in_window (slot / cols) then 1 else 0)
        in
        Audit.record_step audit "fhe-mask";
        Array.mapi
          (fun k ct ->
            let lo = k * ring_n in
            let len = min ring_n (slots_needed - lo) in
            let mask_ct = C.Bgv.encrypt pk rng (Array.sub mask lo len) in
            trace.Trace.agg_he_muls <- trace.Trace.agg_he_muls + 1;
            C.Bgv.relinearize rk (C.Bgv.mul ct mask_ct))
          sum_cts
    | _ -> sum_cts
  in
  (* 5. Threshold decryption into the operations committee. *)
  let key_shares =
    C.Bgv.share_secret_key params rng sk ~parties:cfg.committee_size
  in
  (* Each ciphertext chunk is threshold-decrypted; the slot views are
     concatenated back into the full layout. *)
  let decrypted =
    spn cfg "decrypt" (fun () ->
        let decrypted =
          Array.concat
            (Array.to_list
               (Array.map
                  (fun ct ->
                    let partials =
                      Array.to_list
                        (Array.map
                           (fun sh -> C.Bgv.partial_decrypt params rng sh ct)
                           key_shares)
                    in
                    C.Bgv.combine_partials params ct partials)
                  sum_cts))
        in
        Arb_mpc.Protocols.charge_bgv_decrypt eng_decrypt ~n:params.C.Bgv.n
          ~rns_primes:(List.length params.C.Bgv.q_primes) ~ciphertexts:ct_count;
        Trace.record_committee trace Trace.Decryption (E.cost eng_decrypt);
        adv cfg
          (Trace.committee_wall_clock trace cfg.latency Trace.Decryption
             ~compute_per_round:0.002);
        decrypted)
  in
  Audit.record_step audit "decrypt";
  (* Centered plaintext values (sums can be masked with negatives). *)
  let t_mod = params.C.Bgv.t in
  let center v = if v > t_mod / 2 then v - t_mod else v in
  (* Fold bins: per category, sum bins inside the window (for unsampled
     queries bins = 1 and this is the identity). *)
  let sums =
    Array.init cols (fun cat ->
        let acc = ref 0 in
        for b = 0 to bins - 1 do
          let v = center decrypted.((b * cols) + cat) in
          match (sampled, plan.Plan.crypto) with
          | None, _ -> acc := !acc + v
          | Some _, Plan.Fhe ->
              (* Mask already applied homomorphically. *)
              acc := !acc + v
          | Some _, Plan.Ahe ->
              (* Committee masks on shares: only window bins contribute. *)
              if in_window b then acc := !acc + v
        done;
        !acc)
  in
  (* Coarsened-scan variant: the plan grouped adjacent bins homomorphically
     before decryption, so downstream stages see group-resolution sums
     (each group's mass on its first bin, full width preserved). *)
  let sums =
    let groups =
      List.fold_left
        (fun acc (v : Plan.vignette) ->
          match v.Plan.work with
          | Plan.W_he_coarsen { groups; _ } -> Some groups
          | _ -> acc)
        None plan.Plan.vignettes
    in
    match groups with
    | None -> sums
    | Some groups ->
        Audit.record_step audit (Printf.sprintf "coarsen|%d" groups);
        Arb_util.Sketch.coarsen ~groups sums
  in
  (* Hand the sums from the decryption committee to the operations
     committee with real verifiable secret redistribution (§5.4): each
     decryption-committee member re-shares its Shamir share of the value to
     the operations committee with commitments; the receivers verify and
     recombine. The recombined value seeds the ops engine's sharing (and
     must equal the decrypted sum — checked as a protocol invariant). *)
  let vsr_field = C.Field.create 998244353 in
  let vsr_threshold = (cfg.committee_size - 1) / 2 in
  let vsr_handoff v =
    let centered = ((v mod vsr_field.C.Field.p) + vsr_field.C.Field.p) mod vsr_field.C.Field.p in
    let dec_shares =
      C.Shamir.share vsr_field rng ~secret:centered ~threshold:vsr_threshold
        ~parties:cfg.committee_size
    in
    let subs_and_commits =
      Array.map
        (fun sh ->
          C.Vsr.redistribute vsr_field rng sh ~new_threshold:vsr_threshold
            ~new_parties:cfg.committee_size)
        dec_shares
    in
    let sender_idxs =
      Array.to_list (Array.map (fun (s : C.Shamir.share) -> s.C.Shamir.idx) dec_shares)
    in
    (* A subshare may be corrupted in transit; Vsr.verify_subshare catches
       it against the sender's commitments and the honest sender re-sends
       the same subshare (no fresh randomness), bounded by the backoff
       budget. *)
    let corrupt_in_transit = ref (Fault.fires inj Fault.Share_corruption) in
    let rec receive attempt =
      match
        List.init cfg.committee_size (fun j ->
            let pairs =
              Array.to_list
                (Array.mapi
                   (fun sender (subs, commits) ->
                     let sub = subs.(j) in
                     let sub =
                       if !corrupt_in_transit && j = 0 && sender = 0 then
                         { sub with C.Vsr.value = sub.C.Vsr.value + 1 }
                       else sub
                     in
                     if not (C.Vsr.verify_subshare sub commits.(j)) then
                       err "VSR commitment verification failed";
                     (sub.C.Vsr.from_idx, sub.C.Vsr.value))
                   subs_and_commits)
            in
            C.Vsr.combine vsr_field ~sender_idxs pairs ~to_idx:(j + 1))
      with
      | shares -> shares
      | exception Execution_error _ when !corrupt_in_transit -> (
          match Fault.backoff inj ~attempt with
          | None -> err "VSR re-send backoff budget exhausted"
          | Some _ ->
              Pr.charge_vsr_retry eng_ops;
              Fault.record_recovery inj Fault.Share_corruption;
              corrupt_in_transit := false;
              receive (attempt + 1))
    in
    let ops_shares = receive 0 in
    let recombined =
      C.Field.center vsr_field (C.Shamir.reconstruct vsr_field ops_shares)
    in
    if recombined <> v then err "VSR hand-off corrupted a value";
    E.reshare_in eng_ops (v * fx_scale)
  in
  let shared_db_sums = spn cfg "vsr-handoff" (fun () -> Array.map vsr_handoff sums) in
  (* Byzantine minority inside the operations committee: before each share
     opening the saboteur corrupts [corrupt_parties] shares. Within the
     decoding radius the opening self-heals (robust Reed–Solomon);
     beyond it, Cheating_detected aborts the run. *)
  let sab_hits = ref 0 in
  E.set_saboteur eng_ops
    (Some
       (fun () ->
         if Fault.fires inj Fault.Share_corruption then begin
           incr sab_hits;
           List.init fspec.Fault.corrupt_parties (fun p -> p)
         end
         else []));
  (* 6. Interpret the rest of the program on shares. *)
  let st =
    {
      cfg;
      query;
      plan;
      rng;
      trace;
      inj;
      epsilon = program.L.Ast.epsilon;
      sensitivity = cert_report.L.Certify.sensitivity;
      eng_ops;
      vars = Hashtbl.create 16;
      outputs = [];
      shared_db_sums;
      sampled_var = Option.map fst sampled;
    }
  in
  (* A sampled plan's sums cover only the included devices; pair them with
     the matching N so ratios computed by the program stay unbiased. *)
  let n_for_program =
    match dphi with None -> n_devices | Some _ -> !included_devices
  in
  Hashtbl.replace st.vars "N" (R_clean (V_int n_for_program));
  Hashtbl.replace st.vars "C" (R_clean (V_int cols));
  (match sampled with
  | Some (v, _) -> Hashtbl.replace st.vars v (R_clean (V_int 0)) (* placeholder *)
  | None -> ());
  spn cfg "interpret" (fun () -> exec st program.L.Ast.body);
  (* Reaching here means every corrupted opening was corrected. *)
  E.set_saboteur eng_ops None;
  for _ = 1 to !sab_hits do
    Fault.record_recovery inj Fault.Share_corruption
  done;
  (* 7. Audit: seal; sampled devices challenge random steps. *)
  let audit_root = Audit.seal audit in
  if (cfg.tamper_aggregator || ct_tampered) && Audit.steps audit > 0 then
    Audit.tamper audit 0;
  let steps = Audit.steps audit in
  (* Auditing devices may be offline; the survivors recompute their
     challenge count so the detection bound p_max still holds. Only when
     every auditor is gone does the run degrade. *)
  let auditors =
    let alive = ref 0 in
    for _ = 1 to cfg.auditing_devices do
      if Fault.fires inj Fault.Audit_failure then
        trace.Trace.audit_devices_failed <- trace.Trace.audit_devices_failed + 1
      else incr alive
    done;
    !alive
  in
  if auditors = 0 then
    degraded "all %d auditing devices failed before the spot-check"
      cfg.auditing_devices;
  for _ = 1 to trace.Trace.audit_devices_failed do
    Fault.record_recovery inj Fault.Audit_failure
  done;
  let k = Audit.challenges_per_device ~steps ~devices:auditors ~p_max:cfg.audit_p_max in
  let audit_ok = ref true in
  spn cfg
    ~args:
      [
        ("auditors", Arb_util.Json.Int auditors);
        ("challenges", Arb_util.Json.Int (auditors * k));
      ]
    "audit"
    (fun () ->
      for _ = 1 to auditors * k do
        let i = Arb_util.Rng.int rng steps in
        let leaf, proof = Audit.respond audit i in
        trace.Trace.audits_performed <- trace.Trace.audits_performed + 1;
        if not (Audit.check ~root:audit_root ~leaf proof) then begin
          audit_ok := false;
          trace.Trace.audits_failed <- trace.Trace.audits_failed + 1
        end
      done);
  (* Wall-clock estimates for the committee MPCs under the configured
     network profile: rounds measured from the real share-level execution,
     per-round compute from the simulated ops (§7.5 methodology). *)
  let committee_wall_clock =
    List.map
      (fun kind ->
        ( kind,
          Trace.committee_wall_clock trace cfg.latency kind
            ~compute_per_round:0.002 ))
      [ Trace.Keygen; Trace.Decryption; Trace.Operations ]
  in
  trace.Trace.faults_injected <- Fault.injected_named inj;
  trace.Trace.fault_recoveries <- Fault.recovered_named inj;
  trace.Trace.fault_retries <- Fault.retries inj;
  trace.Trace.fault_backoff_s <- Fault.backoff_spent inj;
  trace.Trace.shares_corrected <- List.length (E.detected_cheaters eng_ops);
  if Fault.total_injected inj > 0 then
    Log.info (fun m -> m "fault plan absorbed: %a" Fault.pp inj);
  {
    outputs = List.rev st.outputs;
    trace;
    certificate;
    certificate_ok;
    audit_root;
    audit_ok = !audit_ok;
    accepted_inputs = !accepted;
    rejected_inputs = !rejected;
    budget_left = certificate.Setup.budget_left;
    committee_wall_clock;
  }

let execute_source cfg ~(query : Arb_queries.Registry.query) ~(plan : Plan.t)
    ~src =
  match cfg.tracer with
  | None -> execute_inner cfg ~query ~plan ~src
  | Some t ->
      (* with_span closes the root span even when the run fails closed, so
         aborted executions still serialize as well-nested traces. *)
      Arb_obs.Tracer.with_span t ~cat:"runtime"
        ~args:
          [
            ("query", Arb_util.Json.String query.Arb_queries.Registry.name);
            ("n", Arb_util.Json.Int src.n_devices);
            ("crypto", Arb_util.Json.String (Plan.crypto_name plan.Plan.crypto));
            ("seed", Arb_util.Json.String (Int64.to_string cfg.seed));
          ]
        "exec"
        (fun () -> execute_inner cfg ~query ~plan ~src)

let execute cfg ~query ~plan ~db =
  execute_source cfg ~query ~plan ~src:(source_of_db db)

type failure = { stage : string; reason : string }

let pp_failure fmt f = Format.fprintf fmt "[%s] %s" f.stage f.reason

let run_source cfg ~query ~plan ~src =
  match execute_source cfg ~query ~plan ~src with
  | report ->
      (* Fail closed: outputs are released only when both the budget
         certificate and the audit spot-checks verified. *)
      if not report.certificate_ok then
        Error
          { stage = "certificate"; reason = "budget certificate failed to verify" }
      else if not report.audit_ok then
        Error
          {
            stage = "audit";
            reason = "audit spot-checks failed; outputs withheld";
          }
      else Ok report
  | exception Execution_degraded m -> Error { stage = "degraded"; reason = m }
  | exception Execution_error m -> Error { stage = "execute"; reason = m }
  | exception E.Cheating_detected m -> Error { stage = "mpc"; reason = m }
  | exception Setup.Budget_exhausted ->
      Error { stage = "budget"; reason = "privacy budget exhausted" }

let run cfg ~query ~plan ~db = run_source cfg ~query ~plan ~src:(source_of_db db)

let plan_and_execute_source cfg ~query ~src =
  let n = src.n_devices in
  let result =
    Arb_planner.Search.plan ~limits:Arb_planner.Constraints.no_limits ~query ~n ()
  in
  match result.Arb_planner.Search.plan with
  | None -> err "planner found no plan"
  | Some plan -> execute_source cfg ~query ~plan ~src

let plan_and_execute cfg ~query ~db =
  plan_and_execute_source cfg ~query ~src:(source_of_db db)

(* ---------------- calibration ground truth ---------------- *)

(* Pair the cost model's per-section predictions with what this run
   actually measured, priced at the committee size that executed ([m] is
   [config.committee_size], not the plan's deployment-scale m — the
   calibration loop compares like with like). Every measured value is a
   deterministic function of the simulated run (MPC engine round/byte
   counts, closed-form upload bytes), so recording samples never perturbs
   byte-identity contracts. Sections where either side is zero carry no
   calibration signal and are dropped. *)
let cost_samples ~cm ~(plan : Plan.t) ~cols ~m (report : report) =
  let trace = report.trace in
  let devices = float_of_int (max 1 trace.Trace.devices_total) in
  let predicted =
    Arb_planner.Cost_model.section_costs cm
      ~n_devices:(max 1 trace.Trace.devices_total)
      ~m ~cols plan.Plan.vignettes
  in
  let wall kind =
    match List.assoc_opt kind report.committee_wall_clock with
    | Some s -> s
    | None -> 0.0
  in
  let measured = function
    | "keygen_time" -> wall Trace.Keygen
    | "keygen_bytes" -> float_of_int (Trace.mpc_bytes trace Trace.Keygen)
    | "decrypt_time" -> wall Trace.Decryption
    | "ops_time" -> wall Trace.Operations
    | "ops_bytes" -> float_of_int (Trace.mpc_bytes trace Trace.Operations)
    | "upload_bytes" -> trace.Trace.device_upload_bytes
    | _ -> 0.0
  in
  List.filter_map
    (fun (section, p) ->
      let p = if section = "upload_bytes" then p *. devices else p in
      let v = measured section in
      if p > 0.0 && v > 0.0 then Some (section, p, v) else None)
    predicted
