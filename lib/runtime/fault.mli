(** Deterministic fault injection for the execution runtime.

    Arboretum's correctness story (§5–§6) rests on surviving realistic
    failure: committee members churn mid-protocol, a byzantine minority
    corrupts shares, the network drops and delays messages, and the
    aggregator may tamper with ciphertexts. This module turns those
    failure modes into a replayable {e fault plan}: every injection
    decision is drawn from per-kind RNG streams derived from a single
    seed, so a faulted run can be reproduced exactly from [(seed, spec)]
    — independent of how the kinds interleave during execution.

    The runtime consults the injector at well-defined {e sites} (one
    [fires] call per opportunity); recovery actions (committee
    reassignment, VSR re-sends, upload retries, auditor takeover) are
    reported back so the trace records both the faults and what it took
    to absorb them. Retries are bounded by an exponential-backoff time
    budget: when the budget runs out the runtime fails closed with a
    typed error instead of looping. *)

type kind =
  | Committee_dropout  (** a selected committee loses its quorum at pick k *)
  | Share_corruption  (** a byzantine minority corrupts Shamir shares *)
  | Message_drop  (** a device upload is lost in transit *)
  | Message_delay  (** a device upload is delayed by [delay_s] *)
  | Ciphertext_tamper  (** the aggregator rewrites an aggregated ciphertext *)
  | Audit_failure  (** an auditing device goes offline before its challenges *)
  | Accept_drop
      (** network seam: the HTTP front door loses a just-accepted
          connection before reading a byte (socket churn) *)
  | Response_truncate
      (** network seam: the connection dies mid-response write — the
          client sees a truncated body then EOF *)

val all_kinds : kind list
val kind_name : kind -> string

type spec = {
  dropout_p : float;  (** per committee-pick probability of forced dropout *)
  dropout_at : int option;
      (** force a dropout at exactly the k-th pick (0-based), in addition
          to the probabilistic ones — "committee member dropout at round k" *)
  share_corrupt_p : float;  (** per engine-opening probability *)
  corrupt_parties : int;
      (** how many parties corrupt their share when the fault fires; above
          the decoding radius the run must fail closed *)
  message_drop_p : float;  (** per transmission-attempt probability *)
  message_delay_p : float;  (** per transmission-attempt probability *)
  delay_s : float;  (** extra latency when a delay fires *)
  tamper_p : float;  (** per-run probability the aggregator tampers *)
  audit_fail_p : float;  (** per auditing-device probability *)
  max_retries : int;  (** bounded retries for recoverable faults *)
  backoff_base_s : float;  (** first retry waits this long, then doubles *)
  backoff_budget_s : float;
      (** total backoff time allowed before the run fails closed *)
  accept_drop_p : float;
      (** per accepted-connection probability the front door drops it *)
  response_truncate_p : float;
      (** per-response probability the write is cut short *)
}

val no_faults : spec
(** All probabilities zero; [fires] never returns [true]. *)

val chaos : spec
(** A moderate every-fault-enabled spec used by the chaos suite. *)

type t

val create : seed:int64 -> spec -> t
(** Derive the per-kind decision streams from [seed]. Equal seeds and
    specs give byte-identical fault schedules. *)

val inactive : unit -> t
(** An injector that never fires (equivalent to [create ~seed:0L no_faults]). *)

val spec : t -> spec

val fires : t -> kind -> bool
(** One injection opportunity for [kind]: advances the kind's site counter
    and decision stream, returns whether the fault strikes here. *)

val record_recovery : t -> kind -> unit
(** The runtime absorbed an injected fault of this kind. *)

val backoff : t -> attempt:int -> float option
(** Exponential backoff for retry [attempt] (0-based):
    [backoff_base_s *. 2^attempt], charged against the backoff budget.
    [None] once the budget is exhausted — the caller must fail closed. *)

val sub_seed : t -> kind -> int64
(** A deterministic seed for auxiliary randomness tied to a kind (e.g. the
    garbage the tampering aggregator injects), so faulted payloads never
    consume the session RNG. *)

val injected : t -> (kind * int) list
(** Injection counts per kind, in [all_kinds] order, zeros included. *)

val recovered : t -> (kind * int) list
val retries : t -> int
val backoff_spent : t -> float
val total_injected : t -> int

val injected_named : t -> (string * int) list
(** [injected] with {!kind_name} keys — the shape {!Trace.t} stores. *)

val recovered_named : t -> (string * int) list
val pp : Format.formatter -> t -> unit
