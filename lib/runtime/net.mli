(** Network model for the simulated deployment (§7.5), plus message-level
    links with loss and delay for the fault-injection harness.

    MPC vignettes are round-trip bound: their wall-clock time is
    [rounds * rtt + compute]. Profiles capture the settings of the paper's
    heterogeneity experiments: a LAN cluster, and committee members spread
    across Mumbai / New York / Paris / Sydney.

    A {!link} layers per-message failure on top of a profile: each
    transmission attempt may be dropped or delayed, and {!transmit}
    retries with the caller's backoff schedule until delivery or the
    attempt budget runs out — the behavior the runtime uses for device
    uploads under injected faults. *)

type profile = {
  name : string;
  rtt : float;  (** effective per-round latency between committee members, s *)
  device_slowdown : float;  (** compute multiplier for slow members; the MPC
      proceeds at the pace of its slowest device *)
}

val lan : profile
val geo_distributed : profile
(** Mumbai/New York/Paris/Sydney mix: the max pairwise RTT governs rounds. *)

val with_slow_devices : profile -> factor:float -> profile
(** E.g. Raspberry-Pi-class members joining a server committee. *)

val mpc_wall_clock : profile -> rounds:int -> compute:float -> float

(** {2 Message-level links} *)

type link = {
  base : profile;
  drop : unit -> bool;  (** does this transmission attempt get lost? *)
  delay : unit -> float;  (** extra one-way latency for this attempt *)
}

val reliable : profile -> link
(** Never drops, never delays — the clean-run link. *)

val lossy : profile -> drop:(unit -> bool) -> delay:(unit -> float) -> link
(** A link whose failures are decided by the caller (normally a
    {!Fault.t} injector, keeping faulted runs replayable). *)

type delivery = { attempts : int; latency : float }
(** [attempts] >= 1 is how many sends it took; [latency] the total elapsed
    time including retry backoff. *)

val transmit :
  link -> max_attempts:int -> backoff:(int -> float option) -> delivery option
(** Send one message. Each attempt pays [rtt /. 2 +. delay ()]; a dropped
    attempt additionally waits [backoff i] (0-based) before the next one.
    [None] when every attempt was dropped or the backoff budget ran out
    ([backoff] returned [None]) — the message is lost. *)
