type profile = { name : string; rtt : float; device_slowdown : float }

let lan = { name = "LAN"; rtt = 0.0005; device_slowdown = 1.0 }

(* Max pairwise RTT among Mumbai/New York/Paris/Sydney (Mumbai<->Sydney is
   the long pole at ~220 ms); honest-majority rounds wait for everyone. *)
let geo_distributed = { name = "geo"; rtt = 0.220; device_slowdown = 1.0 }

let with_slow_devices p ~factor =
  { p with name = p.name ^ "+slow"; device_slowdown = Float.max p.device_slowdown factor }

let mpc_wall_clock p ~rounds ~compute =
  (float_of_int rounds *. p.rtt) +. (compute *. p.device_slowdown)

(* --- message-level links (fault harness) --- *)

type link = {
  base : profile;
  drop : unit -> bool;
  delay : unit -> float;
}

let reliable p = { base = p; drop = (fun () -> false); delay = (fun () -> 0.0) }
let lossy p ~drop ~delay = { base = p; drop; delay }

type delivery = { attempts : int; latency : float }

let transmit link ~max_attempts ~backoff =
  let rec go attempt latency =
    if attempt >= max_attempts then None
    else
      let latency = latency +. (link.base.rtt /. 2.0) +. link.delay () in
      if not (link.drop ()) then Some { attempts = attempt + 1; latency }
      else
        match backoff attempt with
        | None -> None
        | Some wait -> go (attempt + 1) (latency +. wait)
  in
  go 0 0.0
