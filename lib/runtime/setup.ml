module C = Arb_crypto

type certificate = {
  query_id : int;
  pk_digest : C.Sha256.digest;
  plan_digest : C.Sha256.digest;
  budget_left : Arb_dp.Budget.t;
  registry_root : C.Sha256.digest;
  next_block : string;
  signatures : (C.Sig_scheme.public * string) list;
}

exception Budget_exhausted

(* The device population, derived entirely from (seed, n): sortition
   secrets come from the hierarchical registry's block PRF seeds, and each
   device's protocol randomness (Byzantine flag, bin choice, encryption
   randomness) is its own splitmix stream keyed by (input_seed, id). No
   per-device state is materialized up front, so the same population
   addresses 10^8 devices in O(n / block_size) memory — and a cohort-
   sharded execution sees byte-identical per-device draws to a fully
   materialized one, because neither depends on a shared draw order. *)
type population = {
  registry : C.Sortition.Registry.t;
  byzantine_fraction : float;
  input_seed : int64;
  residual_seed : int64;
  sample_seed : int64;
}

let population ~seed ~n ~byzantine_fraction =
  let sub k = Arb_util.Rng.next_int64 (Arb_util.Rng.derive seed k) in
  {
    registry = C.Sortition.Registry.create ~seed ~n;
    byzantine_fraction;
    input_seed = sub 0x1A51;
    residual_seed = sub 0x1A52;
    sample_seed = sub 0x1A53;
  }

let population_size pop = C.Sortition.Registry.size pop.registry
let device_seed pop id = C.Sortition.Registry.device_seed pop.registry id
let registry_root pop = C.Sortition.Registry.root pop.registry

(* Per-device stream. Draw order is part of the protocol contract (see
   Exec): Byzantine flag first, then bin choice, then encryption
   randomness — so a streamed (extrapolated) pass that stops after the bin
   draw perturbs nothing. *)
let device_input_rng pop id = Arb_util.Rng.derive pop.input_seed id

(* Device-sampling inclusion stream, separate from the input stream so a
   sampled plan perturbs no input draw: inclusion is pure in (seed, id),
   hence byte-identical across worker counts and cohort geometries. *)
let device_sample_rng pop id = Arb_util.Rng.derive pop.sample_seed id

let device_sampled pop ~phi id =
  match phi with
  | None -> true
  | Some phi -> Arb_util.Rng.uniform01 (device_sample_rng pop id) < phi

let residual_rng pop = Arb_util.Rng.create pop.residual_seed

let run_sortition pop ~block ~query_id ~committees ~size =
  C.Sortition.Registry.select pop.registry ~block ~query_id ~committees ~size

let verify_member pop ~block ~query_id ~committees ~size ~id =
  C.Sortition.Registry.verify_member pop.registry ~block ~query_id ~committees
    ~size ~id

let certificate_payload cert =
  Printf.sprintf "cert|%d|%s|%s|%f|%f|%s|%s" cert.query_id
    (C.Sha256.to_hex cert.pk_digest)
    (C.Sha256.to_hex cert.plan_digest)
    cert.budget_left.Arb_dp.Budget.epsilon cert.budget_left.Arb_dp.Budget.delta
    (C.Sha256.to_hex cert.registry_root)
    cert.next_block

let pk_digest_of pk =
  (* Hash the canonical coefficient-form rendering of the public key —
     stable across runs and independent of Bgv's in-memory
     representation. *)
  C.Sha256.digest (C.Bgv.serialize_public_key pk)

let keygen_ceremony rng ~device_seed ~committee ~params ~query_id ~plan_digest
    ~budget ~cost ~registry_root ~engine =
  (* 1. Budget check (§5.2): refuse the query if the balance is short. *)
  let budget_left =
    match Arb_dp.Budget.charge budget ~cost with
    | Some left -> left
    | None -> raise Budget_exhausted
  in
  (* 2. Distributed key generation. The polynomial arithmetic runs inside
     the committee MPC; costs are charged to the engine while the key
     material is produced by the real BGV keygen. *)
  let sk, pk = C.Bgv.keygen params rng in
  Arb_mpc.Protocols.charge_bgv_keygen engine ~n:params.C.Bgv.n
    ~rns_primes:(List.length params.C.Bgv.q_primes);
  (* 3. Fresh randomness block: XOR of member contributions (§5.2). *)
  let next_block =
    let acc = Bytes.make 32 '\x00' in
    Array.iter
      (fun member ->
        let contrib =
          C.Sha256.digest (Printf.sprintf "block|%d|%d" query_id member)
        in
        String.iteri
          (fun i c ->
            Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code c)))
          contrib)
      committee;
    C.Sha256.to_hex (Bytes.to_string acc)
  in
  let unsigned =
    {
      query_id;
      pk_digest = pk_digest_of pk;
      plan_digest;
      budget_left;
      registry_root;
      next_block;
      signatures = [];
    }
  in
  let payload = certificate_payload unsigned in
  (* 4. Every member signs with a per-query one-time key. *)
  let signatures =
    Array.to_list committee
    |> List.map (fun member ->
           let seed =
             device_seed member ^ Printf.sprintf "|cert%d" query_id
           in
           let kp = C.Sig_scheme.keygen ~seed in
           (kp.C.Sig_scheme.public, C.Sig_scheme.sign ~secret:kp.C.Sig_scheme.secret payload))
  in
  (sk, pk, { unsigned with signatures })

let verify_certificate cert =
  let payload = certificate_payload { cert with signatures = [] } in
  cert.signatures <> []
  && List.for_all
       (fun (public, signature) ->
         C.Sig_scheme.verify ~public ~msg:payload ~signature)
       cert.signatures
