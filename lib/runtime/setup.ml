module C = Arb_crypto

type device = {
  sortition : C.Sortition.device;
  row : int array;
  byzantine : bool;
}

type certificate = {
  query_id : int;
  pk_digest : C.Sha256.digest;
  plan_digest : C.Sha256.digest;
  budget_left : Arb_dp.Budget.t;
  registry_root : C.Sha256.digest;
  next_block : string;
  signatures : (C.Sig_scheme.public * string) list;
}

exception Budget_exhausted

let make_devices rng ~db ~byzantine_fraction =
  Array.mapi
    (fun i row ->
      let seed =
        let b = Bytes.create 16 in
        Bytes.set_int64_le b 0 (Arb_util.Rng.next_int64 rng);
        Bytes.set_int64_le b 8 (Int64.of_int i);
        Bytes.to_string b
      in
      {
        sortition = { C.Sortition.id = i; seed };
        row;
        byzantine = Arb_util.Rng.uniform01 rng < byzantine_fraction;
      })
    db

let run_sortition ~devices ~block ~query_id ~committees ~size =
  C.Sortition.select
    ~devices:(Array.map (fun d -> d.sortition) devices)
    ~block ~query_id ~committees ~size

let certificate_payload cert =
  Printf.sprintf "cert|%d|%s|%s|%f|%f|%s|%s" cert.query_id
    (C.Sha256.to_hex cert.pk_digest)
    (C.Sha256.to_hex cert.plan_digest)
    cert.budget_left.Arb_dp.Budget.epsilon cert.budget_left.Arb_dp.Budget.delta
    (C.Sha256.to_hex cert.registry_root)
    cert.next_block

let pk_digest_of pk =
  (* Hash the canonical coefficient-form rendering of the public key —
     stable across runs and independent of Bgv's in-memory
     representation. *)
  C.Sha256.digest (C.Bgv.serialize_public_key pk)

let keygen_ceremony rng ~devices ~committee ~params ~query_id ~plan_digest
    ~budget ~cost ~registry_root ~engine =
  (* 1. Budget check (§5.2): refuse the query if the balance is short. *)
  let budget_left =
    match Arb_dp.Budget.charge budget ~cost with
    | Some left -> left
    | None -> raise Budget_exhausted
  in
  (* 2. Distributed key generation. The polynomial arithmetic runs inside
     the committee MPC; costs are charged to the engine while the key
     material is produced by the real BGV keygen. *)
  let sk, pk = C.Bgv.keygen params rng in
  Arb_mpc.Protocols.charge_bgv_keygen engine ~n:params.C.Bgv.n
    ~rns_primes:(List.length params.C.Bgv.q_primes);
  (* 3. Fresh randomness block: XOR of member contributions (§5.2). *)
  let next_block =
    let acc = Bytes.make 32 '\x00' in
    Array.iter
      (fun member ->
        let contrib =
          C.Sha256.digest (Printf.sprintf "block|%d|%d" query_id member)
        in
        String.iteri
          (fun i c ->
            Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code c)))
          contrib)
      committee;
    C.Sha256.to_hex (Bytes.to_string acc)
  in
  let unsigned =
    {
      query_id;
      pk_digest = pk_digest_of pk;
      plan_digest;
      budget_left;
      registry_root;
      next_block;
      signatures = [];
    }
  in
  let payload = certificate_payload unsigned in
  (* 4. Every member signs with a per-query one-time key. *)
  let signatures =
    Array.to_list committee
    |> List.map (fun member ->
           let seed =
             devices.(member).sortition.C.Sortition.seed
             ^ Printf.sprintf "|cert%d" query_id
           in
           let kp = C.Sig_scheme.keygen ~seed in
           (kp.C.Sig_scheme.public, C.Sig_scheme.sign ~secret:kp.C.Sig_scheme.secret payload))
  in
  (sk, pk, { unsigned with signatures })

let verify_certificate cert =
  let payload = certificate_payload { cert with signatures = [] } in
  cert.signatures <> []
  && List.for_all
       (fun (public, signature) ->
         C.Sig_scheme.verify ~public ~msg:payload ~signature)
       cert.signatures
