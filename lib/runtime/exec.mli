(** End-to-end execution of a chosen plan at simulation scale (§5).

    The runtime plays out the full protocol with real cryptography: devices
    are registered in a Merkle tree; committees are sortitioned; the
    key-generation committee checks the privacy budget, runs the (cost-
    charged) DKG producing a genuine BGV keypair, and signs the query
    authorization certificate; every device one-hot-encodes its row,
    encrypts it under the published key and attaches a (simulated-Groth16)
    well-formedness proof; the aggregator verifies proofs, drops Byzantine
    inputs, homomorphically aggregates, and commits every intermediate step
    to an audit tree that devices spot-check; a decryption committee
    threshold-decrypts (real partial decryptions combined); and the rest of
    the query runs inside an honest-majority MPC engine — noise sampling,
    comparisons, argmax — before the declassified outputs are released.

    Fidelity notes (DESIGN.md §1): operator-instantiation details that only
    affect cost (sum-tree fanout, committee chunking) are executed in their
    canonical form — the planner's metrics already capture their cost — and
    hand-offs between logical committees are charged VSR costs on one
    engine per committee type rather than thousands of real committees.

    {2 Cohort sharding}

    At the paper's 10^8–10^9 device scale, materializing every device is
    neither possible nor informative. [Sharded] execution splits the
    population into cohorts of consecutive device ids, runs a configured
    number of sampled cohorts through the full crypto path (encrypt, prove,
    verify, aggregate, audit), and streams the remaining cohorts without
    crypto: their exact honest plaintext sums are carried into the
    aggregate as one "residual" ciphertext, and their costs are
    extrapolated from the same closed-form per-device formulas the
    materialized path charges.

    The fidelity contract (DESIGN.md §11): decrypted outputs, DP noise,
    budget deductions and certificates are {e bit-identical} to a [Full]
    run at the same seed — only trace cost counters are (exact-formula)
    extrapolations, and injected faults land only inside sampled cohorts.
    This holds because (a) every device's private draws come from its own
    PRF stream ({!Arb_util.Rng.derive}), a pure function of (seed, id);
    (b) committee sortition is hierarchical over registry blocks
    ({!Arb_crypto.Sortition.Registry}), a function of (seed, N) alone; and
    (c) BGV addition is exact, so one ciphertext encrypting the residual
    sums (mod t) is algebraically indistinguishable from the per-device
    accumulation it replaces. Peak memory is O(cohort), not O(N). *)

(** How much of the population runs the real crypto path. [Full] (the
    default) materializes every device. [Sharded] materializes
    [sampled_cohorts] cohorts of [cohort_size] devices, spread evenly
    across the id space, and extrapolates the rest under the fidelity
    contract above. [Full] at population [n] behaves exactly like
    [Sharded] with [cohort_size >= n]: a single materialized cohort. *)
type sharding = Full | Sharded of { cohort_size : int; sampled_cohorts : int }

type config = {
  committee_size : int;  (** simulated committee size (small, e.g. 5) *)
  byzantine_fraction : float;  (** devices uploading malformed inputs *)
  churn : float;
      (** probability a selected committee member is offline when its
          vignette starts; committees below quorum are replaced (§5.1) *)
  bgv_n : int;  (** simulation ring degree (raised if the query needs more slots) *)
  latency : Net.profile;
  seed : int64;
  audit_p_max : float;
  auditing_devices : int;  (** how many devices spot-check the aggregator *)
  tamper_aggregator : bool;  (** test hook: Byzantine aggregator rewrites a step *)
  budget : Arb_dp.Budget.t;  (** standing privacy budget before this query *)
  block : string;  (** sortition randomness block B_i from the previous
      certificate (§5.1); "B0" for the trusted genesis *)
  query_id : int;  (** position in the query chain *)
  faults : Fault.spec;
      (** deterministic fault plan, driven by [seed]; {!Fault.no_faults}
          (the default) injects nothing *)
  tracer : Arb_obs.Tracer.t option;
      (** when set, the pipeline emits a span tree (exec → sortition /
          keygen / inputs / decrypt / vsr-handoff / interpret / audit, with
          per-mechanism and per-noise-committee spans inside [interpret]).
          Drive it with an {!Arb_obs.Clock.Simulated} clock and the spans
          sit on the protocol's simulated timeline (keygen/decrypt MPC
          estimates, upload latencies, per-vignette round costs); a
          [Deterministic] clock yields byte-identical traces across runs.
          [None] (the default) adds no work. *)
  workers : int;
      (** OCaml domains for the embarrassingly-parallel stages: per-device
          proof + encryption and sum-tree group folds. All RNG draws happen
          in a sequential canonical-order pass before the fan-out and
          results merge in canonical order, so reports, traces and
          decrypted outputs are byte-identical at any worker count
          (regression-tested). Default 1. *)
  sharding : sharding;
      (** cohort structure of the input stage; [Full] by default. Does not
          affect decrypted outputs, budget deductions or certificates (see
          the fidelity contract above), and is invisible to committee
          selection — the registry's block structure is a protocol
          constant, so certificates carry the same root either way. *)
}

val default_config : config

type source = { n_devices : int; row : int -> int array }
(** A device database addressed by index instead of materialized as an
    array: [row i] computes device [i]'s input on demand. [row] must be
    pure — it is called from worker domains and its result must depend
    only on [i]. This is what lets a sharded run address 10^8+ devices
    while holding one cohort in memory. *)

val source_of_db : int array array -> source
(** Wrap a concrete database (one row per device). *)

type report = {
  outputs : Arb_lang.Interp.value list;
  trace : Trace.t;
  certificate : Setup.certificate;
  certificate_ok : bool;
  audit_root : Arb_crypto.Sha256.digest;
  audit_ok : bool;
  accepted_inputs : int;
  rejected_inputs : int;
  budget_left : Arb_dp.Budget.t;
  committee_wall_clock : (Trace.committee_kind * float) list;
      (** estimated wall-clock seconds per committee type under the
          configured network profile (§7.5 methodology: measured rounds x
          RTT + compute) *)
}

exception Execution_error of string

exception Execution_degraded of string
(** The run could not absorb its injected faults (lost device inputs, every
    auditing device offline, …) and refuses to release outputs. *)

val execute :
  config ->
  query:Arb_queries.Registry.query ->
  plan:Arb_planner.Plan.t ->
  db:int array array ->
  report
(** Run the query end to end over a concrete database (one row per
    device). Raises {!Setup.Budget_exhausted} when the budget is short,
    [Execution_error] for queries outside the runtime's supported shape,
    [Execution_degraded] when faults exceeded the recovery budget, and
    {!Arb_mpc.Engine.Cheating_detected} when share corruption exceeded the
    robust-decoding radius. *)

val execute_source :
  config ->
  query:Arb_queries.Registry.query ->
  plan:Arb_planner.Plan.t ->
  src:source ->
  report
(** {!execute} over an on-demand {!source} — the entry point for
    population sizes that cannot be materialized. Same exceptions. *)

type failure = { stage : string; reason : string }
(** Where a run failed closed ("certificate", "audit", "degraded",
    "execute", "mpc", "budget") and why. *)

val pp_failure : Format.formatter -> failure -> unit

val run :
  config ->
  query:Arb_queries.Registry.query ->
  plan:Arb_planner.Plan.t ->
  db:int array array ->
  (report, failure) result
(** {!execute} with every fault path reified as a typed [Error] instead of
    an exception, and the release gate applied: a report whose certificate
    or audit checks failed becomes an [Error] too, so [Ok] always means
    "outputs were legitimately released". The DP budget is only committed
    by callers on [Ok] (see {!Session.run}). *)

val run_source :
  config ->
  query:Arb_queries.Registry.query ->
  plan:Arb_planner.Plan.t ->
  src:source ->
  (report, failure) result
(** {!run} over an on-demand {!source}. *)

val plan_and_execute :
  config ->
  query:Arb_queries.Registry.query ->
  db:int array array ->
  report
(** Convenience: plan at the database's scale (no cost limits), then
    execute. *)

val plan_and_execute_source :
  config ->
  query:Arb_queries.Registry.query ->
  src:source ->
  report
(** {!plan_and_execute} over an on-demand {!source}. *)

val cost_samples :
  cm:Arb_planner.Cost_model.t ->
  plan:Arb_planner.Plan.t ->
  cols:int ->
  m:int ->
  report ->
  (string * float * float) list
(** Calibration ground truth for one finished run: (section, predicted,
    measured) triples pairing {!Arb_planner.Cost_model.section_costs}
    (priced at the {e executed} committee size [m], i.e.
    [config.committee_size]) with the report's simulated committee
    wall-clock, per-member MPC bytes, and device upload bytes. All values
    are deterministic functions of the run; sections without signal on
    both sides are dropped. Feed the result to
    {!Arb_planner.Calibration.record}. *)
