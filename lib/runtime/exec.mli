(** End-to-end execution of a chosen plan at simulation scale (§5).

    The runtime plays out the full protocol with real cryptography: devices
    are registered in a Merkle tree; committees are sortitioned; the
    key-generation committee checks the privacy budget, runs the (cost-
    charged) DKG producing a genuine BGV keypair, and signs the query
    authorization certificate; every device one-hot-encodes its row,
    encrypts it under the published key and attaches a (simulated-Groth16)
    well-formedness proof; the aggregator verifies proofs, drops Byzantine
    inputs, homomorphically aggregates, and commits every intermediate step
    to an audit tree that devices spot-check; a decryption committee
    threshold-decrypts (real partial decryptions combined); and the rest of
    the query runs inside an honest-majority MPC engine — noise sampling,
    comparisons, argmax — before the declassified outputs are released.

    Fidelity notes (DESIGN.md §1): operator-instantiation details that only
    affect cost (sum-tree fanout, committee chunking) are executed in their
    canonical form — the planner's metrics already capture their cost — and
    hand-offs between logical committees are charged VSR costs on one
    engine per committee type rather than thousands of real committees. *)

type config = {
  committee_size : int;  (** simulated committee size (small, e.g. 5) *)
  byzantine_fraction : float;  (** devices uploading malformed inputs *)
  churn : float;
      (** probability a selected committee member is offline when its
          vignette starts; committees below quorum are replaced (§5.1) *)
  bgv_n : int;  (** simulation ring degree (raised if the query needs more slots) *)
  latency : Net.profile;
  seed : int64;
  audit_p_max : float;
  auditing_devices : int;  (** how many devices spot-check the aggregator *)
  tamper_aggregator : bool;  (** test hook: Byzantine aggregator rewrites a step *)
  budget : Arb_dp.Budget.t;  (** standing privacy budget before this query *)
  block : string;  (** sortition randomness block B_i from the previous
      certificate (§5.1); "B0" for the trusted genesis *)
  query_id : int;  (** position in the query chain *)
  faults : Fault.spec;
      (** deterministic fault plan, driven by [seed]; {!Fault.no_faults}
          (the default) injects nothing *)
  tracer : Arb_obs.Tracer.t option;
      (** when set, the pipeline emits a span tree (exec → sortition /
          keygen / inputs / decrypt / vsr-handoff / interpret / audit, with
          per-mechanism and per-noise-committee spans inside [interpret]).
          Drive it with an {!Arb_obs.Clock.Simulated} clock and the spans
          sit on the protocol's simulated timeline (keygen/decrypt MPC
          estimates, upload latencies, per-vignette round costs); a
          [Deterministic] clock yields byte-identical traces across runs.
          [None] (the default) adds no work. *)
  workers : int;
      (** OCaml domains for the embarrassingly-parallel stages: per-device
          proof + encryption and sum-tree group folds. All RNG draws happen
          in a sequential canonical-order pass before the fan-out and
          results merge in canonical order, so reports, traces and
          decrypted outputs are byte-identical at any worker count
          (regression-tested). Default 1. *)
}

val default_config : config

type report = {
  outputs : Arb_lang.Interp.value list;
  trace : Trace.t;
  certificate : Setup.certificate;
  certificate_ok : bool;
  audit_root : Arb_crypto.Sha256.digest;
  audit_ok : bool;
  accepted_inputs : int;
  rejected_inputs : int;
  budget_left : Arb_dp.Budget.t;
  committee_wall_clock : (Trace.committee_kind * float) list;
      (** estimated wall-clock seconds per committee type under the
          configured network profile (§7.5 methodology: measured rounds x
          RTT + compute) *)
}

exception Execution_error of string

exception Execution_degraded of string
(** The run could not absorb its injected faults (lost device inputs, every
    auditing device offline, …) and refuses to release outputs. *)

val execute :
  config ->
  query:Arb_queries.Registry.query ->
  plan:Arb_planner.Plan.t ->
  db:int array array ->
  report
(** Run the query end to end over a concrete database (one row per
    device). Raises {!Setup.Budget_exhausted} when the budget is short,
    [Execution_error] for queries outside the runtime's supported shape,
    [Execution_degraded] when faults exceeded the recovery budget, and
    {!Arb_mpc.Engine.Cheating_detected} when share corruption exceeded the
    robust-decoding radius. *)

type failure = { stage : string; reason : string }
(** Where a run failed closed ("certificate", "audit", "degraded",
    "execute", "mpc", "budget") and why. *)

val pp_failure : Format.formatter -> failure -> unit

val run :
  config ->
  query:Arb_queries.Registry.query ->
  plan:Arb_planner.Plan.t ->
  db:int array array ->
  (report, failure) result
(** {!execute} with every fault path reified as a typed [Error] instead of
    an exception, and the release gate applied: a report whose certificate
    or audit checks failed becomes an [Error] too, so [Ok] always means
    "outputs were legitimately released". The DP budget is only committed
    by callers on [Ok] (see {!Session.run}). *)

val plan_and_execute :
  config ->
  query:Arb_queries.Registry.query ->
  db:int array array ->
  report
(** Convenience: plan at the database's scale (no cost limits), then
    execute. *)
