(** Execution setup: device population, sortition, and the key-generation
    ceremony (§5.1–§5.2).

    The population is derived entirely from [(seed, n)] — sortition
    secrets come from the hierarchical registry's block PRF seeds
    ({!Arb_crypto.Sortition.Registry}), and every device's protocol
    randomness is its own per-index stream ({!Arb_util.Rng.derive}). No
    per-device state is materialized up front, which is what lets the
    runtime address 10^8+ devices while only executing a few sampled
    cohorts: a device's draws are a pure function of its id, identical
    whether or not its cohort is ever materialized.

    The key-generation committee checks the privacy budget, generates the
    BGV keypair, hands the secret key to the decryption committee as Shamir
    shares via VSR, and signs a query authorization certificate containing
    the public key, query/plan digests, the remaining budget, the device
    registry's Merkle root, and the next sortition block. *)

type certificate = {
  query_id : int;
  pk_digest : Arb_crypto.Sha256.digest;
  plan_digest : Arb_crypto.Sha256.digest;
  budget_left : Arb_dp.Budget.t;
  registry_root : Arb_crypto.Sha256.digest;
  next_block : string;
  signatures : (Arb_crypto.Sig_scheme.public * string) list;
      (** per keygen-committee member: (one-time public key, signature) *)
}

exception Budget_exhausted

type population
(** The derived device population. O(n / block_size) memory regardless of
    [n]. *)

val population :
  seed:int64 -> n:int -> byzantine_fraction:float -> population

val population_size : population -> int

val device_seed : population -> int -> string
(** Sortition/signing secret of device [id], derived on demand. *)

val registry_root : population -> Arb_crypto.Sha256.digest
(** Registry commitment for the certificate: a function of (seed, n) only,
    identical across sharded and fully materialized executions. *)

val device_input_rng : population -> int -> Arb_util.Rng.t
(** Device [id]'s private randomness stream. Protocol draw order:
    Byzantine flag, then bin choice, then per-ciphertext encryption
    randomness — streamed (extrapolated) passes stop after the bin draw
    without perturbing any other device's stream. *)

val device_sample_rng : population -> int -> Arb_util.Rng.t
(** Device [id]'s sampling-inclusion stream — separate from
    {!device_input_rng} so a sampled plan perturbs no input draw. *)

val device_sampled : population -> phi:float option -> int -> bool
(** Whether device [id] participates under device-sampling rate [phi]
    ([None] = exact plan, everyone participates). Pure in
    [(population seed, id)], hence byte-identical across worker counts and
    cohort geometries. *)

val residual_rng : population -> Arb_util.Rng.t
(** Dedicated stream for encrypting the residual (extrapolated-cohort)
    aggregate; independent of the session and of every device stream. *)

val run_sortition :
  population ->
  block:string ->
  query_id:int ->
  committees:int ->
  size:int ->
  Arb_crypto.Sortition.assignment

val verify_member :
  population ->
  block:string ->
  query_id:int ->
  committees:int ->
  size:int ->
  id:int ->
  int option
(** Device-side spot-check of a committee assignment (two-level
    recomputation; agrees with {!run_sortition}). *)

val certificate_payload : certificate -> string
(** The signed byte string (everything except the signatures). *)

val keygen_ceremony :
  Arb_util.Rng.t ->
  device_seed:(int -> string) ->
  committee:int array ->
  params:Arb_crypto.Bgv.params ->
  query_id:int ->
  plan_digest:Arb_crypto.Sha256.digest ->
  budget:Arb_dp.Budget.t ->
  cost:Arb_dp.Budget.t ->
  registry_root:Arb_crypto.Sha256.digest ->
  engine:Arb_mpc.Engine.t ->
  Arb_crypto.Bgv.secret_key * Arb_crypto.Bgv.public_key * certificate
(** Raises [Budget_exhausted] if [cost] exceeds [budget]. The returned
    secret key is the ceremony's output held only as shares in a real
    deployment; the simulation hands it to the decryption step directly
    (which re-shares it). MPC costs are charged to [engine]. Committee
    members sign with one-time keys derived from [device_seed]. *)

val verify_certificate : certificate -> bool
(** Every member signature checks out against the payload. *)
