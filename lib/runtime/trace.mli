(** Execution trace: who did how much work during a simulated run.

    Fed by the runtime; consumed by the benchmark harness (Figs. 6–8, 11)
    and by tests asserting the cost structure (e.g. key generation is the
    most expensive committee). *)

type committee_kind = Keygen | Decryption | Operations

val committee_kind_name : committee_kind -> string

type t = {
  mutable device_upload_bytes : float;  (** per device: ciphertexts + proof *)
  mutable device_encrypt_ops : int;
  mutable device_proof_constraints : int;
  mutable agg_bytes_sent : float;
  mutable agg_he_adds : int;
  mutable agg_he_muls : int;
  mutable agg_proofs_verified : int;
  mutable agg_proofs_rejected : int;
  mutable committee_costs : (committee_kind * Arb_mpc.Cost.t) list;
  mutable audits_performed : int;
  mutable audits_failed : int;
  mutable vignettes_executed : int;
  mutable committees_reassigned : int;
      (** committees that lost their quorum to churn and were replaced (§5.1) *)
  mutable device_tree_adds : int;
      (** homomorphic additions performed by participant devices when the
          plan outsources the sum (sum-tree instantiation, §4.3) *)
  mutable sortition_checks : int;
      (** device-side verifications that committee members were
          legitimately selected *)
  mutable faults_injected : (string * int) list;
      (** injected fault counts keyed by {!Fault.kind_name}, zeros included *)
  mutable fault_recoveries : (string * int) list;
      (** how many of each kind the runtime absorbed rather than failing *)
  mutable fault_retries : int;  (** retry attempts charged to the backoff budget *)
  mutable fault_backoff_s : float;  (** total simulated backoff wait *)
  mutable upload_retries : int;  (** device uploads that needed more than one send *)
  mutable lost_uploads : int;  (** device inputs lost despite retries *)
  mutable upload_latency_s : float;  (** summed simulated transmission latency *)
  mutable audit_devices_failed : int;
      (** auditing devices that went offline; survivors take over their share *)
  mutable shares_corrected : int;
      (** corrupted Shamir shares repaired by robust (Berlekamp–Welch) decoding *)
  mutable devices_total : int;
      (** population size the run addressed (exported as the
          [arb_runtime_devices_total] gauge) *)
  mutable devices_materialized : int;
      (** devices that actually ran the crypto path — equal to
          [devices_total] in [Full] mode, [sampled cohorts * cohort size]
          when sharded (gauge [arb_runtime_devices_materialized]) *)
  mutable cohorts_total : int;  (** cohorts the population was split into *)
  mutable cohorts_sampled : int;
      (** cohorts executed with real crypto; the rest are extrapolated *)
  crypto_baseline : int * int * int * int;
      (** snapshot of the process-lifetime crypto kernel counters
          ({!Arb_crypto.Ntt.Stats} transforms / pointwise ops / reductions
          saved, plus {!Arb_crypto.Bgv.scratch_words_allocated}) taken at
          {!create}; {!export} emits the per-run deltas as
          [arb_crypto_*] gauges *)
}

val create : unit -> t
val record_committee : t -> committee_kind -> Arb_mpc.Cost.t -> unit

val mpc_rounds : t -> committee_kind -> int
val mpc_bytes : t -> committee_kind -> int
(** Per-member bytes summed over that kind's recorded committees. *)

val committee_wall_clock :
  t -> Net.profile -> committee_kind -> compute_per_round:float -> float
(** Wall-clock estimate for all of a kind's MPC work under a network
    profile. *)

val faults_total : t -> int
(** Sum of all injected-fault counts. *)

type field_value =
  | F_int of int
  | F_float of float
  | F_counts of (string * int) list
  | F_costs of (committee_kind * Arb_mpc.Cost.t) list

val fields : t -> (string * field_value) list
(** The single field list that {!pp}, {!to_json}, and {!export} all derive
    from. Its implementation destructures the record with no wildcard, so a
    counter added to [t] but missing here fails to compile — the drift
    where [pp] and [to_json] disagreed on coverage cannot reappear. *)

val field_names : t -> string list

val pp : Format.formatter -> t -> unit
(** One-line [name=value] summary covering every field in {!fields};
    count-map fields render their total with a [k:v] breakdown of the
    non-zero entries. *)

val to_json : t -> Arb_util.Json.t
(** Canonical JSON rendering of every field (committee costs in execution
    order). Two runs with identical traces serialize to identical strings,
    which is what the chaos suite's determinism property checks. *)

val export : t -> Arb_obs.Metrics.t -> unit
(** Feed every counter into a metrics registry as [arb_runtime_*] counters
    (count-maps become labeled counters, committee costs per-kind
    rounds/bytes). Adding a run's trace accumulates across runs — except
    the population-shape fields ([devices_total], [devices_materialized],
    [cohorts_total], [cohorts_sampled]), which describe configuration
    rather than work and export as gauges. *)
