module Plan = Arb_planner.Plan
module Cm = Arb_planner.Cost_model

let vign loc work = { Plan.location = loc; work }

let orchard_plan ~crypto ~n ~cols ~noise_count ~cm =
  let ring = Cm.ring_for cm crypto ~cols in
  let slots = ring.Cm.ring_n in
  let cts = max 1 ((cols + slots - 1) / slots) in
  let vignettes =
    [
      vign (Plan.Committees 1) (Plan.W_zk_setup { constraints = min 100_000 (3 * cols) });
      vign (Plan.Committees 1) (Plan.W_keygen crypto);
      vign Plan.Participants
        (Plan.W_encrypt_input { crypto; cts_per_device = cts; zk_constraints = 3 * cols });
      vign Plan.Aggregator (Plan.W_verify_inputs { devices = n });
      vign Plan.Aggregator (Plan.W_he_sum { crypto; cts; inputs = n });
      (* The single committee decrypts everything and adds all the noise. *)
      vign (Plan.Committees 1) (Plan.W_mpc_decrypt { crypto; cts });
      vign (Plan.Committees 1) (Plan.W_mpc_noise { kind = `Laplace; count = noise_count });
      vign (Plan.Committees 1) (Plan.W_mpc_output { values = noise_count });
      vign Plan.Aggregator (Plan.W_post { flops = noise_count });
    ]
  in
  (* Orchard's committee count is fixed at one (plus setup roles); sizing
     matches the paper's ~40-member setting. *)
  let c = 3 in
  let m = Arb_planner.Search.committee_size_for c in
  {
    Plan.query = "orchard";
    crypto;
    vignettes;
    sample_bins = None;
    device_sample = None;
    committee_count = c;
    committee_size = m;
    em_variant = `None;
  }

let metrics_of_plan ~n ~cols ~cm (p : Plan.t) =
  Cm.combine ~n_devices:n
    (List.map
       (fun v -> Cm.price cm ~n_devices:n ~m:p.Plan.committee_size ~cols v)
       p.Plan.vignettes)

let orchard_metrics ~n ~cols ~noise_count ~cm =
  let p = orchard_plan ~crypto:Plan.Ahe ~n ~cols ~noise_count ~cm in
  metrics_of_plan ~n ~cols ~cm p

let honeycrisp_metrics ~n ~sketch_cols ~cm =
  let p = orchard_plan ~crypto:Plan.Ahe ~n ~cols:sketch_cols ~noise_count:sketch_cols ~cm in
  metrics_of_plan ~n ~cols:sketch_cols ~cm p

type boehler = {
  committee_bytes : float;
  committee_time : float;
  participant_bytes : float;
}

let boehler_median ~n ~m =
  (* §7.1: 1.41 GB of traffic per member with m = 10 and N = 1e6, at least
     linear in N and m. Time extrapolated from the same run (~10 min at the
     reference point), linear in the same factors. *)
  let scale = float_of_int n /. 1.0e6 *. (float_of_int m /. 10.0) in
  {
    committee_bytes = 1.41e9 *. scale;
    committee_time = 600.0 *. scale;
    participant_bytes = 2048.0 (* a masked upload to the committee *);
  }

type strawman = {
  agg_compute_seconds : float;
  participant_bytes_typical : float;
  participant_bytes_worst : float;
  description : string;
}

let fhe_only ~n ~cols =
  (* §3.2: evaluating the zip-code query (cols ~ 41,683) over 1e8 uploads
     needs a ~40-trillion-gate circuit; at ~1e6 homomorphic gates/second
     that is years of computation. Scale gates as n * cols. *)
  let gates = 40.0e12 *. (float_of_int n /. 1.0e8) *. (float_of_int cols /. 41683.0) in
  let gate_rate = 1.0e6 in
  {
    agg_compute_seconds = gates /. gate_rate;
    participant_bytes_typical = 2.2e6 (* one FHE ciphertext *);
    participant_bytes_worst = 2.2e6;
    description = "FHE only: aggregator evaluates the query on ciphertexts";
  }

let all_to_all_mpc ~n =
  (* Per-participant traffic at least linear in N: one field element to
     every other party per multiplication layer; even a single 17-byte
     element to each peer is already N * 17 bytes. *)
  let per_peer = 17.0 in
  {
    agg_compute_seconds = 0.0;
    participant_bytes_typical = per_peer *. float_of_int n;
    participant_bytes_worst = per_peer *. float_of_int n;
    description = "all participants join one giant MPC";
  }
