module J = Arb_util.Json

type kind = Winners | Sketch

(* Bounded so a long-lived session cannot grow without limit; compaction
   keeps every other sample of the sorted list, the classic deterministic
   eps-approximate quantile decimation. *)
let default_capacity = 512

type t = {
  kind : kind;
  epochs : int;
  counts : (string * int) list;  (* Winners: sorted by key *)
  samples : float list;  (* Sketch: sorted ascending *)
  capacity : int;
}

let create ?(capacity = default_capacity) kind =
  if capacity < 2 then invalid_arg "Mstate.create: capacity < 2";
  { kind; epochs = 0; counts = []; samples = []; capacity }

let kind_for (query : Arb_queries.Registry.query) =
  if query.Arb_queries.Registry.uses_em then Winners else Sketch

let kind_name = function Winners -> "winners" | Sketch -> "sketch"
let kind_of_name = function
  | "winners" -> Some Winners
  | "sketch" -> Some Sketch
  | _ -> None

let epochs t = t.epochs

(* The heavy-hitter key is the JSON encoding of the epoch's output list —
   reversible and unambiguous even when outputs contain separators. *)
let winners_key outputs = J.to_string (J.List (List.map (fun s -> J.String s) outputs))

let key_outputs key =
  match J.of_string key with
  | J.List l -> List.map J.to_str l
  | _ | (exception J.Parse_error _) -> [ key ]

let bump counts key =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest when k = key -> (k, n + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (go counts)

let merge_samples capacity samples xs =
  Arb_util.Sketch.merge_bounded ~capacity samples xs

let update t ~outputs =
  match t.kind with
  | Winners -> { t with epochs = t.epochs + 1; counts = bump t.counts (winners_key outputs) }
  | Sketch ->
      let xs = List.filter_map float_of_string_opt outputs in
      { t with epochs = t.epochs + 1; samples = merge_samples t.capacity t.samples xs }

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then string_of_int (int_of_float v)
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let estimate t =
  match t.kind with
  | Winners -> (
      (* Modal output list; ties break toward the lexicographically
         smallest key, so the estimate never depends on insertion order. *)
      match
        List.fold_left
          (fun best (k, n) ->
            match best with
            | Some (_, bn) when bn >= n -> best
            | _ -> Some (k, n))
          None t.counts
      with
      | None -> None
      | Some (k, _) -> Some (key_outputs k))
  | Sketch -> (
      match t.samples with
      | [] -> None
      | samples ->
          let a = Array.of_list samples in
          Some [ float_repr a.((Array.length a - 1) / 2) ])

let to_json t =
  J.Obj
    [
      ("kind", J.String (kind_name t.kind));
      ("epochs", J.Int t.epochs);
      ("capacity", J.Int t.capacity);
      ( "counts",
        J.List
          (List.map
             (fun (k, n) -> J.Obj [ ("key", J.String k); ("n", J.Int n) ])
             t.counts) );
      ("samples", J.List (List.map (fun s -> J.Float s) t.samples));
    ]

let of_json j =
  match
    let kind =
      match kind_of_name (J.to_str (J.member "kind" j)) with
      | Some k -> k
      | None -> raise (J.Parse_error "unknown mechanism-state kind")
    in
    let epochs = J.to_int (J.member "epochs" j) in
    let capacity = J.to_int (J.member "capacity" j) in
    let counts =
      List.map
        (fun e -> (J.to_str (J.member "key" e), J.to_int (J.member "n" e)))
        (J.to_list (J.member "counts" j))
    in
    let samples = List.map J.to_float (J.to_list (J.member "samples" j)) in
    if capacity < 2 || epochs < 0 then
      raise (J.Parse_error "mechanism state out of range");
    { kind; epochs; counts; samples; capacity }
  with
  | t -> Ok t
  | exception J.Parse_error m -> Error m

let equal (a : t) b = a = b
