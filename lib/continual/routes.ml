(* Continual endpoints, mounted through {!Arb_service.Api}'s [?extra]
   hook so the service API needs no dependency on this library. *)

module S = Arb_service
module J = Arb_util.Json

let strip_prefix ~prefix s =
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

let sessions_index engine =
  S.Http.json_response ~status:200 (Engine.to_json engine)

let session_detail engine name =
  match Engine.session engine name with
  | Some v -> S.Http.json_response ~status:200 (Engine.session_json v)
  | None ->
      S.Http.error_response 404 (Printf.sprintf "no session named %S" name)

(* Shadow the base PUT /v1/calibration: the service install re-prices the
   plan cache as usual, and the fingerprint is additionally fed into the
   epoch loop so due sessions re-plan exactly once (DESIGN.md §14). *)
let put_calibration engine (req : S.Http.request) =
  match
    match J.of_string req.S.Http.body with
    | j -> Arb_planner.Calibration.of_json ~path:"<body>" j
    | exception J.Parse_error m ->
        Error
          (Arb_planner.Calibration.Malformed { path = "<body>"; reason = m })
  with
  | Error e ->
      S.Http.error_response 400 (Arb_planner.Calibration.error_message e)
  | Ok calib ->
      let r = S.Service.set_calibration (Engine.service engine) calib in
      Engine.set_calibration engine
        calib.Arb_planner.Calibration.fingerprint;
      S.Http.json_response ~status:200
        (J.Obj
           [
             ("installed", J.String calib.Arb_planner.Calibration.fingerprint);
             ("changed", J.Bool r.S.Service.changed);
             ("repriced", J.Int r.S.Service.repriced);
             ("invalidated", J.Int r.S.Service.invalidated);
             ("continual", J.Bool true);
           ])

let tick ?tracer ?workers engine =
  let records = Engine.tick ?tracer ?workers engine in
  S.Http.json_response ~status:200
    (J.Obj
       [
         ("epoch", J.Int (Engine.epoch engine));
         ("records", J.List (List.map Engine.record_json records));
       ])

let handler ?tracer ?(workers = 1) engine (req : S.Http.request) =
  match (req.S.Http.meth, req.S.Http.path) with
  | "GET", "/v1/sessions" -> Some (sessions_index engine)
  | "GET", "/v1/budget" ->
      (* Shadow the base route: same global epsilon/delta keys, plus the
         epoch and every session's live window. *)
      Some (S.Http.json_response ~status:200 (Engine.budget_json engine))
  | "POST", "/v1/epoch" -> Some (tick ?tracer ~workers engine)
  | "PUT", "/v1/calibration" -> Some (put_calibration engine req)
  | meth, path -> (
      match strip_prefix ~prefix:"/v1/sessions/" path with
      | None -> None
      | Some name ->
          if meth = "GET" then Some (session_detail engine name)
          else
            Some
              (S.Http.error_response 405
                 (Printf.sprintf "%s does not support %s" path meth)))
