(* The continual-analytics scheduler: epoch-indexed recurring sessions
   layered over the one-shot {!Arb_service.Service} core.

   Each tick advances every session's sliding budget window (collecting
   expiry refunds), re-submits the sessions due this epoch, drains the
   service once, and settles: window charges for executed queries,
   mechanism-state carryover, per-epoch records.

   Plan reuse is the point. A due session first decides between
   *re-validation* — the cached plan is still valid, submit and let the
   service hit the cache — and a forced *re-plan* — evict the cache entry
   so the service cold-plans — based on drift since the plan's
   fingerprint: population estimate, cost-calibration tag, or budget
   balance moving past a relative threshold. Undrifted epochs cost one
   cache probe instead of a planner search.

   Determinism: sessions are processed in registration order, all decision
   inputs (windows, fingerprints, cache state) are updated sequentially,
   and execution runs through the service's canonically-ordered pipeline —
   so epoch records are byte-identical at any worker count. *)

module B = Arb_dp.Budget
module W = B.Window
module J = Arb_util.Json
module Q = Arb_queries.Registry
module S = Arb_service

let src = Logs.Src.create "arb.continual" ~doc:"Continual analytics engine"

module Log = (val Logs.src_log src : Logs.LOG)

type planned = Cold | Revalidated | Replanned of string

let planned_name = function
  | Cold -> "cold"
  | Revalidated -> "revalidated"
  | Replanned _ -> "replanned"

type outcome =
  | Skipped
  | Window_refused of string
  | Ran of {
      index : int;
      planned : planned;
      status : string;
      outputs : string list;
    }

type epoch_record = {
  er_epoch : int;
  er_session : string;
  er_outcome : outcome;
  er_refunded : B.t;
  er_window : (B.t * B.t) option;  (* (spent, balance) after settling *)
  er_estimate : string list;
}

type config = {
  n_drift : float;
  balance_drift : float;
  poll_timeout_s : float;
}

let default_config =
  { n_drift = 0.2; balance_drift = 0.5; poll_timeout_s = 60.0 }

type fingerprint = {
  fp_n : int;
  fp_calibration : string;
  fp_balance : float;
  fp_tolerance : float option;
}

type session = {
  name : string;
  mutable sub : S.Workload.submission;
  every : int;
  start_epoch : int;
  carry : bool;
  window : W.t option;
  compose : int option;
  kind : Mstate.kind;
  mutable state_json : string;
  mutable fingerprint : fingerprint option;
  mutable last_cost : B.t option;
  mutable cold : int;
  mutable replans : int;
  mutable revalidations : int;
  mutable window_refusals : int;
  mutable runs : int;
  mutable history : epoch_record list;  (* newest first *)
}

type t = {
  service : S.Service.t;
  config : config;
  tick_lock : Mutex.t;  (* serializes whole ticks *)
  lock : Mutex.t;  (* guards epoch / sessions / population / calibration *)
  mutable epoch : int;
  mutable sessions : session list;  (* newest first *)
  mutable population : int;
  mutable calibration : string;
}

let create ?(config = default_config) ~service () =
  {
    service;
    config;
    tick_lock = Mutex.create ();
    lock = Mutex.create ();
    epoch = 0;
    sessions = [];
    population = S.Service.devices service;
    calibration = "calib-v0";
  }

let service t = t.service
let epoch t = Mutex.protect t.lock (fun () -> t.epoch)

let observe_population t n =
  if n < 1 then invalid_arg "Engine.observe_population: n < 1";
  Mutex.protect t.lock (fun () -> t.population <- n)

let set_calibration t tag =
  Mutex.protect t.lock (fun () -> t.calibration <- tag)

let set_tolerance t name tol =
  (match tol with
  | Some v when not (v > 0.0 && v <= 1.0) ->
      invalid_arg "Engine.set_tolerance: tolerance must be in (0, 1]"
  | _ -> ());
  Mutex.protect t.lock (fun () ->
      match List.find_opt (fun s -> s.name = name) t.sessions with
      | None -> invalid_arg ("Engine.set_tolerance: no session " ^ name)
      | Some s ->
          s.sub <- { s.sub with S.Workload.tolerance = tol })

let resolve (sub : S.Workload.submission) =
  match
    match sub.S.Workload.categories with
    | Some c ->
        Q.make ~epsilon:sub.S.Workload.epsilon ~name:sub.S.Workload.query ~c ()
    | None ->
        Q.test_instance ~epsilon:sub.S.Workload.epsilon sub.S.Workload.query
  with
  (* Mirror the service's admission: the tolerance is part of the query, so
     the engine's cache-key computation matches the one the drain uses. *)
  | q -> Some { q with Q.error_tolerance = sub.S.Workload.tolerance }
  | exception Not_found -> None

let in_order t = List.rev t.sessions

let register t ?name ~carry_state (sub : S.Workload.submission) =
  match S.Workload.validate_recurring sub with
  | Error e -> Error (S.Workload.recurring_error_message e)
  | Ok () -> (
      match sub.S.Workload.every with
      | None ->
          Error
            (Printf.sprintf
               "query %s: not recurring — add \"every\" to register a session"
               sub.S.Workload.query)
      | Some every ->
          Mutex.protect t.lock @@ fun () ->
          let exists n = List.exists (fun s -> s.name = n) t.sessions in
          let base = Option.value name ~default:sub.S.Workload.query in
          if name <> None && exists base then
            Error (Printf.sprintf "session %s already exists" base)
          else begin
            let rec uniq candidate k =
              if exists candidate then
                uniq (Printf.sprintf "%s#%d" base k) (k + 1)
              else candidate
            in
            let sname = uniq base 2 in
            let kind =
              match resolve sub with
              | Some q -> Mstate.kind_for q
              | None -> Mstate.Winners
            in
            let window =
              Option.map
                (fun w ->
                  W.create ~horizon:w.S.Workload.w_epochs
                    ~limit:w.S.Workload.w_budget)
                sub.S.Workload.window
            in
            let s =
              {
                name = sname;
                sub;
                every;
                start_epoch = t.epoch + 1;
                carry = carry_state;
                window;
                compose =
                  Option.bind sub.S.Workload.window (fun w ->
                      w.S.Workload.w_compose);
                kind;
                state_json = J.to_string (Mstate.to_json (Mstate.create kind));
                fingerprint = None;
                last_cost = None;
                cold = 0;
                replans = 0;
                revalidations = 0;
                window_refusals = 0;
                runs = 0;
                history = [];
              }
            in
            t.sessions <- s :: t.sessions;
            Ok sname
          end)

(* ---------------- state carryover ---------------- *)

let state_of s =
  match Mstate.of_json (J.of_string s.state_json) with
  | Ok st -> st
  | Error _ | (exception J.Parse_error _) ->
      (* Corrupt carried state resets rather than wedging the session. *)
      Mstate.create s.kind

let current_estimate s = Option.value (Mstate.estimate (state_of s)) ~default:[]

let fold_outputs s outputs =
  (* The carried artifact is the serialized form: decode, fold, re-encode —
     every epoch exercises the restart path. *)
  s.state_json <-
    J.to_string (Mstate.to_json (Mstate.update (state_of s) ~outputs))

(* ---------------- drift / re-validation ---------------- *)

let relevant_balance t s =
  match s.window with
  | Some w -> (W.balance w).B.epsilon
  | None -> (S.Service.budget_left t.service).B.epsilon

let rel_drift now was =
  Float.abs (now -. was) /. Float.max (Float.abs was) 1e-9

let drift_reason t ~population ~calibration s =
  match s.fingerprint with
  | None -> None
  | Some fp ->
      if rel_drift (float_of_int population) (float_of_int fp.fp_n)
         > t.config.n_drift
      then
        Some (Printf.sprintf "population drift: %d -> %d" fp.fp_n population)
      else if calibration <> fp.fp_calibration then
        Some
          (Printf.sprintf "calibration drift: %s -> %s" fp.fp_calibration
             calibration)
      else if s.sub.S.Workload.tolerance <> fp.fp_tolerance then
        let show = function None -> "exact" | Some tol -> Printf.sprintf "%g" tol in
        Some
          (Printf.sprintf "tolerance drift: %s -> %s" (show fp.fp_tolerance)
             (show s.sub.S.Workload.tolerance))
      else if
        rel_drift (relevant_balance t s) fp.fp_balance > t.config.balance_drift
      then
        Some
          (Printf.sprintf "budget-balance drift: %.6g -> %.6g" fp.fp_balance
             (relevant_balance t s))
      else None

(* ---------------- metrics ---------------- *)

let emit_counter t ?labels name help =
  match S.Service.metrics t.service with
  | None -> ()
  | Some reg -> Arb_obs.Metrics.add reg ?labels ~help name 1.0

let emit_window_gauges t s =
  match (S.Service.metrics t.service, s.window) with
  | Some reg, Some w ->
      let set name help v =
        Arb_obs.Metrics.set_gauge reg
          ~labels:[ ("session", s.name) ]
          ~help name v
      in
      let spent = W.spent w and bal = W.balance w in
      set "arb_budget_window_spent_epsilon"
        "Epsilon spent inside the live budget window" spent.B.epsilon;
      set "arb_budget_window_spent_delta"
        "Delta spent inside the live budget window" spent.B.delta;
      set "arb_budget_window_balance_epsilon"
        "Epsilon remaining in the sliding budget window" bal.B.epsilon;
      set "arb_budget_window_balance_delta"
        "Delta remaining in the sliding budget window" bal.B.delta;
      set "arb_budget_window_limit_epsilon"
        "Epsilon limit of the sliding budget window" (W.limit w).B.epsilon;
      set "arb_budget_window_live_epochs"
        "Epochs carrying live charges in the budget window"
        (float_of_int (List.length (W.charges w)))
  | _ -> ()

(* ---------------- tick ---------------- *)

type pending = {
  pd_session : session;
  pd_refunded : B.t;
  pd_index : int;
  mutable pd_planned : planned;
}

let window_view s = Option.map (fun w -> (W.spent w, W.balance w)) s.window

let push_record s r = s.history <- r :: s.history

let wait_record t ~deadline index =
  let rec loop () =
    match S.Service.record t.service index with
    | Some r -> Some r
    | None ->
        if Unix.gettimeofday () > deadline then None
        else begin
          (* Another executor (the HTTP front door's) owns the drain; its
             records land momentarily. Never taken in standalone mode. *)
          Unix.sleepf 0.002;
          loop ()
        end
  in
  loop ()

(* Settle one due session from its lifecycle record: reconcile the planned
   label, bump counters, refresh the fingerprint after a (re)plan, charge
   the window for executed work, and fold outputs into carried state. *)
let settle t ~population ~calibration pd record =
  let s = pd.pd_session in
  (match record with
  | None -> ()
  | Some (r : S.Lifecycle.record) -> (
      (* A decision of Revalidated that still cold-planned means the entry
         was evicted underneath us (another session's re-plan of a shared
         key): account it as a re-plan, not a reuse. *)
      (match (pd.pd_planned, r.S.Lifecycle.status) with
      | Revalidated, (S.Lifecycle.Executed _ | S.Lifecycle.Exec_failed _)
        when not r.S.Lifecycle.cache_hit ->
          pd.pd_planned <- Replanned "cache evicted"
      | _ -> ());
      match r.S.Lifecycle.status with
      | S.Lifecycle.Refused _ ->
          (* The service's own admission refused it: nothing was planned or
             executed, so neither counters nor the window move. *)
          ()
      | status ->
          s.last_cost <- Some r.S.Lifecycle.cost;
          (match pd.pd_planned with
          | Cold ->
              s.cold <- s.cold + 1;
              emit_counter t "arb_continual_cold_plans_total"
                "First-epoch cold plans by continual sessions"
          | Replanned reason ->
              s.replans <- s.replans + 1;
              let label =
                match String.index_opt reason ':' with
                | Some i -> String.sub reason 0 i
                | None -> reason
              in
              emit_counter t
                ~labels:[ ("reason", label) ]
                "arb_continual_replans_total"
                "Forced re-plans after drift past a threshold"
          | Revalidated ->
              s.revalidations <- s.revalidations + 1;
              emit_counter t "arb_continual_revalidations_total"
                "Epochs that reused the cached plan via re-validation");
          (* Fingerprint the world the plan was (re)priced under. *)
          (match pd.pd_planned with
          | Cold | Replanned _ ->
              s.fingerprint <-
                Some
                  {
                    fp_n = population;
                    fp_calibration = calibration;
                    fp_balance = relevant_balance t s;
                    fp_tolerance = s.sub.S.Workload.tolerance;
                  }
          | Revalidated -> ());
          (match status with
          | S.Lifecycle.Executed { outputs } -> (
              s.runs <- s.runs + 1;
              if s.carry then fold_outputs s outputs;
              match s.window with
              | None -> ()
              | Some w -> (
                  match W.charge w ~cost:r.S.Lifecycle.cost with
                  | Some _ -> ()
                  | None ->
                      (* Prescreened before submission; only reachable if the
                         certified cost changed in between. *)
                      Log.warn (fun f ->
                          f "session %s: window charge failed post-execution"
                            s.name)))
          | _ -> ())));
  let status, outputs =
    match record with
    | None -> ("missing", [])
    | Some r -> (
        ( S.Lifecycle.status_name r.S.Lifecycle.status,
          match r.S.Lifecycle.status with
          | S.Lifecycle.Executed { outputs } -> outputs
          | _ -> [] ))
  in
  {
    er_epoch = 0 (* patched by the caller *);
    er_session = s.name;
    er_outcome =
      Ran { index = pd.pd_index; planned = pd.pd_planned; status; outputs };
    er_refunded = pd.pd_refunded;
    er_window = window_view s;
    er_estimate = (if s.carry then current_estimate s else outputs);
  }

let tick ?tracer ?(workers = 1) t =
  Mutex.protect t.tick_lock @@ fun () ->
  let epoch, all_sessions, population, calibration =
    Mutex.protect t.lock (fun () ->
        t.epoch <- t.epoch + 1;
        (t.epoch, in_order t, t.population, t.calibration))
  in
  (* Phase 1, in registration order: advance windows (collect refunds),
     decide skip / window-refuse / submit, evict cache entries for forced
     re-plans, and enqueue due work. *)
  let pendings =
    List.filter_map
      (fun s ->
        let refunded =
          match s.window with None -> B.zero | Some w -> W.advance w epoch
        in
        let record_now outcome =
          push_record s
            {
              er_epoch = epoch;
              er_session = s.name;
              er_outcome = outcome;
              er_refunded = refunded;
              er_window = window_view s;
              er_estimate = (if s.carry then current_estimate s else []);
            };
          None
        in
        if epoch < s.start_epoch || (epoch - s.start_epoch) mod s.every <> 0
        then record_now Skipped
        else
          let query = resolve s.sub in
          let cost =
            Option.bind query (fun q ->
                let cert =
                  Arb_lang.Certify.certify q.Q.program
                    ~n:(S.Service.devices t.service)
                in
                if cert.Arb_lang.Certify.certified then
                  Some cert.Arb_lang.Certify.cost
                else None)
          in
          match (s.window, cost) with
          | Some w, Some c when not (W.can_afford w ~cost:c) ->
              (* Refused before anything reaches the service: session and
                 window budgets stay byte-identical. *)
              let reason =
                Format.asprintf "window budget exhausted (need %a, have %a)%s"
                  B.pp c B.pp (W.balance w)
                  (match W.next_expiry w with
                  | Some (e, r) ->
                      Format.asprintf "; %a expires at epoch %d" B.pp r e
                  | None -> "")
              in
              s.window_refusals <- s.window_refusals + 1;
              emit_counter t "arb_continual_window_refusals_total"
                "Epochs refused by the sliding-window budget prescreen";
              record_now (Window_refused reason)
          | _ ->
              let planned =
                match query with
                | None -> Cold (* unknown query: the service refuses it *)
                | Some q -> (
                    let key =
                      S.Cache.key ~goal:s.sub.S.Workload.goal ~query:q
                        ~n:(S.Service.devices t.service) ()
                    in
                    match drift_reason t ~population ~calibration s with
                    | Some reason ->
                        S.Cache.remove (S.Service.cache t.service) key;
                        Replanned reason
                    | None ->
                        if s.fingerprint <> None then Revalidated
                        else if S.Cache.mem (S.Service.cache t.service) key
                        then Revalidated
                        else Cold)
              in
              let index = S.Service.submit t.service s.sub in
              Some
                {
                  pd_session = s;
                  pd_refunded = refunded;
                  pd_index = index;
                  pd_planned = planned;
                })
      all_sessions
  in
  (* Phase 2: one drain for the whole epoch. When an API executor owns
     draining this returns [] and settle polls the history instead. *)
  if pendings <> [] then ignore (S.Service.drain ?tracer ~workers t.service);
  (* Phase 3, in registration order: settle and record. *)
  let deadline = Unix.gettimeofday () +. t.config.poll_timeout_s in
  List.iter
    (fun pd ->
      let record = wait_record t ~deadline pd.pd_index in
      let er = settle t ~population ~calibration pd record in
      push_record pd.pd_session { er with er_epoch = epoch })
    pendings;
  emit_counter t "arb_continual_epochs_total" "Epoch ticks processed";
  (match S.Service.metrics t.service with
  | None -> ()
  | Some reg ->
      Arb_obs.Metrics.set_gauge reg ~help:"Current continual epoch"
        "arb_continual_epoch" (float_of_int epoch);
      Arb_obs.Metrics.set_gauge reg ~help:"Registered continual sessions"
        "arb_continual_sessions"
        (float_of_int (List.length all_sessions)));
  List.iter (emit_window_gauges t) all_sessions;
  Log.info (fun f ->
      f "epoch %d: %d sessions, %d due" epoch (List.length all_sessions)
        (List.length pendings));
  (* Every session's record for this epoch, in registration order. *)
  Mutex.protect t.lock (fun () ->
      List.filter_map
        (fun s -> List.find_opt (fun r -> r.er_epoch = epoch) s.history)
        (in_order t))

let run_epochs ?tracer ?workers t n =
  List.init n (fun _ -> tick ?tracer ?workers t)

(* ---------------- views / JSON ---------------- *)

type session_view = {
  v_name : string;
  v_query : string;
  v_every : int;
  v_carry : bool;
  v_kind : Mstate.kind;
  v_runs : int;
  v_cold : int;
  v_replans : int;
  v_revalidations : int;
  v_window_refusals : int;
  v_estimate : string list;
  v_state : J.t;
  v_window : W.t option;
  v_compose : int option;
  v_last_cost : B.t option;
  v_history : epoch_record list;  (* oldest first *)
}

let view_of s =
  {
    v_name = s.name;
    v_query = s.sub.S.Workload.query;
    v_every = s.every;
    v_carry = s.carry;
    v_kind = s.kind;
    v_runs = s.runs;
    v_cold = s.cold;
    v_replans = s.replans;
    v_revalidations = s.revalidations;
    v_window_refusals = s.window_refusals;
    v_estimate = (if s.carry then current_estimate s else []);
    v_state = J.of_string s.state_json;
    v_window = s.window;
    v_compose = s.compose;
    v_last_cost = s.last_cost;
    v_history = List.rev s.history;
  }

let sessions t = Mutex.protect t.lock (fun () -> List.map view_of (in_order t))

let session t name =
  Mutex.protect t.lock (fun () ->
      Option.map view_of (List.find_opt (fun s -> s.name = name) t.sessions))

let strings l = J.List (List.map (fun s -> J.String s) l)

let record_json r =
  let outcome_fields =
    match r.er_outcome with
    | Skipped -> [ ("outcome", J.String "skipped") ]
    | Window_refused reason ->
        [ ("outcome", J.String "windowRefused"); ("reason", J.String reason) ]
    | Ran { index; planned; status; outputs } ->
        List.concat
          [
            [
              ("outcome", J.String "ran");
              ("index", J.Int index);
              ("planned", J.String (planned_name planned));
            ];
            (match planned with
            | Replanned reason -> [ ("replanReason", J.String reason) ]
            | _ -> []);
            [ ("status", J.String status); ("outputs", strings outputs) ];
          ]
  in
  J.Obj
    (List.concat
       [
         [ ("epoch", J.Int r.er_epoch); ("session", J.String r.er_session) ];
         outcome_fields;
         [ ("refunded", B.to_json r.er_refunded) ];
         (match r.er_window with
         | None -> []
         | Some (spent, balance) ->
             [
               ("windowSpent", B.to_json spent);
               ("windowBalance", B.to_json balance);
             ]);
         [ ("estimate", strings r.er_estimate) ];
       ])

let records_string records =
  J.to_string (J.List (List.map record_json records))

let session_summary_json v =
  J.Obj
    (List.concat
       [
         [
           ("name", J.String v.v_name);
           ("query", J.String v.v_query);
           ("every", J.Int v.v_every);
           ("carryState", J.Bool v.v_carry);
           ("state", J.String (Mstate.kind_name v.v_kind));
           ("runs", J.Int v.v_runs);
           ("coldPlans", J.Int v.v_cold);
           ("replans", J.Int v.v_replans);
           ("revalidations", J.Int v.v_revalidations);
           ("windowRefusals", J.Int v.v_window_refusals);
           ("estimate", strings v.v_estimate);
         ];
         (match v.v_window with
         | None -> []
         | Some w ->
             ("window", W.to_json w)
             :: ("composed", B.to_json (W.composed w))
             ::
             (match (v.v_compose, v.v_last_cost) with
             | Some k, Some cost ->
                 (* Worst case over the declared composition horizon: k
                    charges of the session's certified cost, priced at the
                    tighter of sequential and advanced composition. *)
                 let seq = B.scale cost (float_of_int k) in
                 let adv =
                   if cost.B.epsilon > 0.0 then
                     B.advanced_composition ~epsilon:cost.B.epsilon
                       ~delta:cost.B.delta ~k ~delta_slack:1e-9
                   else seq
                 in
                 [
                   ( "projectedComposed",
                     B.to_json
                       (if adv.B.epsilon < seq.B.epsilon then adv else seq) );
                 ]
             | _ -> []));
       ])

let session_json v =
  match session_summary_json v with
  | J.Obj fields ->
      J.Obj (fields @ [ ("history", J.List (List.map record_json v.v_history)) ])
  | j -> j

let to_json t =
  J.Obj
    [
      ("epoch", J.Int (epoch t));
      ("sessions", J.List (List.map session_summary_json (sessions t)));
    ]

let budget_json t =
  let left = S.Service.budget_left t.service in
  let windows =
    List.filter_map
      (fun v ->
        Option.map
          (fun w ->
            J.Obj [ ("session", J.String v.v_name); ("window", W.to_json w) ])
          v.v_window)
      (sessions t)
  in
  J.Obj
    [
      ("epsilon", J.Float left.B.epsilon);
      ("delta", J.Float left.B.delta);
      ("epoch", J.Int (epoch t));
      ("windows", J.List windows);
    ]
