(** HTTP routes for the continual engine, designed to be passed as
    {!Arb_service.Api.create}'s [?extra] handler:

    - [GET /v1/sessions] — epoch + one summary per session (counters,
      carried-state estimate, live window).
    - [GET /v1/sessions/<name>] — the summary plus the session's full
      epoch history; 404 for unknown names.
    - [GET /v1/budget] — shadows the base route with
      {!Engine.budget_json}: the same global [epsilon]/[delta] plus the
      per-session window detail.
    - [POST /v1/epoch] — drive one epoch by hand (the curl-facing
      alternative to [--epoch-interval]); responds with the epoch's
      records. Ticks serialize on the engine's internal lock.
    - [PUT /v1/calibration] — shadows the base route: installs on the
      service ({!Arb_service.Service.set_calibration}, re-pricing the
      plan cache) {e and} feeds the fingerprint to
      {!Engine.set_calibration} so due sessions re-plan exactly once at
      their next epoch.

    Any other request falls through ([None]) to the base API routes. *)

val handler :
  ?tracer:Arb_obs.Tracer.t ->
  ?workers:int ->
  Engine.t ->
  Arb_service.Http.request ->
  Arb_service.Http.response option
(** [workers] sizes the planning pool of drains triggered by
    [POST /v1/epoch]. *)
