(** Incremental mechanism state carried across a recurring session's
    epochs.

    Two shapes, chosen by the query's mechanism class ({!kind_for}):
    exponential-mechanism queries (top-1/top-k winners) accumulate a
    heavy-hitter multiset of per-epoch winner sets; numeric aggregates
    (median, counts) feed a bounded quantile sketch. Both are pure values
    the engine round-trips through their JSON form every epoch — what is
    carried {e is} the serialized state, so restart fidelity is tested in
    flight, not just in a unit test.

    Estimates are deterministic: the winners estimate breaks ties
    lexicographically and the sketch's compaction is deterministic
    decimation of the sorted sample list, so state bytes never depend on
    arrival order across equal inputs. *)

type kind = Winners | Sketch

type t

val create : ?capacity:int -> kind -> t
(** An empty state. [capacity] (default 512, minimum 2) bounds the sketch
    sample count; beyond it the sorted samples are decimated (every other
    sample kept). *)

val kind_for : Arb_queries.Registry.query -> kind
(** [Winners] for exponential-mechanism queries, [Sketch] otherwise. *)

val kind_name : kind -> string

val update : t -> outputs:string list -> t
(** Fold one epoch's lifecycle outputs in. Winners: count the full output
    list (JSON-encoded, so separators in outputs are safe). Sketch: parse
    numeric outputs into the sample set; non-numeric outputs are ignored. *)

val estimate : t -> string list option
(** The state's smoothed answer: the modal output list (winners) or the
    median sample (sketch). [None] before any informative update. *)

val epochs : t -> int
(** Updates folded in so far. *)

val to_json : t -> Arb_util.Json.t
val of_json : Arb_util.Json.t -> (t, string) result
val equal : t -> t -> bool
