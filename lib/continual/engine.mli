(** The continual-analytics engine: epoch-indexed recurring sessions over
    the one-shot service (DESIGN.md §13).

    Register recurring workload entries ([every]/[window]) as named
    sessions, then drive epochs with {!tick} — from a deterministic loop
    in tests and benches, a wall-clock ticker or [POST /v1/epoch] in
    [arb serve --listen]. Each tick, in registration order:

    + advance every session's sliding budget window to the new epoch,
      collecting exact expiry refunds;
    + for due sessions ([every] divides the epochs since registration):
      certify for cost, prescreen against the window (refusal leaves both
      the window and the service budget byte-identical), then decide
      {e re-validation} (submit; the plan cache hits) versus a forced
      {e re-plan} (evict the cache entry first) when the population
      estimate, cost-calibration tag, or budget balance drifted past the
      configured relative thresholds since the plan's fingerprint;
    + drain the service once and settle: charge windows for executed
      queries, fold outputs into carried mechanism state ({!Mstate},
      round-tripped through its serialized form every epoch), refresh
      fingerprints, and append per-session epoch records.

    Emits [arb_continual_*] counters (cold plans / replans by reason /
    revalidations / window refusals / epochs) and per-session
    [arb_budget_window_*] gauges into the service's metrics registry.

    Ticks are serialized on an internal lock; views may be read from other
    domains (the HTTP routes do). Epoch records are byte-identical at any
    [workers] count — the engine inherits the service pipeline's
    canonical ordering and adds none of its own nondeterminism. *)

type planned = Cold | Revalidated | Replanned of string

val planned_name : planned -> string

type outcome =
  | Skipped  (** not due this epoch *)
  | Window_refused of string  (** window prescreen refused; nothing ran *)
  | Ran of {
      index : int;  (** service submission index *)
      planned : planned;
      status : string;  (** {!Arb_service.Lifecycle.status_name} *)
      outputs : string list;
    }

type epoch_record = {
  er_epoch : int;
  er_session : string;
  er_outcome : outcome;
  er_refunded : Arb_dp.Budget.t;  (** expired from the window this epoch *)
  er_window : (Arb_dp.Budget.t * Arb_dp.Budget.t) option;
      (** (spent, balance) after settling, for windowed sessions *)
  er_estimate : string list;
      (** carried-state estimate (state-carrying sessions) or this epoch's
          raw outputs *)
}

type config = {
  n_drift : float;
      (** relative population drift beyond which a due session re-plans *)
  balance_drift : float;  (** same, for the relevant budget balance *)
  poll_timeout_s : float;
      (** how long settle waits for a lifecycle record when another
          executor owns the drain *)
}

val default_config : config
(** 20% population drift, 50% balance drift, 60 s poll timeout. *)

type t

val create : ?config:config -> service:Arb_service.Service.t -> unit -> t

val service : t -> Arb_service.Service.t
val epoch : t -> int
(** Epochs start at 1; 0 before the first {!tick}. *)

val register :
  t ->
  ?name:string ->
  carry_state:bool ->
  Arb_service.Workload.submission ->
  (string, string) result
(** Register a recurring submission as a session; returns its name
    ([name], defaulting to the query name, suffixed [#2], [#3], … when
    taken — an explicit duplicate [name] is an error). The submission must
    pass {!Arb_service.Workload.validate_recurring} and carry [every].
    [carry_state] enables mechanism-state carryover across epochs. *)

val observe_population : t -> int -> unit
(** Feed a fresh population estimate (drift input for re-validation). *)

val set_calibration : t -> string -> unit
(** Install a new cost-calibration fingerprint; due sessions re-plan once
    on their next epoch. *)

val set_tolerance : t -> string -> float option -> unit
(** Change session [name]'s analyst error tolerance ([None] = exact). A
    changed tolerance forces exactly one re-plan ("tolerance drift") on
    the session's next due epoch; subsequent epochs revalidate as usual.
    Raises [Invalid_argument] on unknown sessions or tolerances outside
    (0, 1]. *)

val tick :
  ?tracer:Arb_obs.Tracer.t -> ?workers:int -> t -> epoch_record list
(** Advance one epoch. Returns this epoch's record for every registered
    session (including skips and window refusals), in registration order. *)

val run_epochs :
  ?tracer:Arb_obs.Tracer.t -> ?workers:int -> t -> int -> epoch_record list list
(** [n] consecutive ticks. *)

type session_view = {
  v_name : string;
  v_query : string;
  v_every : int;
  v_carry : bool;
  v_kind : Mstate.kind;
  v_runs : int;
  v_cold : int;
  v_replans : int;
  v_revalidations : int;
  v_window_refusals : int;
  v_estimate : string list;
  v_state : Arb_util.Json.t;  (** the serialized carried state *)
  v_window : Arb_dp.Budget.Window.t option;
  v_compose : int option;
  v_last_cost : Arb_dp.Budget.t option;
  v_history : epoch_record list;  (** oldest first *)
}

val sessions : t -> session_view list
val session : t -> string -> session_view option

val record_json : epoch_record -> Arb_util.Json.t

val records_string : epoch_record list -> string
(** Canonical bytes (no wall-clock content) — the multi-epoch analogue of
    {!Arb_service.Lifecycle.records_to_string}, used by the worker-count
    byte-identity gates. *)

val session_summary_json : session_view -> Arb_util.Json.t
val session_json : session_view -> Arb_util.Json.t
(** Summary plus full epoch history. *)

val to_json : t -> Arb_util.Json.t
(** The [GET /v1/sessions] payload: epoch + session summaries. *)

val budget_json : t -> Arb_util.Json.t
(** The enriched [GET /v1/budget] payload: the service's global balance
    (same [epsilon]/[delta] keys as the base route) plus the current epoch
    and every session's live window (per-epoch charges, refund schedule,
    projected balance). *)
