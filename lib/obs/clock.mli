(** Explicit time sources for tracing.

    A tracer never calls a clock implicitly chosen for it: the creator
    decides whether spans carry real wall time ([Monotonic]), simulated
    protocol time advanced by the runtime ([Simulated]), or no time at all
    ([Deterministic], where the tracer falls back to a logical sequence
    counter so trace bytes depend only on structure). *)

type sim = { mutable sim_now : float }
(** A simulated clock: seconds since the start of the run, advanced
    explicitly by the instrumented code. *)

type t = Monotonic | Simulated of sim | Deterministic

val sim : ?start:float -> unit -> sim
val advance : sim -> float -> unit
val read : sim -> float
