(* Span-based structured tracer emitting Chrome trace_event JSON.

   Spans nest: [with_span] pushes an open span, runs the thunk, and records
   a complete ("X") event on the way out — including when the thunk raises,
   so a failed run still produces a well-nested trace. Timestamps come from
   the injected {!Clock.t}; in [Deterministic] mode a logical sequence
   counter stands in for the clock, making the serialized trace a pure
   function of the recorded structure.

   A tracer is single-domain: parallel stages make one [child] per task and
   the coordinator [graft]s them back in canonical task order, so the
   merged trace is independent of worker scheduling. *)

module J = Arb_util.Json

type event = {
  e_name : string;
  e_cat : string;
  e_instant : bool;
  e_ts : int;  (* µs, or the logical sequence number in deterministic mode *)
  e_dur : int;  (* µs (0 for instants) *)
  e_tid : int;
  e_args : (string * J.t) list;
}

type open_span = {
  s_name : string;
  s_cat : string;
  s_ts : int;
  mutable s_args : (string * J.t) list;
}

type t = {
  clock : Clock.t;
  t0 : float;
  pid : int;
  tid : int;
  lock : Mutex.t;
  mutable seq : int;  (* logical clock for deterministic mode *)
  mutable events : event list;  (* newest first *)
  mutable stack : open_span list;  (* innermost first *)
}

let create ?(clock = Clock.Monotonic) ?(pid = 1) ?(tid = 0) () =
  {
    clock;
    t0 = (match clock with Clock.Monotonic -> Unix.gettimeofday () | _ -> 0.0);
    pid;
    tid;
    lock = Mutex.create ();
    seq = 0;
    events = [];
    stack = [];
  }

let deterministic t = t.clock = Clock.Deterministic
let clock t = t.clock
let tid t = t.tid

(* Every begin/end/instant consumes one logical tick in deterministic mode,
   so a span strictly contains its children ([dur >= 1]). *)
let now_ticks t =
  match t.clock with
  | Clock.Monotonic -> int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e6)
  | Clock.Simulated s -> int_of_float (Clock.read s *. 1e6)
  | Clock.Deterministic ->
      let n = t.seq in
      t.seq <- n + 1;
      n

let advance t dt =
  match t.clock with Clock.Simulated s -> Clock.advance s dt | _ -> ()

let child t ~tid =
  {
    clock = t.clock;
    t0 = t.t0;
    pid = t.pid;
    tid;
    lock = Mutex.create ();
    seq = 0;
    events = [];
    stack = [];
  }

let graft t c =
  if c.stack <> [] then invalid_arg "Tracer.graft: child has open spans";
  Mutex.protect t.lock (fun () ->
      let shift =
        (* Deterministic children number their own ticks from 0; splice them
           into the parent's logical timeline at the graft point so the
           merged sequence is total and depends only on graft order. *)
        if deterministic t then begin
          let s = t.seq in
          t.seq <- t.seq + c.seq;
          s
        end
        else 0
      in
      t.events <-
        List.fold_left
          (fun acc e -> { e with e_ts = e.e_ts + shift } :: acc)
          t.events (List.rev c.events))

let span_begin t ?(cat = "") ?(args = []) name =
  Mutex.protect t.lock (fun () ->
      t.stack <- { s_name = name; s_cat = cat; s_ts = now_ticks t; s_args = args } :: t.stack)

let add_args t args =
  Mutex.protect t.lock (fun () ->
      match t.stack with
      | [] -> ()
      | s :: _ -> s.s_args <- s.s_args @ args)

let span_end t =
  Mutex.protect t.lock (fun () ->
      match t.stack with
      | [] -> invalid_arg "Tracer.span_end: no open span"
      | s :: rest ->
          t.stack <- rest;
          let ts_end = now_ticks t in
          t.events <-
            {
              e_name = s.s_name;
              e_cat = s.s_cat;
              e_instant = false;
              e_ts = s.s_ts;
              e_dur = max 0 (ts_end - s.s_ts);
              e_tid = t.tid;
              e_args = s.s_args;
            }
            :: t.events)

let with_span t ?cat ?args name f =
  span_begin t ?cat ?args name;
  Fun.protect ~finally:(fun () -> span_end t) f

let instant t ?(cat = "") ?(args = []) name =
  Mutex.protect t.lock (fun () ->
      t.events <-
        {
          e_name = name;
          e_cat = cat;
          e_instant = true;
          e_ts = now_ticks t;
          e_dur = 0;
          e_tid = t.tid;
          e_args = args;
        }
        :: t.events)

let event_count t = Mutex.protect t.lock (fun () -> List.length t.events)

(* Chronological order with parents before their children: sort by start
   time, longest span first on ties, insertion order as the final tie
   break. Deterministic inputs give deterministic bytes. *)
let ordered_events t =
  let evs =
    Mutex.protect t.lock (fun () -> Array.of_list (List.rev t.events))
  in
  let indexed = Array.mapi (fun i e -> (i, e)) evs in
  Array.sort
    (fun (i1, e1) (i2, e2) ->
      match compare e1.e_ts e2.e_ts with
      | 0 -> ( match compare e2.e_dur e1.e_dur with 0 -> compare i1 i2 | c -> c)
      | c -> c)
    indexed;
  Array.to_list (Array.map snd indexed)

let to_json t =
  J.List
    (List.map
       (fun e ->
         let base =
           [
             ("name", J.String e.e_name);
             ("cat", J.String (if e.e_cat = "" then "arb" else e.e_cat));
             ("ph", J.String (if e.e_instant then "i" else "X"));
             ("ts", J.Int e.e_ts);
           ]
         in
         let dur = if e.e_instant then [ ("s", J.String "t") ] else [ ("dur", J.Int e.e_dur) ] in
         let ids = [ ("pid", J.Int t.pid); ("tid", J.Int e.e_tid) ] in
         let args =
           if e.e_args = [] then [] else [ ("args", J.Obj e.e_args) ]
         in
         J.Obj (base @ dur @ ids @ args))
       (ordered_events t))

let to_string t = J.to_string (to_json t)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let totals t =
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if not e.e_instant then
        let count, dur =
          Option.value (Hashtbl.find_opt tbl e.e_name) ~default:(0, 0)
        in
        Hashtbl.replace tbl e.e_name (count + 1, dur + e.e_dur))
    (ordered_events t);
  let rows =
    Hashtbl.fold
      (fun name (count, dur) acc -> (name, count, float_of_int dur /. 1e6) :: acc)
      tbl []
  in
  List.sort
    (fun (n1, _, d1) (n2, _, d2) ->
      match compare d2 d1 with 0 -> String.compare n1 n2 | c -> c)
    rows
