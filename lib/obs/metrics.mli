(** Metrics registry: named counters, gauges, and fixed-bucket histograms
    with Prometheus-style text exposition and canonical JSON export.

    Instruments are keyed by (name, sorted labels) and registration is
    idempotent: asking for an existing instrument returns the same cell.
    Mutation is mutex-protected, so handles may be bumped from worker
    domains. Exposition is sorted by (name, labels): two registries holding
    the same values serialize to identical bytes, which is what the
    deterministic-mode canonicality properties check. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  buckets:float list ->
  string ->
  histogram
(** [buckets] are strictly increasing, finite upper bounds; a trailing +Inf
    overflow bucket is implicit. Re-registering the same name with
    different buckets raises [Invalid_argument]. *)

val inc : ?by:float -> counter -> unit
(** Counters only move forward: negative or non-finite [by] raises. *)

val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Underflow observations land in the first bucket, overflow in the +Inf
    bucket; non-finite observations raise. *)

(** One-shot forms (register + mutate) for end-of-run publishing. *)

val add : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
val set_gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit

val observe_in :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  buckets:float list ->
  string ->
  float ->
  unit

val latency_buckets : float list
(** Default seconds-scale latency buckets (1 ms … 60 s). *)

val size_buckets : float list
(** Default bytes-scale buckets (64 B … 1 MiB, powers of four) for
    message-size histograms such as the HTTP front door's request and
    response bytes. *)

val to_prometheus : t -> string
(** Prometheus text exposition format, canonically ordered. *)

val to_json : t -> Arb_util.Json.t
(** Canonical JSON rendering of every instrument, same order as the text
    form. *)

val save : t -> string -> unit
(** Write [to_prometheus] to a file. *)

val save_json : t -> string -> unit
(** Write [to_json] (compact, newline-terminated) to a file — the format
    {!load_json} parses and the snapshot store embeds per line. *)

val of_json : Arb_util.Json.t -> (t, string) result
(** Rebuild a registry from its {!to_json} form. Values, labels, and bucket
    layouts round-trip exactly; help strings are not part of the JSON
    exposition and come back empty. *)

val load_json : string -> t
(** Parse a {!save_json} file back into a registry. A missing, unreadable,
    or malformed file demotes to an empty registry carrying an
    [arb_metrics_malformed_loads_total] counter (the same
    malformed-demotes contract as the plan cache's {!Arb_planner.Plan_io}
    loader): callers keep working, and the loss stays visible. *)

val histogram_quantile :
  t -> ?labels:(string * string) list -> string -> float -> float option
(** [histogram_quantile t name q] estimates the [q]-quantile (e.g. [0.95])
    of a registered histogram by Prometheus-style linear interpolation
    inside the covering bucket. Ranks landing in the +Inf overflow bucket
    clamp to the highest finite bound; an all-underflow histogram
    interpolates inside [0, first bound]. [None] when the histogram does
    not exist or holds no observations; [q] outside [0, 1] raises. *)

val value_at : t -> ?labels:(string * string) list -> string -> float option
(** Current value of a counter or gauge series, if registered. *)

val label_values : t -> string -> label:string -> string list
(** Sorted distinct values a label takes across a name's series — how the
    calibration fit discovers which sections a snapshot recorded. *)
