(** Metrics registry: named counters, gauges, and fixed-bucket histograms
    with Prometheus-style text exposition and canonical JSON export.

    Instruments are keyed by (name, sorted labels) and registration is
    idempotent: asking for an existing instrument returns the same cell.
    Mutation is mutex-protected, so handles may be bumped from worker
    domains. Exposition is sorted by (name, labels): two registries holding
    the same values serialize to identical bytes, which is what the
    deterministic-mode canonicality properties check. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  buckets:float list ->
  string ->
  histogram
(** [buckets] are strictly increasing, finite upper bounds; a trailing +Inf
    overflow bucket is implicit. Re-registering the same name with
    different buckets raises [Invalid_argument]. *)

val inc : ?by:float -> counter -> unit
(** Counters only move forward: negative or non-finite [by] raises. *)

val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Underflow observations land in the first bucket, overflow in the +Inf
    bucket; non-finite observations raise. *)

(** One-shot forms (register + mutate) for end-of-run publishing. *)

val add : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
val set_gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit

val observe_in :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  buckets:float list ->
  string ->
  float ->
  unit

val latency_buckets : float list
(** Default seconds-scale latency buckets (1 ms … 60 s). *)

val size_buckets : float list
(** Default bytes-scale buckets (64 B … 1 MiB, powers of four) for
    message-size histograms such as the HTTP front door's request and
    response bytes. *)

val to_prometheus : t -> string
(** Prometheus text exposition format, canonically ordered. *)

val to_json : t -> Arb_util.Json.t
(** Canonical JSON rendering of every instrument, same order as the text
    form. *)

val save : t -> string -> unit
(** Write [to_prometheus] to a file. *)
