(* A small Prometheus-flavored metrics registry.

   Counters, gauges, and fixed-bucket histograms, registered by
   (name, sorted labels). All mutation goes through the registry mutex so
   instruments can be bumped from planner/service worker domains; exposition
   sorts by (name, labels), which makes both the text and JSON forms
   canonical: two registries holding the same values serialize to identical
   bytes. *)

module J = Arb_util.Json

type hist = {
  h_bounds : float array;  (* strictly increasing upper bounds *)
  h_counts : int array;  (* length = bounds + 1; last is the +Inf bucket *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument = I_counter of float ref | I_gauge of float ref | I_hist of hist

type entry = { e_help : string; e_inst : instrument }

type t = {
  lock : Mutex.t;
  tbl : (string * (string * string) list, entry) Hashtbl.t;
}

type counter = { c_cell : float ref; c_lock : Mutex.t }
type gauge = { g_cell : float ref; g_lock : Mutex.t }
type histogram = { o_hist : hist; o_lock : Mutex.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 32 }

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_hist _ -> "histogram"

let register t ~help ~labels name make =
  let key = (name, canon_labels labels) in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e -> e.e_inst
      | None ->
          let inst = make () in
          (* A name must keep one kind across all label sets: Prometheus
             exposition declares TYPE once per family. *)
          Hashtbl.iter
            (fun (n, _) e ->
              if n = name && kind_name e.e_inst <> kind_name (inst) then
                invalid_arg
                  (Printf.sprintf "Metrics: %s already registered as a %s" name
                     (kind_name e.e_inst)))
            t.tbl;
          Hashtbl.replace t.tbl key { e_help = help; e_inst = inst };
          inst)

let counter t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> I_counter (ref 0.0)) with
  | I_counter c -> { c_cell = c; c_lock = t.lock }
  | i -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a counter" name (kind_name i))

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> I_gauge (ref 0.0)) with
  | I_gauge g -> { g_cell = g; g_lock = t.lock }
  | i -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a gauge" name (kind_name i))

let histogram t ?(help = "") ?(labels = []) ~buckets name =
  let bounds = Array.of_list buckets in
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: needs at least one bucket bound";
  Array.iter
    (fun b ->
      if not (Float.is_finite b) then
        invalid_arg "Metrics.histogram: bucket bounds must be finite")
    bounds;
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
  done;
  let make () =
    I_hist
      {
        h_bounds = bounds;
        h_counts = Array.make (Array.length bounds + 1) 0;
        h_sum = 0.0;
        h_count = 0;
      }
  in
  match register t ~help ~labels name make with
  | I_hist h ->
      if h.h_bounds <> bounds then
        invalid_arg
          (Printf.sprintf "Metrics: %s re-registered with different buckets" name);
      { o_hist = h; o_lock = t.lock }
  | i -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a histogram" name (kind_name i))

let inc ?(by = 1.0) c =
  if (not (Float.is_finite by)) || by < 0.0 then
    invalid_arg "Metrics.inc: counters only move forward by finite amounts";
  Mutex.protect c.c_lock (fun () -> c.c_cell := !(c.c_cell) +. by)

let set g v =
  if not (Float.is_finite v) then invalid_arg "Metrics.set: non-finite gauge value";
  Mutex.protect g.g_lock (fun () -> g.g_cell := v)

let observe o v =
  if not (Float.is_finite v) then
    invalid_arg "Metrics.observe: non-finite observation";
  Mutex.protect o.o_lock (fun () ->
      let h = o.o_hist in
      let n = Array.length h.h_bounds in
      (* First bucket whose upper bound covers v; values above every bound
         (overflow) land in the trailing +Inf bucket, values below the first
         bound (underflow) in the first. *)
      let rec idx i = if i >= n then n else if v <= h.h_bounds.(i) then i else idx (i + 1) in
      let i = idx 0 in
      h.h_counts.(i) <- h.h_counts.(i) + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1)

(* One-shot forms for end-of-run publishing, where keeping a handle around
   would just be noise. *)
let add t ?help ?labels name v = inc ~by:v (counter t ?help ?labels name)
let set_gauge t ?help ?labels name v = set (gauge t ?help ?labels name) v

let observe_in t ?help ?labels ~buckets name v =
  observe (histogram t ?help ?labels ~buckets name) v

let latency_buckets =
  [ 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 ]

let size_buckets =
  [ 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0; 262144.0; 1048576.0 ]

(* --- exposition --- *)

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    string_of_int (int_of_float v)
  else
    (* Shortest decimal that round-trips: bucket bounds render as "0.005",
       not "0.0050000000000000001". *)
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
      ^ "}"

let sorted_entries t =
  Mutex.protect t.lock (fun () ->
      let items =
        Hashtbl.fold (fun (name, labels) e acc -> ((name, labels), e) :: acc) t.tbl []
      in
      List.sort (fun ((n1, l1), _) ((n2, l2), _) -> compare (n1, l1) (n2, l2)) items)

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun ((name, labels), e) ->
      if name <> !last_family then begin
        last_family := name;
        if e.e_help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name e.e_help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name (kind_name e.e_inst))
      end;
      match e.e_inst with
      | I_counter c | I_gauge c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (render_labels labels) (fmt_float !c))
      | I_hist h ->
          let cumulative = ref 0 in
          Array.iteri
            (fun i n ->
              cumulative := !cumulative + n;
              let le =
                if i = Array.length h.h_bounds then "+Inf"
                else fmt_float h.h_bounds.(i)
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (render_labels (labels @ [ ("le", le) ]))
                   !cumulative))
            h.h_counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
               (fmt_float h.h_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (render_labels labels) h.h_count))
    (sorted_entries t);
  Buffer.contents buf

let to_json t =
  J.List
    (List.map
       (fun ((name, labels), e) ->
         let base =
           [
             ("name", J.String name);
             ("type", J.String (kind_name e.e_inst));
             ("labels", J.Obj (List.map (fun (k, v) -> (k, J.String v)) labels));
           ]
         in
         match e.e_inst with
         | I_counter c | I_gauge c -> J.Obj (base @ [ ("value", J.Float !c) ])
         | I_hist h ->
             let cumulative = ref 0 in
             let buckets =
               Array.to_list
                 (Array.mapi
                    (fun i n ->
                      cumulative := !cumulative + n;
                      let le =
                        if i = Array.length h.h_bounds then "+Inf"
                        else fmt_float h.h_bounds.(i)
                      in
                      J.Obj [ ("le", J.String le); ("count", J.Int !cumulative) ])
                    h.h_counts)
             in
             J.Obj
               (base
               @ [
                   ("buckets", J.List buckets);
                   ("sum", J.Float h.h_sum);
                   ("count", J.Int h.h_count);
                 ]))
       (sorted_entries t))

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_prometheus t))

let save_json t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_json t));
      output_char oc '\n')

(* --- JSON round-trip --- *)

(* Rebuild a registry from its [to_json] form. Help strings are not part of
   the JSON exposition, so they come back empty — values, labels, and
   bucket layouts round-trip exactly, which is all the snapshot store and
   the bench summaries consume. *)
let of_json json =
  match json with
  | J.List items -> (
      let t = create () in
      try
        List.iter
          (fun item ->
            let name = J.to_str (J.member "name" item) in
            let labels =
              match J.member "labels" item with
              | J.Obj kvs -> List.map (fun (k, v) -> (k, J.to_str v)) kvs
              | _ -> failwith "labels must be an object"
            in
            let key = (name, canon_labels labels) in
            let inst =
              match J.to_str (J.member "type" item) with
              | "counter" -> I_counter (ref (J.to_float (J.member "value" item)))
              | "gauge" -> I_gauge (ref (J.to_float (J.member "value" item)))
              | "histogram" ->
                  let buckets =
                    match J.member "buckets" item with
                    | J.List bs -> bs
                    | _ -> failwith "buckets must be a list"
                  in
                  let bounds =
                    List.filter_map
                      (fun b ->
                        match J.to_str (J.member "le" b) with
                        | "+Inf" -> None
                        | le -> Some (float_of_string le))
                      buckets
                  in
                  let cumulative =
                    List.map (fun b -> J.to_int (J.member "count" b)) buckets
                  in
                  if List.length cumulative <> List.length bounds + 1 then
                    failwith "histogram needs exactly one +Inf bucket";
                  let counts = Array.of_list cumulative in
                  (* De-cumulate: exposition stores running totals. *)
                  for i = Array.length counts - 1 downto 1 do
                    counts.(i) <- counts.(i) - counts.(i - 1)
                  done;
                  if Array.exists (fun c -> c < 0) counts then
                    failwith "histogram buckets must be cumulative";
                  I_hist
                    {
                      h_bounds = Array.of_list bounds;
                      h_counts = counts;
                      h_sum = J.to_float (J.member "sum" item);
                      h_count = J.to_int (J.member "count" item);
                    }
              | k -> failwith ("unknown instrument type " ^ k)
            in
            if Hashtbl.mem t.tbl key then failwith ("duplicate series " ^ name);
            Hashtbl.replace t.tbl key { e_help = ""; e_inst = inst })
          items;
        Ok t
      with
      | Failure m -> Error m
      | J.Parse_error m -> Error m)
  | _ -> Error "metrics JSON must be a list of instruments"

(* Mirrors Plan_io's malformed-demotes contract: a missing, unreadable, or
   malformed file is not fatal — it demotes to an empty registry that
   carries a diagnostic counter so the loss is visible downstream. *)
let malformed_load_counter = "arb_metrics_malformed_loads_total"

let demoted reason =
  let t = create () in
  add t
    ~help:"Metrics files that failed to parse and were demoted to empty"
    ~labels:[ ("reason", reason) ]
    malformed_load_counter 1.0;
  t

let load_json path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> demoted "unreadable"
  | raw -> (
      match J.of_string raw with
      | exception J.Parse_error _ -> demoted "malformed"
      | json -> (
          match of_json json with Ok t -> t | Error _ -> demoted "malformed"))

(* --- quantiles --- *)

(* Prometheus-style bucket interpolation. The q-quantile's target rank is
   located in the cumulative bucket counts, then interpolated linearly
   inside the covering bucket. Ranks landing in the +Inf overflow bucket
   clamp to the highest finite bound (there is no upper edge to
   interpolate toward); an all-underflow histogram interpolates inside
   [0, first bound] like Prometheus does. *)
let quantile_of_hist h q =
  if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
    invalid_arg "Metrics.histogram_quantile: q must be in [0, 1]";
  if h.h_count = 0 then None
  else begin
    let rank = Float.max 1.0 (q *. float_of_int h.h_count) in
    let n = Array.length h.h_bounds in
    let rec locate i cum_below =
      if i >= n then `Overflow
      else
        let cum = cum_below + h.h_counts.(i) in
        if float_of_int cum >= rank then `Bucket (i, cum_below) else locate (i + 1) cum
    in
    match locate 0 0 with
    | `Overflow -> Some h.h_bounds.(n - 1)
    | `Bucket (i, cum_below) ->
        let lower =
          if i = 0 then if h.h_bounds.(0) > 0.0 then 0.0 else h.h_bounds.(0)
          else h.h_bounds.(i - 1)
        in
        let upper = h.h_bounds.(i) in
        let in_bucket = float_of_int h.h_counts.(i) in
        let frac = (rank -. float_of_int cum_below) /. in_bucket in
        Some (lower +. ((upper -. lower) *. frac))
  end

let histogram_quantile t ?(labels = []) name q =
  let key = (name, canon_labels labels) in
  match
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some { e_inst = I_hist h; _ } ->
            (* Copy under the lock so interpolation reads a consistent view. *)
            Some { h with h_counts = Array.copy h.h_counts }
        | _ -> None)
  with
  | None -> None
  | Some h -> quantile_of_hist h q

(* --- point reads (calibration fits walk snapshot registries) --- *)

let value_at t ?(labels = []) name =
  let key = (name, canon_labels labels) in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some { e_inst = I_counter c; _ } | Some { e_inst = I_gauge c; _ } ->
          Some !c
      | _ -> None)

let label_values t name ~label =
  let seen = Hashtbl.create 8 in
  Mutex.protect t.lock (fun () ->
      Hashtbl.iter
        (fun (n, labels) _ ->
          if n = name then
            match List.assoc_opt label labels with
            | Some v when not (Hashtbl.mem seen v) -> Hashtbl.replace seen v ()
            | _ -> ())
        t.tbl);
  List.sort String.compare (Hashtbl.fold (fun v () acc -> v :: acc) seen [])
