(* Explicit clocks for the observability layer.

   Three time sources, chosen by whoever creates the tracer:
   - [Monotonic]: real wall time, for the planner and the service, whose
     latencies are genuine.
   - [Simulated]: an injected clock the runtime advances by its *simulated*
     latencies (upload transmission, committee MPC wall-clock estimates), so
     an execution trace shows protocol time rather than simulator time.
   - [Deterministic]: no time source at all; the tracer substitutes a
     logical sequence number, making trace bytes a pure function of the
     recorded structure (the chaos suite's byte-identity properties). *)

type sim = { mutable sim_now : float }

type t = Monotonic | Simulated of sim | Deterministic

let sim ?(start = 0.0) () = { sim_now = start }
let advance s dt = s.sim_now <- s.sim_now +. dt
let read s = s.sim_now
