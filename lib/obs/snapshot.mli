(** Persistent metrics-snapshot store: the ground-truth side of the
    cost-model calibration loop (DESIGN.md §14).

    A snapshot is one registry's full JSON exposition, stamped with a run
    tag and a wall-clock time, appended as a single JSON line to
    [<dir>/snapshots.jsonl]. [arb run] appends one at exit, [arb serve]
    after every drain, so predicted-vs-measured residuals accumulate
    across processes; [arb calibrate --from <dir>] folds the whole file
    into a fitted {!Arb_planner.Calibration.t}.

    Appends are O_APPEND single-[write] operations — concurrent writers
    interleave whole lines, never bytes. Loading follows the same
    malformed-demotes contract as {!Metrics.load_json}: a corrupt line is
    skipped and counted, never fatal. *)

type t = {
  tag : string;  (** run tag the writer chose, e.g. ["serve"] *)
  seq : int;  (** writer-process sequence number *)
  at : float;  (** wall-clock append time (informational only) *)
  metrics : Arb_util.Json.t;  (** the registry's {!Metrics.to_json} form *)
}

val file : dir:string -> string
(** [<dir>/snapshots.jsonl]. *)

val append : dir:string -> tag:string -> Metrics.t -> unit
(** Append one snapshot of the registry, creating [dir] (and parents) as
    needed. Write failures are reported as [Sys_error]. *)

val load : dir:string -> t list * int
(** All parseable snapshots in file order, plus the number of malformed
    lines that were skipped. A missing store loads as [([], 0)]. *)

val registry : t -> Metrics.t
(** The snapshot's metrics as a live registry
    ({!Metrics.of_json}-demoting: a malformed payload yields an empty
    registry carrying the malformed-loads counter). *)
