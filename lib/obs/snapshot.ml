module J = Arb_util.Json

type t = { tag : string; seq : int; at : float; metrics : J.t }

let schema = "arb-metrics-snapshot/1"

let file ~dir = Filename.concat dir "snapshots.jsonl"

(* EEXIST-tolerant recursive mkdir: two writers sharing a store may race
   to create it, and losing that race is success. *)
let rec mkdir_p dir =
  if not (dir = "" || dir = "." || dir = "/" || Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error _
      when try Sys.is_directory dir with Sys_error _ -> false ->
        ()
  end

(* Per-process append sequence — distinguishes this process's snapshots
   when several writers share one store file. *)
let seq = Atomic.make 0

let append ~dir ~tag reg =
  mkdir_p dir;
  let line =
    J.to_string
      (J.Obj
         [
           ("schema", J.String schema);
           ("tag", J.String tag);
           ("seq", J.Int (Atomic.fetch_and_add seq 1));
           ("at", J.Float (Unix.gettimeofday ()));
           ("metrics", Metrics.to_json reg);
         ])
    ^ "\n"
  in
  let fd =
    Unix.openfile (file ~dir) [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      (* One write call per line: O_APPEND makes concurrent appenders
         interleave whole snapshots, not fragments. *)
      let b = Bytes.of_string line in
      ignore (Unix.write fd b 0 (Bytes.length b)))

let parse_line line =
  match J.of_string line with
  | exception J.Parse_error _ -> None
  | json -> (
      match
        ( J.to_str (J.member "schema" json),
          J.to_str (J.member "tag" json),
          J.to_int (J.member "seq" json),
          J.to_float (J.member "at" json),
          J.member "metrics" json )
      with
      | s, tag, seq, at, metrics when s = schema ->
          Some { tag; seq; at; metrics }
      | _ -> None
      | exception J.Parse_error _ -> None)

let load ~dir =
  let path = file ~dir in
  match open_in_bin path with
  | exception Sys_error _ -> ([], 0)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc bad =
            match input_line ic with
            | exception End_of_file -> (List.rev acc, bad)
            | "" -> go acc bad
            | line -> (
                match parse_line line with
                | Some s -> go (s :: acc) bad
                | None -> go acc (bad + 1))
          in
          go [] 0)

let registry s =
  match Metrics.of_json s.metrics with
  | Ok t -> t
  | Error _ ->
      let t = Metrics.create () in
      Metrics.add t
        ~help:"Metrics files that failed to parse and were demoted to empty"
        ~labels:[ ("reason", "malformed") ]
        "arb_metrics_malformed_loads_total" 1.0;
      t
