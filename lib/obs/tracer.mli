(** Span-based structured tracer emitting Chrome [trace_event] JSON
    (loadable in [chrome://tracing] or Perfetto).

    Spans nest; {!with_span} records a complete event on the way out even
    when the thunk raises, so failed runs still serialize well-nested.
    Timestamps come from the injected {!Clock.t}: real wall time, simulated
    protocol time, or — in deterministic mode — a logical sequence counter,
    which makes trace bytes a pure function of structure.

    A tracer is meant to be driven from one domain. Parallel stages create
    one {!child} per task and {!graft} the children back in canonical task
    order; the merged trace is then independent of worker scheduling. *)

type t

val create : ?clock:Clock.t -> ?pid:int -> ?tid:int -> unit -> t
val deterministic : t -> bool
val clock : t -> Clock.t

val tid : t -> int
(** The thread id this tracer stamps on its events. Nested parallel stages
    derive collision-free child tids from it (e.g. [tid*100 + i + 1]). *)

val advance : t -> float -> unit
(** Advance a [Simulated] clock by [dt] seconds; a no-op for the other
    clocks, so instrumented code can advance unconditionally. *)

val with_span :
  t ->
  ?cat:string ->
  ?args:(string * Arb_util.Json.t) list ->
  string ->
  (unit -> 'a) ->
  'a

val span_begin :
  t -> ?cat:string -> ?args:(string * Arb_util.Json.t) list -> string -> unit

val span_end : t -> unit
(** Close the innermost open span. Raises if none is open. *)

val add_args : t -> (string * Arb_util.Json.t) list -> unit
(** Append args to the innermost open span (e.g. results computed inside
    it). Ignored when no span is open. *)

val instant :
  t -> ?cat:string -> ?args:(string * Arb_util.Json.t) list -> string -> unit

val child : t -> tid:int -> t
(** A buffer sharing the parent's clock and epoch but writing its own event
    list under its own thread id. Hand one to each parallel task. *)

val graft : t -> t -> unit
(** Append a finished child's events to the parent. In deterministic mode
    the child's logical ticks are spliced at the graft point, so the merged
    sequence depends only on graft order. Raises if the child still has
    open spans. *)

val event_count : t -> int

val to_json : t -> Arb_util.Json.t
(** Chrome trace_event array, ordered by (start, longest-first). *)

val to_string : t -> string
val save : t -> string -> unit

val totals : t -> (string * int * float) list
(** Per-span-name (count, total seconds), hottest first — the profiling
    bench's top-k table. In deterministic mode "seconds" are logical
    ticks. *)
