module Stats = Arb_util.Stats

let check_params ~f ~g =
  if f < 0.0 || f >= 1.0 then invalid_arg "Committee: f out of [0,1)";
  if g < 0.0 || g >= 1.0 then invalid_arg "Committee: g out of [0,1)";
  if f >= (1.0 -. g) /. 2.0 then
    invalid_arg "Committee: f too large relative to churn tolerance g"

let log_failure_prob ~m ~f ~g ~committees =
  if m <= 0 || committees <= 0 then invalid_arg "Committee.log_failure_prob";
  (* Safe iff #malicious < (1-g)*m/2 (strict majority among survivors). *)
  let limit = (1.0 -. g) *. float_of_int m /. 2.0 in
  let k =
    let fl = Float.floor limit in
    if fl = limit then int_of_float fl - 1 else int_of_float fl
  in
  if k < 0 then 0.0 (* certain failure: committee too small to have any margin *)
  else
    (* Work with the (tiny) unsafe tail directly: computing 1 - cdf loses
       everything below double-precision cancellation (~1e-16), which made
       failure probabilities look flat beyond m ~ 50. *)
    let log_tail_one = Stats.log_binom_tail ~n:m ~k:(k + 1) ~p:f in
    if log_tail_one >= 0.0 then 0.0
    else
      let log_safe_one = Float.log1p (-.Float.exp log_tail_one) in
      let log_safe_all = float_of_int committees *. log_safe_one in
      if log_safe_all = 0.0 then
        (* Below the log1p resolution: union-bound the tails instead. *)
        min 0.0 (log_tail_one +. Float.log (float_of_int committees))
      else Stats.log1mexp log_safe_all

let is_safe ~m ~f ~g ~committees ~p1 =
  if p1 <= 0.0 || p1 >= 1.0 then invalid_arg "Committee.is_safe: p1 out of (0,1)";
  log_failure_prob ~m ~f ~g ~committees <= Float.log p1

let min_size_from ~start ~f ~g ~committees ~p1 =
  check_params ~f ~g;
  if p1 <= 0.0 || p1 >= 1.0 then invalid_arg "Committee.min_size: p1 out of (0,1)";
  (* Safety is only roughly monotone in m (the floor in the majority
     threshold causes parity dips), so find the smallest safe m by linear
     scan, exactly as the paper's "smallest number such that" demands.
     Committee sizes are tens of members; the scan is cheap. *)
  let safe m = is_safe ~m ~f ~g ~committees ~p1 in
  let rec scan m =
    if m > 100_000 then
      invalid_arg "Committee.min_size: no feasible size below 100000"
    else if safe m then m
    else scan (m + 1)
  in
  scan (max 1 start)

let min_size ~f ~g ~committees ~p1 = min_size_from ~start:1 ~f ~g ~committees ~p1

let p1_of_round ~p ~rounds =
  if p <= 0.0 || p >= 1.0 || rounds <= 0 then invalid_arg "Committee.p1_of_round";
  1.0 -. ((1.0 -. p) ** (1.0 /. float_of_int rounds))
