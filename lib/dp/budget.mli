(** Privacy-budget accounting (§5.2).

    The key-generation committee checks, before authorizing a query, that
    the remaining (epsilon, delta) balance covers the query's certified
    cost; the new balance travels inside the query authorization
    certificate. Composition is basic/sequential — the conservative rule
    the paper's lineage (Honeycrisp/Orchard) applies. *)

type t = { epsilon : float; delta : float }

val create : epsilon:float -> delta:float -> t
(** Raises [Invalid_argument] on negative components. *)

val zero : t

val charge : t -> cost:t -> t option
(** [charge balance ~cost] is the remaining balance, or [None] if the cost
    exceeds it (the query must be refused). *)

val can_afford : t -> cost:t -> bool
val spend_all : t -> t -> t
(** Sequential composition: add two costs. *)

val scale : t -> float -> t
(** k-fold sequential composition of the same cost. *)

val amplified_epsilon : epsilon:float -> phi:float -> float
(** Secrecy of the sample (§2.1): running an eps-DP query on a secret
    phi-sample is ln(1 + phi(e^eps - 1))-DP. *)

val sqrt_k_epsilon : epsilon:float -> k:int -> float
(** Durfee–Rogers pay-what-you-get top-k: noise once, release k, pay
    sqrt(k) * eps. *)

val equal : t -> t -> bool
(** Exact (epsilon, delta) equality — used by tests asserting a failed
    query left the remaining budget untouched. *)

val pp : Format.formatter -> t -> unit

val advanced_composition :
  epsilon:float -> delta:float -> k:int -> delta_slack:float -> t
(** Dwork–Rothblum–Vadhan advanced composition: the total cost of [k]
    (epsilon, delta)-DP mechanisms at the price of an extra [delta_slack]:
    eps' = eps * sqrt(2k ln(1/delta_slack)) + k eps (e^eps - 1). Tighter
    than sequential composition when eps is small and k large — an
    extension beyond the paper's basic accounting. *)
