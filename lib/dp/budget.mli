(** Privacy-budget accounting (§5.2).

    The key-generation committee checks, before authorizing a query, that
    the remaining (epsilon, delta) balance covers the query's certified
    cost; the new balance travels inside the query authorization
    certificate. Composition is basic/sequential — the conservative rule
    the paper's lineage (Honeycrisp/Orchard) applies. *)

type t = { epsilon : float; delta : float }

val create : epsilon:float -> delta:float -> t
(** Raises [Invalid_argument] on negative components. *)

val zero : t

val charge : t -> cost:t -> t option
(** [charge balance ~cost] is the remaining balance, or [None] if the cost
    exceeds it (the query must be refused). *)

val can_afford : t -> cost:t -> bool
val spend_all : t -> t -> t
(** Sequential composition: add two costs. *)

val scale : t -> float -> t
(** k-fold sequential composition of the same cost. *)

val amplified_epsilon : epsilon:float -> phi:float -> float
(** Secrecy of the sample (§2.1): running an eps-DP query on a secret
    phi-sample is ln(1 + phi(e^eps - 1))-DP. *)

val amplify : t -> phi:float -> t
(** Privacy amplification by subsampling: the effective cost of running a
    [(epsilon, delta)] mechanism over a uniform phi-sample of the
    population — [(amplified_epsilon, phi * delta)]. Strictly below the
    full cost for [phi < 1] and [epsilon > 0]. Raises [Invalid_argument]
    when [phi] is outside (0,1]. *)

val sqrt_k_epsilon : epsilon:float -> k:int -> float
(** Durfee–Rogers pay-what-you-get top-k: noise once, release k, pay
    sqrt(k) * eps. *)

val equal : t -> t -> bool
(** Exact (epsilon, delta) equality — used by tests asserting a failed
    query left the remaining budget untouched. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Arb_util.Json.t
val of_json : Arb_util.Json.t -> t
(** Raise [Json.Parse_error] / [Invalid_argument] on malformed input. *)

val advanced_composition :
  epsilon:float -> delta:float -> k:int -> delta_slack:float -> t
(** Dwork–Rothblum–Vadhan advanced composition: the total cost of [k]
    (epsilon, delta)-DP mechanisms at the price of an extra [delta_slack]:
    eps' = eps * sqrt(2k ln(1/delta_slack)) + k eps (e^eps - 1). Tighter
    than sequential composition when eps is small and k large — an
    extension beyond the paper's basic accounting. *)

(** Sliding-window accounting for continual (epoch-indexed) analytics:
    "ε = L per H epochs". Charges are recorded against the current epoch;
    advancing the window past [horizon] epochs expires old charges and
    refunds them exactly. Per-epoch totals are computed over a canonically
    sorted charge list, so charge/refund order within an epoch never
    changes the serialized state. Not thread-safe: callers (the continual
    engine) serialize access under their own lock. *)
module Window : sig
  type budget = t
  type t

  val create : horizon:int -> limit:budget -> t
  (** Raises [Invalid_argument] when [horizon < 1]. Starts at epoch 0 with
      no charges. *)

  val horizon : t -> int
  val limit : t -> budget
  val epoch : t -> int

  val advance : t -> int -> budget
  (** [advance t e] moves the window to epoch [e] (idempotent at the
      current epoch; raises [Invalid_argument] on a backwards move) and
      returns the exact total refunded by expiring epochs [<= e - horizon]. *)

  val can_afford : t -> cost:budget -> bool
  (** Prescreen against the live-window balance — the window analogue of
      [Service.try_submit]'s projected-budget check. *)

  val charge : t -> cost:budget -> budget option
  (** Record [cost] against the current epoch; [Some balance] on success,
      [None] (state untouched) when the live window cannot afford it. *)

  val refund : t -> cost:budget -> bool
  (** Remove one charge equal to [cost] from the current epoch (a query
      admitted then refused downstream). False if no such charge exists. *)

  val spent : t -> budget
  (** Canonical sum of all live charges (ascending epoch, each epoch's
      charges sorted by (epsilon, delta)). *)

  val balance : t -> budget
  val charges : t -> (int * budget) list
  (** Live per-epoch totals, ascending epoch. *)

  val next_expiry : t -> (int * budget) option
  (** The epoch at which the oldest live charges expire, and the exact
      amount that will be refunded then. *)

  val composed : ?delta_slack:float -> t -> budget
  (** Privacy loss over the live window: the tighter of sequential
      composition and Dwork–Rothblum–Vadhan advanced composition over the
      individual live charges (using their max epsilon/delta). [zero] for
      an empty window. *)

  val equal : t -> t -> bool
  val to_json : t -> Arb_util.Json.t
  val pp : Format.formatter -> t -> unit
end
