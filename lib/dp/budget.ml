type t = { epsilon : float; delta : float }

let create ~epsilon ~delta =
  if epsilon < 0.0 || delta < 0.0 then invalid_arg "Budget.create: negative";
  { epsilon; delta }

let zero = { epsilon = 0.0; delta = 0.0 }

let can_afford balance ~cost =
  cost.epsilon <= balance.epsilon && cost.delta <= balance.delta

let charge balance ~cost =
  if can_afford balance ~cost then
    Some { epsilon = balance.epsilon -. cost.epsilon; delta = balance.delta -. cost.delta }
  else None

let spend_all a b = { epsilon = a.epsilon +. b.epsilon; delta = a.delta +. b.delta }

let scale t k =
  if k < 0.0 then invalid_arg "Budget.scale: negative factor";
  { epsilon = t.epsilon *. k; delta = t.delta *. k }

let amplified_epsilon ~epsilon ~phi =
  if phi <= 0.0 || phi > 1.0 then
    invalid_arg "Budget.amplified_epsilon: phi out of (0,1]";
  (* ln(1 + phi(e^eps - 1)); for large eps compute the asymptote
     eps + ln(phi) directly so e^eps never overflows. *)
  if epsilon > 30.0 then Float.max 0.0 (epsilon +. Float.log phi)
  else Float.log1p (phi *. (exp epsilon -. 1.0))

let sqrt_k_epsilon ~epsilon ~k =
  if k <= 0 then invalid_arg "Budget.sqrt_k_epsilon";
  sqrt (float_of_int k) *. epsilon

let equal a b = a.epsilon = b.epsilon && a.delta = b.delta

let pp fmt t = Format.fprintf fmt "(eps=%.4f, delta=%.2e)" t.epsilon t.delta

let advanced_composition ~epsilon ~delta ~k ~delta_slack =
  if k <= 0 then invalid_arg "Budget.advanced_composition: k <= 0";
  if delta_slack <= 0.0 || delta_slack >= 1.0 then
    invalid_arg "Budget.advanced_composition: delta_slack out of (0,1)";
  let kf = float_of_int k in
  let eps' =
    (epsilon *. sqrt (2.0 *. kf *. Float.log (1.0 /. delta_slack)))
    +. (kf *. epsilon *. (Float.exp epsilon -. 1.0))
  in
  { epsilon = eps'; delta = (kf *. delta) +. delta_slack }
