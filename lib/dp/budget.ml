type t = { epsilon : float; delta : float }

let create ~epsilon ~delta =
  if epsilon < 0.0 || delta < 0.0 then invalid_arg "Budget.create: negative";
  { epsilon; delta }

let zero = { epsilon = 0.0; delta = 0.0 }

let can_afford balance ~cost =
  cost.epsilon <= balance.epsilon && cost.delta <= balance.delta

let charge balance ~cost =
  if can_afford balance ~cost then
    Some { epsilon = balance.epsilon -. cost.epsilon; delta = balance.delta -. cost.delta }
  else None

let spend_all a b = { epsilon = a.epsilon +. b.epsilon; delta = a.delta +. b.delta }

let scale t k =
  if k < 0.0 then invalid_arg "Budget.scale: negative factor";
  { epsilon = t.epsilon *. k; delta = t.delta *. k }

let amplified_epsilon ~epsilon ~phi =
  if phi <= 0.0 || phi > 1.0 then
    invalid_arg "Budget.amplified_epsilon: phi out of (0,1]";
  (* ln(1 + phi(e^eps - 1)); for large eps compute the asymptote
     eps + ln(phi) directly so e^eps never overflows. *)
  if epsilon > 30.0 then Float.max 0.0 (epsilon +. Float.log phi)
  else Float.log1p (phi *. (exp epsilon -. 1.0))

let amplify t ~phi =
  (* Privacy amplification by subsampling: when only a phi-fraction of
     devices contribute, the mechanism's effective charge shrinks to
     (ln(1 + phi(e^eps - 1)), phi * delta) — strictly below (eps, delta)
     for phi < 1 and eps > 0. *)
  { epsilon = amplified_epsilon ~epsilon:t.epsilon ~phi; delta = t.delta *. phi }

let sqrt_k_epsilon ~epsilon ~k =
  if k <= 0 then invalid_arg "Budget.sqrt_k_epsilon";
  sqrt (float_of_int k) *. epsilon

let equal a b = a.epsilon = b.epsilon && a.delta = b.delta

let pp fmt t = Format.fprintf fmt "(eps=%.4f, delta=%.2e)" t.epsilon t.delta

let to_json t =
  Arb_util.Json.Obj
    [ ("epsilon", Arb_util.Json.Float t.epsilon);
      ("delta", Arb_util.Json.Float t.delta) ]

let of_json j =
  let open Arb_util.Json in
  create ~epsilon:(to_float (member "epsilon" j))
    ~delta:(to_float (member "delta" j))

let advanced_composition ~epsilon ~delta ~k ~delta_slack =
  if k <= 0 then invalid_arg "Budget.advanced_composition: k <= 0";
  if delta_slack <= 0.0 || delta_slack >= 1.0 then
    invalid_arg "Budget.advanced_composition: delta_slack out of (0,1)";
  let kf = float_of_int k in
  let eps' =
    (epsilon *. sqrt (2.0 *. kf *. Float.log (1.0 /. delta_slack)))
    +. (kf *. epsilon *. (Float.exp epsilon -. 1.0))
  in
  { epsilon = eps'; delta = (kf *. delta) +. delta_slack }

(* --- sliding-window accounting (continual analytics) --- *)

module Window = struct
  module J = Arb_util.Json

  type budget = t

  type w = {
    horizon : int;
    limit : budget;
    mutable current : int;
    (* epoch -> individual charges recorded at that epoch, newest first.
       Totals are always computed over the canonically sorted list, so any
       insertion/removal order within an epoch sums to the same bytes. *)
    charges : (int, budget list) Hashtbl.t;
  }

  type t = w

  let create ~horizon ~limit =
    if horizon < 1 then invalid_arg "Budget.Window.create: horizon < 1";
    { horizon; limit; current = 0; charges = Hashtbl.create 16 }

  let horizon t = t.horizon
  let limit t = t.limit
  let epoch t = t.current

  let canon cs =
    List.sort (fun a b -> compare (a.epsilon, a.delta) (b.epsilon, b.delta)) cs

  let sum cs = List.fold_left spend_all zero (canon cs)

  let epoch_total t e =
    match Hashtbl.find_opt t.charges e with None -> zero | Some cs -> sum cs

  (* Epoch [e] is live at [current] iff current - horizon < e <= current. *)
  let live_epochs t =
    let lo = t.current - t.horizon + 1 in
    Hashtbl.fold (fun e _ acc -> if e >= lo then e :: acc else acc) t.charges []
    |> List.sort compare

  let charges t = List.map (fun e -> (e, epoch_total t e)) (live_epochs t)

  let spent t =
    List.fold_left (fun acc (_, b) -> spend_all acc b) zero (charges t)

  let balance t =
    let s = spent t in
    {
      epsilon = t.limit.epsilon -. s.epsilon;
      delta = t.limit.delta -. s.delta;
    }

  let window_can_afford t ~cost = can_afford (balance t) ~cost

  let charge t ~cost =
    if cost.epsilon < 0.0 || cost.delta < 0.0 then
      invalid_arg "Budget.Window.charge: negative cost";
    if window_can_afford t ~cost then begin
      let existing =
        Option.value (Hashtbl.find_opt t.charges t.current) ~default:[]
      in
      Hashtbl.replace t.charges t.current (cost :: existing);
      Some (balance t)
    end
    else None

  let refund t ~cost =
    match Hashtbl.find_opt t.charges t.current with
    | None -> false
    | Some cs ->
        let rec remove = function
          | [] -> None
          | c :: rest when equal c cost -> Some rest
          | c :: rest -> Option.map (fun r -> c :: r) (remove rest)
        in
        (match remove cs with
        | None -> false
        | Some [] ->
            Hashtbl.remove t.charges t.current;
            true
        | Some rest ->
            Hashtbl.replace t.charges t.current rest;
            true)

  let advance t e =
    if e < t.current then invalid_arg "Budget.Window.advance: epoch moved backwards";
    t.current <- e;
    let expired =
      Hashtbl.fold
        (fun e' _ acc -> if e' <= e - t.horizon then e' :: acc else acc)
        t.charges []
      |> List.sort compare
    in
    List.fold_left
      (fun acc e' ->
        let total = epoch_total t e' in
        Hashtbl.remove t.charges e';
        spend_all acc total)
      zero expired

  let next_expiry t =
    match live_epochs t with
    | [] -> None
    | oldest :: _ -> Some (oldest + t.horizon, epoch_total t oldest)

  let live_charges t =
    let lo = t.current - t.horizon + 1 in
    Hashtbl.fold
      (fun e cs acc -> if e >= lo then List.rev_append cs acc else acc)
      t.charges []
    |> canon

  let composed ?(delta_slack = 1e-9) t =
    let cs = live_charges t in
    let k = List.length cs in
    if k = 0 then zero
    else
      let sequential = List.fold_left spend_all zero cs in
      let eps_max = List.fold_left (fun m c -> Float.max m c.epsilon) 0.0 cs in
      let delta_max = List.fold_left (fun m c -> Float.max m c.delta) 0.0 cs in
      let adv =
        advanced_composition ~epsilon:eps_max ~delta:delta_max ~k ~delta_slack
      in
      if adv.epsilon < sequential.epsilon then adv else sequential

  let equal_window a b =
    a.horizon = b.horizon && equal a.limit b.limit && a.current = b.current
    && charges a = charges b

  let to_json t =
    let epochs =
      List.map
        (fun (e, cost) ->
          J.Obj [ ("epoch", J.Int e); ("cost", to_json cost) ])
        (charges t)
    in
    let next =
      match next_expiry t with
      | None -> J.Null
      | Some (e, cost) ->
          J.Obj [ ("epoch", J.Int e); ("refund", to_json cost) ]
    in
    J.Obj
      [
        ("horizon", J.Int t.horizon);
        ("epoch", J.Int t.current);
        ("limit", to_json t.limit);
        ("spent", to_json (spent t));
        ("balance", to_json (balance t));
        ("epochs", J.List epochs);
        ("nextRefund", next);
      ]

  let pp fmt t =
    Format.fprintf fmt "window(epoch=%d, horizon=%d, spent=%a of %a)" t.current
      t.horizon pp (spent t) pp t.limit

  (* Shadow the outer names under the conventional ones now that the
     implementation above no longer needs the scalar versions. *)
  let can_afford = window_can_afford
  let equal = equal_window
end
