(** Minimum committee size under the OB+MC threat model (§5.1).

    A committee of m sortitioned devices must keep an honest majority even
    if a g-fraction of members (worst case: all honest) goes offline while
    every malicious member stays. With each member independently malicious
    with probability f, the committee is safe when
    Bin(m, f) < (1-g)·m / 2. The system needs ALL c committees safe with
    probability at least 1 - p1 per query round. Because c varies between
    candidate query plans, the planner re-solves for m before scoring each
    plan (§5.1). All tail computations are in the log domain: with the
    paper's parameters p1 is around 1e-11. *)

val log_failure_prob : m:int -> f:float -> g:float -> committees:int -> float
(** ln P\[some committee loses its honest majority\]. *)

val is_safe : m:int -> f:float -> g:float -> committees:int -> p1:float -> bool

val min_size : f:float -> g:float -> committees:int -> p1:float -> int
(** Smallest safe m. Raises [Invalid_argument] if [f >= (1-g)/2] (no size
    can ever be safe asymptotically... conservatively rejected) or on other
    nonsensical parameters. *)

val min_size_from :
  start:int -> f:float -> g:float -> committees:int -> p1:float -> int
(** [min_size], scanning upward from [start] instead of 1. Sound (returns
    the global minimum) only when every m < [start] is known unsafe — e.g.
    [start = min_size ... ~committees:1] when sizing more committees, since
    safety at fixed m is antitone in the committee count. The planner's
    size cache uses this to skip the common unsafe prefix of the scan. *)

val p1_of_round : p:float -> rounds:int -> float
(** Per-round failure bound p1 such that surviving [rounds] rounds keeps the
    overall failure probability at most [p]: p = 1 - (1 - p1)^rounds. *)
