module Fx = Arb_util.Fixed
module Fm = Fixpoint_mpc

let sum eng values =
  if Array.length values = 0 then invalid_arg "Protocols.sum: empty";
  let acc = ref values.(0) in
  for i = 1 to Array.length values - 1 do
    acc := Engine.add eng !acc values.(i)
  done;
  !acc

let argmax eng scores =
  if Array.length scores = 0 then invalid_arg "Protocols.argmax: empty";
  let best = ref scores.(0) and best_idx = ref (Engine.const eng 0) in
  for i = 1 to Array.length scores - 1 do
    let c = Fm.less_than eng !best scores.(i) in
    best := Engine.select eng c scores.(i) !best;
    best_idx := Engine.select eng c (Engine.const eng i) !best_idx
  done;
  !best_idx

let max eng scores =
  if Array.length scores = 0 then invalid_arg "Protocols.max: empty";
  Array.fold_left (fun acc s -> Fm.max2 eng acc s) scores.(0) scores

let noised_scores eng ~noise scores =
  Array.map (fun s -> Fm.add eng s (noise eng)) scores

let em_gumbel eng ~epsilon ~sensitivity scores =
  let scale = Fx.of_float (2.0 *. sensitivity /. epsilon) in
  let noised = noised_scores eng ~noise:(fun e -> Fm.gumbel e ~scale) scores in
  Engine.open_value eng (argmax eng noised)

let em_exponentiate eng ~epsilon ~sensitivity scores =
  (* Fig. 4 (left): window the scores to 16 bits below the max so the
     exponentials stay representable, zero anything below the window, draw
     r uniformly in [0, sum es), scan the prefix intervals. *)
  let window = Fx.of_int 16 in
  let m = max eng scores in
  let threshold = Fm.sub eng m (Fm.const eng window) in
  let k = Fx.of_float (epsilon /. (2.0 *. sensitivity)) in
  let es =
    Array.map
      (fun s ->
        let above = Fm.less_than eng threshold s in
        let shifted = Fm.sub eng s threshold in
        let e = Fm.exp2 eng (Fm.mul_public eng k shifted) in
        Engine.mul eng above e)
      scores
  in
  let total = sum eng es in
  (* r uniform in [0, total): joint uniform u in [0,1) scaled by total. *)
  let u = Fm.uniform01 eng in
  let r = Fm.mul eng u total in
  let prefix = ref (Engine.const eng 0) in
  let chosen = ref (Engine.const eng 0) in
  let found = ref (Engine.const eng 0) in
  Array.iteri
    (fun i e ->
      let next = Engine.add eng !prefix e in
      (* in_bucket = (r < next) && not found *)
      let lt = Fm.less_than eng r next in
      let not_found = Engine.sub eng (Engine.const eng 1) !found in
      let take = Engine.mul eng lt not_found in
      chosen := Engine.add eng !chosen (Engine.scale eng i take);
      found := Engine.add eng !found take;
      prefix := next)
    es;
  Engine.open_value eng !chosen

let prefix_sums eng values =
  let acc = ref (Engine.const eng 0) in
  Array.map
    (fun v ->
      acc := Engine.add eng !acc v;
      !acc)
    values

let rank_select eng histogram ~rank =
  let prefixes = prefix_sums eng histogram in
  let r = Engine.const eng rank in
  let chosen = ref (Engine.const eng 0) in
  let found = ref (Engine.const eng 0) in
  Array.iteri
    (fun i p ->
      (* exceeded = rank < prefix *)
      let gt = Engine.less_than eng r p in
      let not_found = Engine.sub eng (Engine.const eng 1) !found in
      let take = Engine.mul eng gt not_found in
      chosen := Engine.add eng !chosen (Engine.scale eng i take);
      found := Engine.add eng !found take)
    prefixes;
  !chosen

(* --- BGV ceremony cost charging --- *)

(* One logical ring operation on an RNS element costs n log n butterfly
   field-ops per prime. With Bgv's evaluation-form representation the
   butterflies concentrate at the domain boundaries (forward/inverse
   transforms) while the homomorphic middle is pointwise (O(n) per prime,
   folded into the same n log n envelope the planner's cost model always
   charged) — so the charge per logical ring op is unchanged, and traces
   stay byte-identical across the kernel swap. *)
let charge_ring_ops eng ~n ~rns_primes ~ring_ops =
  let c = Engine.cost eng in
  let log_n = Stdlib.max 1 (int_of_float (Float.log2 (float_of_int n))) in
  c.Cost.field_ops <- c.Cost.field_ops + (ring_ops * rns_primes * n * log_n)

let charge_bgv_keygen eng ~n ~rns_primes =
  (* Joint sampling of s and e (n coefficients each, shared-bit sampling),
     one public poly multiplication, then VSR hand-off of the secret key.
     In evaluation form: forward transforms of s and e plus the pointwise
     a (.) s — three ring ops. *)
  let c = Engine.cost eng in
  let parties = Engine.parties eng in
  c.Cost.rounds <- c.Cost.rounds + 12;
  c.Cost.triples <- c.Cost.triples + (2 * n);
  c.Cost.bytes_per_party <-
    c.Cost.bytes_per_party + (rns_primes * n * 4 * (parties - 1) * 2);
  charge_ring_ops eng ~n ~rns_primes ~ring_ops:3

let charge_bgv_decrypt eng ~n ~rns_primes ~ciphertexts =
  (* Per ciphertext: each member computes the pointwise c1 (.) s_i plus the
     inverse transform of its partial (two ring ops), and broadcasts n
     coefficients. *)
  let c = Engine.cost eng in
  let parties = Engine.parties eng in
  c.Cost.rounds <- c.Cost.rounds + (2 * ciphertexts);
  c.Cost.bytes_per_party <-
    c.Cost.bytes_per_party + (ciphertexts * rns_primes * n * 4 * (parties - 1));
  charge_ring_ops eng ~n ~rns_primes ~ring_ops:(2 * ciphertexts)

let charge_vsr_retry eng =
  (* A corrupted subshare failed verification: the honest sender re-sends
     its subshare (one value + commitment salt) to every receiver in one
     extra round. *)
  let c = Engine.cost eng in
  let parties = Engine.parties eng in
  c.Cost.rounds <- c.Cost.rounds + 1;
  c.Cost.bytes_per_party <- c.Cost.bytes_per_party + ((parties - 1) * 40)

let charge_zk_setup eng ~constraints =
  (* Groth16 trusted setup inside the first committee (as in Mycelium):
     linear in the constraint count. *)
  let c = Engine.cost eng in
  let parties = Engine.parties eng in
  c.Cost.rounds <- c.Cost.rounds + 4;
  c.Cost.bytes_per_party <- c.Cost.bytes_per_party + (constraints * 64 / Stdlib.max 1 (parties - 1) * (parties - 1));
  c.Cost.field_ops <- c.Cost.field_ops + (constraints * 8)

let em_gumbel_gap eng ~epsilon ~sensitivity scores =
  (* Free-gap variant (Ding et al.): release the winner and its noisy gap
     to the runner-up from a single noise draw. *)
  let scale = Fx.of_float (2.0 *. sensitivity /. epsilon) in
  let noised = noised_scores eng ~noise:(fun e -> Fm.gumbel e ~scale) scores in
  let w = Engine.open_value eng (argmax eng noised) in
  let runners = Array.to_list noised |> List.filteri (fun i _ -> i <> w) in
  let second = max eng (Array.of_list runners) in
  let gap = Fm.open_fixed eng (Fm.sub eng noised.(w) second) in
  (w, gap)
