exception Cheating_detected of string

module F = Arb_crypto.Field

(* RNS modulus machinery shared with the BGV layer's conventions. *)
module Rns = struct
  type t = {
    fs : F.t array;
    q_total : int;
    crt_inv : int; (* q1^{-1} mod q2 when two primes *)
  }

  let make primes =
    let fs = Array.of_list (List.map F.create primes) in
    if Array.length fs < 1 || Array.length fs > 2 then
      invalid_arg "Engine: 1 or 2 RNS primes supported";
    let q_total = Array.fold_left (fun a f -> a * f.F.p) 1 fs in
    let crt_inv =
      if Array.length fs = 2 then F.inv fs.(1) (fs.(0).F.p mod fs.(1).F.p) else 0
    in
    { fs; q_total; crt_inv }

  let lift_centered t residues =
    let x =
      match Array.length t.fs with
      | 1 -> residues.(0)
      | 2 ->
          let q1 = t.fs.(0).F.p in
          let f2 = t.fs.(1) in
          let d = F.sub f2 residues.(1) (residues.(0) mod f2.F.p) in
          residues.(0) + (q1 * F.mul f2 d t.crt_inv)
      | _ -> assert false
    in
    if x > t.q_total / 2 then x - t.q_total else x

  (* Residues of a signed integer. *)
  let reduce t v = Array.map (fun f -> F.of_int f v) t.fs

  (* Product mod q of two centered values, without overflowing native
     ints: compute per-prime and CRT-lift. *)
  let mul_centered t a b =
    let residues =
      Array.map (fun f -> F.mul f (F.of_int f a) (F.of_int f b)) t.fs
    in
    lift_centered t residues

  (* A uniform element of [0, q) as a centered value. *)
  let random_centered t rng =
    lift_centered t (Array.map (fun f -> F.random f rng) t.fs)
end

type sec = {
  shares : int array array; (* shares.(prime).(party), Shamir at x = party+1 *)
  mirror : int; (* centered cleartext mirror (testing / protocol-level ops) *)
}

type t = {
  rns : Rns.t;
  parties : int;
  threshold : int;
  rng : Arb_util.Rng.t;
  cost : Cost.t;
  felt_bytes : int; (* wire bytes per field element across the RNS basis *)
  mutable cheaters : int list; (* parties identified by robust decoding *)
  mutable saboteur : (unit -> int list) option;
      (* fault harness: called before each opening's broadcast; returned
         parties corrupt their shares for that opening *)
}

let default_primes = [ 998244353; 754974721 ]

let create ?(q_primes = default_primes) ~parties rng () =
  if parties < 2 then invalid_arg "Engine.create: need at least 2 parties";
  let rns = Rns.make q_primes in
  {
    rns;
    parties;
    threshold = (parties - 1) / 2;
    rng;
    cost = Cost.zero ();
    felt_bytes = 4 * Array.length rns.Rns.fs;
    cheaters = [];
    saboteur = None;
  }

let parties t = t.parties
let threshold t = t.threshold
let modulus t = t.rns.Rns.q_total
let cost t = t.cost

(* --- share bookkeeping --- *)

let share_value t v =
  Array.map
    (fun f ->
      let shs =
        Arb_crypto.Shamir.share f t.rng ~secret:(F.of_int f v)
          ~threshold:t.threshold ~parties:t.parties
      in
      Array.map (fun (s : Arb_crypto.Shamir.share) -> s.value) shs)
    t.rns.Rns.fs

let charge_round t n = t.cost.Cost.rounds <- t.cost.Cost.rounds + n
let charge_bytes t n = t.cost.Cost.bytes_per_party <- t.cost.Cost.bytes_per_party + n
let charge_fops t n = t.cost.Cost.field_ops <- t.cost.Cost.field_ops + n

let input t ~party v =
  if party < 0 || party >= t.parties then invalid_arg "Engine.input: bad party";
  t.cost.Cost.inputs <- t.cost.Cost.inputs + 1;
  charge_round t 1;
  (* Dealer sends one share to each other party. *)
  charge_bytes t ((t.parties - 1) * t.felt_bytes);
  { shares = share_value t v; mirror = v }

let const t v =
  (* Constant polynomial: every party holds v; no communication. *)
  {
    shares = Array.map (fun f -> Array.make t.parties (F.of_int f v)) t.rns.Rns.fs;
    mirror = v;
  }

let map2_shares t f a b =
  Array.init
    (Array.length t.rns.Rns.fs)
    (fun j ->
      let fld = t.rns.Rns.fs.(j) in
      Array.init t.parties (fun p -> f fld a.(j).(p) b.(j).(p)))

let add t a b =
  charge_fops t t.parties;
  {
    shares = map2_shares t F.add a.shares b.shares;
    mirror = Rns.lift_centered t.rns (Rns.reduce t.rns (a.mirror + b.mirror));
  }

let sub t a b =
  charge_fops t t.parties;
  {
    shares = map2_shares t F.sub a.shares b.shares;
    mirror = Rns.lift_centered t.rns (Rns.reduce t.rns (a.mirror - b.mirror));
  }

let neg t a =
  charge_fops t t.parties;
  {
    shares = Array.mapi (fun j row -> Array.map (F.neg t.rns.Rns.fs.(j)) row) a.shares;
    mirror = -a.mirror;
  }

let scale t k a =
  charge_fops t t.parties;
  {
    shares =
      Array.mapi
        (fun j row ->
          let fld = t.rns.Rns.fs.(j) in
          let kf = F.of_int fld k in
          Array.map (fun s -> F.mul fld kf s) row)
        a.shares;
    mirror = Rns.mul_centered t.rns k a.mirror;
  }

let add_const t a k = add t a (const t k)

(* --- opening with consistency check --- *)

(* Lagrange-evaluate the degree-<=threshold polynomial through points
   (xs, ys) at x. *)
let lagrange_eval fld xs ys x =
  let n = Array.length xs in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let num = ref 1 and den = ref 1 in
    for j = 0 to n - 1 do
      if j <> i then begin
        num := F.mul fld !num (F.of_int fld (x - xs.(j)));
        den := F.mul fld !den (F.of_int fld (xs.(i) - xs.(j)))
      end
    done;
    acc := F.add fld !acc (F.mul fld ys.(i) (F.div fld !num !den))
  done;
  !acc

let open_residues t shares_row fld =
  let m = t.parties and th = t.threshold in
  let xs = Array.init (th + 1) (fun i -> i + 1) in
  let ys = Array.init (th + 1) (fun i -> shares_row.(i)) in
  (* Fast path: every redundant share lies on the degree-th polynomial
     defined by the first th+1 — no decoding work when everyone is honest. *)
  let consistent = ref true in
  for p = th + 1 to m - 1 do
    if !consistent && lagrange_eval fld xs ys (p + 1) <> shares_row.(p) then
      consistent := false
  done;
  if !consistent then lagrange_eval fld xs ys 0
  else begin
    (* Someone lied: run Reed-Solomon decoding (Berlekamp-Welch). The
       honest-majority setting corrects up to floor((m - th - 1)/2)
       corrupted shares and identifies the cheaters; beyond that the
       protocol must abort. *)
    let shares =
      Array.to_list
        (Array.mapi
           (fun i v -> { Arb_crypto.Shamir.idx = i + 1; value = v })
           shares_row)
    in
    match Arb_crypto.Shamir.reconstruct_robust fld ~threshold:th shares with
    | Ok (secret, cheaters) ->
        List.iter
          (fun idx ->
            let party = idx - 1 in
            if not (List.mem party t.cheaters) then
              t.cheaters <- party :: t.cheaters)
          cheaters;
        secret
    | Error _ ->
        raise (Cheating_detected "corruption beyond the decoding radius")
  end

let open_value t a =
  t.cost.Cost.opens <- t.cost.Cost.opens + 1;
  charge_round t 1;
  (* Every party broadcasts its share. *)
  charge_bytes t ((t.parties - 1) * t.felt_bytes);
  charge_fops t (t.parties * t.parties);
  (match t.saboteur with
  | None -> ()
  | Some pick ->
      List.iter
        (fun party ->
          if party >= 0 && party < t.parties then
            Array.iteri
              (fun j row -> row.(party) <- F.add t.rns.Rns.fs.(j) row.(party) 1)
              a.shares)
        (pick ()));
  let residues =
    Array.mapi (fun j row -> open_residues t row t.rns.Rns.fs.(j)) a.shares
  in
  let v = Rns.lift_centered t.rns residues in
  (* Engine invariant: after correction the opened value must match the
     cleartext mirror. *)
  if v <> a.mirror then raise (Cheating_detected "opened value diverged from mirror");
  v

let corrupt_share t a ~party =
  if party < 0 || party >= t.parties then invalid_arg "Engine.corrupt_share";
  Array.iteri
    (fun j row ->
      let fld = t.rns.Rns.fs.(j) in
      row.(party) <- F.add fld row.(party) 1)
    a.shares

let mirror _t a = a.mirror

let detected_cheaters t = List.sort compare t.cheaters
let set_saboteur t f = t.saboteur <- f

(* --- Beaver multiplication --- *)

let fresh_triple t =
  t.cost.Cost.triples <- t.cost.Cost.triples + 1;
  (* Preprocessing cost is charged via the triples counter; the planner's
     cost model prices triple generation separately (first-comparison
     effect, §6). *)
  let x = Rns.random_centered t.rns t.rng in
  let y = Rns.random_centered t.rns t.rng in
  let z = Rns.mul_centered t.rns x y in
  ( { shares = share_value t x; mirror = x },
    { shares = share_value t y; mirror = y },
    { shares = share_value t z; mirror = z } )

let mul t a b =
  t.cost.Cost.mults <- t.cost.Cost.mults + 1;
  let x, y, z = fresh_triple t in
  (* d = a - x and e = b - y are opened in the same round. *)
  let d_sec = sub t a x and e_sec = sub t b y in
  charge_round t 1;
  charge_bytes t (2 * (t.parties - 1) * t.felt_bytes);
  charge_fops t (2 * t.parties * t.parties);
  let d =
    Rns.lift_centered t.rns
      (Array.mapi (fun j row -> open_residues t row t.rns.Rns.fs.(j)) d_sec.shares)
  in
  let e =
    Rns.lift_centered t.rns
      (Array.mapi (fun j row -> open_residues t row t.rns.Rns.fs.(j)) e_sec.shares)
  in
  (* c = z + d*y + e*x + d*e *)
  let de = const t (Rns.mul_centered t.rns d e) in
  let c = add t (add t z (scale t d y)) (add t (scale t e x) de) in
  { c with mirror = Rns.mul_centered t.rns a.mirror b.mirror }

(* --- protocol-level operations: correct result, charged costs --- *)

let value_bits = 47 (* 30.16 fixpoint width + sign *)

let reshare t v =
  { shares = share_value t v; mirror = v }

let trunc t a ~bits =
  t.cost.Cost.truncations <- t.cost.Cost.truncations + 1;
  (* Probabilistic truncation: 1 round, one opened masked value. *)
  charge_round t 1;
  charge_bytes t ((t.parties - 1) * t.felt_bytes * 2);
  t.cost.Cost.triples <- t.cost.Cost.triples + 1;
  let v = a.mirror in
  let r = if v >= 0 then v asr bits else -((-v) asr bits) in
  reshare t r

let less_than t a b =
  t.cost.Cost.comparisons <- t.cost.Cost.comparisons + 1;
  (* Bit-decomposition comparison: ~2k triples, O(log k) rounds. *)
  t.cost.Cost.triples <- t.cost.Cost.triples + (2 * value_bits);
  charge_round t 7;
  charge_bytes t (2 * value_bits * (t.parties - 1) * t.felt_bytes);
  reshare t (if a.mirror < b.mirror then 1 else 0)

let select t c a b =
  (* b + c*(a - b) *)
  add t b (mul t c (sub t a b))

let joint_uniform_bits t ~bits =
  if bits <= 0 || bits > 60 then invalid_arg "Engine.joint_uniform_bits";
  (* Every party contributes entropy; combining costs one round plus [bits]
     shared-bit multiplications' worth of triples. *)
  charge_round t 2;
  t.cost.Cost.triples <- t.cost.Cost.triples + bits;
  charge_bytes t (bits * (t.parties - 1) * t.felt_bytes);
  let v = Int64.to_int (Int64.shift_right_logical (Arb_util.Rng.next_int64 t.rng) (64 - bits)) in
  reshare t v

let gadget t ~rounds ~triples ~bytes v =
  charge_round t rounds;
  t.cost.Cost.triples <- t.cost.Cost.triples + triples;
  charge_bytes t bytes;
  reshare t v

let reshare_in t v =
  (* Receiving VSR sub-shares from the previous committee: each member
     gets one sub-share from every previous member plus commitments. *)
  charge_round t 1;
  charge_bytes t (t.parties * (t.felt_bytes + 32));
  reshare t v

let reshare_out t a =
  charge_round t 1;
  charge_bytes t (t.parties * (t.felt_bytes + 32));
  a.mirror
