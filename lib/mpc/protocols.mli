(** Committee-level MPC protocols used by Arboretum's vignettes.

    Each function runs on one {!Engine.t} (one committee) and both computes
    the correct result and accrues the protocol's cost into the engine's
    counters — the raw material for the planner's cost model and for the
    committee-cost figures (Fig. 7). *)

val sum : Engine.t -> Engine.sec array -> Engine.sec
(** Linear — free of communication. *)

val argmax : Engine.t -> Fixpoint_mpc.t array -> Engine.sec
(** Index of the maximum (shared int), by pairwise comparison sweep — the
    em-Gumbel instantiation's final loop (Fig. 4 right). First comparison
    costs more than the rest only through triple counts, matching §6. *)

val max : Engine.t -> Fixpoint_mpc.t array -> Fixpoint_mpc.t

val noised_scores :
  Engine.t -> noise:(Engine.t -> Fixpoint_mpc.t) -> Fixpoint_mpc.t array ->
  Fixpoint_mpc.t array
(** Add independently sampled in-MPC noise to each score. *)

val em_gumbel : Engine.t -> epsilon:float -> sensitivity:float ->
  Fixpoint_mpc.t array -> int
(** Exponential mechanism, Gumbel instantiation: noise each quality score
    with Gumbel(2*sens/eps), take the argmax, declassify (open) it. *)

val em_exponentiate : Engine.t -> epsilon:float -> sensitivity:float ->
  Fixpoint_mpc.t array -> int
(** Exponential mechanism, exponentiation instantiation (Fig. 4 left):
    normalize scores into a 16-bit window below the max, exponentiate in
    base 2, draw r in \[0, sum), return the index whose prefix interval
    contains r. *)

val prefix_sums : Engine.t -> Engine.sec array -> Engine.sec array
(** Inclusive prefix sums (linear, local). *)

val rank_select :
  Engine.t -> Engine.sec array -> rank:int -> Engine.sec
(** Smallest index whose inclusive prefix sum exceeds [rank] — the
    median/quantile selection step on a one-hot histogram. Shared int
    result. *)

(** {2 Cost charging for the BGV ceremonies} — the key-generation and
    threshold-decryption committees run their polynomial arithmetic inside
    the MPC; the real math happens in {!Arb_crypto.Bgv}, and these charge
    the corresponding per-member costs to the engine. Charges are counted
    in logical ring operations (n log n butterfly field-ops per RNS prime):
    in evaluation form the butterflies sit at the forward/inverse transform
    boundaries while the homomorphic middle is pointwise, but the per-op
    envelope — and hence every charged total — is unchanged. *)

val charge_bgv_keygen : Engine.t -> n:int -> rns_primes:int -> unit
val charge_bgv_decrypt : Engine.t -> n:int -> rns_primes:int -> ciphertexts:int -> unit
val charge_zk_setup : Engine.t -> constraints:int -> unit

val charge_vsr_retry : Engine.t -> unit
(** One extra round + re-sent subshare bytes when a VSR hand-off message
    failed verification and the honest sender re-sends (fault recovery). *)

val em_gumbel_gap :
  Engine.t -> epsilon:float -> sensitivity:float -> Fixpoint_mpc.t array ->
  int * Arb_util.Fixed.t
(** Exponential mechanism with free gap (Ding et al.): winner index plus the
    noisy gap to the runner-up, from one noise draw. *)
