(** Honest-majority MPC engine over Shamir shares (simulated in-process).

    Models the SPDZ-wise Shamir setting the paper's prototype uses via
    MP-SPDZ (§6): [m] parties, threshold [t = floor((m-1)/2)], arithmetic in
    a modulus [q] that matches the BGV ciphertext modulus (one or two
    NTT-friendly primes in RNS, mirroring [Arb_crypto.Bgv]).

    Fidelity levels, by operation:
    - {b share-faithful}: [input], [add], [sub], [scale], [add_const],
      [mul] (Beaver triples), [open_value] — the engine holds one Shamir
      share per party per RNS prime and performs the real share arithmetic;
      reconstruction interpolates and cross-checks redundant shares, so a
      cheating minority that modifies shares is detected
      ([Cheating_detected]).
    - {b protocol-level}: fixed-point truncation, comparison, and the
      fixpoint exp/log circuits. These compute the correct result and
      charge the documented round/byte/triple counts of the standard
      honest-majority protocols, but regenerate fresh shares of the result
      rather than executing the bit-decomposition gadgets share-by-share
      (DESIGN.md §1 — the evaluation consumes costs, not gadget internals).

    Values are signed integers (the fixpoint layer sits above, in
    {!Fixpoint_mpc}); the effective modulus must exceed the value range. *)

exception Cheating_detected of string

type t
type sec
(** A secret-shared integer. *)

val create :
  ?q_primes:int list -> parties:int -> Arb_util.Rng.t -> unit -> t
(** Default modulus: the two BGV primes (q ~ 2^59.4). Threshold is
    [(parties - 1) / 2]. *)

val parties : t -> int
val threshold : t -> int
val modulus : t -> int
(** The effective modulus q (product of the RNS primes). *)

val cost : t -> Cost.t
(** Cumulative cost counters (live view). *)

val input : t -> party:int -> int -> sec
(** A party secret-shares a signed value (centered range (-q/2, q/2)). *)

val const : t -> int -> sec
(** Public constant as a degree-0 sharing (free). *)

val add : t -> sec -> sec -> sec
val sub : t -> sec -> sec -> sec
val neg : t -> sec -> sec
val scale : t -> int -> sec -> sec
val add_const : t -> sec -> int -> sec
val mul : t -> sec -> sec -> sec
(** Beaver-triple multiplication: one round, one triple. *)

val open_value : t -> sec -> int
(** Reconstruct to all parties (centered signed result); one round.
    Redundant shares are consistency-checked; on a mismatch the engine runs
    Reed–Solomon decoding ({!Arb_crypto.Shamir.reconstruct_robust}),
    correcting up to floor((m - t - 1)/2) corrupted shares and recording
    the cheaters ({!detected_cheaters}). [Cheating_detected] is raised only
    when the corruption exceeds the decoding radius — the honest-majority
    guarantee in action. *)

val detected_cheaters : t -> int list
(** Parties whose shares were corrected away so far (sorted). *)

val corrupt_share : t -> sec -> party:int -> unit
(** Test hook: a Byzantine party adds garbage to its share of this value. *)

val set_saboteur : t -> (unit -> int list) option -> unit
(** Fault-harness hook: when set, the function is consulted at the top of
    every {!open_value}; each returned party corrupts its share of the
    value being opened. Within the decoding radius the opening self-heals
    (and {!detected_cheaters} grows); beyond it, [Cheating_detected]. *)

val mirror : t -> sec -> int
(** The engine's cleartext mirror of a value (testing/debug only — a real
    deployment has no such oracle). *)

(** {2 Protocol-level operations} *)

val trunc : t -> sec -> bits:int -> sec
(** Arithmetic shift right by [bits] (fixpoint rescaling after multiply). *)

val less_than : t -> sec -> sec -> sec
(** \[a < b\] as a shared 0/1 bit. Charges the standard log-round
    bit-decomposition comparison. *)

val select : t -> sec -> sec -> sec -> sec
(** [select t c a b] = c·a + (1-c)·b for a shared bit c (one mult). *)

val joint_uniform_bits : t -> bits:int -> sec
(** Jointly sampled uniform value in \[0, 2^bits): each party contributes
    entropy; secure as long as one contributor is honest. *)

val gadget : t -> rounds:int -> triples:int -> bytes:int -> int -> sec
(** Protocol-level building block: returns a fresh sharing of the given
    (engine-computed) result while charging the real protocol's round,
    triple and per-party byte costs. The comparison, truncation and
    transcendental gadgets in {!Fixpoint_mpc} are built from this — see the
    fidelity note above. *)

val reshare_in : t -> int -> sec
(** Import a value that arrived as VSR shares from a previous committee
    (charges the VSR receive cost: one round, O(m) field elements). *)

val reshare_out : t -> sec -> int
(** Export a value to the next committee via VSR (returns the cleartext for
    the simulation harness to re-input; charges VSR send cost). *)
