(* Small deterministic sketching helpers shared by the approximate plan
   variants (count-min heavy hitters, coarsened scans) and the continual
   engine's bounded quantile state. Everything here is pure integer/float
   arithmetic so results are identical across workers and platforms. *)

(* splitmix64 finalizer: a full-avalanche integer mix. *)
let mix64 x =
  let x = Int64.logxor x (Int64.shift_right_logical x 30) in
  let x = Int64.mul x 0xbf58476d1ce4e5b9L in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  let x = Int64.mul x 0x94d049bb133111ebL in
  Int64.logxor x (Int64.shift_right_logical x 31)

(* The bucket category [item] hashes to in row [row] of a count-min sketch
   of the given width. Rows use independent hash functions (the row index
   is folded into the mix), as the CMS guarantee requires. *)
let cms_bucket ~row ~width item =
  if width <= 0 then invalid_arg "Sketch.cms_bucket: width <= 0";
  let h =
    mix64
      (Int64.logxor
         (Int64.mul (Int64.of_int (row + 1)) 0x9e3779b97f4a7c15L)
         (Int64.of_int item))
  in
  Int64.to_int (Int64.unsigned_rem h (Int64.of_int width))

(* Count-min point estimate: the minimum over rows of the counter the item
   hashes to. [counters] is row-major, [depth * width] long. *)
let cms_estimate ~depth ~width counters item =
  let est = ref max_float in
  for row = 0 to depth - 1 do
    let c = counters.((row * width) + cms_bucket ~row ~width item) in
    if c < !est then est := c
  done;
  !est

(* Coarsen a histogram to [groups] adjacent-bin groups: each group's mass
   lands on its first bin, the rest zero. The array keeps its full width so
   downstream consumers see the same shape; only the resolution drops. *)
let coarsen ~groups (a : int array) =
  let n = Array.length a in
  if groups <= 0 then invalid_arg "Sketch.coarsen: groups <= 0";
  if groups >= n then Array.copy a
  else begin
    let out = Array.make n 0 in
    let per = (n + groups - 1) / groups in
    Array.iteri (fun i v -> out.(i / per * per) <- (out.(i / per * per) + v)) a;
    out
  end

(* Deterministic eps-approximate quantile decimation: keep every other
   element of a sorted list. *)
let rec decimate = function
  | [] -> []
  | [ x ] -> [ x ]
  | keep :: _drop :: rest -> keep :: decimate rest

(* Merge new samples into a sorted bounded reservoir, decimating until the
   result fits [capacity]. *)
let merge_bounded ~capacity samples xs =
  let merged = List.sort Float.compare (List.rev_append xs samples) in
  let rec shrink s = if List.length s > capacity then shrink (decimate s) else s in
  shrink merged
