(** Deterministic sketching helpers for the approximate plan variants and
    the continual engine's bounded quantile state. All functions are pure,
    so sketch contents are identical across workers and cohort geometries. *)

val cms_bucket : row:int -> width:int -> int -> int
(** [cms_bucket ~row ~width item] is the column [item] hashes to in row
    [row] of a count-min sketch of the given width, in [\[0, width)].
    Rows hash independently. Raises [Invalid_argument] if [width <= 0]. *)

val cms_estimate : depth:int -> width:int -> float array -> int -> float
(** Count-min point estimate for [item]: the minimum over the [depth] rows
    of the counter it hashes to. [counters] is row-major,
    [depth * width] long. *)

val coarsen : groups:int -> int array -> int array
(** Coarsen a histogram to [groups] groups of adjacent bins: each group's
    total mass lands on its first bin and the other bins zero. The result
    keeps the input's width. [groups >= length] returns a copy. *)

val decimate : 'a list -> 'a list
(** Keep every other element (the first, third, ...) — one level of the
    classic deterministic eps-approximate quantile compaction. *)

val merge_bounded : capacity:int -> float list -> float list -> float list
(** [merge_bounded ~capacity samples xs] merges [xs] into the sorted list
    [samples] and decimates until at most [capacity] elements remain. *)
