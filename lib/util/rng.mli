(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    simulations, tests and benchmarks are reproducible from a single seed.
    The core generator is splitmix64, which has a 64-bit state, passes
    BigCrush, and supports cheap stream splitting — convenient for giving
    each simulated device an independent stream. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val derive : int64 -> int -> t
(** [derive seed i] is an independent generator for index [i] of [seed]:
    a pure function of its arguments that advances no other generator.
    Unlike {!split}, which consumes state from a parent stream, [derive]
    lets a simulation address any of billions of per-index streams (one
    per device) without materializing the draws in between. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val uniform01 : t -> float
(** Uniform in (0, 1) — never exactly 0, safe for [log]. *)

val bool : t -> bool

val bits32 : t -> int
(** 30 uniform random bits as a non-negative int. *)

val laplace : t -> scale:float -> float
(** Sample from Laplace(0, scale). *)

val gumbel : t -> scale:float -> float
(** Sample from Gumbel(0, scale): [-scale *. log (-. log u)]. *)

val exponential : t -> rate:float -> float
(** Sample from Exp(rate). *)

val gaussian : t -> sigma:float -> float
(** Sample from N(0, sigma^2) (Box–Muller). *)

val geometric : t -> p:float -> int
(** Number of failures before the first success, success probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    \[0, n), in random order. Requires [k <= n]. *)
