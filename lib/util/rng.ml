type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  create (mix (Int64.add s golden_gamma))

(* Two rounds of the splitmix finalizer over (seed, i) give an independent
   stream per index without touching any other generator's state — the
   primitive behind per-device randomness at simulated billion-device
   scale (each device's draws are a pure function of (seed, i)). *)
let derive seed i =
  let z = mix (Int64.add seed (Int64.mul (Int64.of_int (i + 1)) golden_gamma)) in
  create (mix (Int64.logxor z golden_gamma))

let copy t = { state = t.state }

(* Top 53 bits -> float in [0,1). *)
let float01 t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform01 t =
  let u = float01 t in
  if u <= 0.0 then 1.0 /. 9007199254740992.0 else u

let float t bound = float01 t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 uniform bits: shifting by 2 keeps the value within OCaml's 63-bit
     native int without wrapping negative. *)
  let draw () = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  if bound land (bound - 1) = 0 then draw () land (bound - 1)
  else
    let top = 1 lsl 62 in
    let rec go () =
      let r = draw () in
      let v = r mod bound in
      (* Reject the tail of the range to keep uniformity. *)
      if r - v > top - bound then go () else v
    in
    go ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bits32 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let laplace t ~scale =
  let u = uniform01 t -. 0.5 in
  let s = if u < 0.0 then -1.0 else 1.0 in
  -.scale *. s *. log (1.0 -. (2.0 *. Float.abs u))

let gumbel t ~scale = -.scale *. log (-.log (uniform01 t))

let exponential t ~rate = -.log (uniform01 t) /. rate

let gaussian t ~sigma =
  let u1 = uniform01 t and u2 = uniform01 t in
  sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p = 1.0 then 0
  else
    let u = uniform01 t in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  (* Partial Fisher–Yates over a lazily materialized identity permutation. *)
  let tbl = Hashtbl.create (2 * k) in
  let get i = match Hashtbl.find_opt tbl i with Some v -> v | None -> i in
  Array.init k (fun i ->
      let j = int_in t i (n - 1) in
      let vi = get i and vj = get j in
      Hashtbl.replace tbl j vi;
      Hashtbl.replace tbl i vj;
      vj)
