(** Minimal JSON: just enough to serialize plans, metrics and reports for
    the CLI and for round-trip-tested persistence. Self-contained (the
    container has no JSON package). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?pretty:bool -> t -> string
(** Render; [pretty] indents with two spaces. Strings are escaped per
    RFC 8259 (control characters, quotes, backslashes; non-ASCII bytes are
    passed through as UTF-8). Raises [Invalid_argument] on a non-finite
    [Float]: inf/nan have no JSON encoding and would not re-parse. *)

val of_string : string -> t
(** Parse. Numbers with a '.', 'e' or 'E' become [Float], others [Int].
    Raises [Parse_error] with a position on malformed input. *)

val member : string -> t -> t
(** Field of an object; raises [Parse_error] when missing or not an
    object. *)

val to_int : t -> int
val to_float : t -> float
(** [to_float] accepts [Int] too. *)

val to_str : t -> string
val to_list : t -> t list
val to_bool : t -> bool
