type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_to_string f =
  (* %.17g would render inf/nan as "inf"/"nan", which no JSON parser (ours
     included) accepts back; fail at serialization time instead of emitting
     an unreadable document. *)
  if not (Float.is_finite f) then
    invalid_arg "Json.float_to_string: non-finite floats have no JSON encoding"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let rec go indent v =
    let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
    let nl () = if pretty then Buffer.add_char buf '\n' in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (indent + 1);
            go (indent + 1) item)
          items;
        nl ();
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (indent + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (indent + 1) item)
          fields;
        nl ();
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- parser --- *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_keyword st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st ("expected " ^ word)

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
        | Some '/' -> Buffer.add_char buf '/'; advance st; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance st; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance st; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance st; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* Encode the code point as UTF-8 (BMP only; surrogate pairs are
               stored as-is, which suffices for our own output). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_keyword st "null" Null
  | Some 't' -> parse_keyword st "true" (Bool true)
  | Some 'f' -> parse_keyword st "false" (Bool false)
  | Some '"' -> String (parse_string_raw st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws st;
          let k = parse_string_raw st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        fields []
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* --- accessors --- *)

let member k = function
  | Obj fields -> (
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> raise (Parse_error ("missing field " ^ k)))
  | _ -> raise (Parse_error ("not an object looking up " ^ k))

let to_int = function
  | Int i -> i
  | _ -> raise (Parse_error "expected an int")

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> raise (Parse_error "expected a number")

let to_str = function
  | String s -> s
  | _ -> raise (Parse_error "expected a string")

let to_list = function
  | List l -> l
  | _ -> raise (Parse_error "expected a list")

let to_bool = function
  | Bool b -> b
  | _ -> raise (Parse_error "expected a bool")
