(** Plan cache: memoized {!Arb_planner.Search.plan} results keyed by a
    canonical hash of everything the search's outcome depends on.

    The planner is deterministic: the winning plan and its metrics are a
    pure function of (query AST, deployment size N, category count,
    analyst limits, optimization goal). The cache key is the SHA-256 of a
    canonical rendering of exactly that tuple — the query's *program text*
    (pretty-printed canonical form), not its registry name, so two
    differently-named submissions of the same program share an entry while
    any change to the AST, epsilon, row shape, N, C, limits or goal misses.

    Entries optionally persist to a directory as versioned
    {!Arb_planner.Plan_io} JSON files ([<key>.json]) so the cache survives
    restarts; unreadable, malformed or version-mismatched files are
    treated as misses (logged, never fatal). All access is
    mutex-protected, so worker domains may consult the cache freely. *)

type key = string
(** 64-char lowercase hex. *)

type entry = {
  plan : Arb_planner.Plan.t;
  metrics : Arb_planner.Cost_model.metrics;
  cols : int;
      (** category count the plan was priced against — what calibration
          installs need to re-price the entry without re-resolving the
          query. Cache files written before this field exist demote to
          misses (the standard malformed-demotes path) and re-plan once. *)
}

type t

val create : ?dir:string -> unit -> t
(** [dir] enables disk persistence; it is created if missing (recursively,
    tolerating concurrent creators — two processes may share a cache
    directory). Stale [*.tmp] files stranded by writers that crashed
    mid-save are swept on creation. *)

val key :
  ?limits:Arb_planner.Constraints.limits ->
  goal:Arb_planner.Constraints.goal ->
  query:Arb_queries.Registry.query ->
  n:int ->
  unit ->
  key
(** Canonical cache key ([limits] defaults to
    {!Arb_planner.Constraints.no_limits}, the setting execution planning
    uses). *)

val find : t -> key -> entry option
(** Memory first, then (when persisting) the entry's file on disk —
    loaded entries are promoted into memory. *)

val add : t -> key -> query_name:string -> entry -> unit
(** Insert and, when persisting, write the entry's file atomically via a
    per-writer temp file (pid + sequence number, so concurrent writers of
    the same key never clobber each other mid-write) + rename.
    [query_name] is stored as informational metadata only; it is not part
    of the key. *)

val remove : t -> key -> unit
(** Evict from memory and (when persisting) delete the entry's file — the
    continual engine's forced re-plan: the next [find] cold-misses even
    across a restart. Removing an absent key is a no-op. *)

val mem : t -> key -> bool

val size : t -> int
(** In-memory entry count. *)

val revived : t -> int
(** How many entries were promoted from disk over this cache's lifetime. *)

val entries : t -> (key * entry) list
(** Snapshot of the in-memory entries, sorted by key — the canonical order
    calibration installs walk so re-price decisions are deterministic. *)

val update_metrics : t -> key -> Arb_planner.Cost_model.metrics -> unit
(** Replace an entry's priced metrics in memory and (when persisting)
    rewrite its file — how a calibration install re-prices a kept entry.
    Updating an absent key is a no-op. *)
