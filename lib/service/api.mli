(** The JSON API over {!Service}: routes {!Server} requests to the
    service core and owns the single executor domain that drains the
    submission queue.

    Endpoints:
    - [GET /healthz] — liveness: status (ok|stopping), pending, submitted,
      drain count.
    - [POST /v1/queries] — body is one workload query entry
      ({!Workload.submission_of_json}); 202 with the assigned submission
      index, or 429 (reason [queueFull] or [budget]) via
      {!Service.try_submit} with the budget untouched, 400 on malformed
      bodies or recurring entries ([every]/[window] — those are
      session-scoped, registered from workload files), 503 once stopping.
    - [GET /v1/queries/<index>] — poll one submission: its lifecycle
      record (wall-clock timings included) once drained, a pending stub
      before that, 404 for indices never assigned.
    - [GET /v1/records] — all lifecycle records in canonical form (no
      timings): byte-identical to {!Lifecycle.records_to_string} over the
      same submissions on the in-process path.
    - [GET /v1/counters], [GET /v1/budget] — aggregates.
    - [GET /v1/metrics] — Prometheus text (404 when the service has no
      registry).
    - [POST /v1/stop] — request shutdown; the server's graceful drain
      then finishes in-flight requests.

    Handlers run on server worker domains concurrently; the service core
    is mutex-protected, and execution stays serialized on the certificate
    chain inside the one executor domain. *)

type config = {
  max_queue : int;  (** {!Service.try_submit} queue bound *)
  drain_workers : int;  (** planner pool size per drain *)
  check_budget : bool;  (** budget prescreen at submit time *)
}

val default_config : config
(** 1024-deep queue, single-worker drains, prescreen on. *)

type t

val create :
  ?config:config ->
  ?tracer:Arb_obs.Tracer.t ->
  ?extra:(Http.request -> Http.response option) ->
  service:Service.t ->
  unit ->
  t
(** Spawns the executor domain immediately; it sleeps until a submission
    arrives (or {!request_stop}).

    [extra] is consulted before the built-in routes on every request
    ([None] falls through): subsystems layered above the service — the
    continual engine's [/v1/sessions] family — mount endpoints, and may
    shadow built-ins such as [GET /v1/budget], without this module
    depending on them. It runs on server worker domains concurrently, so
    it must be thread-safe. *)

val handler : t -> Http.request -> Http.response
(** The route table — pass to {!Server.start}. *)

val preload : t -> Workload.submission list -> unit
(** Enqueue submissions directly (the [--workload] file on a listening
    server) and wake the executor. *)

val request_stop : t -> unit
(** Ask the executor to exit after a final drain of whatever is queued.
    Idempotent; also woken by [POST /v1/stop]. *)

val stop_requested : t -> bool

val wait_stop : t -> unit
(** Block until {!request_stop} (e.g. via [POST /v1/stop] or a signal
    handler) has been called. *)

val join : t -> unit
(** {!request_stop} then join the executor domain: on return every
    accepted submission has drained into a lifecycle record. *)

val drains : t -> int
(** Completed drain batches (for tests and the health endpoint). *)
