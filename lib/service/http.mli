(** From-scratch HTTP/1.1 message handling for the service front door.

    Pure string-in/string-out: an incremental request parser with hard
    limits (every malformed, oversized or partial input maps to either
    [Partial] — feed more bytes — or a [Reject] carrying the HTTP status
    the connection must fail closed with), plus response serialization and
    the client-side halves the tests, bench and CLI use to speak to a
    server. {!Server} owns all socket I/O. *)

type limits = {
  max_request_line : int;  (** longest accepted request line (414 beyond) *)
  max_header_count : int;  (** 431 beyond *)
  max_header_bytes : int;
      (** request line + header block together (431 beyond) *)
  max_body_bytes : int;  (** declared content-length cap (413 beyond) *)
}

val default_limits : limits
(** 8 KiB request line, 100 headers / 64 KiB header block, 1 MiB body. *)

type request = {
  meth : string;  (** verbatim token, e.g. ["GET"] *)
  target : string;  (** the request-target exactly as sent *)
  path : string;  (** percent-decoded, query stripped *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;  (** names lowercased, wire order *)
  body : string;
}

type 'a outcome =
  | Complete of 'a * int  (** parsed value, bytes consumed from the buffer *)
  | Partial  (** a valid prefix; read more bytes and re-parse *)
  | Reject of int * string  (** HTTP status + reason; fail the connection *)

val parse_request : ?limits:limits -> string -> request outcome
(** Parse one request from the front of a receive buffer. Bare-LF line
    endings and leading empty lines are tolerated; [transfer-encoding] is
    rejected with 501 (the API never needs chunked bodies); a malformed
    request line or header is a 400, an unsupported version a 505. *)

val keep_alive : request -> bool
(** Connection persistence: HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
    close; an explicit [connection: close] / [keep-alive] header wins. *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val reason_phrase : int -> string

val response :
  ?headers:(string * string) list ->
  ?content_type:string ->
  status:int ->
  string ->
  response

val json_response :
  ?headers:(string * string) list -> status:int -> Arb_util.Json.t -> response

val error_response :
  ?headers:(string * string) list -> ?reason:string -> int -> string -> response
(** [{"error": message, "reason": reason?}] as JSON. *)

val text_response :
  ?headers:(string * string) list -> status:int -> string -> response
(** [text/plain] (Prometheus exposition). *)

val response_to_string : ?close:bool -> response -> string
(** Serialize with [content-length] and a [connection] header reflecting
    [close]. *)

val request_to_string :
  ?headers:(string * string) list ->
  ?body:string ->
  meth:string ->
  target:string ->
  unit ->
  string

val parse_response : ?limits:limits -> string -> response outcome
(** Client-side: parse a response off a receive buffer. Responses without
    [content-length] are rejected (the server always sends one). *)
