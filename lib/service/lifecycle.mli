(** Per-query lifecycle records and aggregate counters — the service's
    observability surface.

    One record per submission, covering the whole pipeline
    (queue → admit → plan/cache → execute). The canonical JSON rendering
    ({!to_json} with [timings:false], the default) contains only
    deterministic fields: for a fixed workload and service seed it is
    byte-identical at any worker count, which the determinism property
    tests and the [service_throughput] bench rely on. Wall-clock stage
    timings are observability-only and must be requested explicitly. *)

type status =
  | Refused of string
      (** rejected at admission — certification failure or insufficient
          remaining budget; nothing was planned or executed and the
          session is untouched *)
  | Plan_failed of string  (** the planner found no feasible plan *)
  | Exec_failed of string
      (** execution failed closed; budget and chain intact *)
  | Executed of { outputs : string list }

type timings = {
  admit_s : float;  (** certification + admission decision *)
  plan_s : float;  (** planner wall clock (0 on a cache hit) *)
  exec_s : float;  (** end-to-end execution *)
}

type record = {
  index : int;  (** 0-based submission order *)
  query : string;
  categories : int;
  epsilon : float;
  cache_key : Cache.key;
  cache_hit : bool;
      (** the plan came from the cache (an earlier submission or a
          persisted entry) rather than a fresh search *)
  cost : Arb_dp.Budget.t;  (** certified privacy cost (zero when refused
      before certification succeeded) *)
  budget_before : Arb_dp.Budget.t;
  budget_after : Arb_dp.Budget.t;
  status : status;
  timings : timings;
}

type counters = {
  submitted : int;
  refused : int;
  planned : int;  (** cold searches actually run *)
  cache_hits : int;
  executed : int;
  failed : int;  (** plan or execution failures *)
  plan_seconds : float;
  exec_seconds : float;
  spent : Arb_dp.Budget.t;  (** total budget committed by executed queries *)
}

val status_name : status -> string
(** "refused" | "planFailed" | "execFailed" | "executed". *)

val to_json : ?timings:bool -> record -> Arb_util.Json.t
(** Canonical (deterministic) rendering; [timings:true] adds the
    wall-clock stage fields. *)

val records_to_string : ?timings:bool -> record list -> string
(** The canonical JSON list, one compact record per call — what
    byte-identity is asserted over. *)

val counters_of : record list -> counters
val counters_to_json : counters -> Arb_util.Json.t

val pp : Format.formatter -> record -> unit
(** One human-readable line per record, timings included. *)
