(* The network front door: an HTTP/1.1 server over Unix sockets and OCaml
   domains. One accept domain feeds a bounded connection queue; a fixed
   pool of worker domains parses requests ({!Http}), dispatches the
   handler, and writes responses. The queue bound is the first layer of
   backpressure: over-capacity connections are answered 429 at the accept
   edge, before any work happens. Stop is graceful: the listener closes,
   queued and in-flight connections finish, then the domains are joined.

   Everything here is wall-clock by design — this is the one layer of the
   service allowed to be. The handler it wraps (Api over Service) stays on
   the deterministic core, so the same submissions yield byte-identical
   lifecycle records whether they arrive over a socket or from a workload
   file.

   Fault seams (chaos suite): when an injector is attached, Accept_drop
   loses a just-accepted connection and Response_truncate cuts a response
   write short — both must look to clients like the churn a real
   deployment sees, and must never corrupt service state. *)

module Fault = Arb_runtime.Fault
module M = Arb_obs.Metrics

let src = Logs.Src.create "arb.service.http" ~doc:"HTTP front door"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  host : string;
  port : int;  (* 0 picks an ephemeral port; see {!port} *)
  backlog : int;
  workers : int;
  max_pending : int;  (* accepted connections waiting for a worker *)
  request_timeout_s : float;  (* whole-request deadline (slowloris guard) *)
  limits : Http.limits;
  faults : Fault.t option;
  metrics : M.t option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 1024;
    workers = 4;
    max_pending = 1024;
    request_timeout_s = 10.0;
    limits = Http.default_limits;
    faults = None;
    metrics = None;
  }

type stats = {
  accepted : int;
  served : int;
  rejected_busy : int;
  bad_requests : int;
  timeouts : int;
  client_disconnects : int;
  faults_injected : int;
}

type t = {
  config : config;
  handler : Http.request -> Http.response;
  lsock : Unix.file_descr;
  bound_port : int;
  stop_r : Unix.file_descr;  (* self-pipe: wakes the accept select *)
  stop_w : Unix.file_descr;
  lock : Mutex.t;
  work : Condition.t;
  queue : Unix.file_descr Queue.t;
  mutable stopping : bool;
  mutable st : stats;
  mutable domains : unit Domain.t list;
}

let zero_stats =
  {
    accepted = 0;
    served = 0;
    rejected_busy = 0;
    bad_requests = 0;
    timeouts = 0;
    client_disconnects = 0;
    faults_injected = 0;
  }

let port t = t.bound_port
let stats t = Mutex.protect t.lock (fun () -> t.st)

let bump t f = Mutex.protect t.lock (fun () -> t.st <- f t.st)

(* Fault.t mutates unsynchronized internal counters; consult it under the
   server lock so accept and worker domains never race on it. *)
let fault_fires t kind =
  match t.config.faults with
  | None -> false
  | Some inj ->
      Mutex.protect t.lock (fun () ->
          let hit = Fault.fires inj kind in
          if hit then t.st <- { t.st with faults_injected = t.st.faults_injected + 1 };
          hit)

let count t ?labels name help =
  match t.config.metrics with
  | None -> ()
  | Some reg -> M.add reg ?labels ~help name 1.0

let observe_bytes t name help v =
  match t.config.metrics with
  | None -> ()
  | Some reg ->
      M.observe_in reg ~help ~buckets:M.size_buckets name (float_of_int v)

(* ---------------- socket I/O helpers ---------------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Write everything, tolerating partial writes; false when the peer is
   gone (EPIPE/ECONNRESET) or the send deadline passes. *)
let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | 0 -> false
      | written -> go (off + written)
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> false
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> false
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

type read_result = Data of int | Eof | Timeout | Gone

let read_chunk fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> Eof
  | n -> Data n
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> Timeout
  | exception Unix.Unix_error (EINTR, _, _) -> Timeout
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> Gone

(* ---------------- connection handling ---------------- *)

type conn_outcome =
  | Served of int  (* requests answered on this connection *)
  | Bad of string
  | Timed_out
  | Disconnected

let truncate_response resp =
  let s = Http.response_to_string ~close:true resp in
  String.sub s 0 (String.length s / 2)

let handle_conn t fd =
  (* The whole-request deadline is the slowloris guard: a client may be
     slow, but the bytes of one request must arrive within the window —
     per-read timeouts alone would let one-byte-at-a-time clients pin a
     worker forever. The deadline resets between keep-alive requests. *)
  let chunk = Bytes.create 8192 in
  let served = ref 0 in
  let respond ?(close = false) resp =
    let truncated = fault_fires t Fault.Response_truncate in
    let wire =
      if truncated then truncate_response resp
      else Http.response_to_string ~close resp
    in
    let ok = write_all fd wire in
    count t
      ~labels:[ ("status", string_of_int resp.Http.status) ]
      "arb_http_responses_total" "HTTP responses by status";
    observe_bytes t "arb_http_response_bytes" "Response sizes on the wire"
      (String.length wire);
    (not truncated) && ok
  in
  let rec requests buf deadline =
    match Http.parse_request ~limits:t.config.limits (Buffer.contents buf) with
    | Http.Reject (status, reason) ->
        ignore (respond ~close:true (Http.error_response status reason));
        Bad reason
    | Http.Complete (req, consumed) ->
        observe_bytes t "arb_http_request_bytes"
          "Request sizes on the wire (line + headers + body)" consumed;
        let resp =
          match t.handler req with
          | resp -> resp
          | exception exn ->
              Log.err (fun f ->
                  f "handler raised on %s %s: %s" req.Http.meth req.Http.path
                    (Printexc.to_string exn));
              Http.error_response 500 "internal error"
        in
        incr served;
        let keep = Http.keep_alive req && not t.stopping in
        if respond ~close:(not keep) resp && keep then begin
          (* Shift the leftover bytes down and start the next request
             with a fresh deadline. *)
          let rest = Buffer.contents buf in
          let rest =
            String.sub rest consumed (String.length rest - consumed)
          in
          Buffer.clear buf;
          Buffer.add_string buf rest;
          requests buf (Unix.gettimeofday () +. t.config.request_timeout_s)
        end
        else Served !served
    | Http.Partial -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then begin
          if Buffer.length buf > 0 then
            ignore
              (respond ~close:true (Http.error_response 408 "request timed out"));
          if Buffer.length buf > 0 then Timed_out
          else Served !served (* idle keep-alive expiry, not an error *)
        end
        else begin
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO (Float.min remaining 1.0)
           with Unix.Unix_error _ -> ());
          match read_chunk fd chunk with
          | Data n ->
              Buffer.add_subbytes buf chunk 0 n;
              requests buf deadline
          | Timeout -> requests buf deadline (* deadline re-checked above *)
          | Eof | Gone ->
              if Buffer.length buf = 0 then Served !served
              else Disconnected
        end)
  in
  let outcome =
    try
      requests (Buffer.create 1024)
        (Unix.gettimeofday () +. t.config.request_timeout_s)
    with exn ->
      Log.err (fun f -> f "connection handler raised: %s" (Printexc.to_string exn));
      Bad (Printexc.to_string exn)
  in
  close_quiet fd;
  (match outcome with
  | Served n -> bump t (fun s -> { s with served = s.served + n })
  | Bad _ ->
      bump t (fun s -> { s with bad_requests = s.bad_requests + 1 });
      count t "arb_http_bad_requests_total"
        "Connections failed closed on malformed input"
  | Timed_out ->
      bump t (fun s -> { s with timeouts = s.timeouts + 1 });
      count t "arb_http_timeouts_total"
        "Connections that blew the whole-request deadline"
  | Disconnected ->
      bump t (fun s -> { s with client_disconnects = s.client_disconnects + 1 });
      count t "arb_http_client_disconnects_total"
        "Connections dropped by the client mid-request")

(* ---------------- domains ---------------- *)

let worker_loop t =
  let rec loop () =
    let job =
      Mutex.protect t.lock (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.work t.lock
          done;
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
    in
    match job with
    | None -> () (* stopping, queue drained *)
    | Some fd ->
        handle_conn t fd;
        loop ()
  in
  loop ()

let busy_response =
  Http.response_to_string ~close:true
    (Http.response
       ~headers:[ ("retry-after", "1") ]
       ~status:429
       "{\"error\":\"server is at capacity, retry later\",\"reason\":\"queueFull\"}\n")

let accept_loop t =
  let rec loop () =
    let ready =
      try
        let r, _, _ = Unix.select [ t.lsock; t.stop_r ] [] [] (-1.0) in
        r
      with Unix.Unix_error (EINTR, _, _) -> []
    in
    if t.stopping || List.mem t.stop_r ready then ()
    else if not (List.mem t.lsock ready) then loop ()
    else
      match Unix.accept ~cloexec:true t.lsock with
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _)
        ->
          loop ()
      | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> () (* closed under us: stopping *)
      | fd, _peer ->
          bump t (fun s -> { s with accepted = s.accepted + 1 });
          count t "arb_http_connections_total" "Accepted connections";
          if fault_fires t Fault.Accept_drop then begin
            (* The front door loses the connection before reading a byte —
               to the client this is indistinguishable from socket churn. *)
            close_quiet fd;
            loop ()
          end
          else begin
            let enqueued =
              Mutex.protect t.lock (fun () ->
                  if Queue.length t.queue >= t.config.max_pending then begin
                    t.st <- { t.st with rejected_busy = t.st.rejected_busy + 1 };
                    false
                  end
                  else begin
                    Queue.push fd t.queue;
                    Condition.signal t.work;
                    true
                  end)
            in
            if not enqueued then begin
              (* Backpressure at the socket edge: answer 429 inline and
                 close, without touching the service at all. *)
              ignore (write_all fd busy_response);
              close_quiet fd;
              count t
                ~labels:[ ("reason", "queue_full") ]
                "arb_http_rejected_total"
                "Connections refused at the accept edge"
            end;
            (match t.config.metrics with
            | Some reg ->
                M.set_gauge reg ~help:"Connections waiting for a worker"
                  "arb_http_queue_depth"
                  (float_of_int
                     (Mutex.protect t.lock (fun () -> Queue.length t.queue)))
            | None -> ());
            loop ()
          end
  in
  loop ()

(* ---------------- lifecycle ---------------- *)

let start ?(config = default_config) ~handler () =
  (* Writes to sockets whose peer vanished must surface as EPIPE results,
     not process death. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (try Unix.bind lsock addr
   with e ->
     close_quiet lsock;
     raise e);
  Unix.listen lsock config.backlog;
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      config;
      handler;
      lsock;
      bound_port;
      stop_r;
      stop_w;
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      st = zero_stats;
      domains = [];
    }
  in
  let workers =
    List.init (max 1 config.workers) (fun _ -> Domain.spawn (fun () -> worker_loop t))
  in
  let acceptor = Domain.spawn (fun () -> accept_loop t) in
  t.domains <- acceptor :: workers;
  Log.info (fun f ->
      f "listening on %s:%d (%d workers, queue bound %d)" config.host bound_port
        (max 1 config.workers) config.max_pending);
  t

let stop t =
  let first =
    Mutex.protect t.lock (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          Condition.broadcast t.work;
          true
        end)
  in
  if first then begin
    (* Wake the accept select, then stop listening: already-accepted and
       queued connections still get served (drain-then-close). *)
    (try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
    List.iter Domain.join t.domains;
    t.domains <- [];
    close_quiet t.lsock;
    close_quiet t.stop_r;
    close_quiet t.stop_w;
    Log.info (fun f ->
        let s = t.st in
        f "stopped: %d accepted, %d busy-rejected, %d bad, %d timeouts, %d \
           client disconnects"
          s.accepted s.rejected_busy s.bad_requests s.timeouts
          s.client_disconnects)
  end
