(* From-scratch HTTP/1.1 message handling: an incremental request parser
   with hard limits (the front door's first line of defense against
   malformed and abusive clients), and response/request serialization.
   Pure string-in/string-out — no sockets here, so every branch is unit
   testable; Server owns the I/O. *)

module J = Arb_util.Json

type limits = {
  max_request_line : int;
  max_header_count : int;
  max_header_bytes : int;  (* request line + all header lines together *)
  max_body_bytes : int;
}

let default_limits =
  {
    max_request_line = 8192;
    max_header_count = 100;
    max_header_bytes = 65536;
    max_body_bytes = 1 lsl 20;
  }

type request = {
  meth : string;
  target : string;  (* the request-target exactly as sent *)
  path : string;  (* percent-decoded, query stripped *)
  query : (string * string) list;
  version : string;
  headers : (string * string) list;  (* names lowercased, in wire order *)
  body : string;
}

type 'a outcome =
  | Complete of 'a * int  (* parsed value, bytes consumed *)
  | Partial  (* valid so far; need more bytes *)
  | Reject of int * string  (* HTTP status, reason — fail closed *)

(* ---------------- small lexical helpers ---------------- *)

let is_tchar c =
  (* RFC 9110 token characters. *)
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' ->
      true
  | _ -> false

let is_token s = s <> "" && String.for_all is_tchar s

let trim_ows s =
  let n = String.length s in
  let i = ref 0 and j = ref n in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  while !j > !i && (s.[!j - 1] = ' ' || s.[!j - 1] = '\t') do decr j done;
  String.sub s !i (!j - !i)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let pct_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents b
    else
      match s.[i] with
      | '%' when i + 2 < n -> (
          match (hex_val s.[i + 1], hex_val s.[i + 2]) with
          | Some h, Some l ->
              Buffer.add_char b (Char.chr ((h * 16) + l));
              go (i + 3)
          | _ ->
              Buffer.add_char b '%';
              go (i + 1))
      | '+' ->
          Buffer.add_char b ' ';
          go (i + 1)
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0

let split_target target =
  let raw_path, raw_query =
    match String.index_opt target '?' with
    | None -> (target, "")
    | Some i ->
        ( String.sub target 0 i,
          String.sub target (i + 1) (String.length target - i - 1) )
  in
  let query =
    if raw_query = "" then []
    else
      List.map
        (fun kv ->
          match String.index_opt kv '=' with
          | None -> (pct_decode kv, "")
          | Some i ->
              ( pct_decode (String.sub kv 0 i),
                pct_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))
        (String.split_on_char '&' raw_query)
  in
  (pct_decode raw_path, query)

(* A line ends at '\n'; a trailing '\r' is stripped (we tolerate bare-LF
   clients, as real front doors do). Returns (line, next position). *)
let next_line s pos =
  match String.index_from_opt s pos '\n' with
  | None -> None
  | Some nl ->
      let stop = if nl > pos && s.[nl - 1] = '\r' then nl - 1 else nl in
      Some (String.sub s pos (stop - pos), nl + 1)

let header_value headers name = List.assoc_opt name headers

let all_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* ---------------- request parsing ---------------- *)

let parse_request ?(limits = default_limits) s =
  let len = String.length s in
  (* RFC 9112 §2.2: tolerate CRLFs ahead of the request line. *)
  let start =
    let rec skip i =
      if i < len && (s.[i] = '\r' || s.[i] = '\n') then skip (i + 1) else i
    in
    skip 0
  in
  match next_line s start with
  | None ->
      if len - start > limits.max_request_line then
        Reject (414, "request line too long")
      else Partial
  | Some (line, pos) -> (
      if String.length line > limits.max_request_line then
        Reject (414, "request line too long")
      else
        match String.split_on_char ' ' line with
        | [ meth; target; version ] when is_token meth && target <> "" -> (
            if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
              Reject (505, "unsupported protocol version " ^ version)
            else
              (* Header block: stop at the first empty line. *)
              let rec headers acc count pos =
                if pos - start > limits.max_header_bytes then
                  Reject (431, "header block too large")
                else
                  match next_line s pos with
                  | None ->
                      if len - start > limits.max_header_bytes then
                        Reject (431, "header block too large")
                      else Partial
                  | Some ("", pos') -> Complete (List.rev acc, pos')
                  | Some (h, pos') -> (
                      if count + 1 > limits.max_header_count then
                        Reject (431, "too many headers")
                      else
                        match String.index_opt h ':' with
                        | None -> Reject (400, "malformed header line")
                        | Some i ->
                            let name = String.sub h 0 i in
                            if not (is_token name) then
                              Reject (400, "malformed header name")
                            else
                              let value =
                                trim_ows
                                  (String.sub h (i + 1)
                                     (String.length h - i - 1))
                              in
                              headers
                                ((String.lowercase_ascii name, value) :: acc)
                                (count + 1) pos')
              in
              match headers [] 0 pos with
              | Partial -> Partial
              | Reject (st, m) -> Reject (st, m)
              | Complete (headers, body_start) -> (
                  if header_value headers "transfer-encoding" <> None then
                    Reject (501, "transfer-encoding is not supported")
                  else
                    match
                      List.filter
                        (fun (n, _) -> String.equal n "content-length")
                        headers
                    with
                    | _ :: _ :: _ ->
                        Reject (400, "multiple content-length headers")
                    | rest -> (
                        let clen =
                          match rest with
                          | [] -> Ok 0
                          | [ (_, v) ] ->
                              if all_digits v && String.length v <= 15 then
                                Ok (int_of_string v)
                              else Error ()
                          | _ -> assert false
                        in
                        match clen with
                        | Error () -> Reject (400, "malformed content-length")
                        | Ok clen ->
                            if clen > limits.max_body_bytes then
                              Reject (413, "request body too large")
                            else if len - body_start < clen then Partial
                            else
                              let body = String.sub s body_start clen in
                              let path, query = split_target target in
                              Complete
                                ( {
                                    meth;
                                    target;
                                    path;
                                    query;
                                    version;
                                    headers;
                                    body;
                                  },
                                  body_start + clen ))))
        | _ -> Reject (400, "malformed request line"))

let keep_alive (r : request) =
  match Option.map String.lowercase_ascii (header_value r.headers "connection") with
  | Some v when String.equal v "close" -> false
  | Some v when String.equal v "keep-alive" -> true
  | _ -> String.equal r.version "HTTP/1.1"

(* ---------------- responses ---------------- *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let reason_phrase = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 414 -> "URI Too Long"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Status"

let response ?(headers = []) ?(content_type = "application/json") ~status body =
  {
    status;
    reason = reason_phrase status;
    resp_headers = ("content-type", content_type) :: headers;
    resp_body = body;
  }

let json_response ?headers ~status json =
  response ?headers ~status (J.to_string json ^ "\n")

let error_response ?headers ?(reason = "") status message =
  json_response ?headers ~status
    (J.Obj
       (("error", J.String message)
       :: (if reason = "" then [] else [ ("reason", J.String reason) ])))

let text_response ?headers ~status body =
  response ?headers ~content_type:"text/plain; version=0.0.4" ~status body

let response_to_string ?(close = false) r =
  let b = Buffer.create (String.length r.resp_body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status r.reason);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    r.resp_headers;
  Buffer.add_string b
    (Printf.sprintf "content-length: %d\r\n" (String.length r.resp_body));
  Buffer.add_string b
    (if close then "connection: close\r\n" else "connection: keep-alive\r\n");
  Buffer.add_string b "\r\n";
  Buffer.add_string b r.resp_body;
  Buffer.contents b

(* ---------------- client-side serialization (tests, bench, CLI) ------- *)

let request_to_string ?(headers = []) ?(body = "") ~meth ~target () =
  let b = Buffer.create (String.length body + 128) in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  if body <> "" || meth = "POST" || meth = "PUT" then
    Buffer.add_string b
      (Printf.sprintf "content-length: %d\r\n" (String.length body));
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b

let parse_response ?(limits = default_limits) s =
  match next_line s 0 with
  | None ->
      if String.length s > limits.max_request_line then
        Reject (0, "status line too long")
      else Partial
  | Some (line, pos) -> (
      let status =
        match String.split_on_char ' ' line with
        | version :: code :: _
          when String.length version >= 5
               && String.sub version 0 5 = "HTTP/" && all_digits code ->
            Some (int_of_string code)
        | _ -> None
      in
      match status with
      | None -> Reject (0, "malformed status line")
      | Some status -> (
          let rec headers acc pos =
            match next_line s pos with
            | None -> Partial
            | Some ("", pos') -> Complete (List.rev acc, pos')
            | Some (h, pos') -> (
                match String.index_opt h ':' with
                | None -> Reject (0, "malformed header line")
                | Some i ->
                    headers
                      (( String.lowercase_ascii (String.sub h 0 i),
                         trim_ows
                           (String.sub h (i + 1) (String.length h - i - 1)) )
                      :: acc)
                      pos')
          in
          match headers [] pos with
          | Partial -> Partial
          | Reject (st, m) -> Reject (st, m)
          | Complete (headers, body_start) -> (
              match header_value headers "content-length" with
              | Some v when all_digits v ->
                  let clen = int_of_string v in
                  if String.length s - body_start < clen then Partial
                  else
                    Complete
                      ( {
                          status;
                          reason = reason_phrase status;
                          resp_headers = headers;
                          resp_body = String.sub s body_start clen;
                        },
                        body_start + clen )
              | _ -> Reject (0, "response without content-length"))))
