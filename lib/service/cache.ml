module P = Arb_planner
module J = Arb_util.Json

let src = Logs.Src.create "arb.service.cache" ~doc:"Plan cache"

module Log = (val Logs.src_log src : Logs.LOG)

type key = string

type entry = { plan : P.Plan.t; metrics : P.Cost_model.metrics }

type t = {
  table : (key, entry) Hashtbl.t;
  lock : Mutex.t;
  dir : string option;
  mutable revived : int;
}

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  { table = Hashtbl.create 64; lock = Mutex.create (); dir; revived = 0 }

(* ---------------- canonical key ---------------- *)

let float_repr f = Printf.sprintf "%.17g" f

let row_repr = function
  | Arb_lang.Ast.One_hot k -> Printf.sprintf "oneHot:%d" k
  | Arb_lang.Ast.Bounded { width; lo; hi } ->
      Printf.sprintf "bounded:%d:%d:%d" width lo hi

let limits_repr (l : P.Constraints.limits) =
  let opt = function None -> "-" | Some f -> float_repr f in
  String.concat ","
    [
      opt l.P.Constraints.max_agg_time;
      opt l.max_agg_bytes;
      opt l.max_part_exp_time;
      opt l.max_part_max_time;
      opt l.max_part_exp_bytes;
      opt l.max_part_max_bytes;
    ]

let key ?(limits = P.Constraints.no_limits) ~goal
    ~(query : Arb_queries.Registry.query) ~n () =
  (* The program's canonical pretty-printed form — not the registry name —
     identifies the query, together with every other search input. The
     leading tag versions the canonicalization itself. *)
  let canonical =
    String.concat "\n"
      [
        "arb-plan-cache-key-v1";
        Arb_lang.Pretty.stmt query.Arb_queries.Registry.program.Arb_lang.Ast.body;
        row_repr query.Arb_queries.Registry.program.Arb_lang.Ast.row;
        float_repr query.Arb_queries.Registry.program.Arb_lang.Ast.epsilon;
        string_of_int n;
        string_of_int query.Arb_queries.Registry.categories;
        limits_repr limits;
        P.Constraints.goal_name goal;
      ]
  in
  Arb_crypto.Sha256.to_hex (Arb_crypto.Sha256.digest canonical)

(* ---------------- disk persistence ---------------- *)

let path_of dir k = Filename.concat dir (k ^ ".json")

let load_from_disk dir k =
  let path = path_of dir k in
  if not (Sys.file_exists path) then None
  else
    match
      Result.bind (P.Plan_io.load_versioned path) (fun json ->
          match
            ( J.to_str (J.member "key" json),
              P.Plan_io.plan_of_json (J.member "plan" json),
              P.Plan_io.metrics_of_json (J.member "metrics" json) )
          with
          | k', plan, metrics ->
              if String.equal k' k then Ok { plan; metrics }
              else Error (path ^ ": key field does not match file name")
          | exception J.Parse_error m -> Error (path ^ ": " ^ m))
    with
    | Ok entry -> Some entry
    | Error m ->
        Log.warn (fun f -> f "ignoring cache file: %s" m);
        None

let write_to_disk dir k ~query_name entry =
  let path = path_of dir k in
  let tmp = path ^ ".tmp" in
  P.Plan_io.save_versioned tmp
    [
      ("key", J.String k);
      ("query", J.String query_name);
      ("plan", P.Plan_io.plan_to_json entry.plan);
      ("metrics", P.Plan_io.metrics_to_json entry.metrics);
    ];
  Sys.rename tmp path

(* ---------------- lookup / insert ---------------- *)

let find t k =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some _ as hit -> hit
      | None -> (
          match t.dir with
          | None -> None
          | Some dir -> (
              match load_from_disk dir k with
              | Some entry ->
                  Hashtbl.replace t.table k entry;
                  t.revived <- t.revived + 1;
                  Some entry
              | None -> None)))

let add t k ~query_name entry =
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.table k entry;
      match t.dir with
      | None -> ()
      | Some dir -> (
          try write_to_disk dir k ~query_name entry
          with Sys_error m ->
            Log.warn (fun f -> f "could not persist cache entry %s: %s" k m)))

let mem t k = find t k <> None
let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let revived t = Mutex.protect t.lock (fun () -> t.revived)
