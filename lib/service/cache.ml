module P = Arb_planner
module J = Arb_util.Json

let src = Logs.Src.create "arb.service.cache" ~doc:"Plan cache"

module Log = (val Logs.src_log src : Logs.LOG)

type key = string

type entry = { plan : P.Plan.t; metrics : P.Cost_model.metrics; cols : int }

(* The table keeps the query name alongside the entry so a later
   [update_metrics] can rewrite the entry's disk file without the caller
   re-supplying it. *)
type slot = { s_entry : entry; s_query : string }

type t = {
  table : (key, slot) Hashtbl.t;
  lock : Mutex.t;
  dir : string option;
  mutable revived : int;
}

(* Recursive and EEXIST-tolerant: two processes sharing a --cache-dir may
   race to create it (and its parents) — losing the race is success, as
   long as a directory ends up there. *)
let rec mkdir_p dir =
  if not (dir = "" || dir = "." || dir = "/" || Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error _ when try Sys.is_directory dir with Sys_error _ -> false
      ->
        () (* another creator won the race *)
  end

let is_tmp_file name =
  String.length name > 4 && String.sub name (String.length name - 4) 4 = ".tmp"

let create ?dir () =
  (match dir with
  | Some d ->
      mkdir_p d;
      (* Sweep tmp files stranded by writers that crashed mid-save. A
         concurrently *live* writer can lose its tmp file here too; its
         rename then fails and is logged as a non-persisted entry — the
         entry stays served from memory and is rewritten on the next
         add, so the sweep is safe, just noisy in that unlikely race. *)
      Array.iter
        (fun f ->
          if is_tmp_file f then
            try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
        (try Sys.readdir d with Sys_error _ -> [||])
  | None -> ());
  { table = Hashtbl.create 64; lock = Mutex.create (); dir; revived = 0 }

(* ---------------- canonical key ---------------- *)

let float_repr f = Printf.sprintf "%.17g" f

let row_repr = function
  | Arb_lang.Ast.One_hot k -> Printf.sprintf "oneHot:%d" k
  | Arb_lang.Ast.Bounded { width; lo; hi } ->
      Printf.sprintf "bounded:%d:%d:%d" width lo hi

let limits_repr (l : P.Constraints.limits) =
  let opt = function None -> "-" | Some f -> float_repr f in
  String.concat ","
    [
      opt l.P.Constraints.max_agg_time;
      opt l.max_agg_bytes;
      opt l.max_part_exp_time;
      opt l.max_part_max_time;
      opt l.max_part_exp_bytes;
      opt l.max_part_max_bytes;
      opt l.max_est_error;
    ]

let key ?(limits = P.Constraints.no_limits) ~goal
    ~(query : Arb_queries.Registry.query) ~n () =
  (* The program's canonical pretty-printed form — not the registry name —
     identifies the query, together with every other search input. The
     leading tag versions the canonicalization itself (v2: the error
     tolerance joined the key, so pre-approximation entries demote to
     misses instead of serving a plan computed under other constraints). *)
  let canonical =
    String.concat "\n"
      [
        "arb-plan-cache-key-v2";
        Arb_lang.Pretty.stmt query.Arb_queries.Registry.program.Arb_lang.Ast.body;
        row_repr query.Arb_queries.Registry.program.Arb_lang.Ast.row;
        float_repr query.Arb_queries.Registry.program.Arb_lang.Ast.epsilon;
        string_of_int n;
        string_of_int query.Arb_queries.Registry.categories;
        (match query.Arb_queries.Registry.error_tolerance with
        | None -> "-"
        | Some tol -> float_repr tol);
        limits_repr limits;
        P.Constraints.goal_name goal;
      ]
  in
  Arb_crypto.Sha256.to_hex (Arb_crypto.Sha256.digest canonical)

(* ---------------- disk persistence ---------------- *)

let path_of dir k = Filename.concat dir (k ^ ".json")

let load_from_disk dir k =
  let path = path_of dir k in
  if not (Sys.file_exists path) then None
  else
    match
      Result.bind (P.Plan_io.load_versioned path) (fun json ->
          match
            ( J.to_str (J.member "key" json),
              J.to_str (J.member "query" json),
              P.Plan_io.plan_of_json (J.member "plan" json),
              P.Plan_io.metrics_of_json (J.member "metrics" json),
              J.to_int (J.member "cols" json) )
          with
          | k', query, plan, metrics, cols ->
              if String.equal k' k then
                Ok { s_entry = { plan; metrics; cols }; s_query = query }
              else Error (path ^ ": key field does not match file name")
          | exception J.Parse_error m -> Error (path ^ ": " ^ m))
    with
    | Ok entry -> Some entry
    | Error m ->
        Log.warn (fun f -> f "ignoring cache file: %s" m);
        None

(* Tmp names carry the writer's pid and a per-process sequence number so
   two writers of the same key never clobber each other's half-written
   file; the final rename is atomic, so readers only ever see complete
   entries (last writer wins — both wrote the same plan for the key). *)
let tmp_seq = Atomic.make 0

let write_to_disk dir k ~query_name entry =
  let path = path_of dir k in
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  (try
     P.Plan_io.save_versioned tmp
       [
         ("key", J.String k);
         ("query", J.String query_name);
         ("plan", P.Plan_io.plan_to_json entry.plan);
         ("metrics", P.Plan_io.metrics_to_json entry.metrics);
         ("cols", J.Int entry.cols);
       ]
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* ---------------- lookup / insert ---------------- *)

let find t k =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some slot -> Some slot.s_entry
      | None -> (
          match t.dir with
          | None -> None
          | Some dir -> (
              match load_from_disk dir k with
              | Some slot ->
                  Hashtbl.replace t.table k slot;
                  t.revived <- t.revived + 1;
                  Some slot.s_entry
              | None -> None)))

let add t k ~query_name entry =
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.table k { s_entry = entry; s_query = query_name };
      match t.dir with
      | None -> ()
      | Some dir -> (
          try write_to_disk dir k ~query_name entry
          with Sys_error m ->
            Log.warn (fun f -> f "could not persist cache entry %s: %s" k m)))

let remove t k =
  Mutex.protect t.lock (fun () ->
      Hashtbl.remove t.table k;
      match t.dir with
      | None -> ()
      | Some dir -> (
          try Sys.remove (path_of dir k) with Sys_error _ -> ()))

let mem t k = find t k <> None
let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let revived t = Mutex.protect t.lock (fun () -> t.revived)

let entries t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k slot acc -> (k, slot.s_entry) :: acc) t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let update_metrics t k metrics =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table k with
      | None -> ()
      | Some slot ->
          let slot =
            { slot with s_entry = { slot.s_entry with metrics } }
          in
          Hashtbl.replace t.table k slot;
          (match t.dir with
          | None -> ()
          | Some dir -> (
              try write_to_disk dir k ~query_name:slot.s_query slot.s_entry
              with Sys_error m ->
                Log.warn (fun f ->
                    f "could not persist re-priced cache entry %s: %s" k m))))
