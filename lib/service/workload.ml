module J = Arb_util.Json
module C = Arb_planner.Constraints

type window_spec = {
  w_epochs : int;
  w_budget : Arb_dp.Budget.t;
  w_compose : int option;
}

type submission = {
  query : string;
  epsilon : float;
  categories : int option;
  goal : C.goal;
  repeat : int;
  every : int option;
  window : window_spec option;
  tolerance : float option;
}

type t = {
  budget : Arb_dp.Budget.t option;
  devices : int option;
  seed : int option;
  epochs : int option;
  submissions : submission list;
}

type recurring_error =
  | Bad_every of { query : string; every : int }
  | Bad_window_epochs of { query : string; epochs : int }
  | Bad_compose of { query : string; compose : int }
  | Window_below_compose of { query : string; epochs : int; compose : int }
  | Window_without_every of { query : string }
  | Recurring_repeat of { query : string; repeat : int }

let recurring_error_message = function
  | Bad_every { query; every } ->
      Printf.sprintf
        "query %s: \"every\" must be a positive epoch count, got %d" query
        every
  | Bad_window_epochs { query; epochs } ->
      Printf.sprintf
        "query %s: window \"epochs\" must be at least 1, got %d" query epochs
  | Bad_compose { query; compose } ->
      Printf.sprintf
        "query %s: window \"compose\" must be at least 1, got %d" query compose
  | Window_below_compose { query; epochs; compose } ->
      Printf.sprintf
        "query %s: window of %d epochs is smaller than its composition \
         horizon %d — widen \"epochs\" or lower \"compose\""
        query epochs compose
  | Window_without_every { query } ->
      Printf.sprintf
        "query %s: a budget \"window\" only applies to recurring queries — \
         add \"every\""
        query
  | Recurring_repeat { query; repeat } ->
      Printf.sprintf
        "query %s: recurring queries run once per due epoch; \"repeat\" must \
         be 1, got %d"
        query repeat

let is_recurring s = s.every <> None

let validate_recurring s =
  match (s.every, s.window) with
  | None, None -> Ok ()
  | None, Some _ -> Error (Window_without_every { query = s.query })
  | Some every, w ->
      if every <= 0 then Error (Bad_every { query = s.query; every })
      else if s.repeat <> 1 then
        Error (Recurring_repeat { query = s.query; repeat = s.repeat })
      else (
        match w with
        | None -> Ok ()
        | Some { w_epochs; w_compose; _ } ->
            if w_epochs < 1 then
              Error (Bad_window_epochs { query = s.query; epochs = w_epochs })
            else (
              match w_compose with
              | Some c when c < 1 ->
                  Error (Bad_compose { query = s.query; compose = c })
              | Some c when c > w_epochs ->
                  Error
                    (Window_below_compose
                       { query = s.query; epochs = w_epochs; compose = c })
              | _ -> Ok ()))

let expand t =
  List.concat_map
    (fun s -> List.init s.repeat (fun _ -> { s with repeat = 1 }))
    (List.filter (fun s -> not (is_recurring s)) t.submissions)

let recurring t = List.filter is_recurring t.submissions

let goal_names =
  [
    ("part-exp-time", C.Min_part_exp_time);
    ("part-max-time", C.Min_part_max_time);
    ("part-exp-bytes", C.Min_part_exp_bytes);
    ("part-max-bytes", C.Min_part_max_bytes);
    ("agg-time", C.Min_agg_time);
    ("agg-bytes", C.Min_agg_bytes);
  ]

let goal_to_name g =
  fst (List.find (fun (_, g') -> g' = g) goal_names)

let window_to_json w =
  J.Obj
    (("epochs", J.Int w.w_epochs)
     :: ("epsilon", J.Float w.w_budget.Arb_dp.Budget.epsilon)
     :: ("delta", J.Float w.w_budget.Arb_dp.Budget.delta)
     ::
     (match w.w_compose with
     | None -> []
     | Some c -> [ ("compose", J.Int c) ]))

let submission_to_json s =
  J.Obj
    (List.concat
       [
         [
           ("query", J.String s.query);
           ("epsilon", J.Float s.epsilon);
           ("goal", J.String (goal_to_name s.goal));
           ("repeat", J.Int s.repeat);
         ];
         (match s.categories with
         | None -> []
         | Some c -> [ ("categories", J.Int c) ]);
         (match s.every with None -> [] | Some e -> [ ("every", J.Int e) ]);
         (match s.window with
         | None -> []
         | Some w -> [ ("window", window_to_json w) ]);
         (match s.tolerance with
         | None -> []
         | Some tol -> [ ("tolerance", J.Float tol) ]);
       ])

let to_json t =
  J.Obj
    (List.concat
       [
         (match t.budget with
         | None -> []
         | Some b ->
             [
               ( "budget",
                 J.Obj
                   [
                     ("epsilon", J.Float b.Arb_dp.Budget.epsilon);
                     ("delta", J.Float b.Arb_dp.Budget.delta);
                   ] );
             ]);
         (match t.devices with None -> [] | Some d -> [ ("devices", J.Int d) ]);
         (match t.seed with None -> [] | Some s -> [ ("seed", J.Int s) ]);
         (match t.epochs with None -> [] | Some e -> [ ("epochs", J.Int e) ]);
         [ ("queries", J.List (List.map submission_to_json t.submissions)) ];
       ])

(* Optional field access: [J.member] raises on absence, which here means
   "use the default", not an error. *)
let opt_member name json =
  match J.member name json with j -> Some j | exception J.Parse_error _ -> None

let window_of_json j =
  {
    w_epochs = J.to_int (J.member "epochs" j);
    w_budget =
      Arb_dp.Budget.create
        ~epsilon:(J.to_float (J.member "epsilon" j))
        ~delta:
          (match opt_member "delta" j with
          | Some d -> J.to_float d
          | None -> 0.0);
    w_compose = Option.map J.to_int (opt_member "compose" j);
  }

let submission_of_json j =
  match J.to_str (J.member "query" j) with
  | exception J.Parse_error m -> Error ("query entry: " ^ m)
  | query -> (
      match
        let epsilon =
          match opt_member "epsilon" j with Some e -> J.to_float e | None -> 0.1
        in
        let categories = Option.map J.to_int (opt_member "categories" j) in
        let repeat =
          match opt_member "repeat" j with Some r -> J.to_int r | None -> 1
        in
        let every = Option.map J.to_int (opt_member "every" j) in
        let window = Option.map window_of_json (opt_member "window" j) in
        let tolerance = Option.map J.to_float (opt_member "tolerance" j) in
        let goal_spelling =
          match opt_member "goal" j with
          | Some g -> J.to_str g
          | None -> "part-exp-time"
        in
        (goal_spelling, epsilon, categories, repeat, every, window, tolerance)
      with
      | exception J.Parse_error m ->
          Error (Printf.sprintf "query %s: %s" query m)
      | exception Invalid_argument m ->
          Error (Printf.sprintf "query %s: %s" query m)
      | goal_spelling, epsilon, categories, repeat, every, window, tolerance
        -> (
          match List.assoc_opt goal_spelling goal_names with
          | None ->
              Error
                (Printf.sprintf
                   "query %s: unknown goal %S (expected one of %s)" query
                   goal_spelling
                   (String.concat ", " (List.map fst goal_names)))
          | Some goal ->
              if repeat <= 0 then
                Error (Printf.sprintf "query %s: repeat must be positive" query)
              else (
                match tolerance with
                | Some tol when not (tol > 0.0 && tol <= 1.0) ->
                    Error
                      (Printf.sprintf
                         "query %s: tolerance must be in (0, 1], got %g" query
                         tol)
                | _ ->
                    let s =
                      {
                        query; epsilon; categories; goal; repeat; every; window;
                        tolerance;
                      }
                    in
                    (match validate_recurring s with
                    | Ok () -> Ok s
                    | Error e -> Error (recurring_error_message e)))))

let of_json json =
  match
    let budget =
      Option.map
        (fun b ->
          Arb_dp.Budget.create
            ~epsilon:(J.to_float (J.member "epsilon" b))
            ~delta:(J.to_float (J.member "delta" b)))
        (opt_member "budget" json)
    in
    let devices = Option.map J.to_int (opt_member "devices" json) in
    let seed = Option.map J.to_int (opt_member "seed" json) in
    let epochs = Option.map J.to_int (opt_member "epochs" json) in
    (match epochs with
    | Some e when e < 1 ->
        raise (J.Parse_error (Printf.sprintf "epochs must be at least 1, got %d" e))
    | _ -> ());
    let entries = J.to_list (J.member "queries" json) in
    let submissions =
      List.map
        (fun j ->
          match submission_of_json j with
          | Ok s -> s
          | Error m -> raise (J.Parse_error m))
        entries
    in
    { budget; devices; seed; epochs; submissions }
  with
  | t -> Ok t
  | exception J.Parse_error m -> Error m
  | exception Invalid_argument m -> Error m

let load path =
  Result.bind (Arb_planner.Plan_io.load_versioned path) (fun json ->
      Result.map_error (fun m -> path ^ ": " ^ m) (of_json json))

let save path t =
  match to_json t with
  | J.Obj fields -> Arb_planner.Plan_io.save_versioned path fields
  | _ -> assert false
