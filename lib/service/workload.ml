module J = Arb_util.Json
module C = Arb_planner.Constraints

type submission = {
  query : string;
  epsilon : float;
  categories : int option;
  goal : C.goal;
  repeat : int;
}

type t = {
  budget : Arb_dp.Budget.t option;
  devices : int option;
  seed : int option;
  submissions : submission list;
}

let expand t =
  List.concat_map
    (fun s -> List.init s.repeat (fun _ -> { s with repeat = 1 }))
    t.submissions

let goal_names =
  [
    ("part-exp-time", C.Min_part_exp_time);
    ("part-max-time", C.Min_part_max_time);
    ("part-exp-bytes", C.Min_part_exp_bytes);
    ("part-max-bytes", C.Min_part_max_bytes);
    ("agg-time", C.Min_agg_time);
    ("agg-bytes", C.Min_agg_bytes);
  ]

let goal_to_name g =
  fst (List.find (fun (_, g') -> g' = g) goal_names)

let submission_to_json s =
  J.Obj
    (("query", J.String s.query)
     :: ("epsilon", J.Float s.epsilon)
     :: ("goal", J.String (goal_to_name s.goal))
     :: ("repeat", J.Int s.repeat)
     ::
     (match s.categories with
     | None -> []
     | Some c -> [ ("categories", J.Int c) ]))

let to_json t =
  J.Obj
    (List.concat
       [
         (match t.budget with
         | None -> []
         | Some b ->
             [
               ( "budget",
                 J.Obj
                   [
                     ("epsilon", J.Float b.Arb_dp.Budget.epsilon);
                     ("delta", J.Float b.Arb_dp.Budget.delta);
                   ] );
             ]);
         (match t.devices with None -> [] | Some d -> [ ("devices", J.Int d) ]);
         (match t.seed with None -> [] | Some s -> [ ("seed", J.Int s) ]);
         [ ("queries", J.List (List.map submission_to_json t.submissions)) ];
       ])

(* Optional field access: [J.member] raises on absence, which here means
   "use the default", not an error. *)
let opt_member name json =
  match J.member name json with j -> Some j | exception J.Parse_error _ -> None

let submission_of_json j =
  match J.to_str (J.member "query" j) with
  | exception J.Parse_error m -> Error ("query entry: " ^ m)
  | query -> (
      let epsilon =
        match opt_member "epsilon" j with Some e -> J.to_float e | None -> 0.1
      in
      let categories = Option.map J.to_int (opt_member "categories" j) in
      let repeat =
        match opt_member "repeat" j with Some r -> J.to_int r | None -> 1
      in
      let goal_spelling =
        match opt_member "goal" j with
        | Some g -> J.to_str g
        | None -> "part-exp-time"
      in
      match List.assoc_opt goal_spelling goal_names with
      | None ->
          Error
            (Printf.sprintf "query %s: unknown goal %S (expected one of %s)"
               query goal_spelling
               (String.concat ", " (List.map fst goal_names)))
      | Some goal ->
          if repeat <= 0 then
            Error (Printf.sprintf "query %s: repeat must be positive" query)
          else Ok { query; epsilon; categories; goal; repeat })

let of_json json =
  match
    let budget =
      Option.map
        (fun b ->
          Arb_dp.Budget.create
            ~epsilon:(J.to_float (J.member "epsilon" b))
            ~delta:(J.to_float (J.member "delta" b)))
        (opt_member "budget" json)
    in
    let devices = Option.map J.to_int (opt_member "devices" json) in
    let seed = Option.map J.to_int (opt_member "seed" json) in
    let entries = J.to_list (J.member "queries" json) in
    let submissions =
      List.map
        (fun j ->
          match submission_of_json j with
          | Ok s -> s
          | Error m -> raise (J.Parse_error m))
        entries
    in
    { budget; devices; seed; submissions }
  with
  | t -> Ok t
  | exception J.Parse_error m -> Error m
  | exception Invalid_argument m -> Error m

let load path =
  Result.bind (Arb_planner.Plan_io.load_versioned path) (fun json ->
      Result.map_error (fun m -> path ^ ": " ^ m) (of_json json))

let save path t =
  match to_json t with
  | J.Obj fields -> Arb_planner.Plan_io.save_versioned path fields
  | _ -> assert false
