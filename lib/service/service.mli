(** The multi-tenant analytics service: a long-lived deployment fielding a
    stream of analyst submissions against one device population and one
    shared privacy budget.

    Submissions queue up ({!submit}) and are processed in batches
    ({!drain}) through a fixed pipeline:

    + {b admit} — sequential, in submission order: resolve the registry
      query, certify it, and check its certified cost against the
      *projected* remaining budget (the session balance minus the certified
      costs of everything admitted earlier in the batch). Queries that
      cannot fit are refused before any planning happens, with the session
      budget and certificate chain untouched — the same
      refuse-with-budget-intact semantics as {!Arb_runtime.Session.run}.
    + {b plan / cache} — admitted submissions are labeled against the plan
      cache in submission order (an earlier identical submission makes a
      later one a hit, deterministically), and the distinct cache misses
      are planned concurrently by a pool of OCaml domains. Each worker
      runs a private single-domain search; results land in per-task slots
      and are committed to the cache in canonical task order, so the cache
      contents and every lifecycle record are independent of the worker
      count and of domain scheduling.
    + {b execute} — sequential, in submission order, against the shared
      {!Arb_runtime.Session}: execution must stay serialized because each
      query's sortition consumes the randomness block minted by the
      previous certificate (§5.1–5.2) — the chain is inherently ordered.
      Per-query device inputs are synthesized deterministically from the
      service seed and the submission index.

    Only planning parallelizes; that is where the service's latency goes
    once results are streaming (and cached plans skip it entirely). *)

type t

val create :
  ?exec_config:Arb_runtime.Exec.config ->
  ?max_rounds:int ->
  ?cache:Cache.t ->
  ?metrics:Arb_obs.Metrics.t ->
  ?calibration:Arb_planner.Calibration.t ->
  ?snapshots:string * string ->
  budget:Arb_dp.Budget.t ->
  devices:int ->
  seed:int ->
  unit ->
  t
(** A service over [devices] simulated participants. [cache] defaults to a
    fresh in-memory cache (pass one built with [Cache.create ~dir] for
    persistence); [seed] drives per-query database synthesis.

    [metrics] attaches a registry: every {!drain} feeds it
    [arb_service_*] instruments (queue wait, per-outcome submission
    counts, hit/cold latency histograms, refusals, pool occupancy,
    cache size), the planner adds [arb_planner_*] for each cold search,
    each executed query's runtime trace is accumulated as
    [arb_runtime_*] counters, and predicted-vs-measured calibration
    samples as [arb_cal_*] (DESIGN.md §14).

    [calibration] selects the cost model pricing cold plans (default
    {!Arb_planner.Calibration.default}, i.e. the hand-anchored
    {!Arb_planner.Cost_model.default}). [snapshots] is a [(dir, tag)]
    pair: when set (and [metrics] is attached), every drain appends a
    tagged registry snapshot to [dir]'s store
    ({!Arb_obs.Snapshot.append}) so ground truth accumulates for
    [arb calibrate]. *)

val submit : t -> Workload.submission -> int
(** Enqueue ([repeat] is honored); returns the submission index of the
    first copy. Indices are global to the service, 0-based.

    [submit], [pending], [history], [record] and [drain] are safe to call
    concurrently from any domain (the HTTP front door's handlers do): the
    queue, index counter and history share one mutex, and whole drains
    are serialized on a second one because execution is inherently
    ordered on the certificate chain. *)

val pending : t -> int

type refusal =
  | Queue_full of int  (** the bound it hit *)
  | Over_budget of string

val refusal_message : refusal -> string

val try_submit :
  ?max_queue:int ->
  ?check_budget:bool ->
  t ->
  Workload.submission ->
  (int, refusal) result
(** Backpressure-aware {!submit}: refuse — before enqueueing, with the
    budget untouched — when the queue would exceed [max_queue] or (with
    [check_budget], the default) when the submission's certified cost
    cannot fit the projected balance (session balance minus the certified
    costs of everything already queued). The prescreen mirrors the
    arithmetic of drain's admission stage but is advisory: drain re-checks
    authoritatively, so a submission admitted here can still be refused
    there (e.g. when an earlier batch's execution failed and returned its
    reservation). Submissions that do not resolve or certify are enqueued
    anyway, so drain refuses them with the same canonical lifecycle record
    the workload-file path produces. *)

val submitted : t -> int
(** Total submissions ever enqueued (the next index to be assigned). *)

val record : t -> int -> Lifecycle.record option
(** The lifecycle record for a submission index, once its batch drained. *)

val drain : ?tracer:Arb_obs.Tracer.t -> ?workers:int -> t -> Lifecycle.record list
(** Process the whole queue; returns this batch's records in submission
    order. [workers] (default 1) sizes the planning pool; every value
    yields byte-identical canonical records ({!Lifecycle.records_to_string}).

    [tracer] records drain → admit / per-cold-plan search / per-submission
    execute spans. Cold plans search under per-task child tracers grafted
    back in canonical task order, so — with a [Deterministic] clock, which
    also suppresses the registry's wall-clock instruments — trace bytes are
    identical across runs and across [workers] values. *)

val run_workload :
  ?tracer:Arb_obs.Tracer.t -> ?workers:int -> t -> Workload.t -> Lifecycle.record list
(** [submit] every expanded entry, then [drain]. *)

val history : t -> Lifecycle.record list
(** All records since creation, in submission order. *)

val counters : t -> Lifecycle.counters
val budget_left : t -> Arb_dp.Budget.t
val queries_executed : t -> int
val chain_verifies : t -> bool
(** The underlying session's certificate chain verifies end to end. *)

val cache : t -> Cache.t

val devices : t -> int
(** The device population the service was created over — the [n] that
    plan-cache keys and certificates are computed against. *)

val seed : t -> int
(** The database-synthesis seed passed at {!create} time. *)

val metrics : t -> Arb_obs.Metrics.t option
(** The registry passed at {!create} time, if any. *)

val calibration : t -> Arb_planner.Calibration.t
(** The calibration currently pricing cold plans. *)

val calibration_fingerprint : t -> string
(** Shorthand for [(calibration t).fingerprint] — surfaced in
    [GET /v1/health] and the serve exit summary so operators can tell
    which calibration priced a session. *)

type reprice = { repriced : int; invalidated : int; changed : bool }
(** What a calibration install did to the plan cache. [changed] is false
    when the installed fingerprint equals the current one (the cache is
    left untouched). *)

val set_calibration :
  ?drift_threshold:float -> t -> Arb_planner.Calibration.t -> reprice
(** Install a calibration. When the fingerprint changes, every cached plan
    is re-priced under the new constants in canonical key order: entries
    whose worst metric component moved by more than [drift_threshold]
    (relative, default 0.5) are evicted — the old winner may no longer
    win, so the next submission re-plans cold — and the rest keep their
    plan with refreshed metrics. Emits
    [arb_service_calibration_installs_total] /
    [arb_service_cache_repriced_total] /
    [arb_service_cache_invalidated_total]. Drains already in flight finish
    under the model they started with; continual sessions additionally
    need the fingerprint fed to {!Arb_continual.Engine.set_calibration}
    (the HTTP route does both). *)
