(* The JSON API over {!Service}: request routing for submit / poll /
   records / counters / budget / metrics / health / stop, plus the
   executor domain that turns queued submissions into drains.

   Handlers run concurrently on {!Server} worker domains; everything they
   touch in {!Service} is mutex-protected. Admission is two-layered:
   {!Server} already refused over-capacity *connections* at the accept
   edge, and here {!Service.try_submit} refuses over-capacity or
   over-budget *submissions* with a 429 before anything is enqueued — the
   DP budget is untouched by construction (nothing was admitted, planned
   or executed).

   Execution stays serialized: one executor domain wakes on submission,
   drains the whole queue through the deterministic service core, and
   loops. On stop it performs a final drain, so every accepted submission
   has a lifecycle record before {!join} returns. *)

module J = Arb_util.Json

let src = Logs.Src.create "arb.service.api" ~doc:"Service JSON API"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  max_queue : int;  (* Service.try_submit queue bound *)
  drain_workers : int;  (* planner pool per drain *)
  check_budget : bool;  (* budget prescreen at submit time *)
}

let default_config = { max_queue = 1024; drain_workers = 1; check_budget = true }

type t = {
  service : Service.t;
  config : config;
  tracer : Arb_obs.Tracer.t option;
  extra : Http.request -> Http.response option;
      (* consulted before the built-in routes: subsystems layered on top of
         the service (the continual engine) add endpoints — and may shadow
         built-ins like /v1/budget — without Api depending on them *)
  lock : Mutex.t;
  wake : Condition.t;
  mutable stop_requested : bool;
  mutable drains : int;
  mutable executor : unit Domain.t option;
}

let executor_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    while Service.pending t.service = 0 && not t.stop_requested do
      Condition.wait t.wake t.lock
    done;
    let work = Service.pending t.service > 0 in
    Mutex.unlock t.lock;
    if work then begin
      (match
         Service.drain ?tracer:t.tracer ~workers:t.config.drain_workers
           t.service
       with
      | records ->
          Mutex.protect t.lock (fun () -> t.drains <- t.drains + 1);
          Log.info (fun f -> f "drained %d submissions" (List.length records))
      | exception exn ->
          (* A drain must never kill the executor: the failure is logged
             and the affected submissions simply never gain records. *)
          Log.err (fun f -> f "drain raised: %s" (Printexc.to_string exn)));
      loop ()
    end
    (* else: stop requested and the queue is empty — exit. *)
  in
  loop ()

let create ?(config = default_config) ?tracer ?(extra = fun _ -> None)
    ~service () =
  let t =
    {
      service;
      config;
      tracer;
      extra;
      lock = Mutex.create ();
      wake = Condition.create ();
      stop_requested = false;
      drains = 0;
      executor = None;
    }
  in
  t.executor <- Some (Domain.spawn (fun () -> executor_loop t));
  t

let kick t = Mutex.protect t.lock (fun () -> Condition.broadcast t.wake)

let preload t subs =
  List.iter (fun s -> ignore (Service.submit t.service s)) subs;
  kick t

let request_stop t =
  Mutex.protect t.lock (fun () ->
      t.stop_requested <- true;
      Condition.broadcast t.wake)

let stop_requested t = Mutex.protect t.lock (fun () -> t.stop_requested)

let wait_stop t =
  Mutex.lock t.lock;
  while not t.stop_requested do
    Condition.wait t.wake t.lock
  done;
  Mutex.unlock t.lock

let join t =
  request_stop t;
  match t.executor with
  | None -> ()
  | Some d ->
      t.executor <- None;
      Domain.join d

let drains t = Mutex.protect t.lock (fun () -> t.drains)

(* ---------------- routes ---------------- *)

let budget_json (b : Arb_dp.Budget.t) =
  J.Obj
    [
      ("epsilon", J.Float b.Arb_dp.Budget.epsilon);
      ("delta", J.Float b.Arb_dp.Budget.delta);
    ]

let health t =
  Http.json_response ~status:200
    (J.Obj
       [
         ( "status",
           J.String (if stop_requested t then "stopping" else "ok") );
         ("pending", J.Int (Service.pending t.service));
         ("submitted", J.Int (Service.submitted t.service));
         ("drains", J.Int (drains t));
         ("calibration", J.String (Service.calibration_fingerprint t.service));
       ])

let get_calibration t =
  Http.json_response ~status:200
    (Arb_planner.Calibration.to_json (Service.calibration t.service))

(* PUT a full calibration file body. This base route re-prices the plan
   cache; when a continual engine is mounted, its [extra] hook shadows the
   route to also feed the fingerprint into the epoch loop. *)
let put_calibration t (req : Http.request) =
  match
    match J.of_string req.Http.body with
    | j -> Arb_planner.Calibration.of_json ~path:"<body>" j
    | exception J.Parse_error m ->
        Error
          (Arb_planner.Calibration.Malformed { path = "<body>"; reason = m })
  with
  | Error e ->
      Http.error_response 400 (Arb_planner.Calibration.error_message e)
  | Ok calib ->
      let r = Service.set_calibration t.service calib in
      Http.json_response ~status:200
        (J.Obj
           [
             ("installed", J.String calib.Arb_planner.Calibration.fingerprint);
             ("changed", J.Bool r.Service.changed);
             ("repriced", J.Int r.Service.repriced);
             ("invalidated", J.Int r.Service.invalidated);
           ])

let submit t (req : Http.request) =
  if stop_requested t then
    Http.error_response ~reason:"stopping" 503 "service is shutting down"
  else
    match
      Result.bind
        (match J.of_string req.Http.body with
        | j -> Ok j
        | exception J.Parse_error m -> Error ("malformed JSON body: " ^ m))
        Workload.submission_of_json
    with
    | Error m -> Http.error_response 400 m
    | Ok sub when Workload.is_recurring sub ->
        Http.error_response 400
          "recurring submissions (\"every\"/\"window\") are session-scoped: \
           register them in a workload file, then poll /v1/sessions"
    | Ok sub -> (
        match
          Service.try_submit ~max_queue:t.config.max_queue
            ~check_budget:t.config.check_budget t.service sub
        with
        | Ok index ->
            kick t;
            Http.json_response ~status:202
              (J.Obj
                 [
                   ("index", J.Int index);
                   ("repeat", J.Int sub.Workload.repeat);
                   ("status", J.String "queued");
                 ])
        | Error refusal ->
            let reason =
              match refusal with
              | Service.Queue_full _ -> "queueFull"
              | Service.Over_budget _ -> "budget"
            in
            Http.error_response ~reason
              ~headers:[ ("retry-after", "1") ]
              429
              (Service.refusal_message refusal))

let poll t index_s =
  match int_of_string_opt index_s with
  | None -> Http.error_response 404 "submission indices are integers"
  | Some i when i < 0 || i >= Service.submitted t.service ->
      Http.error_response 404 (Printf.sprintf "no submission with index %d" i)
  | Some i -> (
      match Service.record t.service i with
      | Some r ->
          Http.json_response ~status:200 (Lifecycle.to_json ~timings:true r)
      | None ->
          Http.json_response ~status:200
            (J.Obj
               [ ("index", J.Int i); ("status", J.String "pending") ]))

let records t =
  (* Canonical form (no wall-clock timings): byte-identical to
     [Lifecycle.records_to_string] over the in-process workload path. *)
  Http.json_response ~status:200
    (J.List (List.map (Lifecycle.to_json ~timings:false) (Service.history t.service)))

let counters t =
  Http.json_response ~status:200
    (Lifecycle.counters_to_json (Service.counters t.service))

let metrics t =
  match Service.metrics t.service with
  | Some reg ->
      Http.text_response ~status:200 (Arb_obs.Metrics.to_prometheus reg)
  | None -> Http.error_response 404 "no metrics registry attached"

let stop_route t =
  request_stop t;
  Http.json_response ~status:200 (J.Obj [ ("stopping", J.Bool true) ])

let strip_prefix ~prefix s =
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

let handler t (req : Http.request) =
  match t.extra req with
  | Some resp -> resp
  | None ->
  let meth = req.Http.meth and path = req.Http.path in
  match (meth, path) with
  | "GET", "/healthz" -> health t
  | "POST", "/v1/queries" -> submit t req
  | "GET", "/v1/records" -> records t
  | "GET", "/v1/counters" -> counters t
  | "GET", "/v1/budget" ->
      Http.json_response ~status:200
        (budget_json (Service.budget_left t.service))
  | "GET", "/v1/metrics" -> metrics t
  | "GET", "/v1/calibration" -> get_calibration t
  | "PUT", "/v1/calibration" -> put_calibration t req
  | "POST", "/v1/stop" -> stop_route t
  | "GET", _ when strip_prefix ~prefix:"/v1/queries/" path <> None -> (
      match strip_prefix ~prefix:"/v1/queries/" path with
      | Some rest -> poll t rest
      | None -> assert false)
  | _, ("/healthz" | "/v1/queries" | "/v1/records" | "/v1/counters"
       | "/v1/budget" | "/v1/metrics" | "/v1/calibration" | "/v1/stop") ->
      Http.error_response 405
        (Printf.sprintf "%s does not support %s" path meth)
  | _ -> Http.error_response 404 (Printf.sprintf "no such endpoint %s" path)
