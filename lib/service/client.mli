(** A minimal blocking HTTP/1.1 client for tests, the chaos suite, the
    [service_load] bench and the CLI. Keep-alive aware; every read is
    bounded by a deadline so a wedged peer surfaces as [Error], never a
    hang. *)

type conn

val connect :
  ?timeout_s:float -> host:string -> port:int -> unit -> (conn, string) result

val close : conn -> unit

val request :
  ?timeout_s:float ->
  ?headers:(string * string) list ->
  ?body:string ->
  conn ->
  meth:string ->
  target:string ->
  unit ->
  (Http.response, string) result
(** One exchange on a persistent connection. *)

val send_raw : conn -> string -> (unit, string) result
(** Write raw bytes (malformed-input and partial-request chaos tests). *)

val read_response : ?deadline_s:float -> conn -> (Http.response, string) result

val get :
  ?timeout_s:float -> host:string -> port:int -> string -> (Http.response, string) result

val post :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  body:string ->
  string ->
  (Http.response, string) result

val post_json :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  json:Arb_util.Json.t ->
  string ->
  (Http.response, string) result
