module J = Arb_util.Json
module B = Arb_dp.Budget

type status =
  | Refused of string
  | Plan_failed of string
  | Exec_failed of string
  | Executed of { outputs : string list }

type timings = { admit_s : float; plan_s : float; exec_s : float }

type record = {
  index : int;
  query : string;
  categories : int;
  epsilon : float;
  cache_key : Cache.key;
  cache_hit : bool;
  cost : B.t;
  budget_before : B.t;
  budget_after : B.t;
  status : status;
  timings : timings;
}

type counters = {
  submitted : int;
  refused : int;
  planned : int;
  cache_hits : int;
  executed : int;
  failed : int;
  plan_seconds : float;
  exec_seconds : float;
  spent : B.t;
}

let status_name = function
  | Refused _ -> "refused"
  | Plan_failed _ -> "planFailed"
  | Exec_failed _ -> "execFailed"
  | Executed _ -> "executed"

let budget_to_json (b : B.t) =
  J.Obj [ ("epsilon", J.Float b.B.epsilon); ("delta", J.Float b.B.delta) ]

let to_json ?(timings = false) r =
  let status_fields =
    match r.status with
    | Refused reason -> [ ("reason", J.String reason) ]
    | Plan_failed reason -> [ ("reason", J.String reason) ]
    | Exec_failed reason -> [ ("reason", J.String reason) ]
    | Executed { outputs } ->
        [ ("outputs", J.List (List.map (fun s -> J.String s) outputs)) ]
  in
  let timing_fields =
    if not timings then []
    else
      [
        ( "timings",
          J.Obj
            [
              ("admitSeconds", J.Float r.timings.admit_s);
              ("planSeconds", J.Float r.timings.plan_s);
              ("execSeconds", J.Float r.timings.exec_s);
            ] );
      ]
  in
  J.Obj
    ([
       ("index", J.Int r.index);
       ("query", J.String r.query);
       ("categories", J.Int r.categories);
       ("epsilon", J.Float r.epsilon);
       ("cacheKey", J.String r.cache_key);
       ("cacheHit", J.Bool r.cache_hit);
       ("cost", budget_to_json r.cost);
       ("budgetBefore", budget_to_json r.budget_before);
       ("budgetAfter", budget_to_json r.budget_after);
       ("status", J.String (status_name r.status));
     ]
    @ status_fields @ timing_fields)

let records_to_string ?timings rs =
  J.to_string (J.List (List.map (to_json ?timings) rs))

let counters_of rs =
  List.fold_left
    (fun c r ->
      let executed = match r.status with Executed _ -> true | _ -> false in
      {
        submitted = c.submitted + 1;
        refused =
          (c.refused + match r.status with Refused _ -> 1 | _ -> 0);
        planned =
          (c.planned
          +
          match r.status with
          | Refused _ -> 0
          | _ -> if r.cache_hit then 0 else 1);
        cache_hits = (c.cache_hits + if r.cache_hit then 1 else 0);
        executed = (c.executed + if executed then 1 else 0);
        failed =
          (c.failed
          + match r.status with Plan_failed _ | Exec_failed _ -> 1 | _ -> 0);
        plan_seconds = c.plan_seconds +. r.timings.plan_s;
        exec_seconds = c.exec_seconds +. r.timings.exec_s;
        spent = (if executed then B.spend_all c.spent r.cost else c.spent);
      })
    {
      submitted = 0;
      refused = 0;
      planned = 0;
      cache_hits = 0;
      executed = 0;
      failed = 0;
      plan_seconds = 0.0;
      exec_seconds = 0.0;
      spent = B.zero;
    }
    rs

let counters_to_json c =
  J.Obj
    [
      ("submitted", J.Int c.submitted);
      ("refused", J.Int c.refused);
      ("planned", J.Int c.planned);
      ("cacheHits", J.Int c.cache_hits);
      ("executed", J.Int c.executed);
      ("failed", J.Int c.failed);
      ("planSeconds", J.Float c.plan_seconds);
      ("execSeconds", J.Float c.exec_seconds);
      ("spent", budget_to_json c.spent);
    ]

let pp ppf r =
  let detail =
    match r.status with
    | Refused m | Plan_failed m | Exec_failed m -> m
    | Executed { outputs } -> String.concat "; " outputs
  in
  Format.fprintf ppf "#%-3d %-9s %-10s %-5s %a -> %a  plan %s exec %s  %s"
    r.index r.query (status_name r.status)
    (match r.status with
    | Refused _ -> "-"
    | _ -> if r.cache_hit then "hit" else "cold")
    B.pp r.budget_before B.pp r.budget_after
    (Arb_util.Units.seconds_to_string r.timings.plan_s)
    (Arb_util.Units.seconds_to_string r.timings.exec_s)
    detail
