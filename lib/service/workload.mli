(** Workload files: a scripted stream of analyst submissions for
    [arb serve] and the throughput bench.

    A workload is versioned JSON ({!Arb_planner.Plan_io.format_version}):

    {v
    { "formatVersion": 1,
      "budget":  { "epsilon": 3.0, "delta": 1e-6 },
      "devices": 64,
      "seed":    7,
      "queries": [
        { "query": "top1", "epsilon": 0.5 },
        { "query": "median", "epsilon": 0.4, "categories": 16,
          "goal": "part-exp-time", "repeat": 3 }
      ] }
    v}

    [budget], [devices] and [seed] are defaults the CLI may override;
    per-query [categories] defaults to the registry's small test instance
    (execution runs in-process), [goal] to minimizing expected participant
    time, [repeat] to 1. *)

type submission = {
  query : string;  (** registry name (see [arb list]) *)
  epsilon : float;
  categories : int option;
  goal : Arb_planner.Constraints.goal;
  repeat : int;  (** submit this many consecutive copies *)
}

type t = {
  budget : Arb_dp.Budget.t option;
  devices : int option;
  seed : int option;
  submissions : submission list;  (** in file order, [repeat] not expanded *)
}

val expand : t -> submission list
(** File order with [repeat] expanded into consecutive copies
    ([repeat = 1] each). *)

val goal_names : (string * Arb_planner.Constraints.goal) list
(** CLI-facing goal spellings: part-exp-time, part-max-time,
    part-exp-bytes, part-max-bytes, agg-time, agg-bytes. *)

val goal_to_name : Arb_planner.Constraints.goal -> string

val submission_of_json : Arb_util.Json.t -> (submission, string) result
(** One query entry (the element shape of ["queries"]) — also the request
    body of the HTTP front door's [POST /v1/queries]. *)

val submission_to_json : submission -> Arb_util.Json.t

val of_json : Arb_util.Json.t -> (t, string) result
val to_json : t -> Arb_util.Json.t
(** [to_json] emits the fields without the [formatVersion] envelope
    (callers wrap with {!Arb_planner.Plan_io.save_versioned}). *)

val load : string -> (t, string) result
(** Read a workload file; [Error] on unreadable paths, malformed JSON,
    version mismatches, unknown goals, or non-positive repeat counts. *)

val save : string -> t -> unit
