(** Workload files: a scripted stream of analyst submissions for
    [arb serve] and the throughput bench.

    A workload is versioned JSON ({!Arb_planner.Plan_io.format_version}):

    {v
    { "formatVersion": 2,
      "budget":  { "epsilon": 3.0, "delta": 1e-6 },
      "devices": 64,
      "seed":    7,
      "epochs":  6,
      "queries": [
        { "query": "top1", "epsilon": 0.5 },
        { "query": "median", "epsilon": 0.4, "categories": 16,
          "goal": "part-exp-time", "repeat": 3, "tolerance": 0.05 },
        { "query": "top1", "epsilon": 0.5, "every": 1,
          "window": { "epochs": 24, "epsilon": 12.0, "delta": 0.01 } }
      ] }
    v}

    [budget], [devices] and [seed] are defaults the CLI may override;
    per-query [categories] defaults to the registry's small test instance
    (execution runs in-process), [goal] to minimizing expected participant
    time, [repeat] to 1.

    Entries with [every] are {e recurring}: the continual engine re-submits
    them every [every] epochs instead of running them once, optionally
    under a sliding-window budget ([window]). [epochs] is the default
    number of epochs [arb serve] drives for such a workload. *)

type window_spec = {
  w_epochs : int;  (** sliding-window horizon, in epochs *)
  w_budget : Arb_dp.Budget.t;  (** spend limit over any [w_epochs] window *)
  w_compose : int option;
      (** composition horizon: worst-case number of live charges the
          session advertises its composed privacy loss for; must fit in
          the window ([<= w_epochs]) *)
}

type submission = {
  query : string;  (** registry name (see [arb list]) *)
  epsilon : float;
  categories : int option;
  goal : Arb_planner.Constraints.goal;
  repeat : int;  (** submit this many consecutive copies *)
  every : int option;  (** recurring: re-submit every [every] epochs *)
  window : window_spec option;  (** sliding-window budget (recurring only) *)
  tolerance : float option;
      (** analyst error tolerance in (0, 1]: opts the query into the
          planner's approximate (sampled/sketched) variants; rejected at
          load when outside the range *)
}

type t = {
  budget : Arb_dp.Budget.t option;
  devices : int option;
  seed : int option;
  epochs : int option;  (** default epoch count for recurring workloads *)
  submissions : submission list;  (** in file order, [repeat] not expanded *)
}

type recurring_error =
  | Bad_every of { query : string; every : int }
  | Bad_window_epochs of { query : string; epochs : int }
  | Bad_compose of { query : string; compose : int }
  | Window_below_compose of { query : string; epochs : int; compose : int }
  | Window_without_every of { query : string }
  | Recurring_repeat of { query : string; repeat : int }
      (** Malformed recurring specs, caught at load/registration time so a
          bad workload file fails before the serve loop starts. *)

val recurring_error_message : recurring_error -> string
(** A one-line, CLI-ready description. *)

val validate_recurring : submission -> (unit, recurring_error) result
(** Ok for one-shot submissions and well-formed recurring ones. Rejects
    [every <= 0], window horizons below 1, composition horizons that are
    non-positive or exceed the window, windows without [every], and
    recurring entries with [repeat <> 1]. *)

val is_recurring : submission -> bool

val expand : t -> submission list
(** One-shot entries in file order with [repeat] expanded into consecutive
    copies ([repeat = 1] each). Recurring entries are excluded — they are
    the continual engine's to schedule. *)

val recurring : t -> submission list
(** Recurring entries in file order. *)

val goal_names : (string * Arb_planner.Constraints.goal) list
(** CLI-facing goal spellings: part-exp-time, part-max-time,
    part-exp-bytes, part-max-bytes, agg-time, agg-bytes. *)

val goal_to_name : Arb_planner.Constraints.goal -> string

val submission_of_json : Arb_util.Json.t -> (submission, string) result
(** One query entry (the element shape of ["queries"]) — also the request
    body of the HTTP front door's [POST /v1/queries]. Recurring fields are
    validated with {!validate_recurring}; the [Error] carries
    {!recurring_error_message}. *)

val submission_to_json : submission -> Arb_util.Json.t

val of_json : Arb_util.Json.t -> (t, string) result
val to_json : t -> Arb_util.Json.t
(** [to_json] emits the fields without the [formatVersion] envelope
    (callers wrap with {!Arb_planner.Plan_io.save_versioned}). *)

val load : string -> (t, string) result
(** Read a workload file; [Error] on unreadable paths, malformed JSON,
    version mismatches, unknown goals, non-positive repeat counts, or
    malformed recurring specs. *)

val save : string -> t -> unit
