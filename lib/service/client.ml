(* A minimal blocking HTTP/1.1 client over Unix sockets: just enough for
   the tests, the chaos suite, the service_load bench and the CLI to talk
   to {!Server}. Keep-alive aware (one [conn] can carry many requests);
   every read is bounded by a deadline so a wedged server surfaces as
   [Error] rather than a hang. *)

type conn = {
  fd : Unix.file_descr;
  mutable leftover : string;  (* bytes past the previous response *)
}

let connect ?(timeout_s = 10.0) ~host ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | () ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
       with Unix.Unix_error _ -> ());
      Ok { fd; leftover = "" }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_raw c s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write c.fd b off (n - off) with
      | 0 -> Error "short write"
      | w -> go (off + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
          Error ("write: " ^ Unix.error_message e)
  in
  go 0

let read_response ?(deadline_s = 10.0) c =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let chunk = Bytes.create 8192 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf c.leftover;
  c.leftover <- "";
  let rec go () =
    match Http.parse_response (Buffer.contents buf) with
    | Http.Complete (resp, consumed) ->
        let all = Buffer.contents buf in
        c.leftover <- String.sub all consumed (String.length all - consumed);
        Ok resp
    | Http.Reject (_, m) -> Error ("malformed response: " ^ m)
    | Http.Partial -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error "response timed out"
        else begin
          (try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO (Float.min remaining 1.0)
           with Unix.Unix_error _ -> ());
          match Unix.read c.fd chunk 0 (Bytes.length chunk) with
          | 0 ->
              if Buffer.length buf = 0 then Error "connection closed"
              else Error "connection closed mid-response"
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
              go ()
          | exception Unix.Unix_error (e, _, _) ->
              Error ("read: " ^ Unix.error_message e)
        end)
  in
  go ()

let request ?(timeout_s = 10.0) ?headers ?body c ~meth ~target () =
  match send_raw c (Http.request_to_string ?headers ?body ~meth ~target ()) with
  | Error _ as e -> e
  | Ok () -> read_response ~deadline_s:timeout_s c

(* One-shot conveniences: fresh connection, single exchange, close. *)

let one_shot ?timeout_s ?headers ?body ~host ~port ~meth ~target () =
  match connect ?timeout_s ~host ~port () with
  | Error _ as e -> e
  | Ok c ->
      let r = request ?timeout_s ?headers ?body c ~meth ~target () in
      close c;
      r

let get ?timeout_s ~host ~port target =
  one_shot ?timeout_s ~host ~port ~meth:"GET" ~target ()

let post ?timeout_s ~host ~port ~body target =
  one_shot ?timeout_s ~body ~host ~port ~meth:"POST" ~target ()

let post_json ?timeout_s ~host ~port ~json target =
  post ?timeout_s ~host ~port ~body:(Arb_util.Json.to_string json) target
