(** The HTTP/1.1 front door: a concurrent socket server on OCaml domains.

    One accept domain multiplexes the listening socket; accepted
    connections land in a bounded queue consumed by a fixed pool of worker
    domains that parse ({!Http}), dispatch the handler, and write
    responses. Backpressure is layered: over-capacity connections are
    answered [429] inline at the accept edge (the service is never
    touched), and the handler ({!Api}) adds its own admission checks.

    A whole-request deadline guards against slowloris clients: the bytes
    of one request must arrive within [request_timeout_s] (408 beyond),
    however slowly they trickle; the deadline resets between keep-alive
    requests. Malformed input fails the connection closed with the status
    {!Http.parse_request} assigns. Partial-request disconnects and peer
    resets are absorbed and counted, never raised.

    This is the only layer of the service allowed to read the wall clock:
    the handler runs on the deterministic core, so the same submissions
    produce byte-identical lifecycle records whether they arrive over a
    socket or from a workload file.

    With a {!Arb_runtime.Fault} injector attached, the chaos suite's
    network seams activate: [Accept_drop] loses just-accepted connections
    and [Response_truncate] cuts response writes short — clients see
    realistic churn while service state stays consistent. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  backlog : int;
  workers : int;  (** connection-handler domains *)
  max_pending : int;
      (** accepted connections allowed to wait for a worker; beyond this
          the accept edge answers 429 *)
  request_timeout_s : float;
      (** whole-request deadline (slowloris guard) and idle keep-alive
          expiry *)
  limits : Http.limits;
  faults : Arb_runtime.Fault.t option;
  metrics : Arb_obs.Metrics.t option;
      (** [arb_http_*] counters/gauges (connections, responses by status,
          accept-edge rejections, timeouts, disconnects, queue depth) *)
}

val default_config : config
(** 127.0.0.1:ephemeral, backlog 1024, 4 workers, 1024 pending, 10 s
    request deadline, {!Http.default_limits}, no faults, no metrics. *)

type stats = {
  accepted : int;
  served : int;  (** requests answered (all statuses) *)
  rejected_busy : int;  (** 429s written at the accept edge *)
  bad_requests : int;  (** connections failed closed on malformed input *)
  timeouts : int;  (** whole-request deadline hits (408) *)
  client_disconnects : int;  (** peer vanished mid-request *)
  faults_injected : int;  (** network-seam faults fired by the injector *)
}

type t

val start : ?config:config -> handler:(Http.request -> Http.response) -> unit -> t
(** Bind, listen, and spawn the accept + worker domains. The handler runs
    on worker domains concurrently — it must be thread-safe. Exceptions it
    raises are mapped to 500 responses. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val stop : t -> unit
(** Graceful drain-then-close: stop accepting, serve everything already
    accepted or queued, join the domains, release the sockets.
    Idempotent; blocks until shutdown completes. *)

val stats : t -> stats
