module B = Arb_dp.Budget
module Q = Arb_queries.Registry
module P = Arb_planner
module R = Arb_runtime

let src = Logs.Src.create "arb.service" ~doc:"Multi-tenant analytics service"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  session : R.Session.t;
  cache : Cache.t;
  devices : int;
  seed : int;
  metrics : Arb_obs.Metrics.t option;
  snapshots : (string * string) option;
      (* (dir, tag): append a metrics snapshot per drain (DESIGN.md §14) *)
  sim_m : int;
      (* executed committee size (exec config), the m calibration samples
         are priced at *)
  mutable calibration : P.Calibration.t;
      (* the cost model pricing cold plans; guarded by [lock] *)
  lock : Mutex.t;
      (* guards queue / next_index / history / reserved: HTTP handlers
         submit and poll from worker domains concurrently with drains *)
  drain_lock : Mutex.t;
      (* serializes whole drains — execution is inherently ordered on the
         certificate chain, so two concurrent drains would be a bug *)
  mutable queue : (int * float * Workload.submission) list;
      (* newest first; the float is the enqueue time (queue-wait metric) *)
  mutable next_index : int;
  mutable history : Lifecycle.record list;  (* newest first *)
  mutable reserved : B.t;
      (* certified costs of queued submissions that passed the submit-time
         budget prescreen; advisory (drain re-checks authoritatively) *)
}

let create ?exec_config ?max_rounds ?cache ?metrics ?calibration ?snapshots
    ~budget ~devices ~seed () =
  (* The session's creation-time database is a placeholder: every query
     brings its own synthesized inputs (same population, different
     question) through [run_with_plan]'s [?db]. *)
  let db = Array.make devices [||] in
  {
    session = R.Session.create ?config:exec_config ?max_rounds ~budget ~db ();
    cache = (match cache with Some c -> c | None -> Cache.create ());
    devices;
    seed;
    metrics;
    snapshots;
    sim_m =
      (match exec_config with
      | Some c -> c.R.Exec.committee_size
      | None -> R.Exec.default_config.R.Exec.committee_size);
    calibration =
      (match calibration with Some c -> c | None -> P.Calibration.default);
    lock = Mutex.create ();
    drain_lock = Mutex.create ();
    queue = [];
    next_index = 0;
    history = [];
    reserved = B.zero;
  }

let enqueue_locked t (s : Workload.submission) =
  let first = t.next_index in
  let enq = Unix.gettimeofday () in
  for _ = 1 to s.Workload.repeat do
    t.queue <- (t.next_index, enq, { s with Workload.repeat = 1 }) :: t.queue;
    t.next_index <- t.next_index + 1
  done;
  first

let submit t s = Mutex.protect t.lock (fun () -> enqueue_locked t s)

let pending t = Mutex.protect t.lock (fun () -> List.length t.queue)

let calibration t = Mutex.protect t.lock (fun () -> t.calibration)
let calibration_fingerprint t = (calibration t).P.Calibration.fingerprint

(* Price a cached plan's metrics under a (possibly new) cost model — the
   same [combine]-over-[price] arithmetic the search's winner carries. *)
let price_entry cm ~devices ~cols (plan : P.Plan.t) =
  P.Cost_model.combine ?sample_phi:plan.P.Plan.device_sample ~n_devices:devices
    (List.map
       (P.Cost_model.price cm ~n_devices:devices
          ~m:plan.P.Plan.committee_size ~cols)
       plan.P.Plan.vignettes)

(* Worst relative change across the six metric components — goal-agnostic,
   so the invalidation decision does not depend on which goal each cached
   plan was searched under. *)
let metrics_drift (a : P.Cost_model.metrics) (b : P.Cost_model.metrics) =
  let rel x y = Float.abs (y -. x) /. Float.max (Float.abs x) 1e-12 in
  List.fold_left Float.max 0.0
    [
      rel a.P.Cost_model.agg_time b.P.Cost_model.agg_time;
      rel a.P.Cost_model.agg_bytes b.P.Cost_model.agg_bytes;
      rel a.P.Cost_model.part_exp_time b.P.Cost_model.part_exp_time;
      rel a.P.Cost_model.part_max_time b.P.Cost_model.part_max_time;
      rel a.P.Cost_model.part_exp_bytes b.P.Cost_model.part_exp_bytes;
      rel a.P.Cost_model.part_max_bytes b.P.Cost_model.part_max_bytes;
    ]

type reprice = { repriced : int; invalidated : int; changed : bool }

let set_calibration ?(drift_threshold = 0.5) t calib =
  let changed =
    Mutex.protect t.lock (fun () ->
        let changed =
          t.calibration.P.Calibration.fingerprint
          <> calib.P.Calibration.fingerprint
        in
        t.calibration <- calib;
        changed)
  in
  if not changed then { repriced = 0; invalidated = 0; changed = false }
  else begin
    let cm = calib.P.Calibration.constants in
    let repriced = ref 0 and invalidated = ref 0 in
    List.iter
      (fun (key, (e : Cache.entry)) ->
        let fresh =
          price_entry cm ~devices:t.devices ~cols:e.Cache.cols e.Cache.plan
        in
        if metrics_drift e.Cache.metrics fresh > drift_threshold then begin
          (* The plan may no longer be the winner under the new prices:
             evict so the next submission re-plans cold. *)
          Cache.remove t.cache key;
          incr invalidated
        end
        else begin
          Cache.update_metrics t.cache key fresh;
          incr repriced
        end)
      (Cache.entries t.cache);
    Log.info (fun f ->
        f "calibration %s installed: %d cache entr%s re-priced, %d invalidated"
          (String.sub calib.P.Calibration.fingerprint 0 12)
          !repriced
          (if !repriced = 1 then "y" else "ies")
          !invalidated);
    (match t.metrics with
    | Some reg ->
        let add name help v = Arb_obs.Metrics.add reg ~help name v in
        add "arb_service_calibration_installs_total"
          "Calibration installs that changed the fingerprint" 1.0;
        add "arb_service_cache_repriced_total"
          "Cache entries re-priced by calibration installs"
          (float_of_int !repriced);
        add "arb_service_cache_invalidated_total"
          "Cache entries whose price drifted past the invalidation threshold"
          (float_of_int !invalidated)
    | None -> ());
    { repriced = !repriced; invalidated = !invalidated; changed = true }
  end

type refusal =
  | Queue_full of int  (** the bound it hit *)
  | Over_budget of string

(* The certified cost of one copy of a submission, when it resolves and
   certifies — the same arithmetic drain's admission stage applies.
   Submissions that fail to resolve or certify cost nothing here: they
   are enqueued anyway so the drain can refuse them with a canonical
   lifecycle record (identical to the workload-file path). *)
let prescreen_cost t (s : Workload.submission) =
  match
    match s.Workload.categories with
    | Some c -> Q.make ~epsilon:s.Workload.epsilon ~name:s.Workload.query ~c ()
    | None -> Q.test_instance ~epsilon:s.Workload.epsilon s.Workload.query
  with
  | exception Not_found -> None
  | query ->
      let cert = Arb_lang.Certify.certify query.Q.program ~n:t.devices in
      if cert.Arb_lang.Certify.certified then Some cert.Arb_lang.Certify.cost
      else None

let try_submit ?max_queue ?(check_budget = true) t (s : Workload.submission) =
  (* Certification is pure; run it outside the lock. *)
  let cost = if check_budget then prescreen_cost t s else None in
  Mutex.protect t.lock (fun () ->
      let depth = List.length t.queue in
      match max_queue with
      | Some bound when depth + s.Workload.repeat > bound ->
          Error (Queue_full bound)
      | _ -> (
          match cost with
          | None -> Ok (enqueue_locked t s)
          | Some cost -> (
              let total = B.scale cost (float_of_int s.Workload.repeat) in
              let balance = R.Session.budget_left t.session in
              let projected =
                match B.charge balance ~cost:t.reserved with
                | Some p -> p
                | None -> B.zero (* over-reserved window; fail the check *)
              in
              match B.charge projected ~cost:total with
              | None ->
                  Error
                    (Over_budget
                       (Format.asprintf
                          "admission: privacy budget exhausted (need %a, \
                           have %a)"
                          B.pp total B.pp projected))
              | Some _ ->
                  t.reserved <- B.spend_all t.reserved total;
                  Ok (enqueue_locked t s))))

let refusal_message = function
  | Queue_full bound ->
      Printf.sprintf "submission queue is full (bound %d), retry later" bound
  | Over_budget m -> m

(* A per-submission RNG for database synthesis, chained off the service
   seed the same way the session derives execution seeds off the block
   chain: hash, then fold into an int64. *)
let db_seed ~seed ~index =
  let h =
    Arb_crypto.Sha256.digest (Printf.sprintf "arb-serve-db:%d:%d" seed index)
  in
  String.fold_left
    (fun acc c -> Int64.add (Int64.mul acc 131L) (Int64.of_int (Char.code c)))
    7L (String.sub h 0 8)

let now () = Unix.gettimeofday ()

(* One submission's progress through the pipeline. *)
type pending_query = {
  p_index : int;
  p_sub : Workload.submission;
  p_query : Q.query;
  p_key : Cache.key;
  p_cost : B.t;
  p_hit : bool;
  p_admit_s : float;
  mutable p_plan_s : float;
}

let refusal_record ~index ~(sub : Workload.submission) ~categories ~key ~cost
    ~balance ~admit_s reason =
  {
    Lifecycle.index;
    query = sub.Workload.query;
    categories;
    epsilon = sub.Workload.epsilon;
    cache_key = key;
    cache_hit = false;
    cost;
    budget_before = balance;
    budget_after = balance;
    status = Lifecycle.Refused reason;
    timings = { Lifecycle.admit_s; plan_s = 0.0; exec_s = 0.0 };
  }

let drain ?tracer ?(workers = 1) t =
  Mutex.protect t.drain_lock @@ fun () ->
  let batch =
    Mutex.protect t.lock (fun () ->
        let b = List.rev t.queue in
        t.queue <- [];
        (* Queued reservations ride along with the batch; the admission
           stage below re-checks them against the real session balance. *)
        t.reserved <- B.zero;
        b)
  in
  (* Wall-clock metrics (queue wait, latency histograms) are suppressed
     when tracing deterministically, so the metrics bytes reproduce too. *)
  let timed =
    match tracer with
    | Some tr -> not (Arb_obs.Tracer.deterministic tr)
    | None -> true
  in
  let spn ?args name f =
    match tracer with
    | None -> f ()
    | Some tr -> Arb_obs.Tracer.with_span tr ~cat:"service" ?args name f
  in
  spn
    ~args:[ ("submissions", Arb_util.Json.Int (List.length batch)) ]
    "drain"
  @@ fun () ->
  (match t.metrics with
  | Some reg when timed ->
      let drain_t0 = now () in
      List.iter
        (fun (_, enq, _) ->
          Arb_obs.Metrics.observe_in reg
            ~help:"Seconds submissions waited in the queue before draining"
            ~buckets:Arb_obs.Metrics.latency_buckets
            "arb_service_queue_wait_seconds"
            (Float.max 0.0 (drain_t0 -. enq)))
        batch
  | _ -> ());
  let n = t.devices in
  (* One cost model per drain: cold plans, re-pricing and residual samples
     in this batch all see the same calibration even if an install lands
     mid-drain. *)
  let cm = (calibration t).P.Calibration.constants in
  (* ---- stage 1+2: admission and cache labeling, in submission order ---- *)
  let projected = ref (R.Session.budget_left t.session) in
  let cold = ref [] (* (key, query, goal) newest first *)
  and cold_count = ref 0 in
  let cold_keys : (Cache.key, unit) Hashtbl.t = Hashtbl.create 16 in
  let refused = ref [] (* Lifecycle.record, newest first *)
  and admitted = ref [] (* pending_query, newest first *) in
  spn "admit" (fun () ->
  List.iter
    (fun (index, _enq, (sub : Workload.submission)) ->
      let t0 = now () in
      let refuse ?(categories = 0) ?(key = "") ?(cost = B.zero) reason =
        refused :=
          refusal_record ~index ~sub ~categories ~key ~cost ~balance:!projected
            ~admit_s:(now () -. t0) reason
          :: !refused
      in
      match
        let q =
          match sub.Workload.categories with
          | Some c ->
              Q.make ~epsilon:sub.Workload.epsilon ~name:sub.Workload.query ~c
                ()
          | None ->
              Q.test_instance ~epsilon:sub.Workload.epsilon sub.Workload.query
        in
        { q with Q.error_tolerance = sub.Workload.tolerance }
      with
      | exception Not_found ->
          refuse
            (Printf.sprintf "unknown query %S (see `arb list`)"
               sub.Workload.query)
      | query when
          (match sub.Workload.tolerance with
          | Some tol -> not (tol > 0.0 && tol <= 1.0)
          | None -> false) ->
          (* Refused before any budget projection: an invalid tolerance
             leaves both the global and window balances byte-identical. *)
          refuse ~categories:query.Q.categories
            (Printf.sprintf "tolerance must be in (0, 1], got %g"
               (Option.get sub.Workload.tolerance))
      | query -> (
          let categories = query.Q.categories in
          let cert = Arb_lang.Certify.certify query.Q.program ~n in
          if not cert.Arb_lang.Certify.certified then
            refuse ~categories
              ("certification failed: "
              ^ Option.value cert.Arb_lang.Certify.reason ~default:"?")
          else
            let cost = cert.Arb_lang.Certify.cost in
            let key = Cache.key ~goal:sub.Workload.goal ~query ~n () in
            match B.charge !projected ~cost with
            | None ->
                refuse ~categories ~key ~cost
                  (Format.asprintf
                     "admission: privacy budget exhausted (need %a, have %a)"
                     B.pp cost B.pp !projected)
            | Some balance ->
                projected := balance;
                let hit =
                  match Cache.find t.cache key with
                  | Some _ -> true
                  | None ->
                      if Hashtbl.mem cold_keys key then true
                      else begin
                        Hashtbl.add cold_keys key ();
                        cold := (key, query, sub.Workload.goal) :: !cold;
                        incr cold_count;
                        false
                      end
                in
                admitted :=
                  {
                    p_index = index;
                    p_sub = sub;
                    p_query = query;
                    p_key = key;
                    p_cost = cost;
                    p_hit = hit;
                    p_admit_s = now () -. t0;
                    p_plan_s = 0.0;
                  }
                  :: !admitted))
    batch);
  let admitted = List.rev !admitted and refused = List.rev !refused in
  (* ---- stage 3: plan the distinct misses across the worker pool ---- *)
  let tasks = Array.of_list (List.rev !cold) in
  let slots = Array.make (Array.length tasks) None in
  (* Each cold plan searches under its own child tracer, grafted back in
     canonical task order after the pool drains — trace bytes independent
     of the worker count. Child tids are spaced so the search's own
     per-(crypto × bins) children cannot collide across tasks. *)
  let children =
    match tracer with
    | None -> Array.map (fun _ -> None) tasks
    | Some tr ->
        Array.mapi
          (fun i _ ->
            Some
              (Arb_obs.Tracer.child tr
                 ~tid:((Arb_obs.Tracer.tid tr * 100) + i + 1)))
          tasks
  in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length tasks then begin
        let _, query, goal = tasks.(i) in
        let limits =
          P.Constraints.with_error_tolerance P.Constraints.no_limits
            query.Q.error_tolerance
        in
        slots.(i) <-
          Some
            (P.Search.plan ~cm ~goal ~limits ?tracer:children.(i)
               ?metrics:t.metrics ~query ~n ());
        loop ()
      end
    in
    loop ()
  in
  let pool = max 1 (min workers (Array.length tasks)) in
  let spawned = List.init (pool - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  (match tracer with
  | Some tr -> Array.iter (Option.iter (Arb_obs.Tracer.graft tr)) children
  | None -> ());
  Log.info (fun f ->
      f "planned %d cold quer%s on %d worker%s (%d submissions, %d cache hits)"
        (Array.length tasks)
        (if Array.length tasks = 1 then "y" else "ies")
        pool
        (if pool = 1 then "" else "s")
        (List.length batch)
        (List.length (List.filter (fun p -> p.p_hit) admitted)));
  (* Commit results in canonical task order so the cache (and its on-disk
     form) is independent of domain scheduling. *)
  let plan_failed : (Cache.key, string) Hashtbl.t = Hashtbl.create 4 in
  let plan_elapsed : (Cache.key, float) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i (key, query, _) ->
      match slots.(i) with
      | None -> assert false
      | Some r -> (
          Hashtbl.replace plan_elapsed key
            r.P.Search.stats.P.Search.elapsed;
          match (r.P.Search.plan, r.P.Search.metrics) with
          | Some plan, Some metrics ->
              Cache.add t.cache key ~query_name:query.Q.name
                { Cache.plan; metrics; cols = query.Q.categories }
          | _ ->
              Hashtbl.replace plan_failed key
                "planner found no plan for this query"))
    tasks;
  (* ---- stage 4: execute serially, in submission order ---- *)
  let executed =
    List.map
      (fun p ->
        spn
          ~args:
            [
              ("index", Arb_util.Json.Int p.p_index);
              ("query", Arb_util.Json.String p.p_sub.Workload.query);
              ( "path",
                Arb_util.Json.String (if p.p_hit then "hit" else "cold") );
            ]
          "execute"
        @@ fun () ->
        let sub = p.p_sub in
        p.p_plan_s <-
          (if p.p_hit then 0.0
           else Option.value ~default:0.0 (Hashtbl.find_opt plan_elapsed p.p_key));
        let balance = R.Session.budget_left t.session in
        let finish ?(cache_hit = p.p_hit) ?(exec_s = 0.0) ~budget_after status =
          {
            Lifecycle.index = p.p_index;
            query = sub.Workload.query;
            categories = p.p_query.Q.categories;
            epsilon = sub.Workload.epsilon;
            cache_key = p.p_key;
            cache_hit;
            cost = p.p_cost;
            budget_before = balance;
            budget_after;
            status;
            timings =
              {
                Lifecycle.admit_s = p.p_admit_s;
                plan_s = p.p_plan_s;
                exec_s;
              };
          }
        in
        match Hashtbl.find_opt plan_failed p.p_key with
        | Some reason ->
            finish ~cache_hit:false ~budget_after:balance
              (Lifecycle.Plan_failed reason)
        | None -> (
            let entry =
              match Cache.find t.cache p.p_key with
              | Some e -> e
              | None -> assert false
            in
            let rng = Arb_util.Rng.create (db_seed ~seed:t.seed ~index:p.p_index) in
            let db = Q.random_database rng p.p_query ~n () in
            let t0 = now () in
            match
              R.Session.run_with_plan t.session ~db ~plan:entry.Cache.plan
                p.p_query
            with
            | Ok qr ->
                (match t.metrics with
                | Some reg ->
                    R.Trace.export qr.R.Session.report.R.Exec.trace reg;
                    (* Calibration ground truth: predicted-vs-measured per
                       section. Deterministic given the run, so recording
                       never perturbs byte-identity contracts. *)
                    P.Calibration.record reg
                      (R.Exec.cost_samples ~cm ~plan:entry.Cache.plan
                         ~cols:p.p_query.Q.categories ~m:t.sim_m
                         qr.R.Session.report)
                | None -> ());
                finish
                  ~exec_s:(now () -. t0)
                  ~budget_after:(R.Session.budget_left t.session)
                  (Lifecycle.Executed
                     {
                       outputs =
                         List.map Arb_lang.Interp.value_to_string
                           qr.R.Session.report.R.Exec.outputs;
                     })
            | Error reason ->
                finish ~exec_s:(now () -. t0) ~budget_after:balance
                  (Lifecycle.Exec_failed reason)))
      admitted
  in
  let records =
    List.sort
      (fun (a : Lifecycle.record) b -> compare a.Lifecycle.index b.Lifecycle.index)
      (refused @ executed)
  in
  Mutex.protect t.lock (fun () ->
      t.history <- List.rev_append records t.history);
  (match t.metrics with
  | None -> ()
  | Some reg ->
      let add ?labels name help v = Arb_obs.Metrics.add reg ?labels ~help name v in
      List.iter
        (fun (r : Lifecycle.record) ->
          add
            ~labels:[ ("status", Lifecycle.status_name r.Lifecycle.status) ]
            "arb_service_submissions_total" "Drained submissions by outcome" 1.0;
          match r.Lifecycle.status with
          | Lifecycle.Executed _ ->
              let path = if r.Lifecycle.cache_hit then "hit" else "cold" in
              add
                ~labels:[ ("path", path) ]
                "arb_service_plans_total" "Executed submissions by plan origin"
                1.0;
              if timed then
                Arb_obs.Metrics.observe_in reg
                  ~labels:[ ("path", path) ]
                  ~buckets:Arb_obs.Metrics.latency_buckets
                  ~help:
                    "Admit+plan+execute latency by plan origin (cache hits \
                     skip planning)"
                  "arb_service_latency_seconds"
                  (r.Lifecycle.timings.Lifecycle.admit_s
                  +. r.Lifecycle.timings.Lifecycle.plan_s
                  +. r.Lifecycle.timings.Lifecycle.exec_s)
          | Lifecycle.Refused _ ->
              add "arb_service_refusals_total"
                "Submissions refused at admission" 1.0
          | Lifecycle.Plan_failed _ | Lifecycle.Exec_failed _ -> ())
        records;
      add "arb_service_cold_plans_total" "Distinct cold plans searched"
        (float_of_int (Array.length tasks));
      Arb_obs.Metrics.set_gauge reg
        ~help:"Planner pool size used by the last drain"
        "arb_service_pool_workers" (float_of_int pool);
      Arb_obs.Metrics.set_gauge reg ~help:"Plan-cache entries"
        "arb_service_cache_entries"
        (float_of_int (Cache.size t.cache)));
  (match (t.snapshots, t.metrics) with
  | Some (dir, tag), Some reg -> (
      (* Ground truth accumulates across drains and processes; a failed
         append must not fail the drain. *)
      try Arb_obs.Snapshot.append ~dir ~tag reg
      with Sys_error m | Unix.Unix_error (_, _, m) ->
        Log.warn (fun f -> f "could not append metrics snapshot: %s" m))
  | _ -> ());
  records

let run_workload ?tracer ?workers t workload =
  List.iter (fun s -> ignore (submit t s)) (Workload.expand workload);
  drain ?tracer ?workers t

let metrics t = t.metrics

let history t = Mutex.protect t.lock (fun () -> List.rev t.history)

let submitted t = Mutex.protect t.lock (fun () -> t.next_index)

let record t index =
  Mutex.protect t.lock (fun () ->
      List.find_opt (fun r -> r.Lifecycle.index = index) t.history)

let counters t = Lifecycle.counters_of (history t)
let budget_left t = R.Session.budget_left t.session
let queries_executed t = R.Session.queries_run t.session
let chain_verifies t = R.Session.chain_verifies t.session
let cache t = t.cache
let devices t = t.devices
let seed t = t.seed
