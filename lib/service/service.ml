module B = Arb_dp.Budget
module Q = Arb_queries.Registry
module P = Arb_planner
module R = Arb_runtime

let src = Logs.Src.create "arb.service" ~doc:"Multi-tenant analytics service"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  session : R.Session.t;
  cache : Cache.t;
  devices : int;
  seed : int;
  mutable queue : (int * Workload.submission) list;  (* newest first *)
  mutable next_index : int;
  mutable history : Lifecycle.record list;  (* newest first *)
}

let create ?exec_config ?max_rounds ?cache ~budget ~devices ~seed () =
  (* The session's creation-time database is a placeholder: every query
     brings its own synthesized inputs (same population, different
     question) through [run_with_plan]'s [?db]. *)
  let db = Array.make devices [||] in
  {
    session = R.Session.create ?config:exec_config ?max_rounds ~budget ~db ();
    cache = (match cache with Some c -> c | None -> Cache.create ());
    devices;
    seed;
    queue = [];
    next_index = 0;
    history = [];
  }

let submit t (s : Workload.submission) =
  let first = t.next_index in
  for _ = 1 to s.Workload.repeat do
    t.queue <- (t.next_index, { s with Workload.repeat = 1 }) :: t.queue;
    t.next_index <- t.next_index + 1
  done;
  first

let pending t = List.length t.queue

(* A per-submission RNG for database synthesis, chained off the service
   seed the same way the session derives execution seeds off the block
   chain: hash, then fold into an int64. *)
let db_seed ~seed ~index =
  let h =
    Arb_crypto.Sha256.digest (Printf.sprintf "arb-serve-db:%d:%d" seed index)
  in
  String.fold_left
    (fun acc c -> Int64.add (Int64.mul acc 131L) (Int64.of_int (Char.code c)))
    7L (String.sub h 0 8)

let now () = Unix.gettimeofday ()

(* One submission's progress through the pipeline. *)
type pending_query = {
  p_index : int;
  p_sub : Workload.submission;
  p_query : Q.query;
  p_key : Cache.key;
  p_cost : B.t;
  p_hit : bool;
  p_admit_s : float;
  mutable p_plan_s : float;
}

let refusal_record ~index ~(sub : Workload.submission) ~categories ~key ~cost
    ~balance ~admit_s reason =
  {
    Lifecycle.index;
    query = sub.Workload.query;
    categories;
    epsilon = sub.Workload.epsilon;
    cache_key = key;
    cache_hit = false;
    cost;
    budget_before = balance;
    budget_after = balance;
    status = Lifecycle.Refused reason;
    timings = { Lifecycle.admit_s; plan_s = 0.0; exec_s = 0.0 };
  }

let drain ?(workers = 1) t =
  let batch = List.rev t.queue in
  t.queue <- [];
  let n = t.devices in
  (* ---- stage 1+2: admission and cache labeling, in submission order ---- *)
  let projected = ref (R.Session.budget_left t.session) in
  let cold = ref [] (* (key, query, goal) newest first *)
  and cold_count = ref 0 in
  let cold_keys : (Cache.key, unit) Hashtbl.t = Hashtbl.create 16 in
  let refused = ref [] (* Lifecycle.record, newest first *)
  and admitted = ref [] (* pending_query, newest first *) in
  List.iter
    (fun (index, (sub : Workload.submission)) ->
      let t0 = now () in
      let refuse ?(categories = 0) ?(key = "") ?(cost = B.zero) reason =
        refused :=
          refusal_record ~index ~sub ~categories ~key ~cost ~balance:!projected
            ~admit_s:(now () -. t0) reason
          :: !refused
      in
      match
        match sub.Workload.categories with
        | Some c ->
            Q.make ~epsilon:sub.Workload.epsilon ~name:sub.Workload.query ~c ()
        | None -> Q.test_instance ~epsilon:sub.Workload.epsilon sub.Workload.query
      with
      | exception Not_found ->
          refuse
            (Printf.sprintf "unknown query %S (see `arb list`)"
               sub.Workload.query)
      | query -> (
          let categories = query.Q.categories in
          let cert = Arb_lang.Certify.certify query.Q.program ~n in
          if not cert.Arb_lang.Certify.certified then
            refuse ~categories
              ("certification failed: "
              ^ Option.value cert.Arb_lang.Certify.reason ~default:"?")
          else
            let cost = cert.Arb_lang.Certify.cost in
            let key = Cache.key ~goal:sub.Workload.goal ~query ~n () in
            match B.charge !projected ~cost with
            | None ->
                refuse ~categories ~key ~cost
                  (Format.asprintf
                     "admission: privacy budget exhausted (need %a, have %a)"
                     B.pp cost B.pp !projected)
            | Some balance ->
                projected := balance;
                let hit =
                  match Cache.find t.cache key with
                  | Some _ -> true
                  | None ->
                      if Hashtbl.mem cold_keys key then true
                      else begin
                        Hashtbl.add cold_keys key ();
                        cold := (key, query, sub.Workload.goal) :: !cold;
                        incr cold_count;
                        false
                      end
                in
                admitted :=
                  {
                    p_index = index;
                    p_sub = sub;
                    p_query = query;
                    p_key = key;
                    p_cost = cost;
                    p_hit = hit;
                    p_admit_s = now () -. t0;
                    p_plan_s = 0.0;
                  }
                  :: !admitted))
    batch;
  let admitted = List.rev !admitted and refused = List.rev !refused in
  (* ---- stage 3: plan the distinct misses across the worker pool ---- *)
  let tasks = Array.of_list (List.rev !cold) in
  let slots = Array.make (Array.length tasks) None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length tasks then begin
        let _, query, goal = tasks.(i) in
        slots.(i) <-
          Some (P.Search.plan ~goal ~limits:P.Constraints.no_limits ~query ~n ());
        loop ()
      end
    in
    loop ()
  in
  let pool = max 1 (min workers (Array.length tasks)) in
  let spawned = List.init (pool - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Log.info (fun f ->
      f "planned %d cold quer%s on %d worker%s (%d submissions, %d cache hits)"
        (Array.length tasks)
        (if Array.length tasks = 1 then "y" else "ies")
        pool
        (if pool = 1 then "" else "s")
        (List.length batch)
        (List.length (List.filter (fun p -> p.p_hit) admitted)));
  (* Commit results in canonical task order so the cache (and its on-disk
     form) is independent of domain scheduling. *)
  let plan_failed : (Cache.key, string) Hashtbl.t = Hashtbl.create 4 in
  let plan_elapsed : (Cache.key, float) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i (key, query, _) ->
      match slots.(i) with
      | None -> assert false
      | Some r -> (
          Hashtbl.replace plan_elapsed key
            r.P.Search.stats.P.Search.elapsed;
          match (r.P.Search.plan, r.P.Search.metrics) with
          | Some plan, Some metrics ->
              Cache.add t.cache key ~query_name:query.Q.name
                { Cache.plan; metrics }
          | _ ->
              Hashtbl.replace plan_failed key
                "planner found no plan for this query"))
    tasks;
  (* ---- stage 4: execute serially, in submission order ---- *)
  let executed =
    List.map
      (fun p ->
        let sub = p.p_sub in
        p.p_plan_s <-
          (if p.p_hit then 0.0
           else Option.value ~default:0.0 (Hashtbl.find_opt plan_elapsed p.p_key));
        let balance = R.Session.budget_left t.session in
        let finish ?(cache_hit = p.p_hit) ?(exec_s = 0.0) ~budget_after status =
          {
            Lifecycle.index = p.p_index;
            query = sub.Workload.query;
            categories = p.p_query.Q.categories;
            epsilon = sub.Workload.epsilon;
            cache_key = p.p_key;
            cache_hit;
            cost = p.p_cost;
            budget_before = balance;
            budget_after;
            status;
            timings =
              {
                Lifecycle.admit_s = p.p_admit_s;
                plan_s = p.p_plan_s;
                exec_s;
              };
          }
        in
        match Hashtbl.find_opt plan_failed p.p_key with
        | Some reason ->
            finish ~cache_hit:false ~budget_after:balance
              (Lifecycle.Plan_failed reason)
        | None -> (
            let entry =
              match Cache.find t.cache p.p_key with
              | Some e -> e
              | None -> assert false
            in
            let rng = Arb_util.Rng.create (db_seed ~seed:t.seed ~index:p.p_index) in
            let db = Q.random_database rng p.p_query ~n () in
            let t0 = now () in
            match
              R.Session.run_with_plan t.session ~db ~plan:entry.Cache.plan
                p.p_query
            with
            | Ok qr ->
                finish
                  ~exec_s:(now () -. t0)
                  ~budget_after:(R.Session.budget_left t.session)
                  (Lifecycle.Executed
                     {
                       outputs =
                         List.map Arb_lang.Interp.value_to_string
                           qr.R.Session.report.R.Exec.outputs;
                     })
            | Error reason ->
                finish ~exec_s:(now () -. t0) ~budget_after:balance
                  (Lifecycle.Exec_failed reason)))
      admitted
  in
  let records =
    List.sort
      (fun (a : Lifecycle.record) b -> compare a.Lifecycle.index b.Lifecycle.index)
      (refused @ executed)
  in
  t.history <- List.rev_append records t.history;
  records

let run_workload ?workers t workload =
  List.iter (fun s -> ignore (submit t s)) (Workload.expand workload);
  drain ?workers t

let history t = List.rev t.history
let counters t = Lifecycle.counters_of (history t)
let budget_left t = R.Session.budget_left t.session
let queries_executed t = R.Session.queries_run t.session
let chain_verifies t = R.Session.chain_verifies t.session
let cache t = t.cache
