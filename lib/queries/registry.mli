(** The ten evaluation queries (Table 2), written in Arboretum's language.

    The first six are the new queries (five exponential-mechanism queries
    plus secrecy of the sample); the rest are adapted from Honeycrisp
    ([cms]), Orchard ([bayes], [kmedians]) and Böhler–Kerschbaum
    ([median]). Category counts are parameters: the paper's evaluation uses
    C = 2^15 for most categorical queries, C = 115 for bayes, C = 10
    clusters for k-medians and C = 1 for hypotest/cms; tests and the
    small-scale runtime use small C. *)

type query = {
  name : string;
  action : string;  (** the "Action" column of Table 2 *)
  source : string;  (** citation key of the original mechanism *)
  program : Arb_lang.Ast.program;
  categories : int;  (** the C this instance was built with *)
  uses_em : bool;  (** exponential-mechanism query (vs Laplace) *)
  error_tolerance : float option;
      (** analyst-declared relative-error tolerance in (0,1]; [None] means
          exact answers only — the planner never considers approximate
          (sampled/sketched) variants for the query *)
}

val names : string list
(** In Table 2 order: top1, topK, gap, auction, hypotest, secrecy, median,
    cms, bayes, kmedians. *)

val make :
  ?epsilon:float -> ?error_tolerance:float -> name:string -> c:int -> unit -> query
(** Build a query instance for a given category count. [c] is interpreted
    per query (histogram width for top1-like queries, sketch width for cms,
    cluster count for kmedians). Raises [Not_found] for unknown names. *)

val paper_instance : ?epsilon:float -> string -> query
(** The instance with the category count used in §7.1. *)

val test_instance : ?epsilon:float -> string -> query
(** A small instance (C <= 32) suitable for in-process execution. *)

val random_database :
  Arb_util.Rng.t -> query -> n:int -> ?skew:float -> unit -> int array array
(** Synthesize a plausible database for a query: [n] rows matching its row
    shape, with a Zipf-like skew over categories (default 1.1) so argmax
    queries have a meaningful winner. *)

val device_source : seed:int64 -> ?skew:float -> query -> int -> int array
(** [device_source ~seed query] is an indexed row generator: applying it to
    [i] yields device [i]'s row as a pure function of [(seed, i)] (via
    {!Arb_util.Rng.derive}), so any subset of an arbitrarily large
    population can be materialized independently and in any order. Same
    per-row distributions as {!random_database}, different draw sequence.
    Feed it to {!Arb_runtime.Exec.execute_source} to run sharded queries
    over populations too large to hold in memory. *)

val indexed_database :
  seed:int64 -> ?skew:float -> query -> n:int -> int array array
(** [Array.init n (device_source ~seed query)] — the materialized prefix of
    the indexed population, for tests comparing sharded and full runs over
    the same rows. *)
