type query = {
  name : string;
  action : string;
  source : string;
  program : Arb_lang.Ast.program;
  categories : int;
  uses_em : bool;
  error_tolerance : float option;
}

let names =
  [ "top1"; "topK"; "gap"; "auction"; "hypotest"; "secrecy"; "median"; "cms";
    "bayes"; "kmedians" ]

(* Query sources. Each is written against the predefined db/N/C variables;
   C is the row width, fixed by the row shape below. *)

let top1_src = {|
aggr = sum(db);
result = em(aggr);
output(result);
|}

let topk_src = {|
aggr = sum(db);
for j = 1 to 5 do
  w = em(aggr);
  output(w);
  aggr[w] = 0 - N;
endfor
|}

let gap_src = {|
aggr = sum(db);
r = emGap(aggr);
output(r[0]);
output(r[1]);
|}

let auction_src = {|
counts = sum(db);
above = suffixSums(counts);
for p = 0 to C - 1 do
  rev[p] = (p + 1) * above[p];
endfor
price = em(rev);
output(price);
|}

let hypotest_src = {|
aggr = sum(db);
stat = laplace(aggr[0]);
threshold = N / 2;
if stat > threshold then
  output(1);
else
  output(0);
endif
|}

let secrecy_src = {|
samp = sampleUniform(db, 0.25);
aggr = sum(samp);
noisy = laplace(aggr[0]);
output(noisy);
|}

let median_src = {|
hist = sum(db);
pre = prefixSums(hist);
target = N / 2;
for i = 0 to C - 1 do
  d = pre[i] - target;
  scores[i] = 0 - abs(d);
endfor
choice = em(scores);
output(choice);
|}

let cms_src = {|
sketch = sum(db);
noisy = laplace(sketch);
for i = 0 to C - 1 do
  output(noisy[i]);
endfor
|}

let bayes_src = {|
counts = sum(db);
noisy = laplace(counts);
total = 0.0;
for i = 0 to C - 1 do
  total = total + noisy[i];
endfor
for i = 0 to C - 1 do
  p = noisy[i] / total;
  output(p);
endfor
|}

let kmedians_src = {|
s = sum(db);
for j = 0 to C / 2 - 1 do
  cnt = s[2 * j] + 1;
  tot = s[2 * j + 1];
  ncnt = laplace(cnt);
  ntot = laplace(tot);
  center[j] = ntot / ncnt;
endfor
for j = 0 to C / 2 - 1 do
  output(center[j]);
endfor
|}

type spec = {
  action_ : string;
  source_ : string;
  src : string;
  row_of_c : int -> Arb_lang.Ast.row_shape;
  (* how the [c] parameter maps to the row width *)
  width_of_c : int -> int;
  paper_c : int;
  test_c : int;
  em : bool;
}

let one_hot c = Arb_lang.Ast.One_hot c

let specs : (string * spec) list =
  [
    ( "top1",
      { action_ = "Most frequent item"; source_ = "[31]"; src = top1_src;
        row_of_c = one_hot; width_of_c = Fun.id; paper_c = 1 lsl 15; test_c = 16;
        em = true } );
    ( "topK",
      { action_ = "Top-K selection"; source_ = "[29]"; src = topk_src;
        row_of_c = one_hot; width_of_c = Fun.id; paper_c = 1 lsl 15; test_c = 16;
        em = true } );
    ( "gap",
      { action_ = "Exp. mechanism with gap"; source_ = "[28]"; src = gap_src;
        row_of_c = one_hot; width_of_c = Fun.id; paper_c = 1 lsl 15; test_c = 16;
        em = true } );
    ( "auction",
      { action_ = "Unbounded auction"; source_ = "[45]"; src = auction_src;
        row_of_c = one_hot; width_of_c = Fun.id; paper_c = 1 lsl 15; test_c = 16;
        em = true } );
    ( "hypotest",
      { action_ = "Hypothesis testing"; source_ = "[20]"; src = hypotest_src;
        row_of_c = one_hot; width_of_c = Fun.id; paper_c = 1; test_c = 1;
        em = false } );
    ( "secrecy",
      { action_ = "Secrecy of sample"; source_ = "[9]"; src = secrecy_src;
        row_of_c = one_hot; width_of_c = Fun.id; paper_c = 1 lsl 15; test_c = 16;
        em = false } );
    ( "median",
      { action_ = "Median"; source_ = "[14]"; src = median_src;
        row_of_c = one_hot; width_of_c = Fun.id; paper_c = 1 lsl 15; test_c = 16;
        em = true } );
    ( "cms",
      { action_ = "Count-mean sketch"; source_ = "[53]"; src = cms_src;
        row_of_c = (fun c -> Arb_lang.Ast.Bounded { width = c; lo = 0; hi = 1 });
        width_of_c = Fun.id; paper_c = 2048; test_c = 16; em = false } );
    ( "bayes",
      { action_ = "Naive Bayes"; source_ = "[54]"; src = bayes_src;
        row_of_c = one_hot; width_of_c = Fun.id; paper_c = 115; test_c = 16;
        em = false } );
    ( "kmedians",
      { action_ = "K-Medians"; source_ = "[54]"; src = kmedians_src;
        row_of_c = (fun c -> Arb_lang.Ast.Bounded { width = 2 * c; lo = 0; hi = 255 });
        width_of_c = (fun c -> 2 * c); paper_c = 10; test_c = 4; em = false } );
  ]

let spec_of name =
  match List.assoc_opt name specs with
  | Some s -> s
  | None -> raise Not_found

let make ?(epsilon = 0.1) ?error_tolerance ~name ~c () =
  let s = spec_of name in
  let program =
    {
      Arb_lang.Ast.name;
      body = Arb_lang.Parser.parse_stmt s.src;
      row = s.row_of_c c;
      epsilon;
    }
  in
  { name; action = s.action_; source = s.source_; program;
    categories = s.width_of_c c; uses_em = s.em; error_tolerance }

let paper_instance ?epsilon name =
  let s = spec_of name in
  make ?epsilon ~name ~c:s.paper_c ()

let test_instance ?epsilon name =
  let s = spec_of name in
  make ?epsilon ~name ~c:s.test_c ()

(* Zipf-ish category sampling: probability of category k proportional to
   1/(k+1)^skew, with categories shuffled by a fixed permutation so the
   winner is not always index 0. *)
let random_database rng query ~n ?(skew = 1.1) () =
  match query.program.Arb_lang.Ast.row with
  | Arb_lang.Ast.One_hot width ->
      let weights =
        Array.init width (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) skew)
      in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let sample_category () =
        let r = Arb_util.Rng.float rng total in
        let rec go k acc =
          if k = width - 1 then k
          else
            let acc = acc +. weights.(k) in
            if r < acc then k else go (k + 1) acc
        in
        go 0 0.0
      in
      Array.init n (fun _ ->
          let row = Array.make width 0 in
          row.(sample_category ()) <- 1;
          row)
  | Arb_lang.Ast.Bounded { width; lo; hi } ->
      Array.init n (fun _ ->
          Array.init width (fun j ->
              if query.name = "kmedians" then
                (* Alternating (indicator, value) pairs: pick one cluster. *)
                j |> fun _ -> 0
              else Arb_util.Rng.int_in rng lo hi))
      |> fun db ->
      if query.name = "kmedians" then begin
        let clusters = width / 2 in
        Array.iteri
          (fun i row ->
            ignore i;
            let c = Arb_util.Rng.int rng clusters in
            let v = Arb_util.Rng.int_in rng lo hi in
            row.(2 * c) <- 1;
            row.((2 * c) + 1) <- v)
          db;
        db
      end
      else db

(* Indexed variant of the same synthesis: row [i] is a pure function of
   (seed, i) via Rng.derive, so any subset of a billion-device population
   can be materialized independently and in any order — which is what the
   sharded runtime needs to stream cohorts without building the database.
   The draw distributions match [random_database]; the draw *sequence*
   necessarily differs (one derived stream per device instead of one
   shared stream), so the two constructions give different but equally
   plausible databases for the same seed. *)
let device_source ~seed ?(skew = 1.1) query =
  match query.program.Arb_lang.Ast.row with
  | Arb_lang.Ast.One_hot width ->
      let weights =
        Array.init width (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) skew)
      in
      let total = Array.fold_left ( +. ) 0.0 weights in
      fun i ->
        let rng = Arb_util.Rng.derive seed i in
        let r = Arb_util.Rng.float rng total in
        let rec go k acc =
          if k = width - 1 then k
          else
            let acc = acc +. weights.(k) in
            if r < acc then k else go (k + 1) acc
        in
        let row = Array.make width 0 in
        row.(go 0 0.0) <- 1;
        row
  | Arb_lang.Ast.Bounded { width; lo; hi } ->
      if query.name = "kmedians" then
        let clusters = width / 2 in
        fun i ->
          let rng = Arb_util.Rng.derive seed i in
          let row = Array.make width 0 in
          let c = Arb_util.Rng.int rng clusters in
          let v = Arb_util.Rng.int_in rng lo hi in
          row.(2 * c) <- 1;
          row.((2 * c) + 1) <- v;
          row
      else
        fun i ->
          let rng = Arb_util.Rng.derive seed i in
          Array.init width (fun _ -> Arb_util.Rng.int_in rng lo hi)

let indexed_database ~seed ?skew query ~n =
  Array.init n (device_source ~seed ?skew query)
