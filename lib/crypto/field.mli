(** Prime-field arithmetic on native ints.

    All moduli in this repository are primes below 2^31 so that products of
    two reduced elements fit exactly in OCaml's 63-bit native ints — the
    trick that lets us do RLWE and Shamir arithmetic without a bignum
    library (see DESIGN.md §1). Elements are plain ints in \[0, p).

    Multiplication uses Barrett-style reduction with a precomputed
    floating-point reciprocal (DESIGN.md §10): the quotient estimate
    [int_of_float (float a *. float b *. inv_p)] is off by at most one, so
    two conditional corrections recover the exact canonical residue with no
    hardware division. Results are bit-identical to [a * b mod p]. *)

type t = {
  p : int;  (** the prime modulus *)
  inv_p : float;  (** precomputed [1.0 /. float p] Barrett magic constant *)
}
(** A field description. Construct via {!create}/{!create_unchecked} so the
    magic constant is consistent with [p]. *)

val create : int -> t
(** [create p] checks [2 <= p < 2^31], that [(p-1)^2] fits in a 62-bit
    native int (overflow guard for the product trick), and that [p] is
    prime (deterministic Miller–Rabin). *)

val create_unchecked : int -> t
(** Skip the primality check (for hot paths constructing known fields). *)

val add : t -> int -> int -> int
val sub : t -> int -> int -> int
val neg : t -> int -> int

val mul : t -> int -> int -> int
(** Division-free Barrett product; bit-identical to [a * b mod p] for
    canonical inputs. *)

val pow : t -> int -> int -> int
(** [pow f x e] with [e >= 0]. *)

val inv : t -> int -> int
(** Multiplicative inverse; raises [Division_by_zero] on 0. *)

val div : t -> int -> int -> int
val of_int : t -> int -> int
(** Canonical representative of any int (handles negatives). *)

val center : t -> int -> int
(** Centered representative in \[-(p-1)/2, p/2\]. *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin, valid for all inputs below 3.3e24. *)

val root_of_unity : t -> order:int -> int
(** A primitive [order]-th root of unity; requires [order] divides [p-1].
    Raises [Not_found] if none exists. *)

val random : t -> Arb_util.Rng.t -> int
(** Uniform field element. *)
